(* dct — command-line front end.

   Subcommands:
     simulate     run a synthetic workload through a scheduler
                  (--selfcheck validates graph-state invariants per step;
                   --trace/--metrics/--json record and report telemetry)
     serve        run a shard-affine workload through the online sharded
                  engine (batched admission, per-shard deletion-policy GC;
                  --differential cross-checks against the single-node
                  scheduler step by step; --listen serves the engine to
                  socket clients over the wire protocol instead)
     client       send wire-protocol requests to a serve --listen server
     bench-net    drive a YCSB/TPC-C-style mix against an in-process
                  loopback server; throughput + latency percentiles
     trace        summarize a --trace JSONL file (outcomes, residency,
                  deletion denials, oracle latency; --audit re-feeds the
                  decisions to the trace auditor)
     lint         static diagnostics over schedule files (DCT000-DCT009)
     audit        replay a scheduler+policy decision trace and cross-check
                  every deletion against the C1/C2/safety oracles
     check        FILE: streaming serializability/atomicity checker over a
                  history (.sched or telemetry JSONL; --level, --checked,
                  --json); -s FILE: evaluate C1/C2/C4 on a schedule
     dot          print the conflict graph of a schedule file as DOT
     experiments  print the EX1-EX11 experiment tables
     reduce-cover emit the Theorem 5 schedule for a Set Cover instance
     reduce-sat   evaluate the Theorem 6 gadget for a 3-CNF formula
     demo         narrate the paper's Examples 1 and 2 *)

open Cmdliner

module Intset = Dct_graph.Intset
module Gs = Dct_deletion.Graph_state
module Policy = Dct_deletion.Policy
module Si = Dct_sched.Scheduler_intf
module Gen = Dct_workload.Generator

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- shared argument converters --- *)

let policy_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Policy.of_string s) in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Policy.name p))

let oracle_conv =
  let module O = Dct_graph.Cycle_oracle in
  let parse s = Result.map_error (fun e -> `Msg e) (O.backend_of_string s) in
  Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (O.backend_name b))

let oracle_arg =
  Arg.(
    value
    & opt (some oracle_conv) None
    & info [ "oracle" ] ~docv:"ORACLE"
        ~doc:
          "Cycle-detection backend for graph-based models: closure (bitset \
           transitive closure), topo (Pearce-Kelly incremental topological \
           order) or checked (run both, fail on the first disagreement).  \
           Default: plain DFS on the conflict graph.")

let policy_arg =
  Arg.(
    value
    & opt policy_conv Policy.Greedy_c1
    & info [ "p"; "policy" ] ~docv:"POLICY"
        ~doc:
          "Deletion policy: none | commit | noncurrent | greedy (alias: c1) \
           | exact (alias: c2) | exact-weighted | budget:<n>:<inner>.")

let gc_index_conv =
  let module D = Dct_deletion.Deletability_index in
  let parse s = Result.map_error (fun e -> `Msg e) (D.mode_of_string s) in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (D.mode_name m))

let gc_index_arg =
  Arg.(
    value
    & opt (some gc_index_conv) None
    & info [ "gc-index" ] ~docv:"INDEX"
        ~doc:
          "Deletability-index backend for the deletion policy's GC \
           decisions: naive (re-evaluate C1/C4 from scratch every round \
           — the reference), incremental (serve verdicts from a \
           mutation-hooked cache, re-checking only dirty tight \
           neighbourhoods) or checked (run both in lock-step and fail on \
           the first divergence, mirroring --oracle checked).  Graph \
           models only.")

let schedule_file =
  Arg.(
    required
    & opt (some file) None
    & info [ "s"; "schedule" ] ~docv:"FILE" ~doc:"Schedule file (see docs/format).")

(* --- simulate --- *)

let simulate model policy txns entities mpl skew seed long_readers
    long_reader_frac burst selfcheck oracle gc_index trace metrics_on json =
  (* "conflict" is the paper's name for the basic-model conflict-graph
     scheduler. *)
  let model = if model = "conflict" then "basic" else model in
  let graph_model =
    List.mem model [ "basic"; "certify"; "multiwrite"; "predeclared" ]
  in
  if (trace <> None || metrics_on) && not graph_model then begin
    Printf.eprintf
      "dct: --trace/--metrics are unsupported for model %S (no graph \
       scheduler to instrument)\n"
      model;
    exit 2
  end;
  if gc_index <> None && not graph_model then begin
    Printf.eprintf
      "dct: --gc-index is unsupported for model %S (no deletion policy to \
       index)\n"
      model;
    exit 2
  end;
  let trace_oc = Option.map open_out trace in
  let sink =
    match trace_oc with
    | Some oc -> Dct_telemetry.Sink.channel oc
    | None -> Dct_telemetry.Sink.null
  in
  let registry =
    if metrics_on then Some (Dct_telemetry.Metrics.create ()) else None
  in
  let tracer =
    if trace <> None || metrics_on then
      Dct_telemetry.Tracer.create ?metrics:registry ~sink ()
    else Dct_telemetry.Tracer.disabled
  in
  let burst_on, burst_off =
    match burst with None -> (0, 0) | Some pair -> pair
  in
  let profile =
    {
      Gen.default with
      Gen.n_txns = txns;
      n_entities = entities;
      mpl;
      skew;
      seed;
      long_readers;
      long_reader_frac;
      burst_on;
      burst_off;
    }
  in
  (* [gs] is the live graph state when the model has one — the hook the
     --selfcheck invariant audit needs. *)
  let handle, gs, schedule =
    match model with
    | "basic" ->
        let t =
          Dct_sched.Conflict_scheduler.create ~policy ?oracle ~tracer
            ?gc_index ()
        in
        ( Dct_sched.Conflict_scheduler.handle_of t,
          Some (fun () -> Dct_sched.Conflict_scheduler.graph_state t),
          Gen.basic profile )
    | "certify" ->
        ( Dct_sched.Certifier.handle ?oracle ~tracer ?gc_index (),
          None,
          Gen.basic profile )
    | "multiwrite" ->
        let t =
          Dct_sched.Multiwrite_scheduler.create
            ~deletion:(Dct_sched.Multiwrite_scheduler.C3_exact 8) ?oracle
            ~tracer ?gc_index ()
        in
        ( Dct_sched.Multiwrite_scheduler.handle_of t,
          Some (fun () -> Dct_sched.Multiwrite_scheduler.graph_state t),
          Gen.multiwrite profile )
    | "predeclared" ->
        let t =
          Dct_sched.Predeclared_scheduler.create ~use_c4_deletion:true ?oracle
            ~tracer ?gc_index ()
        in
        ( Dct_sched.Predeclared_scheduler.handle_of t,
          Some (fun () -> Dct_sched.Predeclared_scheduler.graph_state t),
          Gen.predeclared profile )
    | ("mvto" | "2pl" | "timestamp") when oracle <> None ->
        Printf.eprintf
          "dct: --oracle is unsupported for model %S (no conflict graph)\n"
          model;
        exit 2
    | "mvto" -> (Dct_sched.Mv_scheduler.handle ~vacuum:true (), None, Gen.basic profile)
    | "2pl" -> (Dct_sched.Lock_2pl.handle (), None, Gen.basic profile)
    | "timestamp" -> (Dct_sched.Timestamp_order.handle (), None, Gen.basic profile)
    | other -> Printf.ksprintf failwith "unknown model %S" other
  in
  let checked = ref 0 in
  let handle, observe =
    if not selfcheck then (handle, None)
    else
      match gs with
      | None ->
          Printf.eprintf
            "dct: --selfcheck is unsupported for model %S (no reduced graph \
             state)\n"
            model;
          exit 2
      | Some gs ->
          ( Dct_analysis.Invariant.selfcheck_handle ~gs handle,
            Some (fun _n _step _outcome -> incr checked) )
  in
  let r =
    try Dct_sim.Driver.run ?observe ~tracer handle schedule with
    | Dct_analysis.Invariant.Violation { context; violations } ->
        Printf.eprintf "selfcheck FAILED %s:\n" context;
        List.iter
          (fun v ->
            Printf.eprintf "  %s\n"
              (Format.asprintf "%a" Dct_analysis.Invariant.pp_violation v))
          violations;
        exit 1
    | Dct_graph.Cycle_oracle.Disagreement msg ->
        Printf.eprintf "oracle DISAGREEMENT: %s\n" msg;
        exit 1
    | Dct_deletion.Deletability_index.Divergence msg ->
        Printf.eprintf "gc-index DIVERGENCE: %s\n" msg;
        exit 1
  in
  Option.iter close_out trace_oc;
  if json then begin
    (* One JSON object of final statistics; the per-outcome keys reuse
       the [pp_outcome] spellings so they match Decision events and the
       ["outcome.<o>"] counters. *)
    let b = Buffer.create 256 in
    let first = ref true in
    let field k v =
      Buffer.add_string b (if !first then "{" else ",");
      first := false;
      Buffer.add_string b (Printf.sprintf "%S:%s" k v)
    in
    let str k v = field k (Printf.sprintf "%S" v) in
    let int_f k v = field k (string_of_int v) in
    let float_f k v = field k (Printf.sprintf "%.6g" v) in
    str "scheduler" r.Dct_sim.Driver.name;
    str "model" model;
    if model = "basic" then str "policy" (Policy.name policy);
    int_f "steps" r.Dct_sim.Driver.steps;
    int_f (Si.outcome_name Si.Accepted) r.Dct_sim.Driver.accepted;
    int_f (Si.outcome_name Si.Rejected) r.Dct_sim.Driver.rejected;
    int_f (Si.outcome_name Si.Delayed) r.Dct_sim.Driver.delayed;
    int_f (Si.outcome_name Si.Ignored) r.Dct_sim.Driver.ignored;
    int_f "committed" r.Dct_sim.Driver.final.Si.committed_total;
    int_f "aborted" r.Dct_sim.Driver.final.Si.aborted_total;
    int_f "deleted" r.Dct_sim.Driver.final.Si.deleted_total;
    int_f "peak_resident" r.Dct_sim.Driver.peak_resident;
    int_f "peak_arcs" r.Dct_sim.Driver.peak_arcs;
    float_f "mean_resident" r.Dct_sim.Driver.mean_resident;
    int_f "final_resident" r.Dct_sim.Driver.final.Si.resident_txns;
    float_f "wall_ms" (r.Dct_sim.Driver.wall_seconds *. 1000.0);
    Option.iter
      (fun m -> field "metrics" (Dct_telemetry.Metrics.to_json m))
      registry;
    Buffer.add_char b '}';
    print_endline (Buffer.contents b)
  end
  else begin
    Printf.printf "workload: %s\n"
      (Format.asprintf "%a" Gen.pp_profile profile);
    (match oracle with
    | Some b ->
        Printf.printf "oracle: %s\n" (Dct_graph.Cycle_oracle.backend_name b)
    | None -> ());
    (match gc_index with
    | Some m ->
        Printf.printf "gc-index: %s\n"
          (Dct_deletion.Deletability_index.mode_name m)
    | None -> ());
    if selfcheck then
      Printf.printf "selfcheck: invariants validated after each of %d steps\n"
        !checked;
    Dct_sim.Report.print_table
      ~headers:[ "metric"; "value" ]
      [
        [ "scheduler"; r.Dct_sim.Driver.name ];
        [ "steps"; string_of_int r.Dct_sim.Driver.steps ];
        [ "accepted"; string_of_int r.Dct_sim.Driver.accepted ];
        [ "rejected"; string_of_int r.Dct_sim.Driver.rejected ];
        [ "delayed"; string_of_int r.Dct_sim.Driver.delayed ];
        [ "committed"; string_of_int r.Dct_sim.Driver.final.Si.committed_total ];
        [ "aborted"; string_of_int r.Dct_sim.Driver.final.Si.aborted_total ];
        [ "deleted"; string_of_int r.Dct_sim.Driver.final.Si.deleted_total ];
        [ "peak resident"; string_of_int r.Dct_sim.Driver.peak_resident ];
        [ "mean resident";
          Dct_sim.Report.fmt_float r.Dct_sim.Driver.mean_resident ];
        [ "final resident";
          string_of_int r.Dct_sim.Driver.final.Si.resident_txns ];
        [ "wall (ms)";
          Dct_sim.Report.fmt_float (r.Dct_sim.Driver.wall_seconds *. 1000.0) ];
      ];
    Option.iter
      (fun m ->
        print_newline ();
        print_string (Dct_telemetry.Metrics.render m))
      registry
  end;
  0

let simulate_cmd =
  let model =
    Arg.(
      value
      & opt string "basic"
      & info [ "m"; "model" ] ~docv:"MODEL"
          ~doc:
            "Scheduler: basic (alias: conflict) | certify | multiwrite | \
             predeclared | mvto | 2pl | timestamp.")
  in
  let txns =
    Arg.(value & opt int 200 & info [ "n"; "txns" ] ~doc:"Transactions to run.")
  in
  let entities =
    Arg.(value & opt int 64 & info [ "e"; "entities" ] ~doc:"Database size.")
  in
  let mpl =
    Arg.(value & opt int 8 & info [ "j"; "mpl" ] ~doc:"Concurrent transactions.")
  in
  let skew =
    Arg.(
      value
      & opt string "zipf:0.9"
      & info [ "skew" ] ~doc:"uniform | zipf:<theta> | hotspot:<frac>:<prob>.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let long_readers =
    Arg.(value & opt int 0 & info [ "long-readers" ] ~doc:"Pinning readers.")
  in
  let long_reader_frac =
    Arg.(
      value & opt float 0.0
      & info [ "long-reader-frac" ] ~docv:"F"
          ~doc:
            "Additional pinning readers as a fraction of --txns (the \
             adversarial-GC knob: long read-only transactions pin their \
             tight successors' deletability).")
  in
  let burst =
    Arg.(
      value
      & opt (some (pair ~sep:':' int int)) None
      & info [ "burst" ] ~docv:"ON:OFF"
          ~doc:
            "Bursty (on/off modulated) arrivals: new transactions start \
             only during on windows of ON schedule positions separated by \
             off windows of OFF positions, so concurrency drains between \
             bursts.")
  in
  let selfcheck =
    Arg.(
      value & flag
      & info [ "selfcheck" ]
          ~doc:
            "Validate the graph-state invariants (acyclicity, index \
             mirrors, closure agreement, no resurrected transactions) \
             after every step; exit 1 on the first violation.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record one JSONL telemetry event per scheduler decision \
             (steps, outcomes, deletions, oracle queries, residency \
             checkpoints) to $(docv); summarize with $(b,dct trace).  \
             Graph models only.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Collect the metrics registry (outcome counters, deletion \
             success/denial counters, residency gauges with high-water \
             marks, oracle latency histograms) and print it after the \
             run.  Graph models only.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the final statistics as a single machine-parsable \
             JSON object instead of the table (with --metrics the \
             registry is embedded under \"metrics\").")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a synthetic workload through a scheduler")
    Term.(
      const simulate $ model $ policy_arg $ txns $ entities $ mpl $ skew $ seed
      $ long_readers $ long_reader_frac $ burst $ selfcheck $ oracle_arg
      $ gc_index_arg $ trace_arg $ metrics_arg $ json_arg)

(* --- serve --- *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let serve shards batch policy partitioner_spec steps txns entities mpl skew seed
    cross_shard oracle gc_index domains replay differential listen flush_ms
    trace metrics_on json =
  let module Eng = Dct_engine.Engine in
  let module Par = Dct_engine.Parallel in
  let partitioner =
    match Dct_engine.Partitioner.of_string partitioner_spec ~shards with
    | Ok p -> p
    | Error e ->
        Printf.eprintf "dct: serve: %s\n" e;
        exit 2
  in
  let profile =
    {
      Gen.default with
      Gen.n_txns = txns;
      n_entities = entities;
      mpl;
      skew;
      seed;
      shards;
      cross_shard;
    }
  in
  let schedule = Gen.basic profile in
  let schedule =
    match steps with None -> schedule | Some n -> take n schedule
  in
  let trace_oc = Option.map open_out trace in
  let sink =
    match trace_oc with
    | Some oc -> Dct_telemetry.Sink.channel oc
    | None -> Dct_telemetry.Sink.null
  in
  let registry =
    if metrics_on then Some (Dct_telemetry.Metrics.create ()) else None
  in
  let tracer =
    if trace <> None || metrics_on then
      Dct_telemetry.Tracer.create ?metrics:registry ~sink ()
    else Dct_telemetry.Tracer.disabled
  in
  let cfg =
    Eng.config ~policy ~partitioner ?oracle ~tracer ?gc_index ~shards ~batch ()
  in
  (* --replay always wins (it is single-threaded anyway); --domains > 1
     selects one applier domain per shard, falling back to the
     sequential engine on a single-core host per the determinism
     contract — domains there are OS threads and can only add noise. *)
  let parallel_mode =
    match replay with
    | Some interleaving_seed -> Some (Par.Replay interleaving_seed)
    | None ->
        if domains > 1 then
          if Par.available_domains () = 1 then begin
            Printf.eprintf
              "dct: serve: single-core host: --domains %d falls back to \
               the sequential engine (use --replay SEED for the \
               deterministic interleaving simulator)\n"
              domains;
            None
          end
          else Some Par.Domains
        else None
  in
  let par_info = ref None in
  let serve_socket addr_spec =
    (* Network mode: clients supply the traffic; the generated schedule
       and --steps are ignored.  Runs until SIGINT/SIGTERM, then shuts
       down, finishes the engine and prints the usual report. *)
    let addr =
      match Dct_net.Addr.of_string addr_spec with
      | Ok a -> a
      | Error e ->
          Printf.eprintf "dct: serve: --listen: %s\n" e;
          exit 2
    in
    let backend ~on_step =
      match parallel_mode with
      | None -> Dct_net.Backend.seq ~on_step cfg
      | Some mode -> Dct_net.Backend.parallel ~mode ~on_step cfg
    in
    let srv = Dct_net.Server.create ~flush_ms ~backend addr in
    let stop_requested = ref false in
    let on_signal = Sys.Signal_handle (fun _ -> stop_requested := true) in
    Sys.set_signal Sys.sigint on_signal;
    (try Sys.set_signal Sys.sigterm on_signal with Invalid_argument _ -> ());
    let t0 = Unix.gettimeofday () in
    Dct_net.Server.start srv;
    Printf.printf
      "dct: serve: listening on %s (%s backend, %d shard(s), batch %d, \
       flush %d ms); Ctrl-C to stop\n\
       %!"
      (Dct_net.Addr.to_string (Dct_net.Server.addr srv))
      (Dct_net.Backend.name (Dct_net.Server.backend srv))
      shards batch flush_ms;
    while not !stop_requested do
      Thread.delay 0.1
    done;
    Dct_net.Server.stop srv;
    Printf.printf "dct: serve: %d connection(s) served, %d protocol error(s)\n"
      (Dct_net.Server.connections srv)
      (Dct_net.Server.proto_errors srv);
    Dct_net.Server.finish srv ~wall_seconds:(Unix.gettimeofday () -. t0)
  in
  let r =
    try
      match (listen, parallel_mode) with
      | Some addr_spec, _ -> serve_socket addr_spec
      | None, None -> Eng.run (Eng.create cfg) schedule
      | None, Some mode ->
          let pr = Par.run ~mode cfg schedule in
          par_info := Some pr;
          pr.Par.base
    with
    | Dct_deletion.Deletability_index.Divergence msg ->
        Printf.eprintf "gc-index DIVERGENCE: %s\n" msg;
        exit 1
    | Par.Shard_failure (shard, msg) ->
        (* a dead shard applier must never exit 0 — even one that died
           after the last awaited barrier *)
        Printf.eprintf "dct: serve: shard %d domain failed: %s\n" shard msg;
        exit 1
  in
  Option.iter close_out trace_oc;
  let c = r.Eng.coordinator in
  let throughput =
    if r.Eng.wall_seconds > 0.0 then
      float_of_int r.Eng.steps /. r.Eng.wall_seconds
    else 0.0
  in
  if json then begin
    let b = Buffer.create 512 in
    let first = ref true in
    let field k v =
      Buffer.add_string b (if !first then "{" else ",");
      first := false;
      Buffer.add_string b (Printf.sprintf "%S:%s" k v)
    in
    let str k v = field k (Printf.sprintf "%S" v) in
    let int_f k v = field k (string_of_int v) in
    let float_f k v = field k (Printf.sprintf "%.6g" v) in
    str "engine" r.Eng.name;
    int_f "shards" r.Eng.shards;
    int_f "batch" r.Eng.batch;
    (match !par_info with
    | Some (pr : Par.report) ->
        int_f "domains" pr.Par.domains;
        str "mode" pr.Par.mode;
        int_f "barriers" pr.Par.barriers;
        field "lockstep" (string_of_bool pr.Par.lockstep)
    | None -> str "mode" "sequential");
    str "policy" (Policy.name policy);
    int_f "steps" r.Eng.steps;
    int_f (Si.outcome_name Si.Accepted) r.Eng.accepted;
    int_f (Si.outcome_name Si.Rejected) r.Eng.rejected;
    int_f (Si.outcome_name Si.Ignored) r.Eng.ignored;
    int_f "committed" r.Eng.committed;
    int_f "aborted" r.Eng.aborted;
    int_f "full_batches" r.Eng.full_batches;
    int_f "ticks" r.Eng.ticks;
    int_f "coordinator_resident" c.Dct_engine.Coordinator.resident_txns;
    int_f "coordinator_hwm" c.Dct_engine.Coordinator.resident_hwm;
    int_f "deleted" c.Dct_engine.Coordinator.deleted_total;
    int_f "shard_resident_hwm" r.Eng.shard_resident_hwm;
    int_f "cross_shard_arcs" r.Eng.cross_shard_arcs;
    int_f "local_arcs" r.Eng.local_arcs;
    int_f "distributed_txns" r.Eng.distributed_txns;
    float_f "throughput_steps_per_s" throughput;
    float_f "wall_ms" (r.Eng.wall_seconds *. 1000.0);
    field "shard_stats"
      (Printf.sprintf "[%s]"
         (String.concat ","
            (Array.to_list
               (Array.mapi
                  (fun i (s : Dct_engine.Shard.stats) ->
                    Printf.sprintf
                      "{\"shard\":%d,\"hosted\":%d,\"resident\":%d,\
                       \"resident_hwm\":%d,\"committed\":%d,\"aborted\":%d,\
                       \"deleted_local\":%d,\"deleted_forced\":%d,\
                       \"wal_retained\":%d,\"wal_truncated\":%d}"
                      i s.hosted_total s.resident_txns s.resident_hwm
                      s.committed s.aborted s.deleted_local s.deleted_forced
                      s.wal_retained s.wal_truncated)
                  r.Eng.shard_stats))));
    Option.iter
      (fun m -> field "metrics" (Dct_telemetry.Metrics.to_json m))
      registry;
    Buffer.add_char b '}';
    print_endline (Buffer.contents b)
  end
  else begin
    Printf.printf "workload: %s\n" (Format.asprintf "%a" Gen.pp_profile profile);
    Printf.printf "engine: %s\n" r.Eng.name;
    (match !par_info with
    | Some (pr : Par.report) ->
        Printf.printf "parallel: %s, %d applier domain(s), %d barriers%s\n"
          pr.Par.mode pr.Par.domains pr.Par.barriers
          (if pr.Par.lockstep then ", lock-step (telemetry on)" else "")
    | None -> ());
    Dct_sim.Report.print_table
      ~headers:[ "metric"; "value" ]
      [
        [ "steps"; string_of_int r.Eng.steps ];
        [ "accepted"; string_of_int r.Eng.accepted ];
        [ "rejected"; string_of_int r.Eng.rejected ];
        [ "committed"; string_of_int r.Eng.committed ];
        [ "aborted"; string_of_int r.Eng.aborted ];
        [ "full batches"; string_of_int r.Eng.full_batches ];
        [ "ticks"; string_of_int r.Eng.ticks ];
        [ "coordinator resident";
          string_of_int c.Dct_engine.Coordinator.resident_txns ];
        [ "coordinator hwm";
          string_of_int c.Dct_engine.Coordinator.resident_hwm ];
        [ "deleted (policy)";
          string_of_int c.Dct_engine.Coordinator.deleted_total ];
        [ "shard resident hwm"; string_of_int r.Eng.shard_resident_hwm ];
        [ "cross-shard arcs"; string_of_int r.Eng.cross_shard_arcs ];
        [ "local arcs"; string_of_int r.Eng.local_arcs ];
        [ "distributed txns"; string_of_int r.Eng.distributed_txns ];
        [ "throughput (steps/s)"; Dct_sim.Report.fmt_float throughput ];
        [ "wall (ms)";
          Dct_sim.Report.fmt_float (r.Eng.wall_seconds *. 1000.0) ];
      ];
    print_newline ();
    Dct_sim.Report.print_table
      ~headers:
        [ "shard"; "hosted"; "resident"; "hwm"; "committed"; "aborted";
          "gc local"; "gc forced"; "wal" ]
      (Array.to_list
         (Array.mapi
            (fun i (s : Dct_engine.Shard.stats) ->
              [
                string_of_int i;
                string_of_int s.hosted_total;
                string_of_int s.resident_txns;
                string_of_int s.resident_hwm;
                string_of_int s.committed;
                string_of_int s.aborted;
                string_of_int s.deleted_local;
                string_of_int s.deleted_forced;
                string_of_int s.wal_retained;
              ])
            r.Eng.shard_stats));
    Option.iter
      (fun m ->
        print_newline ();
        print_string (Dct_telemetry.Metrics.render m))
      registry
  end;
  if not differential then 0
  else if listen <> None then begin
    Printf.eprintf
      "dct: serve: --differential is ignored with --listen (the served \
       traffic came from clients, not the generated schedule)\n";
    0
  end
  else begin
    try
      match parallel_mode with
      | Some mode ->
          let d =
            Par.differential ~mode ?oracle ~partitioner ?gc_index ~shards
              ~batch ~policy schedule
          in
          if not json then begin
            print_newline ();
            Format.printf "%a@." Par.pp_differential d
          end;
          if Par.differential_ok d then 0
          else begin
            Printf.eprintf
              "dct: serve: differential FAILED (parallel engine diverges from \
               the single-node scheduler or the sequential engine)\n";
            1
          end
      | None ->
          let d =
            Eng.differential ?oracle ~partitioner ?gc_index ~shards ~batch
              ~policy schedule
          in
          if not json then begin
            print_newline ();
            Format.printf "%a@." Eng.pp_differential d
          end;
          if Eng.differential_ok d then 0
          else begin
            Printf.eprintf
              "dct: serve: differential FAILED (engine diverges from the \
               single-node scheduler)\n";
            1
          end
    with Par.Shard_failure (shard, msg) ->
      (* the differential's parallel run can lose an applier too *)
      Printf.eprintf "dct: serve: shard %d domain failed: %s\n" shard msg;
      1
  end

let serve_cmd =
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Number of shards.")
  in
  let batch =
    Arg.(
      value & opt int 16
      & info [ "b"; "batch" ] ~doc:"Admission batch size (group commit).")
  in
  let partitioner_arg =
    Arg.(
      value
      & opt string "hash"
      & info [ "partitioner" ] ~docv:"SPEC"
          ~doc:"Data placement: hash | range:<span>.")
  in
  let steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "steps" ] ~docv:"S"
          ~doc:
            "Submit only the first $(docv) steps of the generated \
             workload (default: all of it).")
  in
  let txns =
    Arg.(value & opt int 200 & info [ "n"; "txns" ] ~doc:"Transactions to run.")
  in
  let entities =
    Arg.(value & opt int 64 & info [ "e"; "entities" ] ~doc:"Database size.")
  in
  let mpl =
    Arg.(value & opt int 8 & info [ "j"; "mpl" ] ~doc:"Concurrent transactions.")
  in
  let skew =
    Arg.(
      value
      & opt string "zipf:0.9"
      & info [ "skew" ] ~doc:"uniform | zipf:<theta> | hotspot:<frac>:<prob>.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let cross_shard =
    Arg.(
      value
      & opt float 0.1
      & info [ "cross-shard" ] ~docv:"P"
          ~doc:
            "Probability a shard-affine transaction's key is drawn \
             outside its home shard (distributed-transaction rate).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "$(docv) > 1 runs the parallel engine: one OCaml domain per \
             shard applying commands behind the sequential coordinator. \
             Decision traces are identical to the sequential engine's by \
             construction. Falls back to the sequential engine (with a \
             note) on a single-core host or with $(docv) = 1.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:
            "Run the parallel engine's protocol in the deterministic \
             single-threaded interleaving simulator, with $(docv) \
             choosing which shard advances between coordinator sends. \
             Every seed must produce identical results; overrides \
             --domains.")
  in
  let differential =
    Arg.(
      value & flag
      & info [ "differential" ]
          ~doc:
            "Re-run the same step sequence through a single-node \
             conflict-graph scheduler in lock-step and verify identical \
             accept/reject outcomes, per-shard residency bounded by the \
             single-node residency, and identical final store contents \
             (under --domains/--replay additionally: identical deletion \
             rounds, per-shard state, and telemetry trace vs the \
             sequential engine); exit 1 on any divergence.")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve real traffic instead of the generated workload: accept \
             concurrent clients on $(docv) (unix:PATH, tcp:HOST:PORT, or \
             HOST:PORT) speaking the binary or line wire dialect, feed \
             their steps through the admission queue, and route each \
             decision back to the issuing client.  Runs until SIGINT, \
             then prints the usual report.")
  in
  let flush_ms_arg =
    Arg.(
      value & opt int 20
      & info [ "flush-ms" ] ~docv:"MS"
          ~doc:
            "Group-commit flush interval for --listen: a partial \
             admission batch waits at most $(docv) ms before being \
             processed.  0 disables the timer (batches flush only when \
             full or on control requests).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record one JSONL telemetry event per engine decision to \
             $(docv); the trace has the single-node shape and \
             $(b,dct trace) (including --audit) consumes it unmodified.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Collect the metrics registry (outcome counters, per-shard \
             residency gauges, deletion counters) and print it after the \
             run.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the report as one machine-parsable JSON object.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a workload through the online sharded engine: batched \
          admission, coordinator-exact decisions, per-shard stores and \
          WALs, deletion-policy GC at both scopes.  With --listen, serve \
          the engine to socket clients instead.")
    Term.(
      const serve $ shards $ batch $ policy_arg $ partitioner_arg $ steps
      $ txns $ entities $ mpl $ skew $ seed $ cross_shard $ oracle_arg
      $ gc_index_arg $ domains_arg $ replay_arg $ differential $ listen_arg
      $ flush_ms_arg $ trace_arg $ metrics_arg $ json_arg)

(* --- client --- *)

let client_main connect_spec dialect_line ops =
  let module Net = Dct_net in
  let addr =
    match Net.Addr.of_string connect_spec with
    | Ok a -> a
    | Error e ->
        Printf.eprintf "dct: client: %s\n" e;
        exit 2
  in
  let dialect = if dialect_line then Net.Wire.Line else Net.Wire.Binary in
  let c = Net.Client.connect ~dialect addr in
  let rc = ref 0 in
  (* One request per line, in the line-dialect syntax, whatever dialect
     the connection speaks; responses print as line-dialect text. *)
  let run_line line =
    match Net.Wire.decode_request Net.Wire.Line (line ^ "\n") ~pos:0 with
    | Error e ->
        Printf.eprintf "dct: client: %s\n" (Net.Wire.error_to_string e);
        rc := 2
    | Ok (req, _) -> (
        match Net.Client.call c req with
        | Ok resp -> print_string (Net.Wire.encode_response Net.Wire.Line resp)
        | Error e ->
            Printf.eprintf "dct: client: %s\n" (Net.Wire.error_to_string e);
            rc := 1)
  in
  (match ops with
  | [] -> (
      (* no request on the command line: read them from stdin *)
      try
        while true do
          let line = String.trim (input_line stdin) in
          if line <> "" then run_line line
        done
      with End_of_file -> ())
  | words -> run_line (String.concat " " words));
  Net.Client.close c;
  !rc

let client_cmd =
  let connect =
    Arg.(
      required
      & opt (some string) None
      & info [ "c"; "connect" ] ~docv:"ADDR"
          ~doc:"Server address: unix:PATH, tcp:HOST:PORT, or HOST:PORT.")
  in
  let dialect_line =
    Arg.(
      value & flag
      & info [ "line" ]
          ~doc:
            "Speak the line dialect on the wire instead of the binary one \
             (the server sniffs either).")
  in
  let ops =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "One request, e.g. $(b,begin 7), $(b,read 7 42), \
             $(b,write 7 1,2), $(b,complete 7), $(b,abort 7), $(b,stats). \
             Omitted: read one request per line from stdin.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send requests to a $(b,dct serve --listen) server and print the \
          responses")
    Term.(const client_main $ connect $ dialect_line $ ops)

(* --- bench-net --- *)

let bench_net mix_spec clients txns_per_client keys shards batch policy
    gc_index domains replay flush_ms dialect_line seed json =
  let module Eng = Dct_engine.Engine in
  let module Par = Dct_engine.Parallel in
  let module Net = Dct_net in
  let module Mix = Dct_workload.Mix in
  let module Metrics = Dct_telemetry.Metrics in
  let mix =
    match Mix.of_string mix_spec with
    | Ok m -> m
    | Error e ->
        Printf.eprintf "dct: bench-net: %s\n" e;
        exit 2
  in
  let parallel_mode =
    match replay with
    | Some interleaving_seed -> Some (Par.Replay interleaving_seed)
    | None ->
        if domains > 1 && Par.available_domains () > 1 then Some Par.Domains
        else begin
          if domains > 1 then
            Printf.eprintf
              "dct: bench-net: single-core host: --domains %d falls back to \
               the sequential engine\n"
              domains;
          None
        end
  in
  let cfg = Eng.config ~policy ?gc_index ~shards ~batch () in
  let backend ~on_step =
    match parallel_mode with
    | None -> Net.Backend.seq ~on_step cfg
    | Some mode -> Net.Backend.parallel ~mode ~on_step cfg
  in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dct-bench-%d.sock" (Unix.getpid ()))
  in
  let srv = Net.Server.create ~flush_ms ~backend (Net.Addr.Unix_path sock) in
  Net.Server.start srv;
  let dialect = if dialect_line then Net.Wire.Line else Net.Wire.Binary in
  let dcfg =
    { Net.Driver.clients; txns_per_client; mix; keys; seed; dialect }
  in
  let dres = Net.Driver.run dcfg (Net.Server.addr srv) in
  Net.Server.stop srv;
  let report =
    try Net.Server.finish srv ~wall_seconds:dres.Net.Driver.wall_seconds
    with Par.Shard_failure (shard, msg) ->
      Printf.eprintf "dct: bench-net: shard %d domain failed: %s\n" shard msg;
      exit 1
  in
  let m = dres.Net.Driver.metrics in
  let pct name p = Metrics.histo_percentile m ("net.latency." ^ name) p in
  if json then begin
    let b = Buffer.create 512 in
    let first = ref true in
    let field k v =
      Buffer.add_string b (if !first then "{" else ",");
      first := false;
      Buffer.add_string b (Printf.sprintf "%S:%s" k v)
    in
    let str k v = field k (Printf.sprintf "%S" v) in
    let int_f k v = field k (string_of_int v) in
    let float_f k v = field k (Printf.sprintf "%.6g" v) in
    str "mix" (Mix.name mix);
    str "backend" (Net.Backend.name (Net.Server.backend srv));
    int_f "shards" shards;
    int_f "batch" batch;
    int_f "clients" clients;
    int_f "txns" dres.Net.Driver.txns;
    int_f "completed" dres.Net.Driver.completed;
    int_f "aborted" dres.Net.Driver.aborted;
    int_f "ops" dres.Net.Driver.ops;
    float_f "wall_s" dres.Net.Driver.wall_seconds;
    float_f "throughput_ops_per_s" dres.Net.Driver.throughput;
    float_f "p50_us" (pct "all" 50. /. 1e3);
    float_f "p90_us" (pct "all" 90. /. 1e3);
    float_f "p99_us" (pct "all" 99. /. 1e3);
    int_f "coordinator_hwm"
      report.Eng.coordinator.Dct_engine.Coordinator.resident_hwm;
    int_f "shard_resident_hwm" report.Eng.shard_resident_hwm;
    Buffer.add_char b '}';
    print_endline (Buffer.contents b)
  end
  else begin
    Printf.printf "mix: %s — %s\n" (Mix.name mix) (Mix.description mix);
    Dct_sim.Report.print_table
      ~headers:[ "metric"; "value" ]
      [
        [ "backend"; Net.Backend.name (Net.Server.backend srv) ];
        [ "clients"; string_of_int clients ];
        [ "transactions"; string_of_int dres.Net.Driver.txns ];
        [ "completed"; string_of_int dres.Net.Driver.completed ];
        [ "aborted"; string_of_int dres.Net.Driver.aborted ];
        [ "ops"; string_of_int dres.Net.Driver.ops ];
        [ "throughput (ops/s)";
          Dct_sim.Report.fmt_float dres.Net.Driver.throughput ];
        [ "p50 (us)"; Dct_sim.Report.fmt_float (pct "all" 50. /. 1e3) ];
        [ "p90 (us)"; Dct_sim.Report.fmt_float (pct "all" 90. /. 1e3) ];
        [ "p99 (us)"; Dct_sim.Report.fmt_float (pct "all" 99. /. 1e3) ];
        [ "coordinator hwm";
          string_of_int
            report.Eng.coordinator.Dct_engine.Coordinator.resident_hwm ];
        [ "shard resident hwm"; string_of_int report.Eng.shard_resident_hwm ];
        [ "wall (s)";
          Dct_sim.Report.fmt_float dres.Net.Driver.wall_seconds ];
      ]
  end;
  0

let bench_net_cmd =
  let mix =
    Arg.(
      value
      & opt string "ycsb-b"
      & info [ "mix" ] ~docv:"MIX"
          ~doc:
            "Workload mix: ycsb-a..ycsb-f, tpcc, long-reader-pin, hot-key, \
             bursty.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent connections.")
  in
  let txns =
    Arg.(
      value & opt int 100
      & info [ "n"; "txns" ] ~doc:"Transactions per client.")
  in
  let keys =
    Arg.(value & opt int 1024 & info [ "keys" ] ~doc:"Loaded keyspace size.")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Number of shards.")
  in
  let batch =
    Arg.(
      value & opt int 16
      & info [ "b"; "batch" ] ~doc:"Admission batch size (group commit).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"$(docv) > 1 serves from the parallel engine.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:
            "Serve from the parallel engine's deterministic interleaving \
             simulator; overrides --domains.")
  in
  let flush_ms_arg =
    Arg.(
      value & opt int 5
      & info [ "flush-ms" ] ~docv:"MS"
          ~doc:"Group-commit flush interval (0 disables the timer).")
  in
  let dialect_line =
    Arg.(
      value & flag
      & info [ "line" ] ~doc:"Drive the line dialect instead of binary.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the report as one machine-parsable JSON object.")
  in
  Cmd.v
    (Cmd.info "bench-net"
       ~doc:
         "Drive a workload mix against an in-process loopback server \
          (Unix socket) and report throughput, latency percentiles and \
          residency high-water marks")
    Term.(
      const bench_net $ mix $ clients $ txns $ keys $ shards $ batch
      $ policy_arg $ gc_index_arg $ domains_arg $ replay_arg $ flush_ms_arg
      $ dialect_line $ seed $ json_arg)

(* --- trace --- *)

let trace_report path audit_on safety_depth strict =
  let module E = Dct_telemetry.Event in
  match Dct_telemetry.Sink.read_file_lenient path with
  | Error e ->
      Printf.eprintf "dct: trace: %s\n" e;
      2
  | Ok (_, (lineno, e) :: _) when strict ->
      Printf.eprintf "dct: trace: %s: line %d: %s\n" path lineno e;
      Printf.eprintf "dct: trace: stopping at first malformed line (--strict)\n";
      1
  | Ok ([], []) ->
      (* An empty trace is almost always a mistake (wrong file, crashed
         producer) — refuse rather than print an all-zero summary. *)
      Printf.eprintf
        "dct: trace: %s: empty trace (no events; was the file produced \
         with --trace?)\n"
        path;
      2
  | Ok (events, errors) ->
      List.iter
        (fun (lineno, e) ->
          Printf.eprintf "dct: trace: %s: line %d: %s\n" path lineno e)
        errors;
      if events = [] then begin
        Printf.eprintf
          "dct: trace: %s: no parseable events (%d malformed lines)\n" path
          (List.length errors);
        exit 2
      end;
      if errors <> [] then
        Printf.eprintf
          "dct: trace: %s: %d malformed lines skipped; summarizing the %d \
           parseable events\n"
          path (List.length errors) (List.length events);
      let bump tbl key n =
        Hashtbl.replace tbl key
          (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      in
      let sorted tbl =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
      in
      let outcomes = Hashtbl.create 8 in
      let reasons = Hashtbl.create 8 in
      (* policy -> (candidates examined, deleted, blocked) *)
      let deletions = Hashtbl.create 8 in
      let denials = Hashtbl.create 8 in
      let oracle = Hashtbl.create 8 in
      (* GC rounds are probe observations too (op = "gc", backend = the
         deletability-index mode); they get their own section rather
         than a row in the oracle table. *)
      let gc = Hashtbl.create 4 in
      let checkpoints = ref [] in
      let steps = ref 0 and cycles = ref 0 and restarts = ref 0 in
      let del_bump policy f =
        let c, d, b =
          Option.value ~default:(0, 0, 0) (Hashtbl.find_opt deletions policy)
        in
        Hashtbl.replace deletions policy (f (c, d, b))
      in
      List.iter
        (function
          | E.Step_submitted _ -> incr steps
          | E.Decision { outcome; reason; _ } ->
              bump outcomes outcome 1;
              if reason <> "" then bump reasons (outcome, reason) 1
          | E.Deletion_attempted { policy; candidates } ->
              del_bump policy (fun (c, d, b) ->
                  (c + List.length candidates, d, b))
          | E.Deletion_ok { policy; deleted } ->
              del_bump policy (fun (c, d, b) -> (c, d + List.length deleted, b))
          | E.Deletion_blocked { policy; condition; _ } ->
              del_bump policy (fun (c, d, b) -> (c, d, b + 1));
              bump denials (policy, condition) 1
          | E.Oracle_query { op; backend; ns } ->
              let tbl, key =
                if op = "gc" then (gc, (backend, op)) else (oracle, (backend, op))
              in
              let cell =
                match Hashtbl.find_opt tbl key with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add tbl key r;
                    r
              in
              cell := ns :: !cell
          | E.Cycle_rejected _ -> incr cycles
          | E.Restart _ -> incr restarts
          | E.Checkpoint_stats s -> checkpoints := s :: !checkpoints)
        events;
      let checkpoints = List.rev !checkpoints in
      Printf.printf "trace: %s (%d events, %d steps)\n" path
        (List.length events) !steps;
      if Hashtbl.length outcomes > 0 then begin
        print_newline ();
        Dct_sim.Report.print_table ~headers:[ "outcome"; "count" ]
          (List.map
             (fun (k, v) -> [ k; string_of_int v ])
             (sorted outcomes))
      end;
      if Hashtbl.length reasons > 0 then begin
        print_newline ();
        Dct_sim.Report.print_table
          ~headers:[ "outcome"; "reason"; "count" ]
          (List.map
             (fun ((o, r), v) -> [ o; r; string_of_int v ])
             (sorted reasons))
      end;
      if !cycles > 0 then
        Printf.printf "cycle rejections (with witness): %d\n" !cycles;
      if !restarts > 0 then Printf.printf "restarts scheduled: %d\n" !restarts;
      if Hashtbl.length deletions > 0 then begin
        print_newline ();
        Dct_sim.Report.print_table
          ~headers:[ "policy"; "candidates"; "deleted"; "blocked" ]
          (List.map
             (fun (p, (c, d, b)) ->
               [ p; string_of_int c; string_of_int d; string_of_int b ])
             (sorted deletions));
        if Hashtbl.length denials > 0 then begin
          print_newline ();
          Dct_sim.Report.print_table
            ~headers:[ "policy"; "blocking condition"; "denials" ]
            (List.map
               (fun ((p, c), v) -> [ p; c; string_of_int v ])
               (sorted denials))
        end
      end;
      (match checkpoints with
      | [] -> ()
      | cps ->
          print_newline ();
          let n = List.length cps in
          let hwm =
            List.fold_left (fun m c -> max m c.E.resident_txns) 0 cps
          in
          let bytes_hwm =
            List.fold_left (fun m c -> max m c.E.resident_bytes) 0 cps
          in
          Printf.printf
            "residency: %d checkpoints, high-water mark %d resident txns\n" n
            hwm;
          if bytes_hwm > 0 then
            Printf.printf "graph substrate high-water mark: %d bytes\n"
              bytes_hwm;
          (* Cap the timeline at ~20 evenly spaced rows, always keeping
             the last checkpoint (the post-drain state). *)
          let stride = (n + 19) / 20 in
          let rows =
            List.filteri
              (fun i _ -> i mod stride = 0 || i = n - 1)
              cps
          in
          if List.length rows < n then
            Printf.printf "(timeline sampled every %d checkpoints)\n" stride;
          Dct_sim.Report.print_table
            ~headers:
              [ "step"; "resident"; "arcs"; "active"; "committed"; "aborted";
                "deleted"; "bytes" ]
            (List.map
               (fun c ->
                 [
                   string_of_int c.E.at_step;
                   string_of_int c.E.resident_txns;
                   string_of_int c.E.resident_arcs;
                   string_of_int c.E.active_txns;
                   string_of_int c.E.committed;
                   string_of_int c.E.aborted;
                   string_of_int c.E.deleted;
                   string_of_int c.E.resident_bytes;
                 ])
               rows));
      let pct p xs = Dct_sim.Metrics.percentile p xs in
      if Hashtbl.length oracle > 0 then begin
        print_newline ();
        Dct_sim.Report.print_table
          ~headers:
            [ "backend"; "op"; "queries"; "p50 ns"; "p90 ns"; "p99 ns";
              "max ns" ]
          (List.map
             (fun ((bk, op), cell) ->
               let xs = !cell in
               [
                 bk; op;
                 string_of_int (List.length xs);
                 Printf.sprintf "%.0f" (pct 50.0 xs);
                 Printf.sprintf "%.0f" (pct 90.0 xs);
                 Printf.sprintf "%.0f" (pct 99.0 xs);
                 Printf.sprintf "%.0f" (pct 100.0 xs);
               ])
             (List.sort compare
                (Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle [])))
      end;
      if Hashtbl.length gc > 0 then begin
        print_newline ();
        Printf.printf "gc (per-call latency by deletability-index backend):\n";
        Dct_sim.Report.print_table
          ~headers:
            [ "gc index"; "calls"; "p50 ns"; "p90 ns"; "p99 ns"; "max ns" ]
          (List.map
             (fun ((bk, _op), cell) ->
               let xs = !cell in
               [
                 bk;
                 string_of_int (List.length xs);
                 Printf.sprintf "%.0f" (pct 50.0 xs);
                 Printf.sprintf "%.0f" (pct 90.0 xs);
                 Printf.sprintf "%.0f" (pct 99.0 xs);
                 Printf.sprintf "%.0f" (pct 100.0 xs);
               ])
             (List.sort compare
                (Hashtbl.fold (fun k v acc -> (k, v) :: acc) gc [])))
      end;
      (* Malformed lines poison the summary's accounting: succeed only
         on a fully parseable trace. *)
      let clean = if errors = [] then 0 else 1 in
      if not audit_on then clean
      else begin
        let module A = Dct_analysis.Audit in
        print_newline ();
        match A.of_telemetry events with
        | Error e ->
            Printf.eprintf "dct: trace: --audit: %s\n" e;
            2
        | Ok tr ->
            let report = A.audit ?safety_depth tr in
            Format.printf "%a@." (fun ppf r -> A.pp_report ppf r) report;
            if A.ok report then clean else 1
      end

let trace_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"JSONL telemetry file written by $(b,dct simulate --trace).")
  in
  let audit_on =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Rebuild the decision trace from the telemetry events and \
             cross-check it with the deletion auditor (basic-model \
             traces only; exit 1 on the first unjustified decision).")
  in
  let safety_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "safety-depth" ] ~docv:"D"
          ~doc:
            "With --audit, also consult the bounded ground-truth safety \
             search for deletions failing both condition checks.  \
             Expensive; keep at most 3.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Stop at the first malformed line instead of skipping and \
             summarizing the parseable remainder.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Summarize a telemetry trace: per-outcome decision counts, \
          rejection reasons, deletion successes and denial reasons per \
          policy, residency timeline with high-water mark, oracle \
          latency percentiles per backend and operation, and per-call \
          GC latency percentiles per deletability-index backend.  Exits \
          0 on a clean summary, 1 on malformed lines or an --audit \
          finding, 2 on unreadable or empty input.")
    Term.(const trace_report $ file $ audit_on $ safety_depth $ strict)

(* --- lint --- *)

let lint files machine strict =
  let module L = Dct_analysis.Lint in
  List.fold_left
    (fun worst path ->
      match L.lint_file path with
      | Error e ->
          Printf.eprintf "dct: lint: %s\n" e;
          max worst 2
      | Ok findings ->
          print_string
            (if machine then L.render_machine ~file:path findings
             else L.render ~file:path findings);
          max worst (L.exit_code ~strict findings))
    0 files

let lint_cmd =
  (* [Arg.string], not [Arg.file]: unreadable paths must flow through
     [Lint.lint_file] so the documented exit code 2 applies. *)
  let files =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Schedule files to lint.")
  in
  let machine =
    Arg.(
      value & flag
      & info [ "machine" ]
          ~doc:"Tab-separated output (file, line, severity, code, message).")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as errors.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static diagnostics over schedule files (codes DCT000-DCT009). \
          Exits 0 when clean, 1 on findings, 2 on I/O errors."
       ~man:
         [
           `S Manpage.s_description;
           `P "Checked diagnostics:";
           `Noblank;
           `Pre
             (String.concat "\n"
                (List.map
                   (fun (c, d) -> Printf.sprintf "  %s  %s" c d)
                   Dct_analysis.Lint.code_descriptions));
         ])
    Term.(const lint $ files $ machine $ strict)

(* --- audit --- *)

let audit path policy safety_depth =
  let module L = Dct_analysis.Lint in
  let module A = Dct_analysis.Audit in
  match L.lint_file path with
  | Error e ->
      Printf.eprintf "dct: audit: %s\n" e;
      2
  | Ok findings when L.errors findings <> [] ->
      print_string (L.render ~file:path findings);
      Printf.eprintf "dct: audit: %s has lint errors; fix them first\n" path;
      2
  | Ok _ -> (
      let env = Dct_txn.Parse.create_env () in
      match Dct_txn.Parse.parse_file env path with
      | Error e ->
          Printf.eprintf "dct: audit: %s\n" e;
          2
      | Ok schedule ->
          let basic_only =
            List.for_all
              (function
                | Dct_txn.Step.Begin _ | Dct_txn.Step.Read _
                | Dct_txn.Step.Write _ ->
                    true
                | Dct_txn.Step.Begin_declared _ | Dct_txn.Step.Write_one _
                | Dct_txn.Step.Finish _ ->
                    false)
              schedule
          in
          if not basic_only then begin
            Printf.eprintf
              "dct: audit: %s uses multi-write or predeclared steps; the \
               trace auditor supports the basic model only\n"
              path;
            2
          end
          else begin
            let report = A.audit_schedule ?safety_depth ~policy schedule in
            let txn_name id =
              Option.value ~default:(Printf.sprintf "T%d" id)
                (Dct_txn.Symtab.name env.Dct_txn.Parse.txns id)
            in
            let entity_name id =
              Option.value ~default:(Printf.sprintf "e%d" id)
                (Dct_txn.Symtab.name env.Dct_txn.Parse.entities id)
            in
            Format.printf "policy: %s@.%a@." (Policy.name policy)
              (A.pp_report ~txn_name ~entity_name)
              report;
            if A.ok report then 0 else 1
          end)

let audit_cmd =
  let safety_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "safety-depth" ] ~docv:"D"
          ~doc:
            "Also consult the bounded ground-truth safety oracle \
             (exhaustive continuation search to depth $(docv)) for \
             deletions that fail both condition checks.  Expensive; keep \
             at most 3.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Replay a schedule under a deletion policy and cross-check every \
          decision: each deletion against the C1/C2 oracles (optionally \
          the bounded safety search) and the accepted schedule against a \
          closure-based CSR test.  Exits 0 when every decision is \
          justified, 1 on the first unjustified one, 2 on bad input.")
    Term.(const audit $ schedule_file $ policy_arg $ safety_depth)

(* --- check --- *)

let load_basic_state path =
  let env = Dct_txn.Parse.create_env () in
  let schedule = Dct_txn.Parse.parse_exn env (read_file path) in
  let gs = Gs.create () in
  let outcomes = Dct_deletion.Rules.apply_all gs schedule in
  List.iter2
    (fun o s ->
      match o with
      | Dct_deletion.Rules.Rejected ->
          Printf.printf "note: %s was rejected (transaction aborted)\n"
            (Dct_txn.Parse.unparse_step env s)
      | _ -> ())
    outcomes schedule;
  (env, gs)

let load_predeclared_state path =
  let env = Dct_txn.Parse.create_env () in
  let schedule = Dct_txn.Parse.parse_exn env (read_file path) in
  let t = Dct_sched.Predeclared_scheduler.create () in
  List.iter (fun s -> ignore (Dct_sched.Predeclared_scheduler.step t s)) schedule;
  ignore (Dct_sched.Predeclared_scheduler.drain t);
  (env, Dct_sched.Predeclared_scheduler.graph_state t)

let txn_id env name =
  match Dct_txn.Symtab.find env.Dct_txn.Parse.txns name with
  | Some id -> id
  | None -> Printf.ksprintf failwith "unknown transaction %S" name

let txn_name env id =
  Option.value ~default:(string_of_int id)
    (Dct_txn.Symtab.name env.Dct_txn.Parse.txns id)

(* Condition mode (-s): evaluate C1/C2/C4/max on a schedule file. *)
let check_conditions condition path names =
  let lazy_basic = lazy (load_basic_state path) in
  let env_gs () = Lazy.force lazy_basic in
  (match (condition, names) with
  | "c1", [] ->
      let env, gs = env_gs () in
      let eligible = Dct_deletion.Condition_c1.eligible gs in
      Printf.printf "C1-eligible: %s\n"
        (String.concat ", "
           (List.map (txn_name env) (Intset.elements eligible)))
  | "c1", names ->
      let env, gs = env_gs () in
      List.iter
        (fun name ->
          let id = txn_id env name in
          (* boolean verdict via the short-circuiting check; [witnesses]
             below still uses the enumerating path for the explanation *)
          let ok = Dct_deletion.Condition_c1.holds_fast gs id in
          Printf.printf "%s: %s\n" name (if ok then "deletable (C1 holds)" else "not deletable");
          if not ok && Gs.is_completed gs id then
            List.iter
              (fun (tj, x) ->
                let path =
                  Dct_graph.Traversal.find_path
                    ~through:(fun v -> Gs.is_completed gs v)
                    (Gs.graph gs) ~src:tj ~dst:id
                in
                Printf.printf
                  "  witness: active tight predecessor %s, entity %s%s\n"
                  (txn_name env tj)
                  (Option.value ~default:(string_of_int x)
                     (Dct_txn.Symtab.name env.Dct_txn.Parse.entities x))
                  (match path with
                  | Some p ->
                      Printf.sprintf "  (tight path: %s)"
                        (String.concat " -> " (List.map (txn_name env) p))
                  | None -> ""))
              (Dct_deletion.Condition_c1.witnesses gs id))
        names
  | "c2", names when names <> [] ->
      let env, gs = env_gs () in
      let set = Intset.of_list (List.map (txn_id env) names) in
      let ok = Dct_deletion.Condition_c2.holds gs set in
      Printf.printf "{%s}: %s\n" (String.concat ", " names)
        (if ok then "jointly deletable (C2 holds)" else "not jointly deletable")
  | "c4", [] ->
      let env, gs = load_predeclared_state path in
      let eligible = Dct_deletion.Condition_c4.eligible gs in
      Printf.printf "C4-eligible: %s\n"
        (String.concat ", "
           (List.map (txn_name env) (Intset.elements eligible)))
  | "c4", names ->
      let env, gs = load_predeclared_state path in
      List.iter
        (fun name ->
          let id = txn_id env name in
          let ok = Dct_deletion.Condition_c4.holds gs id in
          Printf.printf "%s: %s\n" name
            (if ok then "deletable (C4 holds)" else "not deletable");
          if (not ok) && Gs.is_completed gs id then
            List.iter
              (fun (tj, x) ->
                Printf.printf "  witness: active predecessor %s, entity %s\n"
                  (txn_name env tj)
                  (Option.value ~default:(string_of_int x)
                     (Dct_txn.Symtab.name env.Dct_txn.Parse.entities x)))
              (Dct_deletion.Condition_c4.violations gs id))
        names
  | "max", [] ->
      let env, gs = env_gs () in
      let exact = Dct_deletion.Max_deletion.exact gs in
      let greedy = Dct_deletion.Max_deletion.greedy gs in
      Printf.printf "maximum safe subset (%d): %s\n" (Intset.cardinal exact)
        (String.concat ", " (List.map (txn_name env) (Intset.elements exact)));
      Printf.printf "greedy maximal subset (%d): %s\n" (Intset.cardinal greedy)
        (String.concat ", " (List.map (txn_name env) (Intset.elements greedy)))
  | c, _ -> Printf.ksprintf failwith "bad combination: condition %S" c);
  0

(* History mode (positional FILE): the streaming checker. *)
let check_history path level oracle checked json metrics_on =
  let module C = Dct_check.Checker in
  let registry =
    if metrics_on then Some (Dct_telemetry.Metrics.create ()) else None
  in
  let tracer =
    match registry with
    | Some m -> Dct_telemetry.Tracer.create ~metrics:m ()
    | None -> Dct_telemetry.Tracer.disabled
  in
  let oracle = Option.value ~default:Dct_graph.Cycle_oracle.Topo oracle in
  match C.check_file ~oracle ~tracer ~checked ~level path with
  | Error e ->
      Printf.eprintf "dct: check: %s\n" e;
      2
  | Ok (report, stats) ->
      if json then begin
        let j = C.to_json ~stats report in
        let j =
          match registry with
          | Some m ->
              String.sub j 0 (String.length j - 1)
              ^ ",\"metrics\":" ^ Dct_telemetry.Metrics.to_json m ^ "}"
          | None -> j
        in
        print_endline j
      end
      else begin
        let module H = Dct_check.History in
        Printf.printf "check: %s (%s, %d lines%s)\n" path
          (H.format_name stats.H.fmt)
          stats.H.lines
          (if stats.H.bad_lines > 0 then
             Printf.sprintf ", %d unparseable skipped" stats.H.bad_lines
           else "");
        (match stats.H.adapter with
        | Some a when a.H.foreign > 0 || a.H.deferred > 0 || a.H.undecided > 0
          ->
            Printf.printf
              "adapter: %d events, %d steps, %d foreign skipped, %d deferred \
               dropped, %d undecided\n"
              a.H.events a.H.steps a.H.foreign a.H.deferred a.H.undecided
        | _ -> ());
        let named sym id prefix =
          Option.value
            ~default:(Printf.sprintf "%s%d" prefix id)
            (Dct_txn.Symtab.name sym id)
        in
        let txn_name, entity_name =
          match stats.H.env with
          | Some env ->
              ( Some (fun id -> named env.Dct_txn.Parse.txns id "T"),
                Some (fun id -> named env.Dct_txn.Parse.entities id "e") )
          | None -> (None, None)
        in
        print_string (C.render ?txn_name ?entity_name report);
        Option.iter
          (fun m ->
            print_newline ();
            print_string (Dct_telemetry.Metrics.render m))
          registry
      end;
      if C.passed report then 0 else 1

let check condition schedule args level oracle checked json metrics_on =
  match (schedule, args) with
  | Some path, names -> check_conditions condition path names
  | None, [ file ] -> check_history file level oracle checked json metrics_on
  | None, _ ->
      Printf.eprintf
        "dct: check: pass one history FILE (checker mode) or -s SCHEDULE \
         with transaction names (condition mode)\n";
      2

let check_cmd =
  let condition =
    Arg.(
      value
      & opt string "c1"
      & info [ "c"; "condition" ] ~docv:"COND"
          ~doc:
            "Condition mode: c1 (one txn or all), c2 (a set), max (best \
             subset), or c4 (predeclared schedules with bd steps).")
  in
  let schedule =
    Arg.(
      value
      & opt (some file) None
      & info [ "s"; "schedule" ] ~docv:"FILE"
          ~doc:
            "Condition mode: evaluate deletion conditions on this schedule \
             file instead of checking a history.")
  in
  let args =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ARG"
          ~doc:
            "A history file (checker mode) or transaction names \
             (condition mode).")
  in
  let level_conv =
    let module V = Dct_check.Violation in
    let parse s = Result.map_error (fun e -> `Msg e) (V.level_of_string s) in
    Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (V.level_name l))
  in
  let level =
    Arg.(
      value
      & opt level_conv Dct_check.Violation.Serializable
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:
            "What to check the history against: atomicity (dirty \
             reads/writes, lost updates — the vector-clock analysis), rc \
             (read committed), ra (read atomic / fractured reads), causal \
             (unstable reads, causal cycles) or ser (conflict-graph \
             serializability of the committed projection).  Levels are \
             not cumulative: each runs exactly its own analysis.")
  in
  let checked =
    Arg.(
      value & flag
      & info [ "checked" ]
          ~doc:
            "With --level ser: cross-check the streaming verdict against \
             the exact bitset-closure conflict graph on the first ops \
             (abort-free prefix, capped); any divergence fails the run.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"One JSON object: summary, file statistics, witnesses.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Collect and report check.* counters and oracle latency \
             histograms.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check a transaction history (schedule text or telemetry JSONL, \
          sniffed) for consistency violations, streaming; or, with -s, \
          evaluate the paper's deletion conditions on a schedule file.  \
          Checker mode exits 0 when the history passes, 1 on violations \
          or a --checked divergence, 2 on unreadable input."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Checker mode normalizes the input into one stream of \
              begin/read/write/commit/abort operations — native schedules \
              get their commit points derived per transaction model, \
              telemetry traces are adapted by pairing step submissions \
              with decisions (foreign event kinds and unparseable JSONL \
              lines are counted and skipped, never fatal) — and runs one \
              analysis over it in O(1) amortized time per operation with \
              memory linear in live transactions.  See docs/check.md.";
         ])
    Term.(
      const check $ condition $ schedule $ args $ level $ oracle_arg $ checked
      $ json $ metrics_arg)

(* --- dot --- *)

let dot path =
  let env, gs = load_basic_state path in
  print_string
    (Dct_graph.Dot.to_string
       ~node_label:(txn_name env)
       ~node_attrs:(fun v ->
         if Gs.is_active gs v then [ ("style", "dashed") ] else [])
       (Gs.graph gs));
  0

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the conflict graph of a schedule as DOT")
    Term.(const dot $ schedule_file)

(* --- experiments --- *)

let experiments which =
  let module E = Dct_sim.Experiments in
  (match which with
  | "all" -> E.run_all ()
  | "ex1" -> E.ex1_example1 ()
  | "ex2" -> E.ex2_lemma1 ()
  | "ex3" -> E.ex3_theorem1 ()
  | "ex4" -> E.ex4_corollary1 ()
  | "ex5" -> E.ex5_set_cover ()
  | "ex6" -> E.ex6_residency_bound ()
  | "ex7" -> E.ex7_three_sat ()
  | "ex8" -> E.ex8_example2 ()
  | "ex9" -> E.ex9_policy_series ()
  | "ex10" -> E.ex10_scheduler_comparison ()
  | "ex11" -> E.ex11_complexity_table ()
  | "ex12" -> E.ex12_log_truncation ()
  | "ex13" -> E.ex13_version_residency ()
  | "ex14" -> E.ex14_goodput_with_restarts ()
  | "ex15" -> E.ex15_sensitivity ()
  | other -> Printf.ksprintf failwith "unknown experiment %S" other);
  0

let experiments_cmd =
  let which =
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc:"ex1..ex15 or all.")
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Print the paper-reproduction experiment tables")
    Term.(const experiments $ which)

(* --- reduce-cover --- *)

let parse_int_list s =
  String.split_on_char ',' s |> List.filter (( <> ) "") |> List.map int_of_string

let reduce_cover universe sets =
  let inst = Dct_npc.Set_cover.make ~universe (List.map parse_int_list sets) in
  (match Dct_npc.Set_cover.validate inst with
  | Error e -> Printf.ksprintf failwith "invalid instance: %s" e
  | Ok () -> ());
  let schedule, _ids = Dct_npc.Reduction_cover.schedule inst in
  let env = Dct_txn.Parse.create_env () in
  (* Re-render through the parser env for stable names. *)
  print_endline "# Theorem 5 reduction schedule:";
  print_string (Dct_txn.Parse.unparse env schedule);
  let k = List.length (Dct_npc.Set_cover.exact_min inst) in
  let m = List.length sets in
  Printf.printf "# minimum cover: %d of %d sets\n" k m;
  Printf.printf "# maximum safely deletable transactions: %d (= m - k)\n" (m - k);
  0

let reduce_cover_cmd =
  let universe =
    Arg.(required & opt (some int) None & info [ "u"; "universe" ] ~doc:"Universe size.")
  in
  let sets =
    Arg.(
      non_empty & opt_all string []
      & info [ "set" ] ~docv:"ELEMS" ~doc:"A set, e.g. --set 0,1,2 (repeatable).")
  in
  Cmd.v
    (Cmd.info "reduce-cover" ~doc:"Emit the Theorem 5 schedule for a Set Cover instance")
    Term.(const reduce_cover $ universe $ sets)

(* --- reduce-sat --- *)

let reduce_sat nvars clauses =
  let f = Dct_npc.Sat.three_sat ~nvars (List.map parse_int_list clauses) in
  Printf.printf "formula: %s\n" (Format.asprintf "%a" Dct_npc.Sat.pp f);
  let sat = Dct_npc.Sat.is_satisfiable f in
  Printf.printf "satisfiable (DPLL): %b\n" sat;
  let deletable = Dct_npc.Reduction_sat.c_deletable f in
  Printf.printf "transaction C deletable in the gadget (C3): %b\n" deletable;
  Printf.printf "Theorem 6 agreement (deletable = unsat): %b\n"
    (deletable = not sat);
  if deletable = not sat then 0 else 1

let reduce_sat_cmd =
  let nvars =
    Arg.(required & opt (some int) None & info [ "n"; "vars" ] ~doc:"Variables.")
  in
  let clauses =
    Arg.(
      non_empty & opt_all string []
      & info [ "clause" ] ~docv:"LITS"
          ~doc:"3 literals, e.g. --clause 1,-2,3 (repeatable).")
  in
  Cmd.v
    (Cmd.info "reduce-sat" ~doc:"Evaluate the Theorem 6 gadget for a 3-CNF formula")
    Term.(const reduce_sat $ nvars $ clauses)

(* --- demo --- *)

let demo which =
  let module E = Dct_sim.Experiments in
  (match which with
  | "example1" -> E.ex1_example1 ()
  | "example2" -> E.ex8_example2 ()
  | other -> Printf.ksprintf failwith "unknown demo %S (example1|example2)" other);
  0

let demo_cmd =
  let which =
    Arg.(value & pos 0 string "example1" & info [] ~docv:"NAME" ~doc:"example1 | example2.")
  in
  Cmd.v (Cmd.info "demo" ~doc:"Narrate the paper's worked examples")
    Term.(const demo $ which)

let main_cmd =
  let doc = "deleting completed transactions — conflict-graph scheduler GC" in
  Cmd.group
    (Cmd.info "dct" ~version:"1.0.0" ~doc)
    [
      simulate_cmd; serve_cmd; client_cmd; bench_net_cmd; trace_cmd; lint_cmd;
      audit_cmd; check_cmd; dot_cmd; experiments_cmd; reduce_cover_cmd;
      reduce_sat_cmd; demo_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
