# Convenience entry points; everything below is a thin wrapper over dune.

.PHONY: all build test oracle-test telemetry-test trace-smoke bench bench-smoke bench-latency clean

all: build

build:
	dune build

test:
	dune runtest

# Just the cycle-oracle differential + metamorphic suites — the tight
# loop when hacking on a backend.
oracle-test:
	dune build @oracle

# Just the tracing/metrics suite — the tight loop when hacking on the
# telemetry layer or the scheduler instrumentation.
telemetry-test:
	dune build @telemetry

# End-to-end trace round trip: simulate with tracing on, summarize the
# JSONL, re-feed the decisions to the deletion auditor.
trace-smoke:
	dune exec bin/dct.exe -- simulate --model conflict --policy c2 -n 80 \
	  --oracle checked --trace /tmp/dct-trace-smoke.jsonl --metrics
	dune exec bin/dct.exe -- trace /tmp/dct-trace-smoke.jsonl --audit

# The full oracle sweep (writes BENCH_oracle.json; minutes).
bench:
	dune exec bench/main.exe -- oracle

# CI gate: tiny sweep, exits non-zero if the backends disagree or the
# emitted BENCH_oracle.json is malformed.
bench-smoke:
	dune exec bench/main.exe -- oracle-smoke

# Tiny sweep with per-query latency histograms recorded next to the
# wall-clock numbers in BENCH_oracle.json.
bench-latency:
	dune exec bench/main.exe -- oracle-latency

clean:
	dune clean
