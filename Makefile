# Convenience entry points; everything below is a thin wrapper over dune.

.PHONY: all build test oracle-test bench bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Just the cycle-oracle differential + metamorphic suites — the tight
# loop when hacking on a backend.
oracle-test:
	dune build @oracle

# The full oracle sweep (writes BENCH_oracle.json; minutes).
bench:
	dune exec bench/main.exe -- oracle

# CI gate: tiny sweep, exits non-zero if the backends disagree or the
# emitted BENCH_oracle.json is malformed.
bench-smoke:
	dune exec bench/main.exe -- oracle-smoke

clean:
	dune clean
