# Convenience entry points; everything below is a thin wrapper over dune.

.PHONY: all check build test oracle-test telemetry-test engine-test gc-test parallel-test check-hist net-test graph-test trace-smoke bench bench-smoke bench-latency bench-engine bench-engine-smoke bench-engine-par bench-engine-par-smoke bench-policy bench-policy-smoke bench-check bench-check-smoke bench-net bench-net-smoke bench-graph bench-graph-smoke clean

all: build

# The default gate: full build, full test suite, and the smoke sweeps
# that double as end-to-end differential checks (oracle backends,
# sharded engine, parallel engine, deletability index, history checker).
check: build test bench-smoke bench-engine-smoke parallel-test bench-engine-par-smoke bench-policy-smoke check-hist bench-check-smoke net-test bench-net-smoke graph-test bench-graph-smoke

build:
	dune build

test:
	dune runtest

# Just the cycle-oracle differential + metamorphic suites — the tight
# loop when hacking on a backend.
oracle-test:
	dune build @oracle

# Just the tracing/metrics suite — the tight loop when hacking on the
# telemetry layer or the scheduler instrumentation.
telemetry-test:
	dune build @telemetry

# Just the sharded-engine suite (differential vs the single-node
# scheduler, partitioner/admission/shard units) — the tight loop when
# hacking on lib/engine.
engine-test:
	dune build @engine

# Just the deletability-index suite (holds_fast/index metamorphic
# properties, policy x scheduler x backend equivalence, the engine
# differential under the checked index) — the tight loop when hacking
# on the GC fast path.
gc-test:
	dune build @gc

# Just the parallel-engine suite (the seeded-replay differential matrix
# vs the single-node scheduler and the sequential engine, the MPSC
# admission linearizability property, the coordinator mutation checks,
# and the locked-sink thread-safety regression) — the tight loop when
# hacking on the domain-per-shard engine.
parallel-test:
	dune build @parallel

# Just the history-checker suite (scheduler-accepted differential,
# mutation harness, streaming-vs-closure QCheck property, pinned
# corpus/check/ runs) — the tight loop when hacking on lib/check.
check-hist:
	dune build @check-hist

# Just the serving-layer suite (wire-protocol round trips and typed
# rejections in both dialects, the loopback differential against the
# in-process engines, mid-frame disconnect and shard-failure
# propagation, workload-mix distribution checks) — the tight loop when
# hacking on lib/net.
net-test:
	dune build @net

# Just the compact-substrate suite (bitset/row-vs-model differential,
# arena aliasing and copy properties, slot-space structure units) —
# the tight loop when hacking on lib/graph's storage layer.
graph-test:
	dune build @graph

# End-to-end trace round trip: simulate with tracing on, summarize the
# JSONL, re-feed the decisions to the deletion auditor.
trace-smoke:
	dune exec bin/dct.exe -- simulate --model conflict --policy c2 -n 80 \
	  --oracle checked --trace /tmp/dct-trace-smoke.jsonl --metrics
	dune exec bin/dct.exe -- trace /tmp/dct-trace-smoke.jsonl --audit

# The full oracle sweep (writes BENCH_oracle.json; minutes).
bench:
	dune exec bench/main.exe -- oracle

# CI gate: tiny sweep, exits non-zero if the backends disagree or the
# emitted BENCH_oracle.json is malformed.
bench-smoke:
	dune exec bench/main.exe -- oracle-smoke

# Tiny sweep with per-query latency histograms recorded next to the
# wall-clock numbers in BENCH_oracle.json.
bench-latency:
	dune exec bench/main.exe -- oracle-latency

# The engine sweep: shards x batch x contention through the sharded
# engine (writes BENCH_engine.json; every configuration also passes the
# differential against the single-node scheduler, so this doubles as an
# end-to-end exactness gate).
bench-engine:
	dune exec bench/main.exe -- engine

# CI gate: two-config engine sweep, exits non-zero on a differential
# failure or a malformed BENCH_engine.json.
bench-engine-smoke:
	dune exec bench/main.exe -- engine-smoke

# The domains axis alone: each parallel row (one applier domain per
# shard) next to its sequential baseline, with speedup_vs_single_domain
# and host_cores recorded in BENCH_engine.json.
bench-engine-par:
	dune exec bench/main.exe -- engine-par

# CI gate: one seq/par pair; the parallel row's differential runs the
# full three-way check (single-node scheduler + sequential engine +
# trace byte-equality).
bench-engine-par-smoke:
	dune exec bench/main.exe -- engine-par-smoke

# The policy/GC sweep: n x contention x policy with and without the
# deletability index (writes BENCH_policy.json with per-GC-call latency
# histograms; enforces the >= 5x incremental speedup on the n >= 1000
# pinned-resident rows and zero checked-mode divergences).
bench-policy:
	dune exec bench/main.exe -- policy

# CI gate: two-config policy sweep, exits non-zero on a divergence or a
# malformed BENCH_policy.json.
bench-policy-smoke:
	dune exec bench/main.exe -- policy-smoke

# The history-checker sweep: streaming throughput by level and trace
# size, including a 10^6-event end-to-end JSONL row (writes
# BENCH_check.json; enforces the >= 100k events/s atomicity bar and
# flat residency gauges).
bench-check:
	dune exec bench/main.exe -- check

# CI gate: tiny check sweep, exits non-zero on a residency growth, a
# checked-mode divergence, or a malformed BENCH_check.json.
bench-check-smoke:
	dune exec bench/main.exe -- check-smoke

# The network sweep: workload mix x shards x policy x gc-index served
# over a loopback socket by the threaded server and driven closed-loop
# (writes BENCH_net.json with throughput and p50/p90/p99 latency rows
# for every workload class, pinned-deletability scenario included).
bench-net:
	dune exec bench/main.exe -- net

# CI gate: every workload class once with tiny traffic; exits non-zero
# on a missing class row or a malformed BENCH_net.json.
bench-net-smoke:
	dune exec bench/main.exe -- net-smoke

# The graph-substrate churn sweep: resident windows up to 10^6 nodes
# under an id stream cycling far past them (writes BENCH_graph.json
# with ops/s, bytes/resident-node and per-op latency histograms;
# enforces that the byte gauge stays flat while ids churn).
bench-graph:
	dune exec bench/main.exe -- graph

# CI gate: small windows, same shape, single-core-sized; exits
# non-zero on a residency leak or a malformed BENCH_graph.json.
bench-graph-smoke:
	dune exec bench/main.exe -- graph-smoke

clean:
	dune clean
