(* The serving layer's contracts:

   - WIRE ROUND TRIPS (QCheck): every request/response frame survives
     encode/decode in both dialects, consuming exactly the frame's
     bytes, including back-to-back frames in one buffer.

   - TYPED REJECTIONS: truncated, oversized, negative-length, bad-tag,
     trailing-byte and garbage-line inputs each map to their typed
     {!Dct_net.Wire.error} — decoding never raises, and [Truncated]
     is reserved for valid-prefix-needs-more-bytes.

   - SERVER ROBUSTNESS: a mid-frame disconnect or an oversized frame
     costs only that connection (counted in [protocol_errors]); other
     clients keep being served.  A dying client's begun-but-incomplete
     transactions are aborted.  Response streams stay in issue order
     across mixed step/control requests.

   - LOOPBACK DIFFERENTIAL (the tentpole guarantee): a workload-mix
     schedule fed through socket + server + admission into the
     sequential and the parallel engine produces the exact outcome
     sequence and a byte-identical JSONL trace (decisions, deletion
     rounds, checkpoints) as the same engine fed in-process — the
     network layer adds transport, never behavior.

   - DRIVER: the closed-loop multi-client driver accounts for every
     transaction and lands every op latency in the merged histograms.

   - MIX DISTRIBUTIONS: the workload catalog's samplers have the
     shapes on the label (read/update ratios, scan lengths, hotspot
     concentration, TPC-C plan shapes, schedule completeness). *)

module Wire = Dct_net.Wire
module Addr = Dct_net.Addr
module Backend = Dct_net.Backend
module Server = Dct_net.Server
module Client = Dct_net.Client
module Driver = Dct_net.Driver
module Mix = Dct_workload.Mix
module Step = Dct_txn.Step
module Sched = Dct_sched.Scheduler_intf
module Eng = Dct_engine.Engine
module Par = Dct_engine.Parallel
module Policy = Dct_deletion.Policy
module Tracer = Dct_telemetry.Tracer
module Sink = Dct_telemetry.Sink
module Metrics = Dct_telemetry.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sock_path name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dct-test-net-%d-%s.sock" (Unix.getpid ()) name)

(* --- QCheck: frame round trips in both dialects --- *)

(* Stats keys and error messages ride in the line dialect's last field
   with only spaces escaped, so the generator sticks to the vocabulary
   the server actually emits: identifier characters plus spaces. *)
let gen_label =
  QCheck.Gen.(
    string_size (int_range 1 12)
      ~gen:(oneofl [ 'a'; 'z'; 'q'; '0'; '9'; '.'; '_'; '-'; ' ' ]))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map (fun t -> Wire.Begin t) nat;
        map2 (fun t e -> Wire.Read (t, e)) nat nat;
        map2 (fun t es -> Wire.Write (t, es)) nat (list_size (int_range 0 5) nat);
        map (fun t -> Wire.Complete t) nat;
        map (fun t -> Wire.Abort t) nat;
        return Wire.Stats;
      ])

let gen_outcome =
  QCheck.Gen.oneofl
    [ Sched.Accepted; Sched.Rejected; Sched.Delayed; Sched.Ignored ]

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun step outcome -> Wire.Outcome { step; outcome })
          nat gen_outcome;
        map (fun b -> Wire.Abort_reply b) bool;
        map
          (fun kvs -> Wire.Stats_reply kvs)
          (list_size (int_range 0 6) (pair gen_label nat));
        map (fun m -> Wire.Error_reply m) gen_label;
      ])

let request_print r = Wire.encode_request Wire.Line r

let dialects = [ Wire.Binary; Wire.Line ]

let roundtrip_prop ~encode ~decode v =
  List.for_all
    (fun d ->
      let frame = encode d v in
      match decode d frame ~pos:0 with
      | Ok (v', consumed) -> v' = v && consumed = String.length frame
      | Error e ->
          QCheck.Test.fail_reportf "%s frame %S rejected: %s"
            (Wire.dialect_name d) frame (Wire.error_to_string e))
    dialects

let prop_request_roundtrip =
  QCheck.Test.make ~count:300 ~name:"request round trip, both dialects"
    (QCheck.make ~print:request_print gen_request)
    (roundtrip_prop ~encode:Wire.encode_request ~decode:Wire.decode_request)

let prop_response_roundtrip =
  QCheck.Test.make ~count:300 ~name:"response round trip, both dialects"
    (QCheck.make
       ~print:(fun r -> Wire.encode_response Wire.Line r)
       gen_response)
    (roundtrip_prop ~encode:Wire.encode_response ~decode:Wire.decode_response)

(* Back-to-back frames in one buffer decode in sequence: the stream
   reader's invariant. *)
let prop_request_stream =
  QCheck.Test.make ~count:100 ~name:"concatenated frames decode in sequence"
    (QCheck.make
       QCheck.Gen.(pair (oneofl dialects) (list_size (int_range 1 8) gen_request)))
    (fun (d, reqs) ->
      let buf = String.concat "" (List.map (Wire.encode_request d) reqs) in
      let rec go pos acc =
        if pos >= String.length buf then List.rev acc
        else
          match Wire.decode_request d buf ~pos with
          | Ok (r, next) -> go next (r :: acc)
          | Error e ->
              QCheck.Test.fail_reportf "stream rejected at %d: %s" pos
                (Wire.error_to_string e)
      in
      go 0 [] = reqs)

(* --- typed rejections --- *)

let expect_error what expected actual =
  match actual with
  | Ok _ -> Alcotest.failf "%s: decoded instead of failing" what
  | Error e ->
      if e <> expected then
        Alcotest.failf "%s: expected %s, got %s" what
          (Wire.error_to_string expected)
          (Wire.error_to_string e)

let frame_of payload =
  let b = Buffer.create 16 in
  let len = Bytes.create 4 in
  Bytes.set_int32_be len 0 (Int32.of_int (String.length payload));
  Buffer.add_bytes b len;
  Buffer.add_string b payload;
  Buffer.contents b

let test_binary_errors () =
  let dec s = Wire.decode_request Wire.Binary s ~pos:0 in
  expect_error "short length prefix" Wire.Truncated (dec "\x00\x00\x00");
  expect_error "payload shorter than declared" Wire.Truncated
    (dec "\x00\x00\x00\x09\x01\x00\x00");
  expect_error "negative length" (Wire.Malformed "negative frame length")
    (dec "\xff\xff\xff\xff");
  (match dec "\x00\x20\x00\x00" with
  | Error (Wire.Oversized n) -> check_int "declared size reported" 0x200000 n
  | _ -> Alcotest.fail "oversized frame accepted");
  expect_error "unknown tag" (Wire.Bad_tag 0x7f) (dec (frame_of "\x7f"));
  expect_error "trailing payload bytes" (Wire.Malformed "trailing payload bytes")
    (dec (frame_of "\x06\x00"));
  expect_error "short payload field" (Wire.Malformed "short payload")
    (dec (frame_of "\x01\x00\x00"));
  (* a Write whose entity count promises more than the payload holds *)
  expect_error "lying entity count" (Wire.Malformed "short payload")
    (dec
       (frame_of
          ("\x03" ^ String.make 8 '\x00' ^ "\x00\x00\x00\x05" ^ String.make 8 '\x00')));
  match
    Wire.decode_response Wire.Binary (frame_of ("\x10" ^ String.make 8 '\x00' ^ "\x09")) ~pos:0
  with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "bad outcome code accepted"

let test_line_errors () =
  let dec s = Wire.decode_request Wire.Line s ~pos:0 in
  expect_error "unknown verb" (Wire.Malformed "unknown request verb flarp")
    (dec "flarp 1\n");
  (match dec "read x 3\n" with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "non-numeric field accepted");
  expect_error "no newline yet" Wire.Truncated (dec "begin 4");
  (match dec (String.make (Wire.max_frame + 8) 'a') with
  | Error (Wire.Oversized _) -> ()
  | _ -> Alcotest.fail "unterminated megabyte line accepted");
  match Wire.decode_response Wire.Line "outcome 3 maybe\n" ~pos:0 with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "bad outcome name accepted"

(* --- address parsing --- *)

let test_addr_parsing () =
  (match Addr.of_string "unix:/tmp/x.sock" with
  | Ok (Addr.Unix_path "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix path");
  (match Addr.of_string "tcp:localhost:7777" with
  | Ok (Addr.Tcp ("localhost", 7777)) -> ()
  | _ -> Alcotest.fail "tcp host:port");
  (match Addr.of_string "127.0.0.1:9" with
  | Ok (Addr.Tcp ("127.0.0.1", 9)) -> ()
  | _ -> Alcotest.fail "bare host:port");
  (match Addr.of_string "tcp::7070" with
  | Ok (Addr.Tcp ("127.0.0.1", 7070)) -> ()
  | _ -> Alcotest.fail "empty tcp host defaults to loopback");
  match Addr.of_string "no-port-here" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted"

(* --- server fixtures --- *)

let with_server ?(flush_ms = 0) ?(shards = 2) ?(batch = 1) ~name f =
  let cfg = Eng.config ~policy:Policy.Greedy_c1 ~shards ~batch () in
  let srv =
    Server.create ~flush_ms
      ~backend:(fun ~on_step -> Backend.seq ~on_step cfg)
      (Addr.Unix_path (sock_path name))
  in
  Server.start srv;
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let expect_outcome what resp =
  match resp with
  | Ok (Wire.Outcome { outcome; _ }) -> outcome
  | Ok _ -> Alcotest.failf "%s: non-outcome response" what
  | Error e -> Alcotest.failf "%s: %s" what (Wire.error_to_string e)

(* Issue order survives mixing steps with control requests: earlier
   step outcomes must land before an Abort_reply/Stats_reply. *)
let test_response_issue_order () =
  with_server ~batch:8 ~name:"order" (fun srv ->
      let cl = Client.connect (Server.addr srv) in
      Client.send cl (Wire.Begin 1);
      Client.send cl (Wire.Read (1, 3));
      Client.send cl (Wire.Abort 1);
      (match expect_outcome "begin" (Client.recv cl) with
      | Sched.Accepted -> ()
      | o -> Alcotest.failf "begin: %s" (Sched.outcome_name o));
      ignore (expect_outcome "read" (Client.recv cl));
      (match Client.recv cl with
      | Ok (Wire.Abort_reply true) -> ()
      | _ -> Alcotest.fail "active transaction not aborted");
      (match Client.call cl (Wire.Abort 1) with
      | Ok (Wire.Abort_reply false) -> ()
      | _ -> Alcotest.fail "double abort not a no-op");
      (match Client.call cl Wire.Stats with
      | Ok (Wire.Stats_reply kvs) ->
          check "stats carries connections" true
            (List.mem_assoc "connections" kvs);
          check "stats carries protocol_errors" true
            (List.mem_assoc "protocol_errors" kvs)
      | _ -> Alcotest.fail "no stats reply");
      Client.close cl)

(* A client that dies mid-frame (or mid-transaction) costs only its own
   connection: the typed error is counted, its begun transaction is
   aborted, and a concurrently connected client keeps being served. *)
let test_midframe_disconnect () =
  with_server ~name:"midframe" (fun srv ->
      let survivor = Client.connect (Server.addr srv) in
      ignore (expect_outcome "survivor begin" (Client.call survivor (Wire.Begin 1)));
      (* half a frame: a 32-byte payload announced, 3 bytes delivered *)
      let dying = Addr.connect (Server.addr srv) in
      let junk = "\x00\x00\x00\x20\x01\x02\x03" in
      ignore (Unix.write_substring dying junk 0 (String.length junk));
      Unix.close dying;
      (* and a whole client that vanishes with a transaction open *)
      let deserter = Client.connect (Server.addr srv) in
      ignore (expect_outcome "deserter begin" (Client.call deserter (Wire.Begin 7)));
      Client.close deserter;
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Server.proto_errors srv < 1 && Unix.gettimeofday () < deadline do
        Thread.delay 0.01
      done;
      check_int "mid-frame disconnect counted" 1 (Server.proto_errors srv);
      (* the survivor still gets decisions *)
      ignore (expect_outcome "survivor read" (Client.call survivor (Wire.Read (1, 5))));
      ignore (expect_outcome "survivor complete" (Client.call survivor (Wire.Complete 1)));
      Client.close survivor;
      Server.stop srv;
      let r = Server.finish srv ~wall_seconds:0.0 in
      check_int "three connections served" 3 (Server.connections srv);
      (* the deserter's orphan was aborted, the survivor committed *)
      check_int "survivor committed" 1 r.Eng.committed;
      check "orphan aborted" true (r.Eng.aborted >= 1))

(* An oversized or garbage first frame gets the typed error reply in
   the right dialect, then the connection closes. *)
let test_oversized_gets_error_reply () =
  with_server ~name:"oversized" (fun srv ->
      let fd = Addr.connect (Server.addr srv) in
      let io = Wire.Io.of_fd fd in
      Wire.Io.write io "\x00\x20\x00\x00";
      (match Wire.Io.read_response io Wire.Binary with
      | Ok (Wire.Error_reply m) ->
          check "names the oversize" true
            (String.length m >= 9 && String.sub m 0 9 = "oversized")
      | r ->
          Alcotest.failf "expected error reply, got %s"
            (match r with
            | Ok _ -> "another response"
            | Error e -> Wire.error_to_string e));
      (match Wire.Io.read_response io Wire.Binary with
      | Error Wire.Closed -> ()
      | _ -> Alcotest.fail "connection not closed after protocol error");
      Unix.close fd)

let test_line_garbage_gets_error_reply () =
  with_server ~name:"garbage" (fun srv ->
      let fd = Addr.connect (Server.addr srv) in
      let io = Wire.Io.of_fd fd in
      Wire.Io.write io "bogus 1\n";
      (match Wire.Io.read_response io Wire.Line with
      | Ok (Wire.Error_reply _) -> ()
      | _ -> Alcotest.fail "expected a line-dialect error reply");
      Unix.close fd)

(* Both dialects drive the same server: a line-speaking client and a
   binary one interleave against one engine. *)
let test_mixed_dialects () =
  with_server ~name:"dialects" (fun srv ->
      let bin = Client.connect ~dialect:Wire.Binary (Server.addr srv) in
      let lin = Client.connect ~dialect:Wire.Line (Server.addr srv) in
      ignore (expect_outcome "bin begin" (Client.call bin (Wire.Begin 1)));
      ignore (expect_outcome "line begin" (Client.call lin (Wire.Begin 2)));
      ignore (expect_outcome "bin read" (Client.call bin (Wire.Read (1, 4))));
      ignore (expect_outcome "line read" (Client.call lin (Wire.Read (2, 4))));
      ignore (expect_outcome "bin complete" (Client.call bin (Wire.Complete 1)));
      ignore
        (expect_outcome "line complete" (Client.call lin (Wire.Write (2, [ 4 ]))));
      Client.close bin;
      Client.close lin;
      Server.stop srv;
      let r = Server.finish srv ~wall_seconds:0.0 in
      check_int "both committed" 2 r.Eng.committed)

(* A TCP endpoint with a kernel-chosen port works end to end. *)
let test_tcp_endpoint () =
  let cfg = Eng.config ~policy:Policy.Greedy_c1 ~shards:1 ~batch:1 () in
  let srv =
    Server.create ~flush_ms:0
      ~backend:(fun ~on_step -> Backend.seq ~on_step cfg)
      (Addr.Tcp ("127.0.0.1", 0))
  in
  Server.start srv;
  (match Server.addr srv with
  | Addr.Tcp (_, port) -> check "kernel port learned" true (port > 0)
  | _ -> Alcotest.fail "tcp address expected");
  let cl = Client.connect (Server.addr srv) in
  ignore (expect_outcome "tcp begin" (Client.call cl (Wire.Begin 1)));
  ignore (expect_outcome "tcp complete" (Client.call cl (Wire.Complete 1)));
  Client.close cl;
  Server.stop srv

(* --- the loopback differential --- *)

(* Oracle events carry an ["ns"] wall-clock field no transport
   controls; scrub it before comparing traces (same idiom as the
   parallel engine's differential). *)
let scrub_timings line =
  let b = Buffer.create (String.length line) in
  let n = String.length line in
  let key = "\"ns\":" in
  let klen = String.length key in
  let i = ref 0 in
  while !i < n do
    if !i + klen <= n && String.sub line !i klen = key then begin
      Buffer.add_string b key;
      Buffer.add_char b '_';
      i := !i + klen;
      while
        !i < n
        && (match line.[!i] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr i
      done
    end
    else begin
      Buffer.add_char b line.[!i];
      incr i
    end
  done;
  Buffer.contents b

let first_trace_divergence a b =
  if String.equal a b then None
  else
    let la = List.map scrub_timings (String.split_on_char '\n' a)
    and lb = List.map scrub_timings (String.split_on_char '\n' b) in
    let rec go n = function
      | [], [] -> None
      | x :: _, [] -> Some (Printf.sprintf "line %d: net has %S, ref ended" n x)
      | [], y :: _ -> Some (Printf.sprintf "line %d: ref has %S, net ended" n y)
      | x :: xs, y :: ys ->
          if String.equal x y then go (n + 1) (xs, ys)
          else Some (Printf.sprintf "line %d: net %S vs ref %S" n x y)
    in
    go 1 (la, lb)

type side = {
  s_outcomes : (int * Sched.outcome) list;
  s_trace : string;
  s_report : Eng.report;
}

let shards = 4
let batch = 8

let traced_config () =
  let buf = Buffer.create 8192 in
  let tracer = Tracer.create ~sink:(Sink.memory buf) () in
  (Eng.config ~policy:Policy.Greedy_c1 ~tracer ~shards ~batch (), buf)

(* The in-process reference: the same engine fed directly. *)
let run_reference backend_mode steps =
  let cfg, buf = traced_config () in
  let outcomes = ref [] in
  let on_step idx _step o = outcomes := (idx, o) :: !outcomes in
  let report =
    match backend_mode with
    | None -> Eng.run ~on_step (Eng.create cfg) steps
    | Some mode ->
        (Par.run ~mode ~on_decision:on_step cfg steps).Par.base
  in
  { s_outcomes = List.rev !outcomes; s_trace = Buffer.contents buf;
    s_report = report }

(* The same schedule through socket + server: one pipelined client
   sends every step, then a Stats request — the server flushes the
   trailing partial batch before answering it, exactly where the
   in-process run's end-of-input tick happens, so the batch cadence
   (and with it every checkpoint and GC round) matches.  [flush_ms:0]
   keeps the group-commit timer out of the schedule. *)
let run_via_server ~name backend_mode steps =
  let cfg, buf = traced_config () in
  let backend ~on_step =
    match backend_mode with
    | None -> Backend.seq ~on_step cfg
    | Some mode -> Backend.parallel ~mode ~on_step cfg
  in
  let srv = Server.create ~flush_ms:0 ~backend (Addr.Unix_path (sock_path name)) in
  Server.start srv;
  let cl = Client.connect (Server.addr srv) in
  List.iter (fun s -> Client.send cl (Client.request_of_step s)) steps;
  Client.send cl Wire.Stats;
  let outcomes = ref [] in
  List.iteri
    (fun i _ ->
      match Client.recv cl with
      | Ok (Wire.Outcome { step; outcome }) ->
          outcomes := (step, outcome) :: !outcomes
      | Ok _ -> Alcotest.failf "step %d: non-outcome response" (i + 1)
      | Error e -> Alcotest.failf "step %d: %s" (i + 1) (Wire.error_to_string e))
    steps;
  (match Client.recv cl with
  | Ok (Wire.Stats_reply _) -> ()
  | _ -> Alcotest.fail "missing trailing stats reply");
  Client.close cl;
  Server.stop srv;
  let report = Server.finish srv ~wall_seconds:0.0 in
  { s_outcomes = List.rev !outcomes; s_trace = Buffer.contents buf;
    s_report = report }

let aggregate (r : Eng.report) =
  ( r.Eng.steps,
    r.Eng.accepted,
    r.Eng.rejected,
    r.Eng.ignored,
    r.Eng.committed,
    r.Eng.aborted,
    r.Eng.shard_resident_hwm,
    r.Eng.coordinator.Dct_engine.Coordinator.deleted_total,
    r.Eng.coordinator.Dct_engine.Coordinator.resident_hwm )

let loopback_differential ~label ~mix backend_mode =
  let steps = Mix.schedule mix ~n_txns:48 ~keys:128 ~mpl:6 ~seed:11 in
  let net = run_via_server ~name:label backend_mode steps in
  let reference = run_reference backend_mode steps in
  check_int
    (label ^ ": one outcome per step")
    (List.length steps)
    (List.length net.s_outcomes);
  List.iteri
    (fun i ((ni, no), (ri, ro)) ->
      if ni <> ri || no <> ro then
        Alcotest.failf "%s: outcome %d diverged: net (%d, %s) vs ref (%d, %s)"
          label i ni (Sched.outcome_name no) ri (Sched.outcome_name ro))
    (List.combine net.s_outcomes reference.s_outcomes);
  (* deletion rounds, checkpoints and decisions all ride in the trace:
     byte equality (timings scrubbed) pins every one of them *)
  (match first_trace_divergence net.s_trace reference.s_trace with
  | None -> ()
  | Some d -> Alcotest.failf "%s: trace diverged: %s" label d);
  check (label ^ ": trace non-empty") true (String.length net.s_trace > 0);
  if aggregate net.s_report <> aggregate reference.s_report then
    Alcotest.failf "%s: report aggregates diverged" label

let test_differential_seq_ycsb_b () =
  loopback_differential ~label:"seq-ycsb-b" ~mix:Mix.Ycsb_b None

let test_differential_seq_long_reader () =
  loopback_differential ~label:"seq-long-reader" ~mix:Mix.Long_reader_pin None

let test_differential_par_ycsb_b () =
  loopback_differential ~label:"par-ycsb-b" ~mix:Mix.Ycsb_b
    (Some (Par.Replay 3))

let test_differential_par_long_reader () =
  loopback_differential ~label:"par-long-reader" ~mix:Mix.Long_reader_pin
    (Some (Par.Replay 3))

(* Real applier domains behind the server: the replay runs above pin
   byte equality; this pins that actual [Domain.spawn] appliers behave
   identically (the determinism contract makes the replay reference
   valid for a domains run). *)
let test_differential_domains () =
  let steps = Mix.schedule Mix.Ycsb_b ~n_txns:48 ~keys:128 ~mpl:6 ~seed:11 in
  let net = run_via_server ~name:"domains" (Some Par.Domains) steps in
  let reference = run_reference (Some (Par.Replay 5)) steps in
  check "domains outcomes == replay reference" true
    (net.s_outcomes = reference.s_outcomes);
  (match first_trace_divergence net.s_trace reference.s_trace with
  | None -> ()
  | Some d -> Alcotest.failf "domains trace diverged: %s" d);
  check "domains aggregates == replay reference" true
    (aggregate net.s_report = aggregate reference.s_report)

(* --- the closed-loop driver --- *)

let run_driver ~name ~mix ~dialect ~clients ~txns =
  let cfg = Eng.config ~policy:Policy.Greedy_c1 ~shards:2 ~batch:4 () in
  let srv =
    Server.create ~flush_ms:2
      ~backend:(fun ~on_step -> Backend.seq ~on_step cfg)
      (Addr.Unix_path (sock_path name))
  in
  Server.start srv;
  let res =
    Driver.run
      { Driver.clients; txns_per_client = txns; mix; keys = 64; seed = 7; dialect }
      (Server.addr srv)
  in
  Server.stop srv;
  let report = Server.finish srv ~wall_seconds:res.Driver.wall_seconds in
  (res, report)

let test_driver_accounts_for_everything () =
  let res, report =
    run_driver ~name:"driver-bin" ~mix:Mix.Ycsb_b ~dialect:Wire.Binary
      ~clients:3 ~txns:10
  in
  check_int "every transaction issued" 30 res.Driver.txns;
  check_int "every transaction resolved" 30
    (res.Driver.completed + res.Driver.aborted);
  check "ops flowed" true (res.Driver.ops > 0);
  check_int "every op latency recorded" res.Driver.ops
    (Metrics.histo_count res.Driver.metrics "net.latency.all");
  check_int "engine agrees on commits" res.Driver.completed report.Eng.committed

let test_driver_line_dialect () =
  let res, _report =
    run_driver ~name:"driver-line" ~mix:Mix.Tpcc ~dialect:Wire.Line ~clients:2
      ~txns:6
  in
  check_int "line dialect resolves everything" 12
    (res.Driver.completed + res.Driver.aborted)

(* --- mix distributions: the catalog's labels are true --- *)

let plans mix n =
  let s = Mix.sampler mix ~keys:256 ~seed:5 in
  List.init n (fun _ -> Mix.next_plan s)

let test_mix_ycsb_shapes () =
  List.iter
    (fun (p : Mix.plan) ->
      check "ycsb-c read-only" true (p.Mix.writes = []);
      check_int "ycsb-c single read" 1 (List.length p.Mix.reads))
    (plans Mix.Ycsb_c 500);
  let updates =
    List.length (List.filter (fun (p : Mix.plan) -> p.Mix.writes <> []) (plans Mix.Ycsb_a 2000))
  in
  check
    (Printf.sprintf "ycsb-a ~50%% updates (%d/2000)" updates)
    true
    (updates > 850 && updates < 1150);
  let b_updates =
    List.length (List.filter (fun (p : Mix.plan) -> p.Mix.writes <> []) (plans Mix.Ycsb_b 2000))
  in
  check
    (Printf.sprintf "ycsb-b ~5%% updates (%d/2000)" b_updates)
    true
    (b_updates > 40 && b_updates < 180);
  List.iter
    (fun (p : Mix.plan) ->
      match (p.Mix.reads, p.Mix.writes) with
      | reads, [] ->
          let n = List.length reads in
          check "ycsb-e scan length 1-16" true (n >= 1 && n <= 16);
          (* scans are contiguous ranges *)
          (match reads with
          | first :: _ ->
              check "ycsb-e scan contiguous" true
                (reads = List.init n (fun i -> first + i))
          | [] -> ())
      | [], [ k ] -> check "ycsb-e insert allocates past keyspace" true (k >= 256)
      | _ -> Alcotest.fail "ycsb-e: neither scan nor insert")
    (plans Mix.Ycsb_e 500);
  List.iter
    (fun (p : Mix.plan) ->
      match p.Mix.writes with
      | [] -> ()
      | [ k ] -> check "ycsb-f RMW writes what it read" true (p.Mix.reads = [ k ])
      | _ -> Alcotest.fail "ycsb-f multi-write")
    (plans Mix.Ycsb_f 500)

let test_mix_hot_key_concentration () =
  let keys = 256 in
  let hot_cut = keys * 5 / 100 in
  let s = Mix.sampler Mix.Hot_key ~keys ~seed:9 in
  (* every hot-key plan draws exactly one key (an RMW rewrites the key
     it read), so the per-draw hot probability is what the label
     promises: ~90% *)
  let total = 4000 and hot = ref 0 in
  for _ = 1 to total do
    let p = Mix.next_plan s in
    List.iter (fun k -> if k < hot_cut then incr hot) p.Mix.reads
  done;
  let frac = float_of_int !hot /. float_of_int total in
  check
    (Printf.sprintf "hot 5%% of keys draw ~90%% of ops (%.2f)" frac)
    true
    (frac > 0.85 && frac < 0.95)

let test_mix_tpcc_shapes () =
  let seen_neworder = ref false and seen_payment = ref false
  and seen_stock = ref false in
  List.iter
    (fun (p : Mix.plan) ->
      match (p.Mix.reads, p.Mix.writes) with
      | reads, [] ->
          seen_stock := true;
          check "stock-level reads item rows" true
            (reads <> [] && List.length reads <= 21)
      | reads, writes when List.exists (fun k -> k >= 256) writes ->
          seen_neworder := true;
          (* reads = district :: items, writes = fresh order row ::
             the same items' stock rows *)
          check "new-order stock writes mirror the item reads" true
            (List.tl writes = List.tl reads);
          check "new-order order row is freshly inserted" true
            (List.hd writes >= 256 && List.hd reads < 64)
      | reads, writes ->
          seen_payment := true;
          check "payment rewrites the meta rows it read" true (reads = writes);
          check "payment touches 1-2 rows" true (List.length writes <= 2))
    (plans Mix.Tpcc 500);
  check "all three TPC-C flavors drawn" true
    (!seen_neworder && !seen_payment && !seen_stock)

let test_mix_long_reader_cadence () =
  let s = Mix.sampler Mix.Long_reader_pin ~keys:256 ~seed:3 in
  List.iteri
    (fun i (p : Mix.plan) ->
      if i mod 8 = 0 then begin
        check "pinned reader is read-only" true (p.Mix.writes = []);
        check "pinned reader reads dozens of keys" true
          (List.length p.Mix.reads >= 24)
      end
      else
        check "filler is ycsb-b-sized" true (List.length p.Mix.reads <= 1))
    (List.init 64 (fun _ -> Mix.next_plan s))

let schedule_covers mix =
  let n_txns = 40 in
  let steps = Mix.schedule mix ~n_txns ~keys:128 ~mpl:5 ~seed:2 in
  let begun = Hashtbl.create 64 and completed = Hashtbl.create 64 in
  List.iter
    (function
      | Step.Begin t -> Hashtbl.replace begun t ()
      | Step.Write (t, _) -> Hashtbl.replace completed t ()
      | Step.Read _ -> ()
      | _ -> Alcotest.fail "non-basic step in rendered schedule")
    steps;
  check_int (Mix.name mix ^ ": every transaction begun") n_txns
    (Hashtbl.length begun);
  check_int (Mix.name mix ^ ": every transaction completed") n_txns
    (Hashtbl.length completed);
  check (Mix.name mix ^ ": deterministic") true
    (steps = Mix.schedule mix ~n_txns ~keys:128 ~mpl:5 ~seed:2)

let test_mix_schedules_complete () = List.iter schedule_covers Mix.all

let test_mix_names_roundtrip () =
  List.iter
    (fun m ->
      match Mix.of_string (Mix.name m) with
      | Ok m' -> check (Mix.name m ^ " round trips") true (m = m')
      | Error e -> Alcotest.fail e)
    Mix.all;
  match Mix.of_string "ycsb-z" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown mix accepted"

let () =
  Alcotest.run "net"
    [
      ( "wire",
        [
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          QCheck_alcotest.to_alcotest prop_request_stream;
          Alcotest.test_case "binary typed rejections" `Quick test_binary_errors;
          Alcotest.test_case "line typed rejections" `Quick test_line_errors;
          Alcotest.test_case "address parsing" `Quick test_addr_parsing;
        ] );
      ( "server",
        [
          Alcotest.test_case "responses stay in issue order" `Quick
            test_response_issue_order;
          Alcotest.test_case "mid-frame disconnect spares other clients" `Quick
            test_midframe_disconnect;
          Alcotest.test_case "oversized frame answered with typed error" `Quick
            test_oversized_gets_error_reply;
          Alcotest.test_case "garbage line answered with typed error" `Quick
            test_line_garbage_gets_error_reply;
          Alcotest.test_case "both dialects share one engine" `Quick
            test_mixed_dialects;
          Alcotest.test_case "tcp endpoint with kernel port" `Quick
            test_tcp_endpoint;
        ] );
      ( "loopback-differential",
        [
          Alcotest.test_case "seq engine, ycsb-b" `Quick
            test_differential_seq_ycsb_b;
          Alcotest.test_case "seq engine, long-reader-pin" `Quick
            test_differential_seq_long_reader;
          Alcotest.test_case "parallel engine (replay), ycsb-b" `Quick
            test_differential_par_ycsb_b;
          Alcotest.test_case "parallel engine (replay), long-reader-pin" `Quick
            test_differential_par_long_reader;
          Alcotest.test_case "parallel engine (domains)" `Quick
            test_differential_domains;
        ] );
      ( "driver",
        [
          Alcotest.test_case "closed loop accounts for everything" `Quick
            test_driver_accounts_for_everything;
          Alcotest.test_case "line dialect end to end" `Quick
            test_driver_line_dialect;
        ] );
      ( "mixes",
        [
          Alcotest.test_case "ycsb shapes" `Quick test_mix_ycsb_shapes;
          Alcotest.test_case "hot-key concentration" `Quick
            test_mix_hot_key_concentration;
          Alcotest.test_case "tpcc plan shapes" `Quick test_mix_tpcc_shapes;
          Alcotest.test_case "long-reader cadence" `Quick
            test_mix_long_reader_cadence;
          Alcotest.test_case "schedules complete and deterministic" `Quick
            test_mix_schedules_complete;
          Alcotest.test_case "names round trip" `Quick test_mix_names_roundtrip;
        ] );
    ]
