(* The schedule linter: one unit test per diagnostic code, plus the
   corpus under [corpus/]: every good file must lint clean (even under
   [--strict]) and every bad file must raise the code its name claims,
   both through the library and through the installed [dct lint]
   executable (exit-code contract). *)

module Lint = Dct_analysis.Lint

let check = Alcotest.(check bool)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let codes fs = List.sort_uniq compare (List.map (fun f -> f.Lint.code) fs)

let has_code c fs = List.mem c (codes fs)

let lint = Lint.lint_string

let test_clean () =
  let fs = lint "b T1\nr T1 x\nb T2\nr T2 x\nw T2 x\nw T1\n" in
  Alcotest.(check (list string)) "no findings" [] (codes fs);
  Alcotest.(check int) "exit 0" 0 (Lint.exit_code ~strict:true fs)

let test_dct000_parse_error () =
  let fs = lint "b T1\nfrobnicate T1\nw T1\n" in
  check "DCT000" true (has_code "DCT000" fs);
  (* the offending token is named and the line is right *)
  let f = List.find (fun f -> f.Lint.code = "DCT000") fs in
  Alcotest.(check int) "line 2" 2 f.Lint.line;
  check "names token" true
    (contains ~sub:"frobnicate" f.Lint.message)

let test_dct001_before_begin () =
  let fs = lint "r T1 x\nw T1\n" in
  check "DCT001" true (has_code "DCT001" fs);
  check "error severity" true
    ((List.find (fun f -> f.Lint.code = "DCT001") fs).Lint.severity = Lint.Error)

let test_dct002_after_completion () =
  let fs = lint "b T1\nw T1 x\nr T1 x\nb T2\nr T2 x\nw T2\n" in
  check "DCT002" true (has_code "DCT002" fs);
  Alcotest.(check int) "line 3" 3
    (List.find (fun f -> f.Lint.code = "DCT002") fs).Lint.line;
  (* finish and re-begin after completion are DCT002 too *)
  check "finish after f" true (has_code "DCT002" (lint "b T1\nf T1\nf T1\n"));
  check "begin after w" true (has_code "DCT002" (lint "b T1\nw T1\nb T1\n"))

let test_dct003_never_completes () =
  let fs = lint "b T1\nr T1 x\n" in
  check "DCT003" true (has_code "DCT003" fs);
  check "warning severity" true
    ((List.find (fun f -> f.Lint.code = "DCT003") fs).Lint.severity
    = Lint.Warning);
  Alcotest.(check int) "non-strict exit 0" 0 (Lint.exit_code fs);
  Alcotest.(check int) "strict exit 1" 1 (Lint.exit_code ~strict:true fs);
  (* a predeclared transaction completes by exhausting its declaration *)
  check "fulfilled declaration completes" false
    (has_code "DCT003" (lint "bd T1 r:x\nr T1 x\n"));
  check "unfulfilled declaration does not" true
    (has_code "DCT003" (lint "bd T1 r:x w:z\nr T1 x\n"))

let test_dct004_mixed_models () =
  (* per-transaction mixing is an error *)
  let fs = lint "b T1\nw1 T1 x\nw T1 x\nb T2\nr T2 x\nw T2\n" in
  check "DCT004" true (has_code "DCT004" fs);
  check "error severity" true
    (List.exists
       (fun f -> f.Lint.code = "DCT004" && f.Lint.severity = Lint.Error)
       fs);
  (* cross-transaction mixing is a warning *)
  let fs = lint "b T1\nw T1 x\nb T2\nw1 T2 x\nf T2\nb T3\nr T3 x\nw T3\n" in
  check "schedule-level DCT004" true
    (List.exists
       (fun f -> f.Lint.code = "DCT004" && f.Lint.severity = Lint.Warning)
       fs);
  (* predeclared transactions may use w1/f without mixing *)
  check "predeclared+w1 ok" false
    (has_code "DCT004" (lint "bd T1 r:x w:z\nr T1 x\nw1 T1 z\nbd T2 r:z\nr T2 z\n"))

let test_dct005_outside_declaration () =
  let fs = lint "bd T1 r:x\nr T1 y\nr T1 x\n" in
  check "DCT005" true (has_code "DCT005" fs);
  (* writing a read-only declared entity is DCT005 too *)
  check "write of read-only" true
    (has_code "DCT005" (lint "bd T1 r:x,z w:q\nw1 T1 x\nr T1 z\nw1 T1 q\n"));
  (* undeclared transactions are exempt *)
  check "no declaration, no check" false
    (has_code "DCT005" (lint "b T1\nr T1 y\nw T1\n"))

let test_dct006_never_read () =
  let fs = lint "b T1\nw T1 x\n" in
  check "DCT006" true (has_code "DCT006" fs);
  check "warning severity" true
    ((List.find (fun f -> f.Lint.code = "DCT006") fs).Lint.severity
    = Lint.Warning);
  check "read elsewhere silences" false
    (has_code "DCT006" (lint "b T1\nw T1 x\nb T2\nr T2 x\nw T2\n"))

let test_dct007_duplicate_begin () =
  let fs = lint "b T1\nb T1\nw T1\n" in
  check "DCT007" true (has_code "DCT007" fs);
  Alcotest.(check int) "line 2" 2
    (List.find (fun f -> f.Lint.code = "DCT007") fs).Lint.line

let test_renderers () =
  let fs = lint "r T1 x\nw T1\n" in
  let human = Lint.render ~file:"f.sched" fs in
  check "human mentions file" true
    (contains ~sub:"f.sched:1: error:" human);
  check "human mentions code" true
    (contains ~sub:"[DCT001]" human);
  let machine = Lint.render_machine ~file:"f.sched" fs in
  check "machine tab-separated" true
    (contains ~sub:"f.sched\t1\terror\tDCT001\t" machine)

(* --- the corpus, through the library and through the binary --- *)

let corpus_dir sub = Filename.concat (Filename.concat "corpus" sub)
let list_corpus sub =
  Sys.readdir (Filename.concat "corpus" sub)
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sched")
  |> List.sort compare

let dct_exe = Filename.concat (Filename.concat ".." "bin") "dct.exe"

let run_lint ?(strict = false) path =
  let out = Filename.temp_file "dct_lint" ".out" in
  let args =
    [ "lint" ] @ (if strict then [ "--strict" ] else []) @ [ "--machine"; path ]
  in
  let code = Sys.command (Filename.quote_command dct_exe ~stdout:out args) in
  let ic = open_in out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let expected_code file =
  (* corpus/bad/dct001_step_before_begin.sched -> DCT001 *)
  String.uppercase_ascii (String.sub file 0 6)

let test_corpus_good_library () =
  let files = list_corpus "good" in
  check "corpus present" true (List.length files >= 4);
  List.iter
    (fun f ->
      match Lint.lint_file (corpus_dir "good" f) with
      | Error e -> Alcotest.fail e
      | Ok fs ->
          Alcotest.(check (list string)) (f ^ " clean") [] (codes fs))
    files

let test_corpus_bad_library () =
  let files = list_corpus "bad" in
  check "corpus present" true (List.length files >= 8);
  List.iter
    (fun f ->
      match Lint.lint_file (corpus_dir "bad" f) with
      | Error e -> Alcotest.fail e
      | Ok fs ->
          check (f ^ " raises " ^ expected_code f) true
            (has_code (expected_code f) fs);
          Alcotest.(check int)
            (f ^ " strict exit") 1
            (Lint.exit_code ~strict:true fs))
    files

let test_corpus_binary () =
  if not (Sys.file_exists dct_exe) then
    Alcotest.skip ()
  else begin
    List.iter
      (fun f ->
        let code, _ = run_lint ~strict:true (corpus_dir "good" f) in
        Alcotest.(check int) (f ^ " exits 0") 0 code)
      (list_corpus "good");
    List.iter
      (fun f ->
        let code, out = run_lint ~strict:true (corpus_dir "bad" f) in
        Alcotest.(check int) (f ^ " exits 1") 1 code;
        check
          (f ^ " reports " ^ expected_code f)
          true
          (contains ~sub:(expected_code f) out))
      (list_corpus "bad")
  end

let test_lint_file_missing () =
  check "missing file is Error" true
    (Result.is_error (Lint.lint_file "corpus/no_such_file.sched"))

let () =
  Alcotest.run "lint"
    [
      ( "codes",
        [
          Alcotest.test_case "clean schedule" `Quick test_clean;
          Alcotest.test_case "DCT000 parse error" `Quick test_dct000_parse_error;
          Alcotest.test_case "DCT001 before begin" `Quick test_dct001_before_begin;
          Alcotest.test_case "DCT002 after completion" `Quick
            test_dct002_after_completion;
          Alcotest.test_case "DCT003 never completes" `Quick
            test_dct003_never_completes;
          Alcotest.test_case "DCT004 mixed models" `Quick test_dct004_mixed_models;
          Alcotest.test_case "DCT005 outside declaration" `Quick
            test_dct005_outside_declaration;
          Alcotest.test_case "DCT006 never read" `Quick test_dct006_never_read;
          Alcotest.test_case "DCT007 duplicate begin" `Quick
            test_dct007_duplicate_begin;
          Alcotest.test_case "renderers" `Quick test_renderers;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "good files clean (library)" `Quick
            test_corpus_good_library;
          Alcotest.test_case "bad files flagged (library)" `Quick
            test_corpus_bad_library;
          Alcotest.test_case "exit codes (dct lint binary)" `Quick
            test_corpus_binary;
          Alcotest.test_case "missing file" `Quick test_lint_file_missing;
        ] );
    ]
