(* The sharded engine's contracts:

   - Partitioner: hash and range placement, spec parsing/printing;
   - Admission: deterministic batch boundaries, tick flushes, counters;
   - Engine bookkeeping: counter identities, config validation, trace
     emission through the coordinator's tracer;
   - the residency invariant observed live, mid-run: no shard ever
     holds more resident transactions than the coordinator;
   - DIFFERENTIAL (the tentpole guarantee): across 20 workload
     profiles x shards {1,2,4,8} x policies {Noncurrent, Greedy_c1,
     Exact_max} — 240 runs — every step's outcome equals the
     single-node SGT scheduler's on the same merged step sequence,
     per-shard residency never exceeds single-node residency at the
     same step, and the sharded stores agree with the single-node
     store entity by entity. *)

module Eng = Dct_engine.Engine
module Partitioner = Dct_engine.Partitioner
module Admission = Dct_engine.Admission
module Shard = Dct_engine.Shard
module Coordinator = Dct_engine.Coordinator
module Policy = Dct_deletion.Policy
module Step = Dct_txn.Step
module Gen = Dct_workload.Generator
module E = Dct_telemetry.Event
module Sink = Dct_telemetry.Sink
module Tracer = Dct_telemetry.Tracer

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- partitioner --- *)

let test_partitioner_hash () =
  let p = Partitioner.hash ~shards:4 in
  check_int "shards" 4 (Partitioner.shards p);
  for e = 0 to 20 do
    check_int "entity mod shards" (e mod 4) (Partitioner.shard_of p e)
  done;
  Alcotest.(check string) "spec" "hash" (Partitioner.spec p)

let test_partitioner_range () =
  let p = Partitioner.range ~shards:3 ~span:10 in
  check_int "first span" 0 (Partitioner.shard_of p 9);
  check_int "second span" 1 (Partitioner.shard_of p 10);
  check_int "third span" 2 (Partitioner.shard_of p 29);
  (* Entities past the last span wrap round-robin by span. *)
  check "beyond spans stays in range" true
    (let s = Partitioner.shard_of p 31 in
     s >= 0 && s < 3);
  Alcotest.(check string) "spec" "range:10" (Partitioner.spec p)

let test_partitioner_of_string () =
  check "hash parses" true
    (match Partitioner.of_string "hash" ~shards:2 with
    | Ok p -> Partitioner.spec p = "hash"
    | Error _ -> false);
  check "range parses" true
    (match Partitioner.of_string "range:16" ~shards:2 with
    | Ok p -> Partitioner.spec p = "range:16"
    | Error _ -> false);
  check "garbage rejected" true
    (Result.is_error (Partitioner.of_string "mod:3" ~shards:2));
  check "bad span rejected" true
    (Result.is_error (Partitioner.of_string "range:0" ~shards:2))

(* --- admission --- *)

let test_admission_batching () =
  let a = Admission.create ~batch:3 in
  let s i = Step.Begin i in
  check "first submit buffers" true (Admission.submit a (s 1) = None);
  check "second submit buffers" true (Admission.submit a (s 2) = None);
  (match Admission.submit a (s 3) with
  | Some [ Step.Begin 1; Step.Begin 2; Step.Begin 3 ] -> ()
  | Some _ -> Alcotest.fail "batch out of order"
  | None -> Alcotest.fail "third submit should flush the batch");
  check "drained" true (Admission.pending a = 0);
  ignore (Admission.submit a (s 4));
  (match Admission.tick a with
  | [ Step.Begin 4 ] -> ()
  | _ -> Alcotest.fail "tick should flush the partial batch");
  check_int "empty tick" 0 (List.length (Admission.tick a));
  check_int "submitted" 4 (Admission.submitted a);
  check_int "full batches" 1 (Admission.full_batches a);
  check "ticks counted" true (Admission.ticks a >= 1);
  check "batch 0 rejected" true
    (try
       ignore (Admission.create ~batch:0);
       false
     with Invalid_argument _ -> true)

(* --- engine bookkeeping --- *)

let workload ?(txns = 60) ?(entities = 24) ?(mpl = 6) ?(theta = 0.8)
    ?(shards = 1) ?(cross = 0.1) seed =
  Gen.basic
    {
      Gen.default with
      Gen.n_txns = txns;
      n_entities = entities;
      mpl;
      skew = (if theta <= 0.0 then "uniform" else Printf.sprintf "zipf:%.2f" theta);
      shards;
      cross_shard = cross;
      seed;
    }

let test_config_validation () =
  check "shards 0 rejected" true
    (try
       ignore (Eng.config ~shards:0 ~batch:4 ());
       false
     with Invalid_argument _ -> true);
  check "batch 0 rejected" true
    (try
       ignore (Eng.config ~shards:2 ~batch:0 ());
       false
     with Invalid_argument _ -> true);
  check "partitioner mismatch rejected" true
    (try
       ignore
         (Eng.config ~shards:2 ~batch:4
            ~partitioner:(Partitioner.hash ~shards:3) ());
       false
     with Invalid_argument _ -> true)

let test_engine_counters () =
  let eng = Eng.create (Eng.config ~shards:4 ~batch:8 ()) in
  let steps = workload ~shards:4 7 in
  let r = Eng.run eng steps in
  check_int "all submitted" (List.length steps) r.Eng.submitted;
  check_int "all processed" r.Eng.submitted r.Eng.steps;
  check_int "outcomes partition the steps" r.Eng.steps
    (r.Eng.accepted + r.Eng.rejected + r.Eng.ignored);
  check "some commits" true (r.Eng.committed > 0);
  check "commits bounded by accepts" true (r.Eng.committed <= r.Eng.accepted);
  check "shard peak <= coordinator peak" true
    (r.Eng.shard_resident_hwm <= r.Eng.coordinator.Coordinator.resident_hwm);
  let shard_committed =
    Array.fold_left
      (fun acc (s : Shard.stats) -> acc + s.Shard.committed)
      0 r.Eng.shard_stats
  in
  (* Completion broadcast: every hosting shard commits the txn, so the
     per-shard sum is at least the global count. *)
  check "broadcast commits cover global" true
    (shard_committed >= r.Eng.committed);
  check "arcs classified" true (r.Eng.cross_shard_arcs + r.Eng.local_arcs >= 0)

let test_engine_trace_emitted () =
  let buf = Buffer.create 1024 in
  let tracer = Tracer.create ~sink:(Sink.memory buf) () in
  let eng = Eng.create (Eng.config ~shards:2 ~batch:4 ~tracer ()) in
  let steps = workload ~txns:20 ~shards:2 3 in
  let r = Eng.run eng steps in
  let events, errors = Sink.parse_string_lenient (Buffer.contents buf) in
  check_int "trace parses cleanly" 0 (List.length errors);
  let submissions =
    List.length
      (List.filter
         (function E.Step_submitted _ -> true | _ -> false)
         events)
  in
  let decisions =
    List.length
      (List.filter (function E.Decision _ -> true | _ -> false) events)
  in
  check_int "one submission event per step" r.Eng.steps submissions;
  check_int "one decision event per step" r.Eng.steps decisions

let test_residency_invariant_live () =
  (* Observed after every decided step, not just at the end: no shard's
     resident set ever outgrows the coordinator's. *)
  let eng = Eng.create (Eng.config ~shards:4 ~batch:5 ()) in
  let violated = ref None in
  let on_step index _step _outcome =
    let coord = (Coordinator.stats (Eng.coordinator eng)).Coordinator.resident_txns in
    Array.iteri
      (fun shard r ->
        if r > coord && !violated = None then violated := Some (index, shard, r, coord))
      (Eng.shard_residents eng)
  in
  ignore (Eng.run ~on_step eng (workload ~txns:80 ~shards:4 ~cross:0.3 11));
  match !violated with
  | None -> ()
  | Some (i, s, r, c) ->
      Alcotest.failf "step %d: shard %d resident %d > coordinator %d" i s r c

(* --- the differential sweep --- *)

(* 20 profiles spanning contention (uniform to theta=1.2), scale,
   concurrency, batch size and cross-shard traffic.  Each runs under
   shards {1,2,4,8} x policies {Noncurrent, Greedy_c1, Exact_max}:
   240 engine-vs-single-node comparisons. *)
let profiles =
  let mk ?(txns = 50) ?(entities = 24) ?(mpl = 5) ?(theta = 0.8)
      ?(cross = 0.1) ?(batch = 8) seed =
    (txns, entities, mpl, theta, cross, batch, seed)
  in
  [
    mk 101;
    mk ~theta:0.0 102;
    mk ~theta:1.2 ~entities:12 103;
    mk ~mpl:2 104;
    mk ~mpl:10 ~txns:70 105;
    mk ~batch:1 106;
    mk ~batch:64 107;
    mk ~cross:0.0 108;
    mk ~cross:0.6 109;
    mk ~cross:1.0 ~theta:1.0 110;
    mk ~entities:8 ~theta:1.1 ~mpl:6 111;
    mk ~entities:64 ~txns:80 112;
    mk ~txns:30 ~batch:7 113;
    mk ~txns:90 ~theta:0.99 ~cross:0.25 114;
    mk ~mpl:8 ~theta:0.9 ~batch:16 115;
    mk ~entities:16 ~cross:0.4 ~batch:3 116;
    mk ~theta:0.5 ~mpl:7 117;
    mk ~txns:60 ~entities:32 ~theta:1.05 118;
    mk ~mpl:4 ~cross:0.8 ~batch:32 119;
    mk ~txns:100 ~entities:40 ~theta:0.7 ~batch:12 120;
  ]

let shard_counts = [ 1; 2; 4; 8 ]
let policies = [ Policy.Noncurrent; Policy.Greedy_c1; Policy.Exact_max ]

let test_differential_sweep () =
  let runs = ref 0 in
  List.iter
    (fun (txns, entities, mpl, theta, cross, batch, seed) ->
      List.iter
        (fun shards ->
          (* Generate with matching affinity so the workload actually
             exercises the partitioning it runs under. *)
          let steps =
            workload ~txns ~entities ~mpl ~theta ~shards ~cross seed
          in
          List.iter
            (fun policy ->
              incr runs;
              let d = Eng.differential ~shards ~batch ~policy steps in
              if not (Eng.differential_ok d) then
                Alcotest.failf
                  "profile seed=%d shards=%d batch=%d policy=%s diverged:@\n%a"
                  seed shards batch (Policy.name policy) Eng.pp_differential d;
              check "shard peak <= single-node peak" true
                (d.Eng.engine_shard_peak <= d.Eng.single_peak))
            policies)
        shard_counts)
    profiles;
  check "sweep covers >= 240 runs" true (!runs >= 240)

let test_differential_range_partitioner () =
  (* The exactness argument is partitioner-independent; spot-check the
     range partitioner too. *)
  List.iter
    (fun span ->
      let steps = workload ~txns:60 ~entities:32 ~theta:0.9 21 in
      let partitioner = Partitioner.range ~shards:4 ~span in
      let d =
        Eng.differential ~partitioner ~shards:4 ~batch:8
          ~policy:Policy.Greedy_c1 steps
      in
      if not (Eng.differential_ok d) then
        Alcotest.failf "range:%d diverged:@\n%a" span Eng.pp_differential d)
    [ 1; 8; 16 ]

let () =
  Alcotest.run "engine"
    [
      ( "partitioner",
        [
          Alcotest.test_case "hash placement" `Quick test_partitioner_hash;
          Alcotest.test_case "range placement" `Quick test_partitioner_range;
          Alcotest.test_case "spec parsing" `Quick test_partitioner_of_string;
        ] );
      ( "admission",
        [ Alcotest.test_case "batch boundaries" `Quick test_admission_batching ] );
      ( "engine",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "counter identities" `Quick test_engine_counters;
          Alcotest.test_case "trace emission" `Quick test_engine_trace_emitted;
          Alcotest.test_case "live residency invariant" `Quick
            test_residency_invariant_live;
        ] );
      ( "differential",
        [
          Alcotest.test_case "240-run sweep vs single-node SGT" `Slow
            test_differential_sweep;
          Alcotest.test_case "range partitioner spot-check" `Quick
            test_differential_range_partitioner;
        ] );
    ]
