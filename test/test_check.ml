(* The history checker's differential suite.

   Four pillars:

   1. every scheduler-accepted history passes [ser].  The basic
      conflict scheduler additionally passes every level (it rejects a
      conflicting step at submission, so no transaction ever observes
      an anomaly).  The certifier is optimistic: a doomed transaction
      legally observes fractured or unstable reads before the commit
      certification aborts it, and the checker flags eagerly at access
      — so certify is asserted at [atomicity]/[rc] (atomic basic-model
      writes leave nothing dirty to read) and [ser] only.  Multiwrite
      and predeclared histories expose intermediate writes by design,
      so only the serializability of the committed projection is a
      theorem there;
   2. the mutation harness: each targeted injector's anomaly is
      detected at its level on 100% of the runs;
   3. a QCheck property: on abort-free histories (face-value generated
      schedules plus random swap/drop/duplicate noise) the streaming
      [ser] verdict — under both the [Closure] and [Topo] backends —
      equals the exact full-conflict-graph closure verdict, and
      checked mode reports no divergence;
   4. the corpus under [corpus/check/] through the installed binary:
      pinned violations, pinned exit codes, foreign-event and
      bad-line tolerance. *)

module H = Dct_check.History
module C = Dct_check.Checker
module M = Dct_check.Mutation
module V = Dct_check.Violation
module Gen = Dct_workload.Generator
module Prng = Dct_workload.Prng
module Sink = Dct_telemetry.Sink
module Tracer = Dct_telemetry.Tracer

let check = Alcotest.(check bool)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- accepted histories, via the real schedulers and telemetry --- *)

let profile seed =
  { Gen.default with Gen.n_txns = 60; n_entities = 16; mpl = 6; seed }

type model = Basic | Certify | Multiwrite | Predeclared

let model_name = function
  | Basic -> "basic"
  | Certify -> "certify"
  | Multiwrite -> "multiwrite"
  | Predeclared -> "predeclared"

(* Run a generated workload through the actual scheduler with the
   telemetry sink capturing the trace, then adapt the trace back into
   a normalized history — the checker sees exactly what a [dct
   simulate --trace] consumer would. *)
let accepted_ops model prof =
  let buf = Buffer.create 8192 in
  let tracer = Tracer.create ~sink:(Sink.memory buf) () in
  let handle, schedule =
    match model with
    | Basic ->
        let t =
          Dct_sched.Conflict_scheduler.create
            ~policy:Dct_deletion.Policy.Greedy_c1 ~tracer ()
        in
        (Dct_sched.Conflict_scheduler.handle_of t, Gen.basic prof)
    | Certify -> (Dct_sched.Certifier.handle ~tracer (), Gen.basic prof)
    | Multiwrite ->
        let t =
          Dct_sched.Multiwrite_scheduler.create
            ~deletion:(Dct_sched.Multiwrite_scheduler.C3_exact 8) ~tracer ()
        in
        (Dct_sched.Multiwrite_scheduler.handle_of t, Gen.multiwrite prof)
    | Predeclared ->
        let t =
          Dct_sched.Predeclared_scheduler.create ~use_c4_deletion:true ~tracer
            ()
        in
        (Dct_sched.Predeclared_scheduler.handle_of t, Gen.predeclared prof)
  in
  ignore (Dct_sim.Driver.run ~tracer handle schedule);
  Tracer.flush tracer;
  match Sink.parse_string (Buffer.contents buf) with
  | Error e -> Alcotest.fail ("trace did not round-trip: " ^ e)
  | Ok events ->
      let ops, stats = H.of_events events in
      Alcotest.(check int)
        (model_name model ^ " no undecided steps")
        0 stats.H.undecided;
      ops

let seeds = [ 1; 7; 42 ]

let test_accepted_pass () =
  List.iter
    (fun seed ->
      let prof = profile seed in
      (* basic: every level; certify: the levels its optimistic
         protocol guarantees (see the header comment) *)
      List.iter
        (fun (model, levels) ->
          let ops = accepted_ops model prof in
          check
            (Printf.sprintf "%s seed %d has ops" (model_name model) seed)
            true
            (List.length ops > 0);
          List.iter
            (fun level ->
              let r = C.check_ops ~checked:true ~level ops in
              if not (C.passed r) then
                Alcotest.failf "%s seed %d fails %s:\n%s" (model_name model)
                  seed (V.level_name level) (C.render r))
            levels)
        [
          (Basic, V.all_levels);
          (Certify, [ V.Atomicity; V.Read_committed; V.Serializable ]);
        ];
      (* multiwrite and predeclared: intermediate writes are visible,
         so only the serializability of the committed projection is a
         theorem; assert it under both oracles and checked mode *)
      List.iter
        (fun model ->
          let ops = accepted_ops model prof in
          List.iter
            (fun oracle ->
              let r =
                C.check_ops ~oracle ~checked:true ~level:V.Serializable ops
              in
              if not (C.passed r) then
                Alcotest.failf "%s seed %d fails ser:\n%s" (model_name model)
                  seed (C.render r))
            [ Dct_graph.Cycle_oracle.Closure; Dct_graph.Cycle_oracle.Topo ])
        [ Multiwrite; Predeclared ])
    seeds

(* --- targeted injectors: 100% detection at the matching level --- *)

let has_kind k r =
  List.exists (fun v -> v.V.kind = k) r.C.violations

let test_mutations_detected () =
  List.iter
    (fun seed ->
      let ops = accepted_ops Basic (profile seed) in
      let must name = function
        | Some m -> m
        | None -> Alcotest.failf "seed %d: no site for %s" seed name
      in
      let dr = must "dirty read" (M.inject_dirty_read ops) in
      check
        (Printf.sprintf "seed %d dirty read at atomicity" seed)
        true
        (has_kind V.Dirty_read (C.check_ops ~level:V.Atomicity dr));
      check
        (Printf.sprintf "seed %d dirty read at rc" seed)
        true
        (has_kind V.Dirty_read (C.check_ops ~level:V.Read_committed dr));
      let dw = must "dirty write" (M.inject_dirty_write ops) in
      check
        (Printf.sprintf "seed %d dirty write at atomicity" seed)
        true
        (has_kind V.Dirty_write (C.check_ops ~level:V.Atomicity dw));
      check
        (Printf.sprintf "seed %d dirty write at rc" seed)
        true
        (has_kind V.Dirty_write (C.check_ops ~level:V.Read_committed dw));
      let lu = must "lost update" (M.inject_lost_update ops) in
      check
        (Printf.sprintf "seed %d lost update at atomicity" seed)
        true
        (has_kind V.Lost_update (C.check_ops ~level:V.Atomicity lu));
      let cc = must "conflict cycle" (M.inject_conflict_cycle ops) in
      check
        (Printf.sprintf "seed %d conflict cycle at ser" seed)
        true
        ((C.check_ops ~level:V.Serializable cc).C.total > 0))
    seeds

(* injected histories must remain verdict-consistent with the exact
   reference — an injector that confused the two engines would make
   the 100%-detection bar meaningless *)
let test_injected_consistent () =
  List.iter
    (fun seed ->
      let ops = accepted_ops Basic (profile seed) in
      List.iter
        (fun (name, inj) ->
          match inj ops with
          | None -> ()
          | Some m ->
              let exact = C.exact_ser_verdict m in
              let stream = C.streaming_ser_verdict m in
              Alcotest.(check bool)
                (Printf.sprintf "seed %d %s: streaming = exact" seed name)
                exact stream)
        [
          ("dirty read", M.inject_dirty_read);
          ("dirty write", M.inject_dirty_write);
          ("lost update", M.inject_lost_update);
          ("conflict cycle", M.inject_conflict_cycle);
        ])
    seeds

(* --- QCheck: streaming ser == exact closure on abort-free noise --- *)

let gen_history =
  QCheck.make ~print:(fun ops ->
      String.concat "; "
        (List.map (fun (l : H.lop) -> H.op_to_string l.H.op) ops))
  @@ QCheck.Gen.map
       (fun (seed, which, noise) ->
         let prof =
           {
             (profile seed) with
             Gen.n_txns = 12 + (seed mod 9);
             n_entities = 5;
             mpl = 4;
           }
         in
         let schedule =
           match which mod 3 with
           | 0 -> Gen.basic prof
           | 1 -> Gen.multiwrite prof
           | _ -> Gen.predeclared prof
         in
         (* face value: abort-free by construction, which is exactly
            the regime where streaming and exact verdicts must agree *)
         let ops = ref (H.of_schedule schedule) in
         let rng = Prng.create ~seed:(noise + 1) in
         for _ = 1 to Prng.int rng 4 do
           let n = List.length !ops in
           if n > 1 then begin
             let at = Prng.int rng (n - 1) in
             let mutate =
               match Prng.int rng 3 with
               | 0 -> M.swap ~at
               | 1 -> M.drop ~at
               | _ -> M.duplicate ~at
             in
             match mutate !ops with Some m -> ops := m | None -> ()
           end
         done;
         !ops)
       QCheck.Gen.(triple (int_bound 10_000) (int_bound 2) (int_bound 10_000))

let prop_ser_differential =
  QCheck.Test.make ~count:150 ~name:"streaming ser == exact closure"
    gen_history (fun ops ->
      let exact = C.exact_ser_verdict ops in
      let via_closure =
        C.streaming_ser_verdict ~oracle:Dct_graph.Cycle_oracle.Closure ops
      in
      let via_topo =
        C.streaming_ser_verdict ~oracle:Dct_graph.Cycle_oracle.Topo ops
      in
      let r = C.check_ops ~checked:true ~level:V.Serializable ops in
      if r.C.divergence <> None then
        QCheck.Test.fail_reportf "checked mode diverged: %s"
          (Option.get r.C.divergence);
      if via_closure <> exact then
        QCheck.Test.fail_reportf "closure backend %b, exact %b" via_closure
          exact;
      if via_topo <> exact then
        QCheck.Test.fail_reportf "topo backend %b, exact %b" via_topo exact;
      (r.C.total > 0) = exact)

(* --- the checker front-ends agree with each other --- *)

let test_front_ends_agree () =
  let text = "b T1\nr T1 x\nb T2\nr T2 x\nw T2 x\nw T1 x\n" in
  let env = Dct_txn.Parse.create_env () in
  let schedule = Dct_txn.Parse.parse_exn env text in
  let via_schedule = C.check_schedule ~level:V.Atomicity schedule in
  let via_ops =
    C.check_ops ~level:V.Atomicity (H.of_schedule schedule)
  in
  Alcotest.(check int) "same totals" via_schedule.C.total via_ops.C.total;
  Alcotest.(check int) "one lost update" 1 via_ops.C.total;
  check "kind" true (has_kind V.Lost_update via_ops)

(* --- the corpus, through the binary --- *)

let dct_exe = Filename.concat (Filename.concat ".." "bin") "dct.exe"

let run_check args =
  let out = Filename.temp_file "dct_check" ".out" in
  let code = Sys.command (Filename.quote_command dct_exe ~stdout:out args) in
  let ic = open_in out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let corpus f = Filename.concat (Filename.concat "corpus" "check") f

let test_corpus_lost_update () =
  if not (Sys.file_exists dct_exe) then Alcotest.skip ()
  else begin
    let code, out = run_check [ "check"; corpus "lost_update.sched" ] in
    (* default level is ser *)
    Alcotest.(check int) "ser exits 1" 1 code;
    check "conflict cycle pinned" true
      (contains ~sub:"conflict-cycle: conflict arc T1 -> T0 closes a cycle" out);
    let code, out =
      run_check
        [ "check"; corpus "lost_update.sched"; "--level"; "atomicity" ]
    in
    Alcotest.(check int) "atomicity exits 1" 1 code;
    check "lost update pinned" true
      (contains
         ~sub:
           "lost-update: T0 commits a write of e0 over a version it read"
         out);
    check "witness pinned" true
      (contains ~sub:"#2 (line 5) r T0 e0 (version 0)" out);
    let code, _ =
      run_check [ "check"; corpus "lost_update.sched"; "--level"; "rc" ]
    in
    Alcotest.(check int) "rc exits 0 (nothing dirty)" 0 code;
    let code, out =
      run_check
        [ "check"; corpus "lost_update.sched"; "--checked"; "--json" ]
    in
    Alcotest.(check int) "checked json exits 1" 1 code;
    check "json violations" true (contains ~sub:"\"violations\":1" out);
    check "json checked the full prefix" true
      (contains ~sub:"\"checked_ops\":8" out);
    check "no divergence key absent means agreement" true
      (not (contains ~sub:"divergence" out))
  end

let test_corpus_foreign () =
  if not (Sys.file_exists dct_exe) then Alcotest.skip ()
  else begin
    let code, out =
      run_check [ "check"; corpus "foreign.jsonl"; "--level"; "atomicity" ]
    in
    Alcotest.(check int) "atomicity exits 1" 1 code;
    check "bad lines counted, not fatal" true
      (contains ~sub:"2 unparseable skipped" out);
    check "foreign events counted, not fatal" true
      (contains ~sub:"3 foreign skipped" out);
    check "dirty read pinned" true
      (contains
         ~sub:"dirty-read: T2 reads e3 while T1 holds an uncommitted write"
         out);
    check "witness lines point at the source" true
      (contains ~sub:"#2 (line 4) w T1 e3 (uncommitted)" out);
    (* the unconfirmed txn never commits: T1 is live at end *)
    check "live txn visible" true (contains ~sub:"1 live" out);
    let code, _ =
      run_check [ "check"; corpus "foreign.jsonl"; "--level"; "ser" ]
    in
    Alcotest.(check int) "ser exits 0 (no committed cycle)" 0 code;
    let code, out = run_check [ "check"; corpus "foreign.jsonl"; "--json" ] in
    Alcotest.(check int) "json ser exits 0" 0 code;
    check "json stats" true
      (contains ~sub:"\"bad_lines\":2" out && contains ~sub:"\"foreign\":3" out)
  end

let test_cli_missing_file () =
  if not (Sys.file_exists dct_exe) then Alcotest.skip ()
  else
    let code, _ = run_check [ "check"; "corpus/check/no_such_file.sched" ] in
    Alcotest.(check int) "unreadable exits 2" 2 code

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_ser_differential ] in
  Alcotest.run "check"
    [
      ( "accepted",
        [
          Alcotest.test_case "scheduler histories pass" `Slow
            test_accepted_pass;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "injected anomalies detected" `Quick
            test_mutations_detected;
          Alcotest.test_case "injected histories verdict-consistent" `Quick
            test_injected_consistent;
        ] );
      ("differential", qsuite);
      ( "front-ends",
        [ Alcotest.test_case "schedule == ops" `Quick test_front_ends_agree ]
      );
      ( "corpus",
        [
          Alcotest.test_case "lost_update.sched pinned" `Quick
            test_corpus_lost_update;
          Alcotest.test_case "foreign.jsonl pinned" `Quick test_corpus_foreign;
          Alcotest.test_case "missing file exits 2" `Quick
            test_cli_missing_file;
        ] );
    ]
