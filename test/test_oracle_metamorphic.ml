(* Metamorphic properties of the oracle backends: the backend is a cost
   profile, not a semantics.  For every deletion policy and every
   scheduler model, a full simulation under --oracle closure and
   --oracle topo (and the DFS fallback) must produce byte-for-byte
   identical decision traces — same per-step outcomes, same deletions at
   the same steps, same final graph.  The decision traces are then fed
   to [Dct_analysis.Audit], which must certify both. *)

module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Oracle = Dct_graph.Cycle_oracle
module Step = Dct_txn.Step
module Gs = Dct_deletion.Graph_state
module Policy = Dct_deletion.Policy
module Gallery = Dct_deletion.Paper_gallery
module Cs = Dct_sched.Conflict_scheduler
module Si = Dct_sched.Scheduler_intf
module Audit = Dct_analysis.Audit
module Gen = Dct_workload.Generator

let check = Alcotest.(check bool)

let outcome_name = Si.outcome_name

(* One full conflict-scheduler run; the observable decision trace is
   (step outcomes, deletion log, final stats, final graph). *)
let run_basic ?oracle ~policy schedule =
  let t = Cs.create ~policy ?oracle () in
  let outcomes = List.map (fun s -> outcome_name (Cs.step t s)) schedule in
  let deletions =
    List.map
      (fun (step, set) -> (step, Intset.to_sorted_list set))
      (Cs.deleted_log t)
  in
  let st = Cs.stats t in
  ( outcomes,
    deletions,
    (st.Si.committed_total, st.Si.aborted_total, st.Si.deleted_total),
    Gs.graph (Cs.graph_state t) )

let profile seed =
  { Gen.default with Gen.n_txns = 50; n_entities = 14; mpl = 6; seed }

let test_policies_closure_vs_topo () =
  List.iter
    (fun policy ->
      List.iter
        (fun seed ->
          let schedule = Gen.basic (profile seed) in
          let o_d, d_d, s_d, g_d = run_basic ~policy schedule in
          let o_c, d_c, s_c, g_c =
            run_basic ~oracle:Oracle.Closure ~policy schedule
          in
          let o_t, d_t, s_t, g_t =
            run_basic ~oracle:Oracle.Topo ~policy schedule
          in
          let name what =
            Printf.sprintf "%s/seed %d: %s" (Policy.name policy) seed what
          in
          Alcotest.(check (list string)) (name "outcomes dfs=closure") o_d o_c;
          Alcotest.(check (list string)) (name "outcomes closure=topo") o_c o_t;
          Alcotest.(check (list (pair int (list int))))
            (name "deletions dfs=closure") d_d d_c;
          Alcotest.(check (list (pair int (list int))))
            (name "deletions closure=topo") d_c d_t;
          Alcotest.(check (triple int int int)) (name "stats dfs=closure") s_d
            s_c;
          Alcotest.(check (triple int int int)) (name "stats closure=topo") s_c
            s_t;
          check (name "graph dfs=closure") true (Digraph.equal g_d g_c);
          check (name "graph closure=topo") true (Digraph.equal g_c g_t))
        [ 5; 23; 71 ])
    Policy.all_correct

(* The recorded audit trace must be oracle-independent, and the auditor
   must certify it whichever backend recorded it. *)
let comparable_trace trace =
  List.map
    (function
      | Audit.Decision { index; step; decision } ->
          Printf.sprintf "%d %s %s" index (Step.to_string step)
            (Format.asprintf "%a" Audit.pp_decision decision)
      | Audit.Deletion { index; deleted } ->
          Printf.sprintf "%d del {%s}" index
            (String.concat ","
               (List.map string_of_int (Intset.to_sorted_list deleted))))
    trace

let test_audit_cross_check () =
  List.iter
    (fun policy ->
      List.iter
        (fun seed ->
          let schedule = Gen.basic (profile seed) in
          let tr_c = Audit.record ~policy ~oracle:Oracle.Closure schedule in
          let tr_t = Audit.record ~policy ~oracle:Oracle.Topo schedule in
          Alcotest.(check (list string))
            (Printf.sprintf "%s/seed %d: recorded traces equal"
               (Policy.name policy) seed)
            (comparable_trace tr_c) (comparable_trace tr_t);
          check "closure-recorded trace audits clean" true
            (Audit.ok (Audit.audit tr_c));
          check "topo-recorded trace audits clean" true
            (Audit.ok (Audit.audit tr_t)))
        [ 13; 47 ])
    Policy.all_correct

(* --- every model completes under the Checked oracle --------------- *)

let test_multiwrite_checked () =
  let schedule =
    Gen.multiwrite { Gen.default with Gen.n_txns = 60; n_entities = 12; seed = 9 }
  in
  let t =
    Dct_sched.Multiwrite_scheduler.create
      ~deletion:(Dct_sched.Multiwrite_scheduler.C3_exact 8)
      ~oracle:Oracle.Checked ()
  in
  List.iter (fun s -> ignore (Dct_sched.Multiwrite_scheduler.step t s)) schedule;
  let st = Dct_sched.Multiwrite_scheduler.stats t in
  check "made progress" true (st.Si.committed_total > 0)

let test_predeclared_checked () =
  let schedule =
    Gen.predeclared
      { Gen.default with Gen.n_txns = 60; n_entities = 12; seed = 9 }
  in
  let t =
    Dct_sched.Predeclared_scheduler.create ~use_c4_deletion:true
      ~oracle:Oracle.Checked ()
  in
  List.iter (fun s -> ignore (Dct_sched.Predeclared_scheduler.step t s)) schedule;
  ignore (Dct_sched.Predeclared_scheduler.drain t);
  Alcotest.(check int) "queue flushed" 0
    (Dct_sched.Predeclared_scheduler.pending t)

let test_certifier_checked () =
  let schedule =
    Gen.basic { Gen.default with Gen.n_txns = 60; n_entities = 12; seed = 9 }
  in
  let t = Dct_sched.Certifier.create ~oracle:Oracle.Checked () in
  List.iter (fun s -> ignore (Dct_sched.Certifier.step t s)) schedule;
  let st = Dct_sched.Certifier.stats t in
  check "made progress" true (st.Si.committed_total > 0)

(* --- the paper gallery under the Checked oracle ------------------- *)

let test_gallery_checked () =
  (* Example 1 (§3): replay, delete the noncurrent T2, abort T1 — all
     three structural mutations (arc, bypass delete, exact removal)
     cross-checked. *)
  let schedule = Gallery.example1_schedule () in
  List.iter
    (fun policy ->
      let gs = Gs.create ~oracle:Oracle.Checked () in
      List.iter
        (fun s ->
          ignore (Dct_deletion.Rules.apply gs s);
          ignore (Policy.run policy gs))
        schedule;
      match Gs.oracle gs with
      | Some o ->
          check
            (Policy.name policy ^ ": checked oracle consistent")
            true
            (Oracle.check_against o (Gs.graph gs))
      | None -> Alcotest.fail "oracle missing")
    Policy.all_correct;
  (* The Theorem 5 set-cover schedule: a dense bipartite conflict
     pattern followed by exact-max deletion. *)
  let inst =
    Dct_npc.Set_cover.make ~universe:6
      [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 0; 3 ]; [ 1; 4 ]; [ 2; 5 ] ]
  in
  let schedule, _ = Dct_npc.Reduction_cover.schedule inst in
  let gs = Gs.create ~oracle:Oracle.Checked () in
  ignore (Dct_deletion.Rules.apply_all gs schedule);
  let deleted = Policy.run Policy.Exact_max gs in
  check "set-cover: exact-max deleted something" true
    (not (Intset.is_empty deleted));
  match Gs.oracle gs with
  | Some o ->
      check "set-cover: checked oracle consistent" true
        (Oracle.check_against o (Gs.graph gs))
  | None -> Alcotest.fail "oracle missing"

let () =
  Alcotest.run "oracle_metamorphic"
    [
      ( "basic",
        [
          Alcotest.test_case "policies: dfs = closure = topo" `Slow
            test_policies_closure_vs_topo;
          Alcotest.test_case "audit cross-check both backends" `Slow
            test_audit_cross_check;
        ] );
      ( "models",
        [
          Alcotest.test_case "multiwrite under checked" `Quick
            test_multiwrite_checked;
          Alcotest.test_case "predeclared under checked" `Quick
            test_predeclared_checked;
          Alcotest.test_case "certifier under checked" `Quick
            test_certifier_checked;
        ] );
      ( "gallery",
        [ Alcotest.test_case "worked examples under checked" `Quick test_gallery_checked ] );
    ]
