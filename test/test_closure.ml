module C = Dct_graph.Closure
module G = Dct_graph.Digraph
module T = Dct_graph.Traversal
module Intset = Dct_graph.Intset

let check = Alcotest.(check bool)

let test_basic () =
  let c = C.create () in
  C.add_arc c ~src:1 ~dst:2;
  C.add_arc c ~src:2 ~dst:3;
  check "1 reaches 3" true (C.reaches c ~src:1 ~dst:3);
  check "3 not 1" false (C.reaches c ~src:3 ~dst:1);
  check "would cycle 3->1" true (C.would_cycle c ~src:3 ~dst:1);
  check "no cycle 1->3" false (C.would_cycle c ~src:1 ~dst:3);
  Alcotest.(check (list int)) "descendants of 1" [ 2; 3 ]
    (Intset.to_sorted_list (C.descendants c 1));
  Alcotest.(check (list int)) "ancestors of 3" [ 1; 2 ]
    (Intset.to_sorted_list (C.ancestors c 3))

let test_bypass_removal () =
  (* 1 -> 2 -> 3: removing 2 with bypass keeps 1 ⇝ 3. *)
  let c = C.create () in
  C.add_arc c ~src:1 ~dst:2;
  C.add_arc c ~src:2 ~dst:3;
  C.remove_node c `Bypass 2;
  check "1 still reaches 3" true (C.reaches c ~src:1 ~dst:3);
  check "2 gone" false (C.mem_node c 2)

let test_exact_removal () =
  (* Same chain: exact removal severs the path. *)
  let c = C.create () in
  C.add_arc c ~src:1 ~dst:2;
  C.add_arc c ~src:2 ~dst:3;
  C.remove_node c `Exact 2;
  check "1 no longer reaches 3" false (C.reaches c ~src:1 ~dst:3)

let test_exact_removal_with_parallel_path () =
  let c = C.create () in
  C.add_arc c ~src:1 ~dst:2;
  C.add_arc c ~src:2 ~dst:3;
  C.add_arc c ~src:1 ~dst:3;
  C.remove_node c `Exact 2;
  check "direct arc survives" true (C.reaches c ~src:1 ~dst:3)

let test_random_against_recompute () =
  let rng = Dct_workload.Prng.create ~seed:11 in
  for _trial = 1 to 25 do
    let c = C.create () in
    let reference = G.create () in
    for _ = 1 to 60 do
      let op = Dct_workload.Prng.int rng 10 in
      if op < 7 then begin
        let src = Dct_workload.Prng.int rng 15
        and dst = Dct_workload.Prng.int rng 15 in
        if src <> dst then begin
          C.add_arc c ~src ~dst;
          G.add_arc reference ~src ~dst
        end
      end
      else begin
        let v = Dct_workload.Prng.int rng 15 in
        if G.mem_node reference v then begin
          C.remove_node c `Exact v;
          G.remove_node reference v
        end
      end
    done;
    check "closure matches recomputation" true (C.check_against c reference)
  done

let test_bypass_equals_reduced_reachability () =
  (* Random DAG; bypass-removing a node must preserve reachability among
     the remaining nodes exactly. *)
  let rng = Dct_workload.Prng.create ~seed:13 in
  for _trial = 1 to 25 do
    let c = C.create () in
    let reference = G.create () in
    for _ = 1 to 40 do
      let src = Dct_workload.Prng.int rng 12
      and dst = Dct_workload.Prng.int rng 12 in
      (* Keep it a DAG: only arcs small -> large. *)
      if src < dst then begin
        C.add_arc c ~src ~dst;
        G.add_arc reference ~src ~dst
      end
    done;
    let victim = 5 in
    if G.mem_node reference victim then begin
      let before =
        Intset.fold
          (fun v acc ->
            if v = victim then acc
            else
              Intset.fold
                (fun w acc ->
                  if w = victim then acc else ((v, w), T.has_path reference ~src:v ~dst:w) :: acc)
                (G.nodes reference) acc)
          (G.nodes reference) []
      in
      C.remove_node c `Bypass victim;
      List.iter
        (fun ((v, w), reachable) ->
          check
            (Printf.sprintf "reach %d->%d preserved" v w)
            reachable
            (C.reaches c ~src:v ~dst:w))
        before
    end
  done

(* --- regression: the targeted [`Exact] row rebuild ----------------
   [Closure.remove_node `Exact] recomputes only the rows that mentioned
   the removed node (it used to rebuild every row from scratch).  These
   tests pin the behaviour on the paper-gallery shapes the experiment
   suite (EX2-EX5) exercises, through both the raw closure and a
   closure-oracle graph state. *)

module Gs = Dct_deletion.Graph_state
module Rules = Dct_deletion.Rules
module Policy = Dct_deletion.Policy
module Reduced = Dct_deletion.Reduced_graph
module Oracle = Dct_graph.Cycle_oracle
module Gallery = Dct_deletion.Paper_gallery

let closure_of gs =
  match Gs.closure gs with
  | Some c -> c
  | None -> Alcotest.fail "closure oracle missing"

let sorted s = Intset.to_sorted_list s

let test_gallery_example1_removals () =
  (* §3 Figure 1: arcs T1->T2, T1->T3, T2->T3; T1 active. *)
  let replay () =
    let gs = Gs.create ~oracle:Oracle.Closure () in
    List.iter
      (fun s -> ignore (Rules.apply gs s))
      (Gallery.example1_schedule ());
    gs
  in
  (* Bypass branch: deleting the noncurrent T2 keeps T1 ⇝ T3. *)
  let gs = replay () in
  Reduced.delete gs 2;
  let c = closure_of gs in
  check "closure matches graph after bypass" true
    (C.check_against c (Gs.graph gs));
  check "T1 still reaches T3" true (C.reaches c ~src:1 ~dst:3);
  check "T2 purged" false (C.mem_node c 2);
  (* Exact branch: aborting the active T1 recomputes exactly the rows
     that mentioned it — here none going forward, both T2/T3 ancestor
     rows. *)
  let gs = replay () in
  Gs.abort_txn gs 1;
  let c = closure_of gs in
  check "closure matches graph after abort" true
    (C.check_against c (Gs.graph gs));
  check "T2 still reaches T3" true (C.reaches c ~src:2 ~dst:3);
  Alcotest.(check (list int)) "ancestors of T3 shrank to T2" [ 2 ]
    (sorted (C.ancestors c 3))

let test_lemma1_chain_exact_rows () =
  (* EX2's lemma-1 shape: a committed chain 1 -> 2 -> 3 -> 4 -> 5 with a
     shortcut 1 -> 5.  Exact-removing the middle node must refresh the
     rows of 1, 2 (descendants) and 4, 5 (ancestors) and nothing else. *)
  let c = C.create () in
  List.iter
    (fun (src, dst) -> C.add_arc c ~src ~dst)
    [ (1, 2); (2, 3); (3, 4); (4, 5); (1, 5) ];
  C.remove_node c `Exact 3;
  Alcotest.(check (list int)) "desc 1" [ 2; 5 ] (sorted (C.descendants c 1));
  Alcotest.(check (list int)) "desc 2" [] (sorted (C.descendants c 2));
  Alcotest.(check (list int)) "anc 4" [] (sorted (C.ancestors c 4));
  Alcotest.(check (list int)) "anc 5" [ 1; 4 ] (sorted (C.ancestors c 5));
  let reference = G.create () in
  List.iter
    (fun (src, dst) -> G.add_arc reference ~src ~dst)
    [ (1, 2); (4, 5); (1, 5) ];
  check "matches recomputation" true (C.check_against c reference)

let test_ex4_noncurrent_deletion_closure () =
  (* EX4 / Corollary 1: under the noncurrent policy the overwritten T2
     is deleted as soon as it completes; the closure tracks the
     reduction. *)
  let gs = Gs.create ~oracle:Oracle.Closure () in
  let deleted = ref Intset.empty in
  List.iter
    (fun s ->
      (match Rules.apply gs s with
      | Rules.Accepted | Rules.Rejected ->
          deleted := Intset.union !deleted (Policy.run Policy.Noncurrent gs)
      | Rules.Ignored -> ()))
    (Gallery.example1_schedule ());
  Alcotest.(check (list int)) "noncurrent deleted exactly T2" [ 2 ]
    (sorted !deleted);
  let c = closure_of gs in
  check "closure matches graph" true (C.check_against c (Gs.graph gs));
  check "bypass arc T1 -> T3 survives" true (C.reaches c ~src:1 ~dst:3)

let test_ex5_set_cover_closure () =
  (* EX5 / Theorem 5: the set-cover reduction schedule, replayed under
     the closure oracle, then exact-max deletion (m - k = 5 - 2). *)
  let inst =
    Dct_npc.Set_cover.make ~universe:6
      [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 0; 3 ]; [ 1; 4 ]; [ 2; 5 ] ]
  in
  let schedule, _ = Dct_npc.Reduction_cover.schedule inst in
  let gs = Gs.create ~oracle:Oracle.Closure () in
  ignore (Rules.apply_all gs schedule);
  let before = C.check_against (closure_of gs) (Gs.graph gs) in
  check "closure consistent before deletion" true before;
  let deleted = Policy.run Policy.Exact_max gs in
  Alcotest.(check int) "maximum deletion = m - k" 3 (Intset.cardinal deleted);
  check "closure consistent after deletion" true
    (C.check_against (closure_of gs) (Gs.graph gs))

let () =
  Alcotest.run "closure"
    [
      ( "gallery-regressions",
        [
          Alcotest.test_case "example 1: bypass and exact removal" `Quick
            test_gallery_example1_removals;
          Alcotest.test_case "lemma-1 chain: exact rebuilds rows" `Quick
            test_lemma1_chain_exact_rows;
          Alcotest.test_case "EX4 noncurrent deletion" `Quick
            test_ex4_noncurrent_deletion_closure;
          Alcotest.test_case "EX5 set-cover reduction" `Quick
            test_ex5_set_cover_closure;
        ] );
      ( "closure",
        [
          Alcotest.test_case "incremental reach" `Quick test_basic;
          Alcotest.test_case "bypass removal keeps paths" `Quick test_bypass_removal;
          Alcotest.test_case "exact removal severs paths" `Quick test_exact_removal;
          Alcotest.test_case "exact removal, parallel path" `Quick
            test_exact_removal_with_parallel_path;
          Alcotest.test_case "random ops vs recompute" `Slow
            test_random_against_recompute;
          Alcotest.test_case "bypass = reduced reachability" `Slow
            test_bypass_equals_reduced_reachability;
        ] );
    ]
