(* Metamorphic properties of the deletability index: the index backend
   is a cost profile, not a semantics.  For every graph model and every
   deletion policy, a full simulation under --gc-index naive,
   incremental and checked must produce byte-for-byte identical decision
   traces — same per-step outcomes, same deletions at the same steps,
   same telemetry outcome counters, same final graph.  [checked] runs
   naive and incremental in lock-step and raises on the first
   divergence, so merely completing is itself the differential.  The
   engine sweep (same 240-comparison shape as [test_engine.ml]) runs
   with the checked index at every GC site: coordinator, shards, and the
   single-node reference. *)

module Q = QCheck
module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Oracle = Dct_graph.Cycle_oracle
module Step = Dct_txn.Step
module Gs = Dct_deletion.Graph_state
module C1 = Dct_deletion.Condition_c1
module Rules = Dct_deletion.Rules
module Policy = Dct_deletion.Policy
module Dindex = Dct_deletion.Deletability_index
module Cs = Dct_sched.Conflict_scheduler
module Pd = Dct_sched.Predeclared_scheduler
module Mw = Dct_sched.Multiwrite_scheduler
module Si = Dct_sched.Scheduler_intf
module Tracer = Dct_telemetry.Tracer
module Metrics = Dct_telemetry.Metrics
module Eng = Dct_engine.Engine
module Gen = Dct_workload.Generator

let check = Alcotest.(check bool)
let outcome_name = Si.outcome_name

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let profile ?(n_txns = 50) ?(n_entities = 14) ?(mpl = 6) seed =
  { Gen.default with Gen.n_txns; n_entities; mpl; seed }

(* ------------------------------------------------------------------ *)
(* holds_fast = holds, pointwise, on random mid-flight states          *)

let state_of_seed seed =
  let schedule = Gen.basic (profile ~n_txns:12 ~n_entities:5 ~mpl:3 seed) in
  let prefix = take (List.length schedule * 2 / 3) schedule in
  let gs = Gs.create () in
  ignore (Rules.apply_all gs prefix);
  gs

let seed_arb = Q.make ~print:string_of_int Q.Gen.(1 -- 10_000)

let holds_fast_is_holds =
  Q.Test.make ~name:"holds_fast = holds (pointwise)" ~count:150 seed_arb
    (fun seed ->
      let gs = state_of_seed seed in
      let memo = C1.hashtbl_memo () in
      Intset.for_all
        (fun ti ->
          C1.holds gs ti = C1.holds_fast gs ti
          && C1.holds gs ti = C1.holds_fast ~memo gs ti)
        (Gs.completed_txns gs))

let eligible_agrees =
  Q.Test.make ~name:"C1.eligible = filter holds" ~count:100 seed_arb
    (fun seed ->
      let gs = state_of_seed seed in
      Intset.equal (C1.eligible gs)
        (Intset.filter (C1.holds gs) (Gs.completed_txns gs)))

(* An incrementally maintained index must answer exactly like a naive
   one at every step of a live run, whatever mutations the schedule
   throws at it — this is Checked mode's own assertion, re-stated from
   outside against a second, independent graph replica. *)
let index_tracks_reference =
  Q.Test.make ~name:"incremental index = naive, stepwise" ~count:60 seed_arb
    (fun seed ->
      let schedule = Gen.basic (profile ~n_txns:15 ~n_entities:6 ~mpl:4 seed) in
      let gs = Gs.create () in
      let idx = Dindex.attach Dindex.Incremental gs in
      List.iter
        (fun s ->
          ignore (Rules.apply gs s);
          if not (Intset.equal (Dindex.eligible idx) (C1.eligible gs)) then
            Q.Test.fail_reportf "eligible diverged after %s"
              (Step.to_string s);
          Intset.iter
            (fun ti ->
              if Dindex.noncurrent idx ti <> C1.noncurrent gs ti then
                Q.Test.fail_reportf "noncurrent(T%d) diverged" ti)
            (Gs.completed_txns gs);
          (* interleave deletions so the index also sees bypass removals *)
          ignore (Policy.run ~index:idx Policy.Greedy_c1 gs))
        schedule;
      true)

(* ------------------------------------------------------------------ *)
(* Basic model: full decision-trace equality across index backends     *)

let run_basic ?gc_index ~policy ~oracle schedule =
  let registry = Metrics.create () in
  let tracer = Tracer.create ~metrics:registry ~sink:Dct_telemetry.Sink.null () in
  let t = Cs.create ~policy ?oracle ~tracer ?gc_index () in
  let outcomes =
    List.map (fun s -> outcome_name (Cs.step t s)) schedule
  in
  let deletions =
    List.map
      (fun (step, set) -> (step, Intset.to_sorted_list set))
      (Cs.deleted_log t)
  in
  let st = Cs.stats t in
  let outcome_counters =
    List.sort compare
      (List.filter
         (fun (k, _) -> String.length k >= 8 && String.sub k 0 8 = "outcome.")
         (Metrics.counters registry))
  in
  ( outcomes,
    deletions,
    (st.Si.committed_total, st.Si.aborted_total, st.Si.deleted_total),
    outcome_counters,
    Gs.graph (Cs.graph_state t) )

let test_basic_backends_agree () =
  List.iter
    (fun policy ->
      List.iter
        (fun oracle ->
          List.iter
            (fun seed ->
              let schedule = Gen.basic (profile seed) in
              let o_n, d_n, s_n, c_n, g_n =
                run_basic ~policy ~oracle schedule
              in
              let o_i, d_i, s_i, c_i, g_i =
                run_basic ~gc_index:Dindex.Incremental ~policy ~oracle
                  schedule
              in
              let o_c, d_c, s_c, c_c, g_c =
                run_basic ~gc_index:Dindex.Checked ~policy ~oracle schedule
              in
              let name what =
                Printf.sprintf "%s/%s/seed %d: %s" (Policy.name policy)
                  (match oracle with
                  | None -> "dfs"
                  | Some b -> Oracle.backend_name b)
                  seed what
              in
              Alcotest.(check (list string))
                (name "outcomes naive=incremental") o_n o_i;
              Alcotest.(check (list string))
                (name "outcomes incremental=checked") o_i o_c;
              Alcotest.(check (list (pair int (list int))))
                (name "deletions naive=incremental") d_n d_i;
              Alcotest.(check (list (pair int (list int))))
                (name "deletions incremental=checked") d_i d_c;
              Alcotest.(check (triple int int int))
                (name "stats naive=incremental") s_n s_i;
              Alcotest.(check (triple int int int))
                (name "stats incremental=checked") s_i s_c;
              Alcotest.(check (list (pair string int)))
                (name "telemetry outcome counters naive=incremental") c_n c_i;
              Alcotest.(check (list (pair string int)))
                (name "telemetry outcome counters incremental=checked") c_i c_c;
              check (name "graph naive=incremental") true
                (Digraph.equal g_n g_i);
              check (name "graph incremental=checked") true
                (Digraph.equal g_i g_c))
            [ 5; 23; 71 ])
        [ None; Some Oracle.Closure ])
    Policy.all_correct

(* ------------------------------------------------------------------ *)
(* Predeclared (C4) and multiwrite (C3 fallback + quick_reject check)  *)

let run_predeclared ?gc_index schedule =
  let t = Pd.create ~use_c4_deletion:true ?gc_index () in
  let outcomes = List.map (fun s -> outcome_name (Pd.step t s)) schedule in
  let drained = Pd.drain t in
  let st = Pd.stats t in
  ( outcomes,
    drained,
    (st.Si.committed_total, st.Si.aborted_total, st.Si.deleted_total),
    Gs.graph (Pd.graph_state t) )

let test_predeclared_backends_agree () =
  List.iter
    (fun seed ->
      let schedule = Gen.predeclared (profile ~n_entities:10 seed) in
      let o_n, dr_n, s_n, g_n = run_predeclared schedule in
      let o_i, dr_i, s_i, g_i =
        run_predeclared ~gc_index:Dindex.Incremental schedule
      in
      let o_c, dr_c, s_c, g_c =
        run_predeclared ~gc_index:Dindex.Checked schedule
      in
      let name what = Printf.sprintf "c4/seed %d: %s" seed what in
      Alcotest.(check (list string)) (name "outcomes naive=incremental") o_n o_i;
      Alcotest.(check (list string)) (name "outcomes incremental=checked") o_i o_c;
      Alcotest.(check int) (name "drained naive=incremental") dr_n dr_i;
      Alcotest.(check int) (name "drained incremental=checked") dr_i dr_c;
      Alcotest.(check (triple int int int)) (name "stats naive=incremental") s_n s_i;
      Alcotest.(check (triple int int int)) (name "stats incremental=checked") s_i s_c;
      check (name "graph naive=incremental") true (Digraph.equal g_n g_i);
      check (name "graph incremental=checked") true (Digraph.equal g_i g_c))
    [ 5; 23; 71; 9 ]

let run_multiwrite ?gc_index schedule =
  let t = Mw.create ~deletion:(Mw.C3_exact 8) ?gc_index () in
  let outcomes = List.map (fun s -> outcome_name (Mw.step t s)) schedule in
  let st = Mw.stats t in
  ( outcomes,
    (st.Si.committed_total, st.Si.aborted_total, st.Si.deleted_total),
    Gs.graph (Mw.graph_state t) )

let test_multiwrite_backends_agree () =
  List.iter
    (fun seed ->
      let schedule = Gen.multiwrite (profile ~n_txns:60 ~n_entities:12 seed) in
      let o_n, s_n, g_n = run_multiwrite schedule in
      let o_i, s_i, g_i = run_multiwrite ~gc_index:Dindex.Incremental schedule in
      (* Checked additionally cross-checks quick_reject against the
         exact enumeration on every candidate. *)
      let o_c, s_c, g_c = run_multiwrite ~gc_index:Dindex.Checked schedule in
      let name what = Printf.sprintf "c3/seed %d: %s" seed what in
      Alcotest.(check (list string)) (name "outcomes naive=incremental") o_n o_i;
      Alcotest.(check (list string)) (name "outcomes incremental=checked") o_i o_c;
      Alcotest.(check (triple int int int)) (name "stats naive=incremental") s_n s_i;
      Alcotest.(check (triple int int int)) (name "stats incremental=checked") s_i s_c;
      check (name "graph naive=incremental") true (Digraph.equal g_n g_i);
      check (name "graph incremental=checked") true (Digraph.equal g_i g_c))
    [ 9; 31; 77 ]

(* ------------------------------------------------------------------ *)
(* The index actually indexes: most refreshes are incremental, and the
   verdicts re-checked are a strict subset of what the naive path would
   re-derive (every completed transaction, every GC round).             *)

let test_index_stats_show_incrementality () =
  let schedule = Gen.basic (profile ~n_txns:200 ~n_entities:48 42) in
  let gs = Gs.create () in
  let idx = Dindex.attach Dindex.Incremental gs in
  let naive_work = ref 0 in
  List.iter
    (fun s ->
      ignore (Rules.apply gs s);
      naive_work := !naive_work + Intset.cardinal (Gs.completed_txns gs);
      ignore (Policy.run ~index:idx Policy.Greedy_c1 gs))
    schedule;
  let stat k = List.assoc k (Dindex.stats idx) in
  check "refreshes happened" true (stat "refreshes" > 0);
  check "at most the initial full rebuild" true (stat "full_rebuilds" <= 1);
  Alcotest.(check bool)
    (Printf.sprintf "rechecks (%d) < naive verdict re-derivations (%d)"
       (stat "rechecks") !naive_work)
    true
    (stat "rechecks" < !naive_work)

(* ------------------------------------------------------------------ *)
(* Engine differential sweep under the checked index                   *)

(* Same shape as test_engine.ml's sweep: 20 profiles x shards {1,2,4,8}
   x policies {Noncurrent, Greedy_c1, Exact_max} = 240 comparisons,
   every one with gc_index Checked at all GC sites. *)
let sweep_profiles =
  let mk ?(txns = 50) ?(entities = 24) ?(mpl = 5) ?(theta = 0.8)
      ?(cross = 0.1) ?(batch = 8) seed =
    (txns, entities, mpl, theta, cross, batch, seed)
  in
  [
    mk 101;
    mk ~theta:0.0 102;
    mk ~theta:1.2 ~entities:12 103;
    mk ~mpl:2 104;
    mk ~mpl:10 ~txns:70 105;
    mk ~batch:1 106;
    mk ~batch:64 107;
    mk ~cross:0.0 108;
    mk ~cross:0.6 109;
    mk ~cross:1.0 ~theta:1.0 110;
    mk ~entities:8 ~theta:1.1 ~mpl:6 111;
    mk ~entities:64 ~txns:80 112;
    mk ~txns:30 ~batch:7 113;
    mk ~txns:90 ~theta:0.99 ~cross:0.25 114;
    mk ~mpl:8 ~theta:0.9 ~batch:16 115;
    mk ~entities:16 ~cross:0.4 ~batch:3 116;
    mk ~theta:0.5 ~mpl:7 117;
    mk ~txns:60 ~entities:32 ~theta:1.05 118;
    mk ~mpl:4 ~cross:0.8 ~batch:32 119;
    mk ~txns:100 ~entities:40 ~theta:0.7 ~batch:12 120;
  ]

let workload ~txns ~entities ~mpl ~theta ~shards ~cross seed =
  Gen.basic
    {
      Gen.default with
      Gen.n_txns = txns;
      n_entities = entities;
      mpl;
      skew = Printf.sprintf "zipf:%g" theta;
      seed;
      shards;
      cross_shard = cross;
    }

let test_engine_differential_checked () =
  let runs = ref 0 in
  List.iter
    (fun (txns, entities, mpl, theta, cross, batch, seed) ->
      List.iter
        (fun shards ->
          let steps = workload ~txns ~entities ~mpl ~theta ~shards ~cross seed in
          List.iter
            (fun policy ->
              incr runs;
              let d =
                Eng.differential ~gc_index:Dindex.Checked ~shards ~batch
                  ~policy steps
              in
              if not (Eng.differential_ok d) then
                Alcotest.failf
                  "profile seed=%d shards=%d batch=%d policy=%s diverged:@\n%a"
                  seed shards batch (Policy.name policy) Eng.pp_differential d)
            [ Policy.Noncurrent; Policy.Greedy_c1; Policy.Exact_max ])
        [ 1; 2; 4; 8 ])
    sweep_profiles;
  check "sweep covers >= 240 runs" true (!runs >= 240)

let () =
  let qcheck =
    List.map QCheck_alcotest.to_alcotest
      [ holds_fast_is_holds; eligible_agrees; index_tracks_reference ]
  in
  Alcotest.run "gc_index"
    [
      ("qcheck", qcheck);
      ( "models",
        [
          Alcotest.test_case "basic: naive = incremental = checked" `Slow
            test_basic_backends_agree;
          Alcotest.test_case "predeclared: naive = incremental = checked"
            `Quick test_predeclared_backends_agree;
          Alcotest.test_case "multiwrite: naive = incremental = checked"
            `Quick test_multiwrite_backends_agree;
          Alcotest.test_case "index stats show incrementality" `Quick
            test_index_stats_show_incrementality;
        ] );
      ( "engine",
        [
          Alcotest.test_case "240-run differential under checked index" `Slow
            test_engine_differential_checked;
        ] );
    ]
