module B = Dct_graph.Bitset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_basic () =
  let b = B.create () in
  check "empty" true (B.is_empty b);
  B.add b 3;
  B.add b 200;
  B.add b 3;
  check "mem 3" true (B.mem b 3);
  check "mem 200" true (B.mem b 200);
  check "not mem 4" false (B.mem b 4);
  check "not mem negative" false (B.mem b (-1));
  check_int "cardinal" 2 (B.cardinal b);
  B.remove b 3;
  check "removed" false (B.mem b 3);
  check_int "cardinal after remove" 1 (B.cardinal b);
  B.remove b 100000 (* out of range: no-op *)

let test_elements_sorted () =
  let b = B.create () in
  List.iter (B.add b) [ 500; 1; 63; 64; 65; 0 ];
  Alcotest.(check (list int)) "sorted" [ 0; 1; 63; 64; 65; 500 ] (B.elements b)

let test_union_into () =
  let a = B.create () and b = B.create () in
  List.iter (B.add a) [ 1; 2 ];
  List.iter (B.add b) [ 2; 300 ];
  check "changed" true (B.union_into ~into:a b);
  Alcotest.(check (list int)) "union" [ 1; 2; 300 ] (B.elements a);
  check "idempotent" false (B.union_into ~into:a b)

let test_inter_card () =
  let a = B.create () and b = B.create () in
  List.iter (B.add a) [ 1; 2; 64; 999 ];
  List.iter (B.add b) [ 2; 64; 1000 ];
  check_int "intersection" 2 (B.inter_card a b)

let test_copy_independent () =
  let a = B.create () in
  B.add a 7;
  let b = B.copy a in
  B.add b 8;
  check "original unchanged" false (B.mem a 8);
  check "copy has both" true (B.mem b 7 && B.mem b 8)

let test_clear () =
  let a = B.create () in
  List.iter (B.add a) [ 5; 50; 500 ];
  B.clear a;
  check "cleared" true (B.is_empty a)

(* The unified negative-index contract: both mutations raise, the
   membership query stays total.  The seed raised from [add] only and
   silently ignored negative [remove]; this pins the symmetry. *)
let test_negative_contract () =
  let a = B.create () in
  Alcotest.check_raises "negative add"
    (Invalid_argument "Bitset.add: negative index -1") (fun () -> B.add a (-1));
  Alcotest.check_raises "negative remove"
    (Invalid_argument "Bitset.remove: negative index -7") (fun () ->
      B.remove a (-7));
  check "mem total on negatives" false (B.mem a (-1));
  check "untouched by failed mutations" true (B.is_empty a)

let test_fold () =
  let a = B.create () in
  List.iter (B.add a) [ 1; 2; 3 ];
  check_int "fold sum" 6 (B.fold ( + ) a 0)

let () =
  Alcotest.run "bitset"
    [
      ( "bitset",
        [
          Alcotest.test_case "add/mem/remove/cardinal" `Quick test_basic;
          Alcotest.test_case "elements sorted" `Quick test_elements_sorted;
          Alcotest.test_case "union_into" `Quick test_union_into;
          Alcotest.test_case "inter_card" `Quick test_inter_card;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "negative index rejected" `Quick
            test_negative_contract;
          Alcotest.test_case "fold" `Quick test_fold;
        ] );
    ]
