(* The differential harness for the cycle-detection backends.

   Random insert/delete/query traces (and traces induced by replaying
   generated workloads) are applied to every backend plus a reference
   Digraph; the backends must agree with each other and with ground
   truth on acyclicity answers, the reachability queries C1/C2 rely on,
   and reported cycle witnesses must be real cycles.  The adversarial
   corpus under [corpus/adversarial/] is additionally pinned through
   the [dct lint] / [dct audit] binary. *)

module Q = QCheck
module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Traversal = Dct_graph.Traversal
module Oracle = Dct_graph.Cycle_oracle
module Gs = Dct_deletion.Graph_state
module Rules = Dct_deletion.Rules
module Policy = Dct_deletion.Policy
module Gen = Dct_workload.Generator
module Prng = Dct_workload.Prng

let check = Alcotest.(check bool)

(* --- random operation traces ------------------------------------- *)

type op =
  | Arc_attempt of int * int
  | Remove of [ `Bypass | `Exact ] * int
  | Query of int * int
  | Query_any of int * Intset.t

let trace_of_seed ?(n_nodes = 12) ?(n_ops = 80) seed =
  let rng = Prng.create ~seed in
  List.init n_ops (fun _ ->
      match Prng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 ->
          Arc_attempt (Prng.int rng n_nodes, Prng.int rng n_nodes)
      | 5 ->
          let mode = if Prng.int rng 2 = 0 then `Bypass else `Exact in
          Remove (mode, Prng.int rng n_nodes)
      | 6 | 7 -> Query (Prng.int rng n_nodes, Prng.int rng n_nodes)
      | _ ->
          let dsts =
            Intset.of_list
              (List.init (1 + Prng.int rng 3) (fun _ -> Prng.int rng n_nodes))
          in
          Query_any (Prng.int rng n_nodes, dsts))

(* Validate a reported witness against the reference graph: it must be
   a real path [dst ⇝ src], i.e. inserting src -> dst really closes a
   cycle through those very arcs. *)
let witness_ok reference ~src ~dst = function
  | [] -> false
  | [ v ] -> v = src && v = dst && Digraph.mem_node reference v
  | first :: _ as path ->
      first = dst
      && (let rec arcs = function
            | a :: (b :: _ as rest) ->
                Digraph.mem_arc reference ~src:a ~dst:b && arcs rest
            | [ last ] -> last = src
            | [] -> false
          in
          arcs path)

(* Apply one trace to a packed oracle of each backend and the reference
   graph, asserting agreement at every step.  Returns false (for qcheck)
   on the first divergence. *)
let run_differential trace =
  let o_c = Oracle.create Oracle.Closure in
  let o_t = Oracle.create Oracle.Topo in
  let reference = Digraph.create () in
  let ok = ref true in
  let expect what a b = if a <> b then (ignore what; ok := false) in
  let reference_remove mode v =
    if Digraph.mem_node reference v then begin
      (match mode with
      | `Exact -> ()
      | `Bypass ->
          let ps = Digraph.preds reference v
          and ss = Digraph.succs reference v in
          Intset.iter
            (fun p ->
              Intset.iter
                (fun s ->
                  if p <> s && p <> v && s <> v then
                    Digraph.add_arc reference ~src:p ~dst:s)
                ss)
            ps);
      Digraph.remove_node reference v
    end
  in
  List.iter
    (fun op ->
      if !ok then
        match op with
        | Arc_attempt (src, dst) ->
            (* Ensure both endpoints exist everywhere, as the schedulers
               do via begin_txn. *)
            Oracle.add_node o_c src;
            Oracle.add_node o_c dst;
            Oracle.add_node o_t src;
            Oracle.add_node o_t dst;
            Digraph.add_node reference src;
            Digraph.add_node reference dst;
            let truth =
              src = dst || Traversal.has_path reference ~src:dst ~dst:src
            in
            let wc_c = Oracle.would_cycle o_c ~src ~dst in
            let wc_t = Oracle.would_cycle o_t ~src ~dst in
            expect "would_cycle closure vs truth" wc_c truth;
            expect "would_cycle topo vs truth" wc_t truth;
            if truth then begin
              (* Both must produce a genuine witness cycle. *)
              (match Oracle.cycle_witness o_c ~src ~dst with
              | Some w -> expect "closure witness real" true (witness_ok reference ~src ~dst w)
              | None -> ok := false);
              match Oracle.cycle_witness o_t ~src ~dst with
              | Some w -> expect "topo witness real" true (witness_ok reference ~src ~dst w)
              | None -> ok := false
            end
            else begin
              expect "closure no witness" None (Oracle.cycle_witness o_c ~src ~dst);
              expect "topo no witness" None (Oracle.cycle_witness o_t ~src ~dst);
              Oracle.add_arc o_c ~src ~dst;
              Oracle.add_arc o_t ~src ~dst;
              Digraph.add_arc reference ~src ~dst
            end
        | Remove (mode, v) ->
            Oracle.remove_node o_c mode v;
            Oracle.remove_node o_t mode v;
            reference_remove mode v
        | Query (src, dst) ->
            let truth =
              Digraph.mem_node reference src
              && Traversal.has_path reference ~src ~dst
            in
            expect "reaches closure" (Oracle.reaches o_c ~src ~dst) truth;
            expect "reaches topo" (Oracle.reaches o_t ~src ~dst) truth
        | Query_any (src, dsts) ->
            let truth =
              Digraph.mem_node reference src
              && Intset.exists
                   (fun d -> Traversal.has_path reference ~src ~dst:d)
                   dsts
            in
            expect "reaches_any closure" (Oracle.reaches_any o_c ~src ~dsts) truth;
            expect "reaches_any topo" (Oracle.reaches_any o_t ~src ~dsts) truth)
    trace;
  (* Structural agreement at the end of the trace. *)
  if !ok then begin
    expect "closure check_against" true (Oracle.check_against o_c reference);
    expect "topo check_against" true (Oracle.check_against o_t reference);
    (* All-pairs reaches agreement — the exhaustive form of the probes
       C1/C2 issue. *)
    let ns = Digraph.nodes reference in
    Intset.iter
      (fun v ->
        Intset.iter
          (fun w ->
            expect "all-pairs"
              (Oracle.reaches o_c ~src:v ~dst:w)
              (Oracle.reaches o_t ~src:v ~dst:w))
          ns)
      ns
  end;
  !ok

let seed_arb = Q.make ~print:string_of_int Q.Gen.(1 -- 100_000)

let qcheck_random_traces =
  Q.Test.make ~name:"random traces: backends = ground truth" ~count:150
    seed_arb
    (fun seed -> run_differential (trace_of_seed seed))

let qcheck_dense_traces =
  Q.Test.make ~name:"dense traces: backends = ground truth" ~count:60 seed_arb
    (fun seed -> run_differential (trace_of_seed ~n_nodes:6 ~n_ops:120 seed))

(* --- traces replayed from generated workloads --------------------- *)

(* A Checked oracle raises Disagreement the moment the two backends
   diverge on any query or structural answer, so a clean replay IS the
   differential assertion. *)
let replay_checked ~policy schedule =
  let gs = Gs.create ~oracle:Oracle.Checked () in
  List.iter
    (fun s ->
      match Rules.apply gs s with
      | Rules.Ignored | Rules.Rejected | Rules.Accepted ->
          ignore (Policy.run policy gs))
    schedule;
  (match Gs.oracle gs with
  | Some o -> check "oracle survives" true (Oracle.check_against o (Gs.graph gs))
  | None -> Alcotest.fail "checked oracle missing")

let test_workload_replay () =
  List.iter
    (fun seed ->
      let profile =
        { Gen.default with Gen.n_txns = 40; n_entities = 12; mpl = 6; seed }
      in
      List.iter
        (fun policy -> replay_checked ~policy (Gen.basic profile))
        [ Policy.No_deletion; Policy.Greedy_c1; Policy.Noncurrent ])
    [ 3; 17; 92 ]

let test_long_reader_replay () =
  (* Long readers pin large completed regions — deletions then carve
     bypass fans through the graph. *)
  let profile =
    {
      Gen.default with
      Gen.n_txns = 60;
      n_entities = 10;
      mpl = 8;
      long_readers = 2;
      long_reader_step = 0.2;
      seed = 29;
    }
  in
  replay_checked ~policy:Policy.Greedy_c1 (Gen.basic profile)

(* --- the adversarial corpus, through the library ------------------ *)

let corpus f = Filename.concat (Filename.concat "corpus" "adversarial") f

let parse_corpus_env f =
  let env = Dct_txn.Parse.create_env () in
  match Dct_txn.Parse.parse_file env (corpus f) with
  | Ok s -> (env, s)
  | Error e -> Alcotest.failf "parse %s: %s" f e

let parse_corpus f = snd (parse_corpus_env f)

let txn_id env name =
  match Dct_txn.Symtab.find env.Dct_txn.Parse.txns name with
  | Some id -> id
  | None -> Alcotest.failf "unknown transaction %s" name

let test_corpus_checked_replay () =
  List.iter
    (fun f ->
      let schedule = parse_corpus f in
      List.iter
        (fun policy -> replay_checked ~policy schedule)
        [ Policy.No_deletion; Policy.Greedy_c1 ])
    [
      "long_chain_backwards.sched";
      "near_cycle_deletion.sched";
      "delete_then_reuse.sched";
    ]

let test_chain_forces_reorders () =
  (* Every conflict arc of the chain schedule is a backward insertion
     for the incremental order: ranks follow begin order T1..T20, while
     all arcs run T(k+1) -> Tk. *)
  let env, schedule = parse_corpus_env "long_chain_backwards.sched" in
  let gs = Gs.create ~oracle:Oracle.Topo () in
  let outcomes = Rules.apply_all gs schedule in
  check "all accepted" true
    (List.for_all (fun o -> o = Rules.Accepted) outcomes);
  (* T20 ⇝ T1 through the whole chain; never the other way. *)
  let t1 = txn_id env "T1" and t20 = txn_id env "T20" in
  check "T20 reaches T1" true (Gs.reaches gs ~src:t20 ~dst:t1);
  check "T1 does not reach T20" false (Gs.reaches gs ~src:t1 ~dst:t20)

let test_near_cycle_rejects_then_deletes () =
  let env, schedule = parse_corpus_env "near_cycle_deletion.sched" in
  let gs = Gs.create ~oracle:Oracle.Checked () in
  let rejections = ref 0 in
  List.iter
    (fun s ->
      (match Rules.apply gs s with
      | Rules.Rejected -> incr rejections
      | Rules.Accepted | Rules.Ignored -> ());
      ignore (Policy.run Policy.Greedy_c1 gs))
    schedule;
  Alcotest.(check int) "exactly T1's final write rejected" 1 !rejections;
  (* The greedy policy purged the conflict sources: T3 ends with no
     incident arcs. *)
  check "T3 unconstrained" true
    (Intset.is_empty (Digraph.preds (Gs.graph gs) (txn_id env "T3")))

(* --- the adversarial corpus, through the binary ------------------- *)

let dct_exe = Filename.concat (Filename.concat ".." "bin") "dct.exe"

let run_cmd args =
  let out = Filename.temp_file "dct_oracle" ".out" in
  let code = Sys.command (Filename.quote_command dct_exe ~stdout:out args) in
  let ic = open_in out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let pins =
  (* (file, audited-steps, greedy deletion events, greedy deleted total) *)
  [
    ("long_chain_backwards.sched", 59, 20, 20);
    ("near_cycle_deletion.sched", 9, 2, 2);
    ("delete_then_reuse.sched", 13, 4, 4);
  ]

let test_corpus_lint_pinned () =
  if not (Sys.file_exists dct_exe) then
    Alcotest.skip ()
  else
    List.iter
      (fun (f, _, _, _) ->
        let code, text = run_cmd [ "lint"; "--strict"; "--machine"; corpus f ] in
        Alcotest.(check int) (f ^ " lints clean") 0 code;
        Alcotest.(check string) (f ^ " no findings") "" text)
      pins

let test_corpus_audit_pinned () =
  if not (Sys.file_exists dct_exe) then
    Alcotest.skip ()
  else
    List.iter
      (fun (f, steps, events, deleted) ->
        let code, text = run_cmd [ "audit"; "-p"; "none"; "-s"; corpus f ] in
        Alcotest.(check int) (f ^ " audit none exit") 0 code;
        Alcotest.(check string)
          (f ^ " audit none output")
          (Printf.sprintf
             "policy: none\n\
              audited %d steps, 0 deletion events (0 transactions deleted)\n\
              all decisions justified; accepted schedule is CSR\n"
             steps)
          text;
        let code, text = run_cmd [ "audit"; "-p"; "greedy"; "-s"; corpus f ] in
        Alcotest.(check int) (f ^ " audit greedy exit") 0 code;
        Alcotest.(check string)
          (f ^ " audit greedy output")
          (Printf.sprintf
             "policy: greedy-c1\n\
              audited %d steps, %d deletion events (%d transactions deleted)\n\
              all decisions justified; accepted schedule is CSR\n"
             steps events deleted)
          text)
      pins

let () =
  Alcotest.run "oracle_diff"
    [
      ( "random",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_random_traces; qcheck_dense_traces ] );
      ( "workload",
        [
          Alcotest.test_case "generated workloads under checked oracle" `Slow
            test_workload_replay;
          Alcotest.test_case "long readers under checked oracle" `Quick
            test_long_reader_replay;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "checked replay" `Quick test_corpus_checked_replay;
          Alcotest.test_case "backward chain reorders" `Quick
            test_chain_forces_reorders;
          Alcotest.test_case "near-cycle rejected then deleted" `Quick
            test_near_cycle_rejects_then_deletes;
          Alcotest.test_case "lint pinned" `Quick test_corpus_lint_pinned;
          Alcotest.test_case "audit pinned" `Quick test_corpus_audit_pinned;
        ] );
    ]
