module Driver = Dct_sim.Driver
module Metrics = Dct_sim.Metrics
module Report = Dct_sim.Report
module Cs = Dct_sched.Conflict_scheduler
module L2pl = Dct_sched.Lock_2pl
module Policy = Dct_deletion.Policy
module Gen = Dct_workload.Generator

let check = Alcotest.(check bool)

let schedule = Gen.basic { Gen.default with Gen.n_txns = 80; seed = 17 }

let test_driver_counts () =
  let r = Driver.run (Cs.handle ()) schedule in
  Alcotest.(check int) "all steps fed" (List.length schedule) r.Driver.steps;
  Alcotest.(check int) "outcome sum"
    r.Driver.steps
    (r.Driver.accepted + r.Driver.rejected + r.Driver.delayed + r.Driver.ignored);
  check "samples collected" true (r.Driver.samples <> []);
  check "peak >= mean" true
    (float_of_int r.Driver.peak_resident >= r.Driver.mean_resident)

let test_driver_comparative () =
  let results =
    Driver.run_fresh
      [
        (fun () -> Cs.handle ~policy:Policy.No_deletion ());
        (fun () -> Cs.handle ~policy:Policy.Greedy_c1 ());
        (fun () -> L2pl.handle ());
      ]
      schedule
  in
  match results with
  | [ none; greedy; lock ] ->
      check "greedy residency below none" true
        (greedy.Driver.peak_resident <= none.Driver.peak_resident);
      check "2pl residency lowest" true
        (lock.Driver.peak_resident <= greedy.Driver.peak_resident);
      check "names distinct" true (none.Driver.name <> lock.Driver.name)
  | _ -> Alcotest.fail "expected three results"

let test_sampling_cadence () =
  let r = Driver.run ~sample_every:10 (Cs.handle ()) schedule in
  List.iter
    (fun s -> check "multiple of 10" true (s.Driver.at_step mod 10 = 0))
    r.Driver.samples

let test_metrics () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Metrics.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Metrics.mean []);
  Alcotest.(check (float 1e-9)) "p50" 2.0
    (Metrics.percentile 50.0 [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "p100" 3.0
    (Metrics.percentile 100.0 [ 3.0; 1.0; 2.0 ]);
  (* Boundary conventions pinned by the mli: p=0 is the minimum, out-of-
     range p clamps, a singleton answers the sample for every p. *)
  Alcotest.(check (float 1e-9)) "p0 is min" 1.0
    (Metrics.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "p>100 clamps" 3.0
    (Metrics.percentile 250.0 [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "p<0 clamps" 1.0
    (Metrics.percentile (-5.0) [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (Metrics.percentile 37.0 [ 7.0 ]);
  Alcotest.(check int) "max" 9 (Metrics.max_int_list [ 4; 9; 1 ]);
  Alcotest.(check (float 1e-9)) "ratio" 2.5 (Metrics.ratio 5 2);
  Alcotest.(check (float 1e-9)) "ratio by zero" 0.0 (Metrics.ratio 5 0);
  let h = Metrics.histogram ~buckets:2 [ 0.0; 0.1; 0.9; 1.0 ] in
  Alcotest.(check int) "buckets" 2 (Array.length h);
  Alcotest.(check int) "total count" 4
    (Array.fold_left (fun acc (_, c) -> acc + c) 0 h);
  (* A constant sample has zero range: one degenerate bucket holding
     every observation, not [buckets] fabricated width-1 bins. *)
  let hc = Metrics.histogram ~buckets:4 [ 5.0; 5.0; 5.0 ] in
  Alcotest.(check int) "constant sample: one bucket" 1 (Array.length hc);
  Alcotest.(check (float 1e-9)) "constant sample: bound" 5.0 (fst hc.(0));
  Alcotest.(check int) "constant sample: count" 3 (snd hc.(0))

let test_report_table () =
  let s =
    Report.render_table ~headers:[ "name"; "value" ]
      ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s |> List.filter (( <> ) "") in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  check "header present" true
    (String.length (List.hd lines) >= String.length "name  value");
  (* Alignment: every data line at least as wide as the widest cell. *)
  check "ragged rows padded" true
    (String.length (List.nth lines 2) >= 5)

let () =
  Alcotest.run "sim"
    [
      ( "driver",
        [
          Alcotest.test_case "step accounting" `Quick test_driver_counts;
          Alcotest.test_case "comparative run" `Quick test_driver_comparative;
          Alcotest.test_case "sampling cadence" `Quick test_sampling_cadence;
        ] );
      ( "metrics",
        [ Alcotest.test_case "summary stats" `Quick test_metrics ] );
      ( "report",
        [ Alcotest.test_case "table rendering" `Quick test_report_table ] );
    ]
