(* Dct_analysis: the graph-state invariant checker and the decision
   auditor.  The invariant tests deliberately corrupt a well-formed
   state through the public Graph_state API and assert the named
   violation surfaces; the audit tests flag the paper's unsafe
   commit-time policy and pass every correct one. *)

module Intset = Dct_graph.Intset
module Gs = Dct_deletion.Graph_state
module Rules = Dct_deletion.Rules
module Policy = Dct_deletion.Policy
module Reduced = Dct_deletion.Reduced_graph
module Gallery = Dct_deletion.Paper_gallery
module Step = Dct_txn.Step
module Gen = Dct_workload.Generator
module Cs = Dct_sched.Conflict_scheduler
module Invariant = Dct_analysis.Invariant
module Audit = Dct_analysis.Audit

let check = Alcotest.(check bool)
let names vs = List.map (fun v -> v.Invariant.name) vs

let has_violation n gs =
  let vs = names (Invariant.check gs) in
  List.iter
    (fun v ->
      check (v ^ " is a declared name") true
        (List.mem v Invariant.violation_names))
    vs;
  List.mem n vs

(* --- Invariant --- *)

let test_clean_states () =
  check "fresh state" true (Invariant.check (Gs.create ()) = []);
  let e = Gallery.example1 () in
  check "example 1" true (Invariant.check e.Gallery.gs1 = []);
  let e2 = Gallery.example2 () in
  check "example 2" true (Invariant.check e2.Gallery.gs2 = []);
  (* with the closure engine, and after a genuine reduction *)
  let gs = Gs.create ~with_closure:true () in
  ignore (Rules.apply_all gs (Gallery.example1_schedule ()));
  check "closure state" true (Invariant.check gs = []);
  Reduced.delete gs 2;
  check "after deletion" true (Invariant.check gs = [])

let test_cyclic_graph () =
  let e = Gallery.example1 () in
  (* arcs are T1->T2->T3 and T1->T3; closing the loop corrupts *)
  Gs.add_arc e.Gallery.gs1 ~src:e.t3 ~dst:e.t1;
  check "cyclic-graph" true (has_violation "cyclic-graph" e.gs1)

let test_node_without_record () =
  let e = Gallery.example1 () in
  Gs.add_arc e.Gallery.gs1 ~src:e.t1 ~dst:4242;
  check "node-without-record" true (has_violation "node-without-record" e.gs1)

let test_deleted_resurrected () =
  let e = Gallery.example1 () in
  Reduced.delete e.Gallery.gs1 e.t2;
  check "clean after delete" true (Invariant.check e.gs1 = []);
  Gs.begin_txn e.gs1 e.t2;
  check "deleted-resurrected" true (has_violation "deleted-resurrected" e.gs1)

let test_aborted_resurrected () =
  let gs = Gs.create () in
  Gs.begin_txn gs 1;
  Gs.abort_txn gs 1;
  check "clean after abort" true (Invariant.check gs = []);
  Gs.begin_txn gs 1;
  check "aborted-resurrected" true (has_violation "aborted-resurrected" gs)

let test_checked_apply_raises () =
  let e = Gallery.example1 () in
  Gs.add_arc e.Gallery.gs1 ~src:e.t3 ~dst:e.t1;
  check "checked_apply raises" true
    (match Invariant.checked_apply e.gs1 (Step.Begin 99) with
    | _ -> false
    | exception Invariant.Violation { violations; _ } ->
        List.mem "cyclic-graph" (names violations));
  (* on a healthy state it is just Rules.apply *)
  let gs = Gs.create () in
  check "accepts begin" true (Invariant.checked_apply gs (Step.Begin 1) = Rules.Accepted);
  check "policy run checked" true
    (Intset.is_empty (Invariant.checked_policy_run Policy.Greedy_c1 gs))

let test_selfcheck_handle () =
  List.iter
    (fun with_closure ->
      let schedule =
        Gen.basic { Gen.default with Gen.n_txns = 30; n_entities = 5; mpl = 4 }
      in
      let t = Cs.create ~policy:Policy.Greedy_c1 ~with_closure () in
      let handle =
        Invariant.selfcheck_handle
          ~gs:(fun () -> Cs.graph_state t)
          (Cs.handle_of t)
      in
      let seen = ref 0 in
      let result =
        Dct_sim.Driver.run ~observe:(fun n _ _ -> seen := n) handle schedule
      in
      check "selfcheck name" true
        (Filename.check_suffix result.Dct_sim.Driver.name "+selfcheck");
      Alcotest.(check int) "observe saw every step"
        result.Dct_sim.Driver.steps !seen)
    [ false; true ]

(* --- Audit --- *)

(* The paper's motivating failure (test_policy reuses the same
   schedule): commit-time deletion of T2 lets the scheduler accept the
   non-CSR schedule r1(x) r2(x) w2(x) w1(x). *)
let witness =
  [
    Step.Begin 1;
    Step.Read (1, 0);
    Step.Begin 2;
    Step.Read (2, 0);
    Step.Write (2, [ 0 ]);
    Step.Write (1, [ 0 ]);
  ]

let test_audit_flags_commit_time () =
  let report = Audit.audit_schedule ~policy:Policy.Unsafe_commit_time witness in
  check "not ok" false (Audit.ok report);
  check "deleted something" true (report.Audit.deleted_total >= 1);
  match report.Audit.finding with
  | Some (Audit.Unjustified_deletion { deleted; witnesses; _ }) ->
      check "T2 deleted" true (Intset.mem 2 deleted);
      check "witness triples" true (witnesses <> [])
  | f ->
      Alcotest.failf "expected Unjustified_deletion, got %a"
        (Format.pp_print_option (Audit.pp_finding ?txn_name:None ?entity_name:None))
        f

let test_audit_passes_correct_policies () =
  (* the witness schedule and Example 1 ... *)
  List.iter
    (fun policy ->
      List.iter
        (fun schedule ->
          let report = Audit.audit_schedule ~policy schedule in
          check (Policy.name policy ^ " clean") true (Audit.ok report))
        [ witness; Gallery.example1_schedule () ])
    Policy.all_correct;
  (* ... and random workloads under every correct policy *)
  List.iter
    (fun seed ->
      let schedule =
        Gen.basic
          { Gen.default with Gen.n_txns = 40; n_entities = 6; mpl = 5; seed }
      in
      List.iter
        (fun policy ->
          let report = Audit.audit_schedule ~policy schedule in
          check
            (Printf.sprintf "seed %d %s clean" seed (Policy.name policy))
            true (Audit.ok report);
          Alcotest.(check int)
            (Printf.sprintf "seed %d %s steps" seed (Policy.name policy))
            (List.length schedule) report.Audit.steps)
        Policy.all_correct)
    [ 1; 2; 3 ]

let test_audit_jointly_undeletable () =
  (* §4: T2 and T3 of Example 1 are each deletable but not jointly —
     a trace claiming the pair was deleted at once must be rejected. *)
  let schedule = Gallery.example1_schedule () in
  let e = Gallery.example1 () in
  let trace =
    Audit.record schedule
    @ [
        Audit.Deletion
          {
            index = List.length schedule - 1;
            deleted = Intset.of_list [ e.Gallery.t2; e.t3 ];
          };
      ]
  in
  match (Audit.audit trace).Audit.finding with
  | Some (Audit.Unjustified_deletion { deleted; _ }) ->
      Alcotest.(check (list int)) "the pair" [ e.t2; e.t3 ]
        (Intset.to_sorted_list deleted)
  | _ -> Alcotest.fail "expected Unjustified_deletion"

let test_audit_single_deletions_justified () =
  (* ... while deleting either one alone is fine, whichever it is. *)
  let schedule = Gallery.example1_schedule () in
  let e = Gallery.example1 () in
  List.iter
    (fun t ->
      let trace =
        Audit.record schedule
        @ [
            Audit.Deletion
              { index = List.length schedule - 1; deleted = Intset.singleton t };
          ]
      in
      check (Printf.sprintf "T%d alone ok" t) true (Audit.ok (Audit.audit trace)))
    [ e.Gallery.t2; e.t3 ]

let test_audit_illegal_deletion () =
  let trace =
    [
      Audit.Decision { index = 0; step = Step.Begin 1; decision = Audit.Accepted };
      Audit.Deletion { index = 0; deleted = Intset.singleton 1 };
    ]
  in
  match (Audit.audit trace).Audit.finding with
  | Some (Audit.Illegal_deletion { txn; _ }) ->
      Alcotest.(check int) "T1 flagged" 1 txn
  | _ -> Alcotest.fail "expected Illegal_deletion"

let test_audit_decision_mismatch () =
  let trace =
    [ Audit.Decision { index = 0; step = Step.Begin 1; decision = Audit.Rejected } ]
  in
  match (Audit.audit trace).Audit.finding with
  | Some (Audit.Decision_mismatch { recorded; replayed; _ }) ->
      check "recorded" true (recorded = Audit.Rejected);
      check "replayed" true (replayed = Audit.Accepted)
  | _ -> Alcotest.fail "expected Decision_mismatch"

let test_audit_malformed_step () =
  let trace =
    [
      Audit.Decision
        { index = 0; step = Step.Read (1, 0); decision = Audit.Accepted };
    ]
  in
  match (Audit.audit trace).Audit.finding with
  | Some (Audit.Malformed_step { error; _ }) ->
      check "mentions unknown txn" true (String.length error > 0)
  | _ -> Alcotest.fail "expected Malformed_step"

let test_csr_via_closure () =
  check "example 1 is CSR" true
    (Intset.is_empty (Audit.csr_via_closure (Gallery.example1_schedule ())));
  (* the witness schedule, taken as accepted in full, is not *)
  Alcotest.(check (list int)) "witness cycle" [ 1; 2 ]
    (Intset.to_sorted_list (Audit.csr_via_closure witness))

let test_audit_with_safety_depth () =
  (* the bounded ground-truth oracle agrees with the conditions here *)
  let report =
    Audit.audit_schedule ~safety_depth:2 ~policy:Policy.Noncurrent witness
  in
  check "noncurrent ok under oracle" true (Audit.ok report);
  let bad =
    Audit.audit_schedule ~safety_depth:2 ~policy:Policy.Unsafe_commit_time
      witness
  in
  check "commit-time still flagged" false (Audit.ok bad)

let () =
  Alcotest.run "analysis"
    [
      ( "invariant",
        [
          Alcotest.test_case "clean states" `Quick test_clean_states;
          Alcotest.test_case "cyclic graph" `Quick test_cyclic_graph;
          Alcotest.test_case "node without record" `Quick
            test_node_without_record;
          Alcotest.test_case "deleted resurrected" `Quick
            test_deleted_resurrected;
          Alcotest.test_case "aborted resurrected" `Quick
            test_aborted_resurrected;
          Alcotest.test_case "checked apply" `Quick test_checked_apply_raises;
          Alcotest.test_case "selfcheck handle" `Quick test_selfcheck_handle;
        ] );
      ( "audit",
        [
          Alcotest.test_case "flags commit-time deletion" `Quick
            test_audit_flags_commit_time;
          Alcotest.test_case "passes correct policies" `Slow
            test_audit_passes_correct_policies;
          Alcotest.test_case "jointly undeletable pair" `Quick
            test_audit_jointly_undeletable;
          Alcotest.test_case "single deletions justified" `Quick
            test_audit_single_deletions_justified;
          Alcotest.test_case "illegal deletion" `Quick test_audit_illegal_deletion;
          Alcotest.test_case "decision mismatch" `Quick
            test_audit_decision_mismatch;
          Alcotest.test_case "malformed step" `Quick test_audit_malformed_step;
          Alcotest.test_case "CSR via closure" `Quick test_csr_via_closure;
          Alcotest.test_case "bounded safety oracle" `Quick
            test_audit_with_safety_depth;
        ] );
    ]
