(* The parallel engine's contracts:

   - DIFFERENTIAL MATRIX (the tentpole guarantee, extended to domains):
     seed x shard-count x batch-size x policy — 240 runs through the
     seeded-interleaving replay executor — asserting byte-identical
     decision traces, deletion rounds, final stores and per-shard state
     against both the single-node SGT scheduler and the sequential
     engine.  A smaller matrix runs through real Domain.spawn appliers;
     the large real-domain matrix skips (and says so) on single-core
     runners, where Replay mode carries the guarantee.

   - REPLAY DETERMINISM: every interleaving seed produces identical
     results — the property that makes parallel runs replayable.

   - MPSC ADMISSION LINEARIZABILITY (QCheck): concurrent producer
     domains with random batch boundaries; the drained order is an
     interleaving preserving each producer's submission order, and a
     post_batch burst is never interleaved.

   - MUTATION CHECKS: a dropped broadcast-GC message and a reordered
     cross-shard batch (test-only Coordinator fault hooks) must each
     make the differential fail — pinned here as expected-failure
     cases, or the suite is not sensitive to the protocol.

   - LOCKED SINK: concurrent emitters through Sink.locked can never
     interleave JSONL mid-record (the --trace under --domains fix),
     plus Metrics.merge arithmetic. *)

module Par = Dct_engine.Parallel
module Eng = Dct_engine.Engine
module Admission = Dct_engine.Admission
module Mailbox = Dct_engine.Mailbox
module Shard = Dct_engine.Shard
module Policy = Dct_deletion.Policy
module Step = Dct_txn.Step
module Gen = Dct_workload.Generator
module Sink = Dct_telemetry.Sink
module Event = Dct_telemetry.Event
module Metrics = Dct_telemetry.Metrics
module Store = Dct_kv.Store
module Intset = Dct_graph.Intset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let workload ?(txns = 60) ?(entities = 24) ?(mpl = 6) ?(theta = 0.8)
    ?(shards = 1) ?(cross = 0.1) seed =
  Gen.basic
    {
      Gen.default with
      Gen.n_txns = txns;
      n_entities = entities;
      mpl;
      skew = (if theta <= 0.0 then "uniform" else Printf.sprintf "zipf:%.2f" theta);
      shards;
      cross_shard = cross;
      seed;
    }

(* --- the replay differential matrix: >= 200 parallel runs --- *)

let profiles =
  (* (txns, entities, mpl, theta, cross) *)
  [
    (40, 16, 4, 0.0, 0.1);
    (60, 24, 6, 0.5, 0.1);
    (60, 24, 6, 0.9, 0.3);
    (60, 32, 8, 0.99, 0.1);
    (80, 16, 8, 0.8, 0.5);
    (80, 48, 4, 0.6, 0.2);
    (100, 24, 10, 0.9, 0.1);
    (100, 64, 6, 0.7, 0.4);
    (120, 32, 8, 0.95, 0.2);
    (120, 24, 12, 0.5, 0.3);
  ]

let run_matrix ~mode_of ~shard_counts ~batches ~policies ~label =
  let runs = ref 0 in
  let failures = ref [] in
  List.iteri
    (fun i (txns, entities, mpl, theta, cross) ->
      List.iter
        (fun shards ->
          List.iter
            (fun batch ->
              List.iter
                (fun policy ->
                  incr runs;
                  let seed = 1000 + (i * 7) in
                  let steps =
                    workload ~txns ~entities ~mpl ~theta ~shards ~cross seed
                  in
                  let d =
                    Par.differential ~mode:(mode_of !runs) ~shards ~batch
                      ~policy steps
                  in
                  if not (Par.differential_ok d) then
                    failures :=
                      Format.asprintf
                        "%s profile %d shards %d batch %d %s:@\n%a" label i
                        shards batch (Policy.name policy) Par.pp_differential
                        d
                      :: !failures)
                policies)
            batches)
        shard_counts)
    profiles;
  (!runs, List.rev !failures)

let test_replay_matrix () =
  let runs, failures =
    run_matrix
      ~mode_of:(fun i -> Par.Replay (i * 31))
      ~shard_counts:[ 1; 2; 4; 8 ]
      ~batches:[ 4; 16 ]
      ~policies:[ Policy.Noncurrent; Policy.Greedy_c1; Policy.Exact_max ]
      ~label:"replay"
  in
  check ("at least 200 runs, got " ^ string_of_int runs) true (runs >= 200);
  match failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%d of %d replay runs diverged; first:@\n%s"
        (List.length failures) runs f

(* A small real-domain sanity matrix that runs everywhere: domains are
   OS threads even on one core, so the protocol (mailboxes, barriers,
   joins) is exercised; only the speedup needs real cores. *)
let test_domains_sanity () =
  let runs, failures =
    run_matrix
      ~mode_of:(fun _ -> Par.Domains)
      ~shard_counts:[ 2; 4 ] ~batches:[ 8 ]
      ~policies:[ Policy.Greedy_c1 ] ~label:"domains"
  in
  check_int "20 domain runs" 20 runs;
  match failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%d of %d domain runs diverged; first:@\n%s"
        (List.length failures) runs f

let test_domains_matrix () =
  if Par.available_domains () = 1 then begin
    print_endline
      "  [skip] single-core runner: the full real-domain matrix needs \
       multiple cores; Replay mode carries the differential guarantee \
       here (the domains sanity matrix above still exercised \
       Domain.spawn).";
    Alcotest.skip ()
  end
  else begin
    let runs, failures =
      run_matrix
        ~mode_of:(fun _ -> Par.Domains)
        ~shard_counts:[ 1; 2; 4; 8 ]
        ~batches:[ 4; 16 ]
        ~policies:[ Policy.Noncurrent; Policy.Greedy_c1; Policy.Exact_max ]
        ~label:"domains"
    in
    check ("at least 200 domain runs, got " ^ string_of_int runs) true
      (runs >= 200);
    match failures with
    | [] -> ()
    | f :: _ ->
        Alcotest.failf "%d of %d domain runs diverged; first:@\n%s"
          (List.length failures) runs f
  end

(* --- replay determinism: the interleaving seed is unobservable --- *)

let snapshot_of_report (r : Par.report) =
  let shard_snap sh =
    let stats = Shard.stats sh in
    let store =
      Intset.to_sorted_list (Store.entities (Shard.store sh))
      |> List.map (fun e -> (e, Store.peek (Shard.store sh) ~entity:e))
    in
    (stats, store)
  in
  ( r.Par.base.Eng.steps,
    r.Par.base.Eng.accepted,
    r.Par.base.Eng.rejected,
    r.Par.base.Eng.committed,
    r.Par.base.Eng.aborted,
    r.Par.barriers,
    Array.to_list (Array.map shard_snap r.Par.final_shards) )

let test_replay_seed_invariance () =
  let steps = workload ~txns:100 ~entities:32 ~mpl:8 ~theta:0.9 ~shards:4
      ~cross:0.4 77 in
  let run_with seed =
    let cfg = Eng.config ~policy:Policy.Greedy_c1 ~shards:4 ~batch:8 () in
    snapshot_of_report (Par.run ~mode:(Par.Replay seed) cfg steps)
  in
  let reference = run_with 0 in
  List.iter
    (fun seed ->
      check
        (Printf.sprintf "seed %d produces identical results" seed)
        true
        (run_with seed = reference))
    [ 1; 7; 42; 1234; 99991 ]

(* And the Domains schedule is equally unobservable: a real-domain run
   lands on the same snapshot as every replay. *)
let test_domains_match_replay () =
  let steps = workload ~txns:80 ~entities:24 ~mpl:8 ~theta:0.9 ~shards:3
      ~cross:0.3 31 in
  let cfg () = Eng.config ~policy:Policy.Greedy_c1 ~shards:3 ~batch:8 () in
  let via_domains =
    snapshot_of_report (Par.run ~mode:Par.Domains (cfg ()) steps)
  in
  let via_replay =
    snapshot_of_report (Par.run ~mode:(Par.Replay 5) (cfg ()) steps)
  in
  check "domains == replay" true (via_domains = via_replay)

(* --- QCheck: MPSC admission linearizability under producer domains --- *)

(* Each producer posts its bursts (size 1 via post, else post_batch) of
   tagged steps [Read (producer, seq)]; a consumer drains concurrently
   with take_batch + a final tick.  The concatenated drain order must
   be an interleaving that preserves each producer's submission order,
   with every burst contiguous. *)
let run_mpsc ~batch ~(bursts : int list list) =
  let t = Admission.create ~batch in
  let done_count = Atomic.make 0 in
  let n_producers = List.length bursts in
  let producers =
    List.mapi
      (fun p sizes ->
        Domain.spawn (fun () ->
            let seq = ref 0 in
            List.iter
              (fun size ->
                let items =
                  List.init size (fun k -> Step.Read (p, !seq + k))
                in
                seq := !seq + size;
                match items with
                | [ one ] -> Admission.post t one
                | many -> Admission.post_batch t many)
              sizes;
            Atomic.incr done_count))
      bursts
  in
  let drained = ref [] in
  let rec consume () =
    match Admission.take_batch t with
    | Some b ->
        drained := List.rev_append b !drained;
        consume ()
    | None ->
        if Atomic.get done_count < n_producers then begin
          Domain.cpu_relax ();
          consume ()
        end
  in
  consume ();
  List.iter Domain.join producers;
  (* Producers are done: one final take_batch loop plus a tick drains
     the tail. *)
  let rec drain_tail () =
    match Admission.take_batch t with
    | Some b ->
        drained := List.rev_append b !drained;
        drain_tail ()
    | None -> drained := List.rev_append (Admission.tick t) !drained
  in
  drain_tail ();
  List.rev !drained

let decode = function
  | Step.Read (p, s) -> (p, s)
  | _ -> Alcotest.fail "unexpected step shape"

let mpsc_ok ~bursts drained =
  let decoded = List.map decode drained in
  let posted p = List.fold_left ( + ) 0 (List.nth bursts p) in
  let n_producers = List.length bursts in
  (* multiset equality *)
  let total = List.fold_left (fun a sizes -> a + List.fold_left ( + ) 0 sizes) 0 bursts in
  if List.length decoded <> total then Error "lost or duplicated steps"
  else if
    (* per-producer order: producer p's elements appear as 0,1,2,... *)
    not
      (List.for_all
         (fun p ->
           let mine = List.filter (fun (q, _) -> q = p) decoded in
           List.mapi (fun i _ -> i) mine
           = List.map snd mine
           && List.length mine = posted p)
         (List.init n_producers Fun.id))
  then Error "a producer's submission order was not preserved"
  else begin
    (* burst contiguity: each multi-element burst occupies consecutive
       positions of the global drain order *)
    let pos = Hashtbl.create 64 in
    List.iteri (fun i x -> Hashtbl.replace pos x i) decoded;
    let contiguous p sizes =
      let seq = ref 0 in
      List.for_all
        (fun size ->
          let first = !seq in
          seq := !seq + size;
          size = 1
          ||
          let base = Hashtbl.find pos (p, first) in
          List.init size (fun k -> Hashtbl.find pos (p, first + k))
          = List.init size (fun k -> base + k))
        sizes
    in
    if List.for_all2 contiguous (List.init n_producers Fun.id) bursts |> not
    then Error "a post_batch burst was interleaved"
    else Ok ()
  end
  [@@warning "-32"]

let mpsc_gen =
  QCheck.make
    ~print:(fun (batch, bursts) ->
      Printf.sprintf "batch=%d bursts=%s" batch
        (String.concat ";"
           (List.map
              (fun s -> String.concat "," (List.map string_of_int s))
              bursts)))
    QCheck.Gen.(
      pair (int_range 1 7)
        (list_size (return 3) (list_size (int_range 1 8) (int_range 1 4))))

let prop_mpsc_linearizable =
  QCheck.Test.make ~count:30 ~name:"MPSC admission linearizability"
    mpsc_gen
    (fun (batch, bursts) ->
      let drained = run_mpsc ~batch ~bursts in
      match mpsc_ok ~bursts drained with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%s" e)

(* Single-producer determinism through the MPSC face: post/take_batch
   round-trips in exact order, and the counters add up. *)
let test_admission_mpsc_unit () =
  let t = Admission.create ~batch:3 in
  Admission.post t (Step.Read (0, 0));
  check "no batch below B" true (Admission.take_batch t = None);
  Admission.post_batch t [ Step.Read (0, 1); Step.Read (0, 2); Step.Read (0, 3) ];
  check_int "posted_batches" 1 (Admission.posted_batches t);
  (match Admission.take_batch t with
  | Some [ Step.Read (0, 0); Step.Read (0, 1); Step.Read (0, 2) ] -> ()
  | _ -> Alcotest.fail "take_batch returned the wrong prefix");
  check_int "pending after take" 1 (Admission.pending t);
  check_int "submitted" 4 (Admission.submitted t);
  check_int "full_batches" 1 (Admission.full_batches t);
  (match Admission.tick t with
  | [ Step.Read (0, 3) ] -> ()
  | _ -> Alcotest.fail "tick did not flush the tail")

(* --- mutation checks: the fault hooks must be detected --- *)

let mutation_workload seed = workload ~txns:120 ~entities:64 ~mpl:8 ~theta:0.8
    ~shards:4 ~cross:0.4 seed

(* Scan ordinals until one injected fault is caught: some ordinals are
   genuinely unobservable (a broadcast for transactions the victim
   shard never hosted; a reordered batch whose commands commute), so
   the pinned expectation is "a fault of each kind is detected within
   the first few opportunities", plus proof the hook actually fired. *)
let scan_fault ~kind ~set_fault =
  let detections = ref [] in
  let fired = ref 0 in
  for n = 0 to 7 do
    let fault = Par.Fault.create () in
    set_fault fault n;
    let d =
      Par.differential ~mode:(Par.Replay 1) ~fault ~shards:4 ~batch:8
        ~policy:Policy.Greedy_c1 (mutation_workload 11)
    in
    let injected =
      match kind with
      | `Drop -> fault.Par.Fault.dropped
      | `Reorder -> fault.Par.Fault.reordered
    in
    fired := !fired + injected;
    if injected > 0 && not (Par.differential_ok d) then
      detections := n :: !detections
  done;
  (!fired, List.rev !detections)

let test_mutation_drop_broadcast () =
  let fired, detections =
    scan_fault ~kind:`Drop ~set_fault:(fun f n ->
        f.Par.Fault.drop_broadcast <- Some (n, 0))
  in
  check ("drop hook fired, count " ^ string_of_int fired) true (fired > 0);
  check
    ("dropped broadcast detected at ordinals "
    ^ String.concat "," (List.map string_of_int detections))
    true (detections <> [])

let test_mutation_reorder_batch () =
  let fired, detections =
    scan_fault ~kind:`Reorder ~set_fault:(fun f n ->
        f.Par.Fault.reorder_batch <- Some (n, 0))
  in
  check ("reorder hook fired, count " ^ string_of_int fired) true (fired > 0);
  check
    ("reordered batch detected at ordinals "
    ^ String.concat "," (List.map string_of_int detections))
    true (detections <> [])

(* A crashed shard applier must surface as [Shard_failure], never as a
   clean exit — the bug class where `dct serve` reported success over a
   dead shard.  Both the batch driver and the incremental handle (the
   network server's path) are covered; the handle variant exercises the
   shutdown drain that catches appliers dying after their last awaited
   barrier. *)
let test_crash_surfaces_shard_failure () =
  let steps = mutation_workload 11 in
  let expect_failure what f =
    match f () with
    | exception Par.Shard_failure (shard, msg) ->
        check (what ^ " names a shard") true (shard >= 0 && shard < 4);
        check (what ^ " carries a description") true (msg <> "")
    | _ -> Alcotest.failf "%s: crash injected but the run exited cleanly" what
  in
  let fault = Par.Fault.create () in
  fault.Par.Fault.crash_cmd <- Some (0, 1);
  let cfg () = Eng.config ~policy:Policy.Greedy_c1 ~shards:4 ~batch:8 () in
  expect_failure "run" (fun () ->
      ignore (Par.run ~mode:(Par.Replay 1) ~fault (cfg ()) steps));
  check "run crash injected" true (fault.Par.Fault.crashes > 0);
  let fault = Par.Fault.create () in
  fault.Par.Fault.crash_cmd <- Some (0, 1);
  expect_failure "handle" (fun () ->
      let h = Par.create_handle ~mode:(Par.Replay 1) ~fault (cfg ()) in
      List.iter (Par.submit h) steps;
      ignore (Par.finish h ~wall_seconds:0.0));
  check "handle crash injected" true (fault.Par.Fault.crashes > 0);
  (* and under real domains, where the applier dies on its own thread *)
  let fault = Par.Fault.create () in
  fault.Par.Fault.crash_cmd <- Some (0, 1);
  expect_failure "domains" (fun () ->
      ignore (Par.run ~mode:Par.Domains ~fault (cfg ()) steps))

(* The same hooks must be invisible when disarmed: a Fault.create ()
   with no mutation set changes nothing. *)
let test_fault_disarmed () =
  let fault = Par.Fault.create () in
  let d =
    Par.differential ~mode:(Par.Replay 1) ~fault ~shards:4 ~batch:8
      ~policy:Policy.Greedy_c1 (mutation_workload 11)
  in
  check_int "nothing dropped" 0 fault.Par.Fault.dropped;
  check_int "nothing reordered" 0 fault.Par.Fault.reordered;
  if not (Par.differential_ok d) then
    Alcotest.failf "disarmed fault diverged:@\n%a" Par.pp_differential d

(* --- locked sink: no mid-record interleaving under domains --- *)

let test_locked_sink_concurrent () =
  let buf = Buffer.create 4096 in
  let sink = Sink.locked (Sink.memory buf) in
  let n_domains = 4 and per_domain = 200 in
  let emitters =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Sink.emit sink
                (Event.Decision
                   {
                     index = (d * per_domain) + i;
                     txn = d;
                     outcome = "accepted";
                     reason = "";
                   })
            done))
  in
  List.iter Domain.join emitters;
  Sink.flush sink;
  (* Every line parses (nothing interleaved mid-record) and every event
     arrived exactly once. *)
  match Sink.parse_string (Buffer.contents buf) with
  | Error e -> Alcotest.failf "interleaved trace: %s" e
  | Ok events ->
      check_int "every event intact" (n_domains * per_domain)
        (List.length events);
      let seen = Hashtbl.create 1024 in
      List.iter
        (function
          | Event.Decision { index; _ } ->
              if Hashtbl.mem seen index then
                Alcotest.failf "event %d duplicated" index;
              Hashtbl.replace seen index ()
          | _ -> Alcotest.fail "unexpected event shape")
        events;
      check_int "no event lost" (n_domains * per_domain)
        (Hashtbl.length seen)

let test_locked_sink_idempotent () =
  check "Null stays Null" true (Sink.locked Sink.null = Sink.null);
  let buf = Buffer.create 16 in
  let once = Sink.locked (Sink.memory buf) in
  (match Sink.locked once with
  | Sink.Locked { inner = Sink.Memory _; _ } -> ()
  | _ -> Alcotest.fail "double-locking nested the wrapper")

(* The engine end-to-end version of the same guarantee: a traced
   Domains run produces a parseable trace byte-identical (modulo
   timing) to the sequential engine's — already asserted inside every
   matrix differential via trace_divergence = None; here we pin that a
   trace actually flowed (non-vacuous check). *)
let test_traced_domains_run () =
  let buf = Buffer.create 4096 in
  let tracer =
    Dct_telemetry.Tracer.create ~sink:(Sink.locked (Sink.memory buf)) ()
  in
  let cfg =
    Eng.config ~policy:Policy.Greedy_c1 ~tracer ~shards:3 ~batch:8 ()
  in
  let steps = workload ~txns:40 ~entities:24 ~shards:3 3 in
  let r = Par.run ~mode:Par.Domains cfg steps in
  check "lockstep under tracing" true r.Par.lockstep;
  match Sink.parse_string (Buffer.contents buf) with
  | Error e -> Alcotest.failf "domains trace malformed: %s" e
  | Ok events ->
      check "trace non-empty" true (List.length events > 0)

(* --- Metrics.merge arithmetic --- *)

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "par.cmds" ~by:10;
  Metrics.incr b "par.cmds" ~by:32;
  Metrics.incr b "par.gc_runs";
  Metrics.gauge a "par.shard.resident" 4;
  Metrics.gauge a "par.shard.resident" 2;
  Metrics.gauge b "par.shard.resident" 3;
  Metrics.observe a "lat" 100.0;
  Metrics.observe a "lat" 100.0;
  Metrics.observe b "lat" 1_000_000.0;
  Metrics.merge ~into:a b;
  check_int "counters add" 42 (Metrics.counter a "par.cmds");
  check_int "absent counter copied" 1 (Metrics.counter a "par.gc_runs");
  check_int "gauge keeps max value" 3 (Metrics.gauge_value a "par.shard.resident");
  check_int "gauge keeps max hwm" 4 (Metrics.high_water a "par.shard.resident");
  check_int "histogram counts add" 3 (Metrics.histo_count a "lat");
  check "histogram mean weighted" true
    (abs_float (Metrics.histo_mean a "lat" -. ((100.0 +. 100.0 +. 1_000_000.0) /. 3.0))
     < 1e-6);
  (* merge is the no-op identity on an empty source *)
  let before = Metrics.counter a "par.cmds" in
  Metrics.merge ~into:a (Metrics.create ());
  check_int "empty merge is identity" before (Metrics.counter a "par.cmds")

(* The worker registries actually flow through the merge: a metrics-on
   parallel run surfaces the per-domain applier counters. *)
let test_worker_metrics_merged () =
  let m = Metrics.create () in
  let tracer = Dct_telemetry.Tracer.create ~metrics:m () in
  let cfg =
    Eng.config ~policy:Policy.Greedy_c1 ~tracer ~shards:2 ~batch:8 ()
  in
  let steps = workload ~txns:40 ~entities:24 ~shards:2 9 in
  let _ = Par.run ~mode:(Par.Replay 3) cfg steps in
  check "applier command counter merged" true (Metrics.counter m "par.cmds" > 0);
  check "applier gc counter merged" true (Metrics.counter m "par.gc_runs" > 0)

(* --- mailbox unit: the batch atomicity the protocol rests on --- *)

let test_mailbox_unit () =
  let mb = Mailbox.create () in
  Mailbox.push mb 1;
  Mailbox.push_batch mb [ 2; 3; 4 ];
  Mailbox.push_batch mb [];
  check_int "pending" 4 (Mailbox.pending mb);
  check_int "pushed" 4 (Mailbox.pushed mb);
  check_int "batches counts non-empty only" 1 (Mailbox.batches mb);
  check "drain order" true (Mailbox.drain mb = [ 1; 2; 3; 4 ]);
  check "empty drain" true (Mailbox.drain mb = []);
  Mailbox.close mb;
  check "closed" true (Mailbox.is_closed mb);
  check "drain_wait on closed+empty = shutdown signal" true
    (Mailbox.drain_wait mb = []);
  check "push after close raises" true
    (try
       Mailbox.push mb 5;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "parallel"
    [
      ( "differential",
        [
          Alcotest.test_case "240-run replay matrix vs single-node + sequential"
            `Slow test_replay_matrix;
          Alcotest.test_case "real-domain sanity matrix" `Slow
            test_domains_sanity;
          Alcotest.test_case "full real-domain matrix (multi-core only)" `Slow
            test_domains_matrix;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "replay seed invariance" `Quick
            test_replay_seed_invariance;
          Alcotest.test_case "domains run == replay run" `Quick
            test_domains_match_replay;
        ] );
      ( "admission-mpsc",
        [
          QCheck_alcotest.to_alcotest prop_mpsc_linearizable;
          Alcotest.test_case "post/take_batch unit" `Quick
            test_admission_mpsc_unit;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "dropped GC broadcast detected" `Slow
            test_mutation_drop_broadcast;
          Alcotest.test_case "reordered batch detected" `Slow
            test_mutation_reorder_batch;
          Alcotest.test_case "crashed applier raises Shard_failure" `Quick
            test_crash_surfaces_shard_failure;
          Alcotest.test_case "disarmed hooks change nothing" `Quick
            test_fault_disarmed;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "locked sink: no mid-record interleaving" `Quick
            test_locked_sink_concurrent;
          Alcotest.test_case "locked sink: idempotent wrap" `Quick
            test_locked_sink_idempotent;
          Alcotest.test_case "traced domains run parses" `Quick
            test_traced_domains_run;
          Alcotest.test_case "Metrics.merge arithmetic" `Quick
            test_metrics_merge;
          Alcotest.test_case "worker registries merged" `Quick
            test_worker_metrics_merged;
        ] );
      ( "mailbox",
        [ Alcotest.test_case "batch atomicity + shutdown" `Quick test_mailbox_unit ] );
    ]
