(* Differential pinning of the compact graph substrate.

   The Bigarray {!Bitset} and the hybrid small-array/bitset {!Row}
   replaced a plain [int array] set representation; these properties
   pin both against a reference model (OCaml's [Set.Make (Int)]) over
   random operation programs — add/remove/mem/cardinal/iter order/
   union_into (including the [changed] flag)/inter_card — so any
   representation bug (word boundaries, the small→dense upgrade, SWAR
   popcount) shows up as a model divergence, not as a scheduler
   heisenbug three layers up.

   The arena properties pin the recycling contract the whole slot-space
   rebase rests on: two live ids never alias one slot, slot capacity is
   bounded by the high-water live count (never the id space), and
   [copy] yields a truly independent replica. *)

module Q = QCheck
module B = Dct_graph.Bitset
module Row = Dct_graph.Row
module Arena = Dct_graph.Arena
module Iset = Set.Make (Int)

let check = Alcotest.(check bool)

(* Element programs: indices span several words and cross the row
   upgrade threshold, removals included. *)
let prog_gen =
  Q.Gen.(
    list_size (0 -- 160)
      (pair bool (frequency [ (4, 0 -- 300); (1, 0 -- 40) ])))

let prog_arb =
  Q.make
    ~print:
      (Q.Print.list (fun (add, i) ->
           Printf.sprintf "%s %d" (if add then "add" else "del") i))
    prog_gen

let build_all prog =
  let b = B.create () and r = Row.create () in
  let m = ref Iset.empty in
  List.iter
    (fun (add, i) ->
      if add then begin
        B.add b i;
        Row.add r i;
        m := Iset.add i !m
      end
      else begin
        B.remove b i;
        Row.remove r i;
        m := Iset.remove i !m
      end)
    prog;
  (b, r, !m)

let agrees (b, r, m) =
  let want = Iset.elements m in
  B.elements b = want && Row.elements r = want
  && B.cardinal b = Iset.cardinal m
  && Row.cardinal r = Iset.cardinal m
  && B.is_empty b = Iset.is_empty m
  && Row.is_empty r = Iset.is_empty m

let bitset_row_match_model =
  Q.Test.make ~name:"bitset & row = model (add/remove/elements/cardinal)"
    ~count:300 prog_arb (fun prog -> agrees (build_all prog))

let mem_matches_model =
  Q.Test.make ~name:"mem total and pointwise = model" ~count:200 prog_arb
    (fun prog ->
      let b, r, m = build_all prog in
      List.for_all
        (fun i -> B.mem b i = Iset.mem i m && Row.mem r i = Iset.mem i m)
        (List.init 301 Fun.id)
      && (not (B.mem b (-3)))
      && not (Row.mem r (-3)))

let iter_increasing =
  Q.Test.make ~name:"iter visits in increasing order" ~count:200 prog_arb
    (fun prog ->
      let b, r, _ = build_all prog in
      let incr_of iter =
        let prev = ref (-1) and ok = ref true in
        iter (fun i ->
            if i <= !prev then ok := false;
            prev := i);
        !ok
      in
      incr_of (fun f -> B.iter f b) && incr_of (fun f -> Row.iter f r))

let union_into_matches_model =
  Q.Test.make ~name:"union_into = model union, changed flag exact" ~count:300
    (Q.pair prog_arb prog_arb) (fun (pa, pb) ->
      let ba, ra, ma = build_all pa in
      let bb, rb, mb = build_all pb in
      let want = Iset.elements (Iset.union ma mb) in
      let want_changed = not (Iset.subset mb ma) in
      let b_changed = B.union_into ~into:ba bb in
      let r_changed = Row.union_into ~into:ra rb in
      B.elements ba = want && Row.elements ra = want
      && b_changed = want_changed
      && r_changed = want_changed
      (* sources must be untouched *)
      && B.elements bb = Iset.elements mb
      && Row.elements rb = Iset.elements mb)

let inter_card_matches_model =
  Q.Test.make ~name:"inter_card = model intersection cardinal" ~count:300
    (Q.pair prog_arb prog_arb) (fun (pa, pb) ->
      let ba, ra, ma = build_all pa in
      let bb, rb, mb = build_all pb in
      let want = Iset.cardinal (Iset.inter ma mb) in
      B.inter_card ba bb = want && Row.inter_card ra rb = want)

let copy_independent =
  Q.Test.make ~name:"copy is independent in both representations" ~count:200
    prog_arb (fun prog ->
      let b, r, m = build_all prog in
      let b' = B.copy b and r' = Row.copy r in
      B.add b' 1234;
      Row.add r' 1234;
      B.elements b = Iset.elements m
      && Row.elements r = Iset.elements m
      && B.mem b' 1234 && Row.mem r' 1234)

let row_upgrade () =
  let r = Row.create () in
  for i = 0 to Row.small_max do
    Row.add r (2 * i)
  done;
  check "upgraded past small_max" true (Row.is_dense r);
  Alcotest.(check (list int))
    "upgrade preserved elements"
    (List.init (Row.small_max + 1) (fun i -> 2 * i))
    (Row.elements r);
  let small = Row.create () in
  Row.add small 5;
  check "small stays small" false (Row.is_dense small)

let negative_contract () =
  let r = Row.create () in
  Alcotest.check_raises "Row.add negative"
    (Invalid_argument "Row.add: negative index -2") (fun () -> Row.add r (-2));
  Alcotest.check_raises "Row.remove negative"
    (Invalid_argument "Row.remove: negative index -9") (fun () ->
      Row.remove r (-9));
  check "row untouched" true (Row.is_empty r)

(* --- arena ------------------------------------------------------- *)

type arena_op = Alloc of int | Release of int

let arena_prog_arb =
  Q.make
    ~print:
      (Q.Print.list (function
        | Alloc i -> Printf.sprintf "alloc %d" i
        | Release i -> Printf.sprintf "release %d" i))
    Q.Gen.(
      list_size (0 -- 200)
        (map2
           (fun alloc i -> if alloc then Alloc i else Release i)
           bool (0 -- 60)))

(* Replay a program, skipping invalid allocs (already-live ids), with a
   model map id -> slot.  The invariants checked after every step are
   exactly the aliasing contract of the .mli. *)
let no_aliasing_prop ops =
  let a = Arena.create () in
  let model = Hashtbl.create 16 in
  let hwm = ref 0 in
  let ok = ref true in
  let assert_ c = if not c then ok := false in
  List.iter
    (fun op ->
      (match op with
      | Alloc id ->
          if Hashtbl.mem model id then
            (* must refuse a double alloc *)
            assert_
              (match Arena.alloc a id with
              | exception Invalid_argument _ -> true
              | _ -> false)
          else begin
            let s = Arena.alloc a id in
            (* the slot must not belong to any other live id *)
            Hashtbl.iter (fun _ s' -> assert_ (s <> s')) model;
            Hashtbl.replace model id s
          end
      | Release id -> (
          match Arena.release a id with
          | Some s ->
              assert_ (Hashtbl.find_opt model id = Some s);
              Hashtbl.remove model id
          | None -> assert_ (not (Hashtbl.mem model id))));
      hwm := max !hwm (Hashtbl.length model);
      assert_ (Arena.live a = Hashtbl.length model);
      (* capacity tracks the high-water live population, not the id
         space — the whole point of the arena *)
      assert_ (Arena.capacity a <= !hwm);
      Hashtbl.iter
        (fun id s ->
          assert_ (Arena.find a id = Some s);
          assert_ (Arena.id_of a s = id))
        model)
    ops;
  !ok

let arena_no_aliasing =
  Q.Test.make ~name:"arena: recycling never aliases two live ids" ~count:300
    arena_prog_arb no_aliasing_prop

let arena_copy_independent =
  Q.Test.make ~name:"arena: copy survives mutation of the original"
    ~count:200 (Q.pair arena_prog_arb arena_prog_arb) (fun (pa, pb) ->
      let a = Arena.create () in
      let apply a = function
        | Alloc id -> (
            match Arena.alloc a id with
            | (_ : int) -> ()
            | exception Invalid_argument _ -> ())
        | Release id -> ignore (Arena.release a id)
      in
      List.iter (apply a) pa;
      let snapshot =
        Arena.fold (fun ~id ~slot acc -> (id, slot) :: acc) a []
        |> List.sort compare
      in
      let c = Arena.copy a in
      List.iter (apply a) pb (* keep mutating the original *);
      let copied =
        Arena.fold (fun ~id ~slot acc -> (id, slot) :: acc) c []
        |> List.sort compare
      in
      copied = snapshot)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graph_substrate"
    [
      ( "differential",
        q
          [
            bitset_row_match_model;
            mem_matches_model;
            iter_increasing;
            union_into_matches_model;
            inter_card_matches_model;
            copy_independent;
          ] );
      ( "row",
        [
          Alcotest.test_case "small -> dense upgrade" `Quick row_upgrade;
          Alcotest.test_case "negative index contract" `Quick negative_contract;
        ] );
      ("arena", q [ arena_no_aliasing; arena_copy_independent ]);
    ]
