module P = Dct_txn.Parse
module Step = Dct_txn.Step
module A = Dct_txn.Access

let check = Alcotest.(check bool)

let doc =
  {|# Example 1 of the paper
b  T1
r  T1 x      # T1 reads x
b  T2
r  T2 x
w  T2 x
b  T3
r  T3 x
w  T3 x
|}

let test_parse_basic () =
  let env = P.create_env () in
  match P.parse env doc with
  | Error e -> Alcotest.fail e
  | Ok steps ->
      Alcotest.(check int) "8 steps" 8 (List.length steps);
      check "well formed" true
        (Dct_txn.Schedule.well_formed_basic steps = Ok ())

let test_roundtrip () =
  let env = P.create_env () in
  let steps = P.parse_exn env doc in
  let doc' = P.unparse env steps in
  let steps' = P.parse_exn env doc' in
  check "roundtrip" true (List.for_all2 Step.equal steps steps')

let test_multiwrite_forms () =
  let env = P.create_env () in
  let steps = P.parse_exn env "b T1\nw1 T1 x\nf T1\n" in
  match steps with
  | [ Step.Begin _; Step.Write_one (_, _); Step.Finish _ ] -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_declaration () =
  let env = P.create_env () in
  let steps = P.parse_exn env "bd T1 r:x,y w:z\n" in
  match steps with
  | [ Step.Begin_declared (_, a) ] ->
      Alcotest.(check int) "three entities" 3 (A.cardinal a);
      Alcotest.(check int) "one write" 1
        (Dct_graph.Intset.cardinal (A.writes a))
  | _ -> Alcotest.fail "unexpected parse"

let test_declaration_roundtrip () =
  let env = P.create_env () in
  let steps = P.parse_exn env "bd T1 r:x,y w:z\nr T1 x\n" in
  let steps' = P.parse_exn env (P.unparse env steps) in
  check "roundtrip" true (List.for_all2 Step.equal steps steps')

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_errors () =
  let env = P.create_env () in
  check "bad verb" true (Result.is_error (P.parse env "frobnicate T1"));
  check "missing args" true (Result.is_error (P.parse env "r T1"));
  check "bad decl" true (Result.is_error (P.parse env "bd T1 q:x"));
  (match P.parse env "b T1\nnope" with
  | Error e -> check "line number" true (String.length e > 0 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected error");
  check "blank ok" true (P.parse env "\n\n# only comments\n" = Ok [])

let test_error_tokens () =
  (* diagnostics name the offending token, not just the position *)
  let env = P.create_env () in
  (match P.parse env "frobnicate T1" with
  | Error e -> check "names the verb" true (contains ~sub:"\"frobnicate\"" e)
  | Ok _ -> Alcotest.fail "expected error");
  (match P.parse env "r T1" with
  | Error e ->
      check "names arity" true (contains ~sub:"expects" e);
      check "echoes args" true (contains ~sub:"T1" e)
  | Ok _ -> Alcotest.fail "expected error");
  match P.parse env "bd T1 q:x" with
  | Error e -> check "names the clause" true (contains ~sub:"\"q:x\"" e)
  | Ok _ -> Alcotest.fail "expected error"

let test_parse_located () =
  let env = P.create_env () in
  match P.parse_located env "# header\n\nb T1\n# gap\nr T1 x\nw T1\n" with
  | Error e -> Alcotest.fail e
  | Ok located ->
      Alcotest.(check (list int)) "source lines survive blanks and comments"
        [ 3; 5; 6 ]
        (List.map (fun l -> l.P.line) located)

let test_parse_file () =
  let path = Filename.temp_file "dct_parse" ".sched" in
  let oc = open_out path in
  output_string oc doc;
  close_out oc;
  let env = P.create_env () in
  (match P.parse_file env path with
  | Error e -> Alcotest.fail e
  | Ok steps -> Alcotest.(check int) "8 steps" 8 (List.length steps));
  (* parse errors carry the filename *)
  let oc = open_out path in
  output_string oc "b T1\nnope\n";
  close_out oc;
  (match P.parse_file env path with
  | Error e ->
      check "filename in error" true (contains ~sub:(Filename.basename path) e);
      check "line in error" true (contains ~sub:"line 2" e)
  | Ok _ -> Alcotest.fail "expected error");
  Sys.remove path;
  (* ... and so do I/O errors *)
  match P.parse_file env path with
  | Error e -> check "missing file named" true (contains ~sub:(Filename.basename path) e)
  | Ok _ -> Alcotest.fail "expected error"

(* Generated schedules survive unparse/parse at the textual level: a
   fresh environment interns the printed names back to consistent ids,
   so printing again reproduces the document byte for byte. *)
let unparse_roundtrip =
  QCheck.Test.make ~name:"unparse/parse round-trip on generated schedules"
    ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.(1 -- 10_000))
    (fun seed ->
      let schedule =
        Dct_workload.Generator.(
          basic { default with n_txns = 15; n_entities = 5; mpl = 4; seed })
      in
      let doc = P.unparse (P.create_env ()) schedule in
      let env2 = P.create_env () in
      P.unparse env2 (P.parse_exn env2 doc) = doc)

let test_interning () =
  let env = P.create_env () in
  let steps = P.parse_exn env "b T1\nr T1 x\nr T1 x\n" in
  match steps with
  | [ _; Step.Read (t, x1); Step.Read (t', x2) ] ->
      check "same txn id" true (t = t');
      check "same entity id" true (x1 = x2);
      check "names recoverable" true
        (Dct_txn.Symtab.name env.P.txns t = Some "T1")
  | _ -> Alcotest.fail "unexpected parse"

let () =
  Alcotest.run "parse"
    [
      ( "parse",
        [
          Alcotest.test_case "basic document" `Quick test_parse_basic;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "multiwrite forms" `Quick test_multiwrite_forms;
          Alcotest.test_case "declarations" `Quick test_declaration;
          Alcotest.test_case "declaration roundtrip" `Quick
            test_declaration_roundtrip;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "error tokens" `Quick test_error_tokens;
          Alcotest.test_case "located steps" `Quick test_parse_located;
          Alcotest.test_case "parse_file" `Quick test_parse_file;
          Alcotest.test_case "interning" `Quick test_interning;
          QCheck_alcotest.to_alcotest unparse_roundtrip;
        ] );
    ]
