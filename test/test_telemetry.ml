(* The telemetry layer's contracts:

   - the event vocabulary round-trips through its JSONL encoding, both
     in memory and through a file sink;
   - the metrics registry counts, tracks high-water marks and buckets
     latencies as documented;
   - METAMORPHIC: enabling tracing changes no scheduler decision — for
     every graph model and policy, the traced run's outcomes,
     deletions and final stats are identical to the untraced run's,
     and the Decision events in the sink replay the observed outcomes
     byte for byte;
   - the Checked backend's probe attribution: per operation, a checked
     run carries exactly the closure-run and topo-run sample counts;
   - a basic-model trace re-fed through [Audit.of_telemetry] passes
     the deletion auditor. *)

module Intset = Dct_graph.Intset
module Oracle = Dct_graph.Cycle_oracle
module Step = Dct_txn.Step
module Access = Dct_txn.Access
module Policy = Dct_deletion.Policy
module Si = Dct_sched.Scheduler_intf
module Cs = Dct_sched.Conflict_scheduler
module Gen = Dct_workload.Generator
module Driver = Dct_sim.Driver
module E = Dct_telemetry.Event
module Sink = Dct_telemetry.Sink
module Metrics = Dct_telemetry.Metrics
module Tracer = Dct_telemetry.Tracer
module Probe = Dct_telemetry.Probe

let check = Alcotest.(check bool)

(* --- event encoding --- *)

let sample_events =
  [
    E.Step_submitted
      { index = 1; step = { E.kind = "read"; txn = 3; reads = [ 2 ]; writes = [] } };
    E.Step_submitted
      {
        index = 2;
        step = { E.kind = "begin_declared"; txn = 4; reads = [ 1; 2 ]; writes = [ 5 ] };
      };
    E.Decision { index = 1; txn = 3; outcome = "accepted"; reason = "" };
    E.Decision { index = 7; txn = 2; outcome = "rejected"; reason = "cycle" };
    E.Deletion_attempted { policy = "greedy-c1"; candidates = [ 1; 2; 3 ] };
    E.Deletion_ok { policy = "greedy-c1"; deleted = [ 2 ] };
    E.Deletion_blocked { policy = "exact-max"; txn = 4; condition = "c2-max" };
    E.Oracle_query { op = "add_arc"; backend = "closure"; ns = 1250.0 };
    E.Cycle_rejected { txn = 9; witness = [ 9; 4; 9 ] };
    E.Restart { txn = 5; attempt = 2 };
    E.Checkpoint_stats
      {
        E.at_step = 32;
        resident_txns = 7;
        resident_arcs = 9;
        active_txns = 5;
        committed = 11;
        aborted = 2;
        deleted = 6;
        delayed = 1;
        resident_bytes = 18432;
      };
  ]

let test_json_round_trip () =
  List.iter
    (fun e ->
      match E.of_json (E.to_json e) with
      | Ok e' -> check (E.kind e ^ " round-trips") true (E.equal e e')
      | Error msg -> Alcotest.failf "%s: %s" (E.to_json e) msg)
    sample_events

let test_step_round_trip () =
  List.iter
    (fun s ->
      match Step.of_telemetry (Step.to_telemetry s) with
      | Ok s' -> check (Step.to_string s) true (Step.equal s s')
      | Error msg -> Alcotest.failf "%s: %s" (Step.to_string s) msg)
    [
      Step.Begin 1;
      Step.Begin_declared
        (2, Access.of_list [ (1, Access.Read); (2, Access.Read); (3, Access.Write) ]);
      Step.Read (3, 7);
      Step.Write (4, [ 1; 5; 9 ]);
      Step.Write (5, []);
      Step.Write_one (6, 2);
      Step.Finish 7;
    ]

let test_sink_round_trip () =
  let buf = Buffer.create 256 in
  let mem = Sink.memory buf in
  List.iter (Sink.emit mem) sample_events;
  (match Sink.parse_string (Buffer.contents buf) with
  | Ok es -> check "memory sink" true (List.for_all2 E.equal sample_events es)
  | Error msg -> Alcotest.fail msg);
  let path = Filename.temp_file "dct_telemetry" ".jsonl" in
  let oc = open_out path in
  let chan = Sink.channel oc in
  List.iter (Sink.emit chan) sample_events;
  Sink.flush chan;
  close_out oc;
  (match Sink.read_file path with
  | Ok es -> check "file sink" true (List.for_all2 E.equal sample_events es)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path;
  match Sink.parse_string "{\"ev\": \"nonsense\"}" with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error _ -> ()

(* Lenient parsing: every malformed line is reported with its 1-based
   line number; the parseable events still come back.  This is what
   [dct trace] runs on, so truncated or corrupted trace files summarize
   instead of dying (exercised end to end on test/corpus/trace/). *)
let test_sink_lenient_parse () =
  let good1 = E.to_json (E.Step_submitted { index = 1; step = Step.to_telemetry (Step.Begin 1) }) in
  let good2 = E.to_json (E.Decision { index = 1; txn = 1; outcome = "accepted"; reason = "" }) in
  let doc =
    String.concat "\n"
      [
        good1;
        "{\"ev\":\"decision\",\"i\":2,\"txn\":1,\"outcome\":\"acce";  (* mid-write truncation *)
        "";                                                           (* blank: skipped, but counted for numbering *)
        good2;
        "not json at all";
      ]
  in
  let events, errors = Sink.parse_string_lenient doc in
  Alcotest.(check int) "both good events survive" 2 (List.length events);
  Alcotest.(check (list int)) "error line numbers" [ 2; 5 ] (List.map fst errors);
  List.iter
    (fun (_, msg) -> check "error message non-empty" true (msg <> ""))
    errors;
  (* The strict parser still reports the first error... *)
  (match Sink.parse_string doc with
  | Ok _ -> Alcotest.fail "strict parser accepted a malformed document"
  | Error msg ->
      check "strict error carries line 2" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:"));
  (* ...and an all-good document parses identically both ways. *)
  let clean = good1 ^ "\n" ^ good2 ^ "\n" in
  match (Sink.parse_string clean, Sink.parse_string_lenient clean) with
  | Ok strict, (lenient, []) ->
      check "strict = lenient on clean input" true
        (List.for_all2 E.equal strict lenient)
  | _ -> Alcotest.fail "clean document failed to parse"

(* The corpus files drive the CLI behaviour: a truncated trace
   summarizes what it can but exits 1 (malformed lines are a finding,
   not a success), --strict refuses it outright, and an empty trace is
   a clear error, not an all-zero report. *)
let dct_exe =
  (* In the sandbox the test binary runs from _build/default/test. *)
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/dct.exe"

let run_dct args =
  let cmd = Filename.quote_command dct_exe args in
  Sys.command (cmd ^ " >/dev/null 2>&1")

let test_trace_cli_corpus () =
  if not (Sys.file_exists dct_exe) then
    Alcotest.skip ()
  else begin
    Alcotest.(check int)
      "truncated corpus trace exits 1"
      1
      (run_dct [ "trace"; "corpus/trace/truncated.jsonl" ]);
    Alcotest.(check int)
      "truncated corpus trace exits 1 under --strict"
      1
      (run_dct [ "trace"; "--strict"; "corpus/trace/truncated.jsonl" ]);
    Alcotest.(check int)
      "clean corpus trace exits 0 under --strict"
      0
      (run_dct [ "trace"; "--strict"; "corpus/trace/gc.jsonl" ]);
    Alcotest.(check int)
      "empty corpus trace exits 2"
      2
      (run_dct [ "trace"; "corpus/trace/empty.jsonl" ])
  end

(* The gc section of [dct trace]: per-call GC latency percentiles keyed
   by deletability-index backend, split out of the oracle table (the
   probe reports GC rounds as op = "gc").  The corpus latencies are
   fixed, so the whole section is pinned byte for byte. *)
let test_trace_cli_gc_section () =
  if not (Sys.file_exists dct_exe) then Alcotest.skip ()
  else begin
    let out = Filename.temp_file "dct_gc_trace" ".out" in
    let cmd =
      Filename.quote_command dct_exe [ "trace"; "corpus/trace/gc.jsonl" ]
    in
    let code = Sys.command (cmd ^ " > " ^ Filename.quote out ^ " 2>/dev/null") in
    Alcotest.(check int) "gc corpus trace exits 0" 0 code;
    let ic = open_in out in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    Sys.remove out;
    let expected =
      String.concat "\n"
        [
          "gc (per-call latency by deletability-index backend):";
          "gc index     calls  p50 ns  p90 ns  p99 ns  max ns";
          "-----------  -----  ------  ------  ------  ------";
          "incremental  4      500     2000    2000    2000";
          "naive        4      2000    8000    8000    8000";
          "";
        ]
    in
    let contains ~needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    check "gc section pinned" true (contains ~needle:expected text);
    (* and the gc rows must NOT leak into the oracle table *)
    check "oracle table keeps only real oracle ops" false
      (contains ~needle:"naive    gc" text)
  end

(* --- metrics registry --- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  check "fresh registry empty" true (Metrics.is_empty m);
  Metrics.incr m "a";
  Metrics.incr ~by:4 m "a";
  Alcotest.(check int) "counter" 5 (Metrics.counter m "a");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter m "zzz");
  Metrics.gauge m "g" 3;
  Metrics.gauge m "g" 11;
  Metrics.gauge m "g" 2;
  Alcotest.(check int) "gauge value" 2 (Metrics.gauge_value m "g");
  Alcotest.(check int) "gauge hwm" 11 (Metrics.high_water m "g");
  Metrics.observe m "h" 300.0;
  Metrics.observe m "h" 300.0;
  Metrics.observe m "h" 40_000.0;
  Alcotest.(check int) "histo count" 3 (Metrics.histo_count m "h");
  (* 300 ns falls in the (250, 500] bucket; nearest-rank p50 resolves to
     its upper bound. *)
  Alcotest.(check (float 1e-9)) "histo p50" 500.0 (Metrics.histo_percentile m "h" 50.0);
  Alcotest.(check (float 1e-9)) "histo p100" 50_000.0
    (Metrics.histo_percentile m "h" 100.0);
  Alcotest.(check int) "buckets total" 3
    (List.fold_left (fun acc (_, c) -> acc + c) 0 (Metrics.histo_buckets m "h"));
  check "render mentions instruments" true
    (let r = Metrics.render m in
     let has sub =
       let n = String.length sub and l = String.length r in
       let rec go i = i + n <= l && (String.sub r i n = sub || go (i + 1)) in
       go 0
     in
     has "a" && has "g" && has "h")

(* --- metamorphic: tracing changes no decision --- *)

let profile seed = { Gen.default with Gen.n_txns = 40; n_entities = 14; mpl = 6; seed }

(* Run a handle over a schedule collecting the observable decision
   trace; with [trace = true] a full tracer (memory sink + metrics) is
   active and its sink contents are returned. *)
let observed ~trace mk_handle schedule =
  let buf = Buffer.create 4096 in
  let tracer =
    if trace then
      Tracer.create ~metrics:(Metrics.create ()) ~sink:(Sink.memory buf) ()
    else Tracer.disabled
  in
  let outcomes = ref [] in
  let observe _i _s o = outcomes := Si.outcome_name o :: !outcomes in
  let r = Driver.run ~observe ~tracer (mk_handle tracer) schedule in
  let final = r.Driver.final in
  ( List.rev !outcomes,
    (final.Si.committed_total, final.Si.aborted_total, final.Si.deleted_total),
    Buffer.contents buf )

let decision_outcomes events =
  List.filter_map
    (function E.Decision { outcome; _ } -> Some outcome | _ -> None)
    events

let models =
  [
    ( "basic/greedy",
      fun tracer -> Cs.handle_of (Cs.create ~policy:Policy.Greedy_c1 ~tracer ()) );
    ( "basic/exact",
      fun tracer -> Cs.handle_of (Cs.create ~policy:Policy.Exact_max ~tracer ()) );
    ( "basic/noncurrent",
      fun tracer -> Cs.handle_of (Cs.create ~policy:Policy.Noncurrent ~tracer ()) );
    ( "basic/budget",
      fun tracer ->
        Cs.handle_of (Cs.create ~policy:(Policy.Budget (8, Policy.Greedy_c1)) ~tracer ()) );
    ("certify", fun tracer -> Dct_sched.Certifier.handle ~tracer ());
    ( "multiwrite",
      fun tracer ->
        Dct_sched.Multiwrite_scheduler.handle_of
          (Dct_sched.Multiwrite_scheduler.create
             ~deletion:(Dct_sched.Multiwrite_scheduler.C3_exact 8) ~tracer ()) );
    ( "predeclared",
      fun tracer ->
        Dct_sched.Predeclared_scheduler.handle_of
          (Dct_sched.Predeclared_scheduler.create ~use_c4_deletion:true ~tracer ()) );
  ]

let schedule_for name seed =
  let p = profile seed in
  if name = "multiwrite" then Gen.multiwrite p
  else if name = "predeclared" then Gen.predeclared p
  else Gen.basic p

let test_tracing_is_invisible () =
  List.iter
    (fun (name, mk) ->
      List.iter
        (fun seed ->
          let schedule = schedule_for name seed in
          let o_off, s_off, _ = observed ~trace:false mk schedule in
          let o_on, s_on, jsonl = observed ~trace:true mk schedule in
          check (name ^ ": outcomes identical") true (o_off = o_on);
          check (name ^ ": stats identical") true (s_off = s_on);
          match Sink.parse_string jsonl with
          | Error msg -> Alcotest.failf "%s: sink unparsable: %s" name msg
          | Ok events ->
              check
                (name ^ ": Decision events replay the observed outcomes")
                true
                (decision_outcomes events = o_on))
        [ 3; 17 ])
    models

(* --- Checked-backend probe attribution --- *)

let oracle_op_counts backend schedule =
  let buf = Buffer.create 4096 in
  let tracer = Tracer.create ~sink:(Sink.memory buf) () in
  let t = Cs.create ~policy:Policy.Greedy_c1 ~oracle:backend ~tracer () in
  ignore (Driver.run ~tracer (Cs.handle_of t) schedule);
  let events =
    match Sink.parse_string (Buffer.contents buf) with
    | Ok es -> es
    | Error msg -> Alcotest.fail msg
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      (* op = "gc" is the deletion policy's GC probe, attributed to the
         deletability-index backend, not to the cycle oracle — it shows
         up identically whatever oracle runs, so keep it out of the
         per-oracle attribution counts. *)
      | E.Oracle_query { op = "gc"; _ } -> ()
      | E.Oracle_query { op; backend; _ } ->
          let k = (backend, op) in
          Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      | _ -> ())
    events;
  tbl

let test_checked_probe_counts () =
  let schedule = Gen.basic (profile 29) in
  let closure = oracle_op_counts Oracle.Closure schedule in
  let topo = oracle_op_counts Oracle.Topo schedule in
  let checked = oracle_op_counts Oracle.Checked schedule in
  check "some queries were recorded" true (Hashtbl.length checked > 0);
  (* Per operation the checked run reports one sample per sub-backend:
     exactly the single-backend runs' counts, no more (the cross-check
     probes in add_arc are harness work and deliberately unattributed). *)
  Hashtbl.iter
    (fun (bk, op) n ->
      let reference = if bk = "closure" then closure else topo in
      Alcotest.(check int)
        (Printf.sprintf "checked %s.%s matches the solo run" bk op)
        (Option.value ~default:0 (Hashtbl.find_opt reference (bk, op)))
        n)
    checked;
  Alcotest.(check int)
    "checked carries both backends' samples"
    (Hashtbl.length closure + Hashtbl.length topo)
    (Hashtbl.length checked)

(* --- audit over a telemetry trace --- *)

let test_audit_of_telemetry () =
  List.iter
    (fun policy ->
      let schedule = Gen.basic (profile 11) in
      let buf = Buffer.create 4096 in
      let tracer = Tracer.create ~sink:(Sink.memory buf) () in
      let t = Cs.create ~policy ~tracer () in
      ignore (Driver.run ~tracer (Cs.handle_of t) schedule);
      let events =
        match Sink.parse_string (Buffer.contents buf) with
        | Ok es -> es
        | Error msg -> Alcotest.fail msg
      in
      match Dct_analysis.Audit.of_telemetry events with
      | Error msg -> Alcotest.fail msg
      | Ok trace ->
          let report = Dct_analysis.Audit.audit trace in
          check
            (Policy.name policy ^ ": telemetry trace audits clean")
            true
            (Dct_analysis.Audit.ok report);
          check
            (Policy.name policy ^ ": audit saw every step")
            true
            (report.Dct_analysis.Audit.steps > 0))
    [ Policy.Greedy_c1; Policy.Exact_max; Policy.Noncurrent ]

let () =
  Alcotest.run "telemetry"
    [
      ( "encoding",
        [
          Alcotest.test_case "event json round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "step conversion round-trip" `Quick test_step_round_trip;
          Alcotest.test_case "sink round-trip" `Quick test_sink_round_trip;
          Alcotest.test_case "lenient parse collects per-line errors" `Quick
            test_sink_lenient_parse;
          Alcotest.test_case "trace CLI on truncated/empty corpus" `Quick
            test_trace_cli_corpus;
          Alcotest.test_case "trace CLI gc section (pinned corpus output)"
            `Quick test_trace_cli_gc_section;
        ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry ] );
      ( "metamorphic",
        [
          Alcotest.test_case "tracing changes no decision" `Quick
            test_tracing_is_invisible;
        ] );
      ( "probes",
        [
          Alcotest.test_case "checked = closure + topo samples" `Quick
            test_checked_probe_counts;
        ] );
      ( "audit",
        [
          Alcotest.test_case "trace re-feeds the auditor" `Quick
            test_audit_of_telemetry;
        ] );
    ]
