module Prng = Dct_workload.Prng
module Zipf = Dct_workload.Zipf
module Gen = Dct_workload.Generator
module S = Dct_txn.Schedule
module Step = Dct_txn.Step
module Intset = Dct_graph.Intset

let check = Alcotest.(check bool)

let test_prng_deterministic () =
  let a = Prng.create ~seed:5 and b = Prng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create ~seed:6 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  check "different seeds differ" true !differs

let test_prng_bounds () =
  let rng = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    check "in range" true (v >= 0 && v < 7);
    let f = Prng.float rng in
    check "float range" true (f >= 0.0 && f < 1.0)
  done;
  check "bad bound" true
    (try
       ignore (Prng.int rng 0);
       false
     with Invalid_argument _ -> true)

let test_sample_distinct () =
  let rng = Prng.create ~seed:2 in
  let s = Prng.sample_distinct rng ~n:5 ~bound:10 in
  Alcotest.(check int) "5 values" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
  let all = Prng.sample_distinct rng ~n:20 ~bound:4 in
  Alcotest.(check (list int)) "whole range" [ 0; 1; 2; 3 ] (List.sort compare all)

let test_shuffle_and_choose () =
  let rng = Prng.create ~seed:6 in
  let arr = Array.init 10 Fun.id in
  Prng.shuffle rng arr;
  Alcotest.(check (list int)) "permutation" (List.init 10 Fun.id)
    (List.sort compare (Array.to_list arr));
  for _ = 1 to 50 do
    let v = Prng.choose rng arr in
    check "chosen member" true (Array.exists (( = ) v) arr)
  done;
  check "choose empty raises" true
    (try
       ignore (Prng.choose rng [||]);
       false
     with Invalid_argument _ -> true)

let test_zipf_spec_strings () =
  Alcotest.(check string) "uniform" "uniform"
    (Zipf.spec (Zipf.uniform ~n:4));
  Alcotest.(check string) "zipf" "zipf(0.99)"
    (Zipf.spec (Zipf.zipf ~n:4 ~theta:0.99));
  Alcotest.(check string) "hotspot" "hotspot(0.20,0.80)"
    (Zipf.spec (Zipf.hotspot ~n:4 ~hot_fraction:0.2 ~hot_probability:0.8));
  Alcotest.(check int) "support" 7 (Zipf.support (Zipf.uniform ~n:7))

let test_profile_pp () =
  let s = Format.asprintf "%a" Gen.pp_profile Gen.default in
  check "mentions txns" true
    (String.length s > 0
    && String.sub s 0 5 = "txns=")

let test_zipf_skew () =
  let rng = Prng.create ~seed:3 in
  let d = Zipf.zipf ~n:100 ~theta:1.2 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20000 do
    let v = Zipf.sample d rng in
    counts.(v) <- counts.(v) + 1
  done;
  check "head heavier than tail" true (counts.(0) > 10 * counts.(50));
  check "rank 0 >= rank 1" true (counts.(0) >= counts.(1))

let test_uniform_flat () =
  let rng = Prng.create ~seed:4 in
  let d = Zipf.uniform ~n:10 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10000 do
    let v = Zipf.sample d rng in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter (fun c -> check "roughly flat" true (c > 600 && c < 1400)) counts

let test_hotspot () =
  let rng = Prng.create ~seed:5 in
  let d = Zipf.hotspot ~n:100 ~hot_fraction:0.1 ~hot_probability:0.9 in
  let hot = ref 0 in
  let total = 10000 in
  for _ = 1 to total do
    if Zipf.sample d rng < 10 then incr hot
  done;
  check "≈90% hot" true (!hot > 8500 && !hot < 9500)

let test_of_spec () =
  check "uniform" true (Result.is_ok (Zipf.of_spec "uniform" ~n:4));
  check "zipf" true (Result.is_ok (Zipf.of_spec "zipf:0.99" ~n:4));
  check "hotspot" true (Result.is_ok (Zipf.of_spec "hotspot:0.2:0.8" ~n:4));
  check "garbage" true (Result.is_error (Zipf.of_spec "nope" ~n:4))

let test_basic_well_formed () =
  List.iter
    (fun seed ->
      let p = { Gen.default with Gen.n_txns = 50; seed } in
      let s = Gen.basic p in
      check
        (Printf.sprintf "seed %d well-formed" seed)
        true
        (S.well_formed_basic s = Ok ());
      (* Everyone completes. *)
      check "all complete" true (Intset.is_empty (S.active_basic s)))
    [ 1; 2; 3 ]

let test_basic_deterministic () =
  let p = { Gen.default with Gen.n_txns = 30 } in
  let a = Gen.basic p and b = Gen.basic p in
  check "same schedule" true (List.for_all2 Step.equal a b)

let test_txn_count () =
  let p = { Gen.default with Gen.n_txns = 25; long_readers = 2 } in
  let s = Gen.basic p in
  Alcotest.(check int) "txns = 25 + 2 long readers" 27
    (Intset.cardinal (S.txns s))

let test_entities_in_range () =
  let p = { Gen.default with Gen.n_txns = 40; n_entities = 16 } in
  let s = Gen.basic p in
  check "entities within range" true
    (Intset.for_all (fun e -> e >= 0 && e < 16) (S.entities s))

let test_multiwrite_shape () =
  let p = { Gen.default with Gen.n_txns = 30 } in
  let s = Gen.multiwrite p in
  (* Every txn has Begin, then steps, then Finish; no atomic Write. *)
  check "no atomic writes" true
    (List.for_all (function Step.Write _ -> false | _ -> true) s);
  let finishes =
    List.filter (function Step.Finish _ -> true | _ -> false) s
  in
  Alcotest.(check int) "one finish per txn" 30 (List.length finishes)

let test_predeclared_shape () =
  let p = { Gen.default with Gen.n_txns = 30 } in
  let s = Gen.predeclared p in
  (* Every step stays inside its declaration. *)
  let decls = Hashtbl.create 32 in
  List.iter
    (function
      | Step.Begin_declared (t, a) -> Hashtbl.replace decls t a
      | Step.Read (t, x) ->
          let d = Hashtbl.find decls t in
          check "read declared" true (Dct_txn.Access.mem d ~entity:x)
      | Step.Write_one (t, x) ->
          let d = Hashtbl.find decls t in
          check "write declared" true
            (Dct_txn.Access.find d ~entity:x = Some Dct_txn.Access.Write)
      | _ -> ())
    s;
  check "long readers rejected" true
    (try
       ignore (Gen.predeclared { p with Gen.long_readers = 1 });
       false
     with Invalid_argument _ -> true)

let test_read_only_fraction () =
  let p =
    { Gen.default with Gen.n_txns = 300; read_only_fraction = 1.0 }
  in
  let s = Gen.basic p in
  check "all writes empty" true
    (List.for_all (function Step.Write (_, xs) -> xs = [] | _ -> true) s)

(* Shard affinity: per-transaction accesses grouped by the hash
   partition class (entity mod shards) against the transaction's home
   shard (txn mod shards). *)
let shard_access_split ~shards schedule =
  let home = ref 0 and away = ref 0 in
  List.iter
    (fun step ->
      let txn = Step.txn step in
      List.iter
        (fun (entity, _mode) ->
          if entity mod shards = txn mod shards then incr home else incr away)
        (Step.accesses step))
    schedule;
  (!home, !away)

let test_shard_affinity_strict () =
  (* cross_shard = 0: every access of every transaction stays in its
     home shard's congruence class. *)
  let p =
    {
      Gen.default with
      Gen.n_txns = 200;
      n_entities = 64;
      shards = 4;
      cross_shard = 0.0;
    }
  in
  let home, away = shard_access_split ~shards:4 (Gen.basic p) in
  check "some accesses" true (home > 0);
  Alcotest.(check int) "no escaped keys" 0 away

let test_shard_affinity_cross_rate () =
  (* cross_shard = 0.5 with 4 shards: an escaped key lands off-home 3/4
     of the time, so the expected off-home fraction is 0.5 * 3/4 =
     0.375.  Assert a generous band around it. *)
  let p =
    {
      Gen.default with
      Gen.n_txns = 400;
      n_entities = 64;
      shards = 4;
      cross_shard = 0.5;
    }
  in
  let home, away = shard_access_split ~shards:4 (Gen.basic p) in
  let frac = float_of_int away /. float_of_int (home + away) in
  check
    (Printf.sprintf "off-home fraction %.3f within [0.25, 0.50]" frac)
    true
    (frac > 0.25 && frac < 0.50)

let test_shard_affinity_preserves_legacy_stream () =
  (* The sharding knobs must not disturb unsharded profiles: shards = 1
     consumes exactly the PRNG draws the pre-sharding generator did, so
     the schedule for a given seed is unchanged regardless of the
     cross_shard setting. *)
  let base = { Gen.default with Gen.n_txns = 100; seed = 9 } in
  let a = Gen.basic { base with Gen.shards = 1; cross_shard = 0.0 } in
  let b = Gen.basic { base with Gen.shards = 1; cross_shard = 0.9 } in
  check "shards=1 stream independent of cross_shard" true (a = b)

let test_shard_affinity_entity_range () =
  let p =
    {
      Gen.default with
      Gen.n_txns = 200;
      n_entities = 30;  (* not a multiple of shards: alignment must clamp *)
      shards = 4;
      cross_shard = 0.2;
    }
  in
  let ok = ref true in
  List.iter
    (fun step ->
      List.iter
        (fun (entity, _) -> if entity < 0 || entity >= 30 then ok := false)
        (Step.accesses step))
    (Gen.basic p);
  check "aligned keys stay in [0, n_entities)" true !ok

(* --- arrival shaping: long_reader_frac and burst modulation --- *)

let test_long_reader_frac_population () =
  let p =
    {
      Gen.default with
      Gen.n_txns = 40;
      long_readers = 1;
      long_reader_frac = 0.1;
      long_reader_step = 0.1;
    }
  in
  (* 1 fixed + floor(0.1 * 40) scaled = 5 long readers: they begin
     first and complete last *)
  let s = Gen.basic p in
  Alcotest.(check int) "population scales with n_txns" 45
    (Intset.cardinal (S.txns s));
  let expected_ids = [ 1; 2; 3; 4; 5 ] in
  let first5 = List.filteri (fun i _ -> i < 5) s in
  check "long readers begin first" true
    (List.map
       (function Step.Begin t -> t | _ -> -1)
       first5
    = expected_ids);
  let last5 = List.filteri (fun i _ -> i >= List.length s - 5) s in
  check "long readers complete last, read-only" true
    (List.for_all
       (function Step.Write (t, []) -> List.mem t expected_ids | _ -> false)
       last5);
  check "frac out of range rejected" true
    (try
       ignore (Gen.basic { p with Gen.long_reader_frac = 1.5 });
       false
     with Invalid_argument _ -> true)

let test_burst_validation () =
  let p = { Gen.default with Gen.n_txns = 20 } in
  check "off window without on window rejected" true
    (try
       ignore (Gen.basic { p with Gen.burst_off = 10 });
       false
     with Invalid_argument _ -> true);
  (* burst_off = 0 disables modulation entirely: same PRNG draws, same
     schedule as the unmodulated profile *)
  check "burst_on alone is inert" true
    (List.for_all2 Step.equal (Gen.basic p)
       (Gen.basic { p with Gen.burst_on = 5 }))

(* The adversarial point of bursty arrivals: concurrency drains to zero
   between bursts (deletability arrives in waves), which never happens
   mid-run in an unmodulated schedule at the same mpl. *)
let active_trace steps =
  let active = Hashtbl.create 16 in
  let begun = ref 0 in
  List.map
    (fun step ->
      (match step with
      | Step.Begin t ->
          incr begun;
          Hashtbl.replace active t ()
      | Step.Write (t, _) -> Hashtbl.remove active t
      | _ -> ());
      (!begun, Hashtbl.length active))
    steps

let drains_mid_run ~n_txns steps =
  List.exists
    (fun (begun, active) -> active = 0 && begun < n_txns)
    (active_trace steps)

let test_burst_drains_concurrency () =
  let n_txns = 60 in
  let base = { Gen.default with Gen.n_txns; mpl = 8 } in
  let bursty = { base with Gen.burst_on = 1; burst_off = 100 } in
  let steps = Gen.basic bursty in
  check "bursty schedule drains mid-run" true (drains_mid_run ~n_txns steps);
  check "steady schedule never drains mid-run" true
    (not (drains_mid_run ~n_txns (Gen.basic base)));
  (* deferral postpones arrivals, it never loses them *)
  Alcotest.(check int) "every transaction still runs" n_txns
    (Intset.cardinal (S.txns steps));
  check "bursty schedule well-formed" true
    (S.well_formed_basic steps = Ok ())

let () =
  Alcotest.run "workload"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "sample_distinct" `Quick test_sample_distinct;
          Alcotest.test_case "shuffle and choose" `Quick test_shuffle_and_choose;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "uniform flat" `Quick test_uniform_flat;
          Alcotest.test_case "hotspot" `Quick test_hotspot;
          Alcotest.test_case "spec parsing" `Quick test_of_spec;
          Alcotest.test_case "spec printing" `Quick test_zipf_spec_strings;
          Alcotest.test_case "profile printing" `Quick test_profile_pp;
        ] );
      ( "generator",
        [
          Alcotest.test_case "basic well-formed" `Quick test_basic_well_formed;
          Alcotest.test_case "deterministic" `Quick test_basic_deterministic;
          Alcotest.test_case "transaction count" `Quick test_txn_count;
          Alcotest.test_case "entity range" `Quick test_entities_in_range;
          Alcotest.test_case "multiwrite shape" `Quick test_multiwrite_shape;
          Alcotest.test_case "predeclared shape" `Quick test_predeclared_shape;
          Alcotest.test_case "read-only fraction" `Quick test_read_only_fraction;
        ] );
      ( "shard-affinity",
        [
          Alcotest.test_case "strict affinity" `Quick test_shard_affinity_strict;
          Alcotest.test_case "cross-shard rate" `Quick
            test_shard_affinity_cross_rate;
          Alcotest.test_case "legacy stream preserved" `Quick
            test_shard_affinity_preserves_legacy_stream;
          Alcotest.test_case "entity range with clamping" `Quick
            test_shard_affinity_entity_range;
        ] );
      ( "arrival-shaping",
        [
          Alcotest.test_case "long_reader_frac scales the population" `Quick
            test_long_reader_frac_population;
          Alcotest.test_case "burst knob validation" `Quick
            test_burst_validation;
          Alcotest.test_case "bursts drain concurrency mid-run" `Quick
            test_burst_drains_concurrency;
        ] );
    ]
