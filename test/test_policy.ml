module Intset = Dct_graph.Intset
module Gs = Dct_deletion.Graph_state
module C1 = Dct_deletion.Condition_c1
module Policy = Dct_deletion.Policy
module Rules = Dct_deletion.Rules
module Gallery = Dct_deletion.Paper_gallery
module Step = Dct_txn.Step
module S = Dct_txn.Schedule
module Gen = Dct_workload.Generator

let check = Alcotest.(check bool)

let test_names_roundtrip () =
  List.iter
    (fun (s, expect) ->
      match Policy.of_string s with
      | Ok p -> Alcotest.(check string) s expect (Policy.name p)
      | Error e -> Alcotest.fail e)
    [
      ("none", "none");
      ("commit", "commit-time(unsafe)");
      ("noncurrent", "noncurrent");
      ("greedy", "greedy-c1");
      ("exact", "exact-max");
      ("exact-weighted", "exact-max-weighted");
      ("budget:10:greedy", "budget(10,greedy-c1)");
      ("budget:4:budget:2:none", "budget(4,budget(2,none))");
    ];
  check "bad policy" true (Result.is_error (Policy.of_string "bogus"));
  check "bad budget" true (Result.is_error (Policy.of_string "budget:x:none"))

(* [of_string] also accepts exactly what [name] prints, for every
   policy — including arbitrarily nested [Budget]. *)
let policy_arb =
  let open QCheck.Gen in
  let base =
    oneofl
      Policy.
        [
          No_deletion;
          Unsafe_commit_time;
          Noncurrent;
          Greedy_c1;
          Exact_max;
          Exact_max_weighted;
        ]
  in
  let gen =
    sized
      (fix (fun self n ->
           if n = 0 then base
           else
             frequency
               [
                 (2, base);
                 ( 3,
                   map2
                     (fun k inner -> Policy.Budget (k, inner))
                     (1 -- 64) (self (n / 2)) );
               ]))
  in
  QCheck.make ~print:Policy.name gen

let name_of_string_roundtrip =
  QCheck.Test.make ~name:"of_string (name p) = Ok p" ~count:200 policy_arb
    (fun p -> Policy.of_string (Policy.name p) = Ok p)

let test_no_deletion () =
  let e = Gallery.example1 () in
  let deleted = Policy.run Policy.No_deletion e.Gallery.gs1 in
  check "nothing deleted" true (Intset.is_empty deleted)

let test_noncurrent_on_example1 () =
  let e = Gallery.example1 () in
  let deleted = Policy.run Policy.Noncurrent e.Gallery.gs1 in
  Alcotest.(check (list int)) "deletes exactly T2" [ e.t2 ]
    (Intset.to_sorted_list deleted);
  check "T3 still present" true (Gs.mem_txn e.gs1 e.t3)

let test_greedy_on_example1 () =
  let e = Gallery.example1 () in
  let deleted = Policy.run Policy.Greedy_c1 e.Gallery.gs1 in
  (* Either T2 or T3 can go, not both: greedy (ascending) takes T2. *)
  Alcotest.(check (list int)) "deletes T2 only" [ e.t2 ]
    (Intset.to_sorted_list deleted)

let test_exact_weighted_runs () =
  let e = Gallery.example1 () in
  (* Uniform access sizes on example 1 (all touch only x): the weighted
     policy behaves like exact and removes exactly one of T2/T3. *)
  let deleted = Policy.run Policy.Exact_max_weighted e.Gallery.gs1 in
  Alcotest.(check int) "one deletion" 1 (Intset.cardinal deleted)

let test_budget_trigger () =
  let e = Gallery.example1 () in
  let no = Policy.run (Policy.Budget (10, Policy.Greedy_c1)) e.Gallery.gs1 in
  check "under budget: no deletion" true (Intset.is_empty no);
  let e2 = Gallery.example1 () in
  let yes = Policy.run (Policy.Budget (2, Policy.Greedy_c1)) e2.Gallery.gs1 in
  check "over budget: deletes" true (not (Intset.is_empty yes))

let test_unsafe_commit_time_breaks_csr () =
  (* The paper's motivating failure: deleting at commit time lets the
     scheduler accept a non-CSR schedule.  Schedule: T2 completes while
     active T1 has read x; delete T2 at commit; then T1 writes x and a
     fresh T3 reads x and y, T1 writes y...  Build the classic case:
       r1(x) w2(x)[commit,deleted] r3(x→from T2) w3(y) ... r1 writes y
     Simpler: Example 1 extended — delete T2 and T3 at commit, then
     T1 writes x: in the full graph this closes no cycle... use the
     2-txn case:
       T1 reads x; T2 reads x writes x (T1->T2, deleted); T1 writes x.
     Full scheduler: arcs T1->T2 (kept) and T2->T1 (new) = cycle, T1
     aborted.  Commit-time scheduler: T2 forgotten, T1's write accepted,
     and the accepted schedule r1(x) r2(x) w2(x) w1(x) is not CSR. *)
  let steps =
    [
      Step.Begin 1;
      Step.Read (1, 0);
      Step.Begin 2;
      Step.Read (2, 0);
      Step.Write (2, [ 0 ]);
      Step.Write (1, [ 0 ]);
    ]
  in
  (* Full scheduler rejects the last step. *)
  let gs_full = Gs.create () in
  let outcomes = Rules.apply_all gs_full steps in
  check "full scheduler rejects" true (List.nth outcomes 5 = Rules.Rejected);
  (* Commit-time deletion accepts everything... *)
  let gs_bad = Gs.create () in
  let accepted_all =
    List.for_all
      (fun s ->
        match Rules.apply gs_bad s with
        | Rules.Accepted ->
            ignore (Policy.run Policy.Unsafe_commit_time gs_bad);
            true
        | Rules.Rejected | Rules.Ignored -> false)
      steps
  in
  check "unsafe scheduler accepts all" true accepted_all;
  (* ...and the schedule it accepted is not conflict-serializable. *)
  check "accepted schedule not CSR" false (S.is_csr steps)

let test_correct_policies_preserve_csr () =
  (* End-to-end: on random workloads, every correct policy accepts
     exactly the same steps as the no-deletion scheduler. *)
  let profile = { Gen.default with Gen.n_txns = 40; n_entities = 6; mpl = 5 } in
  List.iter
    (fun seed ->
      let schedule = Gen.basic { profile with Gen.seed } in
      let reference = Gs.create () in
      let ref_outcomes = Rules.apply_all reference schedule in
      List.iter
        (fun policy ->
          let gs = Gs.create () in
          let outcomes =
            List.map
              (fun s ->
                let o = Rules.apply gs s in
                if o = Rules.Accepted then ignore (Policy.run policy gs);
                o)
              schedule
          in
          check
            (Printf.sprintf "seed %d policy %s agrees" seed (Policy.name policy))
            true
            (List.for_all2 ( = ) ref_outcomes outcomes))
        [ Policy.Noncurrent; Policy.Greedy_c1; Policy.Budget (16, Policy.Greedy_c1) ])
    [ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "policy"
    [
      ( "policy",
        [
          Alcotest.test_case "parse/name roundtrip" `Quick test_names_roundtrip;
          QCheck_alcotest.to_alcotest name_of_string_roundtrip;
          Alcotest.test_case "no-deletion" `Quick test_no_deletion;
          Alcotest.test_case "noncurrent on example 1" `Quick
            test_noncurrent_on_example1;
          Alcotest.test_case "greedy on example 1" `Quick test_greedy_on_example1;
          Alcotest.test_case "budget trigger" `Quick test_budget_trigger;
          Alcotest.test_case "exact-weighted policy" `Quick
            test_exact_weighted_runs;
          Alcotest.test_case "commit-time deletion breaks CSR" `Quick
            test_unsafe_commit_time_breaks_csr;
          Alcotest.test_case "correct policies = reference scheduler" `Slow
            test_correct_policies_preserve_csr;
        ] );
    ]
