(* The write-ahead log: append/truncate mechanics, the deletion-driven
   low-water mark, and recovery equivalence (checkpoint + suffix replay
   reconstructs the live store). *)

module Wal = Dct_kv.Wal
module Store = Dct_kv.Store
module Intset = Dct_graph.Intset
module Cs = Dct_sched.Conflict_scheduler
module Policy = Dct_deletion.Policy
module Gen = Dct_workload.Generator

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_append_lsn () =
  let w = Wal.create () in
  check_int "lsn 1" 1 (Wal.append w (Wal.Begin { txn = 1 }));
  check_int "lsn 2" 2 (Wal.append w (Wal.Write { txn = 1; entity = 0; value = 5 }));
  check_int "lsn 3" 3 (Wal.append w (Wal.Commit { txn = 1 }));
  check_int "length" 3 (Wal.length w);
  check_int "total" 3 (Wal.total_appended w);
  check_int "low water" 0 (Wal.low_water_mark w)

let test_truncate_stops_at_resident () =
  let w = Wal.create () in
  ignore (Wal.append w (Wal.Begin { txn = 1 }));
  ignore (Wal.append w (Wal.Commit { txn = 1 }));
  ignore (Wal.append w (Wal.Begin { txn = 2 }));
  ignore (Wal.append w (Wal.Begin { txn = 3 }));
  ignore (Wal.append w (Wal.Commit { txn = 3 }));
  (* 2 is still resident: truncation may only drop T1's records. *)
  let dropped = Wal.truncate_to w ~resident:(fun t -> t = 2) in
  check_int "dropped 2 records" 2 dropped;
  check_int "low water = 2" 2 (Wal.low_water_mark w);
  check_int "3 retained" 3 (Wal.length w);
  check "oldest retained is T2's begin" true
    (match Wal.records w with
    | (3, Wal.Begin { txn = 2 }) :: _ -> true
    | _ -> false);
  (* Nothing more to drop while 2 is resident. *)
  check_int "no further drop" 0 (Wal.truncate_to w ~resident:(fun t -> t = 2));
  (* Once 2 is forgotten, everything goes. *)
  check_int "drop rest" 3 (Wal.truncate_to w ~resident:(fun _ -> false));
  check_int "empty" 0 (Wal.length w);
  check_int "low water = total" 5 (Wal.low_water_mark w)

let test_replay_committed_only () =
  let w = Wal.create () in
  ignore (Wal.append w (Wal.Begin { txn = 1 }));
  ignore (Wal.append w (Wal.Write { txn = 1; entity = 0; value = 10 }));
  ignore (Wal.append w (Wal.Commit { txn = 1 }));
  ignore (Wal.append w (Wal.Begin { txn = 2 }));
  ignore (Wal.append w (Wal.Write { txn = 2; entity = 1; value = 20 }));
  ignore (Wal.append w (Wal.Abort { txn = 2 }));
  ignore (Wal.append w (Wal.Begin { txn = 3 }));
  ignore (Wal.append w (Wal.Write { txn = 3; entity = 2; value = 30 }));
  (* T3 never committed. *)
  let s = Store.create () in
  Wal.replay w ~into:s;
  check_int "committed write applied" 10 (Store.peek s ~entity:0);
  check_int "aborted write skipped" 0 (Store.peek s ~entity:1);
  check_int "uncommitted write skipped" 0 (Store.peek s ~entity:2)

let scheduler_run policy =
  let store = Store.create () in
  let wal = Wal.create () in
  let sched = Cs.create ~policy ~store ~wal () in
  let schedule =
    Gen.basic
      { Gen.default with Gen.n_txns = 120; n_entities = 16; mpl = 6; seed = 33 }
  in
  List.iter (fun s -> ignore (Cs.step sched s)) schedule;
  (store, wal, sched)

let test_deletion_drives_truncation () =
  let _, wal_none, _ = scheduler_run Policy.No_deletion in
  let _, wal_gc, _ = scheduler_run Policy.Greedy_c1 in
  check_int "same records appended" (Wal.total_appended wal_none)
    (Wal.total_appended wal_gc);
  check_int "no-deletion never truncates" 0 (Wal.truncated wal_none);
  check "gc truncates" true (Wal.truncated wal_gc > 0);
  check "gc log much shorter" true (Wal.length wal_gc < Wal.length wal_none / 2)

let test_recovery_equivalence () =
  (* Same workload through both schedulers; policies agree on every
     decision, so the no-deletion WAL is the complete history.  Build a
     checkpoint by replaying the complete history up to the truncating
     log's low-water mark, then replay the retained suffix on top: the
     result must equal the live store. *)
  let live_store, wal_gc, _ = scheduler_run Policy.Greedy_c1 in
  let _, wal_full, _ = scheduler_run Policy.No_deletion in
  let lw = Wal.low_water_mark wal_gc in
  (* Checkpoint image: complete-history records with lsn <= lw. *)
  let checkpoint = Store.create () in
  let prefix = Wal.create () in
  List.iter
    (fun (lsn, r) -> if lsn <= lw then ignore (Wal.append prefix r))
    (Wal.records wal_full);
  Wal.replay prefix ~into:checkpoint;
  (* Recovery: suffix on top of checkpoint. *)
  Wal.replay wal_gc ~into:checkpoint;
  Intset.iter
    (fun entity ->
      check_int
        (Printf.sprintf "entity %d recovered" entity)
        (Store.peek live_store ~entity)
        (Store.peek checkpoint ~entity))
    (Store.entities live_store)

let test_pp () =
  check "pp begin" true
    (Format.asprintf "%a" Wal.pp_record (Wal.Begin { txn = 3 }) = "BEGIN T3");
  check "pp write" true
    (Format.asprintf "%a" Wal.pp_record
       (Wal.Write { txn = 1; entity = 2; value = 7 })
    = "WRITE T1 e2 := 7")

(* Crash-recovery property: whatever point a crash truncates the log at
   — including between the Write records of one transaction's atomic
   write group — replaying the surviving prefix yields a
   prefix-consistent store: exactly the writes of transactions whose
   Commit survived, in log order, and nothing of transactions whose
   commit (or any later record) was lost. *)
let prop_truncated_replay_prefix_consistent =
  QCheck.Test.make ~count:100 ~name:"wal: mid-write truncation replays to a prefix-consistent store"
    QCheck.(pair small_nat (int_bound 1000))
    (fun (seed, cut_raw) ->
      let wal = Wal.create () in
      let sched = Cs.create ~policy:Policy.No_deletion ~wal () in
      let schedule =
        Gen.basic
          {
            Gen.default with
            Gen.n_txns = 30;
            n_entities = 8;
            mpl = 4;
            seed = 1000 + seed;
          }
      in
      List.iter (fun s -> ignore (Cs.step sched s)) schedule;
      let full = Wal.records wal in
      let n = List.length full in
      if n = 0 then true
      else begin
        (* The crash keeps the first [cut] records; [cut_raw] is folded
           so every prefix length (0 included) is reachable. *)
        let cut = cut_raw mod (n + 1) in
        let surviving = Wal.create () in
        List.iteri
          (fun i (_lsn, r) -> if i < cut then ignore (Wal.append surviving r))
          full;
        let recovered = Store.create () in
        Wal.replay surviving ~into:recovered;
        (* Reference model, computed independently of [replay]: commits
           that survived, then their writes in log order. *)
        let committed = Hashtbl.create 16 in
        List.iteri
          (fun i (_lsn, r) ->
            match r with
            | Wal.Commit { txn } when i < cut -> Hashtbl.replace committed txn ()
            | _ -> ())
          full;
        let expected = Hashtbl.create 16 in
        let entities = ref [] in
        List.iteri
          (fun i (_lsn, r) ->
            match r with
            | Wal.Write { txn; entity; value }
              when i < cut && Hashtbl.mem committed txn ->
                if not (Hashtbl.mem expected entity) then
                  entities := entity :: !entities;
                Hashtbl.replace expected entity value
            | _ -> ())
          full;
        List.for_all
          (fun entity ->
            Store.peek recovered ~entity = Hashtbl.find expected entity)
          !entities
        && (* and nothing beyond the prefix leaked in: every touched
              entity of the recovered store is either expected or still
              at the initial value *)
        Intset.for_all
          (fun entity ->
            Hashtbl.mem expected entity || Store.peek recovered ~entity = 0)
          (Store.entities recovered)
      end)

let () =
  Alcotest.run "wal"
    [
      ( "wal",
        [
          Alcotest.test_case "append and LSNs" `Quick test_append_lsn;
          Alcotest.test_case "truncation stops at residents" `Quick
            test_truncate_stops_at_resident;
          Alcotest.test_case "replay applies committed only" `Quick
            test_replay_committed_only;
          Alcotest.test_case "deletion drives truncation" `Quick
            test_deletion_drives_truncation;
          Alcotest.test_case "recovery equivalence" `Quick
            test_recovery_equivalence;
          Alcotest.test_case "record printing" `Quick test_pp;
          QCheck_alcotest.to_alcotest prop_truncated_replay_prefix_consistent;
        ] );
    ]
