let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_int xs = mean (List.map float_of_int xs)

(* Nearest-rank on the sorted sample.  Boundary conventions (pinned in
   test_sim.ml): p is clamped to [0, 100]; p = 0 answers the minimum,
   p = 100 the maximum, and on a singleton every p answers the single
   sample. *)
let percentile p = function
  | [] -> 0.0
  | xs ->
      let p = Float.min 100.0 (Float.max 0.0 p) in
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
        |> max 0 |> min (n - 1)
      in
      arr.(rank)

let max_int_list = List.fold_left max 0

let histogram ~buckets xs =
  match xs with
  | [] -> Array.make buckets (0.0, 0)
  | _ ->
      let lo = List.fold_left min infinity xs in
      let hi = List.fold_left max neg_infinity xs in
      if hi = lo then
        (* A constant sample has no range to split: one degenerate
           bucket at the value, holding everything (previously this
           fabricated a width-1.0 range starting at the value). *)
        [| (lo, List.length xs) |]
      else begin
        let width = (hi -. lo) /. float_of_int buckets in
        let out =
          Array.init buckets (fun i -> (lo +. (float_of_int i *. width), 0))
        in
        List.iter
          (fun x ->
            let i = min (buckets - 1) (int_of_float ((x -. lo) /. width)) in
            let b, c = out.(i) in
            out.(i) <- (b, c + 1))
          xs;
        out
      end

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b
