(** Feed a schedule to a scheduler and record what happened.

    The driver is model-agnostic: it streams steps into any
    {!Dct_sched.Scheduler_intf.handle}, samples residency on a fixed
    cadence, drains blocking schedulers at end of input, and returns a
    summary used by the experiment harness. *)

type sample = {
  at_step : int;
  resident_txns : int;
  resident_arcs : int;
  active_txns : int;
}

type result = {
  name : string;
  steps : int;
  accepted : int;
  rejected : int;
  delayed : int;
  ignored : int;
  final : Dct_sched.Scheduler_intf.stats;
  peak_resident : int;
  peak_arcs : int;
  mean_resident : float;
  samples : sample list;  (** oldest first *)
  wall_seconds : float;
}

val run :
  ?sample_every:int ->
  ?observe:(int -> Dct_txn.Step.t -> Dct_sched.Scheduler_intf.outcome -> unit) ->
  ?tracer:Dct_telemetry.Tracer.t ->
  Dct_sched.Scheduler_intf.handle ->
  Dct_txn.Schedule.t ->
  result
(** [sample_every] defaults to 16 steps.  Residency peaks are tracked at
    every step regardless of the sampling cadence.  [observe] is called
    after every step with the 1-based step number, the step and its
    outcome — the [--selfcheck] invariant audit hangs off this hook;
    whatever it raises aborts the run.  [tracer] (default disabled)
    receives [Checkpoint_stats] events on the sampling cadence plus a
    final one after the drain, keeps the ["resident_txns"] /
    ["resident_arcs"] gauges current at every step (their high-water
    marks equal the peaks reported here), and is flushed before the
    driver returns. *)

val run_fresh :
  ?sample_every:int ->
  (unit -> Dct_sched.Scheduler_intf.handle) list ->
  Dct_txn.Schedule.t ->
  result list
(** Run the same schedule through several independently constructed
    schedulers. *)
