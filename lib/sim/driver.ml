module Si = Dct_sched.Scheduler_intf

type sample = {
  at_step : int;
  resident_txns : int;
  resident_arcs : int;
  active_txns : int;
}

type result = {
  name : string;
  steps : int;
  accepted : int;
  rejected : int;
  delayed : int;
  ignored : int;
  final : Si.stats;
  peak_resident : int;
  peak_arcs : int;
  mean_resident : float;
  samples : sample list;
  wall_seconds : float;
}

module Tracer = Dct_telemetry.Tracer

let snapshot_of at_step (st : Si.stats) =
  {
    Dct_telemetry.Event.at_step;
    resident_txns = st.Si.resident_txns;
    resident_arcs = st.Si.resident_arcs;
    active_txns = st.Si.active_txns;
    committed = st.Si.committed_total;
    aborted = st.Si.aborted_total;
    deleted = st.Si.deleted_total;
    delayed = st.Si.delayed_now;
    resident_bytes = st.Si.resident_bytes;
  }

let checkpoint tracer at_step st =
  Tracer.event tracer (fun () ->
      Dct_telemetry.Event.Checkpoint_stats (snapshot_of at_step st));
  Tracer.gauge tracer "resident_txns" st.Si.resident_txns;
  Tracer.gauge tracer "resident_arcs" st.Si.resident_arcs;
  Tracer.gauge tracer "graph.resident_bytes" st.Si.resident_bytes

let run ?(sample_every = 16) ?observe ?(tracer = Tracer.disabled)
    (handle : Si.handle) schedule =
  let accepted = ref 0
  and rejected = ref 0
  and delayed = ref 0
  and ignored = ref 0 in
  let steps = ref 0 in
  let peak_resident = ref 0
  and peak_arcs = ref 0 in
  let resident_sum = ref 0 in
  let samples = ref [] in
  let t0 = Sys.time () in
  List.iter
    (fun step ->
      incr steps;
      let outcome = handle.Si.step step in
      (match outcome with
      | Si.Accepted -> incr accepted
      | Si.Rejected -> incr rejected
      | Si.Delayed -> incr delayed
      | Si.Ignored -> incr ignored);
      (match observe with
      | Some f -> f !steps step outcome
      | None -> ());
      let st = handle.Si.stats () in
      peak_resident := max !peak_resident st.Si.resident_txns;
      peak_arcs := max !peak_arcs st.Si.resident_arcs;
      resident_sum := !resident_sum + st.Si.resident_txns;
      (* Gauges follow every step so their high-water marks equal the
         true residency peaks; checkpoint events follow the sampling
         cadence. *)
      Tracer.gauge tracer "resident_txns" st.Si.resident_txns;
      Tracer.gauge tracer "resident_arcs" st.Si.resident_arcs;
      if !steps mod sample_every = 0 then begin
        Tracer.event tracer (fun () ->
            Dct_telemetry.Event.Checkpoint_stats (snapshot_of !steps st));
        samples :=
          {
            at_step = !steps;
            resident_txns = st.Si.resident_txns;
            resident_arcs = st.Si.resident_arcs;
            active_txns = st.Si.active_txns;
          }
          :: !samples
      end)
    schedule;
  ignore (handle.Si.drain ());
  let wall_seconds = Sys.time () -. t0 in
  let final = handle.Si.stats () in
  checkpoint tracer !steps final;
  Tracer.flush tracer;
  {
    name = handle.Si.name;
    steps = !steps;
    accepted = !accepted;
    rejected = !rejected;
    delayed = !delayed;
    ignored = !ignored;
    final;
    peak_resident = !peak_resident;
    peak_arcs = !peak_arcs;
    mean_resident =
      (if !steps = 0 then 0.0
       else float_of_int !resident_sum /. float_of_int !steps);
    samples = List.rev !samples;
    wall_seconds;
  }

let run_fresh ?sample_every makers schedule =
  List.map (fun make -> run ?sample_every (make ()) schedule) makers
