(** Restart semantics on top of any scheduler.

    The schedulers abort transactions; real clients resubmit them.  This
    wrapper replays a basic-model schedule and, whenever a transaction is
    aborted (its step rejected, or a later step ignored because a
    blocking scheduler victimised it), re-enqueues the whole transaction
    under a fresh id after the current stream, up to a retry budget.

    This makes cross-scheduler comparisons fair on the axis that matters
    to clients: {e goodput} — how many of the originally submitted
    transactions eventually commit — and at what step-work cost. *)

type result = {
  name : string;
  original_txns : int;
  eventually_committed : int;  (** distinct originals that committed, any attempt *)
  gave_up : int;               (** originals that exhausted the retry budget *)
  attempts : int;              (** total transaction executions, retries included *)
  steps_submitted : int;       (** total step submissions, retries included *)
  peak_resident : int;
  wall_seconds : float;
}

val goodput : result -> float
(** [eventually_committed / original_txns]. *)

val run :
  ?max_attempts:int ->
  ?tracer:Dct_telemetry.Tracer.t ->
  Dct_sched.Scheduler_intf.handle ->
  Dct_txn.Schedule.t ->
  result
(** [max_attempts] counts executions per original transaction (default
    4: one initial try + three retries).  The schedule must be
    basic-model and well-formed; retried transactions keep their step
    sequence but run under fresh ids appended after the stream.
    [tracer] receives a [Restart] event (original id, attempt number)
    each time a transaction is re-enqueued. *)

val pp : Format.formatter -> result -> unit
