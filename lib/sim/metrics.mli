(** Small summary-statistics helpers for experiment reporting. *)

val mean : float list -> float
(** 0 on the empty list. *)

val mean_int : int list -> float

val percentile : float -> float list -> float
(** [percentile p xs]: nearest-rank on the sorted sample; 0 on the
    empty list.  [p] is clamped to [\[0, 100\]]; [p = 0] answers the
    minimum, [p = 100] the maximum, and on a singleton every [p]
    answers the single sample. *)

val max_int_list : int list -> int
(** 0 on the empty list. *)

val histogram : buckets:int -> float list -> (float * int) array
(** Equal-width buckets over the sample range: (lower bound, count).
    A constant (zero-range) sample yields a single degenerate bucket
    [(value, n)]; the empty list yields [buckets] empty buckets. *)

val ratio : int -> int -> float
(** [ratio a b] = a/b as a float, 0 when [b = 0]. *)
