module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Step = Dct_txn.Step
module S = Dct_txn.Schedule
module Gs = Dct_deletion.Graph_state
module C1 = Dct_deletion.Condition_c1
module C2 = Dct_deletion.Condition_c2
module C4 = Dct_deletion.Condition_c4
module Max = Dct_deletion.Max_deletion
module Witness = Dct_deletion.Witness
module Policy = Dct_deletion.Policy
module Rules = Dct_deletion.Rules
module Safety = Dct_deletion.Safety
module Reduced = Dct_deletion.Reduced_graph
module Gallery = Dct_deletion.Paper_gallery
module Si = Dct_sched.Scheduler_intf
module Cs = Dct_sched.Conflict_scheduler
module Gen = Dct_workload.Generator

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let prefix_state profile fraction =
  let schedule = Gen.basic profile in
  let prefix = take (List.length schedule * fraction / 100) schedule in
  let gs = Gs.create () in
  ignore (Rules.apply_all gs prefix);
  gs

let small_profile seed =
  {
    Gen.default with
    Gen.n_txns = 12;
    n_entities = 5;
    mpl = 4;
    reads_min = 1;
    reads_max = 3;
    seed;
  }

let yn b = if b then "yes" else "no"

(* ------------------------------------------------------------------ *)

let ex1_example1 ?(oc = stdout) () =
  Report.section ~oc "EX1  Example 1 / Figure 1 (deleting a single transaction)";
  let e = Gallery.example1 () in
  let row t name =
    [
      name;
      Dct_txn.Transaction.state_to_string (Gs.state e.Gallery.gs1 t);
      yn (Gs.is_completed e.gs1 t && C1.holds_fast e.gs1 t);
      yn (Gs.is_completed e.gs1 t && C1.noncurrent e.gs1 t);
    ]
  in
  Report.print_table ~oc
    ~headers:[ "txn"; "state"; "C1 (deletable)"; "noncurrent" ]
    [ row e.t1 "T1"; row e.t2 "T2"; row e.t3 "T3" ];
  let pair = C2.holds e.gs1 (Intset.of_list [ e.t2; e.t3 ]) in
  Printf.fprintf oc "{T2,T3} jointly deletable (C2): %s\n" (yn pair);
  let gs = Gs.copy e.gs1 in
  Reduced.delete gs e.t3;
  Printf.fprintf oc "after deleting T3, T2 deletable: %s   (paper: no)\n"
    (yn (C1.holds_fast gs e.t2))

let ex2_lemma1 ?(oc = stdout) () =
  Report.section ~oc "EX2  Lemma 1 (no active predecessor => forever safe)";
  let population = ref 0 and vacuous = ref 0 and oracle_checked = ref 0 in
  for seed = 1 to 30 do
    let gs = prefix_state (small_profile seed) 66 in
    Intset.iter
      (fun ti ->
        incr population;
        if Intset.is_empty (Dct_deletion.Tightness.active_tight_predecessors gs ti)
        then begin
          incr vacuous;
          assert (C1.holds_fast gs ti);
          if !oracle_checked < 10 then begin
            incr oracle_checked;
            assert (Safety.search ~depth:2 gs ~deleted:(Intset.singleton ti) = None)
          end
        end)
      (Gs.completed_txns gs)
  done;
  Report.print_table ~oc
    ~headers:[ "completed txns"; "no active tight pred"; "all satisfy C1"; "oracle spot-checks" ]
    [
      [
        string_of_int !population;
        string_of_int !vacuous;
        "yes (asserted)";
        Printf.sprintf "%d, no divergence" !oracle_checked;
      ];
    ]

let ex3_theorem1 ?(oc = stdout) () =
  Report.section ~oc "EX3  Theorem 1 (C1 necessary and sufficient)";
  let eligible_total = ref 0
  and eligible_oracle_ok = ref 0
  and stuck_total = ref 0
  and stuck_diverged = ref 0 in
  for seed = 1 to 25 do
    let gs = prefix_state (small_profile seed) 66 in
    let fresh_txn = 100_000 and fresh_entity = 100_000 in
    Intset.iter
      (fun ti ->
        if C1.holds_fast gs ti then begin
          incr eligible_total;
          if
            !eligible_oracle_ok < 15
            && Safety.search ~depth:2 gs ~deleted:(Intset.singleton ti) = None
          then incr eligible_oracle_ok
        end
        else begin
          incr stuck_total;
          match C1.adversarial_continuation gs ti ~fresh_txn ~fresh_entity with
          | Some r
            when Safety.replay gs ~deleted:(Intset.singleton ti) r <> None ->
              incr stuck_diverged
          | Some _ | None -> ()
        end)
      (Gs.completed_txns gs)
  done;
  Report.print_table ~oc
    ~headers:[ "direction"; "population"; "confirmed"; "expected" ]
    [
      [
        "sufficiency: C1 => no divergence (depth-2 oracle)";
        string_of_int !eligible_total;
        Printf.sprintf "%d/%d sampled" !eligible_oracle_ok
          (min 15 !eligible_total);
        "all";
      ];
      [
        "necessity: ~C1 => adversarial continuation diverges";
        string_of_int !stuck_total;
        Printf.sprintf "%d/%d" !stuck_diverged !stuck_total;
        "all";
      ];
    ]

let ex4_corollary1 ?(oc = stdout) () =
  Report.section ~oc "EX4  Corollary 1 (noncurrent transactions are deletable)";
  let completed = ref 0 and noncurrent = ref 0 and noncurrent_and_c1 = ref 0 in
  let eligible = ref 0 in
  for seed = 1 to 40 do
    let gs = prefix_state (small_profile seed) 66 in
    Intset.iter
      (fun ti ->
        incr completed;
        if C1.holds_fast gs ti then incr eligible;
        if C1.noncurrent gs ti then begin
          incr noncurrent;
          if C1.holds_fast gs ti then incr noncurrent_and_c1
        end)
      (Gs.completed_txns gs)
  done;
  Report.print_table ~oc
    ~headers:
      [ "completed"; "C1-eligible"; "noncurrent"; "noncurrent & C1"; "inclusion" ]
    [
      [
        string_of_int !completed;
        string_of_int !eligible;
        string_of_int !noncurrent;
        string_of_int !noncurrent_and_c1;
        (if !noncurrent = !noncurrent_and_c1 then "noncurrent ⊆ C1 ✓"
         else "VIOLATED");
      ];
    ]

let ex5_set_cover ?(oc = stdout) () =
  Report.section ~oc
    "EX5  Theorem 5 (maximum deletion = m - minimum cover; NP-complete)";
  let instances =
    [
      ("3 pairwise", 3, [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]);
      ("nested", 4, [ [ 0 ]; [ 0; 1 ]; [ 0; 1; 2 ]; [ 0; 1; 2; 3 ] ]);
      ("2 halves + traps", 8,
       [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ]; [ 0; 1; 4; 5; 2 ]; [ 3; 6; 7 ] ]);
      ("singletons + unions", 5,
       [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ]; [ 0; 1; 2 ]; [ 3; 4 ] ]);
      ("disjoint blocks", 6, [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 0; 3 ]; [ 1; 4 ]; [ 2; 5 ] ]);
    ]
  in
  let rows =
    List.map
      (fun (name, universe, sets) ->
        let inst = Dct_npc.Set_cover.make ~universe sets in
        let m = List.length sets in
        let k = List.length (Dct_npc.Set_cover.exact_min inst) in
        let predicted = m - k in
        let gs, _ = Dct_npc.Reduction_cover.graph_state inst in
        let measured = Max.exact_size gs in
        let greedy = Intset.cardinal (Max.greedy gs) in
        [
          name;
          string_of_int m;
          string_of_int universe;
          string_of_int k;
          string_of_int predicted;
          string_of_int measured;
          string_of_int greedy;
          yn (predicted = measured);
        ])
      instances
  in
  Report.print_table ~oc
    ~headers:
      [ "instance"; "m"; "|X|"; "min cover"; "m-k"; "exact max del";
        "greedy"; "match" ]
    rows

let ex6_residency_bound ?(oc = stdout) () =
  Report.section ~oc "EX6  Irreducible residency bound (completed <= a * e)";
  let rows = ref [] in
  List.iter
    (fun long_readers ->
      List.iter
        (fun n_entities ->
          let profile =
            {
              Gen.default with
              Gen.n_txns = 150;
              n_entities;
              mpl = 4;
              skew = "zipf:0.9";
              long_readers;
              long_reader_step = 0.1;
              seed = 97;
            }
          in
          let sched = Cs.create ~policy:Policy.Greedy_c1 () in
          let max_completed = ref 0 and max_bound = ref 0 and ok = ref true in
          List.iter
            (fun step ->
              let outcome = Cs.step sched step in
              (* The a·e bound governs irreducible graphs; the greedy
                 policy leaves one behind exactly after each accepted
                 step (aborts remove an active without re-running the
                 policy, so those transients are out of scope). *)
              if outcome = Si.Accepted then begin
                let gs = Cs.graph_state sched in
                let completed = Intset.cardinal (Gs.completed_txns gs) in
                let actives = Intset.cardinal (Gs.active_txns gs) in
                let entities = Intset.cardinal (Gs.entities gs) in
                let bound = Witness.residency_bound ~actives ~entities in
                if completed > !max_completed then begin
                  max_completed := completed;
                  max_bound := bound
                end;
                if completed > bound then ok := false
              end)
            (Gen.basic profile);
          rows :=
            [
              string_of_int long_readers;
              string_of_int n_entities;
              string_of_int !max_completed;
              string_of_int !max_bound;
              yn !ok;
            ]
            :: !rows)
        [ 4; 8; 16 ])
    [ 1; 2; 4 ];
  Report.print_table ~oc
    ~headers:
      [ "long readers"; "entities"; "peak completed resident";
        "a*e at that peak"; "always within bound" ]
    (List.rev !rows)

let ex7_three_sat ?(oc = stdout) () =
  Report.section ~oc
    "EX7  Theorem 6 / Figure 3 (C3 deletability <=> UNSAT; NP-complete)";
  let formulas =
    [
      ("one clause", 3, [ [ 1; 2; 3 ] ]);
      ("two opposite", 3, [ [ 1; 2; 3 ]; [ -1; -2; -3 ] ]);
      ( "all sign patterns (unsat)", 3,
        [
          [ 1; 2; 3 ]; [ 1; 2; -3 ]; [ 1; -2; 3 ]; [ 1; -2; -3 ];
          [ -1; 2; 3 ]; [ -1; 2; -3 ]; [ -1; -2; 3 ]; [ -1; -2; -3 ];
        ] );
      ("4 vars mixed", 4,
       [ [ 1; 2; 3 ]; [ -1; -2; 4 ]; [ -3; -4; 1 ]; [ 2; -3; -4 ] ]);
    ]
  in
  let rows =
    List.map
      (fun (name, nvars, clauses) ->
        let f = Dct_npc.Sat.three_sat ~nvars clauses in
        let sat = Dct_npc.Sat.is_satisfiable f in
        let t0 = Sys.time () in
        let deletable = Dct_npc.Reduction_sat.c_deletable f in
        let dt = (Sys.time () -. t0) *. 1000.0 in
        [
          name;
          string_of_int nvars;
          string_of_int (List.length clauses);
          yn sat;
          yn deletable;
          yn (deletable = not sat);
          Printf.sprintf "%.1f" dt;
        ])
      formulas
  in
  Report.print_table ~oc
    ~headers:
      [ "formula"; "vars"; "clauses"; "SAT (dpll)"; "C deletable (C3)";
        "agree"; "C3 ms" ]
    rows

let ex8_example2 ?(oc = stdout) () =
  Report.section ~oc "EX8  Example 2 / Figure 4 (condition C4, predeclared)";
  let e = Gallery.example2 () in
  Report.print_table ~oc
    ~headers:[ "txn"; "state"; "C4 (deletable)"; "clause used" ]
    [
      [ "A"; "active"; "-"; "-" ];
      [ "B"; "committed"; yn (C4.holds e.Gallery.gs2 e.b); "none apply" ];
      [
        "C";
        "committed";
        yn (C4.holds e.gs2 e.c);
        (if C4.behaves_as_completed e.gs2 e.a ~exclude:e.c then
           "(2): A behaves as completed"
         else "(1)");
      ];
    ]

let ex9_policy_series ?(oc = stdout) () =
  Report.section ~oc
    "EX9  Graph residency over time, by deletion policy (the paper's \
     motivation)";
  let profile =
    {
      Gen.default with
      Gen.n_txns = 400;
      n_entities = 32;
      mpl = 8;
      skew = "zipf:0.9";
      long_readers = 1;
      long_reader_step = 0.05;
      seed = 11;
    }
  in
  let schedule = Gen.basic profile in
  let policies =
    [
      Policy.No_deletion;
      Policy.Noncurrent;
      Policy.Greedy_c1;
      Policy.Budget (48, Policy.Greedy_c1);
    ]
  in
  let runs =
    List.map
      (fun policy ->
        (Policy.name policy, Driver.run ~sample_every:200 (Cs.handle ~policy ()) schedule))
      policies
  in
  let sample_points =
    match runs with
    | (_, first) :: _ -> List.map (fun s -> s.Driver.at_step) first.Driver.samples
    | [] -> []
  in
  let rows =
    List.map
      (fun at_step ->
        string_of_int at_step
        :: List.map
             (fun (_, r) ->
               match
                 List.find_opt (fun s -> s.Driver.at_step = at_step) r.Driver.samples
               with
               | Some s -> string_of_int s.Driver.resident_txns
               | None -> "-")
             runs)
      sample_points
  in
  Report.print_series ~oc ~title:"resident transactions at step N:"
    ~headers:("step" :: List.map fst runs)
    rows;
  Printf.fprintf oc "\npeak / mean residency, deletions:\n";
  Report.print_table ~oc
    ~headers:[ "policy"; "peak"; "mean"; "deleted"; "aborted" ]
    (List.map
       (fun (name, r) ->
         [
           name;
           string_of_int r.Driver.peak_resident;
           Report.fmt_float r.Driver.mean_resident;
           string_of_int r.Driver.final.Si.deleted_total;
           string_of_int r.Driver.final.Si.aborted_total;
         ])
       runs);
  (* The strawman: commit-time deletion accepts non-CSR schedules. *)
  let violations = ref 0 and trials = 12 in
  for seed = 1 to trials do
    let p = { (small_profile seed) with Gen.n_txns = 30; mpl = 6 } in
    let schedule = Gen.basic p in
    let gs = Gs.create () in
    let all_accepted =
      List.for_all
        (fun s ->
          match Rules.apply gs s with
          | Rules.Accepted ->
              ignore (Policy.run Policy.Unsafe_commit_time gs);
              true
          | Rules.Rejected -> false
          | Rules.Ignored -> true)
        schedule
    in
    if all_accepted && not (S.is_csr schedule) then incr violations
  done;
  Printf.fprintf oc
    "\ncommit-time deletion strawman: accepted a non-CSR schedule in %d/%d \
     random workloads\n"
    !violations trials

let ex10_scheduler_comparison ?(oc = stdout) () =
  Report.section ~oc "EX10  Scheduler comparison (conflict-graph vs baselines)";
  let profile =
    {
      Gen.default with
      Gen.n_txns = 300;
      n_entities = 24;
      mpl = 8;
      skew = "zipf:0.9";
      long_readers = 1;
      long_reader_step = 0.05;
      seed = 23;
    }
  in
  let schedule = Gen.basic profile in
  let results =
    Driver.run_fresh
      [
        (fun () -> Cs.handle ~policy:Policy.No_deletion ());
        (fun () -> Cs.handle ~policy:Policy.Noncurrent ());
        (fun () -> Cs.handle ~policy:Policy.Greedy_c1 ());
        (fun () -> Cs.handle ~policy:(Policy.Budget (48, Policy.Greedy_c1)) ());
        (fun () -> Dct_sched.Certifier.handle ());
        (fun () -> Dct_sched.Lock_2pl.handle ());
        (fun () -> Dct_sched.Timestamp_order.handle ());
        (fun () -> Dct_sched.Mv_scheduler.handle ~vacuum:true ());
      ]
      schedule
  in
  Report.print_table ~oc
    ~headers:
      [ "scheduler"; "committed"; "aborted"; "peak resident"; "mean resident";
        "delayed"; "ms" ]
    (List.map
       (fun r ->
         [
           r.Driver.name;
           string_of_int r.Driver.final.Si.committed_total;
           string_of_int r.Driver.final.Si.aborted_total;
           string_of_int r.Driver.peak_resident;
           Report.fmt_float r.Driver.mean_resident;
           string_of_int r.Driver.delayed;
           Printf.sprintf "%.1f" (r.Driver.wall_seconds *. 1000.0);
         ])
       results)

let ex11_complexity_table ?(oc = stdout) () =
  Report.section ~oc
    "EX11  Cost of the checks as the graph grows (medians of wall-clock)";
  let rows =
    List.map
      (fun n_txns ->
        let profile =
          {
            Gen.default with
            Gen.n_txns;
            n_entities = 32;
            mpl = 8;
            long_readers = 2;
            long_reader_step = 0.15;
            seed = 51;
          }
        in
        let gs = prefix_state profile 90 in
        let completed = Gs.completed_txns gs in
        let time_it f =
          let t0 = Sys.time () in
          f ();
          (Sys.time () -. t0) *. 1000.0
        in
        let c1_all =
          time_it (fun () -> Intset.iter (fun ti -> ignore (C1.holds gs ti)) completed)
        in
        let eligible = C1.eligible gs in
        let c2_whole =
          time_it (fun () -> ignore (C2.holds gs eligible))
        in
        let greedy_ms = time_it (fun () -> ignore (Max.greedy gs)) in
        [
          string_of_int (Gs.txn_count gs);
          string_of_int (Digraph.arc_count (Gs.graph gs));
          string_of_int (Intset.cardinal completed);
          Printf.sprintf "%.2f" c1_all;
          Printf.sprintf "%.2f" c2_whole;
          Printf.sprintf "%.2f" greedy_ms;
        ])
      [ 50; 100; 200; 400 ]
  in
  Report.print_table ~oc
    ~headers:
      [ "resident txns"; "arcs"; "completed"; "C1 all (ms)";
        "C2 eligible (ms)"; "greedy plan (ms)" ]
    rows;
  Printf.fprintf oc
    "(statistically robust timings: dune exec bench/main.exe -- bechamel)\n"

let ex12_log_truncation ?(oc = stdout) () =
  Report.section ~oc
    "EX12  Log truncation driven by deletion (the modern reading)";
  let profile =
    {
      Gen.default with
      Gen.n_txns = 300;
      n_entities = 24;
      mpl = 8;
      skew = "zipf:0.9";
      long_readers = 1;
      long_reader_step = 0.05;
      seed = 61;
    }
  in
  let schedule = Gen.basic profile in
  let rows =
    List.map
      (fun policy ->
        let wal = Dct_kv.Wal.create () in
        let sched = Cs.create ~policy ~wal () in
        let peak = ref 0 in
        List.iter
          (fun step ->
            ignore (Cs.step sched step);
            peak := max !peak (Dct_kv.Wal.length wal))
          schedule;
        [
          Policy.name policy;
          string_of_int (Dct_kv.Wal.total_appended wal);
          string_of_int !peak;
          string_of_int (Dct_kv.Wal.length wal);
          string_of_int (Dct_kv.Wal.truncated wal);
          string_of_int (Dct_kv.Wal.low_water_mark wal);
        ])
      [
        Policy.No_deletion;
        Policy.Noncurrent;
        Policy.Greedy_c1;
        Policy.Budget (48, Policy.Greedy_c1);
      ]
  in
  Report.print_table ~oc
    ~headers:
      [ "policy"; "records appended"; "peak retained"; "final retained";
        "truncated"; "low-water LSN" ]
    rows

let ex13_version_residency ?(oc = stdout) () =
  Report.section ~oc
    "EX13  Multiversion residency: vacuum vs long readers (the version      dimension of the same problem)";
  let rows = ref [] in
  List.iter
    (fun long_readers ->
      List.iter
        (fun vacuum ->
          let profile =
            {
              Gen.default with
              Gen.n_txns = 250;
              n_entities = 16;
              mpl = 8;
              skew = "zipf:1.0";
              long_readers;
              long_reader_step = 0.05;
              seed = 71;
            }
          in
          let sched = Dct_sched.Mv_scheduler.create ~vacuum () in
          let peak = ref 0 in
          List.iter
            (fun step ->
              ignore (Dct_sched.Mv_scheduler.step sched step);
              peak :=
                max !peak
                  (Dct_kv.Mv_store.total_versions
                     (Dct_sched.Mv_scheduler.store sched)))
            (Gen.basic profile);
          let st = Dct_sched.Mv_scheduler.stats sched in
          rows :=
            [
              (if vacuum then "vacuum" else "none");
              string_of_int long_readers;
              string_of_int st.Si.committed_total;
              string_of_int st.Si.aborted_total;
              string_of_int !peak;
              string_of_int
                (Dct_kv.Mv_store.total_versions
                   (Dct_sched.Mv_scheduler.store sched));
              string_of_int (Dct_sched.Mv_scheduler.versions_reclaimed sched);
            ]
            :: !rows)
        [ false; true ])
    [ 0; 2 ];
  Report.print_table ~oc
    ~headers:
      [ "gc"; "long readers"; "committed"; "aborted"; "peak versions";
        "final versions"; "reclaimed" ]
    (List.rev !rows)

let ex14_goodput_with_restarts ?(oc = stdout) () =
  Report.section ~oc
    "EX14  Goodput under restart semantics (aborted txns retry, <= 4 attempts)";
  let profile =
    {
      Gen.default with
      Gen.n_txns = 200;
      n_entities = 24;
      mpl = 8;
      skew = "zipf:0.9";
      long_readers = 1;
      long_reader_step = 0.05;
      seed = 29;
    }
  in
  let schedule = Gen.basic profile in
  let rows =
    List.map
      (fun make ->
        let r = Restart.run (make ()) schedule in
        [
          r.Restart.name;
          Printf.sprintf "%d/%d" r.Restart.eventually_committed
            r.Restart.original_txns;
          Printf.sprintf "%.0f%%" (100.0 *. Restart.goodput r);
          string_of_int r.Restart.gave_up;
          string_of_int r.Restart.attempts;
          string_of_int r.Restart.steps_submitted;
          string_of_int r.Restart.peak_resident;
        ])
      [
        (fun () -> Cs.handle ~policy:Policy.Greedy_c1 ());
        (fun () -> Cs.handle ~policy:Policy.No_deletion ());
        (fun () -> Dct_sched.Certifier.handle ());
        (fun () -> Dct_sched.Lock_2pl.handle ());
        (fun () -> Dct_sched.Timestamp_order.handle ());
        (fun () -> Dct_sched.Mv_scheduler.handle ~vacuum:true ());
      ]
  in
  Report.print_table ~oc
    ~headers:
      [ "scheduler"; "committed"; "goodput"; "gave up"; "attempts";
        "steps"; "peak resident" ]
    rows

let ex15_sensitivity ?(oc = stdout) () =
  Report.section ~oc
    "EX15  Sensitivity: when does deletion help most? (greedy C1 vs none)";
  let base =
    {
      Gen.default with
      Gen.n_txns = 250;
      n_entities = 32;
      mpl = 8;
      skew = "zipf:0.9";
      long_readers = 0;
      seed = 83;
    }
  in
  let cells =
    Sweep.vary ~base
      [
        ("uniform", fun p -> { p with Gen.skew = "uniform" });
        ("zipf 0.5", fun p -> { p with Gen.skew = "zipf:0.5" });
        ("zipf 0.9", fun p -> p);
        ("zipf 1.2", fun p -> { p with Gen.skew = "zipf:1.2" });
        ("mpl 2", fun p -> { p with Gen.mpl = 2 });
        ("mpl 16", fun p -> { p with Gen.mpl = 16 });
        ("few entities (8)", fun p -> { p with Gen.n_entities = 8 });
        ("many entities (128)", fun p -> { p with Gen.n_entities = 128 });
        ("1 long reader", fun p -> { p with Gen.long_readers = 1 });
        ("4 long readers", fun p -> { p with Gen.long_readers = 4 });
      ]
  in
  let with_gc =
    Sweep.grid ~make:(fun () -> Cs.handle ~policy:Policy.Greedy_c1 ()) ~cells ()
  in
  let without =
    Sweep.grid ~make:(fun () -> Cs.handle ~policy:Policy.No_deletion ()) ~cells ()
  in
  let rows =
    List.map2
      (fun (gc : Sweep.cell) (no : Sweep.cell) ->
        [
          gc.Sweep.label;
          string_of_int no.Sweep.result.Driver.peak_resident;
          string_of_int gc.Sweep.result.Driver.peak_resident;
          Report.fmt_ratio
            (Metrics.ratio no.Sweep.result.Driver.peak_resident
               (max 1 gc.Sweep.result.Driver.peak_resident));
          string_of_int gc.Sweep.result.Driver.final.Si.aborted_total;
          Report.fmt_float gc.Sweep.result.Driver.mean_resident;
        ])
      with_gc without
  in
  Report.print_table ~oc
    ~headers:
      [ "workload"; "peak (none)"; "peak (greedy)"; "reduction";
        "aborts"; "mean resident (greedy)" ]
    rows

let run_all ?(oc = stdout) () =
  ex1_example1 ~oc ();
  ex2_lemma1 ~oc ();
  ex3_theorem1 ~oc ();
  ex4_corollary1 ~oc ();
  ex5_set_cover ~oc ();
  ex6_residency_bound ~oc ();
  ex7_three_sat ~oc ();
  ex8_example2 ~oc ();
  ex9_policy_series ~oc ();
  ex10_scheduler_comparison ~oc ();
  ex11_complexity_table ~oc ();
  ex12_log_truncation ~oc ();
  ex13_version_residency ~oc ();
  ex14_goodput_with_restarts ~oc ();
  ex15_sensitivity ~oc ()
