module Si = Dct_sched.Scheduler_intf
module Step = Dct_txn.Step

type result = {
  name : string;
  original_txns : int;
  eventually_committed : int;
  gave_up : int;
  attempts : int;
  steps_submitted : int;
  peak_resident : int;
  wall_seconds : float;
}

let goodput r =
  if r.original_txns = 0 then 0.0
  else float_of_int r.eventually_committed /. float_of_int r.original_txns

(* Retried copies live far above the original id range. *)
let retry_stride = 1_000_000

let remap_step offset = function
  | Step.Begin t -> Step.Begin (t + offset)
  | Step.Read (t, x) -> Step.Read (t + offset, x)
  | Step.Write (t, xs) -> Step.Write (t + offset, xs)
  | Step.Begin_declared (t, a) -> Step.Begin_declared (t + offset, a)
  | Step.Write_one (t, x) -> Step.Write_one (t + offset, x)
  | Step.Finish t -> Step.Finish (t + offset)

let origin_of id = id mod retry_stride

let run ?(max_attempts = 4) ?(tracer = Dct_telemetry.Tracer.disabled)
    (handle : Si.handle) schedule =
  let t0 = Sys.time () in
  (* Full step list per original transaction, in program order. *)
  let steps_of : (int, Step.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let t = Step.txn s in
      Hashtbl.replace steps_of t
        (s :: Option.value ~default:[] (Hashtbl.find_opt steps_of t)))
    schedule;
  Hashtbl.iter (fun t l -> Hashtbl.replace steps_of t (List.rev l)) steps_of;
  let original_txns = Hashtbl.length steps_of in
  let attempts_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let committed : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let gave_up = ref 0 in
  let attempts = ref original_txns in
  let submitted = ref 0 in
  let peak = ref 0 in
  let submit s =
    incr submitted;
    ignore (handle.Si.step s);
    peak := max !peak (handle.Si.stats ()).Si.resident_txns
  in
  (* Run one wave of ids, then classify each id after the drain: a
     transaction whose id was never aborted has committed (the schedule
     is complete and well-formed, so nothing stays active). *)
  let classify ids =
    List.filter_map
      (fun id ->
        if handle.Si.aborted_txn id then begin
          let origin = origin_of id in
          let a = 1 + Hashtbl.find attempts_of origin in
          if a <= max_attempts then begin
            Hashtbl.replace attempts_of origin a;
            incr attempts;
            Dct_telemetry.Tracer.event tracer (fun () ->
                Dct_telemetry.Event.Restart { txn = origin; attempt = a });
            Dct_telemetry.Tracer.incr tracer "restart.scheduled";
            Some origin (* needs another attempt *)
          end
          else begin
            incr gave_up;
            None
          end
        end
        else begin
          Hashtbl.replace committed (origin_of id) ();
          None
        end)
      ids
  in
  (* Wave 0: the given schedule verbatim. *)
  Hashtbl.iter (fun t _ -> Hashtbl.replace attempts_of t 1) steps_of;
  List.iter submit schedule;
  ignore (handle.Si.drain ());
  let wave0 = Hashtbl.fold (fun t _ acc -> t :: acc) steps_of [] in
  let to_retry = ref (classify wave0) in
  while !to_retry <> [] do
    (* Interleave this wave's transactions round-robin so retries still
       contend with each other. *)
    let streams =
      List.map
        (fun origin ->
          let a = Hashtbl.find attempts_of origin in
          let offset = (a - 1) * retry_stride in
          ( origin + offset,
            ref (List.map (remap_step offset) (Hashtbl.find steps_of origin)) ))
        !to_retry
    in
    (* Bounded retry concurrency: at most 8 retried transactions in
       flight at once, round-robin inside each chunk. *)
    let rec chunks = function
      | [] -> []
      | l ->
          let rec split n acc = function
            | rest when n = 0 -> (List.rev acc, rest)
            | [] -> (List.rev acc, [])
            | x :: tl -> split (n - 1) (x :: acc) tl
          in
          let head, rest = split 8 [] l in
          head :: chunks rest
    in
    List.iter
      (fun chunk ->
        let queue = Queue.create () in
        List.iter (fun s -> Queue.push s queue) chunk;
        while not (Queue.is_empty queue) do
          let (_, steps) as slot = Queue.pop queue in
          match !steps with
          | [] -> ()
          | s :: rest ->
              submit s;
              steps := rest;
              if rest <> [] then Queue.push slot queue
        done)
      (chunks streams);
    ignore (handle.Si.drain ());
    to_retry := classify (List.map fst streams)
  done;
  {
    name = handle.Si.name;
    original_txns;
    eventually_committed = Hashtbl.length committed;
    gave_up = !gave_up;
    attempts = !attempts;
    steps_submitted = !submitted;
    peak_resident = !peak;
    wall_seconds = Sys.time () -. t0;
  }

let pp ppf r =
  Format.fprintf ppf
    "%s: %d/%d committed (%.0f%%), %d gave up, %d attempts, %d steps"
    r.name r.eventually_committed r.original_txns (100.0 *. goodput r)
    r.gave_up r.attempts r.steps_submitted
