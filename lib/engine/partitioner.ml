type strategy = Hash | Range of int

type t = { strategy : strategy; shards : int }

let check_shards shards =
  if shards <= 0 then
    invalid_arg (Printf.sprintf "Partitioner: shards must be positive, got %d" shards)

let hash ~shards =
  check_shards shards;
  { strategy = Hash; shards }

let range ~shards ~span =
  check_shards shards;
  if span <= 0 then
    invalid_arg (Printf.sprintf "Partitioner: span must be positive, got %d" span);
  { strategy = Range span; shards }

let shards t = t.shards

(* [e mod n] folded to [0, n): OCaml's mod keeps the dividend's sign. *)
let positive_mod e n =
  let m = e mod n in
  if m < 0 then m + n else m

let shard_of t entity =
  match t.strategy with
  | Hash -> positive_mod entity t.shards
  | Range span -> positive_mod (entity / span) t.shards

let spec t =
  match t.strategy with
  | Hash -> "hash"
  | Range span -> Printf.sprintf "range:%d" span

let of_string s ~shards =
  if shards <= 0 then
    Error (Printf.sprintf "shards must be positive, got %d" shards)
  else
    match String.lowercase_ascii s with
    | "hash" | "mod" -> Ok { strategy = Hash; shards }
    | s when String.length s > 6 && String.sub s 0 6 = "range:" -> (
        let rest = String.sub s 6 (String.length s - 6) in
        match int_of_string_opt rest with
        | Some span when span > 0 -> Ok { strategy = Range span; shards }
        | Some span -> Error (Printf.sprintf "range span must be positive, got %d" span)
        | None -> Error (Printf.sprintf "bad range span %S" rest))
    | _ -> Error (Printf.sprintf "unknown partitioner %S (expected hash | range:<span>)" s)

let pp ppf t = Format.fprintf ppf "%s/%d" (spec t) t.shards
