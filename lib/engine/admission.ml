type t = {
  batch : int;
  queue : Dct_txn.Step.t Queue.t;
  mutable submitted : int;
  mutable full_batches : int;
  mutable ticks : int;
}

let create ~batch =
  if batch <= 0 then
    invalid_arg (Printf.sprintf "Admission.create: batch must be positive, got %d" batch);
  { batch; queue = Queue.create (); submitted = 0; full_batches = 0; ticks = 0 }

let batch_size t = t.batch

let drain t =
  let out = ref [] in
  while not (Queue.is_empty t.queue) do
    out := Queue.pop t.queue :: !out
  done;
  List.rev !out

let submit t step =
  t.submitted <- t.submitted + 1;
  Queue.push step t.queue;
  if Queue.length t.queue >= t.batch then begin
    t.full_batches <- t.full_batches + 1;
    Some (drain t)
  end
  else None

let tick t =
  if Queue.is_empty t.queue then []
  else begin
    t.ticks <- t.ticks + 1;
    drain t
  end

let pending t = Queue.length t.queue
let submitted t = t.submitted
let full_batches t = t.full_batches
let ticks t = t.ticks
