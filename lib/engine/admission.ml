type t = {
  batch : int;
  mutex : Mutex.t;
  queue : Dct_txn.Step.t Queue.t;
  mutable submitted : int;
  mutable full_batches : int;
  mutable ticks : int;
  mutable posted_batches : int;
}

let create ~batch =
  if batch <= 0 then
    invalid_arg (Printf.sprintf "Admission.create: batch must be positive, got %d" batch);
  {
    batch;
    mutex = Mutex.create ();
    queue = Queue.create ();
    submitted = 0;
    full_batches = 0;
    ticks = 0;
    posted_batches = 0;
  }

let batch_size t = t.batch

(* Callers hold the mutex. *)
let drain_locked t =
  let out = ref [] in
  while not (Queue.is_empty t.queue) do
    out := Queue.pop t.queue :: !out
  done;
  List.rev !out

let submit t step =
  Mutex.protect t.mutex (fun () ->
      t.submitted <- t.submitted + 1;
      Queue.push step t.queue;
      if Queue.length t.queue >= t.batch then begin
        t.full_batches <- t.full_batches + 1;
        Some (drain_locked t)
      end
      else None)

let post t step =
  Mutex.protect t.mutex (fun () ->
      t.submitted <- t.submitted + 1;
      Queue.push step t.queue)

let post_batch t steps =
  if steps <> [] then
    Mutex.protect t.mutex (fun () ->
        List.iter (fun s -> Queue.push s t.queue) steps;
        t.submitted <- t.submitted + List.length steps;
        t.posted_batches <- t.posted_batches + 1)

let take_batch t =
  Mutex.protect t.mutex (fun () ->
      if Queue.length t.queue < t.batch then None
      else begin
        t.full_batches <- t.full_batches + 1;
        let out = ref [] in
        for _ = 1 to t.batch do
          out := Queue.pop t.queue :: !out
        done;
        Some (List.rev !out)
      end)

let tick t =
  Mutex.protect t.mutex (fun () ->
      if Queue.is_empty t.queue then []
      else begin
        t.ticks <- t.ticks + 1;
        drain_locked t
      end)

let pending t = Mutex.protect t.mutex (fun () -> Queue.length t.queue)
let submitted t = Mutex.protect t.mutex (fun () -> t.submitted)
let full_batches t = Mutex.protect t.mutex (fun () -> t.full_batches)
let ticks t = Mutex.protect t.mutex (fun () -> t.ticks)
let posted_batches t = Mutex.protect t.mutex (fun () -> t.posted_batches)
