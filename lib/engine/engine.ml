module Intset = Dct_graph.Intset
module Gs = Dct_deletion.Graph_state
module Policy = Dct_deletion.Policy
module Rules = Dct_deletion.Rules
module Step = Dct_txn.Step
module Store = Dct_kv.Store
module Si = Dct_sched.Scheduler_intf
module Cs = Dct_sched.Conflict_scheduler
module Tracer = Dct_telemetry.Tracer
module Event = Dct_telemetry.Event

type config = {
  shards : int;
  batch : int;
  policy : Policy.t;
  partitioner : Partitioner.t;
  oracle : Dct_graph.Cycle_oracle.backend option;
  tracer : Tracer.t;
  gc_index : Dct_deletion.Deletability_index.mode option;
}

let config ?(policy = Policy.Greedy_c1) ?partitioner ?oracle
    ?(tracer = Tracer.disabled) ?gc_index ~shards ~batch () =
  if shards <= 0 then invalid_arg "Dct_engine.config: shards must be positive";
  if batch <= 0 then invalid_arg "Dct_engine.config: batch must be positive";
  let partitioner =
    match partitioner with
    | Some p ->
        if Partitioner.shards p <> shards then
          invalid_arg "Dct_engine.config: partitioner shard count mismatch";
        p
    | None -> Partitioner.hash ~shards
  in
  { shards; batch; policy; partitioner; oracle; tracer; gc_index }

type t = {
  cfg : config;
  coordinator : Coordinator.t;
  shards : Shard.t array;
  admission : Admission.t;
  (* txn -> shards it has ever been hosted on; entries die with the
     transaction (abort or global deletion), so the table's size is
     bounded by the coordinator's residency. *)
  hosting : (int, Intset.t) Hashtbl.t;
  mutable steps : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable ignored : int;
  mutable committed : int;
  mutable aborted : int;
  mutable cross_shard_arcs : int;
  mutable local_arcs : int;
  mutable distributed_txns : int;
  mutable on_step : (int -> Step.t -> Si.outcome -> unit) option;
}

let create cfg =
  {
    cfg;
    coordinator =
      Coordinator.create ~policy:cfg.policy ?oracle:cfg.oracle
        ~tracer:cfg.tracer ?gc_index:cfg.gc_index ();
    shards =
      Array.init cfg.shards (fun id ->
          Shard.create ~id ~policy:cfg.policy ?gc_index:cfg.gc_index ());
    admission = Admission.create ~batch:cfg.batch;
    hosting = Hashtbl.create 64;
    steps = 0;
    accepted = 0;
    rejected = 0;
    ignored = 0;
    committed = 0;
    aborted = 0;
    cross_shard_arcs = 0;
    local_arcs = 0;
    distributed_txns = 0;
    on_step = None;
  }

let steps_processed t = t.steps
let shard_count t = Array.length t.shards
let shard t i = t.shards.(i)
let coordinator t = t.coordinator
let partitioner t = t.cfg.partitioner

let shard_residents t =
  Array.map (fun sh -> Gs.txn_count (Shard.graph_state sh)) t.shards

let hosting_of t txn =
  try Hashtbl.find t.hosting txn with Not_found -> Intset.empty

let note_hosting t txn shard_id =
  let prev = hosting_of t txn in
  if not (Intset.mem shard_id prev) then begin
    let now = Intset.add shard_id prev in
    Hashtbl.replace t.hosting txn now;
    if Intset.cardinal now = 2 then
      t.distributed_txns <- t.distributed_txns + 1
  end

(* An arc is cross-shard when one of its endpoints is hosted on more
   than one shard: the conflict it records is then only one slice of
   that transaction's footprint, and no single shard graph carries the
   transaction's full in/out neighbourhood — the reason decisions
   belong to the coordinator. *)
let classify_arcs t arcs =
  List.iter
    (fun (src, dst) ->
      let spread = Intset.union (hosting_of t src) (hosting_of t dst) in
      if Intset.cardinal spread > 1 then
        t.cross_shard_arcs <- t.cross_shard_arcs + 1
      else t.local_arcs <- t.local_arcs + 1)
    arcs

let owner t entity = Partitioner.shard_of t.cfg.partitioner entity

let apply_accepted t ~index step =
  match step with
  | Step.Begin _ | Step.Begin_declared _ ->
      (* Hosting is lazy: a shard learns of a transaction on its first
         access to one of the shard's entities. *)
      ()
  | Step.Read (txn, entity) ->
      let s = owner t entity in
      let sh = t.shards.(s) in
      Shard.apply_read sh ~txn ~entity;
      note_hosting t txn s;
      classify_arcs t (Shard.last_arcs sh)
  | Step.Write (txn, entities) ->
      (* Group the write set by owning shard, preserving entity order
         within each shard.  The slices are disjoint, so cross-shard
         application order is irrelevant to the data. *)
      let by_shard = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (fun e ->
          let s = owner t e in
          match Hashtbl.find_opt by_shard s with
          | Some slice -> slice := e :: !slice
          | None ->
              Hashtbl.add by_shard s (ref [ e ]);
              order := s :: !order)
        entities;
      List.iter
        (fun s ->
          let slice = List.rev !(Hashtbl.find by_shard s) in
          let sh = t.shards.(s) in
          Shard.apply_write sh ~txn ~entities:slice ~value:index;
          note_hosting t txn s;
          classify_arcs t (Shard.last_arcs sh))
        (List.rev !order);
      (* The final write commits the transaction globally; every shard
         that ever hosted it (e.g. for reads alone) must mark its copy
         committed, or local GC could never touch it. *)
      t.committed <- t.committed + 1;
      Intset.iter (fun s -> Shard.complete t.shards.(s) txn) (hosting_of t txn)
  | Step.Write_one _ | Step.Finish _ ->
      invalid_arg "Dct_engine: basic-model steps only (Begin/Read/final Write)"

let broadcast_deletions t deleted =
  if not (Intset.is_empty deleted) then begin
    Array.iter (fun sh -> ignore (Shard.apply_global_deletions sh deleted)) t.shards;
    Intset.iter (fun txn -> Hashtbl.remove t.hosting txn) deleted
  end

let reject t step =
  t.rejected <- t.rejected + 1;
  t.aborted <- t.aborted + 1;
  let txn = Step.txn step in
  Intset.iter (fun s -> Shard.abort t.shards.(s) txn) (hosting_of t txn);
  Hashtbl.remove t.hosting txn

let process_step t step =
  t.steps <- t.steps + 1;
  let index = t.steps in
  let tr = t.cfg.tracer in
  Tracer.event tr (fun () ->
      Event.Step_submitted { index; step = Step.to_telemetry step });
  let outcome = Coordinator.decide t.coordinator step in
  let si, reason =
    match outcome with
    | Rules.Accepted -> (Si.Accepted, "")
    | Rules.Rejected -> (Si.Rejected, "cycle")
    | Rules.Ignored -> (Si.Ignored, "already-aborted")
  in
  let outcome_name = Si.outcome_name si in
  Tracer.event tr (fun () ->
      Event.Decision { index; txn = Step.txn step; outcome = outcome_name; reason });
  Tracer.incr tr ("outcome." ^ outcome_name);
  (match outcome with
  | Rules.Accepted ->
      t.accepted <- t.accepted + 1;
      apply_accepted t ~index step;
      broadcast_deletions t (Coordinator.collect_garbage t.coordinator)
  | Rules.Rejected ->
      reject t step;
      broadcast_deletions t (Coordinator.collect_garbage t.coordinator)
  | Rules.Ignored -> t.ignored <- t.ignored + 1);
  (match t.on_step with None -> () | Some f -> f index step si);
  si

let shard_gc t = Array.iter (fun sh -> ignore (Shard.collect_garbage sh)) t.shards

let checkpoint t =
  let tr = t.cfg.tracer in
  if Tracer.active tr || Tracer.metrics tr <> None then begin
    let c : Coordinator.stats = Coordinator.stats t.coordinator in
    Tracer.event tr (fun () ->
        Event.Checkpoint_stats
          {
            at_step = t.steps;
            resident_txns = c.resident_txns;
            resident_arcs = c.resident_arcs;
            active_txns = c.active_txns;
            committed = t.committed;
            aborted = t.aborted;
            deleted = c.deleted_total;
            delayed = 0;
            resident_bytes = c.resident_bytes;
          });
    Tracer.gauge tr "resident_txns" c.resident_txns;
    Tracer.gauge tr "resident_arcs" c.resident_arcs;
    Tracer.gauge tr "graph.resident_bytes" c.resident_bytes;
    Array.iteri
      (fun i sh ->
        let s : Shard.stats = Shard.stats sh in
        Tracer.gauge tr
          (Printf.sprintf "engine.shard%d.resident_txns" i)
          s.resident_txns)
      t.shards
  end

let process_batch t batch =
  List.iter (fun s -> ignore (process_step t s)) batch;
  (* Batch boundary = the group-commit point: each shard runs its own
     deletion policy against its (smaller) local graph. *)
  shard_gc t;
  checkpoint t

let submit t step =
  match Admission.submit t.admission step with
  | None -> ()
  | Some batch -> process_batch t batch

let tick t =
  match Admission.tick t.admission with
  | [] -> ()
  | batch -> process_batch t batch

let pending t = Admission.pending t.admission

let set_on_step t f = t.on_step <- f

(* A client-initiated abort of a still-active transaction.  The
   coordinator graph goes through [abort_txn] (the hooked mutation
   path, so an attached deletability index stays consistent) and every
   hosting shard undoes its copy — the same teardown as a rejection,
   minus the rejected step.  Steps of the transaction still sitting in
   the admission queue will be decided [Ignored] when their batch
   flushes, exactly as post-rejection steps are. *)
let abort t txn =
  let gs = Coordinator.graph_state t.coordinator in
  if Gs.is_active gs txn then begin
    Gs.abort_txn gs txn;
    t.aborted <- t.aborted + 1;
    Intset.iter (fun s -> Shard.abort t.shards.(s) txn) (hosting_of t txn);
    Hashtbl.remove t.hosting txn;
    broadcast_deletions t (Coordinator.collect_garbage t.coordinator);
    true
  end
  else false

type report = {
  name : string;
  shards : int;
  batch : int;
  steps : int;
  accepted : int;
  rejected : int;
  ignored : int;
  committed : int;
  aborted : int;
  submitted : int;
  full_batches : int;
  ticks : int;
  coordinator : Coordinator.stats;
  shard_stats : Shard.stats array;
  shard_resident_hwm : int;
  cross_shard_arcs : int;
  local_arcs : int;
  distributed_txns : int;
  wall_seconds : float;
}

let report (t : t) ~wall_seconds =
  let shard_stats = Array.map Shard.stats t.shards in
  let shard_resident_hwm =
    Array.fold_left
      (fun acc (s : Shard.stats) -> max acc s.resident_hwm)
      0 shard_stats
  in
  {
    name =
      Printf.sprintf "engine/%s/%s/s%d-b%d" (Policy.name t.cfg.policy)
        (Partitioner.spec t.cfg.partitioner)
        t.cfg.shards t.cfg.batch;
    shards = t.cfg.shards;
    batch = t.cfg.batch;
    steps = t.steps;
    accepted = t.accepted;
    rejected = t.rejected;
    ignored = t.ignored;
    committed = t.committed;
    aborted = t.aborted;
    submitted = Admission.submitted t.admission;
    full_batches = Admission.full_batches t.admission;
    ticks = Admission.ticks t.admission;
    coordinator = Coordinator.stats t.coordinator;
    shard_stats;
    shard_resident_hwm;
    cross_shard_arcs = t.cross_shard_arcs;
    local_arcs = t.local_arcs;
    distributed_txns = t.distributed_txns;
    wall_seconds;
  }

(* End of input: flush the pending partial batch, then one last global
   GC round (broadcast included) and a local round per shard, so the
   report's residency is the steady state, not a mid-batch snapshot. *)
let finish (t : t) ~wall_seconds =
  tick t;
  broadcast_deletions t (Coordinator.collect_garbage t.coordinator);
  shard_gc t;
  t.on_step <- None;
  checkpoint t;
  Tracer.flush t.cfg.tracer;
  report t ~wall_seconds

let run ?on_step (t : t) steps =
  t.on_step <- on_step;
  let t0 = Unix.gettimeofday () in
  List.iter (submit t) steps;
  finish t ~wall_seconds:(Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Differential mode                                                   *)

type differential_report = {
  d_steps : int;
  d_shards : int;
  outcome_mismatches : (int * string * string) list;
  residency_violations : (int * int * int * int) list;
  store_mismatches : (int * int * int) list;
  committed_engine : int;
  committed_single : int;
  aborted_engine : int;
  aborted_single : int;
  engine_shard_peak : int;
  single_peak : int;
}

let differential ?oracle ?partitioner ?gc_index ~shards ~batch ~policy steps =
  let cfg = config ~policy ?partitioner ?oracle ?gc_index ~shards ~batch () in
  let eng : t = create cfg in
  let single_store = Store.create () in
  let single = Cs.create ~policy ~store:single_store ?gc_index () in
  let outcome_mismatches = ref [] in
  let residency_violations = ref [] in
  let single_peak = ref 0 in
  let engine_shard_peak = ref 0 in
  let on_step index step engine_outcome =
    let single_outcome = Cs.step single step in
    if engine_outcome <> single_outcome then
      outcome_mismatches :=
        ( index,
          Si.outcome_name engine_outcome,
          Si.outcome_name single_outcome )
        :: !outcome_mismatches;
    let st = Cs.stats single in
    single_peak := max !single_peak st.resident_txns;
    Array.iteri
      (fun k sh ->
        let r = Gs.txn_count (Shard.graph_state sh) in
        engine_shard_peak := max !engine_shard_peak r;
        if r > st.resident_txns then
          residency_violations :=
            (index, k, r, st.resident_txns) :: !residency_violations)
      eng.shards
  in
  let rep = run ~on_step eng steps in
  let store_mismatches = ref [] in
  Intset.iter
    (fun entity ->
      let expected = Store.peek single_store ~entity in
      let sh = eng.shards.(owner eng entity) in
      let got = Store.peek (Shard.store sh) ~entity in
      if got <> expected then
        store_mismatches := (entity, got, expected) :: !store_mismatches)
    (Store.entities single_store);
  let final = Cs.stats single in
  {
    d_steps = rep.steps;
    d_shards = shards;
    outcome_mismatches = List.rev !outcome_mismatches;
    residency_violations = List.rev !residency_violations;
    store_mismatches = List.rev !store_mismatches;
    committed_engine = rep.committed;
    committed_single = final.committed_total;
    aborted_engine = rep.aborted;
    aborted_single = final.aborted_total;
    engine_shard_peak = !engine_shard_peak;
    single_peak = !single_peak;
  }

let differential_ok d =
  d.outcome_mismatches = []
  && d.residency_violations = []
  && d.store_mismatches = []
  && d.committed_engine = d.committed_single
  && d.aborted_engine = d.aborted_single

let pp_differential ppf d =
  Format.fprintf ppf
    "@[<v>differential: %d steps over %d shards@ \
     outcome mismatches: %d@ residency violations: %d@ \
     store mismatches: %d@ committed: engine %d / single %d@ \
     aborted: engine %d / single %d@ \
     shard residency peak %d vs single-node peak %d@]"
    d.d_steps d.d_shards
    (List.length d.outcome_mismatches)
    (List.length d.residency_violations)
    (List.length d.store_mismatches)
    d.committed_engine d.committed_single d.aborted_engine d.aborted_single
    d.engine_shard_peak d.single_peak
