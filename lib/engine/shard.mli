(** One shard: the state for the entities a {!Partitioner} assigns it.

    A shard owns a local {!Dct_deletion.Graph_state} (the projection of
    the global conflict graph onto conflicts over its entities), a
    versioned {!Dct_kv.Store} holding its entities' data, and a
    {!Dct_kv.Wal} for its writes.  A transaction is {e hosted} here from
    its first access to a shard entity until GC forgets it.

    Shards never decide — the {!Coordinator} does (and its decisions are
    exactly the single-node scheduler's).  What a shard does own is its
    {e memory}: two garbage collectors bound it.

    - {e Local GC} ({!collect_garbage}) runs the configured deletion
      policy against the local graph.  The local graph has a subset of
      the global nodes and arcs, so conditions C1/C2 can hold here
      before they hold globally — a shard may forget a transaction
      {e earlier} than a single-node scheduler could.  This is safe
      because local state is bookkeeping, not decision input: every
      local arc also exists globally when added, bypass arcs preserve
      local path connectivity (Theorem 4's reduction applied to the
      projection), and the projection's connectivity stays a subset of
      the global graph's, so the local graph remains acyclic.
    - {e Broadcast GC} ({!apply_global_deletions}) force-applies the
      coordinator's deletions, so a shard never remembers a transaction
      the global policy has forgotten.  Together: per-shard residency
      <= single-node residency at every step, which the differential
      suite asserts. *)

type t

val create :
  id:int ->
  policy:Dct_deletion.Policy.t ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  unit ->
  t
(** [gc_index] attaches a per-shard {!Dct_deletion.Deletability_index}
    to the local projection, serving local GC from the maintained cache.
    Projections are small, so dirty regions are too; broadcast deletions
    ({!apply_global_deletions}) go through the hooked removal path and
    keep the index consistent. *)

val id : t -> int
val graph_state : t -> Dct_deletion.Graph_state.t
val store : t -> Dct_kv.Store.t
val wal : t -> Dct_kv.Wal.t

val hosts : t -> int -> bool
(** Is the transaction currently present in the local graph? *)

val apply_read : t -> txn:int -> entity:int -> unit
(** Mirror an accepted read of a shard entity: host the transaction if
    new, add the local Rule 2 arcs (present local writers -> txn), record
    the access, read the store.  Returns nothing; the arcs added are
    reported through {!last_arcs}. *)

val apply_write : t -> txn:int -> entities:int list -> value:int -> unit
(** Mirror the shard's slice of an accepted final write: local Rule 3
    arcs (present local accessors -> txn), accesses, store writes (all
    installing [value]) and WAL records. *)

val last_arcs : t -> (int * int) list
(** The (src, dst) conflict arcs added by the most recent
    {!apply_read}/{!apply_write} — the engine classifies them as
    intra- or cross-shard. *)

val complete : t -> int -> unit
(** The transaction committed globally; mark the local copy committed
    (no-op when not hosted). *)

val abort : t -> int -> unit
(** The transaction was aborted globally: plain local removal, store
    write undo, WAL abort record, log truncation. *)

val collect_garbage : t -> Dct_graph.Intset.t
(** Run the shard's own deletion policy on the local graph; forget
    deleted transactions from the store's reader sets and truncate the
    WAL.  Returns the locally deleted set. *)

val apply_global_deletions : t -> Dct_graph.Intset.t -> Dct_graph.Intset.t
(** Force-delete (with bypass) every hosted member of the coordinator's
    deleted set that local GC has not already removed.  Returns the
    subset actually applied here. *)

(** {1 Accounting} *)

type stats = {
  resident_txns : int;
  resident_arcs : int;
  active_txns : int;
  resident_hwm : int;   (** high-water mark of [resident_txns] *)
  hosted_total : int;   (** transactions ever hosted *)
  committed : int;
  aborted : int;
  deleted_local : int;  (** forgotten by this shard's own policy *)
  deleted_forced : int; (** forgotten because the coordinator deleted them *)
  store_versions : int;
  wal_retained : int;
  wal_truncated : int;
  resident_bytes : int;
      (** deterministic byte estimate of this shard's graph substrate *)
}

val stats : t -> stats
