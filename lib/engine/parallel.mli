(** Truly parallel engine: one OCaml 5 domain per shard.

    The decision path is unchanged from {!Engine} — the coordinator
    stays the {e only} decision-maker and runs the single-node SGT rules
    sequentially, so the decision trace is identical to the single-node
    scheduler's by construction (the Janus partitioned-commit shape:
    one sequencer, parallel appliers).  What moves off the coordinator's
    domain is everything the decision does {e not} depend on: per-shard
    graph-projection updates, store writes, WAL appends, local
    deletion-policy GC, and broadcast-deletion application.

    Protocol: the coordinator buffers per-shard {!cmd} batches while
    deciding; at every admission-batch boundary it appends a [Collect]
    (the shard-local GC round) and a numbered [Barrier], then flushes
    each shard's batch atomically into that shard's mailbox.  Shards
    answer each barrier with one {!ack} carrying their conflict arcs
    since the previous barrier and a stats snapshot.  Cross-shard arc
    classification and telemetry gauges are driven entirely from acks.

    Determinism contract: a shard's state is a pure function of its
    command stream, and the coordinator reads acks only at barriers —
    so the run's observable results are independent of domain
    scheduling.  {!Replay} mode {e exercises} that contract: it runs the
    identical protocol single-threaded, with a seeded PRNG choosing
    which shard advances between coordinator actions.  Every seed must
    (and, per the test suite, does) produce byte-identical results,
    which is what makes parallel runs replayable and differentially
    checkable without multi-core hardware.

    Pipelining: normally the coordinator decides batch [b+1] while the
    shards apply batch [b] (pipeline depth 1).  When tracing or metrics
    are on it degrades to lock-step — await the barrier, then emit the
    checkpoint — so the trace is byte-identical to the sequential
    engine's.

    Single-core fallback: when [available_domains () = 1] (or the CLI is
    passed [--domains 1]), callers should prefer {!Replay} or the
    sequential {!Engine}; [Domains] mode still works (domains are OS
    threads) but cannot speed anything up. *)

exception Shard_failure of int * string
(** A shard domain died: [(shard_id, description)].  Raised by the
    coordinator rather than deadlocking on a barrier that can never be
    answered. *)

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

(** How shard appliers are driven. *)
type mode =
  | Domains  (** one [Domain.t] per shard, mailbox-fed *)
  | Replay of int
      (** seeded deterministic interleaving simulator on the calling
          domain; the seed jitters shard progress between sends *)

val mode_name : mode -> string

(** Commands on the coordinator→shard wire.  [value] and the barrier
    [id] are fixed by the decision sequence, never by scheduling. *)
type cmd =
  | Read of { txn : int; entity : int }
  | Write of { txn : int; entities : int list; value : int }
  | Complete of { txn : int }
  | Abort of { txn : int }
  | Delete of { txns : Dct_graph.Intset.t }  (** broadcast GC batch *)
  | Collect  (** run the shard-local deletion policy *)
  | Barrier of { id : int }
  | Crash
      (** test-only: the applier raises on receipt; injected by
          {!Fault.t.crash_cmd} to exercise the {!Shard_failure} path *)

exception Crashed
(** What a shard applier raises on {!Crash}. *)

type ack =
  | Ack of {
      shard_id : int;
      barrier : int;
      arcs : (int * int) list;
          (** conflict arcs recorded since the previous barrier, in
              application order *)
      stats : Shard.stats;
    }
  | Failed of { shard_id : int; error : string }

(** Test-only fault hooks on the coordinator's send path, for the
    mutation checks: each injected fault must make the differential
    suite fail, or the suite is not actually sensitive to the
    protocol. *)
module Fault : sig
  type t = {
    mutable drop_broadcast : (int * int) option;
        (** [(n, shard)]: the [n]-th (0-based) broadcast-GC round is
            not delivered to [shard] *)
    mutable reorder_batch : (int * int) option;
        (** [(n, shard)]: the [n]-th (0-based) batch flushed to
            [shard] has its commands (not the barrier) reversed *)
    mutable crash_cmd : (int * int) option;
        (** [(n, shard)]: the [n]-th (0-based) batch flushed to [shard]
            carries a trailing {!cmd.Crash}, killing that applier before
            it can ack the batch's barrier — the run must surface
            {!Shard_failure}, never exit cleanly *)
    mutable broadcasts : int;  (** broadcast rounds seen *)
    mutable dropped : int;  (** messages actually dropped *)
    mutable reordered : int;  (** batches actually reordered *)
    mutable crashes : int;  (** crash commands actually injected *)
  }

  val create : unit -> t
end

type report = {
  base : Engine.report;  (** same shape as the sequential engine's *)
  domains : int;  (** applier domains spawned (1 under [Replay]) *)
  mode : string;
  barriers : int;
  lockstep : bool;  (** true when telemetry forced lock-step barriers *)
  final_shards : Shard.t array;
      (** inert after shutdown: safe for post-mortem inspection *)
}

type handle
(** An incremental parallel engine: the same protocol as {!run}, but
    driven step by step by an external feeder (the network server).
    Create, {!submit} any number of steps (full admission batches flush
    to the shard appliers as they fill), {!tick} to flush a partial
    batch, then {!finish} exactly once to run the end-of-input epilogue,
    join the appliers, and report. *)

val create_handle :
  ?mode:mode ->
  ?fault:Fault.t ->
  ?on_decision:(int -> Dct_txn.Step.t -> Dct_sched.Scheduler_intf.outcome -> unit) ->
  ?on_barrier:(step:int -> shard:int -> resident:int -> unit) ->
  ?on_deletion:(int -> Dct_graph.Intset.t -> unit) ->
  Engine.config ->
  handle

val submit : handle -> Dct_txn.Step.t -> unit
val tick : handle -> unit

val abort : handle -> int -> bool
(** Client-initiated abort, mirroring {!Engine.abort}: immediate on the
    coordinator graph, buffered [Abort] commands to the hosting shards.
    [false] (no-op) unless the transaction is currently active. *)

val pending : handle -> int

val finish : handle -> wall_seconds:float -> report
(** Flush, run the final GC rounds, await every outstanding barrier,
    join the appliers, and report.  @raise Shard_failure if an applier
    died — including one that died {e after} its last awaited barrier. *)

val run :
  ?mode:mode ->
  ?fault:Fault.t ->
  ?on_decision:(int -> Dct_txn.Step.t -> Dct_sched.Scheduler_intf.outcome -> unit) ->
  ?on_barrier:(step:int -> shard:int -> resident:int -> unit) ->
  ?on_deletion:(int -> Dct_graph.Intset.t -> unit) ->
  Engine.config ->
  Dct_txn.Step.t list ->
  report
(** Run the workload to completion.  [on_decision] fires after each
    decided step (the lock-step hook the differential uses);
    [on_barrier] after each barrier ack, with the shard's resident count
    at that admission-batch boundary; [on_deletion] on each non-empty
    broadcast round with the coordinator's step count.
    @raise Shard_failure if an applier dies. *)

(** {1 Differential mode}

    Three-way check: the parallel engine against (1) the single-node
    SGT scheduler, decision by decision, deletion round by deletion
    round; and (2) the sequential {!Engine} on the same configuration,
    shard state by shard state — residents, stores, WALs, counters —
    plus byte-equality of the two JSONL traces. *)

type differential_report = {
  d_steps : int;
  d_shards : int;
  d_mode : string;
  outcome_mismatches : (int * string * string) list;
      (** (step, parallel outcome, single-node outcome) *)
  deletion_mismatches : (int * string * string) list;
      (** (round, parallel round, single-node round) *)
  residency_violations : (int * int * int * int) list;
      (** (step, shard, shard resident, single-node resident) *)
  store_mismatches : (int * int * int) list;
      (** (entity, parallel value, single-node value) *)
  shard_divergences : (int * string) list;
      (** (shard, description) vs the sequential engine *)
  trace_divergence : string option;
      (** first differing JSONL line vs the sequential engine, if any *)
  committed_par : int;
  committed_single : int;
  aborted_par : int;
  aborted_single : int;
}

val differential :
  ?mode:mode ->
  ?fault:Fault.t ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?partitioner:Partitioner.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  shards:int ->
  batch:int ->
  policy:Dct_deletion.Policy.t ->
  Dct_txn.Step.t list ->
  differential_report

val differential_ok : differential_report -> bool

val pp_differential : Format.formatter -> differential_report -> unit
