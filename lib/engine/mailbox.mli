(** A mutex-batched multi-producer queue — the message fabric of the
    parallel engine.

    Two roles, one structure:
    - {e per-shard mailbox}: the coordinator is the single producer and
      the shard's domain the single consumer; {!push_batch} delivers a
      whole command batch atomically (contiguously, in order), so a
      shard's command stream is exactly the concatenation of the batches
      the coordinator sent it;
    - {e ack channel}: every shard domain produces, the coordinator
      consumes.

    FIFO overall; each producer's pushes appear in its own program
    order, and a {!push_batch} is never interleaved with anything else.
    {!drain_wait} blocks until something arrives or the box is closed —
    an empty return therefore means "closed and drained", the worker's
    shutdown signal. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** @raise Invalid_argument if the mailbox is closed. *)

val push_batch : 'a t -> 'a list -> unit
(** Atomic batch append: the elements land contiguously, in list order.
    [[]] is a no-op.  @raise Invalid_argument if closed. *)

val drain : 'a t -> 'a list
(** Take everything currently queued (possibly []), non-blocking. *)

val drain_wait : 'a t -> 'a list
(** Block until the mailbox is non-empty or closed; return everything
    queued.  [[]] iff the mailbox is closed {e and} empty. *)

val close : 'a t -> unit
(** Wake every blocked consumer; further pushes raise. *)

val is_closed : 'a t -> bool
val pending : 'a t -> int
val pushed : 'a t -> int
(** Total elements ever pushed. *)

val batches : 'a t -> int
(** Total {!push_batch} calls that delivered at least one element. *)
