module Intset = Dct_graph.Intset
module Gs = Dct_deletion.Graph_state
module Policy = Dct_deletion.Policy
module Rules = Dct_deletion.Rules
module Step = Dct_txn.Step
module Store = Dct_kv.Store
module Wal = Dct_kv.Wal
module Si = Dct_sched.Scheduler_intf
module Cs = Dct_sched.Conflict_scheduler
module Tracer = Dct_telemetry.Tracer
module Event = Dct_telemetry.Event
module Metrics = Dct_telemetry.Metrics

exception Shard_failure of int * string

let available_domains () = Domain.recommended_domain_count ()

type mode = Domains | Replay of int

let mode_name = function
  | Domains -> "domains"
  | Replay seed -> Printf.sprintf "replay:%d" seed

(* ------------------------------------------------------------------ *)
(* The wire protocol                                                   *)

type cmd =
  | Read of { txn : int; entity : int }
  | Write of { txn : int; entities : int list; value : int }
  | Complete of { txn : int }
  | Abort of { txn : int }
  | Delete of { txns : Intset.t }
  | Collect
  | Barrier of { id : int }
  | Crash  (* test-only: the applier raises on receipt (Fault.crash_cmd) *)

exception Crashed

type ack =
  | Ack of {
      shard_id : int;
      barrier : int;
      arcs : (int * int) list;
      stats : Shard.stats;
    }
  | Failed of { shard_id : int; error : string }

(* ------------------------------------------------------------------ *)
(* Fault injection (test-only)                                         *)

module Fault = struct
  type t = {
    mutable drop_broadcast : (int * int) option;
    mutable reorder_batch : (int * int) option;
    mutable crash_cmd : (int * int) option;
    mutable broadcasts : int;
    mutable dropped : int;
    mutable reordered : int;
    mutable crashes : int;
  }

  let create () =
    {
      drop_broadcast = None;
      reorder_batch = None;
      crash_cmd = None;
      broadcasts = 0;
      dropped = 0;
      reordered = 0;
      crashes = 0;
    }
end

(* ------------------------------------------------------------------ *)
(* The shard worker: one per shard, in either executor                 *)

type worker_state = {
  sh : Shard.t;
  mutable w_arcs : (int * int) list; (* reversed; since the last barrier *)
  wm : Metrics.t option; (* strictly domain-local; merged at join *)
}

let worker_incr st name =
  match st.wm with Some m -> Metrics.incr m name | None -> ()

let apply_cmd st ~emit = function
  | Read { txn; entity } ->
      Shard.apply_read st.sh ~txn ~entity;
      st.w_arcs <- List.rev_append (Shard.last_arcs st.sh) st.w_arcs;
      worker_incr st "par.cmds"
  | Write { txn; entities; value } ->
      Shard.apply_write st.sh ~txn ~entities ~value;
      st.w_arcs <- List.rev_append (Shard.last_arcs st.sh) st.w_arcs;
      worker_incr st "par.cmds"
  | Complete { txn } ->
      Shard.complete st.sh txn;
      worker_incr st "par.cmds"
  | Abort { txn } ->
      Shard.abort st.sh txn;
      worker_incr st "par.cmds"
  | Delete { txns } ->
      ignore (Shard.apply_global_deletions st.sh txns);
      worker_incr st "par.cmds"
  | Collect ->
      ignore (Shard.collect_garbage st.sh);
      worker_incr st "par.gc_runs"
  | Crash -> raise Crashed
  | Barrier { id } ->
      let stats = Shard.stats st.sh in
      (match st.wm with
      | Some m -> Metrics.gauge m "par.shard.resident" stats.Shard.resident_txns
      | None -> ());
      emit
        (Ack
           {
             shard_id = Shard.id st.sh;
             barrier = id;
             arcs = List.rev st.w_arcs;
             stats;
           });
      st.w_arcs <- []

(* ------------------------------------------------------------------ *)
(* Executors: real domains, or a seeded single-threaded simulation     *)

type executor = {
  send : int -> cmd list -> unit;
  await : int -> ack list; (* exactly one ack per shard, any order *)
  shutdown : unit -> unit; (* after this, shard state is safely readable *)
}

(* Bucket acks by barrier id; raise on a worker failure. *)
let make_awaiter ~shards ~(pump : unit -> ack list) =
  let buffered : (int, ack list) Hashtbl.t = Hashtbl.create 8 in
  let bucket = function
    | Failed { shard_id; error } -> raise (Shard_failure (shard_id, error))
    | Ack a as ack ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt buffered a.barrier) in
        Hashtbl.replace buffered a.barrier (ack :: prev)
  in
  fun id ->
    let ready () =
      match Hashtbl.find_opt buffered id with
      | Some acks when List.length acks = shards -> Some acks
      | _ -> None
    in
    let rec go () =
      match ready () with
      | Some acks ->
          Hashtbl.remove buffered id;
          acks
      | None ->
          (match pump () with
          | [] -> raise (Shard_failure (-1, "ack channel closed early"))
          | acks -> List.iter bucket acks);
          go ()
    in
    go ()

let domains_executor ~metrics (worker_shards : Shard.t array) =
  let n = Array.length worker_shards in
  let inboxes = Array.init n (fun _ -> Mailbox.create ()) in
  let acks : ack Mailbox.t = Mailbox.create () in
  let registries =
    Array.init n (fun _ -> if metrics then Some (Metrics.create ()) else None)
  in
  let domains =
    Array.mapi
      (fun i sh ->
        Domain.spawn (fun () ->
            let st = { sh; w_arcs = []; wm = registries.(i) } in
            let emit a = Mailbox.push acks a in
            try
              let running = ref true in
              while !running do
                match Mailbox.drain_wait inboxes.(i) with
                | [] -> running := false
                | cmds -> List.iter (apply_cmd st ~emit) cmds
              done
            with exn ->
              emit (Failed { shard_id = i; error = Printexc.to_string exn })))
      worker_shards
  in
  let await = make_awaiter ~shards:n ~pump:(fun () -> Mailbox.drain_wait acks) in
  let shutdown () =
    Array.iter Mailbox.close inboxes;
    Array.iter Domain.join domains;
    (* A domain that died after its last barrier ack emitted a [Failed]
       nobody awaited; surface it rather than letting the run (and the
       process) exit cleanly. *)
    let late = Mailbox.drain acks in
    Mailbox.close acks;
    List.iter
      (function
        | Failed { shard_id; error } -> raise (Shard_failure (shard_id, error))
        | Ack _ -> ())
      late
  in
  (registries, { send = (fun i cmds -> Mailbox.push_batch inboxes.(i) cmds); await; shutdown })

(* The seeded replay executor runs the identical protocol on the
   calling domain, interleaving shard progress in a PRNG-chosen order
   between coordinator actions.  The protocol is deterministic by
   construction — shard state is a pure function of the shard's command
   stream, and the coordinator only reads acks at barrier points — so
   every seed must produce byte-identical results; the test suite
   asserts exactly that, which is what makes parallel runs replayable
   and differentially checkable without multi-core hardware. *)
let replay_executor ~seed ~metrics (worker_shards : Shard.t array) =
  let n = Array.length worker_shards in
  let rng = Random.State.make [| 0x9e3779b9; seed |] in
  let queues = Array.init n (fun _ -> Queue.create ()) in
  let pending_acks : ack Queue.t = Queue.create () in
  let registries =
    Array.init n (fun _ -> if metrics then Some (Metrics.create ()) else None)
  in
  let states =
    Array.mapi (fun i sh -> { sh; w_arcs = []; wm = registries.(i) }) worker_shards
  in
  let emit a = Queue.push a pending_acks in
  let advance i =
    if Queue.is_empty queues.(i) then false
    else begin
      (* Mirror the domain executor's containment: an applier exception
         becomes a [Failed] ack (and the shard stops consuming), so the
         coordinator sees [Shard_failure] in both modes. *)
      (try apply_cmd states.(i) ~emit (Queue.pop queues.(i))
       with exn ->
         Queue.clear queues.(i);
         emit (Failed { shard_id = i; error = Printexc.to_string exn }));
      true
    end
  in
  (* Scheduling noise: after each send, advance a few random shards a
     few random commands — the simulated preemption. *)
  let jitter () =
    for _ = 1 to Random.State.int rng 4 do
      let i = Random.State.int rng n in
      let k = 1 + Random.State.int rng 3 in
      for _ = 1 to k do
        ignore (advance i)
      done
    done
  in
  let send i cmds =
    List.iter (fun c -> Queue.push c queues.(i)) cmds;
    jitter ()
  in
  let pump () =
    (* Drain ready acks; if none, run randomly-chosen shards with work
       until one appears. *)
    let collect () =
      let out = ref [] in
      while not (Queue.is_empty pending_acks) do
        out := Queue.pop pending_acks :: !out
      done;
      List.rev !out
    in
    let rec go () =
      match collect () with
      | [] ->
          let movable =
            Array.to_list (Array.init n Fun.id)
            |> List.filter (fun i -> not (Queue.is_empty queues.(i)))
          in
          (match movable with
          | [] -> [] (* nothing queued anywhere: protocol bug, surfaced by awaiter *)
          | _ ->
              let i = List.nth movable (Random.State.int rng (List.length movable)) in
              ignore (advance i);
              go ())
      | acks -> acks
    in
    go ()
  in
  let await = make_awaiter ~shards:n ~pump in
  let shutdown () =
    (* Run every shard dry; surface any failure emitted on the way. *)
    Array.iteri (fun i _ -> while advance i do () done) queues;
    Queue.iter
      (function
        | Failed { shard_id; error } -> raise (Shard_failure (shard_id, error))
        | Ack _ -> ())
      pending_acks
  in
  (registries, { send; await; shutdown })

(* ------------------------------------------------------------------ *)
(* The parallel coordinator                                            *)

type report = {
  base : Engine.report;
  domains : int;
  mode : string;
  barriers : int;
  lockstep : bool;
  final_shards : Shard.t array;
      (* inert after shutdown: safe for post-mortem inspection *)
}

type handle = {
  h_submit : Step.t -> unit;
  h_tick : unit -> unit;
  h_abort : int -> bool;
  h_pending : unit -> int;
  h_finish : wall_seconds:float -> report;
}

let create_handle ?(mode = Domains) ?fault ?on_decision ?on_barrier ?on_deletion
    (cfg : Engine.config) =
  let shards_n = cfg.Engine.shards in
  let tr = cfg.Engine.tracer in
  (* Telemetry forces lock-step barriers: the coordinator waits for the
     batch it just sent before emitting the checkpoint, so per-shard
     gauges (and the whole trace) are byte-identical to the sequential
     engine's.  Without telemetry the coordinator pipelines one batch
     deep: it decides batch [b+1] while the shard domains apply batch
     [b]. *)
  let metrics_on = Tracer.metrics tr <> None in
  let lockstep = Tracer.active tr || metrics_on in
  let coordinator =
    Coordinator.create ~policy:cfg.Engine.policy ?oracle:cfg.Engine.oracle
      ~tracer:tr ?gc_index:cfg.Engine.gc_index ()
  in
  let worker_shards =
    Array.init shards_n (fun id ->
        Shard.create ~id ~policy:cfg.Engine.policy ?gc_index:cfg.Engine.gc_index ())
  in
  let registries, exec =
    match mode with
    | Domains -> domains_executor ~metrics:metrics_on worker_shards
    | Replay seed -> replay_executor ~seed ~metrics:metrics_on worker_shards
  in
  let admission = Admission.create ~batch:cfg.Engine.batch in
  let hosting : (int, Intset.t) Hashtbl.t = Hashtbl.create 64 in
  let hosting_of txn =
    try Hashtbl.find hosting txn with Not_found -> Intset.empty
  in
  let steps_count = ref 0 in
  let accepted = ref 0 and rejected = ref 0 and ignored = ref 0 in
  let committed = ref 0 and aborted = ref 0 in
  let cross_shard_arcs = ref 0 and local_arcs = ref 0 in
  let distributed_txns = ref 0 in
  let buffers = Array.make shards_n [] in
  let buffer i c = buffers.(i) <- c :: buffers.(i) in
  let sends = Array.make shards_n 0 in
  let barrier_id = ref 0 in
  let reaped = ref 0 in
  let barrier_step : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_shard_stats : Shard.stats option array = Array.make shards_n None in
  let owner entity = Partitioner.shard_of cfg.Engine.partitioner entity in
  let note_hosting txn shard_id =
    let prev = hosting_of txn in
    if not (Intset.mem shard_id prev) then begin
      let now = Intset.add shard_id prev in
      Hashtbl.replace hosting txn now;
      if Intset.cardinal now = 2 then incr distributed_txns
    end
  in
  (* Classification happens when the arcs come back in a barrier ack,
     not at decision time — an arc's spread is read off the hosting
     table as of the barrier, so counts can differ slightly from the
     sequential engine's per-step classification (never the decisions). *)
  let classify_arcs arcs =
    List.iter
      (fun (src, dst) ->
        let spread = Intset.union (hosting_of src) (hosting_of dst) in
        if Intset.cardinal spread > 1 then incr cross_shard_arcs
        else incr local_arcs)
      arcs
  in
  let handle_acks id acks =
    let step_at =
      match Hashtbl.find_opt barrier_step id with Some s -> s | None -> 0
    in
    let acks =
      List.sort
        (fun a b ->
          match (a, b) with
          | Ack x, Ack y -> compare x.shard_id y.shard_id
          | _ -> 0)
        acks
    in
    List.iter
      (function
        | Failed { shard_id; error } -> raise (Shard_failure (shard_id, error))
        | Ack a ->
            classify_arcs a.arcs;
            last_shard_stats.(a.shard_id) <- Some a.stats;
            (match on_barrier with
            | Some f ->
                f ~step:step_at ~shard:a.shard_id
                  ~resident:a.stats.Shard.resident_txns
            | None -> ()))
      acks;
    reaped := max !reaped id
  in
  let flush_buffers () =
    incr barrier_id;
    let id = !barrier_id in
    Hashtbl.replace barrier_step id !steps_count;
    for i = 0 to shards_n - 1 do
      let cmds = List.rev buffers.(i) in
      buffers.(i) <- [];
      let cmds =
        match fault with
        | Some (f : Fault.t) when f.Fault.reorder_batch = Some (sends.(i), i) ->
            f.Fault.reordered <- f.Fault.reordered + 1;
            List.rev cmds
        | _ -> cmds
      in
      let cmds =
        match fault with
        | Some (f : Fault.t) when f.Fault.crash_cmd = Some (sends.(i), i) ->
            f.Fault.crashes <- f.Fault.crashes + 1;
            cmds @ [ Crash ]
        | _ -> cmds
      in
      exec.send i (cmds @ [ Barrier { id } ]);
      sends.(i) <- sends.(i) + 1
    done;
    id
  in
  let broadcast_deletions deleted =
    if not (Intset.is_empty deleted) then begin
      let ordinal =
        match fault with
        | Some f ->
            let o = f.Fault.broadcasts in
            f.Fault.broadcasts <- o + 1;
            o
        | None -> 0
      in
      for i = 0 to shards_n - 1 do
        let drop =
          match fault with
          | Some f when f.Fault.drop_broadcast = Some (ordinal, i) ->
              f.Fault.dropped <- f.Fault.dropped + 1;
              true
          | _ -> false
        in
        if not drop then buffer i (Delete { txns = deleted })
      done;
      Intset.iter (fun txn -> Hashtbl.remove hosting txn) deleted;
      match on_deletion with
      | Some f -> f !steps_count deleted
      | None -> ()
    end
  in
  let route_accepted ~index step =
    match step with
    | Step.Begin _ | Step.Begin_declared _ -> ()
    | Step.Read (txn, entity) ->
        let s = owner entity in
        buffer s (Read { txn; entity });
        note_hosting txn s
    | Step.Write (txn, entities) ->
        let by_shard = Hashtbl.create 8 in
        let order = ref [] in
        List.iter
          (fun e ->
            let s = owner e in
            match Hashtbl.find_opt by_shard s with
            | Some slice -> slice := e :: !slice
            | None ->
                Hashtbl.add by_shard s (ref [ e ]);
                order := s :: !order)
          entities;
        List.iter
          (fun s ->
            let slice = List.rev !(Hashtbl.find by_shard s) in
            buffer s (Write { txn; entities = slice; value = index });
            note_hosting txn s)
          (List.rev !order);
        incr committed;
        Intset.iter (fun s -> buffer s (Complete { txn })) (hosting_of txn)
    | Step.Write_one _ | Step.Finish _ ->
        invalid_arg "Dct_engine.Parallel: basic-model steps only"
  in
  let route_reject step =
    let txn = Step.txn step in
    Intset.iter (fun s -> buffer s (Abort { txn })) (hosting_of txn);
    Hashtbl.remove hosting txn
  in
  let process_step step =
    incr steps_count;
    let index = !steps_count in
    Tracer.event tr (fun () ->
        Event.Step_submitted { index; step = Step.to_telemetry step });
    let outcome = Coordinator.decide coordinator step in
    let si, reason =
      match outcome with
      | Rules.Accepted -> (Si.Accepted, "")
      | Rules.Rejected -> (Si.Rejected, "cycle")
      | Rules.Ignored -> (Si.Ignored, "already-aborted")
    in
    let outcome_name = Si.outcome_name si in
    Tracer.event tr (fun () ->
        Event.Decision { index; txn = Step.txn step; outcome = outcome_name; reason });
    Tracer.incr tr ("outcome." ^ outcome_name);
    (match outcome with
    | Rules.Accepted ->
        incr accepted;
        route_accepted ~index step;
        broadcast_deletions (Coordinator.collect_garbage coordinator)
    | Rules.Rejected ->
        incr rejected;
        incr aborted;
        route_reject step;
        broadcast_deletions (Coordinator.collect_garbage coordinator)
    | Rules.Ignored -> incr ignored);
    (match on_decision with Some f -> f index step si | None -> ());
    si
  in
  let checkpoint () =
    if Tracer.active tr || metrics_on then begin
      let c : Coordinator.stats = Coordinator.stats coordinator in
      Tracer.event tr (fun () ->
          Event.Checkpoint_stats
            {
              at_step = !steps_count;
              resident_txns = c.resident_txns;
              resident_arcs = c.resident_arcs;
              active_txns = c.active_txns;
              committed = !committed;
              aborted = !aborted;
              deleted = c.deleted_total;
              delayed = 0;
              resident_bytes = c.resident_bytes;
            });
      Tracer.gauge tr "resident_txns" c.resident_txns;
      Tracer.gauge tr "resident_arcs" c.resident_arcs;
      Tracer.gauge tr "graph.resident_bytes" c.resident_bytes;
      Array.iteri
        (fun i stats ->
          match stats with
          | Some (s : Shard.stats) ->
              Tracer.gauge tr
                (Printf.sprintf "engine.shard%d.resident_txns" i)
                s.Shard.resident_txns
          | None -> ())
        last_shard_stats
    end
  in
  let process_batch batch =
    List.iter (fun s -> ignore (process_step s)) batch;
    for i = 0 to shards_n - 1 do
      buffer i Collect
    done;
    let id = flush_buffers () in
    if lockstep then begin
      handle_acks id (exec.await id);
      checkpoint ()
    end
    else if id > 1 then handle_acks (id - 1) (exec.await (id - 1))
  in
  let submit s =
    match Admission.submit admission s with
    | None -> ()
    | Some batch -> process_batch batch
  in
  let tick () =
    match Admission.tick admission with
    | [] -> ()
    | batch -> process_batch batch
  in
  (* Client-initiated abort, mirroring [Engine.abort]: the coordinator
     graph goes through the hooked [abort_txn] path immediately (so
     subsequent steps of the transaction decide [Ignored]), and the
     hosting shards receive buffered [Abort] commands in stream order. *)
  let abort txn =
    let gs = Coordinator.graph_state coordinator in
    if Gs.is_active gs txn then begin
      Gs.abort_txn gs txn;
      incr aborted;
      Intset.iter (fun s -> buffer s (Abort { txn })) (hosting_of txn);
      Hashtbl.remove hosting txn;
      broadcast_deletions (Coordinator.collect_garbage coordinator);
      true
    end
    else false
  in
  let finish ~wall_seconds =
    tick ();
    (* End of input: one last global GC round (broadcast included) and a
       local round per shard — the same epilogue as the sequential
       engine's [run]. *)
    broadcast_deletions (Coordinator.collect_garbage coordinator);
    for i = 0 to shards_n - 1 do
      buffer i Collect
    done;
    let final_id = flush_buffers () in
    for id = !reaped + 1 to final_id do
      handle_acks id (exec.await id)
    done;
    exec.shutdown ();
    (* Fold the per-domain registries into the run's registry — safe now:
       the domains are joined. *)
    (match Tracer.metrics tr with
    | Some into ->
        Array.iter
          (function Some m -> Metrics.merge ~into m | None -> ())
          registries
    | None -> ());
    checkpoint ();
    Tracer.flush tr;
    let shard_stats = Array.map Shard.stats worker_shards in
    let shard_resident_hwm =
      Array.fold_left
        (fun acc (s : Shard.stats) -> max acc s.Shard.resident_hwm)
        0 shard_stats
    in
    let base : Engine.report =
      {
        Engine.name =
          Printf.sprintf "engine-par/%s/%s/%s/s%d-b%d" (mode_name mode)
            (Policy.name cfg.Engine.policy)
            (Partitioner.spec cfg.Engine.partitioner)
            shards_n cfg.Engine.batch;
        shards = shards_n;
        batch = cfg.Engine.batch;
        steps = !steps_count;
        accepted = !accepted;
        rejected = !rejected;
        ignored = !ignored;
        committed = !committed;
        aborted = !aborted;
        submitted = Admission.submitted admission;
        full_batches = Admission.full_batches admission;
        ticks = Admission.ticks admission;
        coordinator = Coordinator.stats coordinator;
        shard_stats;
        shard_resident_hwm;
        cross_shard_arcs = !cross_shard_arcs;
        local_arcs = !local_arcs;
        distributed_txns = !distributed_txns;
        wall_seconds;
      }
    in
    {
      base;
      domains = (match mode with Domains -> shards_n | Replay _ -> 1);
      mode = mode_name mode;
      barriers = final_id;
      lockstep;
      final_shards = worker_shards;
    }
  in
  {
    h_submit = submit;
    h_tick = tick;
    h_abort = abort;
    h_pending = (fun () -> Admission.pending admission);
    h_finish = finish;
  }

let submit h = h.h_submit
let tick h = h.h_tick ()
let abort h = h.h_abort
let pending h = h.h_pending ()
let finish h ~wall_seconds = h.h_finish ~wall_seconds

let run ?mode ?fault ?on_decision ?on_barrier ?on_deletion
    (cfg : Engine.config) steps =
  let h =
    create_handle ?mode ?fault ?on_decision ?on_barrier ?on_deletion cfg
  in
  let t0 = Unix.gettimeofday () in
  List.iter h.h_submit steps;
  h.h_finish ~wall_seconds:(Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Differential mode                                                   *)

type differential_report = {
  d_steps : int;
  d_shards : int;
  d_mode : string;
  outcome_mismatches : (int * string * string) list;
  deletion_mismatches : (int * string * string) list;
  residency_violations : (int * int * int * int) list;
  store_mismatches : (int * int * int) list;
  shard_divergences : (int * string) list;
  trace_divergence : string option;
  committed_par : int;
  committed_single : int;
  aborted_par : int;
  aborted_single : int;
}

let set_to_string s =
  "{" ^ String.concat "," (List.map string_of_int (Intset.to_sorted_list s)) ^ "}"

(* Traces must be byte-identical {e modulo wall-clock fields}: oracle
   events carry an ["ns"] timing that no scheduler controls.  Scrub it
   to a placeholder before comparing. *)
let scrub_timings line =
  let b = Buffer.create (String.length line) in
  let n = String.length line in
  let key = "\"ns\":" in
  let klen = String.length key in
  let i = ref 0 in
  while !i < n do
    if !i + klen <= n && String.sub line !i klen = key then begin
      Buffer.add_string b key;
      Buffer.add_char b '_';
      i := !i + klen;
      while
        !i < n
        && (match line.[!i] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr i
      done
    end
    else begin
      Buffer.add_char b line.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* First line where the two JSONL traces differ (timings scrubbed). *)
let first_trace_divergence a b =
  if String.equal a b then None
  else
    let la = List.map scrub_timings (String.split_on_char '\n' a)
    and lb = List.map scrub_timings (String.split_on_char '\n' b) in
    let rec go n = function
      | [], [] -> None (* differed only in scrubbed timing fields *)
      | x :: _, [] -> Some (Printf.sprintf "line %d: par has %S, seq ended" n x)
      | [], y :: _ -> Some (Printf.sprintf "line %d: seq has %S, par ended" n y)
      | x :: xs, y :: ys ->
          if String.equal x y then go (n + 1) (xs, ys)
          else Some (Printf.sprintf "line %d: par %S vs seq %S" n x y)
    in
    go 1 (la, lb)

let differential ?(mode = Domains) ?fault ?oracle ?partitioner ?gc_index ~shards
    ~batch ~policy steps =
  let partitioner =
    match partitioner with Some p -> p | None -> Partitioner.hash ~shards
  in
  (* Reference 1: the single-node SGT scheduler, driven in lock-step
     from the parallel coordinator's decision callback. *)
  let single_store = Store.create () in
  let single = Cs.create ~policy ~store:single_store ?gc_index () in
  let outcome_mismatches = ref [] in
  let residency_violations = ref [] in
  let single_resident = ref [||] in
  let n_steps = List.length steps in
  single_resident := Array.make (n_steps + 1) 0;
  let on_decision index step par_outcome =
    let single_outcome = Cs.step single step in
    if par_outcome <> single_outcome then
      outcome_mismatches :=
        (index, Si.outcome_name par_outcome, Si.outcome_name single_outcome)
        :: !outcome_mismatches;
    let st = Cs.stats single in
    if index <= n_steps then !single_resident.(index) <- st.Si.resident_txns
  in
  let on_barrier ~step ~shard ~resident =
    (* The shard just ran its local GC; the sequential engine's
       guarantee is per-shard residency <= single-node residency at the
       same step, sampled here at batch boundaries. *)
    if step >= 1 && step <= n_steps && resident > !single_resident.(step) then
      residency_violations :=
        (step, shard, resident, !single_resident.(step)) :: !residency_violations
  in
  let par_deletions = ref [] in
  let on_deletion step set = par_deletions := (step, set) :: !par_deletions in
  let par_buf = Buffer.create 4096 in
  let par_tracer =
    Tracer.create ~sink:(Dct_telemetry.Sink.locked (Dct_telemetry.Sink.memory par_buf)) ()
  in
  let par_cfg =
    Engine.config ~policy ~partitioner ?oracle ?gc_index ~tracer:par_tracer
      ~shards ~batch ()
  in
  let par =
    run ~mode ?fault ~on_decision ~on_barrier ~on_deletion par_cfg steps
  in
  (* Reference 2: the sequential engine of PR 4 on its own copy of the
     same configuration — final shard states must agree byte for byte
     (graph residents, stores, WALs, counters), and so must the traces. *)
  let seq_buf = Buffer.create 4096 in
  let seq_tracer =
    Tracer.create ~sink:(Dct_telemetry.Sink.memory seq_buf) ()
  in
  let seq_cfg =
    Engine.config ~policy ~partitioner ?oracle ?gc_index ~tracer:seq_tracer
      ~shards ~batch ()
  in
  let seq_eng = Engine.create seq_cfg in
  let (_ : Engine.report) = Engine.run seq_eng steps in
  (* Deletions: the parallel coordinator's non-empty GC rounds must
     match the single-node scheduler's deleted log, step for step. *)
  let deletion_mismatches = ref [] in
  let rec cmp_deletions i par sgl =
    match (par, sgl) with
    | [], [] -> ()
    | (ps, pset) :: pr, (ss, sset) :: sr ->
        if ps <> ss || not (Intset.equal pset sset) then
          deletion_mismatches :=
            ( i,
              Printf.sprintf "step %d %s" ps (set_to_string pset),
              Printf.sprintf "step %d %s" ss (set_to_string sset) )
            :: !deletion_mismatches
        else ();
        cmp_deletions (i + 1) pr sr
    | (ps, pset) :: pr, [] ->
        deletion_mismatches :=
          (i, Printf.sprintf "step %d %s" ps (set_to_string pset), "(none)")
          :: !deletion_mismatches;
        cmp_deletions (i + 1) pr []
    | [], (ss, sset) :: sr ->
        deletion_mismatches :=
          (i, "(none)", Printf.sprintf "step %d %s" ss (set_to_string sset))
          :: !deletion_mismatches;
        cmp_deletions (i + 1) [] sr
  in
  cmp_deletions 0 (List.rev !par_deletions) (Cs.deleted_log single);
  (* Stores: each entity's value in its owning shard equals the
     single-node store's. *)
  let store_mismatches = ref [] in
  Intset.iter
    (fun entity ->
      let expected = Store.peek single_store ~entity in
      let sh = par.final_shards.(Partitioner.shard_of partitioner entity) in
      let got = Store.peek (Shard.store sh) ~entity in
      if got <> expected then
        store_mismatches := (entity, got, expected) :: !store_mismatches)
    (Store.entities single_store);
  (* Shard-by-shard against the sequential engine. *)
  let shard_divergences = ref [] in
  for i = 0 to shards - 1 do
    let diverge fmt =
      Printf.ksprintf (fun m -> shard_divergences := (i, m) :: !shard_divergences) fmt
    in
    let psh = par.final_shards.(i) in
    let ssh = Engine.shard seq_eng i in
    let pres = Gs.all_txns (Shard.graph_state psh) in
    let sres = Gs.all_txns (Shard.graph_state ssh) in
    if not (Intset.equal pres sres) then
      diverge "resident txns %s vs seq %s" (set_to_string pres)
        (set_to_string sres);
    let pent = Store.entities (Shard.store psh) in
    let sent = Store.entities (Shard.store ssh) in
    if not (Intset.equal pent sent) then
      diverge "store entities %s vs seq %s" (set_to_string pent)
        (set_to_string sent)
    else
      Intset.iter
        (fun entity ->
          let got = Store.peek (Shard.store psh) ~entity in
          let expected = Store.peek (Shard.store ssh) ~entity in
          if got <> expected then
            diverge "store[%d] = %d vs seq %d" entity got expected)
        pent;
    let ps : Shard.stats = Shard.stats psh in
    let ss : Shard.stats = Shard.stats ssh in
    if ps.Shard.committed <> ss.Shard.committed then
      diverge "committed %d vs seq %d" ps.Shard.committed ss.Shard.committed;
    if ps.Shard.aborted <> ss.Shard.aborted then
      diverge "aborted %d vs seq %d" ps.Shard.aborted ss.Shard.aborted;
    if ps.Shard.deleted_local <> ss.Shard.deleted_local then
      diverge "deleted_local %d vs seq %d" ps.Shard.deleted_local
        ss.Shard.deleted_local;
    if ps.Shard.deleted_forced <> ss.Shard.deleted_forced then
      diverge "deleted_forced %d vs seq %d" ps.Shard.deleted_forced
        ss.Shard.deleted_forced;
    if ps.Shard.hosted_total <> ss.Shard.hosted_total then
      diverge "hosted %d vs seq %d" ps.Shard.hosted_total ss.Shard.hosted_total;
    if not (Wal.records (Shard.wal psh) = Wal.records (Shard.wal ssh)) then
      diverge "wal records differ (par %d vs seq %d retained)"
        (Wal.length (Shard.wal psh))
        (Wal.length (Shard.wal ssh))
  done;
  let single_stats = Cs.stats single in
  {
    d_steps = par.base.Engine.steps;
    d_shards = shards;
    d_mode = par.mode;
    outcome_mismatches = List.rev !outcome_mismatches;
    deletion_mismatches = List.rev !deletion_mismatches;
    residency_violations = List.rev !residency_violations;
    store_mismatches = List.rev !store_mismatches;
    shard_divergences = List.rev !shard_divergences;
    trace_divergence =
      first_trace_divergence (Buffer.contents par_buf) (Buffer.contents seq_buf);
    committed_par = par.base.Engine.committed;
    committed_single = single_stats.Si.committed_total;
    aborted_par = par.base.Engine.aborted;
    aborted_single = single_stats.Si.aborted_total;
  }

let differential_ok d =
  d.outcome_mismatches = []
  && d.deletion_mismatches = []
  && d.residency_violations = []
  && d.store_mismatches = []
  && d.shard_divergences = []
  && d.trace_divergence = None
  && d.committed_par = d.committed_single
  && d.aborted_par = d.aborted_single

let pp_differential ppf d =
  Format.fprintf ppf
    "@[<v>parallel differential (%s): %d steps over %d shards@ \
     outcome mismatches: %d@ deletion mismatches: %d@ \
     residency violations: %d@ store mismatches: %d@ \
     shard divergences: %d@ trace: %s@ \
     committed: par %d / single %d@ aborted: par %d / single %d@]"
    d.d_mode d.d_steps d.d_shards
    (List.length d.outcome_mismatches)
    (List.length d.deletion_mismatches)
    (List.length d.residency_violations)
    (List.length d.store_mismatches)
    (List.length d.shard_divergences)
    (match d.trace_divergence with None -> "identical" | Some m -> m)
    d.committed_par d.committed_single d.aborted_par d.aborted_single
