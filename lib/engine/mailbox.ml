type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  mutable closed : bool;
  mutable pushed : int;
  mutable batches : int;
}

let create () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    closed = false;
    pushed = 0;
    batches = 0;
  }

let push t x =
  Mutex.protect t.mutex (fun () ->
      if t.closed then invalid_arg "Mailbox.push: closed";
      Queue.push x t.q;
      t.pushed <- t.pushed + 1;
      Condition.signal t.nonempty)

let push_batch t xs =
  if xs <> [] then
    Mutex.protect t.mutex (fun () ->
        if t.closed then invalid_arg "Mailbox.push_batch: closed";
        List.iter (fun x -> Queue.push x t.q) xs;
        t.pushed <- t.pushed + List.length xs;
        t.batches <- t.batches + 1;
        Condition.signal t.nonempty)

(* Callers hold the mutex. *)
let drain_locked t =
  let out = ref [] in
  while not (Queue.is_empty t.q) do
    out := Queue.pop t.q :: !out
  done;
  List.rev !out

let drain t = Mutex.protect t.mutex (fun () -> drain_locked t)

let drain_wait t =
  Mutex.protect t.mutex (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.nonempty t.mutex
      done;
      drain_locked t)

let close t =
  Mutex.protect t.mutex (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_closed t = Mutex.protect t.mutex (fun () -> t.closed)
let pending t = Mutex.protect t.mutex (fun () -> Queue.length t.q)
let pushed t = Mutex.protect t.mutex (fun () -> t.pushed)
let batches t = Mutex.protect t.mutex (fun () -> t.batches)
