(** The engine's serializability authority.

    The coordinator owns the one structure sharding cannot split without
    losing exactness: the global conflict graph.  A serialization cycle
    can thread through several shards using only arcs that are each
    local to one shard (T1 -> T2 over an entity of shard A, T2 -> T1
    over an entity of shard B: both shard graphs stay acyclic while the
    global graph is cyclic), so accept/reject must be answered against
    the union of all conflicts.  The coordinator answers it with exactly
    the machinery of the single-node scheduler — {!Dct_deletion.Rules}
    over a global {!Dct_deletion.Graph_state} — which is what makes the
    engine's differential guarantee structural: for the same step
    sequence, the engine's outcomes {e are} the single-node SGT
    scheduler's outcomes, shard count notwithstanding.

    The coordinator graph is kept small the paper's way: the configured
    deletion policy runs against it as GC, and every deletion is
    broadcast so shards forget at least as fast
    ({!Shard.apply_global_deletions}).

    The coordinator's graph state carries the engine's tracer, so an
    engine trace has the same shape as a single-node [dct simulate
    --trace] run and [dct trace] (including [--audit]) consumes it
    unmodified. *)

type t

val create :
  policy:Dct_deletion.Policy.t ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  unit ->
  t
(** [gc_index] attaches a {!Dct_deletion.Deletability_index} to the
    global graph, serving every {!collect_garbage} round from the
    maintained cache (same deletions; [Checked] raises on divergence). *)

val decide : t -> Dct_txn.Step.t -> Dct_deletion.Rules.outcome
(** Apply Rules 1-3 to the global graph — the engine's only
    accept/reject path. *)

val collect_garbage : t -> Dct_graph.Intset.t
(** One GC round of the configured policy on the global graph; the
    returned set must be broadcast to the shards. *)

val graph_state : t -> Dct_deletion.Graph_state.t
(** Read-only: the differential harness and invariant checks probe it. *)

val policy : t -> Dct_deletion.Policy.t

type stats = {
  resident_txns : int;
  resident_arcs : int;
  active_txns : int;
  resident_hwm : int;
  deleted_total : int;
  resident_bytes : int;
      (** deterministic byte estimate of the coordinator graph substrate *)
}

val stats : t -> stats
