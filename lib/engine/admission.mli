(** Group-commit style admission control.

    Steps are not processed as they arrive; they accumulate in a FIFO
    batch of at most [B] steps.  {!submit} hands the full batch back the
    moment the [B]-th step lands; {!tick} flushes a partial batch (the
    engine's "group-commit timer" — in this synchronous reproduction the
    caller decides when a tick happens, e.g. at end of input).

    Ordering is deterministic: steps leave in exactly the order they
    were submitted, and the workload generator's PRNG seed fixes that
    order, so a run is reproducible bit for bit regardless of batch
    size — batching changes {e when} decisions happen (and therefore GC
    cadence and residency), never {e which} decisions happen. *)

type t

val create : batch:int -> t
(** @raise Invalid_argument if [batch <= 0]. *)

val batch_size : t -> int

val submit : t -> Dct_txn.Step.t -> Dct_txn.Step.t list option
(** Queue one step.  Returns [Some batch] (in submission order) when
    this step filled the batch, [None] otherwise. *)

val tick : t -> Dct_txn.Step.t list
(** Flush whatever is pending (possibly []), in submission order. *)

val pending : t -> int

(** {1 Counters} (for the serve report) *)

val submitted : t -> int
val full_batches : t -> int
(** Batches released by {!submit} because they reached [B]. *)

val ticks : t -> int
(** Non-empty flushes released by {!tick}. *)
