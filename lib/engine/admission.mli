(** Group-commit style admission control — a mutex-batched MPSC queue.

    Steps are not processed as they arrive; they accumulate in a FIFO
    batch of at most [B] steps.  {!submit} hands the full batch back the
    moment the [B]-th step lands; {!tick} flushes a partial batch (the
    engine's "group-commit timer" — in this synchronous reproduction the
    caller decides when a tick happens, e.g. at end of input).

    Every operation is serialized on an internal mutex, so the queue is
    safe under concurrent producer {e domains}: {!post} enqueues without
    claiming a batch (the MPSC producer side), {!post_batch} lands a
    client's whole burst contiguously, and the single consumer drains
    with {!take_batch}/{!tick}.  Linearizability contract (pinned by the
    QCheck property in [test_parallel.ml]): the drained order is an
    interleaving of the producers' sequences that preserves each
    producer's own submission order, and a {!post_batch} is never
    interleaved with other steps.

    Ordering is deterministic for a single producer: steps leave in
    exactly the order they were submitted, and the workload generator's
    PRNG seed fixes that order, so a run is reproducible bit for bit
    regardless of batch size — batching changes {e when} decisions
    happen (and therefore GC cadence and residency), never {e which}
    decisions happen. *)

type t

val create : batch:int -> t
(** @raise Invalid_argument if [batch <= 0]. *)

val batch_size : t -> int

val submit : t -> Dct_txn.Step.t -> Dct_txn.Step.t list option
(** Queue one step.  Returns [Some batch] (in submission order) when
    this step filled the batch, [None] otherwise. *)

val tick : t -> Dct_txn.Step.t list
(** Flush whatever is pending (possibly []), in submission order. *)

(** {1 MPSC producer/consumer split} *)

val post : t -> Dct_txn.Step.t -> unit
(** Producer side: enqueue without claiming a batch.  Safe from any
    domain. *)

val post_batch : t -> Dct_txn.Step.t list -> unit
(** Atomically enqueue a client burst: the steps land contiguously, in
    list order.  [[]] is a no-op. *)

val take_batch : t -> Dct_txn.Step.t list option
(** Consumer side: remove and return exactly [B] steps if at least [B]
    are pending, [None] otherwise.  Counts as a full batch. *)

val pending : t -> int

(** {1 Counters} (for the serve report) *)

val submitted : t -> int
val full_batches : t -> int
(** Batches released by {!submit} because they reached [B]. *)

val ticks : t -> int
(** Non-empty flushes released by {!tick}. *)

val posted_batches : t -> int
(** Non-empty {!post_batch} calls. *)
