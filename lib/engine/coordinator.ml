module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Gs = Dct_deletion.Graph_state
module Rules = Dct_deletion.Rules
module Policy = Dct_deletion.Policy
module Dindex = Dct_deletion.Deletability_index

type t = {
  gs : Gs.t;
  policy : Policy.t;
  index : Dindex.t option;
  mutable resident_hwm : int;
  mutable deleted_total : int;
}

let create ~policy ?oracle ?tracer ?gc_index () =
  let gs = Gs.create ?oracle ?tracer () in
  let index = Option.map (fun mode -> Dindex.attach mode gs) gc_index in
  { gs; policy; index; resident_hwm = 0; deleted_total = 0 }

let note_residency t =
  t.resident_hwm <- max t.resident_hwm (Gs.txn_count t.gs)

let decide t step =
  let outcome = Rules.apply t.gs step in
  note_residency t;
  outcome

let collect_garbage t =
  let deleted = Policy.run ?index:t.index t.policy t.gs in
  t.deleted_total <- t.deleted_total + Intset.cardinal deleted;
  deleted

let graph_state t = t.gs
let policy t = t.policy

type stats = {
  resident_txns : int;
  resident_arcs : int;
  active_txns : int;
  resident_hwm : int;
  deleted_total : int;
  resident_bytes : int;
}

let stats t =
  note_residency t;
  {
    resident_txns = Gs.txn_count t.gs;
    resident_arcs = Digraph.arc_count (Gs.graph t.gs);
    active_txns = Intset.cardinal (Gs.active_txns t.gs);
    resident_hwm = t.resident_hwm;
    deleted_total = t.deleted_total;
    resident_bytes = Gs.resident_bytes t.gs;
  }
