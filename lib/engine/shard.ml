module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Gs = Dct_deletion.Graph_state
module Policy = Dct_deletion.Policy
module Dindex = Dct_deletion.Deletability_index
module Access = Dct_txn.Access
module Transaction = Dct_txn.Transaction
module Store = Dct_kv.Store
module Wal = Dct_kv.Wal

type t = {
  id : int;
  gs : Gs.t;
  store : Store.t;
  wal : Wal.t;
  policy : Policy.t;
  index : Dindex.t option;
      (* per-shard index over the projected graph — projections are
         small, so dirty regions are too (the sharded sweet spot) *)
  mutable last_arcs : (int * int) list;
  mutable resident_hwm : int;
  mutable hosted_total : int;
  mutable committed : int;
  mutable aborted : int;
  mutable deleted_local : int;
  mutable deleted_forced : int;
}

(* Shard graph states are projections kept for GC and accounting; they
   carry no tracer so the engine's trace is exactly the coordinator's
   (single-node-shaped) trace. *)
let create ~id ~policy ?oracle ?gc_index () =
  let gs = Gs.create ?oracle () in
  let index = Option.map (fun mode -> Dindex.attach mode gs) gc_index in
  {
    id;
    gs;
    store = Store.create ();
    wal = Wal.create ();
    policy;
    index;
    last_arcs = [];
    resident_hwm = 0;
    hosted_total = 0;
    committed = 0;
    aborted = 0;
    deleted_local = 0;
    deleted_forced = 0;
  }

let id t = t.id
let graph_state t = t.gs
let store t = t.store
let wal t = t.wal
let hosts t txn = Gs.mem_txn t.gs txn
let last_arcs t = t.last_arcs

let note_residency t =
  t.resident_hwm <- max t.resident_hwm (Gs.txn_count t.gs)

let host t txn =
  if not (Gs.mem_txn t.gs txn) then begin
    Gs.begin_txn t.gs txn;
    t.hosted_total <- t.hosted_total + 1;
    ignore (Wal.append t.wal (Wal.Begin { txn }));
    note_residency t
  end

let truncate_log t =
  ignore (Wal.truncate_to t.wal ~resident:(fun txn -> Gs.mem_txn t.gs txn))

(* Local arcs are always safe to add: the coordinator accepted the step,
   so no global path [txn ~> src] exists, and local connectivity (real
   arcs are a subset of global ones; bypass arcs only preserve existing
   local paths) is a subset of global connectivity. *)
let add_arcs t ~into sources =
  Intset.iter
    (fun src ->
      Gs.add_arc t.gs ~src ~dst:into;
      t.last_arcs <- (src, into) :: t.last_arcs)
    sources

let apply_read t ~txn ~entity =
  t.last_arcs <- [];
  host t txn;
  let sources = Intset.remove txn (Gs.present_writers t.gs ~entity) in
  add_arcs t ~into:txn sources;
  Gs.record_access t.gs ~txn ~entity ~mode:Access.Read;
  ignore (Store.read t.store ~entity ~reader:txn)

let apply_write t ~txn ~entities ~value =
  t.last_arcs <- [];
  host t txn;
  let sources =
    List.fold_left
      (fun acc entity ->
        Intset.union acc (Gs.present_accessors t.gs ~entity))
      Intset.empty entities
    |> Intset.remove txn
  in
  add_arcs t ~into:txn sources;
  List.iter
    (fun entity ->
      Gs.record_access t.gs ~txn ~entity ~mode:Access.Write;
      Store.write t.store ~entity ~writer:txn ~value;
      ignore (Wal.append t.wal (Wal.Write { txn; entity; value })))
    entities

let complete t txn =
  if Gs.mem_txn t.gs txn && Gs.is_active t.gs txn then begin
    Gs.set_state t.gs txn Transaction.Committed;
    t.committed <- t.committed + 1;
    ignore (Wal.append t.wal (Wal.Commit { txn }))
  end

let abort t txn =
  if Gs.mem_txn t.gs txn then begin
    Gs.abort_txn t.gs txn;
    Store.undo_writes t.store ~txn;
    t.aborted <- t.aborted + 1;
    ignore (Wal.append t.wal (Wal.Abort { txn }));
    truncate_log t
  end

let forget_from_store t deleted =
  Intset.iter (fun txn -> Store.forget_txn t.store ~txn) deleted

let collect_garbage t =
  let deleted = Policy.run ?index:t.index t.policy t.gs in
  if not (Intset.is_empty deleted) then begin
    t.deleted_local <- t.deleted_local + Intset.cardinal deleted;
    forget_from_store t deleted;
    truncate_log t
  end;
  deleted

let apply_global_deletions t global =
  let applied =
    Intset.filter
      (fun txn -> Gs.mem_txn t.gs txn && Gs.is_completed t.gs txn)
      global
  in
  if not (Intset.is_empty applied) then begin
    Intset.iter (fun txn -> Gs.delete_with_bypass t.gs txn) applied;
    t.deleted_forced <- t.deleted_forced + Intset.cardinal applied;
    forget_from_store t applied;
    truncate_log t
  end;
  applied

type stats = {
  resident_txns : int;
  resident_arcs : int;
  active_txns : int;
  resident_hwm : int;
  hosted_total : int;
  committed : int;
  aborted : int;
  deleted_local : int;
  deleted_forced : int;
  store_versions : int;
  wal_retained : int;
  wal_truncated : int;
  resident_bytes : int;
}

let stats t =
  note_residency t;
  {
    resident_txns = Gs.txn_count t.gs;
    resident_arcs = Digraph.arc_count (Gs.graph t.gs);
    active_txns = Intset.cardinal (Gs.active_txns t.gs);
    resident_hwm = t.resident_hwm;
    hosted_total = t.hosted_total;
    committed = t.committed;
    aborted = t.aborted;
    deleted_local = t.deleted_local;
    deleted_forced = t.deleted_forced;
    store_versions = Store.total_versions t.store;
    wal_retained = Wal.length t.wal;
    wal_truncated = Wal.truncated t.wal;
    resident_bytes = Gs.resident_bytes t.gs;
  }
