(** The online transaction-processing engine: partitioned data, batched
    admission, coordinator-exact serializability, deletion-policy GC.

    Composition (see [docs/engine.md] for the full picture):

    {v
     submit --> Admission (batch B) --> per step: Coordinator.decide
                                           |  accepted   |  rejected
                                           v             v
                                   owning Shard(s)   hosting Shards
                                   mirror accesses,  abort + undo
                                   arcs, store, WAL
                                           |
                              Coordinator GC -> broadcast deletions
                              batch end: per-shard local GC
    v}

    Guarantees, asserted by the differential suite ([test_engine.ml]):
    - {e Exactness}: the outcome of every submitted step equals the
      single-node SGT scheduler's outcome on the same (merged) step
      sequence — the coordinator {e is} that scheduler.  Batching
      changes when work happens, never what is decided.
    - {e Residency}: each shard's resident-transaction count never
      exceeds the single-node scheduler's at the same step (broadcast
      GC gives <=; local GC usually does strictly better).
    - {e Data}: each entity's value in its owning shard's store equals
      the single-node store's.

    Basic-model steps only ([Begin]/[Read]/final [Write]); multi-write
    and predeclared engines are future work. *)

type config = {
  shards : int;
  batch : int;
  policy : Dct_deletion.Policy.t;
  partitioner : Partitioner.t;
  oracle : Dct_graph.Cycle_oracle.backend option;
      (** Backend for the {e coordinator}'s graph.  Shards always use
          the default DFS — their graphs are small by construction. *)
  tracer : Dct_telemetry.Tracer.t;
  gc_index : Dct_deletion.Deletability_index.mode option;
      (** Deletability-index backend for {e both} the coordinator's
          global GC and every shard's local GC ([None] = naive
          re-evaluation, the reference path). *)
}

val config :
  ?policy:Dct_deletion.Policy.t ->
  ?partitioner:Partitioner.t ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  shards:int ->
  batch:int ->
  unit ->
  config
(** Defaults: policy [Greedy_c1], hash partitioner over [shards], no
    oracle, disabled tracer, no deletability index.
    @raise Invalid_argument if [shards <= 0], [batch <= 0], or the
    partitioner's shard count differs from [shards]. *)

type t

val create : config -> t

val submit : t -> Dct_txn.Step.t -> unit
(** Queue a step; processes a full batch synchronously when this step
    fills one. *)

val tick : t -> unit
(** Flush and process the pending partial batch (the group-commit
    timer). *)

val pending : t -> int
(** Steps sitting in the admission queue, not yet decided. *)

val set_on_step :
  t -> (int -> Dct_txn.Step.t -> Dct_sched.Scheduler_intf.outcome -> unit) option -> unit
(** Install (or clear) the per-decision callback outside {!run} — the
    hook an incremental feeder (the network server) uses to route each
    outcome back to the submitting client.  Fires with the 1-based
    global step index immediately after the step is decided. *)

val abort : t -> int -> bool
(** Client-initiated abort.  [true] if the transaction was active and
    is now aborted everywhere (coordinator graph and every hosting
    shard); [false] (a no-op) for unknown, completed, or already
    aborted transactions.  Queued steps of the transaction are decided
    [Ignored] when their batch flushes. *)

val steps_processed : t -> int

val shard_count : t -> int
val shard : t -> int -> Shard.t
val coordinator : t -> Coordinator.t
val partitioner : t -> Partitioner.t

val shard_residents : t -> int array
(** Current resident-transaction count per shard. *)

(** {1 Reports} *)

type report = {
  name : string;
  shards : int;
  batch : int;
  steps : int;
  accepted : int;
  rejected : int;
  ignored : int;
  committed : int;
  aborted : int;
  submitted : int;
  full_batches : int;
  ticks : int;
  coordinator : Coordinator.stats;
  shard_stats : Shard.stats array;
  shard_resident_hwm : int;  (** max over shards of the per-shard HWM *)
  cross_shard_arcs : int;
      (** conflict arcs with an endpoint hosted on more than one shard —
          the arcs only the coordinator graph can see in full *)
  local_arcs : int;
  distributed_txns : int;  (** transactions that touched >= 2 shards *)
  wall_seconds : float;
}

val run :
  ?on_step:(int -> Dct_txn.Step.t -> Dct_sched.Scheduler_intf.outcome -> unit) ->
  t ->
  Dct_txn.Step.t list ->
  report
(** Submit every step, tick the final partial batch, run a last GC
    round, flush the tracer and report.  [on_step] fires immediately
    after each step is {e decided} (its argument is the 1-based global
    step index) — the differential harness runs the reference scheduler
    in lock-step from it. *)

val report : t -> wall_seconds:float -> report

val finish : t -> wall_seconds:float -> report
(** The end-of-input epilogue {!run} performs, exposed for incremental
    feeders: flush the pending partial batch, run a final global GC
    round (broadcast included) plus a local round per shard, emit the
    last checkpoint, flush the tracer, and report. *)

(** {1 Differential mode} *)

type differential_report = {
  d_steps : int;
  d_shards : int;
  outcome_mismatches : (int * string * string) list;
      (** (step index, engine outcome, single-node outcome) *)
  residency_violations : (int * int * int * int) list;
      (** (step index, shard, shard resident, single-node resident) *)
  store_mismatches : (int * int * int) list;
      (** (entity, engine value, single-node value) *)
  committed_engine : int;
  committed_single : int;
  aborted_engine : int;
  aborted_single : int;
  engine_shard_peak : int;
  single_peak : int;
}

val differential :
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?partitioner:Partitioner.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  shards:int ->
  batch:int ->
  policy:Dct_deletion.Policy.t ->
  Dct_txn.Step.t list ->
  differential_report
(** Run the engine and a fresh single-node SGT scheduler (same policy)
    over the same step sequence in lock-step and compare: per-step
    outcomes, per-shard residency against single-node residency at the
    same step, and final store contents entity by entity.  [gc_index]
    applies to every GC site on both sides (coordinator, shards, and
    the reference scheduler), so [Checked] turns this into a
    differential over the index as well. *)

val differential_ok : differential_report -> bool

val pp_differential : Format.formatter -> differential_report -> unit
