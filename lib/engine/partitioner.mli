(** Data-item placement: which shard owns which entity.

    The engine partitions {e entities}, not transactions — a transaction
    is hosted on every shard holding an entity it touches.  Placement is
    pure and total, so any component (engine, workload generator, bench
    harness) can agree on ownership without coordination.

    Two strategies:
    - [hash] — modulo placement, [entity mod shards].  Matches the
      generator's shard-affinity option ({!Dct_workload.Generator}),
      which draws keys congruent to a transaction's home shard.
    - [range] — contiguous stripes of [span] entities,
      [(entity / span) mod shards] — the classic range-partitioned
      layout where neighbouring keys colocate. *)

type t

val hash : shards:int -> t
(** [entity mod shards].  @raise Invalid_argument if [shards <= 0]. *)

val range : shards:int -> span:int -> t
(** [(entity / span) mod shards].  @raise Invalid_argument if
    [shards <= 0] or [span <= 0]. *)

val shards : t -> int

val shard_of : t -> int -> int
(** Owning shard of an entity, in [\[0, shards)].  Total — negative
    entities are folded into range. *)

val spec : t -> string
(** Round-trips through {!of_string}: ["hash"] or ["range:<span>"]. *)

val of_string : string -> shards:int -> (t, string) result
(** Parse ["hash" | "range:<span>"] (case-insensitive). *)

val pp : Format.formatter -> t -> unit
