module Step = Dct_txn.Step
module Access = Dct_txn.Access

type profile = {
  n_txns : int;
  n_entities : int;
  mpl : int;
  reads_min : int;
  reads_max : int;
  writes_min : int;
  writes_max : int;
  read_only_fraction : float;
  write_from_reads : float;
  skew : string;
  long_readers : int;
  long_reader_frac : float;
  long_reader_step : float;
  seed : int;
  shards : int;
  cross_shard : float;
  burst_on : int;
  burst_off : int;
}

let default =
  {
    n_txns = 200;
    n_entities = 64;
    mpl = 8;
    reads_min = 2;
    reads_max = 6;
    writes_min = 1;
    writes_max = 3;
    read_only_fraction = 0.1;
    write_from_reads = 0.7;
    skew = "zipf:0.9";
    long_readers = 0;
    long_reader_frac = 0.0;
    long_reader_step = 0.05;
    seed = 42;
    shards = 1;
    cross_shard = 0.1;
    burst_on = 0;
    burst_off = 0;
  }

let pp_profile ppf p =
  Format.fprintf ppf
    "txns=%d entities=%d mpl=%d reads=%d..%d writes=%d..%d ro=%.2f skew=%s \
     long=%d seed=%d"
    p.n_txns p.n_entities p.mpl p.reads_min p.reads_max p.writes_min
    p.writes_max p.read_only_fraction p.skew p.long_readers p.seed;
  if p.shards > 1 then
    Format.fprintf ppf " shards=%d cross=%.2f" p.shards p.cross_shard;
  if p.long_reader_frac > 0.0 then
    Format.fprintf ppf " long_frac=%.3f" p.long_reader_frac;
  if p.burst_off > 0 then
    Format.fprintf ppf " burst=%d/%d" p.burst_on p.burst_off

(* A planned transaction: the entities it will read, in order, and the
   entities of its final write set. *)
type plan = { reads : int list; writes : int list }

let dist_of p =
  match Zipf.of_spec p.skew ~n:p.n_entities with
  | Ok d -> d
  | Error e -> invalid_arg ("Generator: " ^ e)

let range rng lo hi = if hi <= lo then lo else lo + Prng.int rng (hi - lo + 1)

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    l

(* Shard affinity (engine workloads): each transaction has a home shard
   (its id mod [shards], the same modulo placement as
   [Dct_engine.Partitioner.hash]) and its keys are folded into that
   shard's congruence class — except, with probability [cross_shard],
   a key is drawn unconstrained, modelling a distributed transaction.
   With [shards <= 1] the sampler is exactly the historical one and
   consumes exactly the same PRNG draws, so legacy profiles reproduce
   their schedules bit for bit. *)
let home_of p txn = if p.shards <= 1 then 0 else txn mod p.shards

let sample_key p dist rng ~home =
  let e = Zipf.sample dist rng in
  if p.shards <= 1 then e
  else if Prng.bool rng ~p:p.cross_shard then e
  else begin
    let aligned = e - (e mod p.shards) + home in
    if aligned < p.n_entities then aligned else aligned - p.shards
  end

let make_plan p dist rng ~home =
  let n_reads = range rng p.reads_min p.reads_max in
  let reads = dedup (List.init n_reads (fun _ -> sample_key p dist rng ~home)) in
  let writes =
    if Prng.bool rng ~p:p.read_only_fraction then []
    else begin
      let n_writes = range rng p.writes_min p.writes_max in
      let reads_arr = Array.of_list reads in
      dedup
        (List.init n_writes (fun _ ->
             if Array.length reads_arr > 0 && Prng.bool rng ~p:p.write_from_reads
             then Prng.choose rng reads_arr
             else sample_key p dist rng ~home))
    end
  in
  { reads; writes }

(* The interleaving engine.  [render] turns a plan into that model's step
   list (excluding Begin); long readers read one entity at a time and
   complete only after every regular transaction has. *)
(* [long_reader_frac] scales with the workload: the effective long-reader
   population is the fixed [long_readers] plus [frac * n_txns]. *)
let effective_long_readers p =
  if p.long_reader_frac < 0.0 || p.long_reader_frac > 1.0 then
    invalid_arg "Generator: long_reader_frac must be in [0, 1]";
  p.long_readers + int_of_float (p.long_reader_frac *. float_of_int p.n_txns)

let interleave p ~begin_step ~render ~finish_long =
  if p.shards > 1 && p.shards > p.n_entities then
    invalid_arg "Generator: shards must not exceed n_entities";
  if p.burst_off > 0 && p.burst_on <= 0 then
    invalid_arg "Generator: burst_on must be positive when burst_off is";
  let rng = Prng.create ~seed:p.seed in
  let dist = dist_of p in
  let steps = ref [] in
  let emit s = steps := s :: !steps in
  let next_txn = ref 0 in
  let fresh_txn () =
    incr next_txn;
    !next_txn
  in
  (* Long readers: begin first, then receive single read steps. *)
  let long_ids = List.init (effective_long_readers p) (fun _ -> fresh_txn ()) in
  List.iter
    (fun t ->
      let plan =
        {
          reads =
            List.init 64 (fun _ -> sample_key p dist rng ~home:(home_of p t));
          writes = [];
        }
      in
      emit (begin_step t plan))
    long_ids;
  let long_arr = Array.of_list long_ids in
  let long_read t =
    emit (Step.Read (t, sample_key p dist rng ~home:(home_of p t)))
  in
  (* Regular slots. *)
  let slots = Queue.create () in
  let started = ref 0 in
  let activate_now () =
    if !started < p.n_txns then begin
      incr started;
      let t = fresh_txn () in
      let plan = make_plan p dist rng ~home:(home_of p t) in
      emit (begin_step t plan);
      Queue.push (t, ref (render t plan)) slots
    end
  in
  (* Bursty (on/off modulated) arrivals: a logical clock advances once
     per loop iteration; activations requested while the clock sits in
     an off window ([burst_off] positions after every [burst_on]) are
     deferred until the next on window.  If every live slot drains
     mid-off-window the clock fast-forwards to the next on edge, so the
     schedule still contains all [n_txns] transactions.  With
     [burst_off = 0] (the default) no deferral happens and the PRNG
     draw sequence is exactly the historical one. *)
  let clock = ref 0 in
  let period = p.burst_on + p.burst_off in
  let off_phase () = p.burst_off > 0 && !clock mod period >= p.burst_on in
  let deferred = ref 0 in
  let activate () = if off_phase () then incr deferred else activate_now () in
  let release_deferred () =
    while !deferred > 0 && not (off_phase ()) do
      decr deferred;
      activate_now ()
    done
  in
  for _ = 1 to min p.mpl p.n_txns do
    activate ()
  done;
  while (not (Queue.is_empty slots)) || !deferred > 0 do
    if p.burst_off > 0 then begin
      incr clock;
      if Queue.is_empty slots then
        (* nothing left running: skip the rest of the off window *)
        while off_phase () do
          incr clock
        done;
      release_deferred ()
    end;
    if Queue.is_empty slots then ()
    else if Array.length long_arr > 0 && Prng.bool rng ~p:p.long_reader_step
    then
      long_read (Prng.choose rng long_arr)
    else begin
      (* Rotate a uniformly chosen number of slots to vary interleaving. *)
      let n = Queue.length slots in
      for _ = 1 to Prng.int rng n do
        Queue.push (Queue.pop slots) slots
      done;
      let t, remaining = Queue.pop slots in
      match !remaining with
      | [] -> activate () (* slot exhausted: refill *)
      | step :: rest ->
          emit step;
          remaining := rest;
          if rest = [] then begin
            activate ()
          end
          else Queue.push (t, remaining) slots
    end
  done;
  (* Long readers finish last. *)
  List.iter (fun t -> emit (finish_long t)) long_ids;
  List.rev !steps

let basic p =
  interleave p
    ~finish_long:(fun t -> Step.Write (t, []))
    ~begin_step:(fun t _ -> Step.Begin t)
    ~render:(fun t plan ->
      List.map (fun x -> Step.Read (t, x)) plan.reads
      @ [ Step.Write (t, plan.writes) ])

let multiwrite p =
  interleave p
    ~finish_long:(fun t -> Step.Finish t)
    ~begin_step:(fun t _ -> Step.Begin t)
    ~render:(fun t plan ->
      List.map (fun x -> Step.Read (t, x)) plan.reads
      @ List.map (fun x -> Step.Write_one (t, x)) plan.writes
      @ [ Step.Finish t ])

let declaration_of plan =
  let acc =
    List.fold_left
      (fun acc x -> Access.add acc ~entity:x ~mode:Access.Read)
      Access.empty plan.reads
  in
  List.fold_left
    (fun acc x -> Access.add acc ~entity:x ~mode:Access.Write)
    acc plan.writes

let predeclared p =
  if effective_long_readers p > 0 then
    invalid_arg "Generator.predeclared: long readers unsupported (open-ended reads)";
  interleave p
    ~finish_long:(fun t -> Step.Finish t)
    ~begin_step:(fun t plan -> Step.Begin_declared (t, declaration_of plan))
    ~render:(fun t plan ->
      List.map (fun x -> Step.Read (t, x)) plan.reads
      @ List.map (fun x -> Step.Write_one (t, x)) plan.writes)
