(** The load-driver workload catalog: YCSB-style core mixes A–F, a
    TPC-C-like transactional mix, and three adversarial-GC scenarios
    aimed at the paper's deletion machinery (long read-only
    transactions pinning deletability, Zipfian hot-key contention,
    bursty on/off arrivals).

    Every mix is consumed two ways, from the same deterministic
    sampler:

    - {!next_plan} feeds one load-driver client (each call is one
      transaction's access plan; the client begins it, issues the
      reads one at a time, then the final atomic write);
    - {!schedule} renders a self-contained interleaved basic-model
      step list — what [dct bench-net]'s in-process baselines and the
      loopback differential feed to both sides.

    Keys are plain entities: the first [keys] ids are the loaded
    keyspace, inserts allocate fresh ids past it. *)

type kind =
  | Ycsb_a  (** 50% read / 50% update, zipf:0.99 *)
  | Ycsb_b  (** 95% read / 5% update, zipf:0.99 *)
  | Ycsb_c  (** 100% read, zipf:0.99 *)
  | Ycsb_d  (** 95% read (latest distribution) / 5% insert *)
  | Ycsb_e  (** 95% short scans (1–16 keys) / 5% insert *)
  | Ycsb_f  (** 50% read / 50% read-modify-write, zipf:0.99 *)
  | Tpcc
      (** 45% new-order (read district + 5–15 items, write order row +
          stock rows), 43% payment (read+write 1–2 meta rows), 12%
          stock-level (read-only scan) *)
  | Long_reader_pin
      (** YCSB-B traffic, but every 8th transaction is a 48-read
          read-only transaction — active across dozens of completions,
          pinning their deletability (the paper's adversarial regime) *)
  | Hot_key
      (** 75% read-modify-write on a hotspot (5% of keys get 90% of
          ops): maximal conflict-arc density *)
  | Bursty
      (** YCSB-A traffic with on/off modulated arrivals: concurrency
          drains between bursts, so deletability arrives in waves *)

type t = kind

val all : t list
val name : t -> string
val description : t -> string
val of_string : string -> (t, string) result
val names : unit -> string list

val burst : t -> (int * int) option
(** [(on, off)] arrival modulation — milliseconds for drivers, schedule
    positions for {!schedule}.  [None] for every mix but {!Bursty}. *)

type plan = { reads : int list; writes : int list }
(** One transaction: entities read in order, then the final atomic
    write set ([writes = \[\]] is a read-only completion). *)

type sampler
(** Deterministic plan source: PRNG, request distribution, and the
    fresh-key/transaction counters.  One per driver client (with a
    per-client seed), or one per rendered schedule. *)

val sampler : t -> keys:int -> seed:int -> sampler
(** @raise Invalid_argument if [keys < 16]. *)

val next_plan : sampler -> plan

val render_plan : int -> plan -> Dct_txn.Step.t list
(** The plan's basic-model steps for transaction [id], excluding
    [Begin]: the reads in order, then the final [Write]. *)

val schedule : t -> n_txns:int -> keys:int -> mpl:int -> seed:int -> Dct_txn.Step.t list
(** Deterministic interleaved rendering of [n_txns] transactions at
    multiprogramming level [mpl], same slot-rotation discipline as
    {!Generator.interleave}.  The {!Bursty} mix defers transaction
    starts during off windows. *)
