module Step = Dct_txn.Step

type kind =
  | Ycsb_a
  | Ycsb_b
  | Ycsb_c
  | Ycsb_d
  | Ycsb_e
  | Ycsb_f
  | Tpcc
  | Long_reader_pin
  | Hot_key
  | Bursty

type t = kind

let all =
  [
    Ycsb_a;
    Ycsb_b;
    Ycsb_c;
    Ycsb_d;
    Ycsb_e;
    Ycsb_f;
    Tpcc;
    Long_reader_pin;
    Hot_key;
    Bursty;
  ]

let name = function
  | Ycsb_a -> "ycsb-a"
  | Ycsb_b -> "ycsb-b"
  | Ycsb_c -> "ycsb-c"
  | Ycsb_d -> "ycsb-d"
  | Ycsb_e -> "ycsb-e"
  | Ycsb_f -> "ycsb-f"
  | Tpcc -> "tpcc"
  | Long_reader_pin -> "long-reader-pin"
  | Hot_key -> "hot-key"
  | Bursty -> "bursty"

let description = function
  | Ycsb_a -> "update heavy: 50% read / 50% update, zipf:0.99"
  | Ycsb_b -> "read mostly: 95% read / 5% update, zipf:0.99"
  | Ycsb_c -> "read only: 100% read, zipf:0.99"
  | Ycsb_d -> "read latest: 95% read (recency-skewed) / 5% insert"
  | Ycsb_e -> "short ranges: 95% scan (1-16 keys) / 5% insert"
  | Ycsb_f -> "read-modify-write: 50% read / 50% RMW, zipf:0.99"
  | Tpcc -> "TPC-C-like: 45% new-order / 43% payment / 12% stock-level"
  | Long_reader_pin ->
      "adversarial GC: YCSB-B traffic with periodic 48-read read-only \
       transactions pinning deletability"
  | Hot_key -> "adversarial GC: update-heavy hotspot (5% of keys, 90% of ops)"
  | Bursty -> "adversarial GC: YCSB-A traffic with on/off modulated arrivals"

let of_string s =
  match List.find_opt (fun m -> name m = s) all with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown mix %S (expected one of: %s)" s
           (String.concat ", " (List.map name all)))

let names () = List.map name all

(* Drivers modulate arrival on/off phases only for the bursty mix
   (milliseconds on, milliseconds off); schedule rendering uses the
   same ratio in step positions. *)
let burst = function Bursty -> Some (20, 20) | _ -> None

type plan = { reads : int list; writes : int list }

type sampler = {
  mix : t;
  keys : int;
  rng : Prng.t;
  dist : Zipf.t;
  mutable fresh : int;  (** keys inserted so far (allocated past [keys]) *)
  mutable index : int;  (** transactions drawn so far *)
}

(* TPC-C-like key layout inside [0, keys): the first [meta] keys are
   warehouse/district/customer rows, the rest are item/stock rows. *)
let tpcc_meta keys = min 64 (keys / 4)

let sampler mix ~keys ~seed =
  if keys < 16 then invalid_arg "Mix.sampler: keys must be >= 16";
  let dist =
    match mix with
    | Hot_key -> Zipf.hotspot ~n:keys ~hot_fraction:0.05 ~hot_probability:0.9
    | Tpcc ->
        let meta = tpcc_meta keys in
        Zipf.zipf ~n:(keys - meta) ~theta:0.99
    | _ -> Zipf.zipf ~n:keys ~theta:0.99
  in
  { mix; keys; rng = Prng.create ~seed; dist; fresh = 0; index = 0 }

let sample s = Zipf.sample s.dist s.rng

let insert_key s =
  let k = s.keys + s.fresh in
  s.fresh <- s.fresh + 1;
  k

(* YCSB-D's "latest" distribution: recency-skew over everything written
   so far — offsets drawn from the zipf, measured back from the newest
   key (inserted keys first, then the tail of the base keyspace). *)
let latest_key s =
  let newest = s.keys + s.fresh - 1 in
  let k = newest - sample s in
  if k < 0 then 0 else k

let scan_plan s ~len =
  let start = sample s in
  let len = min len (s.keys - start) in
  { reads = List.init len (fun i -> start + i); writes = [] }

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    l

let read_plan k = { reads = [ k ]; writes = [] }
let update_plan k = { reads = []; writes = [ k ] }
let rmw_plan k = { reads = [ k ]; writes = [ k ] }

let tpcc_plan s =
  let meta = tpcc_meta s.keys in
  let item () = meta + sample s in
  let r = Prng.float s.rng in
  if r < 0.45 then begin
    (* new-order: read warehouse + district + 5-15 items, write the
       fresh order row and the items' stock rows *)
    let district = Prng.int s.rng meta in
    let n_items = 5 + Prng.int s.rng 11 in
    let items = dedup (List.init n_items (fun _ -> item ())) in
    { reads = district :: items; writes = insert_key s :: items }
  end
  else if r < 0.88 then begin
    (* payment: read and write warehouse/district/customer rows *)
    let rows = dedup [ Prng.int s.rng meta; Prng.int s.rng meta ] in
    { reads = rows; writes = rows }
  end
  else begin
    (* stock-level: read-only scan over ~20 item rows *)
    let n = 10 + Prng.int s.rng 11 in
    { reads = dedup (List.init n (fun _ -> item ())); writes = [] }
  end

let next_plan s =
  let idx = s.index in
  s.index <- idx + 1;
  match s.mix with
  | Ycsb_a | Bursty ->
      let k = sample s in
      if Prng.bool s.rng ~p:0.5 then read_plan k else update_plan k
  | Ycsb_b ->
      let k = sample s in
      if Prng.bool s.rng ~p:0.95 then read_plan k else update_plan k
  | Ycsb_c -> read_plan (sample s)
  | Ycsb_d ->
      if Prng.bool s.rng ~p:0.95 then read_plan (latest_key s)
      else update_plan (insert_key s)
  | Ycsb_e ->
      if Prng.bool s.rng ~p:0.95 then
        scan_plan s ~len:(1 + Prng.int s.rng 16)
      else update_plan (insert_key s)
  | Ycsb_f ->
      let k = sample s in
      if Prng.bool s.rng ~p:0.5 then read_plan k else rmw_plan k
  | Tpcc -> tpcc_plan s
  | Hot_key ->
      let k = sample s in
      if Prng.bool s.rng ~p:0.25 then read_plan k else rmw_plan k
  | Long_reader_pin ->
      if idx mod 8 = 0 then
        (* a long-running read-only transaction: 48 single-key reads
           issued one at a time keep it active across dozens of other
           transactions' completions, pinning their deletability *)
        { reads = dedup (List.init 48 (fun _ -> sample s)); writes = [] }
      else begin
        let k = sample s in
        if Prng.bool s.rng ~p:0.95 then read_plan k else update_plan k
      end

let render_plan id plan =
  List.map (fun k -> Step.Read (id, k)) plan.reads
  @ [ Step.Write (id, plan.writes) ]

(* Deterministic interleaved rendering: [mpl] concurrent slots, each
   running one plan's steps; a PRNG-rotated queue varies the
   interleaving exactly like {!Generator.interleave}.  The bursty mix
   defers slot refills during off windows of the position clock. *)
let schedule mix ~n_txns ~keys ~mpl ~seed =
  if n_txns <= 0 then invalid_arg "Mix.schedule: n_txns must be positive";
  if mpl <= 0 then invalid_arg "Mix.schedule: mpl must be positive";
  let s = sampler mix ~keys ~seed in
  let steps = ref [] in
  let emit x = steps := x :: !steps in
  let slots = Queue.create () in
  let started = ref 0 in
  let next_id = ref 0 in
  let activate_now () =
    if !started < n_txns then begin
      incr started;
      incr next_id;
      let id = !next_id in
      let plan = next_plan s in
      emit (Step.Begin id);
      Queue.push (ref (render_plan id plan)) slots
    end
  in
  let burst_on, burst_off =
    match burst mix with Some (on, off) -> (on, off) | None -> (0, 0)
  in
  let clock = ref 0 in
  let off_phase () =
    burst_off > 0 && !clock mod (burst_on + burst_off) >= burst_on
  in
  let deferred = ref 0 in
  let activate () = if off_phase () then incr deferred else activate_now () in
  let release_deferred () =
    while !deferred > 0 && not (off_phase ()) do
      decr deferred;
      activate_now ()
    done
  in
  for _ = 1 to min mpl n_txns do
    activate ()
  done;
  while (not (Queue.is_empty slots)) || !deferred > 0 do
    if burst_off > 0 then begin
      incr clock;
      if Queue.is_empty slots then
        while off_phase () do
          incr clock
        done;
      release_deferred ()
    end;
    if Queue.is_empty slots then ()
    else begin
      let n = Queue.length slots in
      for _ = 1 to Prng.int s.rng n do
        Queue.push (Queue.pop slots) slots
      done;
      let remaining = Queue.pop slots in
      match !remaining with
      | [] -> assert false
      | step :: rest ->
          emit step;
          remaining := rest;
          if rest = [] then activate () else Queue.push remaining slots
    end
  done;
  List.rev !steps
