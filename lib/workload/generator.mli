(** Synthetic transaction workloads for all three models.

    A profile fixes the shape (sizes, skew, multiprogramming level,
    long-running readers) and a seed; generation is deterministic.  The
    same profile can be rendered as a basic-model schedule (reads then
    one atomic final write), a multi-write schedule (interleaved writes,
    explicit [Finish]) or a predeclared schedule ([Begin_declared]).

    Long-running readers are the adversarial ingredient the paper's
    residency bound cares about: an active transaction that keeps
    reading pins its tight successors in the graph. *)

type profile = {
  n_txns : int;           (** regular transactions to run to completion *)
  n_entities : int;
  mpl : int;              (** concurrent active regular transactions *)
  reads_min : int;
  reads_max : int;
  writes_min : int;
  writes_max : int;
  read_only_fraction : float;  (** probability a transaction writes nothing *)
  write_from_reads : float;    (** probability a written entity is one that was read *)
  skew : string;               (** distribution spec, see {!Zipf.of_spec} *)
  long_readers : int;          (** extra always-active readers, completing last *)
  long_reader_frac : float;
      (** additional long readers as a fraction of [n_txns] (floored),
          so adversarial-GC profiles scale with workload size; added to
          [long_readers].  Must be in [0, 1]. *)
  long_reader_step : float;    (** probability a given step goes to a long reader *)
  seed : int;
  shards : int;
      (** shard-affine key placement for engine workloads: each
          transaction's home shard is its id mod [shards] (the engine's
          hash placement), and its keys are folded into the home shard's
          congruence class.  [<= 1] disables affinity — and leaves the
          PRNG draw sequence exactly as before, so legacy profiles keep
          their schedules. *)
  cross_shard : float;
      (** probability a key of a shard-affine transaction is drawn
          unconstrained instead (a distributed transaction's remote
          access); only meaningful with [shards > 1] *)
  burst_on : int;
      (** bursty (on/off modulated) arrivals: new transactions may only
          start during on windows of [burst_on] schedule positions... *)
  burst_off : int;
      (** ...separated by off windows of [burst_off] positions during
          which arrivals are deferred (running transactions still
          progress, so concurrency drains between bursts).  [0] (the
          default) disables modulation and leaves the PRNG draw
          sequence exactly as before.  Requires [burst_on > 0] when
          set. *)
}

val default : profile
(** 200 txns, 64 entities, mpl 8, 2–6 reads, 1–3 writes, 10% read-only,
    zipf:0.9, no long readers, seed 42, shards 1 (affinity off),
    cross_shard 0.1, no burst modulation. *)

val basic : profile -> Dct_txn.Schedule.t
val multiwrite : profile -> Dct_txn.Schedule.t
val predeclared : profile -> Dct_txn.Schedule.t

val pp_profile : Format.formatter -> profile -> unit
