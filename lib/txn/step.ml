type t =
  | Begin of int
  | Begin_declared of int * Access.t
  | Read of int * int
  | Write of int * int list
  | Write_one of int * int
  | Finish of int

let txn = function
  | Begin t | Begin_declared (t, _) | Read (t, _) | Write (t, _)
  | Write_one (t, _) | Finish t ->
      t

let accesses = function
  | Begin _ | Begin_declared _ | Finish _ -> []
  | Read (_, x) -> [ (x, Access.Read) ]
  | Write (_, xs) -> List.map (fun x -> (x, Access.Write)) xs
  | Write_one (_, x) -> [ (x, Access.Write) ]

let completes_basic = function Write _ -> true | _ -> false

let equal a b =
  match (a, b) with
  | Begin t1, Begin t2 | Finish t1, Finish t2 -> t1 = t2
  | Begin_declared (t1, a1), Begin_declared (t2, a2) -> t1 = t2 && Access.equal a1 a2
  | Read (t1, x1), Read (t2, x2) | Write_one (t1, x1), Write_one (t2, x2) ->
      t1 = t2 && x1 = x2
  | Write (t1, xs1), Write (t2, xs2) -> t1 = t2 && xs1 = xs2
  | ( ( Begin _ | Begin_declared _ | Read _ | Write _ | Write_one _
      | Finish _ ),
      _ ) ->
      false

let pp ppf = function
  | Begin t -> Format.fprintf ppf "b(T%d)" t
  | Begin_declared (t, a) -> Format.fprintf ppf "b(T%d:%a)" t Access.pp a
  | Read (t, x) -> Format.fprintf ppf "r(T%d,%d)" t x
  | Write (t, xs) ->
      Format.fprintf ppf "W(T%d,[%s])" t
        (String.concat ";" (List.map string_of_int xs))
  | Write_one (t, x) -> Format.fprintf ppf "w(T%d,%d)" t x
  | Finish t -> Format.fprintf ppf "f(T%d)" t

let to_string s = Format.asprintf "%a" pp s

(* The telemetry [step] record is deliberately flat (kind + int lists)
   so Dct_telemetry can sit below this library; these two are the
   lossless bridge. *)
let to_telemetry s : Dct_telemetry.Event.step =
  let mk kind txn reads writes = { Dct_telemetry.Event.kind; txn; reads; writes } in
  match s with
  | Begin t -> mk "begin" t [] []
  | Begin_declared (t, a) ->
      mk "begin_declared" t
        (Dct_graph.Intset.to_sorted_list (Access.reads a))
        (Dct_graph.Intset.to_sorted_list (Access.writes a))
  | Read (t, x) -> mk "read" t [ x ] []
  | Write (t, xs) -> mk "write" t [] xs
  | Write_one (t, x) -> mk "write_one" t [] [ x ]
  | Finish t -> mk "finish" t [] []

let of_telemetry (s : Dct_telemetry.Event.step) =
  match s.kind with
  | "begin" -> Ok (Begin s.txn)
  | "begin_declared" ->
      Ok
        (Begin_declared
           ( s.txn,
             Access.of_list
               (List.map (fun x -> (x, Access.Read)) s.reads
               @ List.map (fun x -> (x, Access.Write)) s.writes) ))
  | "read" -> (
      match s.reads with
      | [ x ] -> Ok (Read (s.txn, x))
      | _ -> Error "read step must carry exactly one read entity")
  | "write" -> Ok (Write (s.txn, s.writes))
  | "write_one" -> (
      match s.writes with
      | [ x ] -> Ok (Write_one (s.txn, x))
      | _ -> Error "write_one step must carry exactly one written entity")
  | "finish" -> Ok (Finish s.txn)
  | k -> Error (Printf.sprintf "unknown step kind %S" k)
