(** Transaction steps — the input alphabet of every scheduler.

    The three transaction models of the paper share one step type:

    - {e basic model} (§2): [Begin], any number of [Read]s, one final
      atomic [Write] (which completes — and, reads being clean, commits —
      the transaction).  A read-only transaction ends with [Write t []].
    - {e multi-write model} (§5): [Begin], interleaved [Read]/[Write_one]
      steps, and an explicit [Finish].  Commit happens later, once the
      transaction no longer depends on active ones.
    - {e predeclared model} (§5): [Begin_declared] carries the full
      read/write sets; subsequent steps must stay inside the
      declaration. *)

type t =
  | Begin of int                          (** BEGIN of transaction [t] *)
  | Begin_declared of int * Access.t      (** BEGIN with predeclared access set *)
  | Read of int * int                     (** [Read (t, x)]: [t] reads entity [x] *)
  | Write of int * int list               (** final atomic write of all listed entities *)
  | Write_one of int * int                (** single write step (multi-write model) *)
  | Finish of int                         (** end of a multi-write transaction *)

val txn : t -> int
(** The transaction performing the step. *)

val accesses : t -> (int * Access.mode) list
(** Entity accesses performed by the step (empty for [Begin]/[Finish]). *)

val completes_basic : t -> bool
(** [true] for the steps that complete a transaction of the basic model
    (the final atomic [Write]). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_telemetry : t -> Dct_telemetry.Event.step
(** Flat encoding for trace lines: kind is one of
    [begin | begin_declared | read | write | write_one | finish]; the
    accessed entities land in [reads]/[writes]. *)

val of_telemetry : Dct_telemetry.Event.step -> (t, string) result
(** Inverse of {!to_telemetry}: [of_telemetry (to_telemetry s)] equals
    [Ok s] up to access-set normalization. *)
