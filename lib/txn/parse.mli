(** Text format for schedules, used by the CLI and example files.

    One step per line; [#] starts a comment; blank lines are skipped.
    Transaction and entity names are arbitrary tokens, interned to ids.

    {v
    b  T1              # BEGIN
    r  T1 x            # T1 reads x
    w  T1 x y          # final atomic write of x and y (completes T1)
    w1 T2 x            # single write step (multi-write model)
    f  T2              # T2 finishes (multi-write model)
    bd T3 r:x,y w:z    # BEGIN with predeclared reads {x,y} and writes {z}
    v}

    Long forms [begin]/[read]/[write]/[write1]/[finish]/[declare] are
    accepted too. *)

type env = { txns : Symtab.t; entities : Symtab.t }

val create_env : unit -> env

val parse_line : env -> string -> (Step.t option, string) result
(** [Ok None] for blank/comment lines.  Errors name the offending token
    (unknown verb, wrong arity, malformed declaration clause). *)

type located = { line : int; step : Step.t }
(** A step together with its 1-based source line — the linter's input. *)

val parse_located :
  ?file:string -> env -> string -> (located list, string) result
(** Like {!parse} but keeps line numbers.  When [file] is given it is
    threaded into error messages ([file:line N: ...]). *)

val parse : env -> string -> (Schedule.t, string) result
(** Parse a whole document; errors are prefixed with the line number. *)

val parse_exn : env -> string -> Schedule.t

val parse_file : env -> string -> (Schedule.t, string) result
(** Read and parse a file; both I/O and parse errors mention the
    filename. *)

val unparse_step : env -> Step.t -> string
val unparse : env -> Schedule.t -> string
