type env = { txns : Symtab.t; entities : Symtab.t }

let create_env () = { txns = Symtab.create (); entities = Symtab.create () }

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* "r:x,y" or "w:z" clauses of a declaration. *)
let parse_decl_clause env acc clause =
  match String.index_opt clause ':' with
  | None ->
      Error
        (Printf.sprintf "malformed declaration clause %S (expected r:... or w:...)"
           clause)
  | Some i ->
      let kind = String.sub clause 0 i in
      let rest = String.sub clause (i + 1) (String.length clause - i - 1) in
      let names = String.split_on_char ',' rest |> List.filter (( <> ) "") in
      let mode =
        match kind with
        | "r" -> Some Access.Read
        | "w" -> Some Access.Write
        | _ -> None
      in
      (match mode with
      | None ->
          Error
            (Printf.sprintf "unknown declaration kind %S in clause %S" kind
               clause)
      | Some mode ->
          Ok
            (List.fold_left
               (fun acc n ->
                 Access.add acc ~entity:(Symtab.intern env.entities n) ~mode)
               acc names))

let arity_error verb ~expected args =
  Error
    (Printf.sprintf "verb %S expects %s, got %d: %s" verb expected
       (List.length args)
       (String.concat " " args))

let parse_line env line =
  let line = strip_comment line in
  match tokens line with
  | [] -> Ok None
  | verb :: args -> (
      let txn name = Symtab.intern env.txns name in
      let entity name = Symtab.intern env.entities name in
      match (String.lowercase_ascii verb, args) with
      | ("b" | "begin"), [ t ] -> Ok (Some (Step.Begin (txn t)))
      | ("b" | "begin"), args -> arity_error verb ~expected:"1 argument (txn)" args
      | ("r" | "read"), [ t; x ] -> Ok (Some (Step.Read (txn t, entity x)))
      | ("r" | "read"), args ->
          arity_error verb ~expected:"2 arguments (txn entity)" args
      | ("w" | "write"), t :: xs ->
          Ok (Some (Step.Write (txn t, List.map entity xs)))
      | ("w" | "write"), [] ->
          arity_error verb ~expected:"at least 1 argument (txn entities...)" []
      | ("w1" | "write1"), [ t; x ] -> Ok (Some (Step.Write_one (txn t, entity x)))
      | ("w1" | "write1"), args ->
          arity_error verb ~expected:"2 arguments (txn entity)" args
      | ("f" | "finish"), [ t ] -> Ok (Some (Step.Finish (txn t)))
      | ("f" | "finish"), args -> arity_error verb ~expected:"1 argument (txn)" args
      | ("bd" | "declare"), t :: clauses -> (
          let acc =
            List.fold_left
              (fun acc clause ->
                match acc with
                | Error _ as e -> e
                | Ok a -> parse_decl_clause env a clause)
              (Ok Access.empty) clauses
          in
          match acc with
          | Error e -> Error e
          | Ok a -> Ok (Some (Step.Begin_declared (txn t, a))))
      | ("bd" | "declare"), [] ->
          arity_error verb ~expected:"at least 1 argument (txn clauses...)" []
      | _ ->
          Error
            (Printf.sprintf
               "unknown verb %S (expected b|r|w|w1|f|bd or a long form)" verb))

type located = { line : int; step : Step.t }

let parse_located ?file env doc =
  let in_file =
    match file with None -> "" | Some f -> Printf.sprintf "%s:" f
  in
  let lines = String.split_on_char '\n' doc in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line env line with
        | Error e -> Error (Printf.sprintf "%sline %d: %s" in_file n e)
        | Ok None -> go (n + 1) acc rest
        | Ok (Some step) -> go (n + 1) ({ line = n; step } :: acc) rest)
  in
  go 1 [] lines

let parse env doc =
  Result.map (List.map (fun l -> l.step)) (parse_located env doc)

let parse_exn env doc =
  match parse env doc with Ok s -> s | Error e -> failwith e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file env path =
  match read_file path with
  | exception Sys_error e -> Error e
  | doc ->
      Result.map
        (List.map (fun l -> l.step))
        (parse_located ~file:path env doc)

let txn_name env t =
  Option.value ~default:(Printf.sprintf "T%d" t) (Symtab.name env.txns t)

let entity_name env x =
  Option.value ~default:(Printf.sprintf "e%d" x) (Symtab.name env.entities x)

let unparse_step env = function
  | Step.Begin t -> Printf.sprintf "b %s" (txn_name env t)
  | Step.Read (t, x) -> Printf.sprintf "r %s %s" (txn_name env t) (entity_name env x)
  | Step.Write (t, xs) ->
      String.concat " " ("w" :: txn_name env t :: List.map (entity_name env) xs)
  | Step.Write_one (t, x) ->
      Printf.sprintf "w1 %s %s" (txn_name env t) (entity_name env x)
  | Step.Finish t -> Printf.sprintf "f %s" (txn_name env t)
  | Step.Begin_declared (t, a) ->
      let names mode set =
        Dct_graph.Intset.elements set
        |> List.map (entity_name env)
        |> String.concat ","
        |> fun s -> Printf.sprintf "%s:%s" mode s
      in
      let clauses =
        (if Dct_graph.Intset.is_empty (Access.reads a) then []
         else [ names "r" (Access.reads a) ])
        @
        if Dct_graph.Intset.is_empty (Access.writes a) then []
        else [ names "w" (Access.writes a) ]
      in
      String.concat " " (("bd" :: [ txn_name env t ]) @ clauses)

let unparse env schedule =
  String.concat "\n" (List.map (unparse_step env) schedule) ^ "\n"
