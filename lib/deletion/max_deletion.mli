(** Choosing {e which} eligible transactions to delete.

    Every safely deletable set is a subset of [M], the transactions
    satisfying C1 (§4) — but not every subset of [M] is safe, and
    Theorem 5 shows that finding a {e maximum} safe subset is
    NP-complete.  This module provides:

    - {!greedy}: a maximal (not maximum) safe set by repeated single
      deletions — each step is safe by Theorem 3, hence so is the whole
      sequence (Theorem 2); polynomial time;
    - {!exact}: the maximum safe subset by branch-and-bound over the
      precomputed requirements of {!Condition_c2} — exponential in
      [|M|] in the worst case, as it must be unless P = NP. *)

val greedy : ?order:[ `Ascending | `Descending ] -> Graph_state.t -> Dct_graph.Intset.t
(** Simulates iterated C1-deletion on a copy and returns the deleted
    set; the input state is not modified.  [order] picks which eligible
    id goes first ([`Ascending] by default — deterministic). *)

val exact : ?index:Deletability_index.t -> Graph_state.t -> Dct_graph.Intset.t
(** A maximum-cardinality safe subset (ties broken towards smaller
    ids).  Exponential worst case; intended for analysis and for the
    Theorem 5 experiments, not for the hot path.  [index] serves the
    candidate set and the C2 discharger sets from the maintained cache
    (identical result). *)

val exact_size : Graph_state.t -> int
(** [Intset.cardinal (exact gs)] without materialising the set twice. *)

val exact_weighted :
  ?index:Deletability_index.t ->
  weight:(int -> int) ->
  Graph_state.t ->
  Dct_graph.Intset.t
(** A maximum-{e weight} safe subset, for non-uniform reclamation value
    (e.g. [weight ti = cardinality of ti's access set] approximates
    freed memory).  Weights must be positive.  Same branch-and-bound,
    bounding by the sum of remaining weights; {!exact} is the special
    case [weight = fun _ -> 1]. *)

val greedy_weighted : weight:(int -> int) -> Graph_state.t -> Dct_graph.Intset.t
(** Maximal safe set preferring heavier transactions first (repeated
    single C1 deletions in descending-weight order). *)

val apply : Graph_state.t -> Dct_graph.Intset.t -> unit
(** Delete the chosen set ({!Reduced_graph.delete_set}). *)
