(** Deletion policies — §4's "algorithm which given the current (reduced)
    graph outputs a set of completed nodes to be deleted".

    Theorem 2: a policy is correct iff it performs only safe deletions.
    The catalogue below contains correct policies of increasing
    aggressiveness, plus the classic {e incorrect} one (commit-time
    deletion) used to demonstrate why conflict-graph schedulers cannot
    close transactions at commit. *)

type t =
  | No_deletion
      (** keep everything — the memory-unbounded strawman *)
  | Unsafe_commit_time
      (** delete every transaction the moment it completes.  Correct for
          locking schedulers, {b incorrect} here: the scheduler may
          accept non-CSR schedules (shown in tests and EX9). *)
  | Noncurrent
      (** Corollary 1: delete completed transactions none of whose
          accesses is still current.  Safe even repeatedly, because the
          discharging current writer is itself never noncurrent. *)
  | Greedy_c1
      (** iterate single C1 deletions until the graph is irreducible —
          maximal, polynomial. *)
  | Exact_max
      (** delete a maximum safe subset (C2 branch-and-bound) —
          exponential worst case; for experiments. *)
  | Exact_max_weighted
      (** like [Exact_max] but maximise the total access-set size of the
          deleted transactions — a freed-memory proxy — instead of their
          count. *)
  | Budget of int * t
      (** [Budget (n, inner)]: run [inner] only when more than [n]
          transactions are resident — amortises deletion work. *)

val name : t -> string

val run :
  ?index:Deletability_index.t -> t -> Graph_state.t -> Dct_graph.Intset.t
(** Apply the policy once (after a step), mutating the state; returns
    the set of deleted transactions.  When the state carries an active
    tracer, the run emits [Deletion_attempted] (the completed
    candidates), [Deletion_ok] and per-candidate [Deletion_blocked]
    events (condition [c1], [c2-max], [noncurrent] or [budget]), feeds
    the ["deletion.<policy>.{attempted,deleted,blocked}"] counters, and
    times the whole call as one ["gc"] probe observation attributed to
    the index backend (["naive"] without one).  Telemetry never changes
    what is deleted.

    [index] must be a {!Deletability_index.t} attached to {e this}
    state; eligibility/noncurrency queries are then answered from the
    maintained cache — [Greedy_c1] becomes a worklist re-checking only
    each deletion's tight neighbourhood, [Noncurrent] reads per-entity
    refcounts, [Exact_max*] reuses cached discharger sets.  Decisions
    are identical with and without (metamorphic-tested); a [Checked]
    index raises {!Deletability_index.Divergence} on any mismatch. *)

val all_correct : t list
(** The correct policies, for sweeps. *)

val of_string : string -> (t, string) result
(** Parse ["none" | "commit" | "noncurrent" | "greedy" | "exact" |
    "exact-weighted" | "budget:<n>:<inner>"] — CLI support.  The
    canonical {!name} spellings are accepted too, so
    [of_string (name p) = Ok p] for every policy (property-tested).
    ["c1"] and ["c2"] are condition-named aliases for [greedy] and
    [exact]. *)
