module Intset = Dct_graph.Intset
module Arena = Dct_graph.Arena
module Traversal = Dct_graph.Traversal

exception Divergence of string

type mode = Naive | Incremental | Checked

let mode_name = function
  | Naive -> "naive"
  | Incremental -> "incremental"
  | Checked -> "checked"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Ok Naive
  | "incremental" | "incr" -> Ok Incremental
  | "checked" -> Ok Checked
  | _ ->
      Error
        (Printf.sprintf
           "unknown gc-index %S (expected naive | incremental | checked)" s)

type cond = C1 | C4

let cond_name = function C1 -> "c1" | C4 -> "c4"

type stats = {
  mutable refreshes : int;
  mutable full_rebuilds : int;
  mutable rechecks : int;
  mutable region_nodes : int;
}

(* Per-transaction cached state lives in slot-indexed stores behind a
   private {!Arena}: a slot is allocated the first time the index caches
   anything for a live transaction and recycled on [Txn_removed], so the
   stores are bounded by the high-water resident population — the
   verdict/tally caches of long-dead transactions cost nothing. *)
type t = {
  gs : Graph_state.t;
  mode : mode;
  cond : cond;
  mutable arena : Arena.t; (* live txns with cached state -> slots *)
  mutable verdicts : Bytes.t; (* slot -> 0 unknown | 1 false | 2 true *)
  mutable covs : Condition_c1.counts option array;
      (* slot of predecessor -> coverage tallies of its completed tight
         successors; doubles as the {!Condition_c1.holds_fast} memo *)
  mutable cts_cache : Intset.t option array;
      (* slot of predecessor -> completed tight successors, for C2 *)
  mutable refcount : int array; (* slot -> #entities it is current on *)
  mutable eligible_set : Intset.t; (* { ti | verdict(ti) = true } *)
  current_of : (int, Intset.t) Hashtbl.t; (* entity -> current accessors *)
  mutable dirty : Intset.t; (* seed txns whose neighbourhood changed *)
  mutable dirty_entities : Intset.t; (* entities with stale accessor sets *)
  mutable all_dirty : bool; (* full rebuild pending (initial state) *)
  stats : stats;
}

let mode t = t.mode
let cond t = t.cond

(* ------------------------------------------------------------------ *)
(* Slot stores *)

let grow_stores t n =
  let cur = Array.length t.covs in
  if n > cur then begin
    let n' = max n (max 16 (2 * cur)) in
    let verdicts = Bytes.make n' '\000' in
    Bytes.blit t.verdicts 0 verdicts 0 (Bytes.length t.verdicts);
    let covs = Array.make n' None in
    let cts = Array.make n' None in
    let refcount = Array.make n' 0 in
    Array.blit t.covs 0 covs 0 cur;
    Array.blit t.cts_cache 0 cts 0 cur;
    Array.blit t.refcount 0 refcount 0 cur;
    t.verdicts <- verdicts;
    t.covs <- covs;
    t.cts_cache <- cts;
    t.refcount <- refcount
  end

(* Slot of [id], allocating one iff [id] is a live transaction.  Stores
   targeting departed ids are dropped on the floor — their state is
   gone, and allocating for them would leak a slot with no [Txn_removed]
   left to free it. *)
let slot_for t id =
  match Arena.find t.arena id with
  | Some s -> Some s
  | None ->
      if Graph_state.mem_txn t.gs id then begin
        let s = Arena.alloc t.arena id in
        grow_stores t (s + 1);
        Some s
      end
      else None

let forget t id =
  match Arena.find t.arena id with
  | None -> ()
  | Some s ->
      Bytes.set t.verdicts s '\000';
      t.covs.(s) <- None;
      t.cts_cache.(s) <- None;
      t.refcount.(s) <- 0;
      ignore (Arena.release t.arena id)

let set_verdict t ti v =
  match slot_for t ti with
  | None -> ()
  | Some s -> Bytes.set t.verdicts s (if v then '\002' else '\001')

let covs_memo t =
  {
    Condition_c1.find =
      (fun tj ->
        match Arena.find t.arena tj with
        | Some s -> t.covs.(s)
        | None -> None);
    store =
      (fun tj c ->
        match slot_for t tj with
        | Some s -> t.covs.(s) <- Some c
        | None -> ());
  }

let invalidate_tallies t v =
  match Arena.find t.arena v with
  | None -> ()
  | Some s ->
      t.covs.(s) <- None;
      t.cts_cache.(s) <- None

(* ------------------------------------------------------------------ *)
(* Invalidation: translate graph mutations into dirty seeds.

   The C1 verdict of a candidate [ti] depends only on its active tight
   predecessors [tj], and for each such [tj] on the accesses of [tj]'s
   completed tight successors.  Tight paths pass through completed
   intermediates only, so:

   - an arc whose destination is still {e active} cannot create, extend
     or re-cover any tight path — active nodes are never intermediates
     and never discharge coverage.  The arc's effect is deferred to the
     destination's later [State_changed] (commit), whose expansion sees
     the arc.  This is what makes per-step arcs free for the index.
   - an access recorded by an {e active} transaction changes no C1
     verdict either (only completed successors' accesses cover, and
     obligations belong to completed candidates), but it does move the
     entity's current-accessor set, so it dirties the entity only.

   C4 tight paths pass through {e anything} and clause (2) covers with
   {e active} members' declared accesses, so for a C4 index every arc
   and every access seeds normally. *)

let on_mutation t (m : Graph_state.mutation) =
  match m with
  | Graph_state.Txn_began _ -> () (* fresh node, no arcs: no verdict moves *)
  | Graph_state.Dependency_added _ -> () (* deps feed C3 only, never indexed *)
  | Graph_state.Arc_added { src; dst } -> (
      match t.cond with
      | C1 ->
          if Graph_state.is_completed t.gs dst then
            t.dirty <- Intset.add src (Intset.add dst t.dirty)
      | C4 -> t.dirty <- Intset.add src (Intset.add dst t.dirty))
  | Graph_state.Access_recorded { txn; entity; _ } -> (
      t.dirty_entities <- Intset.add entity t.dirty_entities;
      match t.cond with
      | C1 ->
          (* only ever completed on exotic direct driving; schedulers
             record accesses for active transactions exclusively *)
          if Graph_state.is_completed t.gs txn then
            t.dirty <- Intset.add txn t.dirty
      | C4 -> t.dirty <- Intset.add txn t.dirty)
  | Graph_state.State_changed id -> t.dirty <- Intset.add id t.dirty
  | Graph_state.Txn_removed { txn; preds; succs; entities; _ } ->
      forget t txn;
      t.eligible_set <- Intset.remove txn t.eligible_set;
      (* The node is gone; seed its surviving neighbours instead.  A
         neighbour removed before the next refresh re-seeds its own
         neighbours in turn (inductive frontier), so chains of deletions
         stay covered.  Bypass arcs preserve pred⇝succ connectivity, so
         expanding from the endpoints reaches everything the removed
         node's own cones reached. *)
      t.dirty <-
        Intset.union (Intset.union preds succs) (Intset.remove txn t.dirty);
      t.dirty_entities <- Intset.union entities t.dirty_entities

(* ------------------------------------------------------------------ *)
(* Refresh *)

let through t =
  match t.cond with
  | C1 -> fun v -> Graph_state.is_completed t.gs v
  | C4 -> fun _ -> true

let cts_of t tj =
  let cached =
    match Arena.find t.arena tj with Some s -> t.cts_cache.(s) | None -> None
  in
  match cached with
  | Some s -> s
  | None -> (
      let s = Tightness.completed_tight_successors t.gs tj in
      match slot_for t tj with
      | Some sl ->
          t.cts_cache.(sl) <- Some s;
          s
      | None -> s)

(* Current-accessor refcount bumps.  A negative bump for a transaction
   the arena no longer tracks is the echo of its own removal (the stale
   [current_of] entry still mentions it) — dropped, so dead ids never
   re-enter the stores. *)
let bump t ti by =
  match slot_for t ti with
  | Some s -> t.refcount.(s) <- t.refcount.(s) + by
  | None -> ()

let refresh_entity t e =
  let cur = Graph_state.current_accessors t.gs ~entity:e in
  let old =
    Option.value ~default:Intset.empty (Hashtbl.find_opt t.current_of e)
  in
  Intset.iter (fun ti -> if not (Intset.mem ti cur) then bump t ti (-1)) old;
  Intset.iter (fun ti -> if not (Intset.mem ti old) then bump t ti 1) cur;
  Hashtbl.replace t.current_of e cur

let check t ti =
  t.stats.rechecks <- t.stats.rechecks + 1;
  match t.cond with
  | C1 -> Condition_c1.holds_fast ~memo:(covs_memo t) t.gs ti
  | C4 -> Condition_c4.holds t.gs ti

let recheck t ti =
  let v = check t ti in
  set_verdict t ti v;
  t.eligible_set <-
    (if v then Intset.add ti t.eligible_set
     else Intset.remove ti t.eligible_set)

let rebuild t =
  t.stats.full_rebuilds <- t.stats.full_rebuilds + 1;
  t.arena <- Arena.create ();
  t.verdicts <- Bytes.create 0;
  t.covs <- [||];
  t.cts_cache <- [||];
  t.refcount <- [||];
  Hashtbl.reset t.current_of;
  t.eligible_set <- Intset.empty;
  Intset.iter (fun ti -> recheck t ti) (Graph_state.completed_txns t.gs);
  Intset.iter (fun e -> refresh_entity t e) (Graph_state.entities t.gs);
  t.dirty <- Intset.empty;
  t.dirty_entities <- Intset.empty;
  t.all_dirty <- false

let refresh t =
  if t.mode = Naive then ()
  else if t.all_dirty then rebuild t
  else begin
    if not (Intset.is_empty t.dirty_entities) then begin
      let es = t.dirty_entities in
      t.dirty_entities <- Intset.empty;
      Intset.iter (refresh_entity t) es
    end;
    if not (Intset.is_empty t.dirty) then begin
      t.stats.refreshes <- t.stats.refreshes + 1;
      let seeds = t.dirty in
      t.dirty <- Intset.empty;
      let pass = through t in
      let g = Graph_state.graph t.gs in
      (* Stage 1: the region — both tight cones of every (surviving)
         seed.  Verdicts of completed members may have moved; coverage
         tallies of every member are suspect. *)
      let region =
        Intset.fold
          (fun s acc ->
            if not (Graph_state.mem_txn t.gs s) then acc
            else
              Intset.add s
                (Intset.union acc
                   (Intset.union
                      (Traversal.reachable ~through:pass g `Bwd s)
                      (Traversal.reachable ~through:pass g `Fwd s))))
          seeds Intset.empty
      in
      t.stats.region_nodes <- t.stats.region_nodes + Intset.cardinal region;
      Intset.iter (invalidate_tallies t) region;
      (* Stage 2: candidates to re-check — completed members of the
         region, plus the completed forward cone of every {e active}
         member: those actives are the predecessors whose discharger
         sets changed, and each of their completed tight successors owes
         its verdict to them even when it lies outside the region. *)
      let candidates =
        ref (Intset.filter (Graph_state.is_completed t.gs) region)
      in
      Intset.iter
        (fun v ->
          if Graph_state.is_active t.gs v then
            let cone =
              match t.cond with
              | C1 -> cts_of t v
              | C4 ->
                  Intset.filter
                    (Graph_state.is_completed t.gs)
                    (Traversal.reachable ~through:(fun _ -> true) g `Fwd v)
            in
            candidates := Intset.union !candidates cone)
        region;
      Intset.iter (fun ti -> recheck t ti) !candidates
    end
  end

(* ------------------------------------------------------------------ *)
(* Queries *)

let naive_eligible t =
  match t.cond with
  | C1 -> Condition_c1.eligible t.gs
  | C4 -> Condition_c4.eligible t.gs

let eligible t =
  match t.mode with
  | Naive -> naive_eligible t
  | Incremental ->
      refresh t;
      t.eligible_set
  | Checked ->
      refresh t;
      let reference = naive_eligible t in
      if not (Intset.equal reference t.eligible_set) then
        raise
          (Divergence
             (Format.asprintf
                "eligible(%s): incremental %a <> naive %a" (cond_name t.cond)
                Intset.pp t.eligible_set Intset.pp reference));
      t.eligible_set

let refcount_noncurrent t ti =
  match Arena.find t.arena ti with
  | None -> true
  | Some s -> t.refcount.(s) = 0

let noncurrent t ti =
  match t.mode with
  | Naive -> Condition_c1.noncurrent t.gs ti
  | Incremental ->
      refresh t;
      refcount_noncurrent t ti
  | Checked ->
      refresh t;
      let inc = refcount_noncurrent t ti in
      let reference = Condition_c1.noncurrent t.gs ti in
      if inc <> reference then
        raise
          (Divergence
             (Printf.sprintf "noncurrent(T%d): incremental %b <> naive %b" ti
                inc reference));
      inc

let completed_tight_successors t tj =
  match t.mode with
  | Naive -> Tightness.completed_tight_successors t.gs tj
  | Incremental ->
      refresh t;
      cts_of t tj
  | Checked ->
      refresh t;
      let cached = cts_of t tj in
      let reference = Tightness.completed_tight_successors t.gs tj in
      if not (Intset.equal cached reference) then
        raise
          (Divergence
             (Format.asprintf "cts(T%d): cached %a <> naive %a" tj Intset.pp
                cached Intset.pp reference));
      cached

let stats t =
  [
    ("refreshes", t.stats.refreshes);
    ("full_rebuilds", t.stats.full_rebuilds);
    ("rechecks", t.stats.rechecks);
    ("region_nodes", t.stats.region_nodes);
  ]

let attach ?(cond = C1) mode gs =
  let t =
    {
      gs;
      mode;
      cond;
      arena = Arena.create ();
      verdicts = Bytes.create 0;
      covs = [||];
      cts_cache = [||];
      refcount = [||];
      eligible_set = Intset.empty;
      current_of = Hashtbl.create 64;
      dirty = Intset.empty;
      dirty_entities = Intset.empty;
      all_dirty = true;
      stats = { refreshes = 0; full_rebuilds = 0; rechecks = 0; region_nodes = 0 };
    }
  in
  (match mode with
  | Naive -> () (* pure delegation: no subscription, no cached state *)
  | Incremental | Checked -> Graph_state.on_mutation gs (on_mutation t));
  t
