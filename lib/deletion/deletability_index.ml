module Intset = Dct_graph.Intset
module Traversal = Dct_graph.Traversal

exception Divergence of string

type mode = Naive | Incremental | Checked

let mode_name = function
  | Naive -> "naive"
  | Incremental -> "incremental"
  | Checked -> "checked"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Ok Naive
  | "incremental" | "incr" -> Ok Incremental
  | "checked" -> Ok Checked
  | _ ->
      Error
        (Printf.sprintf
           "unknown gc-index %S (expected naive | incremental | checked)" s)

type cond = C1 | C4

let cond_name = function C1 -> "c1" | C4 -> "c4"

type stats = {
  mutable refreshes : int;
  mutable full_rebuilds : int;
  mutable rechecks : int;
  mutable region_nodes : int;
}

type t = {
  gs : Graph_state.t;
  mode : mode;
  cond : cond;
  verdicts : (int, bool) Hashtbl.t; (* completed txn -> cached verdict *)
  mutable eligible_set : Intset.t; (* { ti | verdicts(ti) } *)
  covs : (int, Condition_c1.counts) Hashtbl.t;
      (* predecessor -> coverage tallies of its completed tight
         successors; doubles as the {!Condition_c1.holds_fast} memo *)
  cts_cache : (int, Intset.t) Hashtbl.t;
      (* predecessor -> completed tight successors, for C2 [prepare] *)
  current_of : (int, Intset.t) Hashtbl.t; (* entity -> current accessors *)
  refcount : (int, int) Hashtbl.t; (* txn -> #entities it is current on *)
  mutable dirty : Intset.t; (* seed txns whose neighbourhood changed *)
  mutable dirty_entities : Intset.t; (* entities with stale accessor sets *)
  mutable all_dirty : bool; (* full rebuild pending (initial state) *)
  stats : stats;
}

let mode t = t.mode
let cond t = t.cond

(* ------------------------------------------------------------------ *)
(* Invalidation: translate graph mutations into dirty seeds.

   The C1 verdict of a candidate [ti] depends only on its active tight
   predecessors [tj], and for each such [tj] on the accesses of [tj]'s
   completed tight successors.  Tight paths pass through completed
   intermediates only, so:

   - an arc whose destination is still {e active} cannot create, extend
     or re-cover any tight path — active nodes are never intermediates
     and never discharge coverage.  The arc's effect is deferred to the
     destination's later [State_changed] (commit), whose expansion sees
     the arc.  This is what makes per-step arcs free for the index.
   - an access recorded by an {e active} transaction changes no C1
     verdict either (only completed successors' accesses cover, and
     obligations belong to completed candidates), but it does move the
     entity's current-accessor set, so it dirties the entity only.

   C4 tight paths pass through {e anything} and clause (2) covers with
   {e active} members' declared accesses, so for a C4 index every arc
   and every access seeds normally. *)

let on_mutation t (m : Graph_state.mutation) =
  match m with
  | Graph_state.Txn_began _ -> () (* fresh node, no arcs: no verdict moves *)
  | Graph_state.Dependency_added _ -> () (* deps feed C3 only, never indexed *)
  | Graph_state.Arc_added { src; dst } -> (
      match t.cond with
      | C1 ->
          if Graph_state.is_completed t.gs dst then
            t.dirty <- Intset.add src (Intset.add dst t.dirty)
      | C4 -> t.dirty <- Intset.add src (Intset.add dst t.dirty))
  | Graph_state.Access_recorded { txn; entity; _ } -> (
      t.dirty_entities <- Intset.add entity t.dirty_entities;
      match t.cond with
      | C1 ->
          (* only ever completed on exotic direct driving; schedulers
             record accesses for active transactions exclusively *)
          if Graph_state.is_completed t.gs txn then
            t.dirty <- Intset.add txn t.dirty
      | C4 -> t.dirty <- Intset.add txn t.dirty)
  | Graph_state.State_changed id -> t.dirty <- Intset.add id t.dirty
  | Graph_state.Txn_removed { txn; preds; succs; entities; _ } ->
      Hashtbl.remove t.verdicts txn;
      Hashtbl.remove t.covs txn;
      Hashtbl.remove t.cts_cache txn;
      Hashtbl.remove t.refcount txn;
      t.eligible_set <- Intset.remove txn t.eligible_set;
      (* The node is gone; seed its surviving neighbours instead.  A
         neighbour removed before the next refresh re-seeds its own
         neighbours in turn (inductive frontier), so chains of deletions
         stay covered.  Bypass arcs preserve pred⇝succ connectivity, so
         expanding from the endpoints reaches everything the removed
         node's own cones reached. *)
      t.dirty <-
        Intset.union (Intset.union preds succs) (Intset.remove txn t.dirty);
      t.dirty_entities <- Intset.union entities t.dirty_entities

(* ------------------------------------------------------------------ *)
(* Refresh *)

let through t =
  match t.cond with
  | C1 -> fun v -> Graph_state.is_completed t.gs v
  | C4 -> fun _ -> true

let cts_of t tj =
  match Hashtbl.find_opt t.cts_cache tj with
  | Some s -> s
  | None ->
      let s = Tightness.completed_tight_successors t.gs tj in
      Hashtbl.replace t.cts_cache tj s;
      s

let bump t tbl ti by =
  ignore t;
  let n = Option.value ~default:0 (Hashtbl.find_opt tbl ti) in
  Hashtbl.replace tbl ti (n + by)

let refresh_entity t e =
  let cur = Graph_state.current_accessors t.gs ~entity:e in
  let old =
    Option.value ~default:Intset.empty (Hashtbl.find_opt t.current_of e)
  in
  Intset.iter
    (fun ti -> if not (Intset.mem ti cur) then bump t t.refcount ti (-1))
    old;
  Intset.iter
    (fun ti -> if not (Intset.mem ti old) then bump t t.refcount ti 1)
    cur;
  Hashtbl.replace t.current_of e cur

let check t ti =
  t.stats.rechecks <- t.stats.rechecks + 1;
  match t.cond with
  | C1 -> Condition_c1.holds_fast ~memo:t.covs t.gs ti
  | C4 -> Condition_c4.holds t.gs ti

let recheck t ti =
  let v = check t ti in
  Hashtbl.replace t.verdicts ti v;
  t.eligible_set <-
    (if v then Intset.add ti t.eligible_set
     else Intset.remove ti t.eligible_set)

let rebuild t =
  t.stats.full_rebuilds <- t.stats.full_rebuilds + 1;
  Hashtbl.reset t.verdicts;
  Hashtbl.reset t.covs;
  Hashtbl.reset t.cts_cache;
  Hashtbl.reset t.current_of;
  Hashtbl.reset t.refcount;
  t.eligible_set <- Intset.empty;
  Intset.iter (fun ti -> recheck t ti) (Graph_state.completed_txns t.gs);
  Intset.iter (fun e -> refresh_entity t e) (Graph_state.entities t.gs);
  t.dirty <- Intset.empty;
  t.dirty_entities <- Intset.empty;
  t.all_dirty <- false

let refresh t =
  if t.mode = Naive then ()
  else if t.all_dirty then rebuild t
  else begin
    if not (Intset.is_empty t.dirty_entities) then begin
      let es = t.dirty_entities in
      t.dirty_entities <- Intset.empty;
      Intset.iter (refresh_entity t) es
    end;
    if not (Intset.is_empty t.dirty) then begin
      t.stats.refreshes <- t.stats.refreshes + 1;
      let seeds = t.dirty in
      t.dirty <- Intset.empty;
      let pass = through t in
      let g = Graph_state.graph t.gs in
      (* Stage 1: the region — both tight cones of every (surviving)
         seed.  Verdicts of completed members may have moved; coverage
         tallies of every member are suspect. *)
      let region =
        Intset.fold
          (fun s acc ->
            if not (Graph_state.mem_txn t.gs s) then acc
            else
              Intset.add s
                (Intset.union acc
                   (Intset.union
                      (Traversal.reachable ~through:pass g `Bwd s)
                      (Traversal.reachable ~through:pass g `Fwd s))))
          seeds Intset.empty
      in
      t.stats.region_nodes <- t.stats.region_nodes + Intset.cardinal region;
      Intset.iter
        (fun v ->
          Hashtbl.remove t.covs v;
          Hashtbl.remove t.cts_cache v)
        region;
      (* Stage 2: candidates to re-check — completed members of the
         region, plus the completed forward cone of every {e active}
         member: those actives are the predecessors whose discharger
         sets changed, and each of their completed tight successors owes
         its verdict to them even when it lies outside the region. *)
      let candidates =
        ref (Intset.filter (Graph_state.is_completed t.gs) region)
      in
      Intset.iter
        (fun v ->
          if Graph_state.is_active t.gs v then
            let cone =
              match t.cond with
              | C1 -> cts_of t v
              | C4 ->
                  Intset.filter
                    (Graph_state.is_completed t.gs)
                    (Traversal.reachable ~through:(fun _ -> true) g `Fwd v)
            in
            candidates := Intset.union !candidates cone)
        region;
      Intset.iter (fun ti -> recheck t ti) !candidates
    end
  end

(* ------------------------------------------------------------------ *)
(* Queries *)

let naive_eligible t =
  match t.cond with
  | C1 -> Condition_c1.eligible t.gs
  | C4 -> Condition_c4.eligible t.gs

let eligible t =
  match t.mode with
  | Naive -> naive_eligible t
  | Incremental ->
      refresh t;
      t.eligible_set
  | Checked ->
      refresh t;
      let reference = naive_eligible t in
      if not (Intset.equal reference t.eligible_set) then
        raise
          (Divergence
             (Format.asprintf
                "eligible(%s): incremental %a <> naive %a" (cond_name t.cond)
                Intset.pp t.eligible_set Intset.pp reference));
      t.eligible_set

let refcount_noncurrent t ti =
  match Hashtbl.find_opt t.refcount ti with None -> true | Some n -> n = 0

let noncurrent t ti =
  match t.mode with
  | Naive -> Condition_c1.noncurrent t.gs ti
  | Incremental ->
      refresh t;
      refcount_noncurrent t ti
  | Checked ->
      refresh t;
      let inc = refcount_noncurrent t ti in
      let reference = Condition_c1.noncurrent t.gs ti in
      if inc <> reference then
        raise
          (Divergence
             (Printf.sprintf "noncurrent(T%d): incremental %b <> naive %b" ti
                inc reference));
      inc

let completed_tight_successors t tj =
  match t.mode with
  | Naive -> Tightness.completed_tight_successors t.gs tj
  | Incremental ->
      refresh t;
      cts_of t tj
  | Checked ->
      refresh t;
      let cached = cts_of t tj in
      let reference = Tightness.completed_tight_successors t.gs tj in
      if not (Intset.equal cached reference) then
        raise
          (Divergence
             (Format.asprintf "cts(T%d): cached %a <> naive %a" tj Intset.pp
                cached Intset.pp reference));
      cached

let stats t =
  [
    ("refreshes", t.stats.refreshes);
    ("full_rebuilds", t.stats.full_rebuilds);
    ("rechecks", t.stats.rechecks);
    ("region_nodes", t.stats.region_nodes);
  ]

let attach ?(cond = C1) mode gs =
  let t =
    {
      gs;
      mode;
      cond;
      verdicts = Hashtbl.create 64;
      eligible_set = Intset.empty;
      covs = Hashtbl.create 64;
      cts_cache = Hashtbl.create 64;
      current_of = Hashtbl.create 64;
      refcount = Hashtbl.create 64;
      dirty = Intset.empty;
      dirty_entities = Intset.empty;
      all_dirty = true;
      stats = { refreshes = 0; full_rebuilds = 0; rechecks = 0; region_nodes = 0 };
    }
  in
  (match mode with
  | Naive -> () (* pure delegation: no subscription, no cached state *)
  | Incremental | Checked -> Graph_state.on_mutation gs (on_mutation t));
  t
