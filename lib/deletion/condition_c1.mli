(** Condition C1 — Theorem 1 (and Theorem 3 for reduced graphs).

    A completed transaction [Ti] may be safely removed iff

    {e (C1) for every active tight predecessor [Tj] of [Ti] and every
    entity [x] accessed by [Ti], some completed tight successor
    [Tk ≠ Ti] of [Tj] accesses [x] at least as strongly as [Ti].}

    By Theorem 3 the very same test applies to any reduced graph, which
    is what makes repeated deletion possible. *)

val coverage : Graph_state.t -> Dct_graph.Intset.t -> Dct_txn.Access.t
(** Strongest access per entity over a set of transactions — the
    combined covering power of a discharger set. *)

val holds : Graph_state.t -> int -> bool
(** [holds gs ti] — C1 for [ti].  [false] when [ti] is absent or not
    completed (only completed transactions are ever deletable). *)

val witnesses : Graph_state.t -> int -> (int * int) list
(** The violating pairs [(tj, x)]: [tj] is an active tight predecessor
    with no completed tight successor covering entity [x] at [ti]'s
    strength.  Empty iff {!holds}.  These are the "witnesses" of the
    paper's a·e irreducibility argument. *)

type counts
(** Per-entity (writer, reader) tallies over a discharger set — a
    candidate-independent summary of one predecessor's completed tight
    successors, built once and queried per obligation. *)

val cover_counts : Graph_state.t -> Dct_graph.Intset.t -> counts
(** Tally the {e full} completed-tight-successor set of a predecessor,
    candidate included. *)

val counts_cover : counts -> entity:int -> mode:Dct_txn.Access.mode -> bool
(** Is the obligation covered by the tallied set {e minus the candidate
    itself}?  Sound only when the candidate is a member of the tallied
    set (always true for its own active tight predecessors): the
    candidate contributes exactly one tally at exactly the obligation's
    strength, so cover-by-someone-else is a count [>= 2]. *)

type memo = {
  find : int -> counts option;
  store : int -> counts -> unit;
}
(** A pluggable predecessor-tally cache for {!holds_fast}: [find] is
    consulted before building a predecessor's tallies, [store] records a
    freshly built one.  {!hashtbl_memo} is the ad-hoc sweep flavour; the
    incremental {!Deletability_index} plugs in its slot-indexed store. *)

val hashtbl_memo : unit -> memo
(** A fresh hashtable-backed {!memo}. *)

val holds_fast : ?memo:memo -> Graph_state.t -> int -> bool
(** Decision-identical to {!holds} but short-circuits on the first
    uncovered obligation and tests coverage by counting rather than by
    building per-(candidate, predecessor) access-set unions.  [memo]
    shares predecessor tallies across calls {e against the same
    unmodified state} — pass one memo per {!eligible}-style sweep,
    never across mutations.  Use {!holds}/{!witnesses} when the actual
    violating pairs matter (audit, adversarial construction). *)

val eligible : Graph_state.t -> Dct_graph.Intset.t
(** All completed transactions satisfying C1 — the paper's set [M].
    Computed with {!holds_fast} and a per-call predecessor memo. *)

val noncurrent : Graph_state.t -> int -> bool
(** Corollary 1's sufficient condition: no access of the transaction
    touched a still-current value.  [noncurrent gs ti] implies
    [holds gs ti] on conflict graphs (property-tested). *)

val adversarial_continuation :
  Graph_state.t ->
  int ->
  fresh_txn:int ->
  fresh_entity:int ->
  Dct_txn.Schedule.t option
(** The necessity construction of Theorem 1: when C1 fails for [ti],
    build a continuation [r = s·t] such that after deleting [ti] the
    reduced scheduler accepts every step of [r] while the last step
    closes a cycle in the unreduced graph.  [fresh_txn] must be an
    unused transaction id and [fresh_entity] an entity never accessed.
    [None] when C1 holds. *)
