(** Condition C2 — Theorem 4: safe deletion of a {e set} of completed
    transactions.

    {e (C2) for every [Ti ∈ N], every active tight predecessor [Tj] of
    [Ti] and every entity [x] accessed by [Ti], some completed tight
    successor of [Tj] {b not in N} accesses [x] at least as strongly as
    [Ti].}

    All tightness is with respect to the current graph [G]; Theorem 4
    shows this is equivalent to deleting the members one by one, in any
    order.  Note the paper's counterintuitive phenomenon: two
    transactions can each satisfy C1 while their pair violates C2
    (Example 1: [{T2, T3}]). *)

val holds : Graph_state.t -> Dct_graph.Intset.t -> bool
(** [holds gs n] — C2 for the set [n].  [false] if some member is
    absent or not completed. *)

val violations : Graph_state.t -> Dct_graph.Intset.t -> (int * int * int) list
(** The violating triples [(ti, tj, x)]. *)

(** {1 Precomputed form}

    For search (branch and bound in {!Max_deletion}) the quantification
    is flattened once into {e requirements}: for each candidate [Ti], for
    each (active tight predecessor, entity) obligation, the set of
    completed transactions able to discharge it.  [N] is then safe iff
    every requirement of every chosen [Ti] retains a discharger outside
    [N] — and requirement sets do not depend on [N]. *)

type requirements

val prepare :
  ?index:Deletability_index.t ->
  Graph_state.t ->
  candidates:Dct_graph.Intset.t ->
  requirements
(** [index] lets the flattening reuse the deletability index's cached
    per-predecessor discharger sets instead of recomputing the tight
    cones; the result is identical.  Either way, each predecessor's set
    is resolved at most once per call. *)

val feasible : requirements -> Dct_graph.Intset.t -> bool
(** Same answer as {!holds} for any [N ⊆ candidates] (property-tested
    against it). *)

val requirement_sets : requirements -> int -> Dct_graph.Intset.t list
(** The discharger sets of one candidate (for heuristics/inspection). *)
