module Intset = Dct_graph.Intset
module Tracer = Dct_telemetry.Tracer
module Event = Dct_telemetry.Event
module Probe = Dct_telemetry.Probe

type t =
  | No_deletion
  | Unsafe_commit_time
  | Noncurrent
  | Greedy_c1
  | Exact_max
  | Exact_max_weighted
  | Budget of int * t

let rec name = function
  | No_deletion -> "none"
  | Unsafe_commit_time -> "commit-time(unsafe)"
  | Noncurrent -> "noncurrent"
  | Greedy_c1 -> "greedy-c1"
  | Exact_max -> "exact-max"
  | Exact_max_weighted -> "exact-max-weighted"
  | Budget (n, inner) -> Printf.sprintf "budget(%d,%s)" n (name inner)

let delete_all gs set =
  Reduced_graph.delete_set gs set;
  set

let rec run_raw ?index policy gs =
  match policy with
  | No_deletion -> Intset.empty
  | Unsafe_commit_time -> delete_all gs (Graph_state.completed_txns gs)
  | Noncurrent ->
      let noncurrent =
        match index with
        | Some idx -> fun ti -> Deletability_index.noncurrent idx ti
        | None -> Condition_c1.noncurrent gs
      in
      delete_all gs (Intset.filter noncurrent (Graph_state.completed_txns gs))
  | Greedy_c1 ->
      (* Delete in place, re-evaluating eligibility after each removal
         (deleting one transaction can disable another's C1).  With an
         index this becomes a worklist: each deletion dirties only the
         removed node's tight neighbourhood, and the next [eligible]
         re-checks exactly that region. *)
      let eligible () =
        match index with
        | Some idx -> Deletability_index.eligible idx
        | None -> Condition_c1.eligible gs
      in
      let rec loop deleted =
        let m = eligible () in
        if Intset.is_empty m then deleted
        else begin
          let ti = Intset.min_elt m in
          Reduced_graph.delete gs ti;
          loop (Intset.add ti deleted)
        end
      in
      loop Intset.empty
  | Exact_max -> delete_all gs (Max_deletion.exact ?index gs)
  | Exact_max_weighted ->
      let weight ti =
        max 1 (Dct_txn.Access.cardinal (Graph_state.accesses gs ti))
      in
      delete_all gs (Max_deletion.exact_weighted ?index ~weight gs)
  | Budget (limit, inner) ->
      if Graph_state.txn_count gs > limit then run_raw ?index inner gs
      else Intset.empty

(* Which condition stops a surviving candidate from being deleted under
   this policy — the "reason" attached to Deletion_blocked events.
   Evaluated before the run (Budget's threshold looks at the resident
   count the policy saw). *)
let rec blocking_condition gs = function
  | No_deletion | Unsafe_commit_time -> None
  | Noncurrent -> Some "noncurrent"
  | Greedy_c1 -> Some "c1"
  | Exact_max | Exact_max_weighted -> Some "c2-max"
  | Budget (limit, inner) ->
      if Graph_state.txn_count gs > limit then blocking_condition gs inner
      else Some "budget"

let gc_backend = function
  | None -> "naive"
  | Some idx -> Deletability_index.mode_name (Deletability_index.mode idx)

let run ?index policy gs =
  let tracer = Graph_state.tracer gs in
  if (not (Tracer.active tracer)) && Tracer.metrics tracer = None then
    run_raw ?index policy gs
  else if policy = No_deletion then run_raw ?index policy gs
  else begin
    let pname = name policy in
    let candidates = Graph_state.completed_txns gs in
    let condition = blocking_condition gs policy in
    if not (Intset.is_empty candidates) then begin
      Tracer.event tracer (fun () ->
          Event.Deletion_attempted
            { policy = pname; candidates = Intset.to_sorted_list candidates });
      Tracer.incr
        ~by:(Intset.cardinal candidates)
        tracer
        (Printf.sprintf "deletion.%s.attempted" pname)
    end;
    let deleted =
      (* one gc observation per policy run: the latency the sweeps and
         the [dct trace] gc table attribute per index backend *)
      Probe.obs (Tracer.probe tracer) ~op:"gc" ~backend:(gc_backend index)
        (fun () -> run_raw ?index policy gs)
    in
    if not (Intset.is_empty deleted) then begin
      Tracer.event tracer (fun () ->
          Event.Deletion_ok
            { policy = pname; deleted = Intset.to_sorted_list deleted });
      Tracer.incr
        ~by:(Intset.cardinal deleted)
        tracer
        (Printf.sprintf "deletion.%s.deleted" pname)
    end;
    (* Candidates that survived the run were examined and refused. *)
    let blocked = Intset.inter candidates (Graph_state.completed_txns gs) in
    (match condition with
    | Some condition when not (Intset.is_empty blocked) ->
        Tracer.incr
          ~by:(Intset.cardinal blocked)
          tracer
          (Printf.sprintf "deletion.%s.blocked" pname);
        Intset.iter
          (fun ti ->
            Tracer.event tracer (fun () ->
                Event.Deletion_blocked { policy = pname; txn = ti; condition }))
          blocked
    | Some _ | None -> ());
    deleted
  end

let all_correct =
  [ No_deletion; Noncurrent; Greedy_c1; Exact_max; Budget (32, Greedy_c1) ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Accepts both the short CLI spellings and the canonical {!name} output,
   so [of_string (name p) = Ok p] for every policy (round-trip tested). *)
let rec of_string s =
  match String.lowercase_ascii s with
  | "none" -> Ok No_deletion
  | "commit" | "commit-time(unsafe)" -> Ok Unsafe_commit_time
  | "noncurrent" -> Ok Noncurrent
  | "greedy" | "greedy-c1" | "c1" -> Ok Greedy_c1
  | "exact" | "exact-max" | "c2" -> Ok Exact_max
  | "exact-weighted" | "exact-max-weighted" -> Ok Exact_max_weighted
  | s when has_prefix ~prefix:"budget:" s -> (
      let rest = String.sub s 7 (String.length s - 7) in
      match String.index_opt rest ':' with
      | None -> Error "budget policy needs budget:<n>:<inner>"
      | Some i -> (
          let n = String.sub rest 0 i in
          let inner = String.sub rest (i + 1) (String.length rest - i - 1) in
          match (int_of_string_opt n, of_string inner) with
          | Some n, Ok inner -> Ok (Budget (n, inner))
          | None, _ -> Error (Printf.sprintf "bad budget size %S" n)
          | _, (Error _ as e) -> e))
  | s
    when has_prefix ~prefix:"budget(" s
         && String.length s > 8
         && s.[String.length s - 1] = ')' -> (
      (* canonical form budget(<n>,<inner>) *)
      let rest = String.sub s 7 (String.length s - 8) in
      match String.index_opt rest ',' with
      | None -> Error "budget policy needs budget(<n>,<inner>)"
      | Some i -> (
          let n = String.sub rest 0 i in
          let inner = String.sub rest (i + 1) (String.length rest - i - 1) in
          match (int_of_string_opt n, of_string inner) with
          | Some n, Ok inner -> Ok (Budget (n, inner))
          | None, _ -> Error (Printf.sprintf "bad budget size %S" n)
          | _, (Error _ as e) -> e))
  | _ ->
      Error
        (Printf.sprintf
           "unknown policy %S (expected none | commit | noncurrent | greedy \
            (alias: c1) | exact (alias: c2) | exact-weighted | \
            budget:<n>:<inner>)"
           s)
