module Intset = Dct_graph.Intset

type t =
  | No_deletion
  | Unsafe_commit_time
  | Noncurrent
  | Greedy_c1
  | Exact_max
  | Exact_max_weighted
  | Budget of int * t

let rec name = function
  | No_deletion -> "none"
  | Unsafe_commit_time -> "commit-time(unsafe)"
  | Noncurrent -> "noncurrent"
  | Greedy_c1 -> "greedy-c1"
  | Exact_max -> "exact-max"
  | Exact_max_weighted -> "exact-max-weighted"
  | Budget (n, inner) -> Printf.sprintf "budget(%d,%s)" n (name inner)

let delete_all gs set =
  Reduced_graph.delete_set gs set;
  set

let rec run policy gs =
  match policy with
  | No_deletion -> Intset.empty
  | Unsafe_commit_time -> delete_all gs (Graph_state.completed_txns gs)
  | Noncurrent ->
      delete_all gs
        (Intset.filter (Condition_c1.noncurrent gs) (Graph_state.completed_txns gs))
  | Greedy_c1 ->
      (* Delete in place, re-evaluating eligibility after each removal
         (deleting one transaction can disable another's C1). *)
      let rec loop deleted =
        let m = Condition_c1.eligible gs in
        if Intset.is_empty m then deleted
        else begin
          let ti = Intset.min_elt m in
          Reduced_graph.delete gs ti;
          loop (Intset.add ti deleted)
        end
      in
      loop Intset.empty
  | Exact_max -> delete_all gs (Max_deletion.exact gs)
  | Exact_max_weighted ->
      let weight ti =
        max 1 (Dct_txn.Access.cardinal (Graph_state.accesses gs ti))
      in
      delete_all gs (Max_deletion.exact_weighted ~weight gs)
  | Budget (limit, inner) ->
      if Graph_state.txn_count gs > limit then run inner gs else Intset.empty

let all_correct =
  [ No_deletion; Noncurrent; Greedy_c1; Exact_max; Budget (32, Greedy_c1) ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Accepts both the short CLI spellings and the canonical {!name} output,
   so [of_string (name p) = Ok p] for every policy (round-trip tested). *)
let rec of_string s =
  match String.lowercase_ascii s with
  | "none" -> Ok No_deletion
  | "commit" | "commit-time(unsafe)" -> Ok Unsafe_commit_time
  | "noncurrent" -> Ok Noncurrent
  | "greedy" | "greedy-c1" -> Ok Greedy_c1
  | "exact" | "exact-max" -> Ok Exact_max
  | "exact-weighted" | "exact-max-weighted" -> Ok Exact_max_weighted
  | s when has_prefix ~prefix:"budget:" s -> (
      let rest = String.sub s 7 (String.length s - 7) in
      match String.index_opt rest ':' with
      | None -> Error "budget policy needs budget:<n>:<inner>"
      | Some i -> (
          let n = String.sub rest 0 i in
          let inner = String.sub rest (i + 1) (String.length rest - i - 1) in
          match (int_of_string_opt n, of_string inner) with
          | Some n, Ok inner -> Ok (Budget (n, inner))
          | None, _ -> Error (Printf.sprintf "bad budget size %S" n)
          | _, (Error _ as e) -> e))
  | s
    when has_prefix ~prefix:"budget(" s
         && String.length s > 8
         && s.[String.length s - 1] = ')' -> (
      (* canonical form budget(<n>,<inner>) *)
      let rest = String.sub s 7 (String.length s - 8) in
      match String.index_opt rest ',' with
      | None -> Error "budget policy needs budget(<n>,<inner>)"
      | Some i -> (
          let n = String.sub rest 0 i in
          let inner = String.sub rest (i + 1) (String.length rest - i - 1) in
          match (int_of_string_opt n, of_string inner) with
          | Some n, Ok inner -> Ok (Budget (n, inner))
          | None, _ -> Error (Printf.sprintf "bad budget size %S" n)
          | _, (Error _ as e) -> e))
  | _ ->
      Error
        (Printf.sprintf
           "unknown policy %S (expected none|commit|noncurrent|greedy|exact|exact-weighted|budget:<n>:<inner>)"
           s)
