module Intset = Dct_graph.Intset
module Access = Dct_txn.Access
module Step = Dct_txn.Step

(* Strongest access per entity over a set of transactions. *)
let coverage gs txns =
  Intset.fold
    (fun tk acc -> Access.union acc (Graph_state.accesses gs tk))
    txns Access.empty

let witnesses gs ti =
  if not (Graph_state.mem_txn gs ti) then
    invalid_arg (Printf.sprintf "Condition_c1.witnesses: T%d absent" ti);
  if not (Graph_state.is_completed gs ti) then
    invalid_arg (Printf.sprintf "Condition_c1.witnesses: T%d not completed" ti);
  let acc_i = Graph_state.accesses gs ti in
  let atp = Tightness.active_tight_predecessors gs ti in
  Intset.fold
    (fun tj ws ->
      let cts =
        Intset.remove ti (Tightness.completed_tight_successors gs tj)
      in
      let cover = coverage gs cts in
      Access.fold
        (fun ~entity ~mode ws ->
          let covered =
            match Access.find cover ~entity with
            | Some m -> Access.at_least_as_strong m mode
            | None -> false
          in
          if covered then ws else (tj, entity) :: ws)
        acc_i ws)
    atp []
  |> List.rev

let holds gs ti =
  Graph_state.mem_txn gs ti
  && Graph_state.is_completed gs ti
  && witnesses gs ti = []

(* Per-entity (writers, readers) tallies over a discharger set.  Because
   an access set stores only the strongest mode per entity, each member
   contributes exactly one tally per entity it touched — which makes
   excluding the candidate itself pure arithmetic (see {!counts_cover})
   instead of a per-(candidate, predecessor) set rebuild. *)
type counts = (int, int * int) Hashtbl.t

let cover_counts gs cts : counts =
  let h = Hashtbl.create 16 in
  Intset.iter
    (fun tk ->
      Access.iter
        (fun ~entity ~mode ->
          let w, r =
            Option.value ~default:(0, 0) (Hashtbl.find_opt h entity)
          in
          match mode with
          | Access.Write -> Hashtbl.replace h entity (w + 1, r)
          | Access.Read -> Hashtbl.replace h entity (w, r + 1))
        (Graph_state.accesses gs tk))
    cts;
  h

(* Is the candidate's obligation (entity, mode) covered by the tally set
   minus the candidate itself?  The candidate is always a member (it is
   a completed tight successor of each of its own active tight
   predecessors) and contributes exactly one tally at exactly [mode]'s
   strength, so "someone else at least as strong" is a count >= 2. *)
let counts_cover (counts : counts) ~entity ~mode =
  let w, r = Option.value ~default:(0, 0) (Hashtbl.find_opt counts entity) in
  match mode with Access.Write -> w >= 2 | Access.Read -> w + r >= 2

exception Uncovered

(* A pluggable tally cache: the ad-hoc sweeps use a hashtable, the
   incremental deletability index plugs its slot-indexed store in. *)
type memo = {
  find : int -> counts option;
  store : int -> counts -> unit;
}

let hashtbl_memo () =
  let tbl : (int, counts) Hashtbl.t = Hashtbl.create 16 in
  { find = Hashtbl.find_opt tbl; store = Hashtbl.replace tbl }

let holds_fast ?memo gs ti =
  Graph_state.mem_txn gs ti
  && Graph_state.is_completed gs ti
  &&
  let acc_i = Graph_state.accesses gs ti in
  let atp = Tightness.active_tight_predecessors gs ti in
  let counts_of tj =
    let build () =
      cover_counts gs (Tightness.completed_tight_successors gs tj)
    in
    match memo with
    | None -> build ()
    | Some m -> (
        match m.find tj with
        | Some c -> c
        | None ->
            let c = build () in
            m.store tj c;
            c)
  in
  try
    Intset.iter
      (fun tj ->
        let counts = counts_of tj in
        Access.iter
          (fun ~entity ~mode ->
            if not (counts_cover counts ~entity ~mode) then raise Uncovered)
          acc_i)
      atp;
    true
  with Uncovered -> false

let eligible gs =
  (* Candidates sharing an active tight predecessor share its tally set:
     one memo per call keeps the naive path at one coverage build per
     predecessor instead of one per (candidate, predecessor) pair. *)
  let memo = hashtbl_memo () in
  Intset.filter (fun ti -> holds_fast ~memo gs ti) (Graph_state.completed_txns gs)

let noncurrent gs ti =
  let entities = Access.entities (Graph_state.accesses gs ti) in
  not
    (Intset.exists
       (fun x -> Intset.mem ti (Graph_state.current_accessors gs ~entity:x))
       entities)

let adversarial_continuation gs ti ~fresh_txn ~fresh_entity =
  match witnesses gs ti with
  | [] -> None
  | (tj, x) :: _ ->
      let mode_i =
        match Access.find (Graph_state.accesses gs ti) ~entity:x with
        | Some m -> m
        | None -> assert false (* witnesses only mention accessed entities *)
      in
      let others =
        Intset.to_sorted_list (Intset.remove tj (Graph_state.active_txns gs))
      in
      let y = fresh_entity in
      (* Phase s: abort every active transaction except Tj by funnelling
         them through a conflict on the fresh entity y. *)
      let s_phase =
        if others = [] then []
        else
          List.map (fun a -> Step.Read (a, y)) others
          @ [ Step.Begin fresh_txn; Step.Write (fresh_txn, [ y ]) ]
          @ List.map (fun a -> Step.Write (a, [ y ])) others
      in
      (* Final step t: touch x in the weakest mode conflicting with Ti's
         access, closing the cycle Tj ⇝ Ti -> Tj in the full graph. *)
      let t_phase =
        match mode_i with
        | Access.Write -> [ Step.Read (tj, x) ]
        | Access.Read -> [ Step.Write (tj, [ x ]) ]
      in
      Some (s_phase @ t_phase)
