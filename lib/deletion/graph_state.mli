(** The scheduler's data structure: a {e reduced graph} of a schedule.

    §4 of the paper defines a reduced graph of a schedule [p] as any
    acyclic graph whose nodes are (non-deleted) transactions of [p]
    including all active ones, carrying an arc for every pair of present
    transactions that executed conflicting steps (plus possibly extra
    arcs inherited from earlier removals).  This module bundles that
    graph with the per-transaction payloads the deletion conditions
    need — lifecycle state, access set, declared future accesses,
    read-from dependencies — and with per-entity indexes that make the
    scheduler rules and condition checks fast.

    All conditions (C1–C4) and all schedulers operate on this type. *)

type t

(** Structural change notifications for incremental consumers (the
    {!Deletability_index}).  Fired {e after} the state change lands.
    [Txn_removed] snapshots the node's neighbourhood {e before} removal
    (a subscriber cannot recover it afterwards); [reduction] is [true]
    for a bypass deletion by the policy and [false] for an abort.  Note
    the bypass arcs materialised by a reduction do {e not} fire
    [Arc_added] — they are implied by the removal's [preds]×[succs]. *)
type mutation =
  | Txn_began of int
  | Arc_added of { src : int; dst : int }
  | Access_recorded of { txn : int; entity : int; mode : Dct_txn.Access.mode }
  | State_changed of int
  | Dependency_added of { dependent : int; on_ : int }
  | Txn_removed of {
      txn : int;
      reduction : bool;
      preds : Dct_graph.Intset.t;
      succs : Dct_graph.Intset.t;
      entities : Dct_graph.Intset.t;
      deps : Dct_graph.Intset.t;
    }

val on_mutation : t -> (mutation -> unit) -> unit
(** Subscribe to mutations, in registration order.  Subscribers must not
    mutate the state from inside the callback.  {!copy} drops all
    subscriptions (a replica's speculative mutations would otherwise
    corrupt an index attached to the original). *)

val create :
  ?with_closure:bool ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  unit ->
  t
(** Without either option, cycle checks fall back to a DFS on the plain
    graph.  [oracle] selects a maintained cycle-detection backend:
    [Closure] (the §3 remark — reachability-row probes, safe deletion is
    erasing the node, aborts recompute affected rows), [Topo]
    (Pearce–Kelly incremental topological order — near-free checks on
    sparse graphs, rebuild-free deletion) or [Checked] (both in
    lock-step, raising {!Dct_graph.Cycle_oracle.Disagreement} on any
    divergence).  [with_closure:true] (default false) is the historical
    spelling of [~oracle:Closure] and is kept for compatibility; when
    both are given, [oracle] wins.  All backends are
    decision-equivalent, so the choice is a cost profile, not a
    semantics (benchmarked in the oracle sweep).  [tracer] (default
    {!Dct_telemetry.Tracer.disabled}) is the run-wide telemetry handle:
    its probe times every oracle query (backend ["dfs"] on the
    fallback), and the rules/policies emit decision and deletion events
    through it. *)

val copy : t -> t
(** Deep copy — used by the test oracles that replay continuations on
    both the reduced and the unreduced state.  The copy's tracer is
    {e disabled} and its oracle carries no probe: speculative replays
    never appear in the live trace. *)

val tracer : t -> Dct_telemetry.Tracer.t

val set_tracer : t -> Dct_telemetry.Tracer.t -> unit
(** Swap the tracing handle; also re-points the oracle's timing probe. *)

(** {1 Transactions} *)

val begin_txn : ?declared:Dct_txn.Access.t -> t -> int -> unit
(** Rule 1: add a fresh [Active] node.  @raise Invalid_argument if the
    id is already present. *)

val mem_txn : t -> int -> bool
val txn : t -> int -> Dct_txn.Transaction.t
(** @raise Not_found when absent. *)

val state : t -> int -> Dct_txn.Transaction.state
val set_state : t -> int -> Dct_txn.Transaction.state -> unit
val accesses : t -> int -> Dct_txn.Access.t

val is_active : t -> int -> bool
(** [false] for absent nodes. *)

val is_completed : t -> int -> bool
(** Finished or committed; [false] for absent nodes. *)

val active_txns : t -> Dct_graph.Intset.t
val completed_txns : t -> Dct_graph.Intset.t
val all_txns : t -> Dct_graph.Intset.t
val txn_count : t -> int

(** {1 Accesses and the entity index} *)

val record_access : t -> txn:int -> entity:int -> mode:Dct_txn.Access.mode -> unit
(** Updates the transaction's access set, the per-entity reader/writer
    index, and current-value accessor tracking (a write supersedes all
    previous accessors of the entity). *)

val present_writers : t -> entity:int -> Dct_graph.Intset.t
(** Present transactions that have written the entity (Rule 2 sources). *)

val present_accessors : t -> entity:int -> Dct_graph.Intset.t
(** Present transactions that have read or written it (Rule 3 sources). *)

val current_accessors : t -> entity:int -> Dct_graph.Intset.t
(** Transactions (present or not) that read or wrote the entity's
    {e current} value — i.e. accessed it and it was not overwritten
    since.  Powers Corollary 1's noncurrent test. *)

val entities : t -> Dct_graph.Intset.t
(** Entities touched so far. *)

val access_history : t -> entity:int -> (int * Dct_txn.Access.mode * int) list
(** Raw per-entity access log of {e present} transactions, newest first:
    (transaction, mode, global sequence number).  The certifier uses the
    sequence numbers to orient arcs at certification time. *)

(** {1 Dependencies (multi-write model)} *)

val add_dependency : t -> dependent:int -> on_:int -> unit
(** [dependent] read a value written by the still-uncommitted [on_]. *)

val direct_deps : t -> int -> Dct_graph.Intset.t

val dependents_closure : t -> Dct_graph.Intset.t -> Dct_graph.Intset.t
(** [M⁺]: all transactions that (transitively) depend on a member of the
    given set, including the set itself. *)

(** {1 The graph} *)

val graph : t -> Dct_graph.Digraph.t
(** The underlying conflict graph.  Callers must treat it as read-only;
    mutation goes through {!add_arc}, {!abort_txn} and
    {!Reduced_graph.delete}. *)

val add_arc : t -> src:int -> dst:int -> unit

val reaches : t -> src:int -> dst:int -> bool
(** [true] iff a non-empty path [src ⇝ dst] exists — answered by the
    oracle when one is maintained, by DFS otherwise. *)

val reaches_any : t -> src:int -> dsts:Dct_graph.Intset.t -> bool
(** Does [src] reach some member of [dsts]?  One oracle probe / clipped
    search rather than [|dsts|] independent queries. *)

val would_cycle : t -> into:int -> sources:Dct_graph.Intset.t -> bool
(** Would adding the arcs [s -> into] for every [s] in [sources] close a
    cycle?  (True iff some source is reachable from [into], or [into]
    itself is a source.) *)

val abort_txn : t -> int -> unit
(** Plain removal: node and incident arcs disappear (no bypass), the
    transaction is dropped from indexes, state bookkeeping forgets it.
    This is what happens to a transaction whose step is rejected. *)

val was_aborted : t -> int -> bool
(** Has this id been {!abort_txn}-ed before?  Later steps of an aborted
    transaction are ignored by the rules, not treated as errors. *)

val aborted_txns : t -> Dct_graph.Intset.t
(** All ids ever passed to {!abort_txn}. *)

val was_deleted : t -> int -> bool
(** Has this id been removed by the reduction {!delete_with_bypass}
    (i.e. by the deletion policy)?  Disjoint from {!was_aborted}. *)

val deleted_txns : t -> Dct_graph.Intset.t
(** All ids ever deleted through the reduction — the auditor's record of
    what the policy has forgotten. *)

val oracle : t -> Dct_graph.Cycle_oracle.t option
(** The maintained cycle-detection oracle, when one was requested at
    {!create} — read-only use (the invariant checker verifies it against
    the graph). *)

val closure : t -> Dct_graph.Closure.t option
(** The maintained transitive closure, when the selected oracle keeps
    one ([Closure] or [Checked] backends) — read-only use. *)

val is_acyclic : t -> bool

val resident_bytes : t -> int
(** Deterministic estimate, in bytes, of the resident graph substrate:
    conflict graph, maintained oracle, slot-indexed transaction and
    dependency stores, and the entity index.  The audit tombstone sets
    ({!aborted_txns}/{!deleted_txns}) are excluded — they record
    history, not resident state.  Derived from capacities and live
    counts only, so two replicas driven by identical operation
    sequences report identical values (the parallel engine's shard
    replicas and the socket server depend on this for byte-identical
    traces). *)

(** {1 Internal — used by {!Reduced_graph}} *)

val forget_txn_record : t -> int -> unit
(** Remove the payload and index entries of a node already detached from
    the graph.  Does not touch current-accessor history (deletion must
    not rewrite database facts). *)

val delete_with_bypass : t -> int -> unit
(** The reduction [D(G, T)] on the graph, the maintained closure (when
    present) and the bookkeeping, in one step.  Use
    {!Reduced_graph.delete}, which adds the eligibility checks. *)

val check_invariants : t -> (unit, string) result
(** Structural self-check, used by the fuzzing tests: graph nodes =
    transaction records; the graph is acyclic; per-entity histories
    mention only present transactions; the dependency maps are mutually
    consistent and mention only present transactions. *)

val pp : Format.formatter -> t -> unit
