module Intset = Dct_graph.Intset

let greedy ?(order = `Ascending) gs =
  let gs = Graph_state.copy gs in
  let pick s =
    match order with
    | `Ascending -> Intset.min_elt s
    | `Descending -> Intset.max_elt s
  in
  let rec loop deleted =
    let m = Condition_c1.eligible gs in
    if Intset.is_empty m then deleted
    else begin
      let ti = pick m in
      Reduced_graph.delete gs ti;
      loop (Intset.add ti deleted)
    end
  in
  loop Intset.empty

let candidates_of ?index gs =
  match index with
  | Some idx -> Deletability_index.eligible idx
  | None -> Condition_c1.eligible gs

let exact ?index gs =
  let candidates = candidates_of ?index gs in
  let reqs = Condition_c2.prepare ?index gs ~candidates in
  let elems = Array.of_list (Intset.to_sorted_list candidates) in
  let k = Array.length elems in
  let best = ref Intset.empty in
  (* Feasibility is antitone (shrinking N can only help), so we can
     prune a branch as soon as the chosen set is infeasible. *)
  let rec go i chosen size =
    if size > Intset.cardinal !best then best := chosen;
    if i < k && size + (k - i) > Intset.cardinal !best then begin
      (* Include elems.(i) first: favours larger sets early, and the
         ascending enumeration breaks ties towards smaller ids. *)
      let with_i = Intset.add elems.(i) chosen in
      if Condition_c2.feasible reqs with_i then go (i + 1) with_i (size + 1);
      go (i + 1) chosen size
    end
  in
  go 0 Intset.empty 0;
  !best

let exact_size gs = Intset.cardinal (exact gs)

let exact_weighted ?index ~weight gs =
  let candidates = candidates_of ?index gs in
  Intset.iter
    (fun ti ->
      if weight ti <= 0 then
        invalid_arg "Max_deletion.exact_weighted: weights must be positive")
    candidates;
  let reqs = Condition_c2.prepare ?index gs ~candidates in
  (* Heaviest first so good bounds appear early. *)
  let elems =
    List.sort
      (fun a b -> compare (weight b, a) (weight a, b))
      (Intset.to_sorted_list candidates)
    |> Array.of_list
  in
  let k = Array.length elems in
  let suffix_weight = Array.make (k + 1) 0 in
  for i = k - 1 downto 0 do
    suffix_weight.(i) <- suffix_weight.(i + 1) + weight elems.(i)
  done;
  let best = ref Intset.empty and best_w = ref 0 in
  let rec go i chosen w =
    if w > !best_w then begin
      best := chosen;
      best_w := w
    end;
    if i < k && w + suffix_weight.(i) > !best_w then begin
      let with_i = Intset.add elems.(i) chosen in
      if Condition_c2.feasible reqs with_i then
        go (i + 1) with_i (w + weight elems.(i));
      go (i + 1) chosen w
    end
  in
  go 0 Intset.empty 0;
  !best

let greedy_weighted ~weight gs =
  let gs = Graph_state.copy gs in
  let rec loop deleted =
    let m = Condition_c1.eligible gs in
    if Intset.is_empty m then deleted
    else begin
      (* Heaviest eligible transaction first; ties towards smaller id. *)
      let ti =
        Intset.fold
          (fun v best ->
            match best with
            | None -> Some v
            | Some b ->
                if (weight v, -v) > (weight b, -b) then Some v else best)
          m None
        |> Option.get
      in
      Reduced_graph.delete gs ti;
      loop (Intset.add ti deleted)
    end
  in
  loop Intset.empty

let apply gs n = Reduced_graph.delete_set gs n
