module Intset = Dct_graph.Intset
module Traversal = Dct_graph.Traversal
module Access = Dct_txn.Access
module Step = Dct_txn.Step
module Transaction = Dct_txn.Transaction
module Tracer = Dct_telemetry.Tracer

type outcome = Accepted | Rejected | Ignored

let pp_outcome ppf o =
  Format.pp_print_string ppf
    (match o with
    | Accepted -> "accepted"
    | Rejected -> "rejected"
    | Ignored -> "ignored")

let malformed fmt = Printf.ksprintf invalid_arg fmt

(* Arc sources for a read: present writers of the entity (Rule 2). *)
let read_sources gs t x = Intset.remove t (Graph_state.present_writers gs ~entity:x)

(* Arc sources for the final write: present transactions that previously
   read or wrote any written entity (Rule 3). *)
let write_sources gs t xs =
  List.fold_left
    (fun acc x -> Intset.union acc (Graph_state.present_accessors gs ~entity:x))
    Intset.empty xs
  |> Intset.remove t

let check_known gs t =
  if not (Graph_state.mem_txn gs t) then
    malformed "Rules.apply: step of unknown transaction T%d" t

let check_active gs t =
  check_known gs t;
  if not (Graph_state.is_active gs t) then
    malformed "Rules.apply: step of completed transaction T%d" t

(* A path [into ⇝ s] for some arc source [s] — proof that adding
   [s -> into] closes a cycle.  Computed with a plain DFS on the graph
   (never through the oracle) so tracing adds no oracle queries and a
   traced run's probe record matches the untraced run's exactly. *)
let cycle_witness gs ~into ~sources =
  if Intset.mem into sources then [ into ]
  else
    let g = Graph_state.graph gs in
    match
      Intset.fold
        (fun s acc ->
          match acc with
          | Some _ -> acc
          | None -> Traversal.find_path g ~src:into ~dst:s)
        sources None
    with
    | Some path -> path
    | None -> []

let trace_rejection gs t ~sources =
  let tracer = Graph_state.tracer gs in
  if Tracer.active tracer then begin
    let witness = cycle_witness gs ~into:t ~sources in
    Tracer.event tracer (fun () ->
        Dct_telemetry.Event.Cycle_rejected { txn = t; witness })
  end;
  Tracer.incr tracer "rules.cycle_rejected"

let apply gs step =
  let t = Step.txn step in
  if Graph_state.was_aborted gs t then Ignored
  else
    match step with
    | Step.Begin _ ->
        Graph_state.begin_txn gs t;
        Accepted
    | Step.Begin_declared _ ->
        malformed "Rules.apply: predeclared step in the basic model"
    | Step.Write_one _ | Step.Finish _ ->
        malformed "Rules.apply: multi-write step in the basic model"
    | Step.Read (_, x) ->
        check_active gs t;
        let sources = read_sources gs t x in
        if Graph_state.would_cycle gs ~into:t ~sources then begin
          trace_rejection gs t ~sources;
          Graph_state.abort_txn gs t;
          Rejected
        end
        else begin
          Intset.iter (fun s -> Graph_state.add_arc gs ~src:s ~dst:t) sources;
          Graph_state.record_access gs ~txn:t ~entity:x ~mode:Access.Read;
          Accepted
        end
    | Step.Write (_, xs) ->
        check_active gs t;
        let sources = write_sources gs t xs in
        if Graph_state.would_cycle gs ~into:t ~sources then begin
          trace_rejection gs t ~sources;
          Graph_state.abort_txn gs t;
          Rejected
        end
        else begin
          Intset.iter (fun s -> Graph_state.add_arc gs ~src:s ~dst:t) sources;
          List.iter
            (fun x -> Graph_state.record_access gs ~txn:t ~entity:x ~mode:Access.Write)
            xs;
          (* Atomic final write: reads were clean, so completion is
             commit (§2, assumption 1). *)
          Graph_state.set_state gs t Transaction.Committed;
          Accepted
        end

let would_accept gs step =
  let t = Step.txn step in
  if Graph_state.was_aborted gs t then true
  else
    match step with
    | Step.Begin _ -> true
    | Step.Begin_declared _ | Step.Write_one _ | Step.Finish _ -> false
    | Step.Read (_, x) ->
        check_active gs t;
        not (Graph_state.would_cycle gs ~into:t ~sources:(read_sources gs t x))
    | Step.Write (_, xs) ->
        check_active gs t;
        not (Graph_state.would_cycle gs ~into:t ~sources:(write_sources gs t xs))

let apply_all gs schedule = List.map (apply gs) schedule

let accepted_subschedule gs schedule =
  let gs' = Graph_state.copy gs in
  ignore (apply_all gs' schedule);
  Dct_txn.Schedule.project schedule ~keep:(fun t ->
      not (Graph_state.was_aborted gs' t))
