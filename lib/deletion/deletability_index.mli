(** Incremental deletability index — cached C1/C4 verdicts with
    dirty-set invalidation.

    Every deletion policy otherwise re-derives eligibility from scratch
    on every garbage-collection call: tight cones and coverage unions
    per candidate, over the whole resident set.  This index subscribes
    to {!Graph_state.mutation} events and maintains the verdicts online,
    re-checking only transactions whose {e tight neighbourhood} changed:

    - an arc into a still-{e active} destination dirties nothing (active
      nodes are never tight-path intermediates and never discharge
      coverage; the destination's later commit covers the arc),
    - a commit ([State_changed]) or a removal dirties both tight cones
      of the affected node, plus — for every {e active} member of that
      region — the active's completed tight successors (the candidates
      whose discharger set just changed, even outside the region),
    - an access by an active transaction dirties only the entity's
      current-accessor refcounts (powering {!noncurrent}).

    The index answers exactly the questions {!Policy.run} asks; the
    naive per-call derivation remains the reference implementation and
    the [Checked] mode runs both in lock-step, raising {!Divergence} on
    any mismatch — mirroring [Cycle_oracle.Checked].  See [docs/gc.md]
    for the invalidation argument and the cost model. *)

exception Divergence of string
(** A [Checked] index caught the incremental answer disagreeing with the
    naive reference — always a bug, never a recoverable condition. *)

type mode = Naive | Incremental | Checked

val mode_name : mode -> string
val mode_of_string : string -> (mode, string) result
(** Accepts [naive | incremental (alias: incr) | checked]. *)

(** Which condition the index caches: [C1] (conflict-graph schedulers,
    the default) or [C4] (the predeclared model).  The multi-write C3 is
    deliberately {e not} indexable: its verdict depends on dependency
    closures whose changes are not bounded by any tight neighbourhood
    (see [docs/gc.md]). *)
type cond = C1 | C4

type t

val attach : ?cond:cond -> mode -> Graph_state.t -> t
(** Subscribe an index to the state's mutation feed.  [Naive] attaches
    nothing and delegates every query (a baseline spelling, so callers
    can thread one [t] uniformly); the first query of an
    [Incremental]/[Checked] index performs one full rebuild, after which
    only dirty regions are re-checked.  Attach at creation time: an
    index attached to a state with prior unobserved mutations would need
    its initial rebuild anyway (and gets one), but mutations concurrent
    with no subscription are only sound {e before} that first query.
    Note {!Graph_state.copy} drops subscriptions — re-attach to copies
    explicitly. *)

val mode : t -> mode
val cond : t -> cond

val eligible : t -> Dct_graph.Intset.t
(** The condition's eligible set, identical to
    {!Condition_c1.eligible}/{!Condition_c4.eligible} on the current
    state.  @raise Divergence in [Checked] mode on any mismatch. *)

val noncurrent : t -> int -> bool
(** Corollary 1 via maintained per-entity current-accessor refcounts:
    [noncurrent t ti] iff [ti] is current on no entity.  Identical to
    {!Condition_c1.noncurrent}.  @raise Divergence in [Checked] mode. *)

val completed_tight_successors : t -> int -> Dct_graph.Intset.t
(** Cached discharger set of a predecessor, for
    {!Condition_c2.prepare}.  Identical to
    {!Tightness.completed_tight_successors}. *)

val stats : t -> (string * int) list
(** Work counters — [refreshes], [full_rebuilds], [rechecks],
    [region_nodes] — for benches and the curious. *)
