module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Arena = Dct_graph.Arena
module Traversal = Dct_graph.Traversal
module Access = Dct_txn.Access
module Transaction = Dct_txn.Transaction
module Tracer = Dct_telemetry.Tracer
module Probe = Dct_telemetry.Probe

(* Per-entity access bookkeeping.

   [history] records every access of a *present* transaction (entries of
   aborted and deleted transactions are dropped when the transaction
   leaves).  [last_write_seq] marks where the current value begins; it
   survives the deletion of the writer thanks to [tombstone_write_seq]
   (a committed-and-deleted write can never be undone, whereas an
   aborted write is). *)
type einfo = {
  mutable history : (int * Access.mode * int) list; (* txn, mode, seq; newest first *)
  mutable last_write_seq : int;
  mutable tombstone_write_seq : int;
}

(* Structural change notifications for incremental consumers (the
   deletability index).  Removal events carry the neighbourhood captured
   {e before} the node left the graph — the subscriber has no other way
   to learn which survivors were adjacent. *)
type mutation =
  | Txn_began of int
  | Arc_added of { src : int; dst : int }
  | Access_recorded of { txn : int; entity : int; mode : Access.mode }
  | State_changed of int
  | Dependency_added of { dependent : int; on_ : int }
  | Txn_removed of {
      txn : int;
      reduction : bool; (* true: D(G,T) deletion with bypass; false: abort *)
      preds : Intset.t;
      succs : Intset.t;
      entities : Intset.t;
      deps : Intset.t; (* providers and dependents, both directions *)
    }

type t = {
  g : Digraph.t;
  oracle : Dct_graph.Cycle_oracle.t option;
      (* optional maintained cycle-detection backend: bitset closure
         (the §3 remark), Pearce-Kelly topological order, or both in
         lock-step — cycle checks become oracle probes, arc inserts and
         deletions keep it in sync with [g] *)
  arena : Arena.t;
      (* live transaction ids -> dense slots; the record and dependency
         stores below are slot-indexed, so their footprint is bounded by
         the high-water resident population, not the ids ever issued *)
  mutable recs : Transaction.t option array; (* slot -> record *)
  mutable deps : Intset.t array; (* slot -> providers it read from (ids) *)
  mutable rev_deps : Intset.t array; (* slot -> dependents (ids) *)
  einfos : (int, einfo) Hashtbl.t;
  aborted : (int, unit) Hashtbl.t;
  deleted : (int, unit) Hashtbl.t;
      (* ids forgotten by the reduction D(G,T) — kept so auditors can
         assert a deleted transaction never reappears in the graph *)
  mutable seq : int;
  mutable tracer : Tracer.t;
      (* run-wide tracing handle; [Tracer.disabled] (the default) makes
         every emission a no-op *)
  mutable hooks : (mutation -> unit) list;
      (* mutation subscribers, notified after the state change lands;
         empty for every state without an attached index *)
}

let create ?(with_closure = false) ?oracle ?(tracer = Tracer.disabled) () =
  let probe = Tracer.probe tracer in
  let oracle =
    match (oracle, with_closure) with
    | Some backend, _ -> Some (Dct_graph.Cycle_oracle.create ?probe backend)
    | None, true ->
        Some (Dct_graph.Cycle_oracle.create ?probe Dct_graph.Cycle_oracle.Closure)
    | None, false -> None
  in
  {
    g = Digraph.create ();
    oracle;
    arena = Arena.create ();
    recs = [||];
    deps = [||];
    rev_deps = [||];
    einfos = Hashtbl.create 64;
    aborted = Hashtbl.create 16;
    deleted = Hashtbl.create 16;
    seq = 0;
    tracer;
    hooks = [];
  }

let tracer t = t.tracer

let on_mutation t f = t.hooks <- t.hooks @ [ f ]

let notify t m =
  match t.hooks with [] -> () | hs -> List.iter (fun f -> f m) hs

let set_tracer t tracer =
  t.tracer <- tracer;
  Option.iter
    (fun o -> Dct_graph.Cycle_oracle.set_probe o (Tracer.probe tracer))
    t.oracle

let copy t =
  let einfos = Hashtbl.create (Hashtbl.length t.einfos) in
  Hashtbl.iter
    (fun e info ->
      Hashtbl.replace einfos e
        {
          history = info.history;
          last_write_seq = info.last_write_seq;
          tombstone_write_seq = info.tombstone_write_seq;
        })
    t.einfos;
  {
    g = Digraph.copy t.g;
    (* Cycle_oracle.copy drops the probe; pairing that with a disabled
       tracer keeps speculative replays (safety searches, audits,
       exact-max enumeration) out of the live trace. *)
    oracle = Option.map Dct_graph.Cycle_oracle.copy t.oracle;
    arena = Arena.copy t.arena;
    recs =
      Array.map
        (Option.map (fun (txn : Transaction.t) ->
             {
               Transaction.id = txn.Transaction.id;
               state = txn.Transaction.state;
               accesses = txn.Transaction.accesses;
               declared = txn.Transaction.declared;
             }))
        t.recs;
    deps = Array.copy t.deps;
    rev_deps = Array.copy t.rev_deps;
    einfos;
    aborted = Hashtbl.copy t.aborted;
    deleted = Hashtbl.copy t.deleted;
    seq = t.seq;
    tracer = Tracer.disabled;
    (* Hooks are not copied: an index subscribed to the original would
       otherwise see (and corrupt itself on) the replica's speculative
       mutations.  Re-attach explicitly if the copy needs one. *)
    hooks = [];
  }

(* Transactions *)

let mem_txn t id = Arena.mem t.arena id

let grow_stores t n =
  let cur = Array.length t.recs in
  if n > cur then begin
    let n' = max n (max 16 (2 * cur)) in
    let recs = Array.make n' None in
    let deps = Array.make n' Intset.empty in
    let rev_deps = Array.make n' Intset.empty in
    Array.blit t.recs 0 recs 0 cur;
    Array.blit t.deps 0 deps 0 cur;
    Array.blit t.rev_deps 0 rev_deps 0 cur;
    t.recs <- recs;
    t.deps <- deps;
    t.rev_deps <- rev_deps
  end

let begin_txn ?declared t id =
  if mem_txn t id then
    invalid_arg (Printf.sprintf "Graph_state.begin_txn: T%d already present" id);
  let s = Arena.alloc t.arena id in
  grow_stores t (s + 1);
  t.recs.(s) <- Some (Transaction.create ?declared id);
  Digraph.add_node t.g id;
  Option.iter (fun o -> Dct_graph.Cycle_oracle.add_node o id) t.oracle;
  notify t (Txn_began id)

let txn t id =
  match Arena.find t.arena id with
  | Some s -> ( match t.recs.(s) with Some r -> r | None -> raise Not_found)
  | None -> raise Not_found

let state t id = (txn t id).Transaction.state

let set_state t id s =
  (txn t id).Transaction.state <- s;
  notify t (State_changed id)

let accesses t id = (txn t id).Transaction.accesses

let find_rec t id =
  match Arena.find t.arena id with Some s -> t.recs.(s) | None -> None

let is_active t id =
  match find_rec t id with
  | Some txn -> Transaction.is_active txn.Transaction.state
  | None -> false

let is_completed t id =
  match find_rec t id with
  | Some txn -> Transaction.is_completed txn.Transaction.state
  | None -> false

let filter_txns t p =
  Arena.fold
    (fun ~id ~slot acc ->
      match t.recs.(slot) with
      | Some txn when p txn.Transaction.state -> Intset.add id acc
      | _ -> acc)
    t.arena Intset.empty

let active_txns t = filter_txns t Transaction.is_active
let completed_txns t = filter_txns t Transaction.is_completed
let all_txns t = filter_txns t (fun _ -> true)
let txn_count t = Arena.live t.arena

(* Entity index *)

let einfo t entity =
  match Hashtbl.find_opt t.einfos entity with
  | Some info -> info
  | None ->
      let info = { history = []; last_write_seq = 0; tombstone_write_seq = 0 } in
      Hashtbl.replace t.einfos entity info;
      info

let record_access t ~txn:id ~entity ~mode =
  Transaction.perform (txn t id) ~entity ~mode;
  t.seq <- t.seq + 1;
  let info = einfo t entity in
  info.history <- (id, mode, t.seq) :: info.history;
  if mode = Access.Write then info.last_write_seq <- t.seq;
  notify t (Access_recorded { txn = id; entity; mode })

let collect_history t entity p =
  match Hashtbl.find_opt t.einfos entity with
  | None -> Intset.empty
  | Some info ->
      List.fold_left
        (fun acc (id, mode, seq) ->
          if p id mode seq then Intset.add id acc else acc)
        Intset.empty info.history

let present_writers t ~entity =
  collect_history t entity (fun id mode _ -> mode = Access.Write && mem_txn t id)

let present_accessors t ~entity =
  collect_history t entity (fun id _ _ -> mem_txn t id)

let current_accessors t ~entity =
  match Hashtbl.find_opt t.einfos entity with
  | None -> Intset.empty
  | Some info ->
      collect_history t entity (fun _ _ seq -> seq >= info.last_write_seq)

let entities t =
  Hashtbl.fold (fun e _ acc -> Intset.add e acc) t.einfos Intset.empty

let access_history t ~entity =
  match Hashtbl.find_opt t.einfos entity with
  | None -> []
  | Some info -> List.filter (fun (id, _, _) -> mem_txn t id) info.history

(* Dependencies *)

let add_dependency t ~dependent ~on_ =
  if dependent <> on_ then begin
    (match (Arena.find t.arena dependent, Arena.find t.arena on_) with
    | Some ds, Some ps ->
        t.deps.(ds) <- Intset.add on_ t.deps.(ds);
        t.rev_deps.(ps) <- Intset.add dependent t.rev_deps.(ps)
    | _ ->
        invalid_arg
          (Printf.sprintf
             "Graph_state.add_dependency: T%d -> T%d involves an absent \
              transaction"
             dependent on_));
    notify t (Dependency_added { dependent; on_ })
  end

let direct_deps t id =
  match Arena.find t.arena id with
  | Some s -> t.deps.(s)
  | None -> Intset.empty

let rev_deps_of t id =
  match Arena.find t.arena id with
  | Some s -> t.rev_deps.(s)
  | None -> Intset.empty

let dependents_closure t seed =
  let rec go frontier acc =
    if Intset.is_empty frontier then acc
    else
      let next =
        Intset.fold
          (fun id acc' -> Intset.union acc' (Intset.diff (rev_deps_of t id) acc))
          frontier Intset.empty
      in
      go next (Intset.union acc next)
  in
  go seed seed

(* Graph *)

let graph t = t.g

let add_arc t ~src ~dst =
  Digraph.add_arc t.g ~src ~dst;
  Option.iter (fun o -> Dct_graph.Cycle_oracle.add_arc o ~src ~dst) t.oracle;
  notify t (Arc_added { src; dst })

let reaches t ~src ~dst =
  match t.oracle with
  | Some o -> Dct_graph.Cycle_oracle.reaches o ~src ~dst
  | None ->
      (* oracle-less fallback still reports latency, as backend "dfs" *)
      Probe.obs (Tracer.probe t.tracer) ~op:"reaches" ~backend:"dfs" (fun () ->
          Traversal.has_path t.g ~src ~dst)

let reaches_any t ~src ~dsts =
  (not (Intset.is_empty dsts))
  &&
  match t.oracle with
  | Some o -> Dct_graph.Cycle_oracle.reaches_any o ~src ~dsts
  | None ->
      Probe.obs (Tracer.probe t.tracer) ~op:"reaches_any" ~backend:"dfs"
        (fun () ->
          let desc = Traversal.reachable t.g `Fwd src in
          not (Intset.is_empty (Intset.inter desc dsts)))

let would_cycle t ~into ~sources =
  (not (Intset.is_empty sources))
  && (Intset.mem into sources || reaches_any t ~src:into ~dsts:sources)

let is_acyclic t = Traversal.is_acyclic t.g

(* Removal *)

let drop_entity_entries t id ~tombstone =
  Hashtbl.iter
    (fun _ info ->
      let mine, others =
        List.partition (fun (id', _, _) -> id' = id) info.history
      in
      if mine <> [] then begin
        info.history <- others;
        if tombstone then
          List.iter
            (fun (_, mode, seq) ->
              if mode = Access.Write then
                info.tombstone_write_seq <- max info.tombstone_write_seq seq)
            mine
        else begin
          (* Aborted writes are undone: the current value reverts. *)
          let max_write =
            List.fold_left
              (fun acc (_, mode, seq) ->
                if mode = Access.Write then max acc seq else acc)
              info.tombstone_write_seq others
          in
          info.last_write_seq <- max_write
        end
      end)
    t.einfos

let drop_deps t s ~id =
  Intset.iter
    (fun p ->
      match Arena.find t.arena p with
      | Some ps -> t.rev_deps.(ps) <- Intset.remove id t.rev_deps.(ps)
      | None -> ())
    t.deps.(s);
  Intset.iter
    (fun d ->
      match Arena.find t.arena d with
      | Some ds -> t.deps.(ds) <- Intset.remove id t.deps.(ds)
      | None -> ())
    t.rev_deps.(s);
  t.deps.(s) <- Intset.empty;
  t.rev_deps.(s) <- Intset.empty

(* Release a transaction's slot: the record and both dependency cells
   must be blank before the slot can be recycled by the next begin. *)
let release_txn t id =
  match Arena.find t.arena id with
  | None -> ()
  | Some s ->
      t.recs.(s) <- None;
      drop_deps t s ~id;
      ignore (Arena.release t.arena id)

(* Neighbourhood snapshot for Txn_removed, taken while the node is still
   in the graph; [None] when nobody is listening. *)
let removal_payload t id ~reduction =
  match t.hooks with
  | [] -> None
  | _ ->
      let deps = Intset.union (direct_deps t id) (rev_deps_of t id) in
      Some
        (Txn_removed
           {
             txn = id;
             reduction;
             preds = Digraph.preds t.g id;
             succs = Digraph.succs t.g id;
             entities = Access.entities (accesses t id);
             deps;
           })

let abort_txn t id =
  if mem_txn t id then begin
    let payload = removal_payload t id ~reduction:false in
    Digraph.remove_node t.g id;
    Option.iter (fun o -> Dct_graph.Cycle_oracle.remove_node o `Exact id) t.oracle;
    drop_entity_entries t id ~tombstone:false;
    release_txn t id;
    Hashtbl.replace t.aborted id ();
    Option.iter (notify t) payload
  end

let was_aborted t id = Hashtbl.mem t.aborted id

let aborted_txns t =
  Hashtbl.fold (fun id () acc -> Intset.add id acc) t.aborted Intset.empty

let was_deleted t id = Hashtbl.mem t.deleted id

let deleted_txns t =
  Hashtbl.fold (fun id () acc -> Intset.add id acc) t.deleted Intset.empty

let oracle t = t.oracle

let closure t = Option.bind t.oracle Dct_graph.Cycle_oracle.closure

let forget_txn_record t id =
  if mem_txn t id then begin
    drop_entity_entries t id ~tombstone:true;
    release_txn t id
  end

(* The reduction D(G, T): remove the node while preserving every path
   through it with bypass arcs, in both the graph and (cheaply) the
   closure.  Exposed through Reduced_graph.delete. *)
let delete_with_bypass t ti =
  let payload = removal_payload t ti ~reduction:true in
  let ps = Digraph.preds t.g ti and ss = Digraph.succs t.g ti in
  Digraph.remove_node t.g ti;
  Intset.iter
    (fun p ->
      Intset.iter
        (fun s -> if p <> s then Digraph.add_arc t.g ~src:p ~dst:s)
        ss)
    ps;
  Option.iter (fun o -> Dct_graph.Cycle_oracle.remove_node o `Bypass ti) t.oracle;
  forget_txn_record t ti;
  Hashtbl.replace t.deleted ti ();
  Option.iter (notify t) payload

(* Deterministic resident-size estimate of the graph substrate: the
   conflict graph (arena + rows), the oracle's structures, the
   slot-indexed record/dependency stores and the entity index.  The
   audit tombstone sets ([aborted]/[deleted]) are deliberately excluded:
   they are a historical record for auditors, not resident graph state.
   Everything here is derived from capacities and live counts, so
   replicas driven by identical operation sequences report identical
   values. *)
let resident_bytes t =
  let oracle_bytes =
    match t.oracle with Some o -> Dct_graph.Cycle_oracle.bytes o | None -> 0
  in
  let store_bytes =
    8
    * (Array.length t.recs + Array.length t.deps + Array.length t.rev_deps
     + (16 * Arena.live t.arena))
  in
  let entity_bytes =
    Hashtbl.fold
      (fun _ info acc -> acc + 8 * (6 + (4 * List.length info.history)))
      t.einfos 0
  in
  Digraph.bytes t.g + oracle_bytes + Arena.bytes t.arena + store_bytes
  + entity_bytes

let check_invariants t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let nodes = Digraph.nodes t.g in
  let records = all_txns t in
  if not (Intset.equal nodes records) then
    err "graph nodes %s <> transaction records %s"
      (Format.asprintf "%a" Intset.pp nodes)
      (Format.asprintf "%a" Intset.pp records)
  else if not (Traversal.is_acyclic t.g) then err "graph is cyclic"
  else begin
    let bad_history = ref None in
    Hashtbl.iter
      (fun e info ->
        List.iter
          (fun (id, _, _) ->
            if not (mem_txn t id) then bad_history := Some (e, id))
          info.history)
      t.einfos;
    match !bad_history with
    | Some (e, id) -> err "entity %d history mentions absent T%d" e id
    | None -> (
        let bad_dep = ref None in
        Arena.iter
          (fun ~id:d ~slot ->
            Intset.iter
              (fun p ->
                if not (mem_txn t p) then bad_dep := Some (d, p, "provider")
                else if not (Intset.mem d (rev_deps_of t p)) then
                  bad_dep := Some (d, p, "missing reverse edge"))
              t.deps.(slot))
          t.arena;
        match !bad_dep with
        | Some (d, p, what) -> err "dependency T%d -> T%d: %s" d p what
        | None -> Ok ())
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>graph: %a@,txns:@," Digraph.pp t.g;
  Intset.iter
    (fun id -> Format.fprintf ppf "  %a@," Transaction.pp (txn t id))
    (all_txns t);
  Format.fprintf ppf "@]"
