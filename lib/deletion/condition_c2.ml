module Intset = Dct_graph.Intset
module Access = Dct_txn.Access

let violations gs n =
  let ok =
    Intset.for_all
      (fun ti -> Graph_state.mem_txn gs ti && Graph_state.is_completed gs ti)
      n
  in
  if not ok then
    invalid_arg "Condition_c2: set contains absent or uncompleted transactions";
  (* Members of [n] share predecessors; the discharger cover of [tj]
     depends only on [(tj, n)], so build it once per predecessor. *)
  let cover_memo = Hashtbl.create 16 in
  let cover_of tj =
    match Hashtbl.find_opt cover_memo tj with
    | Some c -> c
    | None ->
        let dischargers =
          Intset.diff (Tightness.completed_tight_successors gs tj) n
        in
        let c = Condition_c1.coverage gs dischargers in
        Hashtbl.replace cover_memo tj c;
        c
  in
  Intset.fold
    (fun ti acc ->
      let acc_i = Graph_state.accesses gs ti in
      let atp = Tightness.active_tight_predecessors gs ti in
      Intset.fold
        (fun tj acc ->
          let cover = cover_of tj in
          Access.fold
            (fun ~entity ~mode acc ->
              let covered =
                match Access.find cover ~entity with
                | Some m -> Access.at_least_as_strong m mode
                | None -> false
              in
              if covered then acc else (ti, tj, entity) :: acc)
            acc_i acc)
        atp acc)
    n []
  |> List.rev

let holds gs n =
  Intset.for_all
    (fun ti -> Graph_state.mem_txn gs ti && Graph_state.is_completed gs ti)
    n
  && violations gs n = []

type requirements = {
  candidates : Intset.t;
  by_candidate : (int, Intset.t list) Hashtbl.t;
      (* Ti -> for each (Tj, x) obligation, the completed tight
         successors of Tj accessing x at least as strongly as Ti.
         An obligation with an empty discharger set can never be met,
         but then Ti fails C1 and is not a candidate. *)
}

let prepare ?index gs ~candidates =
  (* Candidates share predecessors: resolve each predecessor's
     discharger set once per call — from the deletability index's
     persistent cache when one is attached, recomputed otherwise. *)
  let cts_memo = Hashtbl.create 16 in
  let cts_of tj =
    match Hashtbl.find_opt cts_memo tj with
    | Some s -> s
    | None ->
        let s =
          match index with
          | Some idx -> Deletability_index.completed_tight_successors idx tj
          | None -> Tightness.completed_tight_successors gs tj
        in
        Hashtbl.replace cts_memo tj s;
        s
  in
  let by_candidate = Hashtbl.create (Intset.cardinal candidates) in
  Intset.iter
    (fun ti ->
      let acc_i = Graph_state.accesses gs ti in
      let reqs =
        Intset.fold
          (fun tj reqs ->
            let cts = cts_of tj in
            Access.fold
              (fun ~entity ~mode reqs ->
                let dischargers =
                  Intset.filter
                    (fun tk ->
                      tk <> ti
                      &&
                      match
                        Access.find (Graph_state.accesses gs tk) ~entity
                      with
                      | Some m -> Access.at_least_as_strong m mode
                      | None -> false)
                    cts
                in
                dischargers :: reqs)
              acc_i reqs)
          (Tightness.active_tight_predecessors gs ti)
          []
      in
      Hashtbl.replace by_candidate ti reqs)
    candidates;
  { candidates; by_candidate }

let requirement_sets r ti =
  Option.value ~default:[] (Hashtbl.find_opt r.by_candidate ti)

let feasible r n =
  Intset.subset n r.candidates
  && Intset.for_all
       (fun ti ->
         List.for_all
           (fun dischargers -> not (Intset.subset dischargers n))
           (requirement_sets r ti))
       n
