(** The certification (optimistic) variant of the conflict-graph
    scheduler (§2).

    Active transactions run free: reads and the data-gathering for the
    final write are always accepted and merely recorded.  When a
    transaction reaches its final write it is {e certified}: arcs
    between it and every present transaction are derived from the
    recorded conflict order, and the transaction commits iff adding them
    keeps the graph acyclic; otherwise it aborts (and would be restarted
    by the client).

    {b No deletion policy is offered, deliberately.}  The paper develops
    its deletion theory for the {e preventive} scheduler only ("the
    issues are very similar in the two cases, so we will restrict
    ourselves to the second one", §2) — and the restriction is
    substantive.  The certifier records conflicts {e silently} and
    derives arcs only at certification time, so its graph is not a
    reduced graph in the §4 sense: two present transactions can have
    executed conflicting steps with no arc between them (a read
    performed after the writer certified).  C1 evaluated on that
    arc-deficient graph will delete transactions whose conflict
    evidence a later certification still needs — the test-suite carries
    a deterministic 4-transaction counterexample where C1-deletion
    makes the certifier accept a non-CSR schedule
    ([test_online_reduction.ml]).  This is the graph-scheduler face of
    the classical OCC rule that committed write-sets must be retained
    while overlapping transactions are still active (Kung–Robinson). *)

type t

val create :
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  unit ->
  t
(** [oracle] selects the cycle-check backend used at certification time
    (default: plain DFS on the conflict graph); [tracer] threads the
    telemetry handle through the graph state.  [gc_index] attaches a
    deletability index — it only matters under
    {!unsafe_step_with_policy} (the certifier itself never deletes),
    where it keeps the unsound-deletion demonstrations index-covered
    too.  {!copy} re-attaches a fresh index to the replica. *)

val copy : t -> t
(** Deep copy — lets the generic safety oracle
    ([Dct_deletion.Online_reduction]) replay continuations against
    certifier states. *)

val step : t -> Dct_txn.Step.t -> Scheduler_intf.outcome
(** [Rejected] can only be returned for a final [Write] (certification
    failure); reads never fail. *)

val graph_state : t -> Dct_deletion.Graph_state.t
val stats : t -> Scheduler_intf.stats
val handle :
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  unit ->
  Scheduler_intf.handle

(**/**)

val unsafe_step_with_policy :
  t -> Dct_deletion.Policy.t -> Dct_txn.Step.t -> Scheduler_intf.outcome
(** Exposed only so the test-suite can demonstrate that running a
    preventive-scheduler deletion policy under certification is unsound. *)
