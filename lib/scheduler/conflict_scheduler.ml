module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Step = Dct_txn.Step
module Gs = Dct_deletion.Graph_state
module Rules = Dct_deletion.Rules
module Policy = Dct_deletion.Policy
module Dindex = Dct_deletion.Deletability_index

type t = {
  gs : Gs.t;
  policy : Policy.t;
  index : Dindex.t option;
  store : Dct_kv.Store.t option;
  wal : Dct_kv.Wal.t option;
  mutable steps : int;
  mutable committed : int;
  mutable aborted : int;
  mutable deleted : int;
  mutable log : (int * Intset.t) list;
}

let create ?(policy = Policy.No_deletion) ?store ?wal ?(with_closure = false)
    ?oracle ?tracer ?gc_index () =
  let gs = Gs.create ~with_closure ?oracle ?tracer () in
  let index = Option.map (fun mode -> Dindex.attach mode gs) gc_index in
  {
    gs;
    policy;
    index;
    store;
    wal;
    steps = 0;
    committed = 0;
    aborted = 0;
    deleted = 0;
    log = [];
  }

let graph_state t = t.gs

let log t record =
  match t.wal with
  | None -> ()
  | Some wal -> ignore (Dct_kv.Wal.append wal record)

let truncate_log t =
  match t.wal with
  | None -> ()
  | Some wal ->
      ignore (Dct_kv.Wal.truncate_to wal ~resident:(fun txn -> Gs.mem_txn t.gs txn))

let apply_store t step =
  match t.store with
  | None -> ()
  | Some store -> (
      match step with
      | Step.Read (txn, x) -> ignore (Dct_kv.Store.read store ~entity:x ~reader:txn)
      | Step.Write (txn, xs) ->
          List.iter
            (fun x -> Dct_kv.Store.write store ~entity:x ~writer:txn ~value:t.steps)
            xs
      | Step.Begin _ | Step.Begin_declared _ | Step.Write_one _ | Step.Finish _
        -> ())

let step t s =
  t.steps <- t.steps + 1;
  match Rules.apply t.gs s with
  | Rules.Ignored -> Scheduler_intf.Ignored
  | Rules.Rejected ->
      t.aborted <- t.aborted + 1;
      (match t.store with
      | Some store -> Dct_kv.Store.undo_writes store ~txn:(Step.txn s)
      | None -> ());
      log t (Dct_kv.Wal.Abort { txn = Step.txn s });
      (* An abort removes an active transaction, which can only enlarge
         the eligible set — give the policy a chance right away. *)
      let deleted = Policy.run ?index:t.index t.policy t.gs in
      if not (Intset.is_empty deleted) then begin
        t.deleted <- t.deleted + Intset.cardinal deleted;
        t.log <- (t.steps, deleted) :: t.log
      end;
      truncate_log t;
      Scheduler_intf.Rejected
  | Rules.Accepted ->
      apply_store t s;
      (match s with
      | Step.Begin txn -> log t (Dct_kv.Wal.Begin { txn })
      | Step.Write (txn, xs) ->
          List.iter
            (fun entity ->
              log t (Dct_kv.Wal.Write { txn; entity; value = t.steps }))
            xs;
          log t (Dct_kv.Wal.Commit { txn })
      | Step.Read _ | Step.Begin_declared _ | Step.Write_one _ | Step.Finish _
        -> ());
      if Step.completes_basic s then t.committed <- t.committed + 1;
      let deleted = Policy.run ?index:t.index t.policy t.gs in
      if not (Intset.is_empty deleted) then begin
        t.deleted <- t.deleted + Intset.cardinal deleted;
        t.log <- (t.steps, deleted) :: t.log;
        truncate_log t
      end;
      Scheduler_intf.Accepted

let stats t =
  {
    Scheduler_intf.resident_txns = Gs.txn_count t.gs;
    resident_arcs = Digraph.arc_count (Gs.graph t.gs);
    active_txns = Intset.cardinal (Gs.active_txns t.gs);
    committed_total = t.committed;
    aborted_total = t.aborted;
    deleted_total = t.deleted;
    delayed_now = 0;
    resident_bytes = Gs.resident_bytes t.gs;
  }

let collect_garbage t =
  let deleted = Policy.run ?index:t.index t.policy t.gs in
  if not (Intset.is_empty deleted) then begin
    t.deleted <- t.deleted + Intset.cardinal deleted;
    t.log <- (t.steps, deleted) :: t.log;
    truncate_log t
  end;
  deleted

let deleted_log t = List.rev t.log

let handle_of t =
  Scheduler_intf.trace_steps ~reject_reason:"cycle" (Gs.tracer t.gs)
    {
      Scheduler_intf.name = Printf.sprintf "sgt/%s" (Policy.name t.policy);
      step = step t;
      stats = (fun () -> stats t);
      drain = (fun () -> 0);
      aborted_txn = (fun txn -> Gs.was_aborted t.gs txn);
    }

let handle ?policy ?store ?wal ?with_closure ?oracle ?tracer ?gc_index () =
  handle_of
    (create ?policy ?store ?wal ?with_closure ?oracle ?tracer ?gc_index ())
