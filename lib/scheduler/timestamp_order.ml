module Step = Dct_txn.Step

type entity_meta = { mutable rts : int; mutable wts : int }

type t = {
  meta : (int, entity_meta) Hashtbl.t;
  ts : (int, int) Hashtbl.t; (* active txn -> timestamp *)
  aborted : (int, unit) Hashtbl.t;
  mutable clock : int;
  mutable committed : int;
  mutable aborts : int;
}

let create () =
  {
    meta = Hashtbl.create 64;
    ts = Hashtbl.create 16;
    aborted = Hashtbl.create 16;
    clock = 0;
    committed = 0;
    aborts = 0;
  }

let meta_of t e =
  match Hashtbl.find_opt t.meta e with
  | Some m -> m
  | None ->
      let m = { rts = 0; wts = 0 } in
      Hashtbl.replace t.meta e m;
      m

let abort t txn =
  Hashtbl.remove t.ts txn;
  Hashtbl.replace t.aborted txn ();
  t.aborts <- t.aborts + 1

let step t s =
  let txn = Step.txn s in
  if Hashtbl.mem t.aborted txn then Scheduler_intf.Ignored
  else
    match s with
    | Step.Begin _ ->
        t.clock <- t.clock + 1;
        Hashtbl.replace t.ts txn t.clock;
        Scheduler_intf.Accepted
    | Step.Read (_, x) ->
        let ts = Hashtbl.find t.ts txn in
        let m = meta_of t x in
        if ts < m.wts then begin
          abort t txn;
          Scheduler_intf.Rejected
        end
        else begin
          m.rts <- max m.rts ts;
          Scheduler_intf.Accepted
        end
    | Step.Write (_, xs) ->
        let ts = Hashtbl.find t.ts txn in
        let ok =
          List.for_all
            (fun x ->
              let m = meta_of t x in
              ts >= m.rts && ts >= m.wts)
            xs
        in
        if ok then begin
          List.iter (fun x -> (meta_of t x).wts <- ts) xs;
          Hashtbl.remove t.ts txn;
          t.committed <- t.committed + 1;
          Scheduler_intf.Accepted
        end
        else begin
          abort t txn;
          Scheduler_intf.Rejected
        end
    | Step.Begin_declared _ | Step.Write_one _ | Step.Finish _ ->
        invalid_arg "Timestamp_order.step: basic-model steps only"

let stats t =
  {
    Scheduler_intf.resident_txns = Hashtbl.length t.ts;
    resident_arcs = 0;
    active_txns = Hashtbl.length t.ts;
    committed_total = t.committed;
    aborted_total = t.aborts;
    deleted_total = t.committed;
    delayed_now = 0;
    resident_bytes = 0;
  }

let handle () =
  let t = create () in
  {
    Scheduler_intf.name = "timestamp";
    step = step t;
    stats = (fun () -> stats t);
    drain = (fun () -> 0);
    aborted_txn = (fun txn -> Hashtbl.mem t.aborted txn);
  }
