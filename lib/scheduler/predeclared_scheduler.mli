(** The §5 predeclared-transactions conflict-graph scheduler
    (Rules 1'–3').

    Transactions declare their full read/write sets at BEGIN.  The
    scheduler adds the conflict arc at the {e first} of two conflicting
    steps: at BEGIN, arcs from every transaction that has already
    executed a step conflicting with a declared future step; at each
    data step, arcs from the stepping transaction to every transaction
    that {e will} perform a conflicting step later.  A step whose arcs
    would close a cycle is {e delayed} — queued and retried after
    subsequent events — never aborted; the paper shows the waits-for
    relation can never deadlock, which the implementation asserts.

    A transaction completes (and, aborts being impossible, commits) when
    it has performed every declared access.  Deletion uses condition C4
    (polynomial, Theorem 7). *)

type t

val create :
  ?use_c4_deletion:bool ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  unit ->
  t
(** [use_c4_deletion] (default false) greedily deletes C4-eligible
    completed transactions after each completion.  [oracle] selects the
    cycle-check backend used by the delay test (default: plain DFS).
    [tracer] threads the telemetry handle through (C4 deletions are
    reported as policy ["c4"], refusals as condition ["c4"]).
    [gc_index] (only meaningful with [use_c4_deletion]) maintains the
    C4 verdicts incrementally — C4 tight paths run through active
    nodes too, so every arc seeds the dirty set, but re-checks still
    stay inside the changed region. *)

val step : t -> Dct_txn.Step.t -> Scheduler_intf.outcome
(** [Delayed] means the step is queued inside the scheduler.  Steps must
    stay within the declaration.  @raise Invalid_argument otherwise. *)

val drain : t -> int
(** Retry queued steps to a fixpoint; returns how many executed.  Once
    every transaction's full declared step list has been submitted,
    deadlock-freedom guarantees the queue flushes completely (checked by
    the test-suite). *)

val pending : t -> int

val execution_log : t -> Dct_txn.Step.t list
(** Data steps in actual execution order (delayed steps appear when they
    finally ran); its projection on any transaction set must be CSR. *)

val graph_state : t -> Dct_deletion.Graph_state.t
val stats : t -> Scheduler_intf.stats

val handle_of : t -> Scheduler_intf.handle
(** Wrap an existing scheduler (callers that also need {!graph_state}). *)

val handle :
  ?use_c4_deletion:bool ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  unit ->
  Scheduler_intf.handle
