(** The common vocabulary of all schedulers.

    Every scheduler consumes steps and reports one of four outcomes.
    [Delayed] only occurs in blocking schedulers (predeclared
    conflict-graph, 2PL): the step was queued and will be retried
    internally; the caller must not resubmit it.  A [stats] snapshot
    exposes the memory-residency counters the experiments compare. *)

type outcome =
  | Accepted
  | Rejected  (** the transaction was aborted (and, for 2PL/TO, may be restarted by the driver) *)
  | Delayed   (** queued inside the scheduler; retried automatically *)
  | Ignored   (** step of an already-aborted transaction *)

let pp_outcome ppf o =
  Format.pp_print_string ppf
    (match o with
    | Accepted -> "accepted"
    | Rejected -> "rejected"
    | Delayed -> "delayed"
    | Ignored -> "ignored")

type stats = {
  resident_txns : int;  (** transactions currently remembered *)
  resident_arcs : int;  (** arcs (or locks) currently held *)
  active_txns : int;
  committed_total : int;
  aborted_total : int;
  deleted_total : int;  (** transactions forgotten by the deletion policy *)
  delayed_now : int;    (** steps currently waiting (blocking schedulers) *)
  resident_bytes : int;
      (** deterministic byte estimate of the resident graph substrate
          ({!Dct_deletion.Graph_state.resident_bytes}); [0] for
          schedulers that keep no conflict graph *)
}

let zero_stats =
  {
    resident_txns = 0;
    resident_arcs = 0;
    active_txns = 0;
    committed_total = 0;
    aborted_total = 0;
    deleted_total = 0;
    delayed_now = 0;
    resident_bytes = 0;
  }

(** First-class scheduler handle, used by the simulation driver so that
    heterogeneous schedulers can run under one loop. *)
type handle = {
  name : string;
  step : Dct_txn.Step.t -> outcome;
  stats : unit -> stats;
  drain : unit -> int;
      (** Give a blocking scheduler a chance to run queued steps to
          completion at end of input; returns how many it flushed. *)
  aborted_txn : int -> bool;
      (** Was this transaction ever aborted?  Blocking schedulers can
          victimise a transaction without any of its own submissions
          returning [Rejected]; restart harnesses use this to classify
          final outcomes. *)
}

let outcome_name o = Format.asprintf "%a" pp_outcome o

(** Wrap a handle so every submission emits [Step_submitted] and
    [Decision] events and bumps the ["outcome.<outcome>"] counters.
    The reasons are the wrapping scheduler's vocabulary: [reject_reason]
    for [Rejected] (e.g. ["cycle"]), [delay_reason] for [Delayed],
    [ignore_reason] for [Ignored].  Returns the handle unchanged for an
    inert tracer, so the untraced path stays zero-cost.  The wrapped
    [step] makes the same decisions as the bare one — tracing observes,
    never steers. *)
let trace_steps ?(reject_reason = "cycle")
    ?(delay_reason = "future-conflict-wait")
    ?(ignore_reason = "already-aborted") tracer h =
  let module T = Dct_telemetry.Tracer in
  if (not (T.active tracer)) && T.metrics tracer = None then h
  else begin
    let index = ref 0 in
    let step s =
      incr index;
      let i = !index in
      T.event tracer (fun () ->
          Dct_telemetry.Event.Step_submitted
            { index = i; step = Dct_txn.Step.to_telemetry s });
      let o = h.step s in
      let outcome = outcome_name o in
      let reason =
        match o with
        | Accepted -> ""
        | Rejected -> reject_reason
        | Delayed -> delay_reason
        | Ignored -> ignore_reason
      in
      T.event tracer (fun () ->
          Dct_telemetry.Event.Decision
            { index = i; txn = Dct_txn.Step.txn s; outcome; reason });
      T.incr tracer ("outcome." ^ outcome);
      o
    in
    { h with step }
  end
