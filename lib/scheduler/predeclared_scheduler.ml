module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Access = Dct_txn.Access
module Step = Dct_txn.Step
module Transaction = Dct_txn.Transaction
module Gs = Dct_deletion.Graph_state
module C4 = Dct_deletion.Condition_c4
module Reduced = Dct_deletion.Reduced_graph
module Dindex = Dct_deletion.Deletability_index

type pending = { entity : int; mode : Access.mode }

type t = {
  gs : Gs.t;
  use_c4 : bool;
  index : Dindex.t option; (* C4-flavoured deletability index *)
  queues : (int, pending Queue.t) Hashtbl.t; (* txn -> delayed steps, FIFO *)
  mutable steps : int;
  mutable committed : int;
  mutable deleted : int;
  mutable delayed_events : int;
  mutable exec_log : Step.t list; (* executed data steps, newest first *)
}

let create ?(use_c4_deletion = false) ?oracle ?tracer ?gc_index () =
  let gs = Gs.create ?oracle ?tracer () in
  let index =
    if use_c4_deletion then
      Option.map (fun mode -> Dindex.attach ~cond:Dindex.C4 mode gs) gc_index
    else None
  in
  {
    gs;
    use_c4 = use_c4_deletion;
    index;
    queues = Hashtbl.create 16;
    steps = 0;
    committed = 0;
    deleted = 0;
    delayed_events = 0;
    exec_log = [];
  }

let graph_state t = t.gs

let queue_of t txn =
  match Hashtbl.find_opt t.queues txn with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues txn q;
      q

let pending t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.queues 0

(* Transactions that will, per their declaration, later perform a step
   conflicting with an access of [mode] on [entity]. *)
let future_conflicters t ~txn ~entity ~mode =
  Intset.filter
    (fun tk ->
      tk <> txn
      && Gs.is_active t.gs tk
      &&
      match
        Access.find (Transaction.future_accesses (Gs.txn t.gs tk)) ~entity
      with
      | Some m -> Access.conflict m mode
      | None -> false)
    (Gs.active_txns t.gs)

let run_c4 t =
  if t.use_c4 then begin
    let module T = Dct_telemetry.Tracer in
    let tracer = Gs.tracer t.gs in
    let candidates0 = Gs.completed_txns t.gs in
    if not (Intset.is_empty candidates0) then begin
      T.event tracer (fun () ->
          Dct_telemetry.Event.Deletion_attempted
            { policy = "c4"; candidates = Intset.to_sorted_list candidates0 });
      T.incr ~by:(Intset.cardinal candidates0) tracer "deletion.c4.attempted"
    end;
    let removed = ref Intset.empty in
    (* Smallest C4-eligible id first, repeatedly — the naive scan and
       the index agree on this pick by construction. *)
    let next () =
      match t.index with
      | Some idx ->
          let m = Dindex.eligible idx in
          if Intset.is_empty m then None else Some (Intset.min_elt m)
      | None ->
          List.find_opt (fun v -> C4.holds t.gs v)
            (Intset.elements (Gs.completed_txns t.gs))
    in
    let rec loop () =
      match next () with
      | Some v ->
          Reduced.delete t.gs v;
          t.deleted <- t.deleted + 1;
          removed := Intset.add v !removed;
          loop ()
      | None -> ()
    in
    let backend =
      match t.index with
      | None -> "naive"
      | Some idx -> Dindex.mode_name (Dindex.mode idx)
    in
    Dct_telemetry.Probe.obs (T.probe tracer) ~op:"gc" ~backend loop;
    if not (Intset.is_empty !removed) then begin
      T.event tracer (fun () ->
          Dct_telemetry.Event.Deletion_ok
            { policy = "c4"; deleted = Intset.to_sorted_list !removed });
      T.incr ~by:(Intset.cardinal !removed) tracer "deletion.c4.deleted"
    end;
    let blocked = Intset.diff candidates0 !removed in
    if not (Intset.is_empty blocked) then begin
      T.incr ~by:(Intset.cardinal blocked) tracer "deletion.c4.blocked";
      Intset.iter
        (fun v ->
          T.event tracer (fun () ->
              Dct_telemetry.Event.Deletion_blocked
                { policy = "c4"; txn = v; condition = "c4" }))
        blocked
    end
  end

(* Attempt one data step; [true] if executed, [false] if it must wait. *)
let try_data_step t txn entity mode =
  let targets = future_conflicters t ~txn ~entity ~mode in
  let blocked =
    Intset.exists
      (fun tk -> tk = txn || Gs.reaches t.gs ~src:tk ~dst:txn)
      targets
  in
  if blocked then false
  else begin
    Intset.iter (fun tk -> Gs.add_arc t.gs ~src:txn ~dst:tk) targets;
    Gs.record_access t.gs ~txn ~entity ~mode;
    t.exec_log <-
      (match mode with
      | Access.Read -> Step.Read (txn, entity)
      | Access.Write -> Step.Write_one (txn, entity))
      :: t.exec_log;
    if Access.is_empty (Transaction.future_accesses (Gs.txn t.gs txn)) then begin
      Gs.set_state t.gs txn Transaction.Committed;
      t.committed <- t.committed + 1;
      run_c4 t
    end;
    true
  end

(* Retry queued steps until nothing moves. *)
let rec retry_pending t =
  let progress = ref false in
  Hashtbl.iter
    (fun txn q ->
      let continue_txn = ref true in
      while !continue_txn && not (Queue.is_empty q) do
        let p = Queue.peek q in
        if try_data_step t txn p.entity p.mode then begin
          ignore (Queue.pop q);
          progress := true
        end
        else continue_txn := false
      done)
    t.queues;
  if !progress then retry_pending t

let drain t =
  let before = pending t in
  retry_pending t;
  before - pending t

let execution_log t = List.rev t.exec_log

let check_declared t txn entity mode =
  match (Gs.txn t.gs txn).Transaction.declared with
  | None -> invalid_arg "Predeclared_scheduler: transaction has no declaration"
  | Some d -> (
      match Access.find d ~entity with
      | Some m when Access.at_least_as_strong m mode -> ()
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf
               "Predeclared_scheduler: T%d step on entity %d outside declaration"
               txn entity))

let submit t txn entity mode =
  check_declared t txn entity mode;
  let q = queue_of t txn in
  if not (Queue.is_empty q) then begin
    (* Program order: queue behind the transaction's waiting steps. *)
    Queue.push { entity; mode } q;
    t.delayed_events <- t.delayed_events + 1;
    Scheduler_intf.Delayed
  end
  else if try_data_step t txn entity mode then begin
    retry_pending t;
    Scheduler_intf.Accepted
  end
  else begin
    Queue.push { entity; mode } q;
    t.delayed_events <- t.delayed_events + 1;
    Scheduler_intf.Delayed
  end

let step t s =
  t.steps <- t.steps + 1;
  match s with
  | Step.Begin_declared (txn, declared) ->
      Gs.begin_txn t.gs txn ~declared;
      (* Rule 1': arcs from every executed step conflicting with a
         declared future step of [txn]. *)
      Access.iter
        (fun ~entity ~mode ->
          List.iter
            (fun (tk, m, _) ->
              if tk <> txn && Access.conflict m mode then
                Gs.add_arc t.gs ~src:tk ~dst:txn)
            (Gs.access_history t.gs ~entity))
        declared;
      Scheduler_intf.Accepted
  | Step.Read (txn, x) -> submit t txn x Access.Read
  | Step.Write_one (txn, x) -> submit t txn x Access.Write
  | Step.Finish _ ->
      (* Completion is implied by executing the whole declaration. *)
      Scheduler_intf.Ignored
  | Step.Begin _ | Step.Write _ ->
      invalid_arg "Predeclared_scheduler.step: declared steps only"

let stats t =
  {
    Scheduler_intf.resident_txns = Gs.txn_count t.gs;
    resident_arcs = Digraph.arc_count (Gs.graph t.gs);
    active_txns = Intset.cardinal (Gs.active_txns t.gs);
    committed_total = t.committed;
    aborted_total = 0;
    deleted_total = t.deleted;
    delayed_now = pending t;
    resident_bytes = Gs.resident_bytes t.gs;
  }

let handle_of t =
  Scheduler_intf.trace_steps ~ignore_reason:"declaration-complete"
    (Gs.tracer t.gs)
    {
      Scheduler_intf.name =
        (if t.use_c4 then "predeclared/c4" else "predeclared/none");
      step = step t;
      stats = (fun () -> stats t);
      drain = (fun () -> drain t);
      aborted_txn = (fun _ -> false);
    }

let handle ?use_c4_deletion ?oracle ?tracer ?gc_index () =
  handle_of (create ?use_c4_deletion ?oracle ?tracer ?gc_index ())
