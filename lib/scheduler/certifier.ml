module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Access = Dct_txn.Access
module Step = Dct_txn.Step
module Transaction = Dct_txn.Transaction
module Gs = Dct_deletion.Graph_state
module Policy = Dct_deletion.Policy
module Dindex = Dct_deletion.Deletability_index

type t = {
  gs : Gs.t;
  index : Dindex.t option;
  mutable steps : int;
  mutable committed : int;
  mutable aborted : int;
  mutable deleted : int;
}

let create ?oracle ?tracer ?gc_index () =
  let gs = Gs.create ?oracle ?tracer () in
  let index = Option.map (fun mode -> Dindex.attach mode gs) gc_index in
  { gs; index; steps = 0; committed = 0; aborted = 0; deleted = 0 }

let copy t =
  let gs = Gs.copy t.gs in
  (* Gs.copy drops mutation subscriptions, so the replica re-attaches a
     fresh index in the same mode (rebuilt on its first query) instead
     of sharing the original's — which would go stale immediately. *)
  let index = Option.map (fun i -> Dindex.attach (Dindex.mode i) gs) t.index in
  {
    gs;
    index;
    steps = t.steps;
    committed = t.committed;
    aborted = t.aborted;
    deleted = t.deleted;
  }

let graph_state t = t.gs

(* Certification arcs for [txn]: for every other present transaction
   that conflicts on some entity, an arc oriented by the recorded access
   order.  Returns (incoming sources, outgoing targets). *)
let certification_arcs t txn =
  let acc = Gs.accesses t.gs txn in
  let into = ref Intset.empty and out_of = ref Intset.empty in
  Access.iter
    (fun ~entity ~mode:_ ->
      let history = Gs.access_history t.gs ~entity in
      let mine =
        List.filter_map
          (fun (id, m, seq) -> if id = txn then Some (m, seq) else None)
          history
      in
      List.iter
        (fun (id, m', seq') ->
          if id <> txn then
            List.iter
              (fun (m, seq) ->
                if Access.conflict m m' then
                  if seq' < seq then into := Intset.add id !into
                  else out_of := Intset.add id !out_of)
              mine)
        history)
    acc;
  (!into, !out_of)

let certify t txn =
  let into, out_of = certification_arcs t txn in
  (* Any new cycle must pass through [txn].  Its in- and out-neighbours
     are the history-derived arcs PLUS arcs already materialised in the
     graph: earlier certifications add arcs incident to still-active
     transactions, and deletions add bypass arcs while purging history —
     ignoring the materialised ones is unsound once a deletion policy
     runs (a bug this implementation had; caught by the generic safety
     oracle, see test_online_reduction.ml). *)
  let g = Gs.graph t.gs in
  let targets = Intset.union out_of (Digraph.succs g txn) in
  let sources = Intset.union into (Digraph.preds g txn) in
  let conflict_cycle =
    (not (Intset.is_empty (Intset.inter targets sources)))
    || Intset.exists
         (fun target -> Gs.reaches_any t.gs ~src:target ~dsts:sources)
         targets
  in
  if conflict_cycle then begin
    Gs.abort_txn t.gs txn;
    false
  end
  else begin
    Intset.iter (fun s -> Gs.add_arc t.gs ~src:s ~dst:txn) into;
    Intset.iter (fun d -> Gs.add_arc t.gs ~src:txn ~dst:d) out_of;
    Gs.set_state t.gs txn Transaction.Committed;
    true
  end

let unsafe_step_with_policy t policy s =
  t.steps <- t.steps + 1;
  let txn = Step.txn s in
  if Gs.was_aborted t.gs txn then Scheduler_intf.Ignored
  else
    match s with
    | Step.Begin _ ->
        Gs.begin_txn t.gs txn;
        Scheduler_intf.Accepted
    | Step.Read (_, x) ->
        Gs.record_access t.gs ~txn ~entity:x ~mode:Access.Read;
        Scheduler_intf.Accepted
    | Step.Write (_, xs) ->
        List.iter
          (fun x -> Gs.record_access t.gs ~txn ~entity:x ~mode:Access.Write)
          xs;
        if certify t txn then begin
          t.committed <- t.committed + 1;
          t.deleted <-
            t.deleted
            + Intset.cardinal (Policy.run ?index:t.index policy t.gs);
          Scheduler_intf.Accepted
        end
        else begin
          t.aborted <- t.aborted + 1;
          Scheduler_intf.Rejected
        end
    | Step.Begin_declared _ | Step.Write_one _ | Step.Finish _ ->
        invalid_arg "Certifier.step: basic-model steps only"

let step t s = unsafe_step_with_policy t Policy.No_deletion s

let stats t =
  {
    Scheduler_intf.resident_txns = Gs.txn_count t.gs;
    resident_arcs = Digraph.arc_count (Gs.graph t.gs);
    active_txns = Intset.cardinal (Gs.active_txns t.gs);
    committed_total = t.committed;
    aborted_total = t.aborted;
    deleted_total = t.deleted;
    delayed_now = 0;
    resident_bytes = Gs.resident_bytes t.gs;
  }

let handle ?oracle ?tracer ?gc_index () =
  let t = create ?oracle ?tracer ?gc_index () in
  Scheduler_intf.trace_steps ~reject_reason:"certification-conflict-cycle"
    (Gs.tracer t.gs)
    {
      Scheduler_intf.name = "certifier";
      step = step t;
      stats = (fun () -> stats t);
      drain = (fun () -> 0);
      aborted_txn = (fun txn -> Gs.was_aborted t.gs txn);
    }
