module Step = Dct_txn.Step
module Mv = Dct_kv.Mv_store

type t = {
  vacuum : bool;
  store : Mv.t;
  ts : (int, int) Hashtbl.t; (* active txn -> timestamp *)
  aborted : (int, unit) Hashtbl.t;
  mutable clock : int;
  mutable committed : int;
  mutable aborts : int;
  mutable reclaimed : int;
}

let create ?(vacuum = false) ?store () =
  {
    vacuum;
    store = Option.value ~default:(Mv.create ()) store;
    ts = Hashtbl.create 16;
    aborted = Hashtbl.create 16;
    clock = 0;
    committed = 0;
    aborts = 0;
    reclaimed = 0;
  }

let store t = t.store

let min_active_ts t =
  Hashtbl.fold
    (fun _ ts acc ->
      match acc with Some m -> Some (min m ts) | None -> Some ts)
    t.ts None

let run_vacuum t =
  if t.vacuum then begin
    (* Horizon: nothing older than the oldest active can be read again;
       with no actives, everything up to the clock is fair game. *)
    let horizon = Option.value ~default:t.clock (min_active_ts t) in
    t.reclaimed <- t.reclaimed + Mv.vacuum t.store ~min_active_ts:horizon
  end

let abort t txn =
  Hashtbl.remove t.ts txn;
  Hashtbl.replace t.aborted txn ();
  t.aborts <- t.aborts + 1

let step t s =
  let txn = Step.txn s in
  if Hashtbl.mem t.aborted txn then Scheduler_intf.Ignored
  else
    match s with
    | Step.Begin _ ->
        t.clock <- t.clock + 1;
        Hashtbl.replace t.ts txn t.clock;
        Scheduler_intf.Accepted
    | Step.Read (_, x) ->
        let ts = Hashtbl.find t.ts txn in
        ignore (Mv.read t.store ~entity:x ~ts);
        Scheduler_intf.Accepted
    | Step.Write (_, xs) ->
        let ts = Hashtbl.find t.ts txn in
        if List.for_all (fun x -> Mv.write_allowed t.store ~entity:x ~ts) xs
        then begin
          List.iter (fun x -> Mv.install t.store ~entity:x ~ts ~value:ts) xs;
          Hashtbl.remove t.ts txn;
          t.committed <- t.committed + 1;
          run_vacuum t;
          Scheduler_intf.Accepted
        end
        else begin
          abort t txn;
          Scheduler_intf.Rejected
        end
    | Step.Begin_declared _ | Step.Write_one _ | Step.Finish _ ->
        invalid_arg "Mv_scheduler.step: basic-model steps only"

let versions_reclaimed t = t.reclaimed

let stats t =
  {
    Scheduler_intf.resident_txns = Hashtbl.length t.ts;
    resident_arcs = Mv.total_versions t.store;
    active_txns = Hashtbl.length t.ts;
    committed_total = t.committed;
    aborted_total = t.aborts;
    deleted_total = t.reclaimed;
    delayed_now = 0;
    resident_bytes = 0;
  }

let handle ?vacuum () =
  let t = create ?vacuum () in
  {
    Scheduler_intf.name =
      (if t.vacuum then "mvto/vacuum" else "mvto/none");
    step = step t;
    stats = (fun () -> stats t);
    drain = (fun () -> 0);
    aborted_txn = (fun txn -> Hashtbl.mem t.aborted txn);
  }
