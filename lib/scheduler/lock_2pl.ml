module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Traversal = Dct_graph.Traversal
module Step = Dct_txn.Step

type lock = { mutable x_holder : int option; mutable s_holders : Intset.t }

type request = Shared of int | Exclusive_all of int list

type t = {
  locks : (int, lock) Hashtbl.t;
  held : (int, Intset.t) Hashtbl.t; (* txn -> entities it holds a lock on *)
  queues : (int, request Queue.t) Hashtbl.t; (* txn -> blocked steps, FIFO *)
  active : (int, unit) Hashtbl.t;
  aborted : (int, unit) Hashtbl.t;
  mutable committed : int;
  mutable aborts : int;
  mutable deadlocks : int;
  mutable delayed_events : int;
  mutable exec_log : Step.t list; (* granted operations, newest first *)
}

let create () =
  {
    locks = Hashtbl.create 64;
    held = Hashtbl.create 64;
    queues = Hashtbl.create 16;
    active = Hashtbl.create 16;
    aborted = Hashtbl.create 16;
    committed = 0;
    aborts = 0;
    deadlocks = 0;
    delayed_events = 0;
    exec_log = [];
  }

let lock_of t e =
  match Hashtbl.find_opt t.locks e with
  | Some l -> l
  | None ->
      let l = { x_holder = None; s_holders = Intset.empty } in
      Hashtbl.replace t.locks e l;
      l

let queue_of t txn =
  match Hashtbl.find_opt t.queues txn with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues txn q;
      q

let note_held t txn e =
  let s = Option.value ~default:Intset.empty (Hashtbl.find_opt t.held txn) in
  Hashtbl.replace t.held txn (Intset.add e s)

(* Who currently prevents [txn] from acquiring [req]? *)
let blockers t txn req =
  match req with
  | Shared e -> (
      let l = lock_of t e in
      match l.x_holder with
      | Some h when h <> txn -> Intset.singleton h
      | _ -> Intset.empty)
  | Exclusive_all es ->
      List.fold_left
        (fun acc e ->
          let l = lock_of t e in
          let acc =
            match l.x_holder with
            | Some h when h <> txn -> Intset.add h acc
            | _ -> acc
          in
          Intset.union acc (Intset.remove txn l.s_holders))
        Intset.empty es

let grant t txn req =
  (match req with
  | Shared e -> t.exec_log <- Step.Read (txn, e) :: t.exec_log
  | Exclusive_all es -> t.exec_log <- Step.Write (txn, es) :: t.exec_log);
  match req with
  | Shared e ->
      let l = lock_of t e in
      if l.x_holder <> Some txn then l.s_holders <- Intset.add txn l.s_holders;
      note_held t txn e
  | Exclusive_all es ->
      List.iter
        (fun e ->
          let l = lock_of t e in
          l.s_holders <- Intset.remove txn l.s_holders;
          l.x_holder <- Some txn;
          note_held t txn e)
        es

let release_all t txn =
  (match Hashtbl.find_opt t.held txn with
  | Some es ->
      Intset.iter
        (fun e ->
          let l = lock_of t e in
          if l.x_holder = Some txn then l.x_holder <- None;
          l.s_holders <- Intset.remove txn l.s_holders)
        es
  | None -> ());
  Hashtbl.remove t.held txn

(* Waits-for graph over currently blocked transactions. *)
let waits_for t =
  let g = Digraph.create () in
  Hashtbl.iter
    (fun txn q ->
      if not (Queue.is_empty q) then begin
        Digraph.add_node g txn;
        Intset.iter
          (fun h -> Digraph.add_arc g ~src:txn ~dst:h)
          (blockers t txn (Queue.peek q))
      end)
    t.queues;
  g

let finish_commit t txn req =
  grant t txn req;
  (* Strict 2PL: the final write is the lock point and commit follows
     immediately; release everything and forget the transaction. *)
  release_all t txn;
  Hashtbl.remove t.active txn;
  Hashtbl.remove t.queues txn;
  t.committed <- t.committed + 1

let abort t txn =
  release_all t txn;
  Hashtbl.remove t.active txn;
  Hashtbl.remove t.queues txn;
  Hashtbl.replace t.aborted txn ();
  t.aborts <- t.aborts + 1

(* Retry blocked queues until fixpoint. *)
let rec retry t =
  let progress = ref false in
  let entries = Hashtbl.fold (fun txn q acc -> (txn, q) :: acc) t.queues [] in
  List.iter
    (fun (txn, q) ->
      let continue_txn = ref true in
      while !continue_txn && not (Queue.is_empty q) do
        let req = Queue.peek q in
        if Intset.is_empty (blockers t txn req) then begin
          ignore (Queue.pop q);
          (match req with
          | Shared _ -> grant t txn req
          | Exclusive_all _ -> finish_commit t txn req);
          progress := true;
          if not (Hashtbl.mem t.active txn) then continue_txn := false
        end
        else continue_txn := false
      done)
    entries;
  if !progress then retry t

let resolve_deadlock t =
  match Traversal.find_cycle (waits_for t) with
  | None -> ()
  | Some cycle ->
      (* Abort the youngest (largest id) participant. *)
      let victim = List.fold_left max min_int cycle in
      t.deadlocks <- t.deadlocks + 1;
      abort t victim;
      retry t

let submit t txn req =
  let q = queue_of t txn in
  if (not (Queue.is_empty q)) || not (Intset.is_empty (blockers t txn req)) then begin
    Queue.push req q;
    t.delayed_events <- t.delayed_events + 1;
    resolve_deadlock t;
    if Hashtbl.mem t.aborted txn then Scheduler_intf.Rejected
    else Scheduler_intf.Delayed
  end
  else begin
    (match req with
    | Shared _ -> grant t txn req
    | Exclusive_all _ -> finish_commit t txn req);
    retry t;
    Scheduler_intf.Accepted
  end

let step t s =
  let txn = Step.txn s in
  if Hashtbl.mem t.aborted txn then Scheduler_intf.Ignored
  else
    match s with
    | Step.Begin _ ->
        Hashtbl.replace t.active txn ();
        Scheduler_intf.Accepted
    | Step.Read (_, x) -> submit t txn (Shared x)
    | Step.Write (_, xs) -> submit t txn (Exclusive_all xs)
    | Step.Begin_declared _ | Step.Write_one _ | Step.Finish _ ->
        invalid_arg "Lock_2pl.step: basic-model steps only"

let drain t =
  let before =
    Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.queues 0
  in
  retry t;
  resolve_deadlock t;
  retry t;
  let after = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.queues 0 in
  before - after

let execution_log t = List.rev t.exec_log

let resident_txns t = Hashtbl.length t.active

let locks_held t =
  Hashtbl.fold (fun _ es acc -> acc + Intset.cardinal es) t.held 0

let stats t =
  {
    Scheduler_intf.resident_txns = resident_txns t;
    resident_arcs = locks_held t;
    active_txns = resident_txns t;
    committed_total = t.committed;
    aborted_total = t.aborts;
    deleted_total = t.committed; (* every commit closes the transaction *)
    delayed_now = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.queues 0;
    resident_bytes = 0;
  }

let handle () =
  let t = create () in
  {
    Scheduler_intf.name = "2pl";
    step = step t;
    stats = (fun () -> stats t);
    drain = (fun () -> drain t);
    aborted_txn = (fun txn -> Hashtbl.mem t.aborted txn);
  }
