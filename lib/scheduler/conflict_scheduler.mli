(** The preventive conflict-graph scheduler of §2 with a pluggable
    deletion policy — the paper's system, end to end.

    Each incoming step is run through Rules 1–3 ({!Dct_deletion.Rules});
    after every accepted step the deletion policy is applied to the
    resulting reduced graph ([R_P] of §4).  With
    [Policy.Unsafe_commit_time] the scheduler becomes the classic broken
    strawman: it will accept non-CSR schedules (demonstrated in the test
    suite), which is precisely the paper's motivation. *)

type t

val create :
  ?policy:Dct_deletion.Policy.t ->
  ?store:Dct_kv.Store.t ->
  ?wal:Dct_kv.Wal.t ->
  ?with_closure:bool ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  unit ->
  t
(** [policy] defaults to [No_deletion].  When [store] is given, accepted
    reads/writes are applied to it (writes install a fresh value derived
    from the scheduler's step counter).  When [wal] is given, the
    scheduler journals begin/write/commit/abort records and advances the
    log's low-water mark whenever the deletion policy forgets
    transactions — the log-truncation reading of the paper.
    [oracle] selects the cycle-check engine
    ({!Dct_graph.Cycle_oracle.backend}); [with_closure] is the historical
    spelling of [~oracle:Closure].  Identical decisions either way,
    different cost profile (see the oracle sweep benchmarks).
    [tracer] threads the telemetry handle through the graph state and —
    via {!handle_of} — wraps the step loop with
    {!Scheduler_intf.trace_steps}; tracing never changes a decision.
    [gc_index] attaches a {!Dct_deletion.Deletability_index} to the
    graph state and serves every policy run from it — same deletions,
    different cost profile; [Checked] raises
    {!Dct_deletion.Deletability_index.Divergence} on any mismatch with
    the naive reference (see [docs/gc.md]). *)

val step : t -> Dct_txn.Step.t -> Scheduler_intf.outcome

val graph_state : t -> Dct_deletion.Graph_state.t
(** The live reduced graph (read-only use). *)

val stats : t -> Scheduler_intf.stats

val collect_garbage : t -> Dct_graph.Intset.t
(** Run the deletion policy once outside the step path.  Needed after
    out-of-band aborts (e.g. a client voluntarily abandoning a
    transaction through {!graph_state}): removing an active transaction
    can only enlarge the eligible set. *)

val deleted_log : t -> (int * Dct_graph.Intset.t) list
(** [(step_number, deleted_set)] for every non-empty policy invocation,
    oldest first. *)

val handle_of : t -> Scheduler_intf.handle
(** Wrap an existing scheduler for the simulation driver — used when the
    caller also needs {!graph_state} (e.g. [dct simulate --selfcheck]). *)

val handle :
  ?policy:Dct_deletion.Policy.t ->
  ?store:Dct_kv.Store.t ->
  ?wal:Dct_kv.Wal.t ->
  ?with_closure:bool ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  unit ->
  Scheduler_intf.handle
(** A fresh scheduler wrapped for the simulation driver. *)
