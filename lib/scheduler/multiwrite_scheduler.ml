module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Access = Dct_txn.Access
module Step = Dct_txn.Step
module Transaction = Dct_txn.Transaction
module Gs = Dct_deletion.Graph_state
module C3 = Dct_deletion.Condition_c3
module Reduced = Dct_deletion.Reduced_graph
module Dindex = Dct_deletion.Deletability_index

type deletion_mode = No_deletion | C3_exact of int

type t = {
  gs : Gs.t;
  deletion : deletion_mode;
  gc_index : Dindex.mode option;
      (* C3 is deliberately NOT incrementally indexable: its verdict
         ranges over dependency closures [M⁺], and a dependency edge far
         outside any tight neighbourhood can flip alive-filtering for a
         candidate, so no arc-bounded dirty region is sound (docs/gc.md
         has the counterexample shape).  [Incremental] therefore runs
         the naive decision; [Checked] additionally cross-checks
         {!C3.quick_reject} (the polynomial necessary test) against
         {!C3.holds} (the exponential exact one) on every candidate —
         the two-implementation differential this model does admit. *)
  store : Dct_kv.Store.t;
  mutable steps : int;
  mutable committed : int;
  mutable aborted : int;
  mutable cascaded : int;
  mutable deleted : int;
}

let create ?(deletion = No_deletion) ?store ?oracle ?tracer ?gc_index () =
  {
    gs = Gs.create ?oracle ?tracer ();
    deletion;
    gc_index;
    store = Option.value ~default:(Dct_kv.Store.create ()) store;
    steps = 0;
    committed = 0;
    aborted = 0;
    cascaded = 0;
    deleted = 0;
  }

let graph_state t = t.gs

let cascaded_total t = t.cascaded

(* Abort [txn] and everything depending on it. *)
let abort_cascade t txn =
  let doomed = Gs.dependents_closure t.gs (Intset.singleton txn) in
  Intset.iter
    (fun v ->
      Dct_kv.Store.undo_writes t.store ~txn:v;
      Gs.abort_txn t.gs v)
    doomed;
  t.aborted <- t.aborted + Intset.cardinal doomed;
  t.cascaded <- t.cascaded + (Intset.cardinal doomed - 1)

(* Commit every finished transaction whose providers have all committed
   (or been committed-and-deleted — absent providers count as durable). *)
let try_commits t =
  let progress = ref true in
  while !progress do
    progress := false;
    Intset.iter
      (fun v ->
        if Gs.state t.gs v = Transaction.Finished then begin
          let blocking =
            Intset.filter
              (fun p -> Gs.mem_txn t.gs p && Gs.state t.gs p <> Transaction.Committed)
              (Gs.direct_deps t.gs v)
          in
          if Intset.is_empty blocking then begin
            Gs.set_state t.gs v Transaction.Committed;
            t.committed <- t.committed + 1;
            progress := true
          end
        end)
      (Gs.completed_txns t.gs)
  done

let committed_candidates t =
  Intset.filter
    (fun v -> Gs.state t.gs v = Transaction.Committed)
    (Gs.completed_txns t.gs)

let run_deletion t =
  match t.deletion with
  | No_deletion -> ()
  | C3_exact cap ->
      if Intset.cardinal (Gs.active_txns t.gs) <= cap then begin
        let module T = Dct_telemetry.Tracer in
        let tracer = Gs.tracer t.gs in
        let candidates0 = committed_candidates t in
        if not (Intset.is_empty candidates0) then begin
          T.event tracer (fun () ->
              Dct_telemetry.Event.Deletion_attempted
                {
                  policy = "c3-exact";
                  candidates = Intset.to_sorted_list candidates0;
                });
          T.incr ~by:(Intset.cardinal candidates0) tracer
            "deletion.c3-exact.attempted"
        end;
        let removed = ref Intset.empty in
        let holds v =
          let ok = C3.holds t.gs v in
          (if t.gc_index = Some Dindex.Checked && C3.quick_reject t.gs v && ok
           then
             raise
               (Dindex.Divergence
                  (Printf.sprintf
                     "c3(T%d): quick_reject claims failure but exact \
                      enumeration holds"
                     v)));
          ok
        in
        let rec loop () =
          match
            List.find_opt holds (Intset.elements (committed_candidates t))
          with
          | Some v ->
              Reduced.delete t.gs v;
              t.deleted <- t.deleted + 1;
              removed := Intset.add v !removed;
              loop ()
          | None -> ()
        in
        let backend =
          match t.gc_index with
          | None -> "naive"
          | Some m -> Dindex.mode_name m
        in
        Dct_telemetry.Probe.obs (T.probe tracer) ~op:"gc" ~backend loop;
        if not (Intset.is_empty !removed) then begin
          T.event tracer (fun () ->
              Dct_telemetry.Event.Deletion_ok
                { policy = "c3-exact"; deleted = Intset.to_sorted_list !removed });
          T.incr ~by:(Intset.cardinal !removed) tracer
            "deletion.c3-exact.deleted"
        end;
        let blocked = Intset.diff candidates0 !removed in
        if not (Intset.is_empty blocked) then begin
          T.incr ~by:(Intset.cardinal blocked) tracer
            "deletion.c3-exact.blocked";
          Intset.iter
            (fun v ->
              T.event tracer (fun () ->
                  Dct_telemetry.Event.Deletion_blocked
                    { policy = "c3-exact"; txn = v; condition = "c3" }))
            blocked
        end
      end

let step t s =
  t.steps <- t.steps + 1;
  let txn = Step.txn s in
  if Gs.was_aborted t.gs txn then Scheduler_intf.Ignored
  else
    match s with
    | Step.Begin _ ->
        Gs.begin_txn t.gs txn;
        Scheduler_intf.Accepted
    | Step.Read (_, x) ->
        let sources = Intset.remove txn (Gs.present_writers t.gs ~entity:x) in
        if Gs.would_cycle t.gs ~into:txn ~sources then begin
          abort_cascade t txn;
          try_commits t;
          Scheduler_intf.Rejected
        end
        else begin
          Intset.iter (fun src -> Gs.add_arc t.gs ~src ~dst:txn) sources;
          Gs.record_access t.gs ~txn ~entity:x ~mode:Access.Read;
          let version = Dct_kv.Store.read t.store ~entity:x ~reader:txn in
          (match version.Dct_kv.Version_log.writer with
          | Some w
            when Gs.mem_txn t.gs w
                 && Gs.state t.gs w <> Transaction.Committed ->
              Gs.add_dependency t.gs ~dependent:txn ~on_:w
          | Some _ | None -> ());
          Scheduler_intf.Accepted
        end
    | Step.Write_one (_, x) ->
        let sources = Intset.remove txn (Gs.present_accessors t.gs ~entity:x) in
        if Gs.would_cycle t.gs ~into:txn ~sources then begin
          abort_cascade t txn;
          try_commits t;
          Scheduler_intf.Rejected
        end
        else begin
          Intset.iter (fun src -> Gs.add_arc t.gs ~src ~dst:txn) sources;
          Gs.record_access t.gs ~txn ~entity:x ~mode:Access.Write;
          Dct_kv.Store.write t.store ~entity:x ~writer:txn ~value:t.steps;
          Scheduler_intf.Accepted
        end
    | Step.Finish _ ->
        Gs.set_state t.gs txn Transaction.Finished;
        try_commits t;
        run_deletion t;
        Scheduler_intf.Accepted
    | Step.Write _ | Step.Begin_declared _ ->
        invalid_arg "Multiwrite_scheduler.step: multi-write steps only"

let stats t =
  {
    Scheduler_intf.resident_txns = Gs.txn_count t.gs;
    resident_arcs = Digraph.arc_count (Gs.graph t.gs);
    active_txns = Intset.cardinal (Gs.active_txns t.gs);
    committed_total = t.committed;
    aborted_total = t.aborted;
    deleted_total = t.deleted;
    delayed_now = 0;
    resident_bytes = Gs.resident_bytes t.gs;
  }

let handle_of t =
  let name =
    match t.deletion with
    | No_deletion -> "multiwrite/none"
    | C3_exact cap -> Printf.sprintf "multiwrite/c3<=%d" cap
  in
  Scheduler_intf.trace_steps ~reject_reason:"cycle" (Gs.tracer t.gs)
    {
      Scheduler_intf.name;
      step = step t;
      stats = (fun () -> stats t);
      drain = (fun () -> 0);
      aborted_txn = (fun txn -> Gs.was_aborted t.gs txn);
    }

let handle ?deletion ?oracle ?tracer ?gc_index () =
  handle_of (create ?deletion ?oracle ?tracer ?gc_index ())
