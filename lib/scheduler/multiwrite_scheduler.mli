(** The §5 multi-write conflict-graph scheduler.

    Transactions interleave reads and writes freely, so a transaction
    can read from a still-active one and become {e dependent} on it: if
    the provider aborts, the dependent must abort too (cascading
    aborts), and a finished transaction cannot commit until it depends
    on no active transaction (state F, then C).

    The scheduler maintains the conflict graph step-by-step exactly as
    the basic one, plus the dependency relation (read-from) against a
    versioned store; aborts undo the aborted transactions' writes and
    cascade through the dependents' closure.

    Deletion uses condition C3, which is NP-hard to test (Theorem 6) —
    the policy is therefore bounded: it only runs the exact test while
    the number of active transactions is at most a configurable cap. *)

type deletion_mode =
  | No_deletion
  | C3_exact of int
      (** run [Condition_c3] after each commit while [#actives ≤ cap] *)

type t

val create :
  ?deletion:deletion_mode ->
  ?store:Dct_kv.Store.t ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  unit ->
  t
(** [oracle] selects the cycle-check backend (default: plain DFS);
    [tracer] threads the telemetry handle through (C3 deletions are
    reported as policy ["c3-exact"], refusals as condition ["c3"]).
    [gc_index]: C3 is {e not} incrementally indexable — its verdict
    ranges over dependency closures, which no tight-neighbourhood dirty
    region bounds (docs/gc.md) — so [Incremental] runs the naive
    decision (gc latency is still attributed to the chosen backend) and
    [Checked] cross-checks [quick_reject] against the exact enumeration
    on every candidate, raising
    {!Dct_deletion.Deletability_index.Divergence} if the polynomial
    necessary test ever contradicts it. *)

val step : t -> Dct_txn.Step.t -> Scheduler_intf.outcome
(** [Rejected] covers both a cycle-closing step and a cascading abort
    triggered by one (the stepping transaction's whole dependent closure
    aborts with it). *)

val graph_state : t -> Dct_deletion.Graph_state.t
val stats : t -> Scheduler_intf.stats

val cascaded_total : t -> int
(** Transactions aborted {e because} a provider aborted (excludes the
    provider itself). *)

val handle_of : t -> Scheduler_intf.handle
(** Wrap an existing scheduler (callers that also need {!graph_state}). *)

val handle :
  ?deletion:deletion_mode ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?gc_index:Dct_deletion.Deletability_index.mode ->
  unit ->
  Scheduler_intf.handle
