(** Imperative directed graphs over integer node identifiers.

    Node identifiers are chosen by the caller (transaction ids in the
    scheduler) and may grow without bound; storage does not.  Internally
    every live id is mapped through a dense-slot {!Arena} and adjacency
    lives in slot-indexed hybrid {!Row}s whose bits are slots, so the
    resident footprint tracks the high-water {e live} population rather
    than the historical id space.

    The structure is deliberately small: reachability, ordering and
    closure maintenance live in {!Traversal}, {!Order} and {!Closure}. *)

type t

val create : unit -> t

val copy : t -> t
(** Independent deep copy. *)

(** {1 Nodes} *)

val add_node : t -> int -> unit
(** [add_node g v] adds isolated node [v]; a no-op if present. *)

val remove_node : t -> int -> unit
(** [remove_node g v] removes [v] and all incident arcs; a no-op if
    absent.  Note this is {e not} the paper's reduction [D(G, v)] — see
    {!Reduced_graph} in [dct_deletion] for the bypassing removal. *)

val mem_node : t -> int -> bool
val node_count : t -> int
val nodes : t -> Intset.t
val iter_nodes : (int -> unit) -> t -> unit

(** {1 Arcs} *)

val add_arc : t -> src:int -> dst:int -> unit
(** [add_arc g ~src ~dst] adds the arc; endpoints are created if missing.
    Idempotent.  Self-loops are allowed (the scheduler never creates
    them, but the graph does not forbid them). *)

val remove_arc : t -> src:int -> dst:int -> unit
val mem_arc : t -> src:int -> dst:int -> bool
val arc_count : t -> int

val succs : t -> int -> Intset.t
(** Immediate successors; empty set if the node is absent. *)

val preds : t -> int -> Intset.t
(** Immediate predecessors; empty set if the node is absent. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_arcs : (src:int -> dst:int -> unit) -> t -> unit
val fold_arcs : (src:int -> dst:int -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Slot view}

    The closure and topological-order backends keep slot-indexed side
    tables (rows, ranks, visit marks) over this graph's arena rather
    than duplicating an id map.  Slots are recycled when nodes are
    removed: a slot observed here is valid only until the next
    [remove_node]/[add_node] pair. *)

val slot_of : t -> int -> int option
(** Dense slot of a live node, [None] if absent. *)

val id_of_slot : t -> int -> int
(** Node occupying a slot; [-1] when the slot is free or out of range. *)

val slot_capacity : t -> int
(** High-water slot count — the exact size needed by any slot-indexed
    side table.  Bounded by the peak resident population. *)

val iter_succ_slots : (int -> unit) -> t -> int -> unit
(** [iter_succ_slots f g s] applies [f] to the successor {e slots} of
    the node in slot [s], allocation-free.  No-op on a free slot. *)

val iter_pred_slots : (int -> unit) -> t -> int -> unit

val mem_arc_slots : t -> src:int -> dst:int -> bool
(** Arc test in slot space, querying the successor index; total (free
    or out-of-range slots give [false]). *)

val mem_pred_slot : t -> dst:int -> src:int -> bool
(** Membership in the {e predecessor} index specifically — only the
    invariant auditor wants to probe the two mirrors independently. *)

val bytes : t -> int
(** Deterministic resident-size estimate in bytes (arena + rows);
    capacity-derived, so replicas built by identical operation sequences
    agree. *)

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Same node set and same arc set. *)

val pp : Format.formatter -> t -> unit
