module Probe = Dct_telemetry.Probe

module type S = sig
  type t

  val name : string
  val create : unit -> t
  val copy : t -> t
  val add_node : t -> int -> unit
  val mem_node : t -> int -> bool
  val nodes : t -> Intset.t
  val add_arc : t -> src:int -> dst:int -> unit
  val remove_node : t -> [ `Bypass | `Exact ] -> int -> unit
  val reaches : t -> src:int -> dst:int -> bool
  val reaches_any : t -> src:int -> dsts:Intset.t -> bool
  val would_cycle : t -> src:int -> dst:int -> bool
  val cycle_witness : t -> src:int -> dst:int -> int list option
  val iter_descendants : (int -> unit) -> t -> int -> unit
  val iter_ancestors : (int -> unit) -> t -> int -> unit
  val bytes : t -> int
  val check_against : t -> Digraph.t -> bool
end

module Closure_backend : S with type t = Closure.t = struct
  include Closure

  let name = "closure"

  let reaches_any t ~src ~dsts =
    Intset.exists (fun d -> Closure.reaches t ~src ~dst:d) dsts

  let cycle_witness t ~src ~dst =
    if src = dst then if Closure.mem_node t src then Some [ src ] else None
    else if Closure.reaches t ~src:dst ~dst:src then
      Traversal.find_path (Closure.graph t) ~src:dst ~dst:src
    else None
end

module Topo_backend : S with type t = Topo_order.t = struct
  include Topo_order

  let name = "topo"
end

type backend = Closure | Topo | Checked

let all = [ Closure; Topo; Checked ]

let backend_name = function
  | Closure -> "closure"
  | Topo -> "topo"
  | Checked -> "checked"

let backend_of_string s =
  match String.lowercase_ascii s with
  | "closure" | "bitset" -> Ok Closure
  | "topo" | "pk" | "pearce-kelly" -> Ok Topo
  | "checked" | "both" -> Ok Checked
  | other ->
      Error
        (Printf.sprintf "unknown oracle %S (expected closure|topo|checked)"
           other)

exception Disagreement of string

let () =
  Printexc.register_printer (function
    | Disagreement m -> Some (Printf.sprintf "Cycle_oracle.Disagreement: %s" m)
    | _ -> None)

let disagree fmt = Printf.ksprintf (fun m -> raise (Disagreement m)) fmt

type imp =
  | Closure_i of Closure.t
  | Topo_i of Topo_order.t
  | Checked_i of Closure.t * Topo_order.t

type t = { imp : imp; mutable probe : Probe.t option }

let create ?probe backend =
  let imp =
    match backend with
    | Closure -> Closure_i (Closure_backend.create ())
    | Topo -> Topo_i (Topo_backend.create ())
    | Checked -> Checked_i (Closure_backend.create (), Topo_backend.create ())
  in
  { imp; probe }

let backend t =
  match t.imp with
  | Closure_i _ -> Closure
  | Topo_i _ -> Topo
  | Checked_i _ -> Checked

let name t = backend_name (backend t)
let set_probe t probe = t.probe <- probe
let probe t = t.probe

(* Copies are overwhelmingly speculative (safety searches, audits, the
   exact-max policy enumeration) — they drop the probe so replayed work
   never pollutes the latency record of the live oracle. *)
let copy t =
  let imp =
    match t.imp with
    | Closure_i c -> Closure_i (Closure_backend.copy c)
    | Topo_i o -> Topo_i (Topo_backend.copy o)
    | Checked_i (c, o) ->
        Checked_i (Closure_backend.copy c, Topo_backend.copy o)
  in
  { imp; probe = None }

(* [Checked] compares every boolean answer; [agree] is the single
   funnel so each divergence names the operation and both verdicts. *)
let agree op a b =
  if a <> b then disagree "%s: closure says %b, topo says %b" op a b;
  a

(* Each timed primitive emits exactly one sample per underlying
   backend: "closure" or "topo" under the single backends, one of each
   under [Checked] — so per op, a checked run's sample count per
   backend matches the corresponding single-backend run over the same
   operation sequence.  [Checked]'s own cross-check overhead (the
   pre-insert agreement probes in [add_arc]) is deliberately not
   attributed: it measures the harness, not the backend. *)
let obs t ~op ~bk f = Probe.obs t.probe ~op ~backend:bk f

let add_node t v =
  match t.imp with
  | Closure_i c -> Closure_backend.add_node c v
  | Topo_i o -> Topo_backend.add_node o v
  | Checked_i (c, o) ->
      Closure_backend.add_node c v;
      Topo_backend.add_node o v

let mem_node t v =
  match t.imp with
  | Closure_i c -> Closure_backend.mem_node c v
  | Topo_i o -> Topo_backend.mem_node o v
  | Checked_i (c, o) ->
      agree
        (Printf.sprintf "mem_node %d" v)
        (Closure_backend.mem_node c v)
        (Topo_backend.mem_node o v)

let nodes t =
  match t.imp with
  | Closure_i c -> Closure_backend.nodes c
  | Topo_i o -> Topo_backend.nodes o
  | Checked_i (c, o) ->
      let nc = Closure_backend.nodes c and no = Topo_backend.nodes o in
      if not (Intset.equal nc no) then
        disagree "nodes: closure has %s, topo has %s"
          (Format.asprintf "%a" Intset.pp nc)
          (Format.asprintf "%a" Intset.pp no);
      nc

let add_arc t ~src ~dst =
  match t.imp with
  | Closure_i c ->
      obs t ~op:"add_arc" ~bk:"closure" (fun () ->
          Closure_backend.add_arc c ~src ~dst)
  | Topo_i o ->
      obs t ~op:"add_arc" ~bk:"topo" (fun () ->
          Topo_backend.add_arc o ~src ~dst)
  | Checked_i (c, o) ->
      let safe =
        not
          (agree
             (Printf.sprintf "would_cycle before add_arc %d -> %d" src dst)
             (Closure_backend.would_cycle c ~src ~dst)
             (Topo_backend.would_cycle o ~src ~dst))
      in
      if not safe then
        disagree "add_arc %d -> %d: both backends report a cycle-closing arc \
                  (caller broke the pre-condition)"
          src dst;
      obs t ~op:"add_arc" ~bk:"closure" (fun () ->
          Closure_backend.add_arc c ~src ~dst);
      obs t ~op:"add_arc" ~bk:"topo" (fun () ->
          Topo_backend.add_arc o ~src ~dst)

let remove_node t mode v =
  match t.imp with
  | Closure_i c ->
      obs t ~op:"remove_node" ~bk:"closure" (fun () ->
          Closure_backend.remove_node c mode v)
  | Topo_i o ->
      obs t ~op:"remove_node" ~bk:"topo" (fun () ->
          Topo_backend.remove_node o mode v)
  | Checked_i (c, o) ->
      obs t ~op:"remove_node" ~bk:"closure" (fun () ->
          Closure_backend.remove_node c mode v);
      obs t ~op:"remove_node" ~bk:"topo" (fun () ->
          Topo_backend.remove_node o mode v)

let reaches t ~src ~dst =
  match t.imp with
  | Closure_i c ->
      obs t ~op:"reaches" ~bk:"closure" (fun () ->
          Closure_backend.reaches c ~src ~dst)
  | Topo_i o ->
      obs t ~op:"reaches" ~bk:"topo" (fun () ->
          Topo_backend.reaches o ~src ~dst)
  | Checked_i (c, o) ->
      agree
        (Printf.sprintf "reaches %d -> %d" src dst)
        (obs t ~op:"reaches" ~bk:"closure" (fun () ->
             Closure_backend.reaches c ~src ~dst))
        (obs t ~op:"reaches" ~bk:"topo" (fun () ->
             Topo_backend.reaches o ~src ~dst))

let reaches_any t ~src ~dsts =
  match t.imp with
  | Closure_i c ->
      obs t ~op:"reaches_any" ~bk:"closure" (fun () ->
          Closure_backend.reaches_any c ~src ~dsts)
  | Topo_i o ->
      obs t ~op:"reaches_any" ~bk:"topo" (fun () ->
          Topo_backend.reaches_any o ~src ~dsts)
  | Checked_i (c, o) ->
      agree
        (Format.asprintf "reaches_any %d -> %a" src Intset.pp dsts)
        (obs t ~op:"reaches_any" ~bk:"closure" (fun () ->
             Closure_backend.reaches_any c ~src ~dsts))
        (obs t ~op:"reaches_any" ~bk:"topo" (fun () ->
             Topo_backend.reaches_any o ~src ~dsts))

let would_cycle t ~src ~dst =
  match t.imp with
  | Closure_i c ->
      obs t ~op:"would_cycle" ~bk:"closure" (fun () ->
          Closure_backend.would_cycle c ~src ~dst)
  | Topo_i o ->
      obs t ~op:"would_cycle" ~bk:"topo" (fun () ->
          Topo_backend.would_cycle o ~src ~dst)
  | Checked_i (c, o) ->
      agree
        (Printf.sprintf "would_cycle %d -> %d" src dst)
        (obs t ~op:"would_cycle" ~bk:"closure" (fun () ->
             Closure_backend.would_cycle c ~src ~dst))
        (obs t ~op:"would_cycle" ~bk:"topo" (fun () ->
             Topo_backend.would_cycle o ~src ~dst))

(* A witness must be a genuine path [dst ⇝ src] over the arcs the
   backend itself maintains. *)
let witness_is_path g ~src ~dst = function
  | [] -> false
  | [ v ] -> v = src && v = dst
  | first :: _ as path ->
      first = dst
      &&
      let rec arcs = function
        | a :: (b :: _ as rest) ->
            Digraph.mem_arc g ~src:a ~dst:b && arcs rest
        | [ last ] -> last = src
        | [] -> false
      in
      arcs path

let cycle_witness t ~src ~dst =
  match t.imp with
  | Closure_i c -> Closure_backend.cycle_witness c ~src ~dst
  | Topo_i o -> Topo_backend.cycle_witness o ~src ~dst
  | Checked_i (c, o) -> (
      let wc = Closure_backend.cycle_witness c ~src ~dst in
      let wo = Topo_backend.cycle_witness o ~src ~dst in
      match (wc, wo) with
      | None, None -> None
      | Some pc, Some po ->
          if not (witness_is_path (Closure.graph c) ~src ~dst pc) then
            disagree "cycle_witness %d -> %d: closure produced a bogus path"
              src dst;
          if not (witness_is_path (Topo_order.graph o) ~src ~dst po) then
            disagree "cycle_witness %d -> %d: topo produced a bogus path" src
              dst;
          Some pc
      | Some _, None | None, Some _ ->
          disagree "cycle_witness %d -> %d: closure says %s, topo says %s" src
            dst
            (if wc = None then "safe" else "cycle")
            (if wo = None then "safe" else "cycle"))

(* The allocation-free cone iterators.  Under [Checked] the two cones
   are collected and compared before being replayed to [f] — the checked
   oracle is a harness, so the extra sets are the price of the
   cross-check, exactly as for [nodes]. *)
let collect iter x v =
  let acc = ref Intset.empty in
  iter (fun w -> acc := Intset.add w !acc) x v;
  !acc

let iter_descendants f t v =
  match t.imp with
  | Closure_i c -> Closure_backend.iter_descendants f c v
  | Topo_i o -> Topo_backend.iter_descendants f o v
  | Checked_i (c, o) ->
      let dc = collect Closure_backend.iter_descendants c v in
      let dt = collect Topo_backend.iter_descendants o v in
      if not (Intset.equal dc dt) then
        disagree "iter_descendants %d: closure has %s, topo has %s" v
          (Format.asprintf "%a" Intset.pp dc)
          (Format.asprintf "%a" Intset.pp dt);
      Intset.iter f dc

let iter_ancestors f t v =
  match t.imp with
  | Closure_i c -> Closure_backend.iter_ancestors f c v
  | Topo_i o -> Topo_backend.iter_ancestors f o v
  | Checked_i (c, o) ->
      let ac = collect Closure_backend.iter_ancestors c v in
      let at = collect Topo_backend.iter_ancestors o v in
      if not (Intset.equal ac at) then
        disagree "iter_ancestors %d: closure has %s, topo has %s" v
          (Format.asprintf "%a" Intset.pp ac)
          (Format.asprintf "%a" Intset.pp at);
      Intset.iter f ac

let descendants t v = collect iter_descendants t v
let ancestors t v = collect iter_ancestors t v

let bytes t =
  match t.imp with
  | Closure_i c -> Closure_backend.bytes c
  | Topo_i o -> Topo_backend.bytes o
  | Checked_i (c, o) -> Closure_backend.bytes c + Topo_backend.bytes o

let check_against t g =
  match t.imp with
  | Closure_i c -> Closure_backend.check_against c g
  | Topo_i o -> Topo_backend.check_against o g
  | Checked_i (c, o) ->
      Closure_backend.check_against c g && Topo_backend.check_against o g

let closure t =
  match t.imp with
  | Closure_i c | Checked_i (c, _) -> Some c
  | Topo_i _ -> None

let topo t =
  match t.imp with
  | Topo_i o | Checked_i (_, o) -> Some o
  | Closure_i _ -> None
