module type S = sig
  type t

  val name : string
  val create : unit -> t
  val copy : t -> t
  val add_node : t -> int -> unit
  val mem_node : t -> int -> bool
  val nodes : t -> Intset.t
  val add_arc : t -> src:int -> dst:int -> unit
  val remove_node : t -> [ `Bypass | `Exact ] -> int -> unit
  val reaches : t -> src:int -> dst:int -> bool
  val reaches_any : t -> src:int -> dsts:Intset.t -> bool
  val would_cycle : t -> src:int -> dst:int -> bool
  val cycle_witness : t -> src:int -> dst:int -> int list option
  val check_against : t -> Digraph.t -> bool
end

module Closure_backend : S with type t = Closure.t = struct
  include Closure

  let name = "closure"

  let reaches_any t ~src ~dsts =
    Intset.exists (fun d -> Closure.reaches t ~src ~dst:d) dsts

  let cycle_witness t ~src ~dst =
    if src = dst then if Closure.mem_node t src then Some [ src ] else None
    else if Closure.reaches t ~src:dst ~dst:src then
      Traversal.find_path (Closure.graph t) ~src:dst ~dst:src
    else None
end

module Topo_backend : S with type t = Topo_order.t = struct
  include Topo_order

  let name = "topo"
end

type backend = Closure | Topo | Checked

let all = [ Closure; Topo; Checked ]

let backend_name = function
  | Closure -> "closure"
  | Topo -> "topo"
  | Checked -> "checked"

let backend_of_string s =
  match String.lowercase_ascii s with
  | "closure" | "bitset" -> Ok Closure
  | "topo" | "pk" | "pearce-kelly" -> Ok Topo
  | "checked" | "both" -> Ok Checked
  | other ->
      Error
        (Printf.sprintf "unknown oracle %S (expected closure|topo|checked)"
           other)

exception Disagreement of string

let () =
  Printexc.register_printer (function
    | Disagreement m -> Some (Printf.sprintf "Cycle_oracle.Disagreement: %s" m)
    | _ -> None)

let disagree fmt = Printf.ksprintf (fun m -> raise (Disagreement m)) fmt

type t =
  | Closure_o of Closure.t
  | Topo_o of Topo_order.t
  | Checked_o of Closure.t * Topo_order.t

let create = function
  | Closure -> Closure_o (Closure_backend.create ())
  | Topo -> Topo_o (Topo_backend.create ())
  | Checked -> Checked_o (Closure_backend.create (), Topo_backend.create ())

let backend = function
  | Closure_o _ -> Closure
  | Topo_o _ -> Topo
  | Checked_o _ -> Checked

let name t = backend_name (backend t)

let copy = function
  | Closure_o c -> Closure_o (Closure_backend.copy c)
  | Topo_o o -> Topo_o (Topo_backend.copy o)
  | Checked_o (c, o) ->
      Checked_o (Closure_backend.copy c, Topo_backend.copy o)

(* [Checked] compares every boolean answer; [agree] is the single
   funnel so each divergence names the operation and both verdicts. *)
let agree op a b =
  if a <> b then disagree "%s: closure says %b, topo says %b" op a b;
  a

let add_node t v =
  match t with
  | Closure_o c -> Closure_backend.add_node c v
  | Topo_o o -> Topo_backend.add_node o v
  | Checked_o (c, o) ->
      Closure_backend.add_node c v;
      Topo_backend.add_node o v

let mem_node t v =
  match t with
  | Closure_o c -> Closure_backend.mem_node c v
  | Topo_o o -> Topo_backend.mem_node o v
  | Checked_o (c, o) ->
      agree
        (Printf.sprintf "mem_node %d" v)
        (Closure_backend.mem_node c v)
        (Topo_backend.mem_node o v)

let nodes = function
  | Closure_o c -> Closure_backend.nodes c
  | Topo_o o -> Topo_backend.nodes o
  | Checked_o (c, o) ->
      let nc = Closure_backend.nodes c and no = Topo_backend.nodes o in
      if not (Intset.equal nc no) then
        disagree "nodes: closure has %s, topo has %s"
          (Format.asprintf "%a" Intset.pp nc)
          (Format.asprintf "%a" Intset.pp no);
      nc

let add_arc t ~src ~dst =
  match t with
  | Closure_o c -> Closure_backend.add_arc c ~src ~dst
  | Topo_o o -> Topo_backend.add_arc o ~src ~dst
  | Checked_o (c, o) ->
      let safe =
        not
          (agree
             (Printf.sprintf "would_cycle before add_arc %d -> %d" src dst)
             (Closure_backend.would_cycle c ~src ~dst)
             (Topo_backend.would_cycle o ~src ~dst))
      in
      if not safe then
        disagree "add_arc %d -> %d: both backends report a cycle-closing arc \
                  (caller broke the pre-condition)"
          src dst;
      Closure_backend.add_arc c ~src ~dst;
      Topo_backend.add_arc o ~src ~dst

let remove_node t mode v =
  match t with
  | Closure_o c -> Closure_backend.remove_node c mode v
  | Topo_o o -> Topo_backend.remove_node o mode v
  | Checked_o (c, o) ->
      Closure_backend.remove_node c mode v;
      Topo_backend.remove_node o mode v

let reaches t ~src ~dst =
  match t with
  | Closure_o c -> Closure_backend.reaches c ~src ~dst
  | Topo_o o -> Topo_backend.reaches o ~src ~dst
  | Checked_o (c, o) ->
      agree
        (Printf.sprintf "reaches %d -> %d" src dst)
        (Closure_backend.reaches c ~src ~dst)
        (Topo_backend.reaches o ~src ~dst)

let reaches_any t ~src ~dsts =
  match t with
  | Closure_o c -> Closure_backend.reaches_any c ~src ~dsts
  | Topo_o o -> Topo_backend.reaches_any o ~src ~dsts
  | Checked_o (c, o) ->
      agree
        (Format.asprintf "reaches_any %d -> %a" src Intset.pp dsts)
        (Closure_backend.reaches_any c ~src ~dsts)
        (Topo_backend.reaches_any o ~src ~dsts)

let would_cycle t ~src ~dst =
  match t with
  | Closure_o c -> Closure_backend.would_cycle c ~src ~dst
  | Topo_o o -> Topo_backend.would_cycle o ~src ~dst
  | Checked_o (c, o) ->
      agree
        (Printf.sprintf "would_cycle %d -> %d" src dst)
        (Closure_backend.would_cycle c ~src ~dst)
        (Topo_backend.would_cycle o ~src ~dst)

(* A witness must be a genuine path [dst ⇝ src] over the arcs the
   backend itself maintains. *)
let witness_is_path g ~src ~dst = function
  | [] -> false
  | [ v ] -> v = src && v = dst
  | first :: _ as path ->
      first = dst
      &&
      let rec arcs = function
        | a :: (b :: _ as rest) ->
            Digraph.mem_arc g ~src:a ~dst:b && arcs rest
        | [ last ] -> last = src
        | [] -> false
      in
      arcs path

let cycle_witness t ~src ~dst =
  match t with
  | Closure_o c -> Closure_backend.cycle_witness c ~src ~dst
  | Topo_o o -> Topo_backend.cycle_witness o ~src ~dst
  | Checked_o (c, o) -> (
      let wc = Closure_backend.cycle_witness c ~src ~dst in
      let wo = Topo_backend.cycle_witness o ~src ~dst in
      match (wc, wo) with
      | None, None -> None
      | Some pc, Some po ->
          if not (witness_is_path (Closure.graph c) ~src ~dst pc) then
            disagree "cycle_witness %d -> %d: closure produced a bogus path"
              src dst;
          if not (witness_is_path (Topo_order.graph o) ~src ~dst po) then
            disagree "cycle_witness %d -> %d: topo produced a bogus path" src
              dst;
          Some pc
      | Some _, None | None, Some _ ->
          disagree "cycle_witness %d -> %d: closure says %s, topo says %s" src
            dst
            (if wc = None then "safe" else "cycle")
            (if wo = None then "safe" else "cycle"))

let check_against t g =
  match t with
  | Closure_o c -> Closure_backend.check_against c g
  | Topo_o o -> Topo_backend.check_against o g
  | Checked_o (c, o) ->
      Closure_backend.check_against c g && Topo_backend.check_against o g

let closure = function
  | Closure_o c | Checked_o (c, _) -> Some c
  | Topo_o _ -> None

let topo = function
  | Topo_o o | Checked_o (_, o) -> Some o
  | Closure_o _ -> None
