(* Arena-backed directed graphs.

   Node ids are caller-chosen (transaction ids — monotonically growing),
   but adjacency is stored in slot space: an {!Arena} maps each live id
   to a dense slot and the succ/pred rows are slot-indexed {!Row}s whose
   bits are *slots*, so the resident footprint is bounded by the
   high-water live population, never by the ids ever issued.  Removing a
   node erases its incident arcs from both sides before its slot goes
   back on the free list, so a recycled slot always starts with empty
   rows and no row anywhere still mentions it. *)

type t = {
  arena : Arena.t;
  mutable succ : Row.t option array; (* slot -> successors, as slots *)
  mutable pred : Row.t option array; (* slot -> predecessors, as slots *)
  mutable arcs : int;
}

let create () =
  { arena = Arena.create (); succ = [||]; pred = [||]; arcs = 0 }

let copy g =
  {
    arena = Arena.copy g.arena;
    succ = Array.map (Option.map Row.copy) g.succ;
    pred = Array.map (Option.map Row.copy) g.pred;
    arcs = g.arcs;
  }

let grow g n =
  let cur = Array.length g.succ in
  if n > cur then begin
    let n' = max n (max 16 (2 * cur)) in
    let succ = Array.make n' None and pred = Array.make n' None in
    Array.blit g.succ 0 succ 0 cur;
    Array.blit g.pred 0 pred 0 cur;
    g.succ <- succ;
    g.pred <- pred
  end

let row arr s =
  match arr.(s) with
  | Some r -> r
  | None ->
      let r = Row.create () in
      arr.(s) <- Some r;
      r

let add_node g v =
  if not (Arena.mem g.arena v) then begin
    let s = Arena.alloc g.arena v in
    grow g (s + 1)
  end

let mem_node g v = Arena.mem g.arena v

let node_count g = Arena.live g.arena

let nodes g =
  Arena.fold (fun ~id ~slot:_ acc -> Intset.add id acc) g.arena Intset.empty

let iter_nodes f g = Arena.iter (fun ~id ~slot:_ -> f id) g.arena

(* {2 Slot view} — for the closure / topological-order backends, which
   keep their own slot-indexed side tables over this graph's arena. *)

let slot_of g v = Arena.find g.arena v
let id_of_slot g s = Arena.id_of g.arena s
let slot_capacity g = Arena.capacity g.arena

let iter_succ_slots f g s =
  if s >= 0 && s < Array.length g.succ then
    match g.succ.(s) with Some r -> Row.iter f r | None -> ()

let iter_pred_slots f g s =
  if s >= 0 && s < Array.length g.pred then
    match g.pred.(s) with Some r -> Row.iter f r | None -> ()

let mem_arc_slots g ~src ~dst =
  src >= 0
  && src < Array.length g.succ
  && (match g.succ.(src) with Some r -> Row.mem r dst | None -> false)

let mem_pred_slot g ~dst ~src =
  dst >= 0
  && dst < Array.length g.pred
  && (match g.pred.(dst) with Some r -> Row.mem r src | None -> false)

(* {2 Id view} *)

let set_of g arr v =
  match Arena.find g.arena v with
  | None -> Intset.empty
  | Some s -> (
      match arr.(s) with
      | None -> Intset.empty
      | Some r ->
          Row.fold (fun sl acc -> Intset.add (Arena.id_of g.arena sl) acc) r
            Intset.empty)

let succs g v = set_of g g.succ v
let preds g v = set_of g g.pred v

let degree_of g arr v =
  match Arena.find g.arena v with
  | None -> 0
  | Some s -> ( match arr.(s) with Some r -> Row.cardinal r | None -> 0)

let out_degree g v = degree_of g g.succ v
let in_degree g v = degree_of g g.pred v

let mem_arc g ~src ~dst =
  match (Arena.find g.arena src, Arena.find g.arena dst) with
  | Some ss, Some ds -> (
      match g.succ.(ss) with Some r -> Row.mem r ds | None -> false)
  | _ -> false

let add_arc g ~src ~dst =
  add_node g src;
  add_node g dst;
  let ss = Arena.slot g.arena src and ds = Arena.slot g.arena dst in
  let r = row g.succ ss in
  if not (Row.mem r ds) then begin
    Row.add r ds;
    Row.add (row g.pred ds) ss;
    g.arcs <- g.arcs + 1
  end

let remove_arc g ~src ~dst =
  match (Arena.find g.arena src, Arena.find g.arena dst) with
  | Some ss, Some ds -> (
      match g.succ.(ss) with
      | Some r when Row.mem r ds ->
          Row.remove r ds;
          (match g.pred.(ds) with Some p -> Row.remove p ss | None -> ());
          g.arcs <- g.arcs - 1
      | _ -> ())
  | _ -> ()

let remove_node g v =
  match Arena.find g.arena v with
  | None -> ()
  | Some s ->
      (* Erase the incident arcs from the *other* endpoints' rows, then
         blank this slot's own rows, so the slot re-enters the free list
         with no trace of the departed node anywhere. *)
      (match g.succ.(s) with
      | Some r ->
          Row.iter
            (fun ds ->
              (match g.pred.(ds) with Some p -> Row.remove p s | None -> ());
              g.arcs <- g.arcs - 1)
            r;
          Row.clear r
      | None -> ());
      (match g.pred.(s) with
      | Some r ->
          Row.iter
            (fun ps ->
              (match g.succ.(ps) with Some q -> Row.remove q s | None -> ());
              g.arcs <- g.arcs - 1)
            r;
          Row.clear r
      | None -> ());
      ignore (Arena.release g.arena v)

let arc_count g = g.arcs

let iter_arcs f g =
  Arena.iter_slots
    (fun ~slot ~id:src ->
      match g.succ.(slot) with
      | Some r -> Row.iter (fun ds -> f ~src ~dst:(Arena.id_of g.arena ds)) r
      | None -> ())
    g.arena

let fold_arcs f g init =
  let acc = ref init in
  iter_arcs (fun ~src ~dst -> acc := f ~src ~dst !acc) g;
  !acc

let equal g1 g2 =
  node_count g1 = node_count g2
  && arc_count g1 = arc_count g2
  && Intset.equal (nodes g1) (nodes g2)
  && Arena.fold
       (fun ~id ~slot:_ acc -> acc && Intset.equal (succs g1 id) (succs g2 id))
       g1.arena true

let bytes g =
  let rows arr =
    Array.fold_left
      (fun acc r -> match r with Some r -> acc + Row.bytes r | None -> acc + 8)
      0 arr
  in
  Arena.bytes g.arena + rows g.succ + rows g.pred + 32

let pp ppf g =
  let ns = Intset.to_sorted_list (nodes g) in
  Format.fprintf ppf "@[<v>nodes: %s@,"
    (String.concat " " (List.map string_of_int ns));
  List.iter
    (fun v ->
      let ss = Intset.to_sorted_list (succs g v) in
      if ss <> [] then
        Format.fprintf ppf "%d -> %s@," v
          (String.concat " " (List.map string_of_int ss)))
    ns;
  Format.fprintf ppf "@]"
