(* Dense-slot arena over caller-chosen integer ids.

   Transaction ids grow monotonically for the life of a server, but the
   *resident* population is bounded by the deletion policy.  Keying rows
   by raw ids makes every slot-indexed structure grow with history; the
   arena maps each live id to a small dense slot and recycles slots
   through a LIFO free list the moment the id is released, so slot
   capacity tracks the high-water mark of simultaneous residents — not
   the total ids ever issued. *)

type t = {
  slots : (int, int) Hashtbl.t; (* id -> slot, live ids only *)
  mutable ids : int array; (* slot -> id; -1 = free *)
  mutable free : int array; (* LIFO stack of recycled slots *)
  mutable free_len : int;
  mutable next : int; (* first never-used slot *)
}

let create ?(capacity = 16) () =
  {
    slots = Hashtbl.create (max 16 capacity);
    ids = Array.make (max 1 capacity) (-1);
    free = Array.make 16 0;
    free_len = 0;
    next = 0;
  }

let copy t =
  {
    slots = Hashtbl.copy t.slots;
    ids = Array.copy t.ids;
    free = Array.copy t.free;
    free_len = t.free_len;
    next = t.next;
  }

let live t = Hashtbl.length t.slots

let capacity t = t.next
(* High-water slot count: every slot in [0, next) has been used at least
   once; slot-indexed side tables need exactly this many cells. *)

let find t id = Hashtbl.find_opt t.slots id

let mem t id = Hashtbl.mem t.slots id

let slot t id =
  match Hashtbl.find_opt t.slots id with
  | Some s -> s
  | None -> raise Not_found

let id_of t s = if s >= 0 && s < Array.length t.ids then t.ids.(s) else -1

let grow_ids t want =
  let n = Array.length t.ids in
  if want >= n then begin
    let ids = Array.make (max (want + 1) (2 * n)) (-1) in
    Array.blit t.ids 0 ids 0 n;
    t.ids <- ids
  end

let push_free t s =
  let n = Array.length t.free in
  if t.free_len >= n then begin
    let free = Array.make (2 * n) 0 in
    Array.blit t.free 0 free 0 n;
    t.free <- free
  end;
  t.free.(t.free_len) <- s;
  t.free_len <- t.free_len + 1

let alloc t id =
  if Hashtbl.mem t.slots id then
    invalid_arg (Printf.sprintf "Arena.alloc: id %d already live" id);
  let s =
    if t.free_len > 0 then begin
      t.free_len <- t.free_len - 1;
      t.free.(t.free_len)
    end
    else begin
      let s = t.next in
      t.next <- t.next + 1;
      grow_ids t s;
      s
    end
  in
  t.ids.(s) <- id;
  Hashtbl.replace t.slots id s;
  s

let release t id =
  match Hashtbl.find_opt t.slots id with
  | None -> None
  | Some s ->
      Hashtbl.remove t.slots id;
      t.ids.(s) <- -1;
      push_free t s;
      Some s

let iter f t = Hashtbl.iter (fun id s -> f ~id ~slot:s) t.slots

let iter_slots f t =
  for s = 0 to t.next - 1 do
    let id = t.ids.(s) in
    if id >= 0 then f ~slot:s ~id
  done

let fold f t init =
  Hashtbl.fold (fun id s acc -> f ~id ~slot:s acc) t.slots init

let bytes t =
  (* Deterministic resident estimate in bytes (word = 8): the two slot
     arrays plus ~4 words per live hashtable binding.  Derived from
     capacities and live counts only, so replicas driven by the same
     operation sequence report identical values. *)
  8 * (Array.length t.ids + Array.length t.free + (4 * live t) + 8)
