(* Hybrid set rows: small sorted array → dense bitset.

   Closure rows are overwhelmingly tiny (a transaction's tight
   neighbourhood) with a heavy tail of large cones.  A dense bitset per
   row charges every row for the whole slot space; a sorted int array
   is compact and cache-friendly until it isn't.  The hybrid keeps each
   row as a sorted array up to [small_max] elements and upgrades to a
   {!Bitset} the first time it grows past that — the shared-structure
   set idiom (many near-identical small sets, few big ones) from the
   DAWG-style related work, specialised to mutable rows.

   A row never downgrades: once a cone has been large the transaction
   is about to be deleted anyway, and downgrade churn would dominate. *)

type rep =
  | Small of { mutable elems : int array; mutable len : int } (* sorted, unique *)
  | Dense of Bitset.t

type t = { mutable rep : rep }

let small_max = 48

let create () = { rep = Small { elems = [||]; len = 0 } }

let copy t =
  match t.rep with
  | Small { elems; len } -> { rep = Small { elems = Array.copy elems; len } }
  | Dense b -> { rep = Dense (Bitset.copy b) }

(* Binary search for [x] in the first [len] cells: [Ok index] when
   present, [Error insertion_point] when not. *)
let search elems len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if elems.(mid) < x then lo := mid + 1 else hi := mid
  done;
  if !lo < len && elems.(!lo) = x then Ok !lo else Error !lo

let neg op i = invalid_arg (Printf.sprintf "Row.%s: negative index %d" op i)

let upgrade t =
  match t.rep with
  | Dense _ -> ()
  | Small { elems; len } ->
      let b = Bitset.create ~capacity:(2 * small_max * 64 / 64) () in
      for i = 0 to len - 1 do
        Bitset.add b elems.(i)
      done;
      t.rep <- Dense b

let add t x =
  if x < 0 then neg "add" x;
  match t.rep with
  | Dense b -> Bitset.add b x
  | Small s -> (
      match search s.elems s.len x with
      | Ok _ -> ()
      | Error at ->
          if s.len >= small_max then begin
            upgrade t;
            match t.rep with
            | Dense b -> Bitset.add b x
            | Small _ -> assert false
          end
          else begin
            let cap = Array.length s.elems in
            if s.len >= cap then begin
              let elems = Array.make (max 4 (2 * cap)) 0 in
              Array.blit s.elems 0 elems 0 s.len;
              s.elems <- elems
            end;
            Array.blit s.elems at s.elems (at + 1) (s.len - at);
            s.elems.(at) <- x;
            s.len <- s.len + 1
          end)

let remove t x =
  if x < 0 then neg "remove" x;
  match t.rep with
  | Dense b -> Bitset.remove b x
  | Small s -> (
      match search s.elems s.len x with
      | Error _ -> ()
      | Ok at ->
          Array.blit s.elems (at + 1) s.elems at (s.len - at - 1);
          s.len <- s.len - 1)

let mem t x =
  x >= 0
  &&
  match t.rep with
  | Dense b -> Bitset.mem b x
  | Small s -> ( match search s.elems s.len x with Ok _ -> true | Error _ -> false)

let cardinal t =
  match t.rep with Small s -> s.len | Dense b -> Bitset.cardinal b

let is_empty t =
  match t.rep with Small s -> s.len = 0 | Dense b -> Bitset.is_empty b

let iter f t =
  match t.rep with
  | Small s ->
      for i = 0 to s.len - 1 do
        f s.elems.(i)
      done
  | Dense b -> Bitset.iter f b

let fold f t init =
  let acc = ref init in
  iter (fun x -> acc := f x !acc) t;
  !acc

let exists p t =
  match t.rep with
  | Small s ->
      let rec go i = i < s.len && (p s.elems.(i) || go (i + 1)) in
      go 0
  | Dense b -> Bitset.exists p b

let elements t = List.rev (fold (fun x acc -> x :: acc) t [])

let clear t = t.rep <- Small { elems = [||]; len = 0 }

let union_into ~into src =
  match (into.rep, src.rep) with
  | Dense di, Dense ds -> Bitset.union_into ~into:di ds
  | _, _ ->
      (* Mixed or small/small: element-at-a-time insertion through [add]
         (which upgrades [into] when it outgrows the small regime).  If
         the source is already dense, the destination will be too within
         [small_max] insertions — upgrade it up front. *)
      (match src.rep with Dense _ -> upgrade into | Small _ -> ());
      let changed = ref false in
      iter
        (fun x ->
          if not (mem into x) then begin
            add into x;
            changed := true
          end)
        src;
      !changed

let inter_card a b =
  match (a.rep, b.rep) with
  | Dense da, Dense db -> Bitset.inter_card da db
  | Small sa, Small sb ->
      (* Two-pointer walk over the sorted prefixes. *)
      let i = ref 0 and j = ref 0 and acc = ref 0 in
      while !i < sa.len && !j < sb.len do
        let x = sa.elems.(!i) and y = sb.elems.(!j) in
        if x = y then begin incr acc; incr i; incr j end
        else if x < y then incr i
        else incr j
      done;
      !acc
  | Small s, Dense d | Dense d, Small s ->
      let acc = ref 0 in
      for i = 0 to s.len - 1 do
        if Bitset.mem d s.elems.(i) then incr acc
      done;
      !acc

let is_dense t = match t.rep with Dense _ -> true | Small _ -> false

let bytes t =
  match t.rep with
  | Small s -> 8 * (Array.length s.elems + 4)
  | Dense b -> Bitset.bytes b + 24

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements t)))
