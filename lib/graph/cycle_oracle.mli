(** Pluggable cycle-detection backends for the conflict-graph schedulers.

    Every accept/reject decision of the preventive schedulers is a
    "would this arc set close a cycle?" question, and every deletion of
    a completed transaction mutates the same structure.  This module
    fixes the contract those questions are asked through ({!S}) and
    packages three interchangeable implementations:

    - [Closure] — the reference: the bitset transitive {!Closure} of the
      §3 remark.  Queries are O(1) bitset probes; arc inserts touch
      [O(affected pairs)] words; aborts recompute the affected rows.
    - [Topo] — {!Topo_order}, Pearce–Kelly incremental topological
      order.  Inserts are [O(affected region)] (O(1) when already in
      order), removals of either flavour never trigger any rebuild, and
      queries are rank-clipped searches — the right trade for the sparse
      graphs the workload generator produces.
    - [Checked] — runs both and raises {!Disagreement} the moment any
      operation's observable result differs.  The differential harness
      in [test/test_oracle_diff.ml] and [dct simulate --oracle checked]
      are built on it.

    All backends are {e decision-equivalent}: on any legal operation
    sequence they answer every query identically (QCheck-tested), so
    schedulers, deletion policies and conditions C1/C2 behave
    byte-for-byte the same whichever backend is plugged in.

    To add a fourth backend, implement {!S} (see [docs/oracle.md]),
    extend {!backend} and the dispatch in [cycle_oracle.ml], and add the
    backend to {!all} — the differential suite picks it up from there. *)

(** The operations a backend must provide.  [add_arc] may assume
    [not (would_cycle t ~src ~dst)] — schedulers always test first —
    and should raise [Invalid_argument] when handed a cycle-closing
    arc.  [remove_node `Bypass] is the paper's reduction [D(G, T)]
    (bypass arcs preserve paths); [`Exact] is plain removal (abort). *)
module type S = sig
  type t

  val name : string
  val create : unit -> t
  val copy : t -> t
  val add_node : t -> int -> unit
  val mem_node : t -> int -> bool
  val nodes : t -> Intset.t
  val add_arc : t -> src:int -> dst:int -> unit
  val remove_node : t -> [ `Bypass | `Exact ] -> int -> unit
  val reaches : t -> src:int -> dst:int -> bool
  val reaches_any : t -> src:int -> dsts:Intset.t -> bool
  val would_cycle : t -> src:int -> dst:int -> bool

  val cycle_witness : t -> src:int -> dst:int -> int list option
  (** [Some (dst :: ... :: src)] — a real path [dst ⇝ src] ([[v]] when
      [src = dst]) proving the refused arc would close a cycle; [None]
      iff inserting [src -> dst] is safe. *)

  val iter_descendants : (int -> unit) -> t -> int -> unit
  (** Apply [f] to every node reachable from [v] by a non-empty path,
      without materialising a set.  Visit order is unspecified and may
      differ between backends; callers must fold order-insensitively. *)

  val iter_ancestors : (int -> unit) -> t -> int -> unit

  val bytes : t -> int
  (** Deterministic resident-size estimate of the whole structure. *)

  val check_against : t -> Digraph.t -> bool
  (** Structure agrees with ground-truth reachability on [g]. *)
end

module Closure_backend : S with type t = Closure.t
module Topo_backend : S with type t = Topo_order.t

(** {1 Backend selection} *)

type backend = Closure | Topo | Checked

val all : backend list
(** [[Closure; Topo; Checked]] — what the differential suite sweeps. *)

val backend_name : backend -> string
(** ["closure" | "topo" | "checked"] — the [--oracle] spellings. *)

val backend_of_string : string -> (backend, string) result
(** Inverse of {!backend_name}; case-insensitive. *)

exception Disagreement of string
(** Raised by a [Checked] oracle when the two backends' observable
    results diverge.  The message names the operation and both
    answers. *)

(** {1 Packed oracles} *)

type t
(** A live oracle instance of some backend, optionally carrying a
    {!Dct_telemetry.Probe} that times the hot operations ([add_arc],
    [remove_node], [reaches], [reaches_any], [would_cycle]).  Each
    timed operation emits one sample per underlying backend
    (["closure"]/["topo"]; a [Checked] oracle emits both), so latency
    histograms from a checked run decompose into the two
    single-backend runs.  No probe, no clock reads. *)

val create : ?probe:Dct_telemetry.Probe.t -> backend -> t
val backend : t -> backend
val name : t -> string

val set_probe : t -> Dct_telemetry.Probe.t option -> unit
(** Attach or detach the timing probe of a live oracle. *)

val probe : t -> Dct_telemetry.Probe.t option

val copy : t -> t
(** Deep copy.  The copy carries {e no} probe: copies are speculative
    (safety searches, audit replays, exact-max enumeration) and must
    not pollute the live oracle's latency record. *)

val add_node : t -> int -> unit
val mem_node : t -> int -> bool
val nodes : t -> Intset.t

val add_arc : t -> src:int -> dst:int -> unit
(** Pre-condition: the arc does not close a cycle (test {!would_cycle}
    first).  A [Checked] oracle verifies both backends agree the arc is
    safe before inserting. *)

val remove_node : t -> [ `Bypass | `Exact ] -> int -> unit
val reaches : t -> src:int -> dst:int -> bool
val reaches_any : t -> src:int -> dsts:Intset.t -> bool
val would_cycle : t -> src:int -> dst:int -> bool

val cycle_witness : t -> src:int -> dst:int -> int list option
(** See {!S.cycle_witness}.  A [Checked] oracle additionally validates
    each backend's witness against its own arc set and that the two
    agree on existence. *)

val iter_descendants : (int -> unit) -> t -> int -> unit
(** Allocation-free cone iteration (the audit/invariant hot path).  A
    [Checked] oracle collects both backends' cones, raises
    {!Disagreement} if they differ, and replays the closure's. *)

val iter_ancestors : (int -> unit) -> t -> int -> unit

val descendants : t -> int -> Intset.t
(** Thin {!Intset} wrappers over the iterators, for callers that want a
    set value. *)

val ancestors : t -> int -> Intset.t

val bytes : t -> int
(** Deterministic resident-size estimate in bytes of the backing
    structures ([Checked] sums both).  Capacity-derived: replicas built
    by identical operation sequences report identical values. *)

val check_against : t -> Digraph.t -> bool

val closure : t -> Closure.t option
(** The underlying bitset closure when this oracle maintains one
    ([Closure] and [Checked] backends) — read-only, for the invariant
    auditor and tests. *)

val topo : t -> Topo_order.t option
(** The underlying topological order, when maintained ([Topo] and
    [Checked] backends). *)
