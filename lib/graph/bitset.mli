(** Growable bitsets over non-negative integers, Bigarray-backed.

    Used as dense rows of the dynamic transitive closure
    ({!Dct_graph.Closure}) and as the dense leg of the hybrid row
    representation ({!Dct_graph.Row}).  Words are flat [int64]s in a
    C-layout Bigarray (8 bytes per 64 bits, off the boxed heap);
    popcount is SWAR and iteration peels set bits, so query cost tracks
    cardinality.  All operations grow the underlying storage on demand;
    membership queries outside the allocated range are [false].

    Negative-index contract (uniform across the module): {!mem} is a
    total query — [mem t i] is [false] for [i < 0] — while the
    mutations {!add} and {!remove} treat a negative index as a
    programming error and raise [Invalid_argument].  (The previous
    implementation raised from [add] but silently ignored negative
    [remove]; the asymmetry is gone.) *)

type t

val create : ?capacity:int -> unit -> t
(** [create ()] is an empty bitset.  [capacity] is a size hint in bits. *)

val copy : t -> t

val add : t -> int -> unit
(** [add t i] sets bit [i].  @raise Invalid_argument if [i < 0]. *)

val remove : t -> int -> unit
(** [remove t i] clears bit [i] (a no-op when beyond the allocated
    range).  @raise Invalid_argument if [i < 0]. *)

val mem : t -> int -> bool
(** Total: [false] for negative or out-of-range indices. *)

val is_empty : t -> bool

val cardinal : t -> int

val union_into : into:t -> t -> bool
(** [union_into ~into src] sets every bit of [src] in [into]; returns
    [true] iff [into] changed. *)

val inter_card : t -> t -> int
(** [inter_card a b] is [cardinal (a ∩ b)] without materialising it. *)

val iter : (int -> unit) -> t -> unit
(** [iter f t] applies [f] to every set bit in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val exists : (int -> bool) -> t -> bool
(** Short-circuiting: stops at the first set bit satisfying the
    predicate. *)

val elements : t -> int list
(** Set bits in increasing order. *)

val clear : t -> unit
(** Remove every element (capacity is retained). *)

val word_capacity : t -> int
(** Allocated 64-bit words. *)

val bytes : t -> int
(** Resident payload bytes: [8 * word_capacity]. *)

val pp : Format.formatter -> t -> unit
