(** Incremental topological order — the sparse cycle-detection backend.

    Maintains a total order on the nodes of an owned {!Digraph.t} that is
    consistent with its arcs, using the Pearce–Kelly dynamic
    topological-sort algorithm (Pearce & Kelly, JEA 11, 2006).  Inserting
    an arc [u -> v] with [rank v < rank u] discovers the {e affected
    region} — the forward frontier of [v] and the backward frontier of
    [u], both clipped to the rank interval [[rank v, rank u]] — and
    permutes only those nodes' ranks, so an insertion costs
    [O(affected region)] instead of [O(V + E)]; insertions already in
    order cost [O(1)].

    Unlike {!Order} (the minimal checker benchmarked in EX11), this
    module supports everything {!Cycle_oracle} needs: reachability
    queries clipped by rank, cycle witnesses, deep copies, and both
    flavours of node removal.  Removals never invalidate a topological
    order, which is why this backend wins on deletion-heavy workloads —
    the bitset {!Closure} must rebuild rows where this does nothing. *)

type t

val create : unit -> t

val copy : t -> t
(** Independent deep copy. *)

val graph : t -> Digraph.t
(** The underlying graph.  Callers must not mutate it directly. *)

val add_node : t -> int -> unit
(** Appends the node at the end of the order; no-op if present. *)

val mem_node : t -> int -> bool
val nodes : t -> Intset.t

val add_arc : t -> src:int -> dst:int -> unit
(** Inserts the arc, permuting ranks inside the affected region if
    needed.  Endpoints are created if missing; re-inserting an existing
    arc is a no-op.
    @raise Invalid_argument if the arc would close a cycle — callers
    must test {!would_cycle} first, as every scheduler does. *)

val remove_node : t -> [ `Bypass | `Exact ] -> int -> unit
(** [`Bypass] is the paper's reduction [D(G, T)]: predecessor×successor
    bypass arcs are inserted (each respects the existing order, so no
    reordering can occur) and the node is dropped.  [`Exact] simply
    drops the node and its incident arcs.  Both are [O(degree²)] resp.
    [O(degree)] — a topological order of a graph remains one of any
    subgraph, so, unlike {!Closure}, nothing is rebuilt. *)

val reaches : t -> src:int -> dst:int -> bool
(** [true] iff a non-empty directed path [src ⇝ dst] exists.  The search
    is clipped to nodes with rank in [(rank src, rank dst)]; in
    particular it is [O(1)] whenever [rank src >= rank dst]. *)

val reaches_any : t -> src:int -> dsts:Intset.t -> bool
(** Does [src] reach some member of [dsts] (by a non-empty path)?  One
    clipped search bounded by the largest rank in [dsts], not
    [|dsts|] separate queries. *)

val would_cycle : t -> src:int -> dst:int -> bool
(** [true] iff inserting [src -> dst] would close a cycle
    ([src = dst] or [dst ⇝ src]). *)

val cycle_witness : t -> src:int -> dst:int -> int list option
(** When [would_cycle t ~src ~dst], a witness for the refusal: nodes
    [dst; ...; src] forming a real path [dst ⇝ src] in the current
    graph (a single [[v]] when [src = dst]), such that adding the arc
    [src -> dst] would close the cycle.  [None] when the insertion is
    safe. *)

val iter_descendants : (int -> unit) -> t -> int -> unit
(** [iter_descendants f t v] applies [f] to every node reachable from
    [v] by a non-empty path, via a DFS that marks visited slots with a
    generation stamp — no per-query set is materialised.  No-op when [v]
    is absent.  Unlike {!reaches}, the search is not rank-clipped: it
    must enumerate the full cone. *)

val iter_ancestors : (int -> unit) -> t -> int -> unit

val rank : t -> int -> int
(** Current position of a node in the maintained order.
    @raise Not_found if the node is absent. *)

val bytes : t -> int
(** Deterministic resident-size estimate in bytes (graph + rank and
    visit-mark tables). *)

val check_invariant : t -> bool
(** For tests: every arc [u -> v] satisfies [rank u < rank v] and every
    node has a rank. *)

val check_against : t -> Digraph.t -> bool
(** For tests and the [Checked] oracle: same node and arc sets as [g],
    and the rank invariant holds. *)
