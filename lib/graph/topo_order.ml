type t = {
  g : Digraph.t;
  mutable ord : int array; (* slot -> rank, unique; -1 on free slots *)
  mutable next : int; (* next fresh rank *)
  mutable mark : int array; (* slot -> generation of last visit *)
  mutable gen : int; (* current search generation *)
}
(* Ranks and visit marks are indexed by the arena slots of [g]: both
   side tables are bounded by the high-water resident population.  The
   generation counter makes every clipped search allocation-free — a
   slot is "visited" iff [mark.(s) = gen], and bumping [gen] resets the
   whole table in O(1).  Recycled slots carry a stale (strictly smaller)
   generation, so they can never appear pre-visited. *)

let create () = { g = Digraph.create (); ord = [||]; next = 0; mark = [||]; gen = 0 }

let copy t =
  {
    g = Digraph.copy t.g;
    ord = Array.copy t.ord;
    next = t.next;
    mark = Array.copy t.mark;
    gen = t.gen;
  }

let graph t = t.g

let grow t n =
  let cur = Array.length t.ord in
  if n > cur then begin
    let n' = max n (max 16 (2 * cur)) in
    let ord = Array.make n' (-1) and mark = Array.make n' 0 in
    Array.blit t.ord 0 ord 0 cur;
    Array.blit t.mark 0 mark 0 cur;
    t.ord <- ord;
    t.mark <- mark
  end

let slot t v =
  match Digraph.slot_of t.g v with Some s -> s | None -> raise Not_found

let rank t v = t.ord.(slot t v)

let mem_node t v = Digraph.mem_node t.g v

let nodes t = Digraph.nodes t.g

let add_node t v =
  if not (Digraph.mem_node t.g v) then begin
    Digraph.add_node t.g v;
    grow t (Digraph.slot_capacity t.g);
    t.ord.(slot t v) <- t.next;
    t.next <- t.next + 1;
    (* A recycled slot must not look visited by an in-flight search;
       searches never interleave with mutation, so stamping 0 here (and
       never resetting [gen]) keeps the invariant mark < gen for fresh
       slots. *)
    t.mark.(slot t v) <- 0
  end

let fresh_gen t =
  t.gen <- t.gen + 1;
  t.gen

(* Forward DFS from slot [start] over slots with rank <= [ub].  Slots of
   rank exactly [ub] terminate a path (only the arc source can hold it,
   ranks being unique), so the affected region never leaks past the
   source.  Visited slots are pushed onto [out] (when given). *)
exception Hit

let clipped_forward t start ub ~stop_at ~out =
  let gen = fresh_gen t in
  let rec go s =
    t.mark.(s) <- gen;
    (match out with Some l -> l := s :: !l | None -> ());
    Digraph.iter_succ_slots
      (fun w ->
        if w = stop_at then raise Hit;
        if t.ord.(w) < ub && t.mark.(w) <> gen then go w)
      t.g s
  in
  go start

let clipped_backward t start lb ~out =
  let gen = fresh_gen t in
  let rec go s =
    t.mark.(s) <- gen;
    out := s :: !out;
    Digraph.iter_pred_slots
      (fun w -> if t.ord.(w) > lb && t.mark.(w) <> gen then go w)
      t.g s
  in
  go start

(* Reassign the pooled old ranks of both regions: the backward region
   keeps its relative order, followed by the forward region in its
   relative order (Pearce-Kelly's affected-region permutation). *)
let reorder t delta_b delta_f =
  let by_rank slots =
    List.sort (fun a b -> compare t.ord.(a) t.ord.(b)) slots
  in
  let l = by_rank delta_b @ by_rank delta_f in
  let pool = List.sort compare (List.map (fun s -> t.ord.(s)) l) in
  List.iter2 (fun s p -> t.ord.(s) <- p) l pool

let add_arc t ~src ~dst =
  if src = dst then
    invalid_arg (Printf.sprintf "Topo_order.add_arc: self-loop on %d" src);
  add_node t src;
  add_node t dst;
  if not (Digraph.mem_arc t.g ~src ~dst) then begin
    let ss = slot t src and ds = slot t dst in
    let ox = t.ord.(ss) and oy = t.ord.(ds) in
    if oy < ox then begin
      let delta_f = ref [] in
      match clipped_forward t ds ox ~stop_at:ss ~out:(Some delta_f) with
      | exception Hit ->
          invalid_arg
            (Printf.sprintf "Topo_order.add_arc: %d -> %d closes a cycle" src
               dst)
      | () ->
          let delta_b = ref [] in
          clipped_backward t ss oy ~out:delta_b;
          reorder t !delta_b !delta_f
    end;
    Digraph.add_arc t.g ~src ~dst
  end

let reaches t ~src ~dst =
  mem_node t src && mem_node t dst && src <> dst
  &&
  let ss = slot t src and ds = slot t dst in
  t.ord.(ss) < t.ord.(ds)
  &&
  match clipped_forward t ss t.ord.(ds) ~stop_at:ds ~out:None with
  | exception Hit -> true
  | () -> false

let reaches_any t ~src ~dsts =
  mem_node t src
  && (not (Intset.is_empty dsts))
  &&
  (* One clipped search: stop as soon as any member is visited.  The
     clip bound is the largest rank among present targets. *)
  let bound =
    Intset.fold
      (fun d acc ->
        match Digraph.slot_of t.g d with
        | Some s -> max acc t.ord.(s)
        | None -> acc)
      dsts (-1)
  in
  let ss = slot t src in
  bound > t.ord.(ss)
  &&
  let gen = fresh_gen t in
  let rec go s =
    t.mark.(s) <- gen;
    Digraph.iter_succ_slots
      (fun w ->
        if Intset.mem (Digraph.id_of_slot t.g w) dsts then raise Hit;
        if t.ord.(w) < bound && t.mark.(w) <> gen then go w)
      t.g s
  in
  match go ss with exception Hit -> true | () -> false

let would_cycle t ~src ~dst = src = dst || reaches t ~src:dst ~dst:src

let cycle_witness t ~src ~dst =
  if src = dst then if mem_node t src then Some [ src ] else None
  else if not (mem_node t src && mem_node t dst) then None
  else Traversal.find_path t.g ~src:dst ~dst:src

let iter_descendants f t v =
  if mem_node t v then begin
    let gen = fresh_gen t in
    let start = slot t v in
    let rec go s =
      t.mark.(s) <- gen;
      if s <> start then f (Digraph.id_of_slot t.g s);
      Digraph.iter_succ_slots (fun w -> if t.mark.(w) <> gen then go w) t.g s
    in
    go start
  end

let iter_ancestors f t v =
  if mem_node t v then begin
    let gen = fresh_gen t in
    let start = slot t v in
    let rec go s =
      t.mark.(s) <- gen;
      if s <> start then f (Digraph.id_of_slot t.g s);
      Digraph.iter_pred_slots (fun w -> if t.mark.(w) <> gen then go w) t.g s
    in
    go start
  end

let remove_node t mode v =
  match Digraph.slot_of t.g v with
  | None -> ()
  | Some vs ->
      (match mode with
      | `Bypass ->
          (* D(G, v): every pred-to-succ path survives via a bypass arc.
             rank p < rank v < rank s already holds, so no reordering. *)
          let ps = ref [] and ss = ref [] in
          Digraph.iter_pred_slots
            (fun p -> ps := Digraph.id_of_slot t.g p :: !ps)
            t.g vs;
          Digraph.iter_succ_slots
            (fun s -> ss := Digraph.id_of_slot t.g s :: !ss)
            t.g vs;
          Digraph.remove_node t.g v;
          List.iter
            (fun p ->
              List.iter
                (fun s -> if p <> s then Digraph.add_arc t.g ~src:p ~dst:s)
                !ss)
            !ps
      | `Exact -> Digraph.remove_node t.g v);
      t.ord.(vs) <- -1

let bytes t =
  Digraph.bytes t.g + (8 * (Array.length t.ord + Array.length t.mark)) + 40

let check_invariant t =
  Intset.for_all (fun v -> rank t v >= 0) (Digraph.nodes t.g)
  && Digraph.fold_arcs
       (fun ~src ~dst acc -> acc && rank t src < rank t dst)
       t.g true

let check_against t g = Digraph.equal t.g g && check_invariant t
