type t = {
  g : Digraph.t;
  ord : (int, int) Hashtbl.t; (* node -> rank, unique *)
  mutable next : int;         (* next fresh rank *)
}

let create () = { g = Digraph.create (); ord = Hashtbl.create 64; next = 0 }

let copy t =
  { g = Digraph.copy t.g; ord = Hashtbl.copy t.ord; next = t.next }

let graph t = t.g

let rank t v = Hashtbl.find t.ord v

let mem_node t v = Digraph.mem_node t.g v

let nodes t = Digraph.nodes t.g

let add_node t v =
  if not (Digraph.mem_node t.g v) then begin
    Digraph.add_node t.g v;
    Hashtbl.replace t.ord v t.next;
    t.next <- t.next + 1
  end

(* Forward DFS from [start] over nodes with rank <= [ub].  Nodes of rank
   exactly [ub] terminate a path (only the arc source can hold it, ranks
   being unique), so the affected region never leaks past the source. *)
exception Hit

let clipped_forward t start ub ~stop_at =
  let visited = ref Intset.empty in
  let rec go v =
    visited := Intset.add v !visited;
    Intset.iter
      (fun w ->
        if w = stop_at then raise Hit;
        if rank t w < ub && not (Intset.mem w !visited) then go w)
      (Digraph.succs t.g v)
  in
  go start;
  !visited

let clipped_backward t start lb =
  let visited = ref Intset.empty in
  let rec go v =
    visited := Intset.add v !visited;
    Intset.iter
      (fun w -> if rank t w > lb && not (Intset.mem w !visited) then go w)
      (Digraph.preds t.g v)
  in
  go start;
  !visited

(* Reassign the pooled old ranks of both regions: the backward region
   keeps its relative order, followed by the forward region in its
   relative order (Pearce-Kelly's affected-region permutation). *)
let reorder t delta_b delta_f =
  let by_rank vs =
    List.sort (fun a b -> compare (rank t a) (rank t b)) (Intset.elements vs)
  in
  let l = by_rank delta_b @ by_rank delta_f in
  let slots = List.sort compare (List.map (rank t) l) in
  List.iter2 (fun v p -> Hashtbl.replace t.ord v p) l slots

let add_arc t ~src ~dst =
  if src = dst then
    invalid_arg (Printf.sprintf "Topo_order.add_arc: self-loop on %d" src);
  add_node t src;
  add_node t dst;
  if not (Digraph.mem_arc t.g ~src ~dst) then begin
    let ox = rank t src and oy = rank t dst in
    if oy < ox then begin
      (match clipped_forward t dst ox ~stop_at:src with
      | exception Hit ->
          invalid_arg
            (Printf.sprintf "Topo_order.add_arc: %d -> %d closes a cycle" src
               dst)
      | delta_f ->
          let delta_b = clipped_backward t src oy in
          reorder t delta_b delta_f)
    end;
    Digraph.add_arc t.g ~src ~dst
  end

let reaches t ~src ~dst =
  mem_node t src && mem_node t dst && src <> dst
  && rank t src < rank t dst
  &&
  let bound = rank t dst in
  match clipped_forward t src bound ~stop_at:dst with
  | exception Hit -> true
  | _ -> false

let reaches_any t ~src ~dsts =
  mem_node t src
  && (not (Intset.is_empty dsts))
  &&
  (* One clipped search: stop as soon as any member is visited.  The
     clip bound is the largest rank among present targets. *)
  let bound =
    Intset.fold
      (fun d acc -> if mem_node t d then max acc (rank t d) else acc)
      dsts (-1)
  in
  bound > rank t src
  &&
  let visited = ref Intset.empty in
  let rec go v =
    visited := Intset.add v !visited;
    Intset.iter
      (fun w ->
        if Intset.mem w dsts then raise Hit;
        if rank t w < bound && not (Intset.mem w !visited) then go w)
      (Digraph.succs t.g v)
  in
  match go src with exception Hit -> true | () -> false

let would_cycle t ~src ~dst = src = dst || reaches t ~src:dst ~dst:src

let cycle_witness t ~src ~dst =
  if src = dst then if mem_node t src then Some [ src ] else None
  else if not (mem_node t src && mem_node t dst) then None
  else Traversal.find_path t.g ~src:dst ~dst:src

let remove_node t mode v =
  if Digraph.mem_node t.g v then begin
    (match mode with
    | `Bypass ->
        (* D(G, v): every pred-to-succ path survives via a bypass arc.
           rank p < rank v < rank s already holds, so no reordering. *)
        let ps = Digraph.preds t.g v and ss = Digraph.succs t.g v in
        Digraph.remove_node t.g v;
        Intset.iter
          (fun p ->
            Intset.iter
              (fun s -> if p <> s then Digraph.add_arc t.g ~src:p ~dst:s)
              ss)
          ps
    | `Exact -> Digraph.remove_node t.g v);
    Hashtbl.remove t.ord v
  end

let check_invariant t =
  Intset.for_all (fun v -> Hashtbl.mem t.ord v) (Digraph.nodes t.g)
  && Digraph.fold_arcs
       (fun ~src ~dst acc -> acc && rank t src < rank t dst)
       t.g true

let check_against t g = Digraph.equal t.g g && check_invariant t
