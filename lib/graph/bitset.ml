(* Bigarray-backed bitsets.

   Words are flat [int64]s in a C-layout Bigarray, so a row costs
   exactly [8 * words] bytes off the OCaml heap regardless of how many
   boxed values the minor heap churns through — the representation the
   million-resident-node closure rows need.  Popcount is SWAR (no
   dependency on a [popcnt] intrinsic); iteration peels set bits with
   the [w land -w] trick so cost tracks the cardinality, not the
   capacity. *)

type words = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { mutable words : words }

let bits_per_word = 64

(* log2 of [bits_per_word]: index decomposition is a shift and a mask,
   not a division. *)
let word_shift = 6
let bit_mask = bits_per_word - 1

let words_for bits = (bits + bits_per_word - 1) / bits_per_word

let alloc n : words =
  let w = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n in
  Bigarray.Array1.fill w 0L;
  w

let create ?(capacity = 64) () = { words = alloc (max 1 (words_for capacity)) }

let word_capacity t = Bigarray.Array1.dim t.words

let bytes t = 8 * word_capacity t

let copy t =
  let n = word_capacity t in
  let words = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n in
  Bigarray.Array1.blit t.words words;
  { words }

let ensure t word_index =
  let n = word_capacity t in
  if word_index >= n then begin
    let n' = max (word_index + 1) (2 * n) in
    let words = alloc n' in
    Bigarray.Array1.blit t.words (Bigarray.Array1.sub words 0 n);
    t.words <- words
  end

(* The unified negative-index contract: mutations ([add]/[remove]) on a
   negative index are programming errors and raise; the membership query
   is total ([mem t i = false] for i < 0).  The seed implementation
   raised from [add] but silently ignored negative [remove] — the
   asymmetry this replaces. *)
let neg op i =
  invalid_arg (Printf.sprintf "Bitset.%s: negative index %d" op i)

let add t i =
  if i < 0 then neg "add" i;
  let w = i lsr word_shift and b = i land bit_mask in
  ensure t w;
  Bigarray.Array1.unsafe_set t.words w
    (Int64.logor (Bigarray.Array1.unsafe_get t.words w) (Int64.shift_left 1L b))

let remove t i =
  if i < 0 then neg "remove" i;
  let w = i lsr word_shift and b = i land bit_mask in
  if w < word_capacity t then
    Bigarray.Array1.unsafe_set t.words w
      (Int64.logand
         (Bigarray.Array1.unsafe_get t.words w)
         (Int64.lognot (Int64.shift_left 1L b)))

let mem t i =
  i >= 0
  &&
  let w = i lsr word_shift and b = i land bit_mask in
  w < word_capacity t
  && Int64.logand (Bigarray.Array1.unsafe_get t.words w) (Int64.shift_left 1L b)
     <> 0L

let is_empty t =
  let n = word_capacity t in
  let rec go i = i >= n || (Bigarray.Array1.unsafe_get t.words i = 0L && go (i + 1)) in
  go 0

(* SWAR popcount over a 64-bit word: O(1), branch-free. *)
let popcount64 x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    add (logand x 0x3333333333333333L)
      (logand (shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let cardinal t =
  let n = word_capacity t in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + popcount64 (Bigarray.Array1.unsafe_get t.words i)
  done;
  !acc

let union_into ~into src =
  let changed = ref false in
  let n = word_capacity src in
  if n > 0 then ensure into (n - 1);
  for i = 0 to n - 1 do
    let s = Bigarray.Array1.unsafe_get src.words i in
    if s <> 0L then begin
      let d = Bigarray.Array1.unsafe_get into.words i in
      let w = Int64.logor d s in
      if w <> d then begin
        Bigarray.Array1.unsafe_set into.words i w;
        changed := true
      end
    end
  done;
  !changed

let inter_card a b =
  let n = min (word_capacity a) (word_capacity b) in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc :=
      !acc
      + popcount64
          (Int64.logand
             (Bigarray.Array1.unsafe_get a.words i)
             (Bigarray.Array1.unsafe_get b.words i))
  done;
  !acc

(* Count trailing zeros of a non-zero word: isolate the lowest set bit,
   popcount everything below it. *)
let ctz64 w = popcount64 (Int64.sub (Int64.logand w (Int64.neg w)) 1L)

let iter f t =
  let n = word_capacity t in
  for wi = 0 to n - 1 do
    let w = ref (Bigarray.Array1.unsafe_get t.words wi) in
    let base = wi * bits_per_word in
    while !w <> 0L do
      f (base + ctz64 !w);
      w := Int64.logand !w (Int64.sub !w 1L)
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let exists p t =
  let n = word_capacity t in
  let rec go wi =
    if wi >= n then false
    else
      let w = ref (Bigarray.Array1.unsafe_get t.words wi) in
      let base = wi * bits_per_word in
      let hit = ref false in
      while (not !hit) && !w <> 0L do
        if p (base + ctz64 !w) then hit := true
        else w := Int64.logand !w (Int64.sub !w 1L)
      done;
      !hit || go (wi + 1)
  in
  go 0

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let clear t = Bigarray.Array1.fill t.words 0L

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements t)))
