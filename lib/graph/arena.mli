(** Dense-slot arena: caller-chosen ids → recycled dense slots.

    Transaction ids grow monotonically forever; the resident population
    does not.  The arena maps each {e live} id to a dense slot in
    [0, capacity) and recycles slots through a LIFO free list when ids
    are released, so every slot-indexed side table (closure rows,
    topological ranks, verdict caches) is bounded by the high-water
    resident count instead of the historical id space.

    Slots are recycled aggressively: after [release t id], the freed
    slot may be handed to the very next [alloc].  Consumers must purge
    a slot's row/column state before the release completes — the
    property test in [test/test_graph_substrate.ml] pins that two live
    ids never share a slot. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is a slot-count hint. *)

val copy : t -> t
(** Independent deep copy; slot assignments are preserved exactly. *)

val alloc : t -> int -> int
(** [alloc t id] binds [id] to a dense slot (recycled if available) and
    returns it.  @raise Invalid_argument if [id] is already live. *)

val release : t -> int -> int option
(** [release t id] frees [id]'s slot onto the free list and returns it;
    [None] when [id] is not live. *)

val find : t -> int -> int option
(** Live slot of [id], if any. *)

val slot : t -> int -> int
(** @raise Not_found when [id] is not live. *)

val id_of : t -> int -> int
(** Id occupying a slot; [-1] when the slot is free or out of range. *)

val mem : t -> int -> bool
val live : t -> int

val capacity : t -> int
(** High-water slot count: every slot-indexed side table needs exactly
    this many cells.  Never decreases; bounded by the peak resident
    population, not by the ids ever issued. *)

val iter : (id:int -> slot:int -> unit) -> t -> unit
(** Live bindings, unspecified order (hashtable order). *)

val iter_slots : (slot:int -> id:int -> unit) -> t -> unit
(** Live bindings in increasing slot order. *)

val fold : (id:int -> slot:int -> 'a -> 'a) -> t -> 'a -> 'a

val bytes : t -> int
(** Deterministic resident-size estimate in bytes (capacity-derived, so
    replicas built by identical operation sequences agree). *)
