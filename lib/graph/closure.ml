type t = {
  g : Digraph.t; (* explicit arcs, needed for exact removal *)
  desc : (int, Bitset.t) Hashtbl.t;
  anc : (int, Bitset.t) Hashtbl.t;
}

let create () =
  { g = Digraph.create (); desc = Hashtbl.create 64; anc = Hashtbl.create 64 }

let graph t = t.g

let copy t =
  let dup tbl =
    let out = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter (fun k b -> Hashtbl.replace out k (Bitset.copy b)) tbl;
    out
  in
  { g = Digraph.copy t.g; desc = dup t.desc; anc = dup t.anc }

let row tbl v =
  match Hashtbl.find_opt tbl v with
  | Some b -> b
  | None ->
      let b = Bitset.create () in
      Hashtbl.replace tbl v b;
      b

let add_node t v =
  Digraph.add_node t.g v;
  ignore (row t.desc v);
  ignore (row t.anc v)

let mem_node t v = Digraph.mem_node t.g v

let nodes t = Digraph.nodes t.g

let reaches t ~src ~dst =
  match Hashtbl.find_opt t.desc src with
  | None -> false
  | Some b -> Bitset.mem b dst

let would_cycle t ~src ~dst = src = dst || reaches t ~src:dst ~dst:src

let descendants t v =
  match Hashtbl.find_opt t.desc v with
  | None -> Intset.empty
  | Some b -> Bitset.fold Intset.add b Intset.empty

let ancestors t v =
  match Hashtbl.find_opt t.anc v with
  | None -> Intset.empty
  | Some b -> Bitset.fold Intset.add b Intset.empty

let add_arc t ~src ~dst =
  add_node t src;
  add_node t dst;
  if not (Digraph.mem_arc t.g ~src ~dst) then begin
    Digraph.add_arc t.g ~src ~dst;
    if not (reaches t ~src ~dst) then begin
      (* Snapshot the two frontiers before mutating any row. *)
      let new_desc = Bitset.copy (row t.desc dst) in
      Bitset.add new_desc dst;
      let new_anc = Bitset.copy (row t.anc src) in
      Bitset.add new_anc src;
      let sources = Bitset.copy new_anc in
      let sinks = Bitset.copy new_desc in
      Bitset.iter
        (fun a -> ignore (Bitset.union_into ~into:(row t.desc a) new_desc))
        sources;
      Bitset.iter
        (fun d -> ignore (Bitset.union_into ~into:(row t.anc d) new_anc))
        sinks
    end
  end

let remove_node t mode v =
  if Digraph.mem_node t.g v then
    match mode with
    | `Bypass ->
        (* Keep paths through [v]: add explicit bypass arcs to the arc
           graph so a later exact rebuild stays faithful, then erase the
           node's row and column from the closure. *)
        let ps = Digraph.preds t.g v and ss = Digraph.succs t.g v in
        Digraph.remove_node t.g v;
        Intset.iter
          (fun p ->
            Intset.iter
              (fun s -> if p <> s then Digraph.add_arc t.g ~src:p ~dst:s)
              ss)
          ps;
        Hashtbl.remove t.desc v;
        Hashtbl.remove t.anc v;
        Hashtbl.iter (fun _ b -> Bitset.remove b v) t.desc;
        Hashtbl.iter (fun _ b -> Bitset.remove b v) t.anc
    | `Exact ->
        (* Only rows that mention [v] can change: reachability between
           two nodes is affected only if some witness path ran through
           [v], in which case v was a descendant of one and an ancestor
           of the other.  Recompute exactly those rows instead of the
           whole closure (the seed behaviour rebuilt everything). *)
        let affected tbl =
          Hashtbl.fold
            (fun u b acc -> if u <> v && Bitset.mem b v then u :: acc else acc)
            tbl []
        in
        let up = affected t.desc and down = affected t.anc in
        Digraph.remove_node t.g v;
        Hashtbl.remove t.desc v;
        Hashtbl.remove t.anc v;
        let refresh tbl dir u =
          let b = Bitset.create () in
          Intset.iter (fun w -> Bitset.add b w) (Traversal.reachable t.g dir u);
          Hashtbl.replace tbl u b
        in
        List.iter (refresh t.desc `Fwd) up;
        List.iter (refresh t.anc `Bwd) down

let check_against t g =
  Intset.equal (nodes t) (Digraph.nodes g)
  && Intset.for_all
       (fun v ->
         Intset.equal (descendants t v) (Traversal.reachable g `Fwd v)
         && Intset.equal (ancestors t v) (Traversal.reachable g `Bwd v))
       (Digraph.nodes g)
