type t = {
  g : Digraph.t; (* explicit arcs, needed for exact removal *)
  mutable desc : Row.t option array; (* slot -> descendant slots *)
  mutable anc : Row.t option array; (* slot -> ancestor slots *)
}
(* Rows are indexed by the arena slots of [g] and their bits are slots
   too, so both dimensions of the closure matrix are bounded by the
   high-water resident population.  Every removal path clears the
   departing node's row and column before its slot can be recycled. *)

let create () = { g = Digraph.create (); desc = [||]; anc = [||] }

let graph t = t.g

let copy t =
  {
    g = Digraph.copy t.g;
    desc = Array.map (Option.map Row.copy) t.desc;
    anc = Array.map (Option.map Row.copy) t.anc;
  }

let grow t n =
  let cur = Array.length t.desc in
  if n > cur then begin
    let n' = max n (max 16 (2 * cur)) in
    let desc = Array.make n' None and anc = Array.make n' None in
    Array.blit t.desc 0 desc 0 cur;
    Array.blit t.anc 0 anc 0 cur;
    t.desc <- desc;
    t.anc <- anc
  end

let row arr s =
  match arr.(s) with
  | Some r -> r
  | None ->
      let r = Row.create () in
      arr.(s) <- Some r;
      r

let add_node t v =
  Digraph.add_node t.g v;
  grow t (Digraph.slot_capacity t.g)

let mem_node t v = Digraph.mem_node t.g v

let nodes t = Digraph.nodes t.g

let reaches t ~src ~dst =
  match (Digraph.slot_of t.g src, Digraph.slot_of t.g dst) with
  | Some ss, Some ds -> (
      match t.desc.(ss) with Some r -> Row.mem r ds | None -> false)
  | _ -> false

let would_cycle t ~src ~dst = src = dst || reaches t ~src:dst ~dst:src

let iter_over arr t f v =
  match Digraph.slot_of t.g v with
  | None -> ()
  | Some s -> (
      match arr.(s) with
      | None -> ()
      | Some r -> Row.iter (fun sl -> f (Digraph.id_of_slot t.g sl)) r)

let iter_descendants f t v = iter_over t.desc t f v
let iter_ancestors f t v = iter_over t.anc t f v

let descendants t v =
  let acc = ref Intset.empty in
  iter_descendants (fun w -> acc := Intset.add w !acc) t v;
  !acc

let ancestors t v =
  let acc = ref Intset.empty in
  iter_ancestors (fun w -> acc := Intset.add w !acc) t v;
  !acc

let add_arc t ~src ~dst =
  add_node t src;
  add_node t dst;
  if not (Digraph.mem_arc t.g ~src ~dst) then begin
    Digraph.add_arc t.g ~src ~dst;
    let ss = Option.get (Digraph.slot_of t.g src)
    and ds = Option.get (Digraph.slot_of t.g dst) in
    let already =
      match t.desc.(ss) with Some r -> Row.mem r ds | None -> false
    in
    if not already then begin
      (* Snapshot the two frontiers before mutating any row. *)
      let new_desc = Row.copy (row t.desc ds) in
      Row.add new_desc ds;
      let new_anc = Row.copy (row t.anc ss) in
      Row.add new_anc ss;
      let sources = Row.copy new_anc in
      let sinks = Row.copy new_desc in
      Row.iter
        (fun a -> ignore (Row.union_into ~into:(row t.desc a) new_desc))
        sources;
      Row.iter
        (fun d -> ignore (Row.union_into ~into:(row t.anc d) new_anc))
        sinks
    end
  end

(* Clear [vs] (and this row, if it is the departing node's) everywhere
   it appears; a recycled slot must start with an all-zero column. *)
let erase_column arr vs =
  Array.iter (function Some r -> Row.remove r vs | None -> ()) arr

let clear_row arr s =
  match arr.(s) with Some r -> Row.clear r | None -> ()

let remove_node t mode v =
  match Digraph.slot_of t.g v with
  | None -> ()
  | Some vs -> (
      match mode with
      | `Bypass ->
          (* Keep paths through [v]: add explicit bypass arcs to the arc
             graph so a later exact rebuild stays faithful, then erase
             the node's row and column from the closure. *)
          let ps = ref [] and ss = ref [] in
          Digraph.iter_pred_slots
            (fun p -> ps := Digraph.id_of_slot t.g p :: !ps)
            t.g vs;
          Digraph.iter_succ_slots
            (fun s -> ss := Digraph.id_of_slot t.g s :: !ss)
            t.g vs;
          Digraph.remove_node t.g v;
          List.iter
            (fun p ->
              List.iter
                (fun s -> if p <> s then Digraph.add_arc t.g ~src:p ~dst:s)
                !ss)
            !ps;
          clear_row t.desc vs;
          clear_row t.anc vs;
          erase_column t.desc vs;
          erase_column t.anc vs
      | `Exact ->
          (* Only rows that mention [v] can change: reachability between
             two nodes is affected only if some witness path ran through
             [v], in which case v was a descendant of one and an ancestor
             of the other.  Recompute exactly those rows instead of the
             whole closure (the seed behaviour rebuilt everything). *)
          let affected arr =
            let out = ref [] in
            Array.iteri
              (fun u r ->
                match r with
                | Some r when u <> vs && Row.mem r vs ->
                    out := Digraph.id_of_slot t.g u :: !out
                | _ -> ())
              arr;
            !out
          in
          let up = affected t.desc and down = affected t.anc in
          Digraph.remove_node t.g v;
          clear_row t.desc vs;
          clear_row t.anc vs;
          let refresh arr dir u =
            match Digraph.slot_of t.g u with
            | None -> ()
            | Some us ->
                let r = row arr us in
                Row.clear r;
                Intset.iter
                  (fun w ->
                    match Digraph.slot_of t.g w with
                    | Some ws -> Row.add r ws
                    | None -> ())
                  (Traversal.reachable t.g dir u)
          in
          List.iter (refresh t.desc `Fwd) up;
          List.iter (refresh t.anc `Bwd) down)

let bytes t =
  let rows arr =
    Array.fold_left
      (fun acc r -> match r with Some r -> acc + Row.bytes r | None -> acc + 8)
      0 arr
  in
  Digraph.bytes t.g + rows t.desc + rows t.anc + 24

let check_against t g =
  Intset.equal (nodes t) (Digraph.nodes g)
  && Intset.for_all
       (fun v ->
         Intset.equal (descendants t v) (Traversal.reachable g `Fwd v)
         && Intset.equal (ancestors t v) (Traversal.reachable g `Bwd v))
       (Digraph.nodes g)
