(** Dynamic transitive closure.

    Maintains, for every node, the bitset of its descendants and
    ancestors under arc insertions.  This realises the paper's remark
    (§3) that when the scheduler keeps the transitive closure, the safe
    removal of a transaction amounts to deleting its node from the
    closure — the bypass arcs of the reduction [D(G, T)] are implicit.

    Arc insertion costs [O(affected pairs)] bitset words.  Node removal
    comes in two flavours:
    - [`Bypass] — the paper's reduction: paths through the node are kept,
      so the closure of the reduced graph is obtained by just erasing the
      node's row and column;
    - [`Exact] — plain removal (used when a transaction {e aborts}): paths
      through the node vanish, which forces a recomputation of the rows
      that mentioned the node (ancestors' descendant rows, descendants'
      ancestor rows — unrelated rows are untouched). *)

type t

val create : unit -> t

val graph : t -> Digraph.t
(** The closure's own arc graph (explicit arcs plus bypass arcs from
    [`Bypass] removals).  Callers must not mutate it directly; it exists
    so oracles can extract witness paths. *)

val copy : t -> t
(** Independent deep copy. *)

val add_node : t -> int -> unit

val add_arc : t -> src:int -> dst:int -> unit
(** Inserts the arc and updates the closure.  Endpoints are created if
    missing.  Cycles are tolerated (the closure stays sound). *)

val remove_node : t -> [ `Bypass | `Exact ] -> int -> unit

val reaches : t -> src:int -> dst:int -> bool
(** [reaches t ~src ~dst] is [true] iff a non-empty path [src ⇝ dst]
    exists. *)

val would_cycle : t -> src:int -> dst:int -> bool
(** [true] iff inserting [src -> dst] would close a cycle
    ([src = dst] or [dst ⇝ src]). *)

val iter_descendants : (int -> unit) -> t -> int -> unit
(** [iter_descendants f t v] applies [f] to every descendant of [v]
    without materialising a set — the audit/invariant hot path.  Order
    is increasing slot order (an implementation detail; callers must not
    rely on it).  No-op when [v] is absent. *)

val iter_ancestors : (int -> unit) -> t -> int -> unit

val descendants : t -> int -> Intset.t
(** Thin wrapper over {!iter_descendants} for callers that want a set. *)

val ancestors : t -> int -> Intset.t

val nodes : t -> Intset.t

val mem_node : t -> int -> bool

val bytes : t -> int
(** Deterministic resident-size estimate in bytes (graph + both row
    matrices). *)

val check_against : t -> Digraph.t -> bool
(** For tests: the closure agrees with reachability recomputed from
    scratch on [g]. *)
