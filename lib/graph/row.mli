(** Hybrid closure rows: small sorted array → dense bitset.

    Most closure rows stay tiny; a few grow into large reachability
    cones.  A row starts as a sorted [int array] and upgrades to a
    {!Dct_graph.Bitset} the first time it exceeds the small-regime
    threshold; it never downgrades.  The negative-index contract
    mirrors {!Dct_graph.Bitset}: {!mem} is total ([false] for [i < 0]),
    {!add} and {!remove} raise [Invalid_argument]. *)

type t

val create : unit -> t
val copy : t -> t

val add : t -> int -> unit
(** @raise Invalid_argument if the index is negative. *)

val remove : t -> int -> unit
(** @raise Invalid_argument if the index is negative. *)

val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Increasing order in both representations. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int -> bool) -> t -> bool

val union_into : into:t -> t -> bool
(** [true] iff [into] changed; upgrades [into] to the dense
    representation when the union leaves the small regime. *)

val inter_card : t -> t -> int

val elements : t -> int list
val clear : t -> unit

val is_dense : t -> bool
(** Exposed for the differential tests and the bench's occupancy
    report. *)

val small_max : int
(** Elements a row holds before upgrading to the dense leg. *)

val bytes : t -> int
(** Deterministic resident-size estimate in bytes. *)

val pp : Format.formatter -> t -> unit
