module H = History
module V = Violation
module T = Dct_telemetry.Tracer

type engine = Atom of Atomicity.t | Ser of Serializability.t

type t = {
  level : V.level;
  mutable engine : engine;
  tracer : T.t;
  checked : bool;
  prefix_cap : int;
  max_witness : int;
  mutable ops : int;
  mutable commits : int;
  mutable aborts : int;
  seen : (int, unit) Hashtbl.t;  (** distinct transactions *)
  mutable max_live : int;
  mutable max_resident : int;
  mutable total : int;
  mutable kept : V.t list;  (** newest first, capped *)
  mutable nkept : int;
  mutable prefix : H.lop list;  (** newest first, checked mode only *)
  mutable prefix_len : int;
  mutable prefix_open : bool;
  oracle : Dct_graph.Cycle_oracle.backend;
}

type report = {
  level : V.level;
  ops : int;
  txns : int;
  commits : int;
  aborts : int;
  live_at_end : int;
  max_live : int;
  max_resident : int;
  total : int;
  violations : V.t list;
  truncated : bool;
  checked_ops : int;
  divergence : string option;
}

let create ?(oracle = Dct_graph.Cycle_oracle.Topo) ?(tracer = T.disabled)
    ?(checked = false) ?(prefix_cap = 4096) ?(max_witness = 1000) ~level () =
  let t =
    {
      level;
      engine = Atom (Atomicity.create ~on_violation:ignore ());
      tracer;
      checked;
      prefix_cap;
      max_witness;
      ops = 0;
      commits = 0;
      aborts = 0;
      seen = Hashtbl.create 64;
      max_live = 0;
      max_resident = 0;
      total = 0;
      kept = [];
      nkept = 0;
      prefix = [];
      prefix_len = 0;
      prefix_open = checked && level = V.Serializable;
      oracle;
    }
  in
  let on_violation v =
    t.total <- t.total + 1;
    T.incr t.tracer "check.violations";
    T.incr t.tracer ("check.violation." ^ V.kind_name v.V.kind);
    if t.nkept < t.max_witness then begin
      t.kept <- v :: t.kept;
      t.nkept <- t.nkept + 1
    end
  in
  (t.engine <-
     (match level with
     | V.Atomicity -> Atom (Atomicity.create ~on_violation ())
     | _ ->
         Ser
           (Serializability.create ~oracle ?probe:(T.probe tracer) ~level
              ~on_violation ())));
  t

let live (t : t) =
  match t.engine with
  | Atom a -> Atomicity.live a
  | Ser s -> Serializability.live s

let resident (t : t) =
  match t.engine with
  | Atom a -> Atomicity.live a
  | Ser s -> Serializability.resident s

let feed (t : t) lop =
  t.ops <- t.ops + 1;
  (match lop.H.op with
  | H.Begin tx | H.Read (tx, _) | H.Write (tx, _) ->
      if not (Hashtbl.mem t.seen tx) then Hashtbl.replace t.seen tx ()
  | H.Commit tx ->
      if not (Hashtbl.mem t.seen tx) then Hashtbl.replace t.seen tx ();
      t.commits <- t.commits + 1
  | H.Abort tx ->
      if not (Hashtbl.mem t.seen tx) then Hashtbl.replace t.seen tx ();
      t.aborts <- t.aborts + 1);
  if t.prefix_open then begin
    (* An abort ends the comparable prefix: past it the streaming
       pending-discard semantics and the exact committed-projection
       check answer different questions. *)
    match lop.H.op with
    | H.Abort _ -> t.prefix_open <- false
    | _ ->
        t.prefix <- lop :: t.prefix;
        t.prefix_len <- t.prefix_len + 1;
        if t.prefix_len >= t.prefix_cap then t.prefix_open <- false
  end;
  (match t.engine with
  | Atom a -> Atomicity.feed a lop
  | Ser s -> Serializability.feed s lop);
  let l = live t in
  if l > t.max_live then t.max_live <- l;
  let r = resident t in
  if r > t.max_resident then t.max_resident <- r

(* --- the exact reference ------------------------------------------- *)

let exact_ser_verdict ops =
  let aborted = Hashtbl.create 16 in
  List.iter
    (fun { H.op; _ } ->
      match op with H.Abort tx -> Hashtbl.replace aborted tx () | _ -> ())
    ops;
  let cl = Dct_graph.Closure.create () in
  (* entity -> accesses in stream order (newest first), committed
     projection only *)
  let hist : (int, (int * bool) list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun { H.op; _ } ->
      let note tx x ~write =
        if not (Hashtbl.mem aborted tx) then
          let l =
            match Hashtbl.find_opt hist x with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace hist x l;
                l
          in
          l := (tx, write) :: !l
      in
      match op with
      | H.Read (tx, x) -> note tx x ~write:false
      | H.Write (tx, x) -> note tx x ~write:true
      | H.Begin _ | H.Commit _ | H.Abort _ -> ())
    ops;
  Hashtbl.iter
    (fun _ l ->
      (* oldest first; all conflicting pairs, earlier -> later *)
      let accesses = Array.of_list (List.rev !l) in
      let n = Array.length accesses in
      for i = 0 to n - 1 do
        let ti, wi = accesses.(i) in
        for j = i + 1 to n - 1 do
          let tj, wj = accesses.(j) in
          if ti <> tj && (wi || wj) then
            Dct_graph.Closure.add_arc cl ~src:ti ~dst:tj
        done
      done)
    hist;
  Dct_graph.Intset.exists
    (fun n -> Dct_graph.Closure.reaches cl ~src:n ~dst:n)
    (Dct_graph.Closure.nodes cl)

let streaming_ser_verdict ?(oracle = Dct_graph.Cycle_oracle.Closure) ops =
  let n = ref 0 in
  let s =
    Serializability.create ~oracle ~level:V.Serializable
      ~on_violation:(fun _ -> incr n)
      ()
  in
  List.iter (Serializability.feed s) ops;
  Serializability.finish s;
  !n > 0

(* --- finalize ------------------------------------------------------- *)

let finalize (t : t) =
  (match t.engine with
  | Atom _ -> ()
  | Ser s -> Serializability.finish s);
  let checked_ops, divergence =
    if t.checked && t.level = V.Serializable && t.prefix_len > 0 then begin
      let prefix = List.rev t.prefix in
      t.prefix <- [];
      let streaming = streaming_ser_verdict ~oracle:t.oracle prefix in
      let exact = exact_ser_verdict prefix in
      T.incr t.tracer "check.checked_ops" ~by:t.prefix_len;
      if streaming <> exact then
        ( t.prefix_len,
          Some
            (Printf.sprintf
               "checked: streaming verdict %B but exact closure verdict %B \
                on the first %d ops"
               streaming exact t.prefix_len) )
      else (t.prefix_len, None)
    end
    else (0, None)
  in
  T.incr t.tracer "check.ops" ~by:t.ops;
  T.gauge t.tracer "check.max_live" t.max_live;
  T.gauge t.tracer "check.max_resident" t.max_resident;
  T.flush t.tracer;
  {
    level = t.level;
    ops = t.ops;
    txns = Hashtbl.length t.seen;
    commits = t.commits;
    aborts = t.aborts;
    live_at_end = live t;
    max_live = t.max_live;
    max_resident = t.max_resident;
    total = t.total;
    violations = List.sort V.compare_at (List.rev t.kept);
    truncated = t.total > t.nkept;
    checked_ops;
    divergence;
  }

let passed r = r.total = 0 && r.divergence = None

(* --- front-ends ----------------------------------------------------- *)

let check_ops ?oracle ?tracer ?checked ~level ops =
  let t = create ?oracle ?tracer ?checked ~level () in
  List.iter (feed t) ops;
  finalize t

let check_schedule ?oracle ?tracer ?checked ~level schedule =
  check_ops ?oracle ?tracer ?checked ~level (H.of_schedule schedule)

let check_file ?oracle ?tracer ?checked ~level path =
  let t = create ?oracle ?tracer ?checked ~level () in
  match H.iter_file path ~f:(feed t) with
  | Error e -> Error e
  | Ok stats -> Ok (finalize t, stats)

(* --- rendering ------------------------------------------------------ *)

let summary_line r =
  Printf.sprintf
    "%s: %d op%s, %d txn%s (%d commit%s, %d abort%s, %d live), %d violation%s"
    (V.level_name r.level) r.ops
    (if r.ops = 1 then "" else "s")
    r.txns
    (if r.txns = 1 then "" else "s")
    r.commits
    (if r.commits = 1 then "" else "s")
    r.aborts
    (if r.aborts = 1 then "" else "s")
    r.live_at_end r.total
    (if r.total = 1 then "" else "s")

let render ?txn_name ?entity_name r =
  let b = Buffer.create 256 in
  Buffer.add_string b (summary_line r);
  Buffer.add_char b '\n';
  if r.violations <> [] then begin
    Buffer.add_string b (V.render ?txn_name ?entity_name r.violations);
    if r.truncated then
      Buffer.add_string b
        (Printf.sprintf "... and %d more (witness cap reached)\n"
           (r.total - List.length r.violations))
  end;
  (match r.divergence with
  | Some d -> Buffer.add_string b ("DIVERGENCE " ^ d ^ "\n")
  | None ->
      if r.checked_ops > 0 then
        Buffer.add_string b
          (Printf.sprintf
             "checked: exact closure agrees on the first %d ops\n"
             r.checked_ops));
  Buffer.contents b

let to_json ?stats r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"level\":\"%s\",\"ops\":%d,\"txns\":%d,\"commits\":%d,\"aborts\":%d,\
        \"live_at_end\":%d,\"max_live\":%d,\"max_resident\":%d,\
        \"violations\":%d,\"truncated\":%b,\"checked_ops\":%d"
       (V.level_name r.level) r.ops r.txns r.commits r.aborts r.live_at_end
       r.max_live r.max_resident r.total r.truncated r.checked_ops);
  (match r.divergence with
  | None -> ()
  | Some d -> Buffer.add_string b (Printf.sprintf ",\"divergence\":%S" d));
  (match stats with
  | None -> ()
  | Some (s : H.file_stats) ->
      Buffer.add_string b
        (Printf.sprintf ",\"format\":\"%s\",\"lines\":%d,\"bad_lines\":%d"
           (H.format_name s.H.fmt) s.H.lines s.H.bad_lines);
      match s.H.adapter with
      | None -> ()
      | Some a ->
          Buffer.add_string b
            (Printf.sprintf
               ",\"events\":%d,\"steps\":%d,\"foreign\":%d,\"deferred\":%d,\"undecided\":%d"
               a.H.events a.H.steps a.H.foreign a.H.deferred a.H.undecided));
  Buffer.add_string b ",\"witnesses\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (V.to_json v))
    r.violations;
  Buffer.add_string b "]}";
  Buffer.contents b
