type level = Atomicity | Read_committed | Read_atomic | Causal | Serializable

let all_levels = [ Atomicity; Read_committed; Read_atomic; Causal; Serializable ]

let level_name = function
  | Atomicity -> "atomicity"
  | Read_committed -> "rc"
  | Read_atomic -> "ra"
  | Causal -> "causal"
  | Serializable -> "ser"

let level_of_string s =
  match String.lowercase_ascii s with
  | "atomicity" | "atomic" -> Ok Atomicity
  | "rc" | "read-committed" -> Ok Read_committed
  | "ra" | "read-atomic" -> Ok Read_atomic
  | "causal" | "cc" -> Ok Causal
  | "ser" | "serializable" -> Ok Serializable
  | _ ->
      Error
        (Printf.sprintf
           "unknown level %S (expected atomicity | rc | ra | causal | ser)" s)

type kind =
  | Dirty_read
  | Dirty_write
  | Lost_update
  | Fractured_read
  | Unstable_read
  | Causal_cycle
  | Conflict_cycle

let kind_name = function
  | Dirty_read -> "dirty-read"
  | Dirty_write -> "dirty-write"
  | Lost_update -> "lost-update"
  | Fractured_read -> "fractured-read"
  | Unstable_read -> "unstable-read"
  | Causal_cycle -> "causal-cycle"
  | Conflict_cycle -> "conflict-cycle"

let kind_level = function
  | Dirty_read | Dirty_write -> Read_committed
  | Lost_update -> Atomicity
  | Fractured_read -> Read_atomic
  | Unstable_read | Causal_cycle -> Causal
  | Conflict_cycle -> Serializable

type op_ref = { at : int; line : int; what : string }

type t = {
  level : level;
  kind : kind;
  txns : int list;
  entity : int option;
  ops : op_ref list;
  message : string;
}

let compare_at a b =
  let first v = match v.ops with [] -> max_int | o :: _ -> o.at in
  match compare (first a) (first b) with
  | 0 -> compare (kind_name a.kind) (kind_name b.kind)
  | c -> c

let default_txn id = Printf.sprintf "T%d" id
let default_entity id = Printf.sprintf "e%d" id

let pp ?(txn_name = default_txn) ?(entity_name = default_entity) ppf v =
  let anchor = match List.rev v.ops with [] -> 0 | o :: _ -> o.at in
  Format.fprintf ppf "op %d: %s: %s: %s" anchor
    (level_name v.level) (kind_name v.kind) v.message;
  (match v.entity with
  | Some x -> Format.fprintf ppf " [entity %s]" (entity_name x)
  | None -> ());
  (match v.txns with
  | [] -> ()
  | ts ->
      Format.fprintf ppf " [txns %s]"
        (String.concat ", " (List.map txn_name ts)));
  match v.ops with
  | [] -> ()
  | ops ->
      Format.fprintf ppf "@,  witness: %s"
        (String.concat "; "
           (List.map
              (fun o ->
                if o.line > 0 then Printf.sprintf "#%d (line %d) %s" o.at o.line o.what
                else Printf.sprintf "#%d %s" o.at o.what)
              ops))

let render ?txn_name ?entity_name vs =
  String.concat ""
    (List.map
       (fun v -> Format.asprintf "@[<v>%a@]@." (pp ?txn_name ?entity_name) v)
       vs)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json v =
  let ints xs = "[" ^ String.concat "," (List.map string_of_int xs) ^ "]" in
  let ops =
    "["
    ^ String.concat ","
        (List.map
           (fun o ->
             Printf.sprintf "{\"at\":%d,\"line\":%d,\"what\":\"%s\"}" o.at
               o.line (json_escape o.what))
           v.ops)
    ^ "]"
  in
  Printf.sprintf
    "{\"level\":\"%s\",\"kind\":\"%s\",\"txns\":%s,%s\"ops\":%s,\"message\":\"%s\"}"
    (level_name v.level) (kind_name v.kind) (ints v.txns)
    (match v.entity with
    | Some x -> Printf.sprintf "\"entity\":%d," x
    | None -> "")
    ops
    (json_escape v.message)
