(** The typed verdict vocabulary of the history checker.

    Every analysis reports findings in this one shape so the CLI, the
    differential tests and the JSON renderer share a single pipeline
    (mirroring {!Dct_analysis.Lint.finding} for schedules).  A finding
    names the consistency {!level} whose axiom is broken, the anomaly
    {!kind}, the offending transactions, the entity (when one is
    involved) and the witness operations — 1-based indices into the
    normalized operation stream, with source lines when the history
    came from a file. *)

(** The consistency levels of the checker, weakest to strongest in the
    Biswas–Enea hierarchy ([Read_committed] ⊂ [Read_atomic] ⊂ [Causal]
    ⊂ [Serializable]); [Atomicity] is the Mathur–Viswanathan-style
    vector-clock analysis (dirty reads/writes plus lost updates) and
    sits beside the hierarchy rather than inside it. *)
type level = Atomicity | Read_committed | Read_atomic | Causal | Serializable

val all_levels : level list

val level_name : level -> string
(** ["atomicity" | "rc" | "ra" | "causal" | "ser"] — the [--level]
    spellings. *)

val level_of_string : string -> (level, string) result
(** Inverse of {!level_name}; case-insensitive, accepts the long forms
    [read-committed], [read-atomic], [serializable]. *)

(** The anomaly detected.  Each kind belongs to exactly one level. *)
type kind =
  | Dirty_read      (** read of an entity with an uncommitted write *)
  | Dirty_write     (** overwrite of an entity with an uncommitted write *)
  | Lost_update     (** commit of a write over a version read before an
                        intervening committed write *)
  | Fractured_read  (** two reads observing a committed transaction's
                        atomic write set partially *)
  | Unstable_read   (** one transaction observing two different versions
                        of the same entity *)
  | Causal_cycle    (** a cycle in (session ∪ reads-from) order *)
  | Conflict_cycle  (** a cycle in the conflict graph of the committed
                        projection — non-serializability *)

val kind_name : kind -> string
val kind_level : kind -> level

type op_ref = {
  at : int;  (** 1-based index into the operation stream *)
  line : int;  (** source line, 0 when unknown *)
  what : string;  (** e.g. ["w T3 x"] *)
}

type t = {
  level : level;
  kind : kind;
  txns : int list;  (** offending transactions, witness order *)
  entity : int option;
  ops : op_ref list;  (** witness operations, oldest first *)
  message : string;
}

val compare_at : t -> t -> int
(** Order by first witness operation (report order). *)

val pp :
  ?txn_name:(int -> string) ->
  ?entity_name:(int -> string) ->
  Format.formatter ->
  t ->
  unit
(** [op N: kind: message (witness: ...)] — one line plus witness ops. *)

val render :
  ?txn_name:(int -> string) -> ?entity_name:(int -> string) -> t list -> string

val to_json : t -> string
(** One flat JSON object, machine-stable field order. *)
