(** History front-end: normalize native schedules and telemetry JSONL
    into one stream of read/write/begin/commit/abort operations.

    The checker analyses never see steps or events — only {!lop}s, so a
    history produced by [dct simulate --trace], one written by a foreign
    system in the telemetry JSONL dialect, and a hand-written [.sched]
    file all flow through the same code.

    {2 Commit derivation}

    The native formats carry no explicit commit markers; completion is
    derived per transaction model exactly as the schedulers do:

    - basic model: the final atomic [Write] commits (its writes are
      emitted, then [Commit]);
    - multi-write model: [Finish] commits (the paper defers the real
      commit until dependencies resolve; the checker treats completion
      as the commit point, which is the conservative reading);
    - predeclared model: the transaction commits once every declared
      access has been performed at declared strength (mirroring the
      linter and the predeclared scheduler).

    {2 Telemetry adaptation}

    A telemetry stream pairs [Step_submitted] with [Decision] events.
    The adapter buffers submitted steps until their decision arrives
    (memory linear in in-flight steps): [accepted] decisions release
    the step's operations, [rejected] aborts the transaction,
    [ignored] drops the step, [delayed] drops it too (see
    {!adapter_stats.deferred}).  Everything else — deletion events,
    oracle samples, checkpoints, unknown outcomes, and (at the file
    layer) lines that do not parse as events at all — is tolerated and
    counted, never fatal: foreign traces may interleave event kinds
    this repo has never seen. *)

type op =
  | Begin of int
  | Read of int * int  (** [Read (t, x)] *)
  | Write of int * int
  | Commit of int
  | Abort of int

type lop = { index : int; line : int; op : op }
(** [index] is the 1-based position in the normalized stream; [line]
    the 1-based source line (0 when synthesized). *)

val txn : op -> int
val op_to_string : op -> string
val pp_op : Format.formatter -> op -> unit

val of_schedule : Dct_txn.Schedule.t -> lop list
(** Take a schedule at face value: every step applies, nothing aborts.
    A step of a never-begun transaction gets a synthesized [Begin]. *)

(** {1 Streaming telemetry adapter} *)

type adapter

type adapter_stats = {
  events : int;  (** events fed *)
  steps : int;  (** [Step_submitted] events seen *)
  foreign : int;  (** skipped: other event kinds, unknown step kinds or
                      outcomes, decisions without a matching step *)
  deferred : int;
      (** steps whose decision was [delayed]: the scheduler executes
          them at a later retry the trace does not record, so their
          true conflict-order position is unknown.  They are dropped —
          dropping operations can mask an anomaly but never fabricate
          one, while releasing them in submission order would invent
          conflicts that never happened. *)
  undecided : int;  (** steps still awaiting a decision (final only) *)
}

val adapter : unit -> adapter

val feed_event : adapter -> ?line:int -> Dct_telemetry.Event.t -> lop list
(** Operations released by this event, stream order.  Indices are
    assigned by the adapter. *)

val adapter_stats : adapter -> adapter_stats
(** [undecided] is only meaningful after the last event. *)

val of_events : Dct_telemetry.Event.t list -> lop list * adapter_stats

(** {1 Files} *)

type format = Sched | Jsonl

val format_name : format -> string

val sniff : string -> format
(** Guess from content: a first non-blank line starting with [{] is
    JSONL, anything else the schedule text format. *)

type file_stats = {
  fmt : format;
  lines : int;
  bad_lines : int;  (** JSONL lines that parse as no known event *)
  adapter : adapter_stats option;  (** [Some] for [Jsonl] *)
  env : Dct_txn.Parse.env option;  (** [Some] for [Sched]: the symbol
                                       table, for name rendering *)
}

val iter_file : string -> f:(lop -> unit) -> (file_stats, string) result
(** Stream a history file through [f] one operation at a time — the
    file is never materialized, so a 10^6-event trace costs constant
    memory here.  [Error] for I/O problems and for [.sched] parse
    errors (lint the file instead); JSONL lines that fail to parse are
    counted in [bad_lines] and skipped (the lenient foreign-trace
    contract). *)
