module Step = Dct_txn.Step
module Access = Dct_txn.Access
module E = Dct_telemetry.Event

type op =
  | Begin of int
  | Read of int * int
  | Write of int * int
  | Commit of int
  | Abort of int

type lop = { index : int; line : int; op : op }

let txn = function
  | Begin t | Read (t, _) | Write (t, _) | Commit t | Abort t -> t

let op_to_string = function
  | Begin t -> Printf.sprintf "b T%d" t
  | Read (t, x) -> Printf.sprintf "r T%d e%d" t x
  | Write (t, x) -> Printf.sprintf "w T%d e%d" t x
  | Commit t -> Printf.sprintf "c T%d" t
  | Abort t -> Printf.sprintf "a T%d" t

let pp_op ppf o = Format.pp_print_string ppf (op_to_string o)

(* Completion tracking shared by both front-ends: a predeclared
   transaction commits when every declared access has been performed at
   declared strength (the linter's rule). *)
type decl = {
  mutable want_reads : (int, unit) Hashtbl.t;  (** still-missing reads *)
  mutable want_writes : (int, unit) Hashtbl.t;
}

let decl_of_sets ~reads ~writes =
  let want_reads = Hashtbl.create (List.length reads) in
  let want_writes = Hashtbl.create (List.length writes) in
  List.iter (fun x -> Hashtbl.replace want_reads x ()) reads;
  List.iter
    (fun x ->
      Hashtbl.replace want_writes x ();
      Hashtbl.remove want_reads x)
    writes;
  { want_reads; want_writes }

(* A write fulfils a read obligation on the same entity (write is at
   least as strong as read). *)
let decl_note d x ~write =
  if write then begin
    Hashtbl.remove d.want_writes x;
    Hashtbl.remove d.want_reads x
  end
  else Hashtbl.remove d.want_reads x

let decl_fulfilled d =
  Hashtbl.length d.want_reads = 0 && Hashtbl.length d.want_writes = 0

(* --- shared emitter: implicit begins, predeclared completion ------ *)

type emitter = {
  begun : (int, unit) Hashtbl.t;  (** begun, not yet ended *)
  decls : (int, decl) Hashtbl.t;
  mutable next : int;
  buf : lop list ref;
}

let emitter () =
  { begun = Hashtbl.create 64; decls = Hashtbl.create 16; next = 0; buf = ref [] }

let push em ~line op =
  em.next <- em.next + 1;
  em.buf := { index = em.next; line; op } :: !(em.buf)

let take em =
  let ops = List.rev !(em.buf) in
  em.buf := [];
  ops

let ensure_begun em ~line t =
  if not (Hashtbl.mem em.begun t) then begin
    Hashtbl.replace em.begun t ();
    push em ~line (Begin t)
  end

let emit_begin em ~line ?decl t =
  ensure_begun em ~line t;
  match decl with None -> () | Some d -> Hashtbl.replace em.decls t d

let end_txn em t =
  Hashtbl.remove em.begun t;
  Hashtbl.remove em.decls t

let emit_access em ~line t x ~write =
  ensure_begun em ~line t;
  push em ~line (if write then Write (t, x) else Read (t, x));
  match Hashtbl.find_opt em.decls t with
  | None -> ()
  | Some d ->
      decl_note d x ~write;
      if decl_fulfilled d then begin
        push em ~line (Commit t);
        end_txn em t
      end

let emit_commit em ~line t =
  ensure_begun em ~line t;
  push em ~line (Commit t);
  end_txn em t

let emit_abort em ~line t =
  if Hashtbl.mem em.begun t then begin
    push em ~line (Abort t);
    end_txn em t
  end

(* --- native schedules --------------------------------------------- *)

let access_sets a =
  Access.fold
    (fun ~entity ~mode (rs, ws) ->
      match mode with
      | Access.Read -> (entity :: rs, ws)
      | Access.Write -> (rs, entity :: ws))
    a ([], [])

let feed_step em ~line = function
  | Step.Begin t -> emit_begin em ~line t
  | Step.Begin_declared (t, a) ->
      let reads, writes = access_sets a in
      emit_begin em ~line ~decl:(decl_of_sets ~reads ~writes) t
  | Step.Read (t, x) -> emit_access em ~line t x ~write:false
  | Step.Write (t, xs) ->
      ensure_begun em ~line t;
      List.iter (fun x -> push em ~line (Write (t, x))) xs;
      emit_commit em ~line t
  | Step.Write_one (t, x) -> emit_access em ~line t x ~write:true
  | Step.Finish t -> emit_commit em ~line t

let of_schedule schedule =
  let em = emitter () in
  List.iteri (fun i s -> feed_step em ~line:(i + 1) s) schedule;
  take em

(* --- telemetry streams -------------------------------------------- *)

type adapter = {
  em : emitter;
  pending : (int, E.step * int) Hashtbl.t;  (** step index -> step, line *)
  mutable events : int;
  mutable steps : int;
  mutable foreign : int;
  mutable deferred : int;
}

type adapter_stats = {
  events : int;
  steps : int;
  foreign : int;
  deferred : int;
  undecided : int;
}

let adapter () =
  {
    em = emitter ();
    pending = Hashtbl.create 64;
    events = 0;
    steps = 0;
    foreign = 0;
    deferred = 0;
  }

let release (a : adapter) ~line (s : E.step) =
  let em = a.em in
  match s.E.kind with
  | "begin" -> emit_begin em ~line s.E.txn
  | "begin_declared" ->
      emit_begin em ~line
        ~decl:(decl_of_sets ~reads:s.E.reads ~writes:s.E.writes)
        s.E.txn
  | "read" ->
      List.iter (fun x -> emit_access em ~line s.E.txn x ~write:false) s.E.reads
  | "write" ->
      ensure_begun em ~line s.E.txn;
      List.iter (fun x -> push em ~line (Write (s.E.txn, x))) s.E.writes;
      emit_commit em ~line s.E.txn
  | "write_one" ->
      List.iter (fun x -> emit_access em ~line s.E.txn x ~write:true) s.E.writes
  | "finish" -> emit_commit em ~line s.E.txn
  | _ -> a.foreign <- a.foreign + 1

let feed_event (a : adapter) ?(line = 0) ev =
  a.events <- a.events + 1;
  (match ev with
  | E.Step_submitted { index; step } ->
      a.steps <- a.steps + 1;
      Hashtbl.replace a.pending index (step, line)
  | E.Decision { index; txn; outcome; _ } -> (
      match Hashtbl.find_opt a.pending index with
      | None -> a.foreign <- a.foreign + 1
      | Some (step, step_line) -> (
          Hashtbl.remove a.pending index;
          match outcome with
          | "accepted" -> release a ~line:step_line step
          | "delayed" ->
              (* The scheduler queued the step and will execute it at
                 some later retry the trace does not record, so its
                 true position in the conflict order is unknown.
                 Releasing it here would fabricate conflicts in
                 submission order; dropping it can only mask an
                 anomaly, never invent one. *)
              a.deferred <- a.deferred + 1
          | "rejected" -> emit_abort a.em ~line txn
          | "ignored" -> ()
          | _ -> a.foreign <- a.foreign + 1))
  | E.Deletion_attempted _ | E.Deletion_ok _ | E.Deletion_blocked _
  | E.Oracle_query _ | E.Cycle_rejected _ | E.Restart _ | E.Checkpoint_stats _
    ->
      ());
  take a.em

let adapter_stats (a : adapter) =
  {
    events = a.events;
    steps = a.steps;
    foreign = a.foreign;
    deferred = a.deferred;
    undecided = Hashtbl.length a.pending;
  }

let of_events events =
  let a = adapter () in
  let ops =
    List.concat_map (fun ev -> feed_event a ev) events
  in
  (ops, adapter_stats a)

(* --- files --------------------------------------------------------- *)

type format = Sched | Jsonl

let format_name = function Sched -> "sched" | Jsonl -> "jsonl"

let sniff doc =
  let n = String.length doc in
  let rec first i =
    if i >= n then Sched
    else
      match doc.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first (i + 1)
      | '{' -> Jsonl
      | _ -> Sched
  in
  first 0

type file_stats = {
  fmt : format;
  lines : int;
  bad_lines : int;
  adapter : adapter_stats option;
  env : Dct_txn.Parse.env option;
}

let iter_file path ~f =
  if Sys.file_exists path && Sys.is_directory path then
    Result.Error (path ^ ": is a directory")
  else
    match open_in_bin path with
    | exception Sys_error e -> Result.Error e
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            (* Sniff on the first non-blank line without loading the
               file: remember it, then keep streaming. *)
            let fmt = ref None in
            let lines = ref 0 in
            let bad = ref 0 in
            let sched_env = Dct_txn.Parse.create_env () in
            let sched_em = emitter () in
            let jsonl = adapter () in
            let err = ref None in
            let handle_line line n =
              (match !fmt with
              | Some _ -> ()
              | None ->
                  if String.trim line <> "" then fmt := Some (sniff line));
              match !fmt with
              | None -> ()
              | Some Jsonl -> (
                  if String.trim line <> "" then
                    match E.of_json line with
                    | Error _ -> incr bad
                    | Ok ev -> List.iter f (feed_event jsonl ~line:n ev))
              | Some Sched -> (
                  match Dct_txn.Parse.parse_line sched_env line with
                  | Ok None -> ()
                  | Ok (Some step) ->
                      feed_step sched_em ~line:n step;
                      List.iter f (take sched_em)
                  | Error e ->
                      if !err = None then
                        err := Some (Printf.sprintf "%s: line %d: %s" path n e))
            in
            (try
               while !err = None do
                 let line = input_line ic in
                 incr lines;
                 handle_line line !lines
               done
             with End_of_file -> ());
            match !err with
            | Some e -> Result.Error e
            | None ->
                let fmt = Option.value ~default:Sched !fmt in
                Ok
                  {
                    fmt;
                    lines = !lines;
                    bad_lines = !bad;
                    adapter =
                      (match fmt with
                      | Jsonl -> Some (adapter_stats jsonl)
                      | Sched -> None);
                    env =
                      (match fmt with
                      | Sched -> Some sched_env
                      | Jsonl -> None);
                  })
