module H = History
module V = Violation
module O = Dct_graph.Cycle_oracle

let opref at line what = { V.at; line; what }

(* ------------------------------------------------------------------ *)
(* Reads-from engine: Read_committed / Read_atomic / Causal.           *)
(*                                                                     *)
(* Reads-from is derived: a read observes the last committed version   *)
(* of its entity (versions are stamped by a global commit clock).      *)
(* Dirty accesses are flagged at rc level; ra retains committed write  *)
(* sets and cross-checks every read pair of a live transaction for     *)
(* fractured observations; causal keeps the reads-from order acyclic   *)
(* on a transitive closure and flags version instability.              *)
(* ------------------------------------------------------------------ *)

type rf_read = {
  mutable seen_writer : int;  (** last observed version's writer, -1 initial *)
  mutable seen_clock : int;
  first_at : int;
  first_line : int;
}

type rf_ent = {
  mutable version : int;
  mutable version_writer : int;
  mutable version_at : int;
  mutable version_line : int;
  mutable rf_dirty : (int * int * int) option;  (** writer, at, line (rc) *)
}

type rf_txn = {
  rf_reads : (int, rf_read) Hashtbl.t;
  rf_writes : (int, int * int) Hashtbl.t;  (** entity -> first (at, line) *)
  linked : (int, unit) Hashtbl.t;  (** writers with a wr arc to us (causal) *)
}

type rf = {
  rf_level : V.level;  (** Read_committed | Read_atomic | Causal *)
  rf_on : V.t -> unit;
  mutable rf_clock : int;
  rf_entities : (int, rf_ent) Hashtbl.t;
  rf_txns : (int, rf_txn) Hashtbl.t;
  wsets : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (** committed writer -> write set (ra, causal) *)
  wr : Dct_graph.Closure.t;  (** reads-from order (causal) *)
  wr_slots : (int, int) Hashtbl.t;
      (** txn -> closure node id.  The closure's bitset rows are as
          wide as the largest id present, so feeding it ever-growing
          transaction ids makes every query O(n) in stream length even
          when the resident set is tiny.  Slots are recycled on
          retirement, keeping row width at the resident size. *)
  mutable wr_free : int list;  (** recycled slot ids *)
  mutable wr_next : int;
  pins : (int, int) Hashtbl.t;
      (** committed writer -> (entities whose current version is his)
          + (live readers' slots that observed him): while positive he
          can still be named by a future check, so his write set and
          closure node must stay (ra, causal) *)
  mutable rf_nviol : int;
}

let rf_create ~level ~on_violation =
  {
    rf_level = level;
    rf_on = on_violation;
    rf_clock = 0;
    rf_entities = Hashtbl.create 256;
    rf_txns = Hashtbl.create 64;
    wsets = Hashtbl.create 64;
    wr = Dct_graph.Closure.create ();
    wr_slots = Hashtbl.create 64;
    wr_free = [];
    wr_next = 0;
    pins = Hashtbl.create 64;
    rf_nviol = 0;
  }

let wr_slot t tx =
  match Hashtbl.find_opt t.wr_slots tx with
  | Some s -> s
  | None ->
      let s =
        match t.wr_free with
        | s :: tl ->
            t.wr_free <- tl;
            s
        | [] ->
            let s = t.wr_next in
            t.wr_next <- s + 1;
            s
      in
      Hashtbl.replace t.wr_slots tx s;
      s

let wr_drop t mode tx =
  match Hashtbl.find_opt t.wr_slots tx with
  | None -> ()
  | Some s ->
      Hashtbl.remove t.wr_slots tx;
      if Dct_graph.Closure.mem_node t.wr s then
        Dct_graph.Closure.remove_node t.wr mode s;
      t.wr_free <- s :: t.wr_free

(* A committed writer with no pins can never be consulted again — no
   entity's current version is his (no new outgoing reads-from arc,
   no [wrote] check against a current version) and no live reader
   remembers observing him (no [wrote] check against a stale slot).
   Retire him: drop the write set and bypass the closure node, exactly
   the ser engine's pin-count GC.  Tracking is only needed at the
   levels that keep per-writer state. *)
let rf_tracks_pins t = t.rf_level = V.Read_atomic || t.rf_level = V.Causal

let rf_retire t u =
  if not (Hashtbl.mem t.rf_txns u) then begin
    Hashtbl.remove t.wsets u;
    Hashtbl.remove t.pins u;
    if t.rf_level = V.Causal then wr_drop t `Bypass u
  end

let rf_pin t u =
  if u >= 0 && rf_tracks_pins t then
    Hashtbl.replace t.pins u
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.pins u))

let rf_unpin t u =
  if u >= 0 && rf_tracks_pins t then
    match Hashtbl.find_opt t.pins u with
    | Some n when n > 1 -> Hashtbl.replace t.pins u (n - 1)
    | Some _ ->
        Hashtbl.remove t.pins u;
        rf_retire t u
    | None -> ()

let rf_ent t x =
  match Hashtbl.find_opt t.rf_entities x with
  | Some e -> e
  | None ->
      let e =
        { version = 0; version_writer = -1; version_at = 0; version_line = 0;
          rf_dirty = None }
      in
      Hashtbl.replace t.rf_entities x e;
      e

let rf_state t tx =
  match Hashtbl.find_opt t.rf_txns tx with
  | Some st -> st
  | None ->
      let st =
        { rf_reads = Hashtbl.create 8; rf_writes = Hashtbl.create 8;
          linked = Hashtbl.create 8 }
      in
      Hashtbl.replace t.rf_txns tx st;
      st

let rf_report t v =
  t.rf_nviol <- t.rf_nviol + 1;
  t.rf_on v

let wrote t u x =
  match Hashtbl.find_opt t.wsets u with
  | None -> false
  | Some ws -> Hashtbl.mem ws x

let rf_feed t { H.index = at; line; op } =
  match op with
  | H.Begin tx -> ignore (rf_state t tx)
  | H.Read (tx, x) -> (
      let st = rf_state t tx in
      let e = rf_ent t x in
      match t.rf_level with
      | V.Read_committed -> (
          match e.rf_dirty with
          | Some (u, wat, wline) when u <> tx ->
              rf_report t
                {
                  V.level = V.Read_committed;
                  kind = V.Dirty_read;
                  txns = [ u; tx ];
                  entity = Some x;
                  ops =
                    [ opref wat wline
                        (Printf.sprintf "w T%d e%d (uncommitted)" u x);
                      opref at line (Printf.sprintf "r T%d e%d" tx x) ];
                  message =
                    Printf.sprintf
                      "T%d reads e%d while T%d holds an uncommitted write of it"
                      tx x u;
                }
          | _ -> ())
      | V.Read_atomic ->
          (* The new read observes version (e.version_writer, e.version).
             Against every earlier read of this transaction: if one side
             observed writer u and the other side's entity is also in
             u's committed write set but was observed from an older
             version, the atomic write set of u was seen fractured. *)
          let u = e.version_writer and cu = e.version in
          Hashtbl.iter
            (fun y (r : rf_read) ->
              if y <> x then begin
                let fractured =
                  (u >= 0 && r.seen_writer <> u && r.seen_clock < cu
                   && wrote t u y)
                  || (r.seen_writer >= 0 && u <> r.seen_writer
                      && cu < r.seen_clock && wrote t r.seen_writer x)
                in
                if fractured then
                  let w, wx, wy =
                    if u >= 0 && r.seen_writer <> u && r.seen_clock < cu
                       && wrote t u y
                    then (u, x, y)
                    else (r.seen_writer, y, x)
                  in
                  rf_report t
                    {
                      V.level = V.Read_atomic;
                      kind = V.Fractured_read;
                      txns = [ tx; w ];
                      entity = Some wx;
                      ops =
                        [ opref r.first_at r.first_line
                            (Printf.sprintf "r T%d e%d" tx y);
                          opref at line (Printf.sprintf "r T%d e%d" tx x) ];
                      message =
                        Printf.sprintf
                          "T%d observes T%d's atomic write set partially: \
                           it sees T%d's e%d but an older e%d"
                          tx w w wx wy;
                    }
              end)
            st.rf_reads;
          (match Hashtbl.find_opt st.rf_reads x with
          | None ->
              rf_pin t u;
              Hashtbl.replace st.rf_reads x
                { seen_writer = u; seen_clock = cu; first_at = at;
                  first_line = line }
          | Some r ->
              rf_pin t u;
              rf_unpin t r.seen_writer;
              r.seen_writer <- u;
              r.seen_clock <- cu)
      | V.Causal -> (
          let u = e.version_writer in
          (match Hashtbl.find_opt st.rf_reads x with
          | None ->
              rf_pin t u;
              Hashtbl.replace st.rf_reads x
                { seen_writer = u; seen_clock = e.version; first_at = at;
                  first_line = line }
          | Some r ->
              rf_pin t u;
              rf_unpin t r.seen_writer;
              if r.seen_clock <> e.version then
                rf_report t
                  {
                    V.level = V.Causal;
                    kind = V.Unstable_read;
                    txns = [ tx ];
                    entity = Some x;
                    ops =
                      [ opref r.first_at r.first_line
                          (Printf.sprintf "r T%d e%d (version %d)" tx x
                             r.seen_clock);
                        opref at line
                          (Printf.sprintf "r T%d e%d (version %d)" tx x
                             e.version) ];
                    message =
                      Printf.sprintf
                        "T%d observes two different versions of e%d \
                         (unstable snapshot)"
                        tx x;
                  };
              r.seen_writer <- u;
              r.seen_clock <- e.version);
          if u >= 0 && u <> tx && not (Hashtbl.mem st.linked u) then begin
            Hashtbl.replace st.linked u ();
            let su = wr_slot t u and stx = wr_slot t tx in
            if Dct_graph.Closure.would_cycle t.wr ~src:su ~dst:stx then
              rf_report t
                {
                  V.level = V.Causal;
                  kind = V.Causal_cycle;
                  txns = [ u; tx ];
                  entity = Some x;
                  ops = [ opref at line (Printf.sprintf "r T%d e%d" tx x) ];
                  message =
                    Printf.sprintf
                      "reads-from arc T%d -> T%d closes a cycle in the \
                       causal order"
                      u tx;
                }
            else Dct_graph.Closure.add_arc t.wr ~src:su ~dst:stx
          end)
      | V.Atomicity | V.Serializable -> assert false)
  | H.Write (tx, x) -> (
      let st = rf_state t tx in
      let e = rf_ent t x in
      (match t.rf_level with
      | V.Read_committed -> (
          match e.rf_dirty with
          | Some (u, wat, wline) when u <> tx ->
              rf_report t
                {
                  V.level = V.Read_committed;
                  kind = V.Dirty_write;
                  txns = [ u; tx ];
                  entity = Some x;
                  ops =
                    [ opref wat wline
                        (Printf.sprintf "w T%d e%d (uncommitted)" u x);
                      opref at line (Printf.sprintf "w T%d e%d" tx x) ];
                  message =
                    Printf.sprintf
                      "T%d overwrites e%d while T%d holds an uncommitted \
                       write of it"
                      tx x u;
                }
          | _ -> ())
      | _ -> ());
      e.rf_dirty <- Some (tx, at, line);
      if not (Hashtbl.mem st.rf_writes x) then
        Hashtbl.replace st.rf_writes x (at, line))
  | H.Commit tx -> (
      match Hashtbl.find_opt t.rf_txns tx with
      | None -> ()
      | Some st ->
          t.rf_clock <- t.rf_clock + 1;
          if
            (t.rf_level = V.Read_atomic || t.rf_level = V.Causal)
            && Hashtbl.length st.rf_writes > 0
          then begin
            let ws = Hashtbl.create (Hashtbl.length st.rf_writes) in
            Hashtbl.iter (fun x _ -> Hashtbl.replace ws x ()) st.rf_writes;
            Hashtbl.replace t.wsets tx ws
          end;
          Hashtbl.iter
            (fun x (wat, wline) ->
              let e = rf_ent t x in
              let old_writer = e.version_writer in
              rf_pin t tx;
              e.version <- t.rf_clock;
              e.version_writer <- tx;
              e.version_at <- wat;
              e.version_line <- wline;
              rf_unpin t old_writer;
              match e.rf_dirty with
              | Some (u, _, _) when u = tx -> e.rf_dirty <- None
              | _ -> ())
            st.rf_writes;
          (* the committing reader's slots die with him *)
          Hashtbl.iter
            (fun _ (r : rf_read) -> rf_unpin t r.seen_writer)
            st.rf_reads;
          Hashtbl.remove t.rf_txns tx;
          if rf_tracks_pins t && not (Hashtbl.mem t.pins tx) then
            rf_retire t tx)
  | H.Abort tx ->
      (match Hashtbl.find_opt t.rf_txns tx with
      | None -> ()
      | Some st ->
          Hashtbl.iter
            (fun x _ ->
              let e = rf_ent t x in
              match e.rf_dirty with
              | Some (u, _, _) when u = tx -> e.rf_dirty <- None
              | _ -> ())
            st.rf_writes;
          Hashtbl.iter
            (fun _ (r : rf_read) -> rf_unpin t r.seen_writer)
            st.rf_reads;
          if t.rf_level = V.Causal then wr_drop t `Exact tx);
      Hashtbl.remove t.rf_txns tx

(* ------------------------------------------------------------------ *)
(* Conflict-graph engine: Serializable.                                *)
(* ------------------------------------------------------------------ *)

(* Per-entity slot: last writer and the readers since that write.  Each
   slot reference pins its transaction in the graph; when a completed
   transaction's pin count hits zero it is retired with the paper's
   bypass removal, so graph size tracks live + pinned transactions. *)
type slot = { mutable writer : int; mutable readers : (int, unit) Hashtbl.t }

type pending = {
  pv : V.t;
  mutable waiting : int;  (** participants not yet committed *)
  mutable dead : bool;  (** a participant aborted: void *)
}

type ser = {
  ser_on : V.t -> unit;
  oracle : O.t;
  slots : (int, slot) Hashtbl.t;
  pins : (int, int) Hashtbl.t;
  active : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (** live txn -> entities touched (for abort cleanup) *)
  committed : (int, unit) Hashtbl.t;  (** committed, still in the graph *)
  by_txn : (int, pending list ref) Hashtbl.t;
      (** live participant -> pendings awaiting it *)
  mutable pendings : pending list;
  mutable resident : int;
  mutable ser_nviol : int;
}

let ser_create ?(oracle = O.Topo) ?probe ~on_violation () =
  {
    ser_on = on_violation;
    oracle = O.create ?probe oracle;
    slots = Hashtbl.create 256;
    pins = Hashtbl.create 64;
    active = Hashtbl.create 64;
    committed = Hashtbl.create 64;
    by_txn = Hashtbl.create 16;
    pendings = [];
    resident = 0;
    ser_nviol = 0;
  }

let slot t x =
  match Hashtbl.find_opt t.slots x with
  | Some s -> s
  | None ->
      let s = { writer = -1; readers = Hashtbl.create 4 } in
      Hashtbl.replace t.slots x s;
      s

let ensure_node t tx =
  if not (O.mem_node t.oracle tx) then begin
    O.add_node t.oracle tx;
    t.resident <- t.resident + 1
  end

let ensure_active t tx =
  ensure_node t tx;
  if not (Hashtbl.mem t.active tx) then
    Hashtbl.replace t.active tx (Hashtbl.create 8)

let touch t tx x =
  match Hashtbl.find_opt t.active tx with
  | None -> ()
  | Some es -> Hashtbl.replace es x ()

let retire t tx =
  if Hashtbl.mem t.committed tx then begin
    Hashtbl.remove t.committed tx;
    O.remove_node t.oracle `Bypass tx;
    t.resident <- t.resident - 1
  end

let pin t tx =
  Hashtbl.replace t.pins tx
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.pins tx))

let unpin t tx =
  match Hashtbl.find_opt t.pins tx with
  | None -> ()
  | Some 1 ->
      Hashtbl.remove t.pins tx;
      retire t tx
  | Some n -> Hashtbl.replace t.pins tx (n - 1)

let confirm t p =
  if not p.dead then begin
    t.ser_nviol <- t.ser_nviol + 1;
    t.ser_on p.pv
  end

(* A conflict arc u -> t.  If reachability already orders u before t the
   arc adds nothing; if t already reaches u the arc would close a cycle:
   record the witness as pending, confirmed once every transaction on
   the path has committed. *)
let edge t ~at ~line ~entity ~what u tx =
  if u <> tx then begin
    ensure_node t u;
    ensure_node t tx;
    if not (O.reaches t.oracle ~src:u ~dst:tx) then
      if O.would_cycle t.oracle ~src:u ~dst:tx then begin
        let path =
          match O.cycle_witness t.oracle ~src:u ~dst:tx with
          | Some p -> p  (* tx ⇝ u *)
          | None -> [ tx; u ]
        in
        let pv =
          {
            V.level = V.Serializable;
            kind = V.Conflict_cycle;
            txns = path;
            entity = Some entity;
            ops = [ opref at line what ];
            message =
              Printf.sprintf
                "conflict arc T%d -> T%d closes a cycle (%s)" u tx
                (String.concat " -> "
                   (List.map (Printf.sprintf "T%d") (path @ [ List.hd path ])));
          }
        in
        let p = { pv; waiting = 0; dead = false } in
        List.iter
          (fun v ->
            if Hashtbl.mem t.active v then begin
              p.waiting <- p.waiting + 1;
              let l =
                match Hashtbl.find_opt t.by_txn v with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.replace t.by_txn v l;
                    l
              in
              l := p :: !l
            end)
          path;
        t.pendings <- p :: t.pendings;
        if p.waiting = 0 then confirm t p
      end
      else O.add_arc t.oracle ~src:u ~dst:tx
  end

let ser_feed t { H.index = at; line; op } =
  match op with
  | H.Begin tx -> ensure_active t tx
  | H.Read (tx, x) ->
      ensure_active t tx;
      touch t tx x;
      let s = slot t x in
      if s.writer >= 0 && s.writer <> tx then
        edge t ~at ~line ~entity:x
          ~what:(Printf.sprintf "r T%d e%d" tx x)
          s.writer tx;
      if not (Hashtbl.mem s.readers tx) then begin
        Hashtbl.replace s.readers tx ();
        pin t tx
      end
  | H.Write (tx, x) ->
      ensure_active t tx;
      touch t tx x;
      let s = slot t x in
      let what = Printf.sprintf "w T%d e%d" tx x in
      if s.writer >= 0 && s.writer <> tx then
        edge t ~at ~line ~entity:x ~what s.writer tx;
      Hashtbl.iter
        (fun r () -> if r <> tx then edge t ~at ~line ~entity:x ~what r tx)
        s.readers;
      (* The slot now references only tx: release old pins, take one. *)
      if s.writer >= 0 then unpin t s.writer;
      Hashtbl.iter (fun r () -> unpin t r) s.readers;
      Hashtbl.reset s.readers;
      s.writer <- tx;
      pin t tx
  | H.Commit tx -> (
      match Hashtbl.find_opt t.active tx with
      | None -> ()
      | Some _ ->
          Hashtbl.remove t.active tx;
          Hashtbl.replace t.committed tx ();
          (match Hashtbl.find_opt t.by_txn tx with
          | None -> ()
          | Some l ->
              Hashtbl.remove t.by_txn tx;
              List.iter
                (fun p ->
                  p.waiting <- p.waiting - 1;
                  if p.waiting = 0 then confirm t p)
                !l);
          if not (Hashtbl.mem t.pins tx) then retire t tx)
  | H.Abort tx -> (
      match Hashtbl.find_opt t.active tx with
      | None -> ()
      | Some es ->
          Hashtbl.remove t.active tx;
          (match Hashtbl.find_opt t.by_txn tx with
          | None -> ()
          | Some l ->
              Hashtbl.remove t.by_txn tx;
              List.iter (fun p -> p.dead <- true) !l);
          Hashtbl.iter
            (fun x () ->
              match Hashtbl.find_opt t.slots x with
              | None -> ()
              | Some s ->
                  if s.writer = tx then s.writer <- -1;
                  if Hashtbl.mem s.readers tx then
                    Hashtbl.remove s.readers tx)
            es;
          Hashtbl.remove t.pins tx;
          if O.mem_node t.oracle tx then begin
            O.remove_node t.oracle `Exact tx;
            t.resident <- t.resident - 1
          end)

let ser_finish t =
  (* Participants still running at end of stream never aborted: take the
     pending witnesses at face value, oldest first. *)
  List.iter (fun p -> if p.waiting > 0 then confirm t p)
    (List.rev t.pendings);
  t.pendings <- []

(* ------------------------------------------------------------------ *)

type t = Rf of rf | Ser of ser

let create ?oracle ?probe ~level ~on_violation () =
  match level with
  | V.Atomicity ->
      invalid_arg "Serializability.create: use the Atomicity analysis"
  | V.Read_committed | V.Read_atomic | V.Causal ->
      Rf (rf_create ~level ~on_violation)
  | V.Serializable -> Ser (ser_create ?oracle ?probe ~on_violation ())

let feed t lop =
  match t with Rf r -> rf_feed r lop | Ser s -> ser_feed s lop

let finish = function Rf _ -> () | Ser s -> ser_finish s

let live = function
  | Rf r -> Hashtbl.length r.rf_txns
  | Ser s -> Hashtbl.length s.active

let resident = function
  | Rf r ->
      (* live transactions plus the committed writers still pinned by a
         current version or a live reader's slot (ra/causal) *)
      Hashtbl.length r.rf_txns + Hashtbl.length r.pins
  | Ser s -> s.resident

let violations = function Rf r -> r.rf_nviol | Ser s -> s.ser_nviol
