(** The streaming history checker: orchestration, reporting, and the
    exact cross-check of [--checked] mode.

    A checker runs exactly {e one} analysis, selected by [level].  The
    levels are deliberately not cumulative: multi-write scheduler
    histories legally contain dirty reads (the paper's model exposes
    intermediate writes) yet must pass [ser], so each level answers
    only its own question — [atomicity] the vector-clock analysis,
    [rc]/[ra]/[causal] the polynomial Biswas–Enea reductions, [ser] the
    conflict-graph acyclicity of the committed projection.

    Feeding is streaming: O(1) amortized per operation, memory linear
    in live transactions (plus touched entities / resident graph
    nodes) — a 10^6-event trace never materializes.

    {2 Checked mode}

    With [checked = true] and [level = Serializable] the checker
    buffers the first [prefix_cap] operations (stopping early at the
    first [Abort], where the streaming engine's deliberate
    pending-discard semantics and an exact committed-projection check
    legitimately diverge) and, at {!finalize}, compares two verdicts on
    that prefix: a fresh streaming run, and the full pairwise conflict
    graph on the exact bitset {!Dct_graph.Closure} (cycles tolerated,
    verdict = some node reaches itself).  On abort-free prefixes the
    two are provably equal — the streaming per-entity arcs are a
    transitive reduction of the full conflict relation — so any
    divergence is a checker bug and is reported as such. *)

type t

val create :
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?checked:bool ->
  ?prefix_cap:int ->
  ?max_witness:int ->
  level:Violation.level ->
  unit ->
  t
(** [oracle] (default [Topo]) selects the [ser] cycle backend; the
    [tracer]'s probe times its queries and its metrics registry gets
    the [check.*] counters and gauges.  [prefix_cap] (default 4096)
    bounds the checked-mode buffer; [max_witness] (default 1000) caps
    the retained violation records — counting continues past it. *)

val feed : t -> History.lop -> unit

type report = {
  level : Violation.level;
  ops : int;  (** operations fed *)
  txns : int;  (** distinct transactions seen *)
  commits : int;
  aborts : int;
  live_at_end : int;
  max_live : int;
  max_resident : int;  (** peak graph residency ([ser]) or live txns *)
  total : int;  (** total violations found *)
  violations : Violation.t list;  (** retained witnesses, stream order;
                                      capped at [max_witness] *)
  truncated : bool;  (** [total > List.length violations] *)
  checked_ops : int;  (** prefix length cross-checked (0: not checked) *)
  divergence : string option;  (** checked-mode disagreement, if any *)
}

val finalize : t -> report
(** Flush pending [ser] witnesses, run the checked-mode cross-check,
    and close the books.  The checker must not be fed afterwards. *)

val passed : report -> bool
(** No violations and no divergence. *)

val exact_ser_verdict : History.lop list -> bool
(** The reference verdict: the full pairwise conflict graph of the
    committed projection (aborted transactions excluded, live ones
    taken at face value) has a cycle.  Quadratic per entity — for
    small histories and the differential tests. *)

val streaming_ser_verdict :
  ?oracle:Dct_graph.Cycle_oracle.backend -> History.lop list -> bool
(** A fresh streaming [ser] run over [ops] (with {!finalize}'s pending
    flush): [true] iff it reports a violation. *)

(** {1 Convenience front-ends} *)

val check_schedule :
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?checked:bool ->
  level:Violation.level ->
  Dct_txn.Schedule.t ->
  report

val check_ops :
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?checked:bool ->
  level:Violation.level ->
  History.lop list ->
  report

val check_file :
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?tracer:Dct_telemetry.Tracer.t ->
  ?checked:bool ->
  level:Violation.level ->
  string ->
  (report * History.file_stats, string) result
(** Streams the file through {!History.iter_file}. *)

(** {1 Rendering} *)

val render :
  ?txn_name:(int -> string) ->
  ?entity_name:(int -> string) ->
  report ->
  string
(** Human-readable: one summary line, then the witnesses (via
    {!Violation.render}), then the checked-mode line when it ran. *)

val to_json : ?stats:History.file_stats -> report -> string
(** One JSON object: summary fields, the violations array, and the
    file/adapter statistics when provided. *)
