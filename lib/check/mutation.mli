(** The mutation harness of the differential suite: controlled edits of
    a normalized operation stream.

    Two families:

    - {e targeted injectors} splice a known anomaly into a clean
      history — each is guaranteed-detectable by construction at its
      level (the 100%-detection acceptance bar): a dirty read/write is
      inserted inside somebody's write–commit window, a lost update
      brackets the whole history (read version 0 first, commit a write
      of the same entity last).
    - {e generic mutators} (swap / drop / duplicate) perturb the stream
      without aiming at a specific anomaly; the differential tests run
      the streaming checker and the exact closure reference on the
      result and require {e equal} verdicts, whatever they are.

    All functions return [None] when the history offers no applicable
    site; [Some ops] is reindexed (indices 1..n, lines preserved). *)

val reindex : History.lop list -> History.lop list

val fresh_txn : History.lop list -> int
(** An id greater than every transaction mentioned. *)

(** {1 Targeted injectors} *)

val inject_dirty_read : History.lop list -> History.lop list option
(** Insert a read by a fresh transaction between someone's [Write] and
    their later [Commit].  Detected at [atomicity] and [rc]. *)

val inject_dirty_write : History.lop list -> History.lop list option
(** Same site, inserting a write.  Detected at [atomicity] and [rc]. *)

val inject_lost_update : History.lop list -> History.lop list option
(** A fresh transaction reads an entity before every other operation
    and commits a write of it after every other operation; any
    committed write of that entity in between makes the update lost.
    Detected at [atomicity]. *)

val inject_conflict_cycle : History.lop list -> History.lop list option
(** Append two fresh committed transactions in rw–rw opposition on two
    fresh entities — a 2-cycle in the conflict graph.  Detected at
    [ser]. *)

(** {1 Generic mutators} *)

val swap : at:int -> History.lop list -> History.lop list option
(** Swap the operations at positions [at] and [at + 1] (0-based); [None]
    when out of range or the two belong to the same transaction (such a
    swap is a session-order edit, not an interleaving change). *)

val drop : at:int -> History.lop list -> History.lop list option

val duplicate : at:int -> History.lop list -> History.lop list option
