(** Streaming consistency-level analyses — the Biswas–Enea reductions.

    One engine per family, selected by [level]:

    - [Read_committed] — no reads or overwrites of uncommitted data.
      Polynomial (linear here): per-entity dirty-writer tracking.
    - [Read_atomic] — committed write sets must be observed atomically.
      Reads-from is derived as "the last committed version at read
      time"; a fractured read is a transaction observing entity [x]
      from writer [u] and entity [y] from a writer older than [u]
      although [u] wrote [y] too.  Polynomial: committed write sets are
      retained (memory linear in committed writes).
    - [Causal] — each transaction's view must be a stable causal
      snapshot: reading two different versions of one entity is an
      unstable read, and the (session ∪ reads-from) order must stay
      acyclic (checked incrementally on a transitive {!Dct_graph.Closure};
      with derived reads-from the cycle check is a guard that foreign
      traces with explicit aborts can still trip).
    - [Serializable] — the conflict graph of the committed projection
      must be acyclic.  Arcs are derived online from per-entity last
      writer/reader slots and fed to a pluggable
      {!Dct_graph.Cycle_oracle} backend; completed transactions
      referenced by no entity slot are retired with the paper's
      path-preserving [`Bypass] removal, so residency tracks live
      transactions plus pinned completed ones, not history length.  A
      would-be cycle is reported once every transaction on its witness
      path has committed (an abort of any of them voids it) — so
      histories with aborts never produce false positives.

    Violations stream through [on_violation]; for [Serializable] the
    confirmation may happen at a later commit or at {!finish}. *)

type t

val create :
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  ?probe:Dct_telemetry.Probe.t ->
  level:Violation.level ->
  on_violation:(Violation.t -> unit) ->
  unit ->
  t
(** [oracle] (default [Topo]) and [probe] apply to the [Serializable]
    engine.  @raise Invalid_argument for [level = Atomicity] — that
    analysis lives in {!Atomicity}. *)

val feed : t -> History.lop -> unit

val finish : t -> unit
(** Flush pending serializability witnesses: participants still active
    at end of stream are taken at face value (they never aborted). *)

val live : t -> int
(** Live (begun, not completed) transactions. *)

val resident : t -> int
(** Memory proxy: conflict-graph nodes for [Serializable], live
    transactions otherwise. *)

val violations : t -> int
