module H = History

let reindex ops =
  List.mapi (fun i (l : H.lop) -> { l with H.index = i + 1 }) ops

let fresh_txn ops =
  1
  + List.fold_left (fun m (l : H.lop) -> max m (H.txn l.H.op)) (-1) ops

let mk op = { H.index = 0; line = 0; op }

(* The write–commit windows: a [Write (t, x)] such that [Commit t]
   appears strictly later.  Returns the position just after the write,
   with the entity. *)
let first_dirty_window ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let commit_at = Hashtbl.create 16 in
  Array.iteri
    (fun i (l : H.lop) ->
      match l.H.op with
      | H.Commit tx ->
          if not (Hashtbl.mem commit_at tx) then Hashtbl.replace commit_at tx i
      | _ -> ())
    arr;
  let rec find i =
    if i >= n then None
    else
      match arr.(i).H.op with
      | H.Write (tx, x) -> (
          match Hashtbl.find_opt commit_at tx with
          | Some c when c > i -> Some (i + 1, x)
          | _ -> find (i + 1))
      | _ -> find (i + 1)
  in
  find 0

let insert_at pos extra ops =
  let rec go i = function
    | [] -> if i = pos then extra else []
    | l :: rest ->
        if i = pos then extra @ (l :: rest) else l :: go (i + 1) rest
  in
  reindex (go 0 ops)

let inject_dirty_read ops =
  match first_dirty_window ops with
  | None -> None
  | Some (pos, x) ->
      let u = fresh_txn ops in
      Some (insert_at pos [ mk (H.Begin u); mk (H.Read (u, x)) ] ops)

let inject_dirty_write ops =
  match first_dirty_window ops with
  | None -> None
  | Some (pos, x) ->
      let u = fresh_txn ops in
      Some (insert_at pos [ mk (H.Begin u); mk (H.Write (u, x)) ] ops)

let inject_lost_update ops =
  (* Need at least one committed write: some [Write (t, x)] with a
     [Commit t] later (any model the front-end emits satisfies this for
     every committed writer). *)
  match first_dirty_window ops with
  | None -> None
  | Some (_, x) ->
      let u = fresh_txn ops in
      Some
        (reindex
           ((mk (H.Begin u) :: mk (H.Read (u, x)) :: ops)
           @ [ mk (H.Write (u, x)); mk (H.Commit u) ]))

let inject_conflict_cycle ops =
  let u = fresh_txn ops in
  let v = u + 1 in
  let e =
    1
    + List.fold_left
        (fun m (l : H.lop) ->
          match l.H.op with
          | H.Read (_, x) | H.Write (_, x) -> max m x
          | _ -> m)
        (-1) ops
  in
  (* u reads e, v reads e+1, then each writes the other's entity:
     rw arcs u -> v (on e+1) and v -> u (on e). *)
  Some
    (reindex
       (ops
       @ [ mk (H.Begin u); mk (H.Begin v);
           mk (H.Read (u, e)); mk (H.Read (v, e + 1));
           mk (H.Write (u, e + 1)); mk (H.Write (v, e));
           mk (H.Commit u); mk (H.Commit v) ]))

(* --- generic mutators ---------------------------------------------- *)

let swap ~at ops =
  let arr = Array.of_list ops in
  if at < 0 || at + 1 >= Array.length arr then None
  else
    let a = arr.(at) and b = arr.(at + 1) in
    if H.txn a.H.op = H.txn b.H.op then None
    else begin
      arr.(at) <- b;
      arr.(at + 1) <- a;
      Some (reindex (Array.to_list arr))
    end

let drop ~at ops =
  if at < 0 || at >= List.length ops then None
  else Some (reindex (List.filteri (fun i _ -> i <> at) ops))

let duplicate ~at ops =
  let arr = Array.of_list ops in
  if at < 0 || at >= Array.length arr then None
  else
    Some
      (reindex
         (List.concat_map
            (fun i ->
              if i = at then [ arr.(i); arr.(i) ] else [ arr.(i) ])
            (List.init (Array.length arr) Fun.id)))
