(** Streaming atomicity checking — the vector-clock analysis.

    Amortized O(1) per operation, memory linear in live transactions
    plus touched entities (per-transaction state is dropped at commit/
    abort), in the style of Mathur & Viswanathan's linear-time
    vector-clock atomicity checker: a global commit clock stamps every
    committed version, each live transaction carries its read snapshot
    (entity → version clock observed — its slice of the vector clock),
    and each entity carries its last committed version stamp plus the
    uncommitted writer currently holding it dirty.  Non-atomic patterns
    are flagged online:

    - {e dirty read} — a transaction reads an entity another live
      transaction has written and not yet committed;
    - {e dirty write} — a transaction overwrites an entity with an
      uncommitted write by another live transaction;
    - {e lost update} — a transaction commits a write of an entity it
      read, but the entity's version clock advanced between the read
      and the commit (an intervening committed write it never saw).

    Violations are reported through [on_violation] as they are found;
    feeding continues (one broken transaction does not hide later
    ones).  The basic model's atomic final write commits in the same
    step, so basic-model scheduler histories are dirty-free by
    construction and lost updates would be conflict cycles the
    schedulers reject — generated histories pass (tested). *)

type t

val create : on_violation:(Violation.t -> unit) -> unit -> t

val feed : t -> History.lop -> unit
(** Operations of unknown transactions get implicit begins (lenient
    foreign-trace behaviour). *)

val live : t -> int
(** Live (begun, not yet committed/aborted) transactions. *)

val violations : t -> int
(** Total violations reported so far. *)
