module H = History
module V = Violation

type read_rec = { rv : int;  (** version clock observed *) r_at : int; r_line : int }

type ent = {
  mutable version : int;  (** commit clock of the last committed write *)
  mutable version_writer : int;  (** -1 for the initial version *)
  mutable version_at : int;  (** op index of the committing write *)
  mutable version_line : int;
  mutable dirty : (int * int * int) option;  (** live writer, op index, line *)
}

type txn_state = {
  reads : (int, read_rec) Hashtbl.t;
  writes : (int, int * int) Hashtbl.t;  (** entity -> first write (at, line) *)
}

type t = {
  on_violation : V.t -> unit;
  mutable clock : int;
  entities : (int, ent) Hashtbl.t;
  txns : (int, txn_state) Hashtbl.t;
  mutable nviol : int;
}

let create ~on_violation () =
  {
    on_violation;
    clock = 0;
    entities = Hashtbl.create 256;
    txns = Hashtbl.create 64;
    nviol = 0;
  }

let live t = Hashtbl.length t.txns
let violations t = t.nviol

let ent t x =
  match Hashtbl.find_opt t.entities x with
  | Some e -> e
  | None ->
      let e =
        { version = 0; version_writer = -1; version_at = 0; version_line = 0;
          dirty = None }
      in
      Hashtbl.replace t.entities x e;
      e

let state t tx =
  match Hashtbl.find_opt t.txns tx with
  | Some st -> st
  | None ->
      let st = { reads = Hashtbl.create 8; writes = Hashtbl.create 8 } in
      Hashtbl.replace t.txns tx st;
      st

let report t v =
  t.nviol <- t.nviol + 1;
  t.on_violation v

let opref at line what = { V.at; line; what }

let dirty_violation t kind ~who ~writer ~entity ~wat ~wline ~at ~line ~what =
  report t
    {
      V.level = V.kind_level kind;
      kind;
      txns = [ writer; who ];
      entity = Some entity;
      ops =
        [ opref wat wline (Printf.sprintf "w T%d e%d (uncommitted)" writer entity);
          opref at line what ];
      message =
        Printf.sprintf "T%d %s e%d while T%d holds an uncommitted write of it"
          who
          (if kind = V.Dirty_read then "reads" else "overwrites")
          entity writer;
    }

let feed t { H.index = at; line; op } =
  match op with
  | H.Begin tx -> ignore (state t tx)
  | H.Read (tx, x) ->
      let st = state t tx in
      let e = ent t x in
      (match e.dirty with
      | Some (u, wat, wline) when u <> tx ->
          dirty_violation t V.Dirty_read ~who:tx ~writer:u ~entity:x ~wat
            ~wline ~at ~line ~what:(Printf.sprintf "r T%d e%d" tx x)
      | _ -> ());
      if not (Hashtbl.mem st.reads x) then
        Hashtbl.replace st.reads x { rv = e.version; r_at = at; r_line = line }
  | H.Write (tx, x) ->
      let st = state t tx in
      let e = ent t x in
      (match e.dirty with
      | Some (u, wat, wline) when u <> tx ->
          dirty_violation t V.Dirty_write ~who:tx ~writer:u ~entity:x ~wat
            ~wline ~at ~line ~what:(Printf.sprintf "w T%d e%d" tx x)
      | _ -> ());
      e.dirty <- Some (tx, at, line);
      if not (Hashtbl.mem st.writes x) then
        Hashtbl.replace st.writes x (at, line)
  | H.Commit tx ->
      let st = state t tx in
      t.clock <- t.clock + 1;
      Hashtbl.iter
        (fun x (wat, wline) ->
          let e = ent t x in
          (match Hashtbl.find_opt st.reads x with
          | Some r when r.rv < e.version ->
              (* The snapshot T read is older than the version it now
                 overwrites: the intervening commit's update is lost. *)
              report t
                {
                  V.level = V.Atomicity;
                  kind = V.Lost_update;
                  txns = [ tx; e.version_writer ];
                  entity = Some x;
                  ops =
                    [ opref r.r_at r.r_line
                        (Printf.sprintf "r T%d e%d (version %d)" tx x r.rv);
                      opref e.version_at e.version_line
                        (Printf.sprintf "w T%d e%d (commits version %d)"
                           e.version_writer x e.version);
                      opref at line (Printf.sprintf "c T%d" tx) ];
                  message =
                    Printf.sprintf
                      "T%d commits a write of e%d over a version it read \
                       before T%d's intervening commit"
                      tx x e.version_writer;
                }
          | _ -> ());
          e.version <- t.clock;
          e.version_writer <- tx;
          e.version_at <- wat;
          e.version_line <- wline;
          match e.dirty with
          | Some (u, _, _) when u = tx -> e.dirty <- None
          | _ -> ())
        st.writes;
      Hashtbl.remove t.txns tx
  | H.Abort tx ->
      (match Hashtbl.find_opt t.txns tx with
      | None -> ()
      | Some st ->
          Hashtbl.iter
            (fun x _ ->
              let e = ent t x in
              match e.dirty with
              | Some (u, _, _) when u = tx -> e.dirty <- None
              | _ -> ())
            st.writes);
      Hashtbl.remove t.txns tx
