module Intset = Dct_graph.Intset
module Access = Dct_txn.Access
module Step = Dct_txn.Step
module Parse = Dct_txn.Parse
module Symtab = Dct_txn.Symtab

type severity = Error | Warning

type finding = { code : string; severity : severity; line : int; message : string }

let code_descriptions =
  [
    ("DCT000", "parse-error: the line is not a recognisable step");
    ("DCT001", "step-before-begin: step of a transaction that was never begun");
    ("DCT002", "step-after-completion: step of an already-completed transaction");
    ("DCT003", "transaction-never-completes: begun but no final write / finish");
    ("DCT004", "mixed-models: final-write, multi-write and predeclared steps mixed");
    ("DCT005", "access-outside-declaration: access outside the predeclared set");
    ("DCT006", "entity-never-read: entity written but never read");
    ("DCT007", "duplicate-begin: BEGIN of an already-active transaction");
    ("DCT008", "empty-commit: transaction completes with zero operations");
    ("DCT009", "read-never-written: read of an entity no transaction writes");
  ]

(* The transaction-model flavour a step belongs to, used by DCT004. *)
type flavour = Final_write | Multi_write | Predeclared

let flavour_name = function
  | Final_write -> "final-write (basic)"
  | Multi_write -> "multi-write"
  | Predeclared -> "predeclared"

type txn_status = {
  mutable begin_line : int;
  mutable completed_at : int option;  (** line of the completing step *)
  mutable declared : Access.t option;
  mutable performed : Access.t;
  mutable flavours : (flavour * int) list;  (** first line of each flavour *)
}

let finding code severity line fmt =
  Printf.ksprintf (fun message -> { code; severity; line; message }) fmt

let compare_findings a b =
  match compare a.line b.line with 0 -> compare a.code b.code | c -> c

(* Does [performed] reach [declared] everywhere at declared strength?
   (A predeclared transaction completes once it has performed every
   declared access.) *)
let declaration_fulfilled ~declared ~performed =
  Access.fold
    (fun ~entity ~mode acc ->
      acc
      &&
      match Access.find performed ~entity with
      | Some got -> Access.at_least_as_strong got mode
      | None -> false)
    declared true

let check ~env (steps : Parse.located list) =
  let txn_name id =
    Option.value ~default:(Printf.sprintf "T%d" id)
      (Symtab.name env.Parse.txns id)
  in
  let entity_name id =
    Option.value ~default:(Printf.sprintf "e%d" id)
      (Symtab.name env.Parse.entities id)
  in
  let out = ref [] in
  let emit f = out := f :: !out in
  let txns : (int, txn_status) Hashtbl.t = Hashtbl.create 16 in
  let entity_reads : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let entity_first_read : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let entity_first_write : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* Opening of a transaction that was never begun: report DCT001 once,
     then track it anyway so one typo does not cascade. *)
  let status line t =
    match Hashtbl.find_opt txns t with
    | Some st -> st
    | None ->
        let st =
          {
            begin_line = line;
            completed_at = None;
            declared = None;
            performed = Access.empty;
            flavours = [];
          }
        in
        Hashtbl.replace txns t st;
        st
  in
  let note_flavour st line fl t =
    if not (List.mem_assoc fl st.flavours) then begin
      st.flavours <- st.flavours @ [ (fl, line) ];
      (match st.flavours with
      | (first, _) :: _ :: _ when first <> Predeclared && fl <> Predeclared ->
          emit
            (finding "DCT004" Error line
               "transaction %s mixes %s and %s steps" (txn_name t)
               (flavour_name first) (flavour_name fl))
      | _ -> ())
    end
  in
  let check_body line t what =
    match Hashtbl.find_opt txns t with
    | None ->
        emit
          (finding "DCT001" Error line "%s by %s before its begin" what
             (txn_name t));
        Some (status line t)
    | Some st -> (
        match st.completed_at with
        | Some at ->
            emit
              (finding "DCT002" Error line
                 "%s by %s after its completion on line %d" what (txn_name t) at);
            None
        | None -> Some st)
  in
  let check_declared st line t x ~mode =
    match st.declared with
    | None -> ()
    | Some declared -> (
        match Access.find declared ~entity:x with
        | None ->
            emit
              (finding "DCT005" Error line
                 "%s accesses %s outside its declared set" (txn_name t)
                 (entity_name x))
        | Some declared_mode ->
            if not (Access.at_least_as_strong declared_mode mode) then
              emit
                (finding "DCT005" Error line
                   "%s writes %s but declared it read-only" (txn_name t)
                   (entity_name x)))
  in
  let record_access st line t x ~mode =
    st.performed <- Access.add st.performed ~entity:x ~mode;
    (match mode with
    | Access.Read ->
        Hashtbl.replace entity_reads x ();
        if not (Hashtbl.mem entity_first_read x) then
          Hashtbl.replace entity_first_read x line
    | Access.Write ->
        if not (Hashtbl.mem entity_first_write x) then
          Hashtbl.replace entity_first_write x line);
    check_declared st line t x ~mode;
    (* A predeclared transaction completes once the declaration is
       exhausted — later steps are DCT002 territory. *)
    match st.declared with
    | Some declared
      when declaration_fulfilled ~declared ~performed:st.performed ->
        st.completed_at <- Some line
    | _ -> ()
  in
  let begin_txn line t ~declared ~what =
    match Hashtbl.find_opt txns t with
    | Some st when st.completed_at <> None ->
        emit
          (finding "DCT002" Error line "%s of %s after its completion on line %d"
             what (txn_name t)
             (Option.get st.completed_at))
    | Some st ->
        emit
          (finding "DCT007" Error line
             "%s of %s but it is already active since line %d" what (txn_name t)
             st.begin_line)
    | None ->
        let st = status line t in
        st.declared <- declared;
        if declared <> None then note_flavour st line Predeclared t
  in
  List.iter
    (fun { Parse.line; step } ->
      match step with
      | Step.Begin t -> begin_txn line t ~declared:None ~what:"begin"
      | Step.Begin_declared (t, a) ->
          begin_txn line t ~declared:(Some a) ~what:"declared begin"
      | Step.Read (t, x) -> (
          match check_body line t (Printf.sprintf "read of %s" (entity_name x)) with
          | None -> ()
          | Some st -> record_access st line t x ~mode:Access.Read)
      | Step.Write (t, xs) -> (
          match check_body line t "final write" with
          | None -> ()
          | Some st ->
              note_flavour st line Final_write t;
              List.iter (fun x -> record_access st line t x ~mode:Access.Write) xs;
              st.completed_at <- Some line)
      | Step.Write_one (t, x) -> (
          match
            check_body line t (Printf.sprintf "write of %s" (entity_name x))
          with
          | None -> ()
          | Some st ->
              note_flavour st line Multi_write t;
              record_access st line t x ~mode:Access.Write)
      | Step.Finish t -> (
          match check_body line t "finish" with
          | None -> ()
          | Some st ->
              note_flavour st line Multi_write t;
              st.completed_at <- Some line))
    steps;
  (* End-of-file checks. *)
  Hashtbl.iter
    (fun t st ->
      match st.completed_at with
      | None ->
          emit
            (finding "DCT003" Warning st.begin_line
               "%s begun here but never completes (no final write / finish)"
               (txn_name t))
      | Some at ->
          (* A completed transaction that touched nothing is legal (a
             read-only final write commits it) but almost always a typo:
             its steps went to some other name. *)
          if Access.is_empty st.performed then
            emit
              (finding "DCT008" Warning at
                 "%s completes here with zero operations" (txn_name t)))
    txns;
  Hashtbl.iter
    (fun x line ->
      if not (Hashtbl.mem entity_reads x) then
        emit
          (finding "DCT006" Warning line
             "entity %s is written but never read by any transaction"
             (entity_name x)))
    entity_first_write;
  Hashtbl.iter
    (fun x line ->
      if not (Hashtbl.mem entity_first_write x) then
        emit
          (finding "DCT009" Warning line
             "entity %s is read but never written by any transaction \
              (every read observes the initial version)"
             (entity_name x)))
    entity_first_read;
  (* Cross-transaction model mixing: the scheduler for one model raises
     on steps of another.  Classify each transaction by the flavour of
     its first flavoured step and compare across the schedule. *)
  let schedule_flavours =
    Hashtbl.fold
      (fun _ st acc ->
        match st.flavours with
        | [] -> acc
        | (fl, line) :: _ -> (
            match List.assoc_opt fl acc with
            | Some l when l <= line -> acc
            | _ -> (fl, line) :: List.remove_assoc fl acc))
      txns []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  (match schedule_flavours with
  | _ :: (_, second_line) :: _ ->
      emit
        (finding "DCT004" Warning second_line
           "schedule mixes transaction models (%s)"
           (String.concat ", " (List.map (fun (fl, _) -> flavour_name fl)
                                  schedule_flavours)))
  | _ -> ());
  List.sort compare_findings !out

let lint_string doc =
  let env = Parse.create_env () in
  let located = ref [] in
  let parse_findings = ref [] in
  List.iteri
    (fun i line ->
      let n = i + 1 in
      match Parse.parse_line env line with
      | Ok None -> ()
      | Ok (Some step) -> located := { Parse.line = n; step } :: !located
      | Error e -> parse_findings := finding "DCT000" Error n "%s" e :: !parse_findings)
    (String.split_on_char '\n' doc);
  List.sort compare_findings (!parse_findings @ check ~env (List.rev !located))

let lint_file path =
  if Sys.file_exists path && Sys.is_directory path then
    Result.Error (path ^ ": is a directory")
  else
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Result.Error e
  | doc -> Ok (lint_string doc)

let errors fs = List.filter (fun f -> f.severity = Error) fs
let warnings fs = List.filter (fun f -> f.severity = Warning) fs

let exit_code ?(strict = false) fs =
  if errors fs <> [] then 1 else if strict && fs <> [] then 1 else 0

let severity_name = function Error -> "error" | Warning -> "warning"

let pp_finding ?file ppf f =
  (match file with Some p -> Format.fprintf ppf "%s:" p | None -> ());
  Format.fprintf ppf "%d: %s: %s [%s]" f.line (severity_name f.severity)
    f.message f.code

let render ?file fs =
  String.concat ""
    (List.map (fun f -> Format.asprintf "%a@." (pp_finding ?file) f) fs)

let render_machine ?file fs =
  let file = Option.value ~default:"-" file in
  String.concat ""
    (List.map
       (fun f ->
         Printf.sprintf "%s\t%d\t%s\t%s\t%s\n" file f.line
           (severity_name f.severity) f.code f.message)
       fs)
