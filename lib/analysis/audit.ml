module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Closure = Dct_graph.Closure
module Step = Dct_txn.Step
module Schedule = Dct_txn.Schedule
module Gs = Dct_deletion.Graph_state
module Rules = Dct_deletion.Rules
module Policy = Dct_deletion.Policy
module C1 = Dct_deletion.Condition_c1
module C2 = Dct_deletion.Condition_c2
module Safety = Dct_deletion.Safety
module Reduced_graph = Dct_deletion.Reduced_graph

type decision = Accepted | Rejected | Ignored

type event =
  | Decision of { index : int; step : Step.t; decision : decision }
  | Deletion of { index : int; deleted : Intset.t }

type trace = event list

let decision_of_outcome = function
  | Rules.Accepted -> Accepted
  | Rules.Rejected -> Rejected
  | Rules.Ignored -> Ignored

let record ?(policy = Policy.No_deletion) ?oracle schedule =
  let gs = Gs.create ?oracle () in
  let events = ref [] in
  List.iteri
    (fun index step ->
      let outcome = Rules.apply gs step in
      events :=
        Decision { index; step; decision = decision_of_outcome outcome }
        :: !events;
      match outcome with
      | Rules.Ignored -> ()
      | Rules.Accepted | Rules.Rejected ->
          let deleted = Policy.run policy gs in
          if not (Intset.is_empty deleted) then
            events := Deletion { index; deleted } :: !events)
    schedule;
  List.rev !events

(* Rebuild an auditable trace from raw telemetry events (dct trace
   --audit).  Steps and decisions are paired by the scheduler's step
   index.  The scheduler runs its deletion policy {e inside} [step], so
   [Deletion_ok] appears in the stream between [Step_submitted i] and
   [Decision i]; such deletions are held back and replayed {e after}
   that step's decision (the state the policy actually saw).  Deletions
   with no following decision (drain time) trail the last step.  Only
   basic-model runs can be audited: a "delayed" decision (blocking
   schedulers) has no Rules.apply counterpart and is reported as an
   error. *)
let of_telemetry events =
  let module E = Dct_telemetry.Event in
  let decision_of_string = function
    | "accepted" -> Ok Accepted
    | "rejected" -> Ok Rejected
    | "ignored" -> Ok Ignored
    | "delayed" ->
        Error "\"delayed\" decisions (blocking schedulers) cannot be audited"
    | other -> Error (Printf.sprintf "unknown outcome %S" other)
  in
  let steps_tbl = Hashtbl.create 64 in
  let flush pending index acc =
    List.fold_left
      (fun acc deleted -> Deletion { index; deleted } :: acc)
      acc (List.rev pending)
  in
  let rec go acc pending last_index = function
    | [] -> Ok (List.rev (flush pending last_index acc))
    | E.Step_submitted { index; step } :: rest -> (
        match Step.of_telemetry step with
        | Ok s ->
            Hashtbl.replace steps_tbl index s;
            go acc pending last_index rest
        | Error e -> Error (Printf.sprintf "step %d: %s" index e))
    | E.Decision { index; outcome; _ } :: rest -> (
        match Hashtbl.find_opt steps_tbl index with
        | None ->
            Error
              (Printf.sprintf "decision at index %d has no submitted step"
                 index)
        | Some step -> (
            match decision_of_string outcome with
            | Ok decision ->
                let acc = Decision { index; step; decision } :: acc in
                go (flush pending index acc) [] index rest
            | Error e -> Error (Printf.sprintf "decision at index %d: %s" index e)))
    | E.Deletion_ok { deleted; _ } :: rest ->
        go acc (Intset.of_list deleted :: pending) last_index rest
    | ( E.Deletion_attempted _ | E.Deletion_blocked _ | E.Oracle_query _
      | E.Cycle_rejected _ | E.Restart _ | E.Checkpoint_stats _ )
      :: rest ->
        go acc pending last_index rest
  in
  go [] [] (-1) events

type finding =
  | Malformed_step of { index : int; step : Step.t; error : string }
  | Decision_mismatch of {
      index : int;
      step : Step.t;
      recorded : decision;
      replayed : decision;
    }
  | Illegal_deletion of { index : int; txn : int; reason : string }
  | Unjustified_deletion of {
      index : int;
      deleted : Intset.t;
      witnesses : (int * int * int) list;
    }
  | Accepted_not_csr of { cycle : Intset.t }

type report = {
  steps : int;
  deletions : int;
  deleted_total : int;
  finding : finding option;
}

(* Is there an order of single deletions of [set], each valid under C1
   on the intermediate reduced graph?  Backtracking over orders; a
   failed remaining-set is memoised, which is sound because D(G, N) is
   order-independent — the intermediate state is a function of the
   remaining set alone. *)
let sequential_c1_order gs set =
  let failed = Hashtbl.create 8 in
  let rec go gs set =
    Intset.is_empty set
    || (not (Hashtbl.mem failed (Intset.elements set)))
       &&
       let memo = C1.hashtbl_memo () in
       let candidates = Intset.filter (C1.holds_fast ~memo gs) set in
       let ok =
         Intset.exists
           (fun ti ->
             let gs' = Gs.copy gs in
             Reduced_graph.delete gs' ti;
             go gs' (Intset.remove ti set))
           candidates
       in
       if not ok then Hashtbl.replace failed (Intset.elements set) ();
       ok
  in
  go (Gs.copy gs) set

let csr_via_closure schedule =
  let g = Schedule.conflict_graph schedule in
  let c = Closure.create () in
  Digraph.iter_nodes (Closure.add_node c) g;
  Digraph.iter_arcs (fun ~src ~dst -> Closure.add_arc c ~src ~dst) g;
  let cycle = ref Intset.empty in
  Digraph.iter_nodes
    (fun n -> if Closure.reaches c ~src:n ~dst:n then cycle := Intset.add n !cycle)
    g;
  !cycle

let audit ?safety_depth trace =
  let gs = Gs.create () in
  let steps = ref 0 and deletions = ref 0 and deleted_total = ref 0 in
  let rejected = ref Intset.empty in
  let accepted_rev = ref [] in
  let rec go = function
    | [] -> None
    | Decision { index; step; decision } :: rest -> (
        incr steps;
        match Rules.apply gs step with
        | exception Invalid_argument error ->
            Some (Malformed_step { index; step; error })
        | outcome ->
            let replayed = decision_of_outcome outcome in
            if replayed <> decision then
              Some (Decision_mismatch { index; step; recorded = decision; replayed })
            else begin
              (match decision with
              | Rejected -> rejected := Intset.add (Step.txn step) !rejected
              | Accepted -> accepted_rev := step :: !accepted_rev
              | Ignored -> ());
              go rest
            end)
    | Deletion { index; deleted } :: rest -> (
        incr deletions;
        deleted_total := !deleted_total + Intset.cardinal deleted;
        let illegal =
          Intset.filter (fun ti -> not (Gs.is_completed gs ti)) deleted
        in
        if not (Intset.is_empty illegal) then
          let txn = Intset.min_elt illegal in
          Some
            (Illegal_deletion
               {
                 index;
                 txn;
                 reason =
                   (if Gs.mem_txn gs txn then "still active (not completed)"
                    else "not present in the graph");
               })
        else
          let justified =
            C2.holds gs deleted
            || sequential_c1_order gs deleted
            ||
            match safety_depth with
            | None -> false
            | Some depth -> Safety.search ~depth gs ~deleted = None
          in
          if not justified then
            Some
              (Unjustified_deletion
                 { index; deleted; witnesses = C2.violations gs deleted })
          else begin
            Reduced_graph.delete_set gs deleted;
            go rest
          end)
  in
  let finding =
    match go trace with
    | Some f -> Some f
    | None ->
        (* The paper's correctness yardstick: the accepted subschedule —
           steps of transactions that were never rejected — is CSR. *)
        let accepted =
          Schedule.project (List.rev !accepted_rev) ~keep:(fun t ->
              not (Intset.mem t !rejected))
        in
        let cycle = csr_via_closure accepted in
        if Intset.is_empty cycle then None else Some (Accepted_not_csr { cycle })
  in
  { steps = !steps; deletions = !deletions; deleted_total = !deleted_total; finding }

let audit_schedule ?safety_depth ?oracle ~policy schedule =
  audit ?safety_depth (record ~policy ?oracle schedule)

let ok r = r.finding = None

let pp_decision ppf d =
  Format.pp_print_string ppf
    (match d with
    | Accepted -> "accepted"
    | Rejected -> "rejected"
    | Ignored -> "ignored")

let default_txn_name = Printf.sprintf "T%d"
let default_entity_name = Printf.sprintf "e%d"

let pp_set name ppf set =
  Format.fprintf ppf "{%s}"
    (String.concat ", " (List.map name (Intset.elements set)))

let pp_finding ?(txn_name = default_txn_name)
    ?(entity_name = default_entity_name) ppf = function
  | Malformed_step { index; step; error } ->
      Format.fprintf ppf "step %d (%s): malformed: %s" index
        (Step.to_string step) error
  | Decision_mismatch { index; step; recorded; replayed } ->
      Format.fprintf ppf
        "step %d (%s): recorded decision %a but replay says %a" index
        (Step.to_string step) pp_decision recorded pp_decision replayed
  | Illegal_deletion { index; txn; reason } ->
      Format.fprintf ppf "after step %d: deletion of %s is illegal: %s" index
        (txn_name txn) reason
  | Unjustified_deletion { index; deleted; witnesses } ->
      Format.fprintf ppf
        "after step %d: deletion of %a is unjustified (fails C1/C2)" index
        (pp_set txn_name) deleted;
      List.iter
        (fun (ti, tj, x) ->
          Format.fprintf ppf
            "@,  witness: %s has active tight predecessor %s with entity %s \
             uncovered"
            (txn_name ti) (txn_name tj) (entity_name x))
        witnesses
  | Accepted_not_csr { cycle } ->
      Format.fprintf ppf
        "the accepted schedule is not conflict-serializable: cycle through %a"
        (pp_set txn_name) cycle

let pp_report ?txn_name ?entity_name ppf r =
  Format.fprintf ppf "@[<v>audited %d steps, %d deletion events (%d transactions deleted)@,"
    r.steps r.deletions r.deleted_total;
  (match r.finding with
  | None -> Format.fprintf ppf "all decisions justified; accepted schedule is CSR@]"
  | Some f ->
      Format.fprintf ppf "FAIL: %a@]" (pp_finding ?txn_name ?entity_name) f)
