(** Offline auditing of scheduler/policy decision traces.

    A running scheduler produces a {!trace}: one {!event} per submitted
    step with the decision taken, and one per non-empty deletion-policy
    invocation.  The auditor replays the trace on a fresh
    {!Dct_deletion.Graph_state} and cross-checks every decision:

    - each step's recorded decision must match a replay through
      {!Dct_deletion.Rules.apply} (determinism check);
    - each deletion must be {e justified}: only present, completed
      transactions, and the deleted set must pass
      {!Dct_deletion.Condition_c2} — or, failing the simultaneous test,
      admit an order of single deletions each valid under
      {!Dct_deletion.Condition_c1} on the intermediate reduced graphs
      (Theorem 4 makes the two agree for simultaneous reductions; the
      sequential search also justifies iterative policies like
      [Greedy_c1]); optionally a bounded {!Dct_deletion.Safety} search
      is consulted as the last word;
    - the final accepted schedule must be conflict-serializable,
      checked by folding its conflict graph into a transitive
      {!Dct_graph.Closure} and probing for self-reachability.

    The auditor stops at the {e first} unjustified decision.  A
    [Policy.Unsafe_commit_time] run is flagged on the paper's
    motivating schedules; every policy in [Policy.all_correct] passes
    (tested). *)

type decision = Accepted | Rejected | Ignored

type event =
  | Decision of { index : int; step : Dct_txn.Step.t; decision : decision }
      (** [index] is the 0-based position of the step in the input. *)
  | Deletion of { index : int; deleted : Dct_graph.Intset.t }
      (** The policy deleted [deleted] right after step [index]. *)

type trace = event list

val record :
  ?policy:Dct_deletion.Policy.t ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  Dct_txn.Schedule.t ->
  trace
(** Run a schedule through {!Dct_deletion.Rules.apply} with the policy
    applied after every non-ignored step (mirroring
    [Conflict_scheduler]), recording everything.  [policy] defaults to
    [No_deletion]; [oracle] selects the recording run's cycle-check
    backend (the differential tests record with each backend and assert
    identical traces).
    @raise Invalid_argument on malformed schedules — lint first. *)

val of_telemetry : Dct_telemetry.Event.t list -> (trace, string) result
(** Rebuild an auditable trace from a telemetry event stream
    ([dct trace --audit]): [Step_submitted]/[Decision] pairs (matched by
    step index) become {!Decision} events, [Deletion_ok] becomes a
    {!Deletion} anchored {e after} the decision of the step whose
    processing produced it (the policy runs inside the scheduler's
    [step], so its events precede that step's [Decision] in the
    stream); all other events are skipped.  Fails on a decision without
    its step, an unknown outcome, or a ["delayed"] decision — blocking
    schedulers cannot be replayed through the basic-model rules. *)

type finding =
  | Malformed_step of { index : int; step : Dct_txn.Step.t; error : string }
  | Decision_mismatch of {
      index : int;
      step : Dct_txn.Step.t;
      recorded : decision;
      replayed : decision;
    }
  | Illegal_deletion of { index : int; txn : int; reason : string }
      (** deleted transaction absent or not completed *)
  | Unjustified_deletion of {
      index : int;
      deleted : Dct_graph.Intset.t;
      witnesses : (int * int * int) list;
          (** C2's violating [(ti, tj, x)] triples *)
    }
  | Accepted_not_csr of { cycle : Dct_graph.Intset.t }
      (** transactions lying on a conflict cycle of the accepted
          schedule *)

type report = {
  steps : int;  (** decision events replayed *)
  deletions : int;  (** deletion events replayed *)
  deleted_total : int;
  finding : finding option;  (** [None] = the trace is clean *)
}

val audit : ?safety_depth:int -> trace -> report
(** [safety_depth] enables the bounded ground-truth
    {!Dct_deletion.Safety.search} as a final arbiter for deletions that
    fail both condition checks (expensive: keep ≤ 3). *)

val audit_schedule :
  ?safety_depth:int ->
  ?oracle:Dct_graph.Cycle_oracle.backend ->
  policy:Dct_deletion.Policy.t ->
  Dct_txn.Schedule.t ->
  report
(** {!record} then {!audit} — the [dct audit] entry point. *)

val ok : report -> bool

val csr_via_closure : Dct_txn.Schedule.t -> Dct_graph.Intset.t
(** Transactions on a cycle of [CG(S)] (empty iff the schedule is CSR),
    computed with the closure engine rather than a traversal. *)

val pp_decision : Format.formatter -> decision -> unit

val pp_finding :
  ?txn_name:(int -> string) ->
  ?entity_name:(int -> string) ->
  Format.formatter ->
  finding ->
  unit

val pp_report :
  ?txn_name:(int -> string) ->
  ?entity_name:(int -> string) ->
  Format.formatter ->
  report ->
  unit
