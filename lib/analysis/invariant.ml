module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph
module Traversal = Dct_graph.Traversal
module Cycle_oracle = Dct_graph.Cycle_oracle
module Gs = Dct_deletion.Graph_state
module Rules = Dct_deletion.Rules
module Policy = Dct_deletion.Policy
module Step = Dct_txn.Step
module Si = Dct_sched.Scheduler_intf

type violation = { name : string; detail : string }

let violation_names =
  [
    "node-without-record";
    "record-without-node";
    "arc-endpoint-dead";
    "adjacency-mirror";
    "cyclic-graph";
    "completed-not-in-graph";
    "deleted-resurrected";
    "aborted-resurrected";
    "closure-nodes";
    "closure-divergence";
    "stale-current-accessor";
    "internal-state";
  ]

let v name fmt = Printf.ksprintf (fun detail -> { name; detail }) fmt

let check gs =
  let g = Gs.graph gs in
  let nodes = Digraph.nodes g in
  let records = Gs.all_txns gs in
  let out = ref [] in
  let add x = out := x :: !out in
  Intset.iter
    (fun n ->
      if not (Intset.mem n records) then
        add (v "node-without-record" "graph node T%d has no transaction record" n))
    nodes;
  Intset.iter
    (fun n ->
      if not (Intset.mem n nodes) then
        add
          (v "record-without-node" "transaction record T%d is missing from the graph"
             n))
    records;
  Digraph.iter_arcs
    (fun ~src ~dst ->
      if not (Gs.mem_txn gs src) then
        add
          (v "arc-endpoint-dead" "arc T%d -> T%d: source is not a live transaction"
             src dst);
      if not (Gs.mem_txn gs dst) then
        add
          (v "arc-endpoint-dead"
             "arc T%d -> T%d: destination is not a live transaction" src dst))
    g;
  (* Mirror check in slot space: allocation-free row probes instead of
     materialising one succ and one pred Intset per node. *)
  Intset.iter
    (fun n ->
      match Digraph.slot_of g n with
      | None -> ()
      | Some ns ->
          Digraph.iter_succ_slots
            (fun ss ->
              if not (Digraph.mem_pred_slot g ~dst:ss ~src:ns) then
                add
                  (v "adjacency-mirror"
                     "arc T%d -> T%d is in the successor index but not the \
                      predecessor index"
                     n (Digraph.id_of_slot g ss)))
            g ns;
          Digraph.iter_pred_slots
            (fun ps ->
              if not (Digraph.mem_arc_slots g ~src:ps ~dst:ns) then
                add
                  (v "adjacency-mirror"
                     "arc T%d -> T%d is in the predecessor index but not the \
                      successor index"
                     (Digraph.id_of_slot g ps) n))
            g ns)
    nodes;
  if not (Traversal.is_acyclic g) then
    add
      (v "cyclic-graph" "the reduced graph contains a cycle: %s"
         (match Traversal.find_cycle g with
         | Some cyc ->
             String.concat " -> "
               (List.map (Printf.sprintf "T%d") (cyc @ [ List.hd cyc ]))
         | None -> "(vanished?)"));
  Intset.iter
    (fun n ->
      if not (Digraph.mem_node g n) then
        add
          (v "completed-not-in-graph"
             "completed transaction T%d is not a graph node" n))
    (Gs.completed_txns gs);
  Intset.iter
    (fun n ->
      if Intset.mem n nodes then
        add
          (v "deleted-resurrected"
             "T%d was deleted by the reduction but is back in the graph" n))
    (Gs.deleted_txns gs);
  Intset.iter
    (fun n ->
      if Intset.mem n nodes then
        add (v "aborted-resurrected" "T%d was aborted but is back in the graph" n))
    (Gs.aborted_txns gs);
  (match Gs.oracle gs with
  | None -> ()
  | Some o ->
      (* Violation names keep their historical "closure-" spelling: the
         oracle is the generalisation of the maintained closure, and the
         auditor's consumers key on these names. *)
      let onodes = Cycle_oracle.nodes o in
      if not (Intset.equal onodes nodes) then
        add
          (v "closure-nodes"
             "%s oracle nodes %s disagree with graph nodes %s"
             (Cycle_oracle.name o)
             (Format.asprintf "%a" Intset.pp onodes)
             (Format.asprintf "%a" Intset.pp nodes))
      else if not (Cycle_oracle.check_against o g) then
        add
          (v "closure-divergence"
             "maintained %s oracle disagrees with reachability recomputed \
              from the graph"
             (Cycle_oracle.name o)));
  Intset.iter
    (fun e ->
      Intset.iter
        (fun id ->
          if not (Gs.mem_txn gs id) then
            add
              (v "stale-current-accessor"
                 "entity %d lists T%d as a current accessor but it is not live"
                 e id))
        (Gs.current_accessors gs ~entity:e))
    (Gs.entities gs);
  (match Gs.check_invariants gs with
  | Ok () -> ()
  | Error m -> add (v "internal-state" "%s" m));
  List.rev !out

exception Violation of { context : string; violations : violation list }

let () =
  Printexc.register_printer (function
    | Violation { context; violations } ->
        Some
          (Printf.sprintf "Invariant.Violation (%s): %s" context
             (String.concat "; "
                (List.map
                   (fun { name; detail } -> Printf.sprintf "[%s] %s" name detail)
                   violations)))
    | _ -> None)

let check_exn ?(context = "graph state") gs =
  match check gs with
  | [] -> ()
  | violations -> raise (Violation { context; violations })

let checked_apply gs step =
  let outcome = Rules.apply gs step in
  check_exn
    ~context:
      (Format.asprintf "after %s (%a)" (Step.to_string step) Rules.pp_outcome
         outcome)
    gs;
  outcome

let checked_policy_run ?index policy gs =
  let deleted = Policy.run ?index policy gs in
  check_exn
    ~context:
      (Format.asprintf "after policy %s deleted %a" (Policy.name policy)
         Intset.pp deleted)
    gs;
  deleted

let selfcheck_handle ~gs (h : Si.handle) =
  {
    h with
    Si.name = h.Si.name ^ "+selfcheck";
    step =
      (fun s ->
        let o = h.Si.step s in
        check_exn ~context:("after " ^ Step.to_string s) (gs ());
        o);
    drain =
      (fun () ->
        let n = h.Si.drain () in
        check_exn ~context:"after drain" (gs ());
        n);
  }

let pp_violation ppf { name; detail } =
  Format.fprintf ppf "[%s] %s" name detail
