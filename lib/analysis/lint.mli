(** Static diagnostics over schedule files.

    The linter checks the things the schedulers either reject at run
    time with an exception ([Rules.apply] raises on malformed input) or
    silently tolerate but almost certainly indicate a typo in a
    hand-written [.sched] file.  Each finding carries a stable code so
    CI can assert on them:

    - [DCT000] [parse-error] — the line is not a step at all (unknown
      verb, wrong arity, malformed declaration clause);
    - [DCT001] [step-before-begin] — a read/write/finish of a
      transaction that was never begun;
    - [DCT002] [step-after-completion] — a step of a transaction that
      already completed (final write or finish);
    - [DCT003] [transaction-never-completes] — begun but never reaches
      its final write / finish ({e warning}: legal mid-schedule state,
      suspicious in a complete file);
    - [DCT004] [mixed-models] — final-write (basic), multi-write and
      predeclared steps mixed; an {e error} when one transaction mixes
      them, a {e warning} when the schedule does across transactions;
    - [DCT005] [access-outside-declaration] — a predeclared transaction
      touches an entity outside its declared set, or writes an entity
      declared read-only (the predeclared scheduler raises on this);
    - [DCT006] [entity-never-read] — an entity is written but never read
      anywhere in the schedule ({e warning}: dead writes);
    - [DCT007] [duplicate-begin] — BEGIN of an already-active
      transaction;
    - [DCT008] [empty-commit] — a transaction completes having performed
      zero operations ({e warning}: legal — a bare final write commits —
      but usually its steps went to a mistyped name);
    - [DCT009] [read-never-written] — an entity is read somewhere but no
      transaction ever writes it ({e warning}: every such read observes
      the initial version; dual of [DCT006]). *)

type severity = Error | Warning

type finding = {
  code : string;  (** ["DCT001"] ... *)
  severity : severity;
  line : int;  (** 1-based source line *)
  message : string;
}

val code_descriptions : (string * string) list
(** [(code, one-line description)] for every code, in order. *)

val check : env:Dct_txn.Parse.env -> Dct_txn.Parse.located list -> finding list
(** Lint already-parsed steps (no [DCT000] findings).  Findings are
    sorted by line, then code. *)

val lint_string : string -> finding list
(** Parse and lint a whole document.  Unlike {!Dct_txn.Parse.parse},
    a line that fails to parse becomes a [DCT000] finding and linting
    continues on the remaining lines. *)

val lint_file : string -> (finding list, string) result
(** [Error] only for I/O problems; parse errors are findings. *)

val errors : finding list -> finding list
val warnings : finding list -> finding list

val exit_code : ?strict:bool -> finding list -> int
(** CI contract: [0] when clean, [1] when any [Error] finding is present
    (with [~strict:true], when any finding at all is present). *)

val pp_finding : ?file:string -> Format.formatter -> finding -> unit
(** [file:line: severity: message [code]] — compiler style. *)

val render : ?file:string -> finding list -> string
(** Pretty, one finding per line, trailing newline when non-empty. *)

val render_machine : ?file:string -> finding list -> string
(** Stable tab-separated form: [file<TAB>line<TAB>severity<TAB>code<TAB>
    message], one finding per line — for scripts. *)
