(** Executable well-formedness of the scheduler's {!Dct_deletion.Graph_state}.

    The deletion conditions are only meaningful on a state that {e is}
    a reduced graph of the executed schedule; a bug anywhere in the
    rules, the reduction or the closure maintenance silently invalidates
    every later decision.  This module checks the structural invariants
    after the fact:

    - every graph node has a transaction record and vice versa;
    - arc endpoints are live transactions, and the successor/predecessor
      adjacency mirrors agree;
    - the graph is acyclic (it is a {e reduced} graph);
    - completed transactions are graph nodes;
    - transactions removed by the reduction ([deleted]) or by an abort
      never reappear among the nodes;
    - the maintained transitive closure (when present) has the same node
      set as the graph and agrees with reachability recomputed from
      scratch;
    - per-entity current-accessor entries point at live transactions,
      and the internal history/dependency indexes are mutually
      consistent ({!Dct_deletion.Graph_state.check_invariants}). *)

type violation = { name : string; detail : string }
(** [name] is a stable identifier ([cyclic-graph],
    [node-without-record], [deleted-resurrected], ...); [detail] is
    human-readable. *)

val violation_names : string list
(** Every name {!check} can produce. *)

val check : Dct_deletion.Graph_state.t -> violation list
(** Empty on a well-formed state.  Read-only. *)

exception Violation of { context : string; violations : violation list }

val check_exn : ?context:string -> Dct_deletion.Graph_state.t -> unit
(** @raise Violation when {!check} is non-empty. *)

val checked_apply :
  Dct_deletion.Graph_state.t -> Dct_txn.Step.t -> Dct_deletion.Rules.outcome
(** {!Dct_deletion.Rules.apply} followed by {!check_exn} — the
    self-checking scheduler core.
    @raise Violation naming the step as context. *)

val checked_policy_run :
  ?index:Dct_deletion.Deletability_index.t ->
  Dct_deletion.Policy.t ->
  Dct_deletion.Graph_state.t ->
  Dct_graph.Intset.t
(** {!Dct_deletion.Policy.run} followed by {!check_exn}; [index] is
    passed through to the policy. *)

val selfcheck_handle :
  gs:(unit -> Dct_deletion.Graph_state.t) ->
  Dct_sched.Scheduler_intf.handle ->
  Dct_sched.Scheduler_intf.handle
(** Wrap a scheduler handle so every [step] and the final [drain]
    validate the invariants — [dct simulate --selfcheck].  [gs] fetches
    the live graph state of the wrapped scheduler.
    @raise Violation on the first violated step. *)

val pp_violation : Format.formatter -> violation -> unit
