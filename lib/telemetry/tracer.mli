(** The run-wide tracing handle threaded through schedulers, graph
    state, rules and deletion policies.

    Zero-cost when disabled: {!disabled} carries no sink, no metrics
    and no probe, {!event} takes a thunk so disabled runs never build
    the event, and components test {!active}/[probe = None] before
    doing any tracing-only work (witness extraction, candidate
    classification, clock reads).  Enabling tracing must not change a
    single scheduler decision — pinned by the metamorphic suite in
    [test_telemetry.ml]. *)

type t

val disabled : t
(** The inert tracer: everything is a no-op. *)

val create : ?metrics:Metrics.t -> ?sink:Sink.t -> unit -> t
(** An active tracer.  [sink] defaults to {!Sink.null} (useful when
    only the metrics registry is wanted). *)

val active : t -> bool

val event : t -> (unit -> Event.t) -> unit
(** Emit to the sink; the thunk is not evaluated when disabled. *)

val probe : t -> Probe.t option
(** The oracle timing probe: emits {!Event.Oracle_query} and feeds the
    ["oracle.<backend>.<op>"] latency histograms.  [None] when
    disabled — pass it straight to [Dct_graph.Cycle_oracle.create]. *)

val metrics : t -> Metrics.t option
val sink : t -> Sink.t

val incr : ?by:int -> t -> string -> unit
val gauge : t -> string -> int -> unit
val observe : t -> string -> float -> unit
(** Metric helpers; no-ops without a registry. *)

val flush : t -> unit
