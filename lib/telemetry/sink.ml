type t =
  | Null
  | Memory of Buffer.t
  | Channel of out_channel
  | Locked of locked

and locked = { mutex : Mutex.t; inner : t }

let null = Null
let memory buf = Memory buf
let channel oc = Channel oc

let locked = function
  | Null -> Null (* nothing to protect *)
  | Locked _ as t -> t
  | t -> Locked { mutex = Mutex.create (); inner = t }

let rec emit t ev =
  match t with
  | Null -> ()
  | Memory buf ->
      Buffer.add_string buf (Event.to_json ev);
      Buffer.add_char buf '\n'
  | Channel oc ->
      output_string oc (Event.to_json ev);
      output_char oc '\n'
  | Locked { mutex; inner } ->
      Mutex.protect mutex (fun () -> emit inner ev)

let rec flush = function
  | Null | Memory _ -> ()
  | Channel oc -> Stdlib.flush oc
  | Locked { mutex; inner } -> Mutex.protect mutex (fun () -> flush inner)

(* [Event.of_json] reports malformed input as [Error _]; the extra
   [try] is a backstop so a parser defect surfaces as a per-line error
   instead of killing the whole summary. *)
let parse_line line =
  try Event.of_json line with
  | exn -> Error ("parser raised " ^ Printexc.to_string exn)

let parse_string_lenient s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno events errors = function
    | [] -> (List.rev events, List.rev errors)
    | line :: rest ->
        let line = String.trim line in
        if line = "" then go (lineno + 1) events errors rest
        else (
          match parse_line line with
          | Ok ev -> go (lineno + 1) (ev :: events) errors rest
          | Error e -> go (lineno + 1) events ((lineno, e) :: errors) rest)
  in
  go 1 [] [] lines

let parse_string s =
  match parse_string_lenient s with
  | events, [] -> Ok events
  | _, (lineno, e) :: _ -> Error (Printf.sprintf "line %d: %s" lineno e)

let with_file_contents path f =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      f s

let read_file path =
  with_file_contents path (fun s ->
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" path e)
        (parse_string s))

let read_file_lenient path =
  with_file_contents path (fun s -> Ok (parse_string_lenient s))
