type t = Null | Memory of Buffer.t | Channel of out_channel

let null = Null
let memory buf = Memory buf
let channel oc = Channel oc

let emit t ev =
  match t with
  | Null -> ()
  | Memory buf ->
      Buffer.add_string buf (Event.to_json ev);
      Buffer.add_char buf '\n'
  | Channel oc ->
      output_string oc (Event.to_json ev);
      output_char oc '\n'

let flush = function
  | Null | Memory _ -> ()
  | Channel oc -> Stdlib.flush oc

let parse_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" then go (lineno + 1) acc rest
        else (
          match Event.of_json line with
          | Ok ev -> go (lineno + 1) (ev :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 [] lines

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" path e)
        (parse_string s)
