(** The typed event vocabulary of a scheduler run.

    One trace line per observable decision, serialized as one JSON
    object per line (JSONL).  The vocabulary is deliberately flat —
    ints, strings and int lists only — so the telemetry layer sits
    {e below} the graph/transaction libraries and every layer above can
    emit into it.  Steps are carried as a neutral {!step} record;
    [Dct_txn.Step.to_telemetry] / [of_telemetry] convert losslessly.

    [to_json] and [of_json] round-trip: for every event [e],
    [of_json (to_json e) = Ok e] (tested in [test_telemetry.ml]). *)

type step = {
  kind : string;  (** begin | begin_declared | read | write | write_one | finish *)
  txn : int;
  reads : int list;
  writes : int list;
}

type stats_snapshot = {
  at_step : int;
  resident_txns : int;
  resident_arcs : int;
  active_txns : int;
  committed : int;
  aborted : int;
  deleted : int;
  delayed : int;
  resident_bytes : int;
      (** resident graph-substrate bytes at the checkpoint; [0] when the
          producer predates the gauge (tolerated on decode) *)
}

type t =
  | Step_submitted of { index : int; step : step }
      (** A step entered a scheduler; [index] is the scheduler's 1-based
          step counter. *)
  | Decision of { index : int; txn : int; outcome : string; reason : string }
      (** The scheduler's verdict on step [index].  [outcome] is the
          rendering of {!Dct_sched.Scheduler_intf.pp_outcome}; [reason]
          is empty for plain accepts. *)
  | Deletion_attempted of { policy : string; candidates : int list }
      (** The deletion policy examined [candidates] (completed,
          present). *)
  | Deletion_ok of { policy : string; deleted : int list }
      (** The policy removed [deleted] via the reduction D(G, T). *)
  | Deletion_blocked of { policy : string; txn : int; condition : string }
      (** [txn] was a candidate but the named condition (c1, c2-max,
          c3, c4, noncurrent) refused it. *)
  | Oracle_query of { op : string; backend : string; ns : float }
      (** One timed cycle-oracle operation.  Under the [Checked]
          backend each sub-backend reports separately, so checked runs
          carry closure + topo samples per query. *)
  | Cycle_rejected of { txn : int; witness : int list }
      (** A step of [txn] was refused because its arcs would close a
          cycle; [witness] is a path proving it (empty if not
          computed). *)
  | Restart of { txn : int; attempt : int }
      (** The restart harness re-enqueued original transaction [txn]
          for its [attempt]-th execution. *)
  | Checkpoint_stats of stats_snapshot
      (** Periodic residency/throughput snapshot from the driver. *)

val equal : t -> t -> bool

val kind : t -> string
(** The JSONL ["ev"] tag of the event. *)

val to_json : t -> string
(** One line, no trailing newline. *)

val of_json : string -> (t, string) result

val pp : Format.formatter -> t -> unit
