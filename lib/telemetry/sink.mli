(** Where emitted events go: nowhere, an in-memory buffer (tests), or
    an output channel (the [--trace out.jsonl] file).  One JSON line
    per event; {!parse_string}/{!read_file} invert the encoding,
    skipping blank lines and failing loudly on the first malformed
    one. *)

type t = Null | Memory of Buffer.t | Channel of out_channel

val null : t
val memory : Buffer.t -> t
val channel : out_channel -> t

val emit : t -> Event.t -> unit
val flush : t -> unit

val parse_string : string -> (Event.t list, string) result
(** Parse a JSONL document; errors carry the 1-based line number. *)

val read_file : string -> (Event.t list, string) result
