(** Where emitted events go: nowhere, an in-memory buffer (tests), or
    an output channel (the [--trace out.jsonl] file).  One JSON line
    per event; {!parse_string}/{!read_file} invert the encoding,
    skipping blank lines and failing loudly on the first malformed
    one. *)

type t =
  | Null
  | Memory of Buffer.t
  | Channel of out_channel
  | Locked of locked
      (** Mutex-serialized wrapper: whole JSONL lines, never interleaved
          mid-record — required whenever more than one domain can emit
          (e.g. [dct serve --trace --domains N>1]). *)

and locked = { mutex : Mutex.t; inner : t }

val null : t
val memory : Buffer.t -> t
val channel : out_channel -> t

val locked : t -> t
(** Wrap a sink so concurrent {!emit}s from multiple domains serialize
    on a mutex (one full event line at a time).  Idempotent; [Null]
    stays [Null].  {!flush} takes the same lock. *)

val emit : t -> Event.t -> unit
val flush : t -> unit

val parse_string : string -> (Event.t list, string) result
(** Parse a JSONL document; errors carry the 1-based line number. *)

val read_file : string -> (Event.t list, string) result

val parse_string_lenient : string -> Event.t list * (int * string) list
(** Like {!parse_string} but collect {e every} malformed line as a
    [(1-based line number, message)] pair instead of stopping at the
    first — the shape a trace summarizer wants for truncated or
    corrupted files.  Blank lines are still skipped; an event parser
    that raises is caught and reported as that line's error. *)

val read_file_lenient : string -> (Event.t list * (int * string) list, string) result
(** {!parse_string_lenient} over a file; [Error] only for I/O failures
    (unreadable path), never for malformed content. *)
