(** Where emitted events go: nowhere, an in-memory buffer (tests), or
    an output channel (the [--trace out.jsonl] file).  One JSON line
    per event; {!parse_string}/{!read_file} invert the encoding,
    skipping blank lines and failing loudly on the first malformed
    one. *)

type t = Null | Memory of Buffer.t | Channel of out_channel

val null : t
val memory : Buffer.t -> t
val channel : out_channel -> t

val emit : t -> Event.t -> unit
val flush : t -> unit

val parse_string : string -> (Event.t list, string) result
(** Parse a JSONL document; errors carry the 1-based line number. *)

val read_file : string -> (Event.t list, string) result

val parse_string_lenient : string -> Event.t list * (int * string) list
(** Like {!parse_string} but collect {e every} malformed line as a
    [(1-based line number, message)] pair instead of stopping at the
    first — the shape a trace summarizer wants for truncated or
    corrupted files.  Blank lines are still skipped; an event parser
    that raises is caught and reported as that line's error. *)

val read_file_lenient : string -> (Event.t list * (int * string) list, string) result
(** {!parse_string_lenient} over a file; [Error] only for I/O failures
    (unreadable path), never for malformed content. *)
