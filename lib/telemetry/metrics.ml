type gauge = { mutable value : int; mutable hwm : int }

type histo = {
  mutable n : int;
  mutable sum : float;
  counts : int array; (* one slot per bound, + overflow at the end *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histos : (string, histo) Hashtbl.t;
}

(* Fixed bucket upper bounds, shared by every histogram so runs and
   backends are directly comparable.  Tuned for latencies in
   nanoseconds (250ns .. 10ms); the clock resolution is 1us, so the
   bottom buckets collect the "too fast to measure" mass. *)
let bounds =
  [|
    250.; 500.; 1e3; 2.5e3; 5e3; 1e4; 2.5e4; 5e4; 1e5; 2.5e5; 5e5; 1e6; 2.5e6;
    5e6; 1e7;
  |]

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histos = Hashtbl.create 16;
  }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some g ->
      g.value <- v;
      if v > g.hwm then g.hwm <- v
  | None -> Hashtbl.replace t.gauges name { value = v; hwm = v }

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some g -> g.value | None -> 0

let high_water t name =
  match Hashtbl.find_opt t.gauges name with Some g -> g.hwm | None -> 0

let observe t name v =
  let h =
    match Hashtbl.find_opt t.histos name with
    | Some h -> h
    | None ->
        let h = { n = 0; sum = 0.0; counts = Array.make (Array.length bounds + 1) 0 } in
        Hashtbl.replace t.histos name h;
        h
  in
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  let rec slot i =
    if i >= Array.length bounds then Array.length bounds
    else if v <= bounds.(i) then i
    else slot (i + 1)
  in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1

let histo_count t name =
  match Hashtbl.find_opt t.histos name with Some h -> h.n | None -> 0

let histo_mean t name =
  match Hashtbl.find_opt t.histos name with
  | Some h when h.n > 0 -> h.sum /. float_of_int h.n
  | Some _ | None -> 0.0

(* Nearest-rank percentile over the fixed buckets: the answer is the
   upper bound of the bucket holding the rank-th sample (the lower
   bound of the overflow bucket) — an upper estimate within one bucket
   width.  Mirrors Dct_sim.Metrics.percentile's conventions: 0 on an
   empty histogram, p clamped to [0, 100]. *)
let histo_percentile t name p =
  match Hashtbl.find_opt t.histos name with
  | None -> 0.0
  | Some h when h.n = 0 -> 0.0
  | Some h ->
      let p = Float.min 100.0 (Float.max 0.0 p) in
      let rank =
        max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int h.n)))
      in
      let rec go i seen =
        if i >= Array.length h.counts then bounds.(Array.length bounds - 1)
        else
          let seen = seen + h.counts.(i) in
          if seen >= rank then
            if i < Array.length bounds then bounds.(i)
            else bounds.(Array.length bounds - 1)
          else go (i + 1) seen
      in
      go 0 0

let histo_buckets t name =
  match Hashtbl.find_opt t.histos name with
  | None -> []
  | Some h ->
      List.init
        (Array.length h.counts)
        (fun i ->
          ( (if i < Array.length bounds then bounds.(i) else infinity),
            h.counts.(i) ))

(* Fold a per-domain registry into an aggregate one.  Counters and
   histogram buckets are additive; gauges keep the maximum of both
   values and both high-water marks (a per-domain gauge is a residency
   sample, and the merged registry answers "how high did any domain
   get"). *)
let merge ~into src =
  Hashtbl.iter
    (fun name r ->
      match Hashtbl.find_opt into.counters name with
      | Some dst -> dst := !dst + !r
      | None -> Hashtbl.replace into.counters name (ref !r))
    src.counters;
  Hashtbl.iter
    (fun name (g : gauge) ->
      match Hashtbl.find_opt into.gauges name with
      | Some dst ->
          dst.value <- max dst.value g.value;
          dst.hwm <- max dst.hwm g.hwm
      | None -> Hashtbl.replace into.gauges name { value = g.value; hwm = g.hwm })
    src.gauges;
  Hashtbl.iter
    (fun name (h : histo) ->
      match Hashtbl.find_opt into.histos name with
      | Some dst ->
          dst.n <- dst.n + h.n;
          dst.sum <- dst.sum +. h.sum;
          Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) h.counts
      | None ->
          Hashtbl.replace into.histos name
            { n = h.n; sum = h.sum; counts = Array.copy h.counts })
    src.histos

let sorted_keys tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let counters t = List.map (fun k -> (k, counter t k)) (sorted_keys t.counters)

let gauges t =
  List.map
    (fun k ->
      let g = Hashtbl.find t.gauges k in
      (k, g.value, g.hwm))
    (sorted_keys t.gauges)

let histos t = sorted_keys t.histos

let is_empty t =
  Hashtbl.length t.counters = 0
  && Hashtbl.length t.gauges = 0
  && Hashtbl.length t.histos = 0

let fmt_ns ns =
  if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let render t =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  if counters t <> [] then begin
    line "counters:";
    List.iter (fun (k, v) -> line "  %-44s %10d" k v) (counters t)
  end;
  if gauges t <> [] then begin
    line "gauges (last / high-water):";
    List.iter (fun (k, v, hwm) -> line "  %-44s %6d / %d" k v hwm) (gauges t)
  end;
  if histos t <> [] then begin
    line "histograms (n, mean, ~p50, ~p99):";
    List.iter
      (fun k ->
        line "  %-44s %8d  %10s %10s %10s" k (histo_count t k)
          (fmt_ns (histo_mean t k))
          (fmt_ns (histo_percentile t k 50.0))
          (fmt_ns (histo_percentile t k 99.0)))
      (histos t)
  end;
  Buffer.contents buf

let to_json t =
  let counters =
    List.map (fun (k, v) -> Printf.sprintf "%S:%d" k v) (counters t)
  in
  let gauges =
    List.map
      (fun (k, v, hwm) -> Printf.sprintf "%S:{\"value\":%d,\"hwm\":%d}" k v hwm)
      (gauges t)
  in
  let histos =
    List.map
      (fun k ->
        Printf.sprintf "%S:{\"n\":%d,\"mean_ns\":%.3f,\"p50_ns\":%.1f,\"p99_ns\":%.1f}"
          k (histo_count t k) (histo_mean t k)
          (histo_percentile t k 50.0)
          (histo_percentile t k 99.0))
      (histos t)
  in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}"
    (String.concat "," counters)
    (String.concat "," gauges)
    (String.concat "," histos)
