(** The metrics registry: named counters, gauges with high-water marks,
    and fixed-bucket latency histograms.

    This complements the list-based summary helpers in
    [Dct_sim.Metrics]: those compute exact statistics over a fully
    materialized sample, this registry aggregates online in O(1) memory
    per instrument — the right shape for million-step runs.  Histogram
    buckets are {e fixed} (shared exponential nanosecond bounds, see
    {!bounds}) so histograms from different runs and backends can be
    compared and merged line by line.

    Naming convention used by the instrumentation:
    ["outcome.<outcome>"], ["deletion.<policy>.{deleted,blocked,attempted}"],
    ["oracle.<backend>.<op>"] (histograms, nanoseconds),
    ["resident_txns"]/["resident_arcs"] (gauges; the high-water mark is
    the residency peak the paper's experiments compare). *)

type t

val create : unit -> t
val is_empty : t -> bool

(** {1 Counters} *)

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int
(** 0 for a counter never incremented. *)

(** {1 Gauges} *)

val gauge : t -> string -> int -> unit
(** Set the current value; the high-water mark tracks the maximum ever
    set. *)

val gauge_value : t -> string -> int
val high_water : t -> string -> int

(** {1 Histograms} *)

val bounds : float array
(** The shared bucket upper bounds (nanoseconds), smallest first; an
    implicit overflow bucket follows the last bound. *)

val observe : t -> string -> float -> unit
val histo_count : t -> string -> int
val histo_mean : t -> string -> float

val histo_percentile : t -> string -> float -> float
(** Nearest-rank percentile resolved to the containing bucket's upper
    bound — an upper estimate within one bucket width.  0 on an empty
    or absent histogram; [p] clamped to [0, 100]. *)

val histo_buckets : t -> string -> (float * int) list
(** [(upper_bound, count)] pairs, overflow bucket last with bound
    [infinity]. *)

(** {1 Merging} *)

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters and histogram buckets add, gauges
    keep the max of both values and both high-water marks.  The shape
    the parallel engine needs — each shard domain aggregates into its
    own registry (no cross-domain mutation), and the coordinator merges
    them at join.  The fixed shared {!bounds} are what make histogram
    merging exact. *)

(** {1 Reporting} *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * int * int) list
(** [(name, value, high_water)], sorted by name. *)

val histos : t -> string list

val render : t -> string
(** Human-readable multi-line summary. *)

val to_json : t -> string
