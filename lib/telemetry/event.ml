type step = { kind : string; txn : int; reads : int list; writes : int list }

type stats_snapshot = {
  at_step : int;
  resident_txns : int;
  resident_arcs : int;
  active_txns : int;
  committed : int;
  aborted : int;
  deleted : int;
  delayed : int;
  resident_bytes : int;
}

type t =
  | Step_submitted of { index : int; step : step }
  | Decision of { index : int; txn : int; outcome : string; reason : string }
  | Deletion_attempted of { policy : string; candidates : int list }
  | Deletion_ok of { policy : string; deleted : int list }
  | Deletion_blocked of { policy : string; txn : int; condition : string }
  | Oracle_query of { op : string; backend : string; ns : float }
  | Cycle_rejected of { txn : int; witness : int list }
  | Restart of { txn : int; attempt : int }
  | Checkpoint_stats of stats_snapshot

let equal (a : t) (b : t) = a = b

(* --- encoding ----------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let ints xs = "[" ^ String.concat "," (List.map string_of_int xs) ^ "]"

let to_json = function
  | Step_submitted { index; step } ->
      Printf.sprintf
        "{\"ev\":\"step\",\"i\":%d,\"kind\":\"%s\",\"txn\":%d,\"reads\":%s,\"writes\":%s}"
        index (escape step.kind) step.txn (ints step.reads) (ints step.writes)
  | Decision { index; txn; outcome; reason } ->
      Printf.sprintf
        "{\"ev\":\"decision\",\"i\":%d,\"txn\":%d,\"outcome\":\"%s\",\"reason\":\"%s\"}"
        index txn (escape outcome) (escape reason)
  | Deletion_attempted { policy; candidates } ->
      Printf.sprintf
        "{\"ev\":\"del_attempt\",\"policy\":\"%s\",\"candidates\":%s}"
        (escape policy) (ints candidates)
  | Deletion_ok { policy; deleted } ->
      Printf.sprintf "{\"ev\":\"del_ok\",\"policy\":\"%s\",\"deleted\":%s}"
        (escape policy) (ints deleted)
  | Deletion_blocked { policy; txn; condition } ->
      Printf.sprintf
        "{\"ev\":\"del_blocked\",\"policy\":\"%s\",\"txn\":%d,\"condition\":\"%s\"}"
        (escape policy) txn (escape condition)
  | Oracle_query { op; backend; ns } ->
      Printf.sprintf
        "{\"ev\":\"oracle\",\"op\":\"%s\",\"backend\":\"%s\",\"ns\":%.3f}"
        (escape op) (escape backend) ns
  | Cycle_rejected { txn; witness } ->
      Printf.sprintf "{\"ev\":\"cycle_rejected\",\"txn\":%d,\"witness\":%s}"
        txn (ints witness)
  | Restart { txn; attempt } ->
      Printf.sprintf "{\"ev\":\"restart\",\"txn\":%d,\"attempt\":%d}" txn
        attempt
  | Checkpoint_stats s ->
      Printf.sprintf
        "{\"ev\":\"checkpoint\",\"i\":%d,\"resident_txns\":%d,\"resident_arcs\":%d,\"active_txns\":%d,\"committed\":%d,\"aborted\":%d,\"deleted\":%d,\"delayed\":%d,\"resident_bytes\":%d}"
        s.at_step s.resident_txns s.resident_arcs s.active_txns s.committed
        s.aborted s.deleted s.delayed s.resident_bytes

(* --- decoding ----------------------------------------------------- *)

(* A hand-rolled parser for exactly the flat objects [to_json] emits:
   string, integer, float and integer-list values.  No dependency on a
   JSON library (none is vendored); anything outside that grammar is an
   error, which for a trace file is the right strictness. *)

type field = Fint of int | Ffloat of float | Fstr of string | Fints of int list

exception Bad of string

let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> bad "expected %c, found %c at %d" c c' !pos
    | None -> bad "expected %c, found end of line" c
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> bad "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then bad "truncated \\u escape";
              let hex = String.sub line !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some c when c < 0x80 -> Buffer.add_char buf (Char.chr c)
              | _ -> bad "unsupported \\u escape %S" hex);
              go ()
          | _ -> bad "bad escape")
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      advance ()
    done;
    let tok = String.sub line start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Fint i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Ffloat f
        | None -> bad "bad number %S" tok)
  in
  let parse_int_list () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin advance (); [] end
    else begin
      let out = ref [] in
      let rec go () =
        skip_ws ();
        (match parse_number () with
        | Fint i -> out := i :: !out
        | Ffloat _ -> bad "float in integer list"
        | _ -> assert false);
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); go ()
        | Some ']' -> advance ()
        | _ -> bad "expected , or ] in list"
      in
      go ();
      List.rev !out
    end
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Fstr (parse_string ())
    | Some '[' -> Fints (parse_int_list ())
    | Some _ -> parse_number ()
    | None -> bad "expected a value"
  in
  expect '{';
  skip_ws ();
  let fields = ref [] in
  if peek () = Some '}' then advance ()
  else begin
    let rec go () =
      skip_ws ();
      let key = parse_string () in
      expect ':';
      let v = parse_value () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' -> advance (); go ()
      | Some '}' -> advance ()
      | _ -> bad "expected , or }"
    in
    go ()
  end;
  skip_ws ();
  if !pos <> n then bad "trailing garbage at %d" !pos;
  List.rev !fields

let geti fields key =
  match List.assoc_opt key fields with
  | Some (Fint i) -> i
  | Some _ -> raise (Bad (Printf.sprintf "field %S is not an integer" key))
  | None -> raise (Bad (Printf.sprintf "missing field %S" key))

let geti_default d fields key =
  match List.assoc_opt key fields with
  | Some (Fint i) -> i
  | Some _ -> raise (Bad (Printf.sprintf "field %S is not an integer" key))
  | None -> d

let getf fields key =
  match List.assoc_opt key fields with
  | Some (Ffloat f) -> f
  | Some (Fint i) -> float_of_int i
  | Some _ -> raise (Bad (Printf.sprintf "field %S is not a number" key))
  | None -> raise (Bad (Printf.sprintf "missing field %S" key))

let gets fields key =
  match List.assoc_opt key fields with
  | Some (Fstr s) -> s
  | Some _ -> raise (Bad (Printf.sprintf "field %S is not a string" key))
  | None -> raise (Bad (Printf.sprintf "missing field %S" key))

let getl fields key =
  match List.assoc_opt key fields with
  | Some (Fints l) -> l
  | Some _ -> raise (Bad (Printf.sprintf "field %S is not an int list" key))
  | None -> raise (Bad (Printf.sprintf "missing field %S" key))

let of_json line =
  match
    let fields = parse_fields line in
    match gets fields "ev" with
    | "step" ->
        Step_submitted
          {
            index = geti fields "i";
            step =
              {
                kind = gets fields "kind";
                txn = geti fields "txn";
                reads = getl fields "reads";
                writes = getl fields "writes";
              };
          }
    | "decision" ->
        Decision
          {
            index = geti fields "i";
            txn = geti fields "txn";
            outcome = gets fields "outcome";
            reason = gets fields "reason";
          }
    | "del_attempt" ->
        Deletion_attempted
          { policy = gets fields "policy"; candidates = getl fields "candidates" }
    | "del_ok" ->
        Deletion_ok
          { policy = gets fields "policy"; deleted = getl fields "deleted" }
    | "del_blocked" ->
        Deletion_blocked
          {
            policy = gets fields "policy";
            txn = geti fields "txn";
            condition = gets fields "condition";
          }
    | "oracle" ->
        Oracle_query
          {
            op = gets fields "op";
            backend = gets fields "backend";
            ns = getf fields "ns";
          }
    | "cycle_rejected" ->
        Cycle_rejected { txn = geti fields "txn"; witness = getl fields "witness" }
    | "restart" ->
        Restart { txn = geti fields "txn"; attempt = geti fields "attempt" }
    | "checkpoint" ->
        Checkpoint_stats
          {
            at_step = geti fields "i";
            resident_txns = geti fields "resident_txns";
            resident_arcs = geti fields "resident_arcs";
            active_txns = geti fields "active_txns";
            committed = geti fields "committed";
            aborted = geti fields "aborted";
            deleted = geti fields "deleted";
            delayed = geti fields "delayed";
            (* absent in pre-gauge traces: decode as 0 so the pinned
               corpus keeps parsing *)
            resident_bytes = geti_default 0 fields "resident_bytes";
          }
    | other -> raise (Bad (Printf.sprintf "unknown event kind %S" other))
  with
  | ev -> Ok ev
  | exception Bad m -> Error m

let kind = function
  | Step_submitted _ -> "step"
  | Decision _ -> "decision"
  | Deletion_attempted _ -> "del_attempt"
  | Deletion_ok _ -> "del_ok"
  | Deletion_blocked _ -> "del_blocked"
  | Oracle_query _ -> "oracle"
  | Cycle_rejected _ -> "cycle_rejected"
  | Restart _ -> "restart"
  | Checkpoint_stats _ -> "checkpoint"

let pp ppf e = Format.pp_print_string ppf (to_json e)
