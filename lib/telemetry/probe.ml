type t = { observe : op:string -> backend:string -> ns:float -> unit }

let now_ns () = Unix.gettimeofday () *. 1e9

let observe t ~op ~backend ~ns = t.observe ~op ~backend ~ns

let make observe = { observe }

let obs probe ~op ~backend f =
  match probe with
  | None -> f ()
  | Some p ->
      let t0 = now_ns () in
      let r = f () in
      p.observe ~op ~backend ~ns:(now_ns () -. t0);
      r
