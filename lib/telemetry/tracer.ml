type t = {
  active : bool;
  sink : Sink.t;
  metrics : Metrics.t option;
  probe : Probe.t option;
}

let disabled = { active = false; sink = Sink.Null; metrics = None; probe = None }

let create ?metrics ?(sink = Sink.Null) () =
  let probe =
    Probe.make (fun ~op ~backend ~ns ->
        Sink.emit sink (Event.Oracle_query { op; backend; ns });
        match metrics with
        | Some m -> Metrics.observe m (Printf.sprintf "oracle.%s.%s" backend op) ns
        | None -> ())
  in
  { active = true; sink; metrics; probe = Some probe }

let active t = t.active
let metrics t = t.metrics
let probe t = t.probe
let sink t = t.sink

let event t f = if t.active then Sink.emit t.sink (f ())

let incr ?by t name =
  match t.metrics with Some m -> Metrics.incr ?by m name | None -> ()

let gauge t name v =
  match t.metrics with Some m -> Metrics.gauge m name v | None -> ()

let observe t name v =
  match t.metrics with Some m -> Metrics.observe m name v | None -> ()

let flush t = Sink.flush t.sink
