(** Timing probes: the hook a measured component (a cycle-detection
    backend, a DFS fallback) calls around each query so the tracer can
    attribute oracle time per operation and per backend.

    The probe is deliberately the thinnest possible interface — one
    callback — so [Dct_graph] can be probed without depending on the
    event or metrics machinery.  {!Tracer.probe} builds the standard
    probe that emits {!Event.Oracle_query} and feeds the
    ["oracle.<backend>.<op>"] latency histograms.

    Clock: {!now_ns} is [Unix.gettimeofday], i.e. wall-clock with
    microsecond resolution reported in nanoseconds.  Sub-microsecond
    queries therefore record as 0 ns and land in the lowest histogram
    bucket; percentiles remain meaningful for the expensive tail, which
    is what the oracle sweeps compare. *)

type t = { observe : op:string -> backend:string -> ns:float -> unit }

val make : (op:string -> backend:string -> ns:float -> unit) -> t
val observe : t -> op:string -> backend:string -> ns:float -> unit

val now_ns : unit -> float
(** Wall-clock timestamp in nanoseconds (microsecond resolution). *)

val obs : t option -> op:string -> backend:string -> (unit -> 'a) -> 'a
(** [obs probe ~op ~backend f] runs [f ()]; when a probe is present the
    call is timed and reported.  With [None] no clock is read. *)
