(** The wire protocol: requests carrying basic-model transaction steps
    plus control operations, responses carrying per-step outcomes.

    Two dialects share one request/response vocabulary:

    - {e binary} (the default): a 4-byte big-endian payload-length
      prefix, then a tagged payload of fixed-width big-endian fields.
      [max_frame] is far below 2^24, so a valid binary frame always
      starts with a zero byte.
    - {e line} (debug): one newline-terminated ASCII line per frame,
      e.g. [read 7 42] / [outcome 12 accepted] — speakable through
      [nc -U].

    Servers sniff the dialect from a connection's first byte (zero →
    binary, printable → line) and answer in kind.

    Decoding never raises: every malformed input maps to a typed
    {!error}.  {!error.Truncated} specifically means "valid prefix,
    need more bytes" — stream readers retry it after a refill; all
    other errors are fatal for the connection. *)

type dialect = Binary | Line

val dialect_name : dialect -> string

type request =
  | Begin of int
  | Read of int * int  (** transaction, entity *)
  | Write of int * int list
      (** the basic model's final atomic write: completes (and, reads
          being clean, commits) the transaction *)
  | Complete of int  (** read-only completion, i.e. [Write (t, [])] *)
  | Abort of int  (** client-initiated abort (control: not a step) *)
  | Stats  (** server counters snapshot (control: not a step) *)

type response =
  | Outcome of { step : int; outcome : Dct_sched.Scheduler_intf.outcome }
      (** decision for one submitted step; [step] is the server's
          1-based global step index *)
  | Abort_reply of bool
  | Stats_reply of (string * int) list
  | Error_reply of string  (** protocol error; the server then closes *)

type error =
  | Closed  (** peer closed at a frame boundary *)
  | Truncated
      (** frame ends mid-field: EOF mid-frame from a stream reader, or
          a valid-prefix-needs-more-bytes from a string decoder *)
  | Oversized of int  (** declared length exceeds {!max_frame} *)
  | Bad_tag of int
  | Malformed of string

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val max_frame : int
(** Maximum payload bytes per frame (1 MiB). *)

(** {1 Pure codecs}

    [encode_*] produce a complete frame (length prefix / trailing
    newline included).  [decode_*] consume exactly one frame starting
    at [pos] and return the value and the position one past the frame's
    end. *)

val encode_request : dialect -> request -> string
val encode_response : dialect -> response -> string
val decode_request : dialect -> string -> pos:int -> (request * int, error) result
val decode_response : dialect -> string -> pos:int -> (response * int, error) result

(** {1 Buffered frame IO over a file descriptor} *)

module Io : sig
  type t

  val of_fd : Unix.file_descr -> t
  val fd : t -> Unix.file_descr

  val sniff_dialect : t -> (dialect, error) result
  (** Peek the first byte without consuming it. *)

  val read_request : t -> dialect -> (request, error) result
  val read_response : t -> dialect -> (response, error) result
  (** Blocking; [Error Closed] on clean EOF, [Error Truncated] on EOF
      mid-frame. *)

  val write : t -> string -> unit
  (** Write the whole string (handles short writes). *)
end
