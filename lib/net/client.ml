module Step = Dct_txn.Step

type t = {
  io : Wire.Io.t;
  dialect : Wire.dialect;
  mutable in_flight : int;  (** step requests sent, outcomes not yet read *)
}

let connect ?(dialect = Wire.Binary) addr =
  { io = Wire.Io.of_fd (Addr.connect addr); dialect; in_flight = 0 }

let close t = try Unix.close (Wire.Io.fd t.io) with Unix.Unix_error _ -> ()
let in_flight t = t.in_flight

let is_step = function
  | Wire.Begin _ | Wire.Read _ | Wire.Write _ | Wire.Complete _ -> true
  | Wire.Abort _ | Wire.Stats -> false

let send t req =
  Wire.Io.write t.io (Wire.encode_request t.dialect req);
  if is_step req then t.in_flight <- t.in_flight + 1

let recv t =
  let r = Wire.Io.read_response t.io t.dialect in
  (match r with
  | Ok (Wire.Outcome _) -> t.in_flight <- t.in_flight - 1
  | _ -> ());
  r

let call t req =
  send t req;
  recv t

let request_of_step = function
  | Step.Begin txn -> Wire.Begin txn
  | Step.Read (txn, e) -> Wire.Read (txn, e)
  | Step.Write (txn, []) -> Wire.Complete txn
  | Step.Write (txn, es) -> Wire.Write (txn, es)
  | (Step.Begin_declared _ | Step.Write_one _ | Step.Finish _) as s ->
      invalid_arg
        ("Client.request_of_step: not a basic-model step: " ^ Step.to_string s)

(* Pipelined feeding: keep up to [window] step outcomes outstanding.
   The window bounds what the server can have queued for us in socket
   buffers — outcome frames are small, so a modest window can never
   deadlock a blocked-on-write server against a not-reading client —
   while still letting the server see full admission batches. *)
let run_steps ?(window = 64) t steps ~on_outcome =
  let drain_one () =
    match recv t with
    | Ok (Wire.Outcome { step; outcome }) -> on_outcome step outcome
    | Ok r ->
        failwith
          ("Client.run_steps: unexpected response "
          ^ Wire.(match r with Error_reply m -> "error: " ^ m | _ -> "non-outcome"))
    | Error e -> failwith ("Client.run_steps: " ^ Wire.error_to_string e)
  in
  List.iter
    (fun s ->
      send t (request_of_step s);
      while t.in_flight >= window do
        drain_one ()
      done)
    steps;
  while t.in_flight > 0 do
    drain_one ()
  done
