(** The socket server: concurrent clients feeding one engine through
    the batched admission queue, per-step outcomes routed back to the
    issuing client.

    Threading model (see [docs/net.md]):

    - one accept thread, one handler thread per connection, and an
      optional group-commit ticker that flushes the pending partial
      admission batch every [flush_ms] milliseconds;
    - a single mutex serializes every engine access (the engine is not
      thread-safe; decisions stay coordinator-sequential by design —
      concurrency buys pipelining of parsing/IO, not of deciding);
    - outcomes are routed by a FIFO of issuing clients: each submit
      pushes the client under the lock, and the engine's per-decision
      callback pops one per decided step — admission preserves
      submission order, so the two queues stay aligned;
    - control requests ([Abort]/[Stats]) tick the engine before
      answering, so each client's responses arrive in issue order;
    - a disconnecting client's begun-but-incomplete transactions are
      aborted (they would otherwise pin deletability forever); a
      protocol violation gets a typed [Error_reply] and only that
      connection is dropped. *)

type t

val create :
  ?flush_ms:int ->
  backend:(on_step:Backend.on_step -> Backend.t) ->
  Addr.t ->
  t
(** Listen on [addr] (not yet accepting — see {!start}) and build the
    backend around the server's outcome router.  [flush_ms] (default
    20) is the group-commit flush interval; [<= 0] disables the ticker
    — then batches flush only when full or on control requests, which
    is what the loopback differential uses to keep batch cadence
    deterministic. *)

val addr : t -> Addr.t
(** The address actually bound (with [Tcp (_, 0)] it carries the
    kernel-chosen port). *)

val backend : t -> Backend.t
val connections : t -> int
val proto_errors : t -> int

val start : t -> unit
val stop : t -> unit
(** Stop accepting, wake and join every handler thread, remove a Unix
    socket path.  Idempotent. *)

val finish : t -> wall_seconds:float -> Dct_engine.Engine.report
(** Run the backend's end-of-input epilogue (final GC rounds, tracer
    flush) and report.  Call once, after {!stop} or after all clients
    have drained.
    @raise Dct_engine.Parallel.Shard_failure if a parallel shard
    applier died. *)
