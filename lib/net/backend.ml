module Engine = Dct_engine.Engine
module Parallel = Dct_engine.Parallel
module Step = Dct_txn.Step
module Sched = Dct_sched.Scheduler_intf

type on_step = int -> Step.t -> Sched.outcome -> unit

type t = {
  b_name : string;
  b_submit : Step.t -> unit;
  b_tick : unit -> unit;
  b_abort : int -> bool;
  b_pending : unit -> int;
  b_stats : unit -> (string * int) list;
  b_finish : wall_seconds:float -> Engine.report;
}

let name t = t.b_name
let submit t s = t.b_submit s
let tick t = t.b_tick ()
let abort t txn = t.b_abort txn
let pending t = t.b_pending ()
let stats t = t.b_stats ()
let finish t ~wall_seconds = t.b_finish ~wall_seconds

let seq ~on_step cfg =
  let eng = Engine.create cfg in
  Engine.set_on_step eng (Some on_step);
  {
    b_name = "seq";
    b_submit = Engine.submit eng;
    b_tick = (fun () -> Engine.tick eng);
    b_abort = Engine.abort eng;
    b_pending = (fun () -> Engine.pending eng);
    b_stats =
      (fun () ->
        [
          ("steps", Engine.steps_processed eng);
          ("pending", Engine.pending eng);
          ("shards", Engine.shard_count eng);
          ( "resident",
            Array.fold_left ( + ) 0 (Engine.shard_residents eng) );
        ]);
    b_finish = (fun ~wall_seconds -> Engine.finish eng ~wall_seconds);
  }

let parallel ?mode ~on_step cfg =
  let h = Parallel.create_handle ?mode ~on_decision:on_step cfg in
  let mode_name =
    Parallel.mode_name (Option.value mode ~default:Parallel.Domains)
  in
  {
    b_name = "par-" ^ mode_name;
    b_submit = Parallel.submit h;
    b_tick = (fun () -> Parallel.tick h);
    b_abort = Parallel.abort h;
    b_pending = (fun () -> Parallel.pending h);
    b_stats = (fun () -> [ ("pending", Parallel.pending h) ]);
    b_finish =
      (fun ~wall_seconds -> (Parallel.finish h ~wall_seconds).Parallel.base);
  }
