(** Listen/connect addresses: Unix-domain socket paths and TCP
    host:port endpoints. *)

type t =
  | Unix_path of string  (** filesystem path of a Unix-domain socket *)
  | Tcp of string * int  (** host (name or dotted quad), port *)

val of_string : string -> (t, string) result
(** Parse ["unix:PATH"], ["tcp:HOST:PORT"], or bare ["HOST:PORT"].
    An empty tcp host means 127.0.0.1. *)

val to_string : t -> string

val listen : ?backlog:int -> t -> Unix.file_descr * t
(** Bind + listen; unlinks a stale Unix socket path first.  Returns
    the listening descriptor and the address actually bound (with
    [Tcp (_, 0)] the kernel picks the port — the returned address
    carries it). *)

val connect : t -> Unix.file_descr

val cleanup : t -> unit
(** Remove a Unix socket path after shutdown (no-op for TCP). *)
