type t = Unix_path of string | Tcp of string * int

let to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let of_string s =
  let port_of p =
    match int_of_string_opt p with
    | Some v when v >= 0 && v < 65536 -> Ok v
    | _ -> Error (Printf.sprintf "bad port %S" p)
  in
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S (expected unix:PATH, tcp:HOST:PORT, or HOST:PORT)" s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" ->
          if rest = "" then Error "empty unix socket path"
          else Ok (Unix_path rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "bad tcp address %S (expected tcp:HOST:PORT)" s)
          | Some j ->
              let host = String.sub rest 0 j in
              Result.map
                (fun p -> Tcp ((if host = "" then "127.0.0.1" else host), p))
                (port_of (String.sub rest (j + 1) (String.length rest - j - 1))))
      | host -> Result.map (fun p -> Tcp (host, p)) (port_of rest))

let sockaddr = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> failwith (Printf.sprintf "Addr: cannot resolve %S" host))
      in
      Unix.ADDR_INET (ip, port)

let domain = function
  | Unix_path _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

(* Listen and report the address actually bound — with [Tcp (_, 0)]
   the kernel picks the port, which is what the in-process tests use. *)
let listen ?(backlog = 64) t =
  let fd = Unix.socket (domain t) Unix.SOCK_STREAM 0 in
  (match t with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr t);
  Unix.listen fd backlog;
  let bound =
    match (t, Unix.getsockname fd) with
    | Tcp (host, _), Unix.ADDR_INET (_, port) -> Tcp (host, port)
    | _ -> t
  in
  (fd, bound)

let connect t =
  let fd = Unix.socket (domain t) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr t)
   with e ->
     Unix.close fd;
     raise e);
  fd

let cleanup = function
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
