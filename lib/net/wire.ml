module Step = Dct_txn.Step
module Sched = Dct_sched.Scheduler_intf

type dialect = Binary | Line

let dialect_name = function Binary -> "binary" | Line -> "line"

type request =
  | Begin of int
  | Read of int * int
  | Write of int * int list
  | Complete of int
  | Abort of int
  | Stats

type response =
  | Outcome of { step : int; outcome : Sched.outcome }
  | Abort_reply of bool
  | Stats_reply of (string * int) list
  | Error_reply of string

type error =
  | Closed
  | Truncated
  | Oversized of int
  | Bad_tag of int
  | Malformed of string

let error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes declared)" n
  | Bad_tag t -> Printf.sprintf "unknown frame tag 0x%02x" t
  | Malformed m -> "malformed frame: " ^ m

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let max_frame = 1 lsl 20

(* {1 Binary dialect}

   Frame: 4-byte big-endian payload length, then payload.  Payload:
   1 tag byte, then fixed-width fields — 8-byte big-endian ints,
   entity lists as a 4-byte count + 8 bytes per entity, strings as a
   4-byte length + bytes, outcomes as 1 byte.  [max_frame] is well
   under 2^24, so a valid frame's first byte is always 0 — which is
   how the server sniffs the dialect (line frames start with a
   printable letter). *)

let tag_begin = 0x01
let tag_read = 0x02
let tag_write = 0x03
let tag_complete = 0x04
let tag_abort = 0x05
let tag_stats = 0x06
let tag_outcome = 0x10
let tag_abort_reply = 0x11
let tag_stats_reply = 0x12
let tag_error_reply = 0x13

let outcome_code = function
  | Sched.Accepted -> 0
  | Sched.Rejected -> 1
  | Sched.Delayed -> 2
  | Sched.Ignored -> 3

let outcome_of_code = function
  | 0 -> Some Sched.Accepted
  | 1 -> Some Sched.Rejected
  | 2 -> Some Sched.Delayed
  | 3 -> Some Sched.Ignored
  | _ -> None

let put_i64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let put_i32 buf v =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let put_string buf s =
  put_i32 buf (String.length s);
  Buffer.add_string buf s

let request_payload r =
  let buf = Buffer.create 32 in
  (match r with
  | Begin t ->
      Buffer.add_char buf (Char.chr tag_begin);
      put_i64 buf t
  | Read (t, e) ->
      Buffer.add_char buf (Char.chr tag_read);
      put_i64 buf t;
      put_i64 buf e
  | Write (t, es) ->
      Buffer.add_char buf (Char.chr tag_write);
      put_i64 buf t;
      put_i32 buf (List.length es);
      List.iter (put_i64 buf) es
  | Complete t ->
      Buffer.add_char buf (Char.chr tag_complete);
      put_i64 buf t
  | Abort t ->
      Buffer.add_char buf (Char.chr tag_abort);
      put_i64 buf t
  | Stats -> Buffer.add_char buf (Char.chr tag_stats));
  Buffer.contents buf

let response_payload r =
  let buf = Buffer.create 32 in
  (match r with
  | Outcome { step; outcome } ->
      Buffer.add_char buf (Char.chr tag_outcome);
      put_i64 buf step;
      Buffer.add_char buf (Char.chr (outcome_code outcome))
  | Abort_reply b ->
      Buffer.add_char buf (Char.chr tag_abort_reply);
      Buffer.add_char buf (if b then '\x01' else '\x00')
  | Stats_reply kvs ->
      Buffer.add_char buf (Char.chr tag_stats_reply);
      put_i32 buf (List.length kvs);
      List.iter
        (fun (k, v) ->
          put_string buf k;
          put_i64 buf v)
        kvs
  | Error_reply m ->
      Buffer.add_char buf (Char.chr tag_error_reply);
      put_string buf m);
  Buffer.contents buf

let frame payload =
  let buf = Buffer.create (4 + String.length payload) in
  put_i32 buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Payload cursor; every decode error is a typed [error]. *)

exception Err of error

type cursor = { s : string; mutable pos : int; limit : int }

let need c n = if c.pos + n > c.limit then raise (Err (Malformed "short payload"))

let get_byte c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_i64 c =
  need c 8;
  let v = Int64.to_int (String.get_int64_be c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let get_i32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.s c.pos) in
  c.pos <- c.pos + 4;
  v

let get_count c what =
  let n = get_i32 c in
  if n < 0 || n > max_frame then raise (Err (Malformed ("bad " ^ what ^ " count")));
  n

let get_string c =
  let n = get_count c "string" in
  need c n;
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

let decode_request_payload c =
  match get_byte c with
  | t when t = tag_begin -> Begin (get_i64 c)
  | t when t = tag_read ->
      let txn = get_i64 c in
      Read (txn, get_i64 c)
  | t when t = tag_write ->
      let txn = get_i64 c in
      let n = get_count c "entity" in
      Write (txn, List.init n (fun _ -> get_i64 c))
  | t when t = tag_complete -> Complete (get_i64 c)
  | t when t = tag_abort -> Abort (get_i64 c)
  | t when t = tag_stats -> Stats
  | t -> raise (Err (Bad_tag t))

let decode_response_payload c =
  match get_byte c with
  | t when t = tag_outcome ->
      let step = get_i64 c in
      let code = get_byte c in
      (match outcome_of_code code with
      | Some outcome -> Outcome { step; outcome }
      | None -> raise (Err (Malformed "bad outcome code")))
  | t when t = tag_abort_reply -> Abort_reply (get_byte c <> 0)
  | t when t = tag_stats_reply ->
      let n = get_count c "stat" in
      Stats_reply
        (List.init n (fun _ ->
             let k = get_string c in
             (k, get_i64 c)))
  | t when t = tag_error_reply -> Error_reply (get_string c)
  | t -> raise (Err (Bad_tag t))

(* {1 Line dialect} *)

let outcome_name = Sched.outcome_name

let outcome_of_name = function
  | "accepted" -> Some Sched.Accepted
  | "rejected" -> Some Sched.Rejected
  | "delayed" -> Some Sched.Delayed
  | "ignored" -> Some Sched.Ignored
  | _ -> None

let entities_to_line = function
  | [] -> "-"
  | es -> String.concat "," (List.map string_of_int es)

let request_line = function
  | Begin t -> Printf.sprintf "begin %d" t
  | Read (t, e) -> Printf.sprintf "read %d %d" t e
  | Write (t, es) -> Printf.sprintf "write %d %s" t (entities_to_line es)
  | Complete t -> Printf.sprintf "complete %d" t
  | Abort t -> Printf.sprintf "abort %d" t
  | Stats -> "stats"

(* Stats keys and error messages may contain spaces; they ride in the
   final position of the line, escaped minimally. *)
let escape s =
  String.concat "" (List.map (function ' ' -> "\\s" | c -> String.make 1 c)
      (List.init (String.length s) (String.get s)))

let unescape s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i < String.length s do
    if !i + 1 < String.length s && s.[!i] = '\\' && s.[!i + 1] = 's' then begin
      Buffer.add_char buf ' ';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let response_line = function
  | Outcome { step; outcome } ->
      Printf.sprintf "outcome %d %s" step (outcome_name outcome)
  | Abort_reply b -> Printf.sprintf "abort-reply %b" b
  | Stats_reply kvs ->
      String.concat " "
        ("stats-reply"
        :: List.map (fun (k, v) -> Printf.sprintf "%s=%d" (escape k) v) kvs)
  | Error_reply m -> "error " ^ escape m

let int_of_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> raise (Err (Malformed (Printf.sprintf "bad %s %S" what s)))

let parse_entities = function
  | "-" -> []
  | s -> List.map (int_of_field "entity") (String.split_on_char ',' s)

let request_of_line line =
  match String.split_on_char ' ' line with
  | [ "begin"; t ] -> Begin (int_of_field "txn" t)
  | [ "read"; t; e ] -> Read (int_of_field "txn" t, int_of_field "entity" e)
  | [ "write"; t; es ] -> Write (int_of_field "txn" t, parse_entities es)
  | [ "complete"; t ] -> Complete (int_of_field "txn" t)
  | [ "abort"; t ] -> Abort (int_of_field "txn" t)
  | [ "stats" ] -> Stats
  | verb :: _ -> raise (Err (Malformed ("unknown request verb " ^ verb)))
  | [] -> raise (Err (Malformed "empty request line"))

let response_of_line line =
  match String.split_on_char ' ' line with
  | [ "outcome"; step; o ] -> (
      match outcome_of_name o with
      | Some outcome -> Outcome { step = int_of_field "step" step; outcome }
      | None -> raise (Err (Malformed ("bad outcome " ^ o))))
  | [ "abort-reply"; b ] -> (
      match bool_of_string_opt b with
      | Some b -> Abort_reply b
      | None -> raise (Err (Malformed ("bad abort reply " ^ b))))
  | "stats-reply" :: kvs ->
      Stats_reply
        (List.map
           (fun kv ->
             match String.index_opt kv '=' with
             | Some i ->
                 ( unescape (String.sub kv 0 i),
                   int_of_field "stat"
                     (String.sub kv (i + 1) (String.length kv - i - 1)) )
             | None -> raise (Err (Malformed ("bad stat " ^ kv))))
           kvs)
  | "error" :: rest -> Error_reply (unescape (String.concat " " rest))
  | verb :: _ -> raise (Err (Malformed ("unknown response verb " ^ verb)))
  | [] -> raise (Err (Malformed "empty response line"))

(* {1 Framing} *)

let encode payload_of line_of dialect v =
  match dialect with
  | Binary -> frame (payload_of v)
  | Line -> line_of v ^ "\n"

let encode_request d r = encode request_payload request_line d r
let encode_response d r = encode response_payload response_line d r

(* Decode one frame of [s] starting at [pos].  [Truncated] means the
   prefix so far is a valid partial frame — read more bytes and retry;
   every other error is fatal for the connection. *)
let decode decode_payload of_line dialect s ~pos =
  let len = String.length s in
  try
    match dialect with
    | Binary ->
        if pos + 4 > len then Error Truncated
        else begin
          let c4 = { s; pos; limit = len } in
          let n = get_i32 c4 in
          if n < 0 then Error (Malformed "negative frame length")
          else if n > max_frame then Error (Oversized n)
          else if pos + 4 + n > len then Error Truncated
          else begin
            let c = { s; pos = pos + 4; limit = pos + 4 + n } in
            let v = decode_payload c in
            if c.pos <> c.limit then Error (Malformed "trailing payload bytes")
            else Ok (v, c.limit)
          end
        end
    | Line -> (
        match String.index_from_opt s pos '\n' with
        | None ->
            if len - pos > max_frame then Error (Oversized (len - pos))
            else Error Truncated
        | Some nl -> Ok (of_line (String.sub s pos (nl - pos)), nl + 1))
  with Err e -> Error e

let decode_request d s ~pos =
  decode decode_request_payload request_of_line d s ~pos

let decode_response d s ~pos =
  decode decode_response_payload response_of_line d s ~pos

(* {1 Buffered frame IO over a file descriptor} *)

module Io = struct
  type t = {
    fd : Unix.file_descr;
    mutable buf : string;  (** received, not yet decoded *)
    mutable eof : bool;
  }

  let of_fd fd = { fd; buf = ""; eof = false }
  let fd t = t.fd

  let refill t =
    if t.eof then false
    else begin
      let chunk = Bytes.create 65536 in
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 ->
          t.eof <- true;
          false
      | n ->
          t.buf <- t.buf ^ Bytes.sub_string chunk 0 n;
          true
      | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
          t.eof <- true;
          false
    end

  let sniff_dialect t =
    let rec go () =
      if String.length t.buf > 0 then
        Ok (if t.buf.[0] = '\x00' then Binary else Line)
      else if refill t then go ()
      else Error Closed
    in
    go ()

  let read_with decoder t dialect =
    let rec go () =
      match decoder dialect t.buf ~pos:0 with
      | Ok (v, consumed) ->
          t.buf <- String.sub t.buf consumed (String.length t.buf - consumed);
          Ok v
      | Error Truncated ->
          if refill t then go ()
          else if String.length t.buf = 0 then Error Closed
          else Error Truncated
      | Error e -> Error e
    in
    go ()

  let read_request t dialect = read_with decode_request t dialect
  let read_response t dialect = read_with decode_response t dialect

  let write t s =
    let b = Bytes.of_string s in
    let len = Bytes.length b in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write t.fd b !off (len - !off)
    done
end
