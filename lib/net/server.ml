module Step = Dct_txn.Step

type client = {
  c_io : Wire.Io.t;
  mutable c_dialect : Wire.dialect;
  c_wlock : Mutex.t;
  mutable c_alive : bool;
  c_txns : (int, unit) Hashtbl.t;  (** begun, not yet completed/aborted *)
}

type t = {
  listen_fd : Unix.file_descr;
  addr : Addr.t;
  backend : Backend.t;
  lock : Mutex.t;  (** serializes every engine access *)
  waiters : client Queue.t;
      (** issuing client of each submitted-but-undecided step, in
          submission order; pushed and popped under [lock] (outcomes
          fire during submit/tick, which hold it) *)
  flush_ms : int;
  mutable running : bool;
  mutable accept_thread : Thread.t option;
  mutable ticker_thread : Thread.t option;
  threads_lock : Mutex.t;
  mutable client_threads : Thread.t list;
  mutable live_clients : client list;
  mutable connections : int;
  mutable proto_errors : int;
}

let addr t = t.addr
let backend t = t.backend
let connections t = t.connections
let proto_errors t = t.proto_errors

(* Outcomes can be routed by whichever handler thread's submit filled
   the batch, concurrently with the target's own handler writing an
   abort/stats reply — hence the per-client write lock.  A client that
   vanished mid-run just has its responses dropped. *)
let send_to c resp =
  if c.c_alive then begin
    Mutex.lock c.c_wlock;
    (try Wire.Io.write c.c_io (Wire.encode_response c.c_dialect resp)
     with _ -> c.c_alive <- false);
    Mutex.unlock c.c_wlock
  end

let create ?(flush_ms = 20) ~backend addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd, bound = Addr.listen addr in
  let waiters = Queue.create () in
  let on_step idx _step outcome =
    match Queue.take_opt waiters with
    | Some c -> send_to c (Wire.Outcome { step = idx; outcome })
    | None -> ()
  in
  {
    listen_fd;
    addr = bound;
    backend = backend ~on_step;
    lock = Mutex.create ();
    waiters;
    flush_ms;
    running = false;
    accept_thread = None;
    ticker_thread = None;
    threads_lock = Mutex.create ();
    client_threads = [];
    live_clients = [];
    connections = 0;
    proto_errors = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let step_of_request = function
  | Wire.Begin txn -> Some (Step.Begin txn)
  | Wire.Read (txn, e) -> Some (Step.Read (txn, e))
  | Wire.Write (txn, es) -> Some (Step.Write (txn, es))
  | Wire.Complete txn -> Some (Step.Write (txn, []))
  | Wire.Abort _ | Wire.Stats -> None

let handle_request t c req =
  match step_of_request req with
  | Some step ->
      (match req with
      | Wire.Begin txn -> Hashtbl.replace c.c_txns txn ()
      | Wire.Write (txn, _) | Wire.Complete txn -> Hashtbl.remove c.c_txns txn
      | _ -> ());
      locked t (fun () ->
          (* push before submit: a full batch decides this step — and
             routes its outcome — before submit returns *)
          Queue.push c t.waiters;
          Backend.submit t.backend step)
  | None -> (
      match req with
      | Wire.Abort txn ->
          (* flush first so the client's earlier outcomes precede the
             reply, keeping its response stream in issue order *)
          let b =
            locked t (fun () ->
                Backend.tick t.backend;
                Backend.abort t.backend txn)
          in
          Hashtbl.remove c.c_txns txn;
          send_to c (Wire.Abort_reply b)
      | Wire.Stats ->
          let stats =
            locked t (fun () ->
                Backend.tick t.backend;
                Backend.stats t.backend)
          in
          send_to c
            (Wire.Stats_reply
               (stats
               @ [
                   ("connections", t.connections);
                   ("protocol_errors", t.proto_errors);
                 ]))
      | _ -> assert false)

(* A dying client's begun-but-incomplete transactions are aborted so
   they cannot pin deletability forever (the engine treats any later
   queued steps of theirs as [Ignored]). *)
let cleanup_client t c =
  c.c_alive <- false;
  let orphans = Hashtbl.fold (fun txn () acc -> txn :: acc) c.c_txns [] in
  if orphans <> [] then
    locked t (fun () ->
        List.iter (fun txn -> ignore (Backend.abort t.backend txn)) orphans);
  Hashtbl.reset c.c_txns;
  (try Unix.close (Wire.Io.fd c.c_io) with Unix.Unix_error _ -> ());
  Mutex.lock t.threads_lock;
  t.live_clients <- List.filter (fun c' -> c' != c) t.live_clients;
  Mutex.unlock t.threads_lock

let client_loop t c =
  match Wire.Io.sniff_dialect c.c_io with
  | Error _ -> cleanup_client t c
  | Ok dialect ->
      c.c_dialect <- dialect;
      let rec loop () =
        match Wire.Io.read_request c.c_io dialect with
        | Ok req ->
            handle_request t c req;
            loop ()
        | Error Wire.Closed -> ()
        | Error e ->
            (* protocol violation: answer with the typed error, then
               drop this connection — others keep being served *)
            t.proto_errors <- t.proto_errors + 1;
            send_to c (Wire.Error_reply (Wire.error_to_string e))
      in
      (try loop () with _ -> t.proto_errors <- t.proto_errors + 1);
      cleanup_client t c

let accept_loop t =
  while t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        let c =
          {
            c_io = Wire.Io.of_fd fd;
            c_dialect = Wire.Binary;
            c_wlock = Mutex.create ();
            c_alive = true;
            c_txns = Hashtbl.create 8;
          }
        in
        Mutex.lock t.threads_lock;
        t.connections <- t.connections + 1;
        t.live_clients <- c :: t.live_clients;
        t.client_threads <-
          Thread.create (fun () -> client_loop t c) () :: t.client_threads;
        Mutex.unlock t.threads_lock
    | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let ticker_loop t =
  let delay = float_of_int t.flush_ms /. 1000. in
  while t.running do
    Thread.delay delay;
    if t.running then
      locked t (fun () ->
          if Backend.pending t.backend > 0 then Backend.tick t.backend)
  done

let start t =
  if t.running then invalid_arg "Server.start: already running";
  t.running <- true;
  t.accept_thread <- Some (Thread.create accept_loop t);
  if t.flush_ms > 0 then t.ticker_thread <- Some (Thread.create ticker_loop t)

let stop t =
  if t.running then begin
    t.running <- false;
    (* wake the accept loop *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    Option.iter Thread.join t.ticker_thread;
    t.accept_thread <- None;
    t.ticker_thread <- None;
    (* wake handler threads blocked in read, then wait for them *)
    Mutex.lock t.threads_lock;
    let live = t.live_clients and threads = t.client_threads in
    t.client_threads <- [];
    Mutex.unlock t.threads_lock;
    List.iter
      (fun c ->
        try Unix.shutdown (Wire.Io.fd c.c_io) Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      live;
    List.iter Thread.join threads;
    Addr.cleanup t.addr
  end

let finish t ~wall_seconds =
  locked t (fun () -> Backend.finish t.backend ~wall_seconds)
