(** Closed-loop load driver: [clients] concurrent connections, each
    issuing [txns_per_client] transactions drawn from a {!Dct_workload.Mix}
    sampler (per-client seed), one op at a time — every op's latency is
    its full round trip to a decision.

    Per-op latencies land in nanosecond histograms
    ["net.latency.<begin|read|write|complete>"] (and the combined
    ["net.latency.all"]), outcomes in counters
    ["net.outcome.<o>"], merged across clients into one registry
    ({!Dct_telemetry.Metrics.histo_percentile} gives the p50/p90/p99
    the bench sweep reports).  The {!Dct_workload.Mix.Bursty} mix
    sleeps out the off windows of its arrival modulation. *)

type cfg = {
  clients : int;
  txns_per_client : int;
  mix : Dct_workload.Mix.t;
  keys : int;
  seed : int;
  dialect : Wire.dialect;
}

type result = {
  txns : int;
  completed : int;
  aborted : int;  (** rejected mid-transaction; remaining ops skipped *)
  ops : int;
  wall_seconds : float;
  throughput : float;  (** ops per second *)
  metrics : Dct_telemetry.Metrics.t;
}

val run : cfg -> Addr.t -> result
(** Blocks until every client has finished. *)
