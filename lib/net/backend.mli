(** Uniform incremental-feeding facade over the sequential engine and
    the parallel (domain-per-shard) engine, so the server routes steps
    and outcomes without knowing which one it drives.

    Not thread-safe — the server serializes all access behind one
    mutex (see {!Server}). *)

type on_step = int -> Dct_txn.Step.t -> Dct_sched.Scheduler_intf.outcome -> unit
(** Fires immediately after each submitted step is decided, with the
    1-based global step index — while the submitting call (or a
    {!tick}) is still on the stack. *)

type t

val seq : on_step:on_step -> Dct_engine.Engine.config -> t
val parallel : ?mode:Dct_engine.Parallel.mode -> on_step:on_step -> Dct_engine.Engine.config -> t

val name : t -> string
val submit : t -> Dct_txn.Step.t -> unit
val tick : t -> unit
(** Flush the pending partial admission batch (the group-commit
    timer). *)

val abort : t -> int -> bool
val pending : t -> int
val stats : t -> (string * int) list

val finish : t -> wall_seconds:float -> Dct_engine.Engine.report
(** End-of-input epilogue; call exactly once, after the last submit.
    @raise Dct_engine.Parallel.Shard_failure from the parallel backend
    if a shard applier died. *)
