module Metrics = Dct_telemetry.Metrics
module Sched = Dct_sched.Scheduler_intf
module Mix = Dct_workload.Mix

type cfg = {
  clients : int;
  txns_per_client : int;
  mix : Mix.t;
  keys : int;
  seed : int;
  dialect : Wire.dialect;
}

type result = {
  txns : int;
  completed : int;
  aborted : int;
  ops : int;
  wall_seconds : float;
  throughput : float;
  metrics : Metrics.t;
}

let op_name = function
  | Wire.Begin _ -> "begin"
  | Wire.Read _ -> "read"
  | Wire.Write _ -> "write"
  | Wire.Complete _ -> "complete"
  | Wire.Abort _ -> "abort"
  | Wire.Stats -> "stats"

(* One closed-loop client: each transaction's ops are issued one at a
   time, each op's latency is the full round trip to its decision.  A
   rejected op kills the transaction — the client gives up on its
   remaining ops (they would only come back [Ignored]) and moves on. *)
let client_loop cfg addr ~client reg =
  let c = Client.connect ~dialect:cfg.dialect addr in
  let sampler = Mix.sampler cfg.mix ~keys:cfg.keys ~seed:(cfg.seed + (7919 * client)) in
  let burst = Mix.burst cfg.mix in
  let started = Unix.gettimeofday () in
  let timed_call req =
    let t0 = Unix.gettimeofday () in
    let r = Client.call c req in
    let dt_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    Metrics.observe reg ("net.latency." ^ op_name req) dt_ns;
    Metrics.observe reg "net.latency.all" dt_ns;
    match r with
    | Ok (Wire.Outcome { outcome; _ }) ->
        Metrics.incr reg ("net.outcome." ^ Sched.outcome_name outcome);
        outcome
    | Ok _ | Error _ ->
        Metrics.incr reg "net.errors";
        Sched.Rejected
  in
  let run_txn id plan =
    Metrics.incr reg "net.txns";
    let alive = ref (timed_call (Wire.Begin id) = Sched.Accepted) in
    List.iter
      (fun k -> if !alive then alive := timed_call (Wire.Read (id, k)) = Sched.Accepted)
      plan.Mix.reads;
    (if !alive then
       let fin =
         match plan.Mix.writes with
         | [] -> Wire.Complete id
         | es -> Wire.Write (id, es)
       in
       alive := timed_call fin = Sched.Accepted);
    Metrics.incr reg (if !alive then "net.txn.completed" else "net.txn.aborted")
  in
  for k = 0 to cfg.txns_per_client - 1 do
    let id = 1 + client + (cfg.clients * k) in
    run_txn id (Mix.next_plan sampler);
    match burst with
    | None -> ()
    | Some (on_ms, off_ms) ->
        (* arrival modulation: sleep out the rest of an off window *)
        let period = on_ms + off_ms in
        let elapsed_ms =
          int_of_float ((Unix.gettimeofday () -. started) *. 1000.)
        in
        let phase = elapsed_ms mod period in
        if phase >= on_ms then
          Thread.delay (float_of_int (period - phase) /. 1000.)
  done;
  Client.close c

let run cfg addr =
  if cfg.clients <= 0 then invalid_arg "Driver.run: clients must be positive";
  let regs = Array.init cfg.clients (fun _ -> Metrics.create ()) in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.to_list
      (Array.mapi
         (fun client reg ->
           Thread.create (fun () -> client_loop cfg addr ~client reg) ())
         regs)
  in
  List.iter Thread.join threads;
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let metrics = Metrics.create () in
  Array.iter (fun r -> Metrics.merge ~into:metrics r) regs;
  let count name = Metrics.counter metrics name in
  let ops =
    List.fold_left
      (fun acc op -> acc + Metrics.histo_count metrics ("net.latency." ^ op))
      0
      [ "begin"; "read"; "write"; "complete" ]
  in
  {
    txns = count "net.txns";
    completed = count "net.txn.completed";
    aborted = count "net.txn.aborted";
    ops;
    wall_seconds;
    throughput =
      (if wall_seconds > 0. then float_of_int ops /. wall_seconds else 0.);
    metrics;
  }
