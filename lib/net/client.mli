(** Blocking client: one connection, either dialect, optional
    pipelining.

    Response discipline: every step request ([Begin]/[Read]/[Write]/
    [Complete]) is answered by exactly one [Outcome], in issue order;
    [Abort]/[Stats] are answered immediately (the server flushes
    pending outcomes first, so a mixed stream still arrives in issue
    order).  {!call} is the simple closed-loop form; {!send}/{!recv}
    expose the pipelined form. *)

type t

val connect : ?dialect:Wire.dialect -> Addr.t -> t
(** Default dialect: [Binary]. *)

val close : t -> unit

val send : t -> Wire.request -> unit
val recv : t -> (Wire.response, Wire.error) result
val call : t -> Wire.request -> (Wire.response, Wire.error) result

val in_flight : t -> int
(** Step requests sent whose outcomes have not been received yet. *)

val request_of_step : Dct_txn.Step.t -> Wire.request
(** Basic-model steps only ([Write (t, \[\])] maps to [Complete]).
    @raise Invalid_argument on multi-write or predeclared steps. *)

val run_steps :
  ?window:int ->
  t ->
  Dct_txn.Step.t list ->
  on_outcome:(int -> Dct_sched.Scheduler_intf.outcome -> unit) ->
  unit
(** Feed a whole schedule through the connection with up to [window]
    (default 64) outcomes outstanding — enough to fill server-side
    admission batches, small enough that replies always fit in socket
    buffers.  [on_outcome] sees every outcome in server decision
    order.  @raise Failure on any protocol error. *)
