type clause = int list
type t = { nvars : int; clauses : clause list }

let check_lit nvars l =
  if l = 0 || abs l > nvars then
    invalid_arg (Printf.sprintf "Sat: bad literal %d (nvars = %d)" l nvars)

let make ~nvars clauses =
  List.iter (List.iter (check_lit nvars)) clauses;
  { nvars; clauses }

let three_sat ~nvars clauses =
  List.iter
    (fun c ->
      if List.length c <> 3 then invalid_arg "Sat.three_sat: clause size <> 3";
      let vars = List.sort_uniq compare (List.map abs c) in
      if List.length vars <> 3 then
        invalid_arg "Sat.three_sat: repeated variable in clause")
    clauses;
  make ~nvars clauses

let eval t assign =
  List.for_all
    (fun clause ->
      List.exists (fun l -> if l > 0 then assign l else not (assign (-l))) clause)
    t.clauses

(* DPLL.  [assign.(v)]: 0 unassigned, 1 true, -1 false. *)
let solve t =
  let assign = Array.make (t.nvars + 1) 0 in
  let value l =
    let v = assign.(abs l) in
    if v = 0 then 0 else if l > 0 then v else -v
  in
  let simplify clauses =
    (* Returns [None] if a clause is falsified, otherwise the remaining
       clauses with assigned literals resolved away. *)
    let exception Falsified in
    match
      List.filter_map
        (fun clause ->
          let rec go kept = function
            | [] -> if kept = [] then raise Falsified else Some kept
            | l :: rest -> (
                match value l with
                | 1 -> None (* clause satisfied *)
                | -1 -> go kept rest
                | _ -> go (l :: kept) rest)
          in
          go [] clause)
        clauses
    with
    | clauses -> Some clauses
    | exception Falsified -> None
  in
  let rec dpll clauses =
    match simplify clauses with
    | None -> false
    | Some [] -> true
    | Some clauses -> (
        (* Unit propagation. *)
        match List.find_opt (fun c -> List.length c = 1) clauses with
        | Some [ l ] ->
            assign.(abs l) <- (if l > 0 then 1 else -1);
            if dpll clauses then true
            else begin
              assign.(abs l) <- 0;
              false
            end
        | Some _ -> assert false
        | None -> (
            (* Pure literal elimination. *)
            let polarity = Hashtbl.create 16 in
            List.iter
              (List.iter (fun l ->
                   let v = abs l in
                   let p = if l > 0 then 1 else -1 in
                   match Hashtbl.find_opt polarity v with
                   | None -> Hashtbl.replace polarity v p
                   | Some q when q = p || q = 0 -> ()
                   | Some _ -> Hashtbl.replace polarity v 0))
              clauses;
            let pure =
              Hashtbl.fold
                (fun v p acc -> if p <> 0 then Some (v * p) else acc)
                polarity None
            in
            match pure with
            | Some l ->
                assign.(abs l) <- (if l > 0 then 1 else -1);
                if dpll clauses then true
                else begin
                  assign.(abs l) <- 0;
                  false
                end
            | None -> (
                (* Branch on the first literal of the first clause. *)
                match clauses with
                | (l :: _) :: _ ->
                    let v = abs l in
                    assign.(v) <- 1;
                    if dpll clauses then true
                    else begin
                      assign.(v) <- -1;
                      if dpll clauses then true
                      else begin
                        assign.(v) <- 0;
                        false
                      end
                    end
                | _ -> assert false)))
  in
  if dpll t.clauses then begin
    (* Unconstrained variables default to false. *)
    Some (Array.map (fun v -> v = 1) assign)
  end
  else None

let is_satisfiable t = solve t <> None

let pp ppf t =
  let pp_clause ppf c =
    Format.fprintf ppf "(%s)"
      (String.concat " | "
         (List.map
            (fun l -> if l > 0 then Printf.sprintf "x%d" l else Printf.sprintf "~x%d" (-l))
            c))
  in
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " &@ ")
       pp_clause)
    t.clauses
