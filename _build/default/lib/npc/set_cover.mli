(** The Set Cover problem — source of the Theorem 5 reduction.

    An instance has universe [{0, ..., universe-1}] and a family of
    subsets; a cover is a sub-family whose union is the universe.
    Deciding whether a cover of size ≤ k exists is NP-complete [GJ]. *)

type t = { universe : int; sets : Dct_graph.Intset.t array }

val make : universe:int -> int list list -> t
(** Sets given as element lists.  @raise Invalid_argument on elements
    outside the universe. *)

val validate : t -> (unit, string) result
(** Checks that the family itself covers the universe (otherwise no
    cover exists at all). *)

val is_cover : t -> int list -> bool
(** Do the sets at these indices cover the universe? *)

val greedy : t -> int list
(** Classic ln(n)-approximation: repeatedly take the set covering the
    most uncovered elements (smallest index wins ties).  Assumes
    {!validate} passed. *)

val exact_min : t -> int list
(** A minimum cover by branch-and-bound (branching on the sets
    containing the lowest uncovered element).  Assumes {!validate}
    passed; exponential worst case. *)

val pp : Format.formatter -> t -> unit
