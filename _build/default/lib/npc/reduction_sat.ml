module Intset = Dct_graph.Intset
module Access = Dct_txn.Access
module Step = Dct_txn.Step
module Transaction = Dct_txn.Transaction
module Graph_state = Dct_deletion.Graph_state
module Condition_c3 = Dct_deletion.Condition_c3

type ids = {
  a : int;
  b : int;
  c : int;
  d : int;
  pos_active : int array;
  neg_active : int array;
  pos_var : int array;
  neg_var : int array;
  clause_lit : int array array;
  y_entity : int;
}

let ids_of (f : Sat.t) =
  let n = f.Sat.nvars in
  let m = List.length f.Sat.clauses in
  {
    a = 0;
    b = 1;
    c = 2;
    d = 3;
    pos_active = Array.init n (fun i -> 4 + i);
    neg_active = Array.init n (fun i -> 4 + n + i);
    pos_var = Array.init n (fun i -> 4 + (2 * n) + i);
    neg_var = Array.init n (fun i -> 4 + (3 * n) + i);
    clause_lit =
      Array.init m (fun j -> Array.init 3 (fun k -> 4 + (4 * n) + (3 * j) + k));
    y_entity = 0;
  }

(* The arc plan: every arc is labelled by a fresh entity accessed only by
   its endpoints — write-write, or write-read (a dependency). *)
type arc = Ww of int * int | Wr of int * int

let arcs (f : Sat.t) ids =
  let n = f.Sat.nvars in
  let out = ref [] in
  let add a = out := a :: !out in
  for i = 0 to n - 2 do
    add (Ww (ids.pos_var.(i), ids.pos_var.(i + 1)));
    add (Ww (ids.pos_var.(i), ids.neg_var.(i + 1)));
    add (Ww (ids.neg_var.(i), ids.pos_var.(i + 1)));
    add (Ww (ids.neg_var.(i), ids.neg_var.(i + 1)))
  done;
  add (Ww (ids.a, ids.pos_var.(0)));
  add (Ww (ids.a, ids.neg_var.(0)));
  add (Ww (ids.pos_var.(n - 1), ids.b));
  add (Ww (ids.neg_var.(n - 1), ids.b));
  add (Ww (ids.b, ids.c));
  for i = 0 to n - 1 do
    add (Ww (ids.pos_active.(i), ids.d));
    add (Ww (ids.neg_active.(i), ids.d));
    add (Wr (ids.pos_active.(i), ids.pos_var.(i)));
    add (Wr (ids.neg_active.(i), ids.neg_var.(i)))
  done;
  List.iteri
    (fun j clause ->
      let lits = ids.clause_lit.(j) in
      add (Ww (ids.a, lits.(0)));
      add (Ww (lits.(0), lits.(1)));
      add (Ww (lits.(1), lits.(2)));
      add (Ww (lits.(2), ids.d));
      List.iteri
        (fun k lit ->
          let v = abs lit - 1 in
          if lit > 0 then add (Wr (ids.pos_active.(v), lits.(k)))
          else add (Wr (ids.neg_active.(v), lits.(k))))
        clause)
    f.Sat.clauses;
  List.rev !out

let all_txns (f : Sat.t) ids =
  let n = f.Sat.nvars in
  [ ids.a; ids.b; ids.c; ids.d ]
  @ List.concat_map
      (fun i ->
        [ ids.pos_active.(i); ids.neg_active.(i); ids.pos_var.(i); ids.neg_var.(i) ])
      (List.init n Fun.id)
  @ List.concat_map Array.to_list (Array.to_list ids.clause_lit)

let txn_state (f : Sat.t) ids t =
  let n = f.Sat.nvars in
  if t = ids.a then Transaction.Active
  else if t = ids.b || t = ids.c || t = ids.d then Transaction.Committed
  else if t >= 4 && t < 4 + (2 * n) then Transaction.Active (* Ai, Āi *)
  else Transaction.Finished (* Xi, X̄i, Cjk *)

let check_3cnf (f : Sat.t) =
  if f.Sat.nvars < 1 then invalid_arg "Reduction_sat: need at least one variable";
  List.iter
    (fun c ->
      if List.length c <> 3 then invalid_arg "Reduction_sat: clause size <> 3")
    f.Sat.clauses

let graph_state f =
  check_3cnf f;
  let ids = ids_of f in
  let gs = Graph_state.create () in
  List.iter (fun t -> Graph_state.begin_txn gs t) (all_txns f ids);
  (* Entity 0 is y; fresh entities follow. *)
  let next_entity = ref 1 in
  let fresh () =
    let e = !next_entity in
    incr next_entity;
    e
  in
  Graph_state.record_access gs ~txn:ids.d ~entity:ids.y_entity ~mode:Access.Read;
  Graph_state.record_access gs ~txn:ids.c ~entity:ids.y_entity ~mode:Access.Read;
  List.iter
    (fun arc ->
      let e = fresh () in
      match arc with
      | Ww (u, v) ->
          Graph_state.record_access gs ~txn:u ~entity:e ~mode:Access.Write;
          Graph_state.record_access gs ~txn:v ~entity:e ~mode:Access.Write;
          Graph_state.add_arc gs ~src:u ~dst:v
      | Wr (u, v) ->
          Graph_state.record_access gs ~txn:u ~entity:e ~mode:Access.Write;
          Graph_state.record_access gs ~txn:v ~entity:e ~mode:Access.Read;
          Graph_state.add_arc gs ~src:u ~dst:v;
          Graph_state.add_dependency gs ~dependent:v ~on_:u)
    (arcs f ids);
  (* Private entities: everyone but C. *)
  List.iter
    (fun t ->
      if t <> ids.c then
        Graph_state.record_access gs ~txn:t ~entity:(fresh ()) ~mode:Access.Write)
    (all_txns f ids);
  List.iter (fun t -> Graph_state.set_state gs t (txn_state f ids t)) (all_txns f ids);
  (gs, ids)

let schedule f =
  check_3cnf f;
  let ids = ids_of f in
  (* Execute serially in a topological order: actives first (they are
     the sources), then the ladder, clause chains, B, D, C. *)
  let next_entity = ref 1 in
  let fresh () =
    let e = !next_entity in
    incr next_entity;
    e
  in
  (* Assign entities per arc, in the same order as [graph_state]. *)
  let entity_of_arc = Hashtbl.create 64 in
  List.iter (fun arc -> Hashtbl.replace entity_of_arc arc (fresh ())) (arcs f ids);
  let steps = ref [] in
  let emit s = steps := s :: !steps in
  let topo =
    let n = f.Sat.nvars in
    [ ids.a ]
    @ List.concat_map
        (fun i -> [ ids.pos_active.(i); ids.neg_active.(i) ])
        (List.init n Fun.id)
    @ List.concat_map
        (fun i -> [ ids.pos_var.(i); ids.neg_var.(i) ])
        (List.init n Fun.id)
    @ List.concat_map Array.to_list (Array.to_list ids.clause_lit)
    @ [ ids.b; ids.d; ids.c ]
  in
  List.iter (fun t -> emit (Step.Begin t)) topo;
  (* Each transaction performs, at its topological turn, all accesses
     whose arc it is an endpoint of — the source end eagerly (at its own
     turn) and the target end at its turn, preserving arc direction. *)
  List.iter
    (fun t ->
      (if t = ids.d then emit (Step.Read (t, ids.y_entity)));
      (if t = ids.c then emit (Step.Read (t, ids.y_entity)));
      List.iter
        (fun arc ->
          let e = Hashtbl.find entity_of_arc arc in
          match arc with
          | Ww (u, v) ->
              if u = t then emit (Step.Write_one (t, e))
              else if v = t then emit (Step.Write_one (t, e))
          | Wr (u, v) ->
              if u = t then emit (Step.Write_one (t, e))
              else if v = t then emit (Step.Read (t, e)))
        (arcs f ids);
      if t <> ids.c then emit (Step.Write_one (t, fresh ()));
      let state = txn_state f ids t in
      if state <> Transaction.Active then emit (Step.Finish t))
    topo;
  (List.rev !steps, ids)

let abort_set_of_assignment (f : Sat.t) ids assignment =
  let n = f.Sat.nvars in
  let rec go i acc =
    if i >= n then acc
    else
      let t = if assignment.(i + 1) then ids.pos_active.(i) else ids.neg_active.(i) in
      go (i + 1) (Intset.add t acc)
  in
  go 0 Intset.empty

let c_deletable f =
  let gs, ids = graph_state f in
  Condition_c3.holds gs ids.c
