(** The Theorem 5 reduction: Set Cover → maximum safe deletion.

    Given an instance with sets [S1..Sm] over universe [X] the schedule
    is (§4):

    - [T0] begins, reads [y] and every element of [X], and stays active;
    - for [i = 1..m]: [Ti] begins, reads [zi], atomically writes the
      elements of [Si], and completes;
    - [Tm+1] begins, reads [z1..zm], atomically writes [y], completes.

    Until the last step no transaction is deletable; after it, a subset
    [N ⊆ {T1..Tm}] is safely deletable iff the remaining sets form a
    cover.  Hence the maximum number of safely deletable transactions is
    [m − (minimum cover size)]. *)

type ids = {
  t0 : int;                (** the long-running active reader *)
  set_txn : int array;     (** [set_txn.(i)] is the transaction of set Si *)
  t_last : int;            (** T_{m+1} *)
  x_entity : int array;    (** entity of universe element j *)
  y_entity : int;
  z_entity : int array;    (** private entity of set i *)
}

val schedule : Set_cover.t -> Dct_txn.Schedule.t * ids
(** The full schedule (all steps accepted — it is intrinsically CSR). *)

val schedule_without_last_step : Set_cover.t -> Dct_txn.Schedule.t * ids

val graph_state : Set_cover.t -> Dct_deletion.Graph_state.t * ids
(** {!schedule} replayed through the basic rules. *)

val remaining_sets : Set_cover.t -> ids -> deleted:Dct_graph.Intset.t -> int list
(** Indices of the sets whose transactions were {e not} deleted — by
    Theorem 5 these form a cover whenever the deletion was safe. *)

val max_deletable : Set_cover.t -> int
(** [m − |exact minimum cover|], the predicted optimum. *)
