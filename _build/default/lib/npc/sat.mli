(** CNF formulas and a DPLL satisfiability solver.

    Used by the Theorem 6 experiments: the reduction maps a 3-CNF
    formula to a conflict graph in which a designated transaction is
    safely deletable iff the formula is {e un}satisfiable; the solver
    provides the independent ground truth.

    Literals are non-zero integers in DIMACS convention: variable [v]
    positively as [v], negated as [-v]; variables are numbered from 1. *)

type clause = int list
type t = { nvars : int; clauses : clause list }

val make : nvars:int -> clause list -> t
(** @raise Invalid_argument on zero literals or variables out of range. *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under an assignment (variable -> value). *)

val solve : t -> bool array option
(** DPLL with unit propagation and pure-literal elimination.  Returns a
    satisfying assignment indexed by variable (slot 0 unused), or
    [None] when unsatisfiable. *)

val is_satisfiable : t -> bool

val three_sat : nvars:int -> int list list -> t
(** Checked constructor for 3-CNF: every clause must have exactly three
    literals over distinct variables. *)

val pp : Format.formatter -> t -> unit
