(** The Theorem 6 reduction: 3-SAT → deletability in the multi-write
    model (Figure 3).

    For a 3-CNF formula with variables [x1..xn] and clauses [c1..cm] the
    constructed graph has active transactions [A, Ai, Āi], finished
    (type F) transactions [Xi, X̄i] and one [Cjk] per clause literal,
    and committed transactions [B, C, D].  Write–write arcs build the
    variable ladder [A → {X1,X̄1} → ... → {Xn,X̄n} → B → C], the clause
    chains [A → Cj1 → Cj2 → Cj3 → D] and the guards [Ai, Āi → D];
    write–read arcs make [Xi] depend on [Ai], [X̄i] on [Āi], and each
    clause-literal transaction on the activation of its literal.  Every
    transaction except [C] also writes a private entity; [C] reads [y],
    otherwise read only by [D].

    The only possibly-deletable transaction is [C], and deleting [C] is
    safe iff the formula is {e unsatisfiable}: a satisfying assignment
    picks the abort set [M = {Ai | xi true} ∪ {Āi | xi false}] whose
    [M⁺] severs every [A ⇝ D] clause path while keeping [A ⇝ C] alive,
    violating C3. *)

type ids = {
  a : int;
  b : int;
  c : int;
  d : int;
  pos_active : int array;  (** [Ai], indexed by variable − 1 *)
  neg_active : int array;  (** [Āi] *)
  pos_var : int array;     (** [Xi] *)
  neg_var : int array;     (** [X̄i] *)
  clause_lit : int array array;  (** [clause_lit.(j).(k)] = transaction of literal k of clause j *)
  y_entity : int;
}

val graph_state : Sat.t -> Dct_deletion.Graph_state.t * ids
(** Direct construction of the reduced graph (states, accesses, arcs,
    dependencies).  @raise Invalid_argument unless the formula is 3-CNF. *)

val schedule : Sat.t -> Dct_txn.Schedule.t * ids
(** A multi-write schedule whose execution produces the same graph:
    transactions run serially in topological order, the active ones
    simply never finish.  Used to cross-check the multi-write scheduler
    against {!graph_state}. *)

val abort_set_of_assignment : Sat.t -> ids -> bool array -> Dct_graph.Intset.t
(** The witness abort set [M] induced by a satisfying assignment. *)

val c_deletable : Sat.t -> bool
(** [Condition_c3.holds] on the constructed graph for transaction [C] —
    by Theorem 6, equals [not (Sat.is_satisfiable f)]. *)
