module Intset = Dct_graph.Intset
module Step = Dct_txn.Step
module Graph_state = Dct_deletion.Graph_state
module Rules = Dct_deletion.Rules

type ids = {
  t0 : int;
  set_txn : int array;
  t_last : int;
  x_entity : int array;
  y_entity : int;
  z_entity : int array;
}

let ids_of (inst : Set_cover.t) =
  let n = inst.universe and m = Array.length inst.sets in
  {
    t0 = 0;
    set_txn = Array.init m (fun i -> i + 1);
    t_last = m + 1;
    x_entity = Array.init n (fun j -> j);
    y_entity = n;
    z_entity = Array.init m (fun i -> n + 1 + i);
  }

let build (inst : Set_cover.t) ~with_last_step =
  let ids = ids_of inst in
  let m = Array.length inst.sets in
  let steps = ref [] in
  let emit s = steps := s :: !steps in
  emit (Step.Begin ids.t0);
  emit (Step.Read (ids.t0, ids.y_entity));
  Array.iter (fun x -> emit (Step.Read (ids.t0, x))) ids.x_entity;
  for i = 0 to m - 1 do
    let t = ids.set_txn.(i) in
    emit (Step.Begin t);
    emit (Step.Read (t, ids.z_entity.(i)));
    emit
      (Step.Write
         (t, List.map (fun j -> ids.x_entity.(j)) (Intset.elements inst.sets.(i))))
  done;
  emit (Step.Begin ids.t_last);
  Array.iter (fun z -> emit (Step.Read (ids.t_last, z))) ids.z_entity;
  if with_last_step then emit (Step.Write (ids.t_last, [ ids.y_entity ]));
  (List.rev !steps, ids)

let schedule inst = build inst ~with_last_step:true
let schedule_without_last_step inst = build inst ~with_last_step:false

let graph_state inst =
  let steps, ids = schedule inst in
  let gs = Graph_state.create () in
  List.iter
    (fun step ->
      match Rules.apply gs step with
      | Rules.Accepted -> ()
      | Rules.Rejected | Rules.Ignored ->
          (* The reduction schedule is serial except for T0's reads and
             therefore always accepted. *)
          assert false)
    steps;
  (gs, ids)

let remaining_sets (inst : Set_cover.t) ids ~deleted =
  let m = Array.length inst.sets in
  List.filter
    (fun i -> not (Intset.mem ids.set_txn.(i) deleted))
    (List.init m Fun.id)

let max_deletable inst =
  Array.length inst.Set_cover.sets - List.length (Set_cover.exact_min inst)
