module Intset = Dct_graph.Intset

type t = { universe : int; sets : Intset.t array }

let make ~universe sets =
  let sets =
    Array.of_list
      (List.map
         (fun elems ->
           List.iter
             (fun e ->
               if e < 0 || e >= universe then
                 invalid_arg
                   (Printf.sprintf "Set_cover.make: element %d outside universe" e))
             elems;
           Intset.of_list elems)
         sets)
  in
  { universe; sets }

let full t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (Intset.add i acc) in
  go (t.universe - 1) Intset.empty

let union_of t idxs =
  List.fold_left (fun acc i -> Intset.union acc t.sets.(i)) Intset.empty idxs

let validate t =
  if Intset.equal (union_of t (List.init (Array.length t.sets) Fun.id)) (full t)
  then Ok ()
  else Error "family does not cover the universe"

let is_cover t idxs = Intset.equal (union_of t idxs) (full t)

let greedy t =
  let rec go uncovered chosen =
    if Intset.is_empty uncovered then List.rev chosen
    else begin
      let best = ref (-1) and best_gain = ref 0 in
      Array.iteri
        (fun i s ->
          let gain = Intset.cardinal (Intset.inter s uncovered) in
          if gain > !best_gain then begin
            best := i;
            best_gain := gain
          end)
        t.sets;
      if !best < 0 then List.rev chosen (* family does not cover *)
      else go (Intset.diff uncovered t.sets.(!best)) (!best :: chosen)
    end
  in
  go (full t) []

let exact_min t =
  let m = Array.length t.sets in
  let best = ref (List.init m Fun.id) in
  let rec go uncovered chosen depth =
    if depth >= List.length !best then ()
    else if Intset.is_empty uncovered then best := List.rev chosen
    else begin
      let e = Intset.min_elt uncovered in
      for i = 0 to m - 1 do
        if Intset.mem e t.sets.(i) then
          go (Intset.diff uncovered t.sets.(i)) (i :: chosen) (depth + 1)
      done
    end
  in
  go (full t) [] 0;
  !best

let pp ppf t =
  Format.fprintf ppf "@[<v>universe: %d@," t.universe;
  Array.iteri (fun i s -> Format.fprintf ppf "S%d = %a@," i Intset.pp s) t.sets;
  Format.fprintf ppf "@]"
