lib/npc/set_cover.mli: Dct_graph Format
