lib/npc/reduction_cover.ml: Array Dct_deletion Dct_graph Dct_txn Fun List Set_cover
