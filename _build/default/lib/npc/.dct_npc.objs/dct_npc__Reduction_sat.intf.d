lib/npc/reduction_sat.mli: Dct_deletion Dct_graph Dct_txn Sat
