lib/npc/sat.ml: Array Format Hashtbl List Printf String
