lib/npc/sat.mli: Format
