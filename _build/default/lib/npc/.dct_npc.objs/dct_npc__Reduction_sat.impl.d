lib/npc/reduction_sat.ml: Array Dct_deletion Dct_graph Dct_txn Fun Hashtbl List Sat
