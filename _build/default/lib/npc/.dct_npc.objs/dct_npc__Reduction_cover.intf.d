lib/npc/reduction_cover.mli: Dct_deletion Dct_graph Dct_txn Set_cover
