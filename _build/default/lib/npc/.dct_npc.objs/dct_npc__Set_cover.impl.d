lib/npc/set_cover.ml: Array Dct_graph Format Fun List Printf
