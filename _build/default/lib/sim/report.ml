let pad s w = s ^ String.make (max 0 (w - String.length s)) ' '

let rstrip s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do
    decr n
  done;
  String.sub s 0 !n

let render_table ~headers ~rows =
  let ncols = List.length headers in
  let rows =
    List.map
      (fun r ->
        let len = List.length r in
        if len < ncols then r @ List.init (ncols - len) (fun _ -> "") else r)
      rows
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc r -> max acc (String.length (List.nth r i)))
          (String.length h) rows)
      headers
  in
  let line cells = rstrip (String.concat "  " (List.map2 pad cells widths)) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print_table ?(oc = stdout) ~headers rows =
  output_string oc (render_table ~headers ~rows)

let print_series ?(oc = stdout) ~title ~headers rows =
  Printf.fprintf oc "%s\n" title;
  print_table ~oc ~headers rows

let fmt_float f = Printf.sprintf "%.2f" f

let fmt_ratio f = Printf.sprintf "%.2fx" f

let section ?(oc = stdout) title =
  Printf.fprintf oc "\n%s\n%s\n" title (String.make (String.length title) '=')
