(** Plain-text tables and series for the experiment harness.

    Every experiment prints through this module so the bench output has
    one consistent, diffable format. *)

val render_table : headers:string list -> rows:string list list -> string
(** Column-aligned table with a header rule.  Rows shorter than the
    header are right-padded with empty cells. *)

val print_table : ?oc:out_channel -> headers:string list -> string list list -> unit

val print_series :
  ?oc:out_channel ->
  title:string ->
  headers:string list ->
  string list list ->
  unit
(** A titled table — used for the "figure" experiments whose output is a
    data series rather than a summary row. *)

val fmt_float : float -> string
(** Fixed 2-decimal rendering used across tables. *)

val fmt_ratio : float -> string
(** e.g. ["3.17x"]. *)

val section : ?oc:out_channel -> string -> unit
(** Underlined section heading. *)
