let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_int xs = mean (List.map float_of_int xs)

let percentile p = function
  | [] -> 0.0
  | xs ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
        |> max 0 |> min (n - 1)
      in
      arr.(rank)

let max_int_list = List.fold_left max 0

let histogram ~buckets xs =
  match xs with
  | [] -> Array.make buckets (0.0, 0)
  | _ ->
      let lo = List.fold_left min infinity xs in
      let hi = List.fold_left max neg_infinity xs in
      let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0 in
      let out = Array.init buckets (fun i -> (lo +. (float_of_int i *. width), 0)) in
      List.iter
        (fun x ->
          let i =
            min (buckets - 1) (int_of_float ((x -. lo) /. width))
          in
          let b, c = out.(i) in
          out.(i) <- (b, c + 1))
        xs;
      out

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b
