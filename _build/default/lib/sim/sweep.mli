(** Parameter sweeps: run a scheduler factory over a grid of workload
    profiles and collect one summary row per cell.

    Used by the sensitivity experiment (EX15): how the deletion
    conditions' effectiveness responds to contention (skew), concurrency
    (mpl) and pinning (long readers). *)

type cell = {
  label : string;              (** grid-point description *)
  profile : Dct_workload.Generator.profile;
  result : Driver.result;
}

val grid :
  ?sample_every:int ->
  make:(unit -> Dct_sched.Scheduler_intf.handle) ->
  cells:(string * Dct_workload.Generator.profile) list ->
  unit ->
  cell list
(** Run each profile through a fresh scheduler. *)

val vary :
  base:Dct_workload.Generator.profile ->
  (string * (Dct_workload.Generator.profile -> Dct_workload.Generator.profile)) list ->
  (string * Dct_workload.Generator.profile) list
(** Build grid cells by applying labelled modifiers to a base profile. *)
