(** The per-experiment harness: one function per table/figure of
    EXPERIMENTS.md (EX1–EX15; EX11's statistically robust timing half
    lives in the Bechamel bench executable).

    Each function prints its table/series to [oc] (stdout by default)
    and returns nothing; all randomness is seeded, so output is stable.
    [run_all] executes every experiment in order — this is what
    [bench/main.exe] and [dct experiments] call. *)

val ex1_example1 : ?oc:out_channel -> unit -> unit
(** Example 1 / Figure 1: per-transaction verdicts, pair C2, and the
    after-deletion flip. *)

val ex2_lemma1 : ?oc:out_channel -> unit -> unit
(** Lemma 1 over random prefixes: completed transactions without active
    predecessors are always deletable, confirmed by the bounded oracle. *)

val ex3_theorem1 : ?oc:out_channel -> unit -> unit
(** Theorem 1 both directions on random prefixes: eligible transactions
    never diverge (bounded oracle); stuck transactions always diverge on
    the adversarial continuation. *)

val ex4_corollary1 : ?oc:out_channel -> unit -> unit
(** Corollary 1: noncurrent ⊆ C1-eligible, with population counts. *)

val ex5_set_cover : ?oc:out_channel -> unit -> unit
(** Theorem 5: per instance, minimum cover vs maximum safe deletion,
    exact vs greedy. *)

val ex6_residency_bound : ?oc:out_channel -> unit -> unit
(** The a·e bound: sweep long-readers × entities, report the residency
    ceiling of the irreducible graphs against a·e. *)

val ex7_three_sat : ?oc:out_channel -> unit -> unit
(** Theorem 6: DPLL verdict vs C3 deletability of the gadget's [C]. *)

val ex8_example2 : ?oc:out_channel -> unit -> unit
(** Example 2 / Figure 4: C4 verdicts including the clause-2 mechanism. *)

val ex9_policy_series : ?oc:out_channel -> unit -> unit
(** Residency-over-time series under the deletion policies (the
    "figure" of the synthetic evaluation), plus the unsafe commit-time
    strawman's CSR violation count. *)

val ex10_scheduler_comparison : ?oc:out_channel -> unit -> unit
(** Cross-scheduler table: SGT variants vs certifier vs 2PL vs TO on
    the same workload — commits, aborts, residency, wall time. *)

val ex11_complexity_table : ?oc:out_channel -> unit -> unit
(** Measured C1/C2-check and deletion costs as the graph grows
    (wall-clock medians; the statistically rigorous version is the
    Bechamel suite in [bench/main.exe]). *)

val ex12_log_truncation : ?oc:out_channel -> unit -> unit
(** The log-truncation reading: WAL retention under each deletion
    policy — deletion is what lets the log advance its low-water mark
    past a long-running reader. *)

val ex13_version_residency : ?oc:out_channel -> unit -> unit
(** Multiversion (MVTO) analogue: version-chain residency with and
    without vacuum, with and without long readers pinning the horizon. *)

val ex14_goodput_with_restarts : ?oc:out_channel -> unit -> unit
(** Cross-scheduler goodput when aborted transactions are retried (the
    client-visible fairness axis missing from EX10's single-shot view). *)

val ex15_sensitivity : ?oc:out_channel -> unit -> unit
(** Sensitivity sweep: residency reduction of greedy C1 deletion across
    skew, concurrency, database size and long-reader pressure. *)

val run_all : ?oc:out_channel -> unit -> unit
