type cell = {
  label : string;
  profile : Dct_workload.Generator.profile;
  result : Driver.result;
}

let grid ?sample_every ~make ~cells () =
  List.map
    (fun (label, profile) ->
      let schedule = Dct_workload.Generator.basic profile in
      let result = Driver.run ?sample_every (make ()) schedule in
      { label; profile; result })
    cells

let vary ~base modifiers =
  List.map (fun (label, f) -> (label, f base)) modifiers
