lib/sim/sweep.mli: Dct_sched Dct_workload Driver
