lib/sim/experiments.ml: Dct_deletion Dct_graph Dct_kv Dct_npc Dct_sched Dct_txn Dct_workload Driver List Metrics Printf Report Restart Sweep Sys
