lib/sim/metrics.ml: Array List
