lib/sim/driver.mli: Dct_sched Dct_txn
