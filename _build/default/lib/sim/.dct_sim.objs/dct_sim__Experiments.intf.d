lib/sim/experiments.mli:
