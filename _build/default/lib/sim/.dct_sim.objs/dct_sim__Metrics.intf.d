lib/sim/metrics.mli:
