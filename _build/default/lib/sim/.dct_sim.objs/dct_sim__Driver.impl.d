lib/sim/driver.ml: Dct_sched List Sys
