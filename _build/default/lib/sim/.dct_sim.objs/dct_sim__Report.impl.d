lib/sim/report.ml: Buffer List Printf String
