lib/sim/sweep.ml: Dct_workload Driver List
