lib/sim/report.mli:
