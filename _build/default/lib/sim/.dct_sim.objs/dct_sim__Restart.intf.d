lib/sim/restart.mli: Dct_sched Dct_txn Format
