lib/sim/restart.ml: Dct_sched Dct_txn Format Hashtbl List Option Queue Sys
