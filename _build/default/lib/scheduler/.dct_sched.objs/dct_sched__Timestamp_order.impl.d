lib/scheduler/timestamp_order.ml: Dct_txn Hashtbl List Scheduler_intf
