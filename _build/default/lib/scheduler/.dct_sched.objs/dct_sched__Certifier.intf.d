lib/scheduler/certifier.mli: Dct_deletion Dct_txn Scheduler_intf
