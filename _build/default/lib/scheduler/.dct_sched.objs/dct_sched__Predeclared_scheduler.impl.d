lib/scheduler/predeclared_scheduler.ml: Dct_deletion Dct_graph Dct_txn Hashtbl List Printf Queue Scheduler_intf
