lib/scheduler/timestamp_order.mli: Dct_txn Scheduler_intf
