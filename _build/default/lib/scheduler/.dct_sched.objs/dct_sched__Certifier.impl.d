lib/scheduler/certifier.ml: Dct_deletion Dct_graph Dct_txn List Scheduler_intf
