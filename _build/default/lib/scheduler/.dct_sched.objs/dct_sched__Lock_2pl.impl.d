lib/scheduler/lock_2pl.ml: Dct_graph Dct_txn Hashtbl List Option Queue Scheduler_intf
