lib/scheduler/conflict_scheduler.mli: Dct_deletion Dct_graph Dct_kv Dct_txn Scheduler_intf
