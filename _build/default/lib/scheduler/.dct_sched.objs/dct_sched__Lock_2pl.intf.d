lib/scheduler/lock_2pl.mli: Dct_txn Scheduler_intf
