lib/scheduler/scheduler_intf.ml: Dct_txn Format
