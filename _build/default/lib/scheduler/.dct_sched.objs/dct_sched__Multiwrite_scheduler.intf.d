lib/scheduler/multiwrite_scheduler.mli: Dct_deletion Dct_kv Dct_txn Scheduler_intf
