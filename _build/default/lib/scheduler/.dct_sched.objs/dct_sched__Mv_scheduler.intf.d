lib/scheduler/mv_scheduler.mli: Dct_kv Dct_txn Scheduler_intf
