lib/scheduler/mv_scheduler.ml: Dct_kv Dct_txn Hashtbl List Option Scheduler_intf
