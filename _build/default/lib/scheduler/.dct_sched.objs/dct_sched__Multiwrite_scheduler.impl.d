lib/scheduler/multiwrite_scheduler.ml: Dct_deletion Dct_graph Dct_kv Dct_txn List Option Printf Scheduler_intf
