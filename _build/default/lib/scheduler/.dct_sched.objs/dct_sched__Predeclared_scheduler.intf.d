lib/scheduler/predeclared_scheduler.mli: Dct_deletion Dct_txn Scheduler_intf
