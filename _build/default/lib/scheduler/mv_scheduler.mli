(** Multiversion timestamp ordering (MVTO) — the multiversion context
    the paper's §1 cites ([BHR], [HP]).

    Transactions are stamped at BEGIN.  Reads {e never} fail: a reader
    observes the newest version older than itself.  The final atomic
    write succeeds iff, for every written entity, no younger transaction
    has already read the version the write would supersede; the new
    versions carry the writer's timestamp.

    The retention problem reappears in the version dimension: old
    versions must be kept while a transaction that could still read them
    is active.  With [vacuum = true] the scheduler reclaims, after every
    commit, all versions invisible to the oldest active transaction —
    the multiversion analogue of the paper's deletion conditions, and
    like them it is exactly as aggressive as the long-running-reader
    allows. *)

type t

val create : ?vacuum:bool -> ?store:Dct_kv.Mv_store.t -> unit -> t

val step : t -> Dct_txn.Step.t -> Scheduler_intf.outcome
(** Basic-model steps.  Reads are always [Accepted]; a [Write] failing
    the MVTO rule aborts the transaction ([Rejected]). *)

val store : t -> Dct_kv.Mv_store.t

val min_active_ts : t -> int option
(** Oldest active transaction's timestamp (the vacuum horizon). *)

val versions_reclaimed : t -> int

val stats : t -> Scheduler_intf.stats
(** [resident_arcs] reports the store's total version count — the
    memory-residency axis for this scheduler. *)

val handle : ?vacuum:bool -> unit -> Scheduler_intf.handle
