(** Strict two-phase locking — the paper's contrast baseline.

    §1: "If pure locking is used to control concurrency ... transactions
    can be closed at commit time."  This scheduler holds shared locks
    for reads and acquires all exclusive locks atomically at the final
    write, releasing everything at commit; a committed transaction
    leaves {e no} trace, so residency equals the number of active
    transactions — the behaviour conflict-graph schedulers cannot have
    without the deletion machinery of the paper.

    Blocking is modelled with per-transaction FIFO queues ([Delayed]
    outcome); deadlocks are detected on the waits-for graph and resolved
    by aborting the youngest transaction on the cycle. *)

type t

val create : unit -> t

val step : t -> Dct_txn.Step.t -> Scheduler_intf.outcome

val drain : t -> int
(** Retry blocked steps until a fixpoint. *)

val resident_txns : t -> int
(** Number of transactions the scheduler still remembers — always the
    active ones only. *)

val locks_held : t -> int

val execution_log : t -> Dct_txn.Step.t list
(** The data operations in the order they were actually {e granted}
    (blocked steps appear at grant time, not submission time).  This is
    the schedule whose committed projection must be CSR. *)

val stats : t -> Scheduler_intf.stats
val handle : unit -> Scheduler_intf.handle
