(** Basic timestamp ordering — a second non-graph baseline.

    Every transaction is stamped at BEGIN; a read is rejected when the
    entity was already written by a younger timestamp, a write when the
    entity was read or written by a younger timestamp.  Like locking,
    the scheduler keeps only O(entities) metadata and forgets
    transactions at commit — no deletion problem arises, at the price of
    restart-heavy behaviour under contention. *)

type t

val create : unit -> t
val step : t -> Dct_txn.Step.t -> Scheduler_intf.outcome
val stats : t -> Scheduler_intf.stats
val handle : unit -> Scheduler_intf.handle
