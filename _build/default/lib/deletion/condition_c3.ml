module Intset = Dct_graph.Intset
module Access = Dct_txn.Access
module Transaction = Dct_txn.Transaction

(* Does [G − M⁺] satisfy C3's consequent for [ti]: for every surviving
   active [tj] with an FC-path to [ti], every entity of [ti] must be
   covered by some other transaction reachable from [tj]. *)
let m_ok gs ti m_plus =
  let alive v = not (Intset.mem v m_plus) in
  let acc_i = Graph_state.accesses gs ti in
  let actives =
    Intset.filter alive (Graph_state.active_txns gs)
  in
  Intset.for_all
    (fun tj ->
      let fc_reach =
        Tightness.reachable_through gs
          ~through:(fun v -> alive v && Graph_state.is_completed gs v)
          `Fwd tj
        |> Intset.filter alive
      in
      if not (Intset.mem ti fc_reach) then true
      else begin
        let any_reach =
          Tightness.reachable_through gs ~through:alive `Fwd tj
          |> Intset.filter alive
        in
        let candidates = Intset.remove ti any_reach in
        let cover = Condition_c1.coverage gs candidates in
        Access.fold
          (fun ~entity ~mode ok ->
            ok
            &&
            match Access.find cover ~entity with
            | Some m -> Access.at_least_as_strong m mode
            | None -> false)
          acc_i true
      end)
    actives

let subsets_iter elems f =
  let n = Array.length elems in
  if n > Sys.int_size - 2 then invalid_arg "Condition_c3: too many actives";
  let rec go mask =
    if mask < 1 lsl n then begin
      let s = ref Intset.empty in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then s := Intset.add elems.(i) !s
      done;
      match f !s with
      | Some _ as r -> r
      | None -> go (mask + 1)
    end
    else None
  in
  go 0

let committed gs ti =
  Graph_state.mem_txn gs ti && Graph_state.state gs ti = Transaction.Committed

let violating_m gs ti =
  if not (committed gs ti) then
    invalid_arg (Printf.sprintf "Condition_c3: T%d is not committed" ti);
  let actives = Array.of_list (Intset.to_sorted_list (Graph_state.active_txns gs)) in
  subsets_iter actives (fun m ->
      let m_plus = Graph_state.dependents_closure gs m in
      if m_ok gs ti m_plus then None else Some m)

let holds gs ti = committed gs ti && violating_m gs ti = None

let quick_reject gs ti =
  if not (committed gs ti) then true
  else
    let singletons =
      Intset.fold (fun a acc -> Intset.singleton a :: acc)
        (Graph_state.active_txns gs)
        [ Intset.empty ]
    in
    List.exists
      (fun m -> not (m_ok gs ti (Graph_state.dependents_closure gs m)))
      singletons

let eligible gs =
  Intset.filter (holds gs)
    (Intset.filter (committed gs) (Graph_state.completed_txns gs))
