module Intset = Dct_graph.Intset
module Access = Dct_txn.Access
module Transaction = Dct_txn.Transaction

let successors gs v =
  Tightness.reachable_through gs ~through:(fun _ -> true) `Fwd v

let behaves_as_completed gs tj ~exclude =
  let txn = Graph_state.txn gs tj in
  if txn.Transaction.declared = None then
    invalid_arg
      (Printf.sprintf "Condition_c4: active T%d has no declaration" tj);
  let future = Transaction.future_accesses txn in
  let succ = Intset.remove exclude (successors gs tj) in
  let cover = Condition_c1.coverage gs succ in
  Access.fold
    (fun ~entity ~mode ok ->
      ok
      &&
      match Access.find cover ~entity with
      | Some m -> Access.at_least_as_strong m mode
      | None -> false)
    future true

let violations gs ti =
  if not (Graph_state.mem_txn gs ti) then
    invalid_arg (Printf.sprintf "Condition_c4.violations: T%d absent" ti);
  if not (Graph_state.is_completed gs ti) then
    invalid_arg (Printf.sprintf "Condition_c4.violations: T%d not completed" ti);
  let acc_i = Graph_state.accesses gs ti in
  let active_preds =
    Intset.filter (Graph_state.is_active gs)
      (Tightness.reachable_through gs ~through:(fun _ -> true) `Bwd ti)
  in
  Intset.fold
    (fun tj ws ->
      if behaves_as_completed gs tj ~exclude:ti then ws
      else begin
        (* Clause (2) failed; every entity must pass clause (1). *)
        let succ = Intset.remove ti (Intset.remove tj (successors gs tj)) in
        let cover = Condition_c1.coverage gs succ in
        Access.fold
          (fun ~entity ~mode ws ->
            let covered =
              match Access.find cover ~entity with
              | Some m -> Access.at_least_as_strong m mode
              | None -> false
            in
            if covered then ws else (tj, entity) :: ws)
          acc_i ws
      end)
    active_preds []
  |> List.rev

let holds gs ti =
  Graph_state.mem_txn gs ti
  && Graph_state.is_completed gs ti
  && violations gs ti = []

let eligible gs = Intset.filter (holds gs) (Graph_state.completed_txns gs)
