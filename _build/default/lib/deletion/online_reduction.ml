module type SYSTEM = sig
  type state
  type input

  val copy : state -> state
  val apply : state -> input -> bool
  val candidate_inputs : state -> input list
end

module Make (S : SYSTEM) = struct
  type divergence = { inputs : S.input list; index : int }

  let replay ~original ~reduced inputs =
    let original = S.copy original and reduced = S.copy reduced in
    let rec go i = function
      | [] -> None
      | input :: rest ->
          let a = S.apply original input in
          let b = S.apply reduced input in
          if a <> b then Some { inputs; index = i } else go (i + 1) rest
    in
    go 0 inputs

  let search ~depth ~original ~reduced =
    let exception Found of divergence in
    let rec go original reduced ~prefix ~remaining =
      if remaining > 0 then
        List.iter
          (fun input ->
            let original' = S.copy original and reduced' = S.copy reduced in
            let a = S.apply original' input in
            let b = S.apply reduced' input in
            let prefix' = input :: prefix in
            if a <> b then
              raise
                (Found
                   { inputs = List.rev prefix'; index = List.length prefix })
            else
              go original' reduced' ~prefix:prefix' ~remaining:(remaining - 1))
          (S.candidate_inputs original)
    in
    match
      go (S.copy original) (S.copy reduced) ~prefix:[] ~remaining:depth
    with
    | () -> None
    | exception Found d -> Some d

  let reduction_safe ~depth state ~reduce =
    let reduced = S.copy state in
    reduce reduced;
    search ~depth ~original:state ~reduced = None
end
