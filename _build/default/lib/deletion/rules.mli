(** Rules 1–3 of the basic conflict-graph scheduler (§2), as a pure state
    transformer on {!Graph_state}.

    This is the function [F] of §4: it maps a (reduced) graph and a step
    to the next graph, aborting the stepping transaction when the step
    would close a cycle.  Both the production scheduler and the safety
    oracles of the test-suite replay continuations through this module,
    which is exactly how the paper reduces the dynamic problem to the
    static one.

    Basic-model steps only: [Begin], [Read], final [Write].  The
    multi-write and predeclared rule sets live with their schedulers. *)

type outcome =
  | Accepted
  | Rejected  (** the step would close a cycle; its transaction aborted *)
  | Ignored   (** step of a previously aborted transaction *)

val apply : Graph_state.t -> Dct_txn.Step.t -> outcome
(** Mutates the state.
    @raise Invalid_argument on malformed input: duplicate [Begin], step
    of a never-begun transaction, step after completion, or a
    multi-write/predeclared step. *)

val would_accept : Graph_state.t -> Dct_txn.Step.t -> bool
(** Pure acceptance test ([Ignored] counts as accepted: the step does
    not change the graph). *)

val apply_all : Graph_state.t -> Dct_txn.Schedule.t -> outcome list
(** Fold {!apply} over a schedule; outcomes in step order. *)

val accepted_subschedule : Graph_state.t -> Dct_txn.Schedule.t -> Dct_txn.Schedule.t
(** Replay on a copy of the state and keep the steps of transactions
    that were never rejected ("the accepted subschedule of s"). *)

val pp_outcome : Format.formatter -> outcome -> unit
