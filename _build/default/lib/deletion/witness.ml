module Intset = Dct_graph.Intset

let irreducible gs = Intset.is_empty (Condition_c1.eligible gs)

let witness_map gs =
  Intset.fold
    (fun ti acc ->
      match Condition_c1.witnesses gs ti with
      | [] -> acc
      | ws -> (ti, ws) :: acc)
    (Graph_state.completed_txns gs)
    []
  |> List.rev

let no_common_witness gs =
  let tbl = Hashtbl.create 64 in
  List.for_all
    (fun (_, ws) ->
      List.for_all
        (fun w ->
          if Hashtbl.mem tbl w then false
          else begin
            Hashtbl.replace tbl w ();
            true
          end)
        (List.sort_uniq compare ws))
    (witness_map gs)

let residency_bound ~actives ~entities = actives * entities

let within_bound gs =
  (not (irreducible gs))
  || begin
       let actives = Intset.cardinal (Graph_state.active_txns gs) in
       let entities = Intset.cardinal (Graph_state.entities gs) in
       Intset.cardinal (Graph_state.completed_txns gs)
       <= residency_bound ~actives ~entities
     end
