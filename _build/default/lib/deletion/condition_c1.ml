module Intset = Dct_graph.Intset
module Access = Dct_txn.Access
module Step = Dct_txn.Step

(* Strongest access per entity over a set of transactions. *)
let coverage gs txns =
  Intset.fold
    (fun tk acc -> Access.union acc (Graph_state.accesses gs tk))
    txns Access.empty

let witnesses gs ti =
  if not (Graph_state.mem_txn gs ti) then
    invalid_arg (Printf.sprintf "Condition_c1.witnesses: T%d absent" ti);
  if not (Graph_state.is_completed gs ti) then
    invalid_arg (Printf.sprintf "Condition_c1.witnesses: T%d not completed" ti);
  let acc_i = Graph_state.accesses gs ti in
  let atp = Tightness.active_tight_predecessors gs ti in
  Intset.fold
    (fun tj ws ->
      let cts =
        Intset.remove ti (Tightness.completed_tight_successors gs tj)
      in
      let cover = coverage gs cts in
      Access.fold
        (fun ~entity ~mode ws ->
          let covered =
            match Access.find cover ~entity with
            | Some m -> Access.at_least_as_strong m mode
            | None -> false
          in
          if covered then ws else (tj, entity) :: ws)
        acc_i ws)
    atp []
  |> List.rev

let holds gs ti =
  Graph_state.mem_txn gs ti
  && Graph_state.is_completed gs ti
  && witnesses gs ti = []

let eligible gs = Intset.filter (holds gs) (Graph_state.completed_txns gs)

let noncurrent gs ti =
  let entities = Access.entities (Graph_state.accesses gs ti) in
  not
    (Intset.exists
       (fun x -> Intset.mem ti (Graph_state.current_accessors gs ~entity:x))
       entities)

let adversarial_continuation gs ti ~fresh_txn ~fresh_entity =
  match witnesses gs ti with
  | [] -> None
  | (tj, x) :: _ ->
      let mode_i =
        match Access.find (Graph_state.accesses gs ti) ~entity:x with
        | Some m -> m
        | None -> assert false (* witnesses only mention accessed entities *)
      in
      let others =
        Intset.to_sorted_list (Intset.remove tj (Graph_state.active_txns gs))
      in
      let y = fresh_entity in
      (* Phase s: abort every active transaction except Tj by funnelling
         them through a conflict on the fresh entity y. *)
      let s_phase =
        if others = [] then []
        else
          List.map (fun a -> Step.Read (a, y)) others
          @ [ Step.Begin fresh_txn; Step.Write (fresh_txn, [ y ]) ]
          @ List.map (fun a -> Step.Write (a, [ y ])) others
      in
      (* Final step t: touch x in the weakest mode conflicting with Ti's
         access, closing the cycle Tj ⇝ Ti -> Tj in the full graph. *)
      let t_phase =
        match mode_i with
        | Access.Write -> [ Step.Read (tj, x) ]
        | Access.Read -> [ Step.Write (tj, [ x ]) ]
      in
      Some (s_phase @ t_phase)
