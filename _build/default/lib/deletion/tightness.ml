module Intset = Dct_graph.Intset
module Traversal = Dct_graph.Traversal

let reachable_through gs ~through dir v =
  Traversal.reachable ~through (Graph_state.graph gs) dir v

let completed gs id = Graph_state.is_completed gs id

let tight_predecessors gs v = reachable_through gs ~through:(completed gs) `Bwd v

let active_tight_predecessors gs v =
  Intset.filter (Graph_state.is_active gs) (tight_predecessors gs v)

let tight_successors gs v = reachable_through gs ~through:(completed gs) `Fwd v

let completed_tight_successors gs v =
  Intset.filter (completed gs) (tight_successors gs v)

let is_tight_predecessor gs ~pred ~of_ =
  Intset.mem pred (tight_predecessors gs of_)
