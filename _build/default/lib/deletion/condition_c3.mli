(** Condition C3 — the multi-write model (§5).

    With interleaved writes a transaction may read from an {e active}
    one, creating abort dependencies: aborting a set [M] of actives drags
    down [M⁺], every transaction depending on it.  The safe-deletion
    condition for a committed [Ti] quantifies over these hypothetical
    abort sets:

    {e (C3) for each set [M] of active transactions and each entity [x]
    accessed by [Ti]: if [G − M⁺] has an FC-path from an active [Tj] to
    [Ti], then [G − M⁺] also has a path from [Tj] to some [Tk ≠ Ti] that
    accesses [x] at least as strongly as [Ti].}

    Theorem 6: deciding C3 is NP-complete (we must "guess the right
    [M]"), by reduction from 3-SAT — see [Dct_npc.Reduction_sat].  The
    decision procedure here enumerates subsets of the active set and is
    exponential in their number, as it must be unless P = NP. *)

val quick_reject : Graph_state.t -> int -> bool
(** Polynomial necessary test: checks [M = ∅] and every singleton [M].
    [true] means C3 certainly fails; [false] is inconclusive. *)

val holds : Graph_state.t -> int -> bool
(** Exact decision by enumeration over all [2^a] subsets of actives.
    [false] when [ti] is absent or not committed. *)

val violating_m : Graph_state.t -> int -> Dct_graph.Intset.t option
(** A witness abort set [M] violating C3, or [None] when C3 holds. *)

val eligible : Graph_state.t -> Dct_graph.Intset.t
(** Committed transactions satisfying C3 (exponential per member). *)
