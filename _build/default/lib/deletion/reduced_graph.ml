module Intset = Dct_graph.Intset
module Digraph = Dct_graph.Digraph

let delete gs ti =
  if not (Graph_state.mem_txn gs ti) then
    invalid_arg (Printf.sprintf "Reduced_graph.delete: T%d absent" ti);
  if not (Graph_state.is_completed gs ti) then
    invalid_arg (Printf.sprintf "Reduced_graph.delete: T%d not completed" ti);
  Graph_state.delete_with_bypass gs ti

let delete_set gs n = Intset.iter (fun ti -> delete gs ti) n

let would_be_graph gs ti =
  let g = Digraph.copy (Graph_state.graph gs) in
  let ps = Digraph.preds g ti and ss = Digraph.succs g ti in
  Digraph.remove_node g ti;
  Intset.iter
    (fun p ->
      Intset.iter
        (fun s -> if p <> s then Digraph.add_arc g ~src:p ~dst:s)
        ss)
    ps;
  g

let is_reduced_graph_of gs schedule =
  let g = Graph_state.graph gs in
  let sched_txns = Dct_txn.Schedule.txns schedule in
  let present = Digraph.nodes g in
  if not (Dct_graph.Traversal.is_acyclic g) then Error "graph is cyclic"
  else if not (Intset.subset present sched_txns) then
    Error "graph has nodes outside the schedule"
  else begin
    (* Every conflicting pair of present transactions must have an arc in
       execution order.  Replay the schedule's entity histories. *)
    let cg = Dct_txn.Schedule.conflict_graph schedule in
    let missing = ref None in
    Digraph.iter_arcs
      (fun ~src ~dst ->
        if
          Intset.mem src present && Intset.mem dst present
          && not (Digraph.mem_arc g ~src ~dst)
        then missing := Some (src, dst))
      cg;
    match !missing with
    | Some (src, dst) ->
        Error (Printf.sprintf "missing conflict arc T%d -> T%d" src dst)
    | None -> Ok ()
  end
