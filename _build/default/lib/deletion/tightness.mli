(** Tight predecessors and successors.

    §3: "Transaction [Ti] is a {e tight predecessor} of [Tj] if there is
    a path from [Ti] to [Tj] that uses only completed transactions as
    intermediate nodes."  The endpoints themselves are unconstrained.

    For the multi-write model (§5) the same notion is parameterised by
    which states may appear as intermediates (the paper's FC-paths). *)

val tight_predecessors : Graph_state.t -> int -> Dct_graph.Intset.t
(** All tight predecessors (any state) of a node. *)

val active_tight_predecessors : Graph_state.t -> int -> Dct_graph.Intset.t
(** The quantification domain of C1/C2. *)

val tight_successors : Graph_state.t -> int -> Dct_graph.Intset.t

val completed_tight_successors : Graph_state.t -> int -> Dct_graph.Intset.t
(** The candidate cover set of C1/C2 ("completed tight successor"). *)

val is_tight_predecessor : Graph_state.t -> pred:int -> of_:int -> bool

val reachable_through :
  Graph_state.t ->
  through:(int -> bool) ->
  [ `Fwd | `Bwd ] ->
  int ->
  Dct_graph.Intset.t
(** Generic filtered reachability on the conflict graph: intermediate
    nodes must satisfy [through] (used for FC-paths, where [through] is
    "finished or committed", and for paths avoiding an aborted set). *)
