lib/deletion/tightness.mli: Dct_graph Graph_state
