lib/deletion/graph_state.ml: Dct_graph Dct_txn Format Hashtbl List Option Printf
