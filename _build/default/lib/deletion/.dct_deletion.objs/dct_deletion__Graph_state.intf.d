lib/deletion/graph_state.mli: Dct_graph Dct_txn Format
