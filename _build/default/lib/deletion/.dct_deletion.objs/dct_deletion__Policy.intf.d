lib/deletion/policy.mli: Dct_graph Graph_state
