lib/deletion/safety.mli: Dct_graph Dct_txn Graph_state
