lib/deletion/safety.ml: Dct_graph Dct_txn Graph_state List Reduced_graph Rules
