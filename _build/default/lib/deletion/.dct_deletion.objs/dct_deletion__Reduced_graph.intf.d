lib/deletion/reduced_graph.mli: Dct_graph Dct_txn Graph_state
