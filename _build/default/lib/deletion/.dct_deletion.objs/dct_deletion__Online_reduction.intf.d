lib/deletion/online_reduction.mli:
