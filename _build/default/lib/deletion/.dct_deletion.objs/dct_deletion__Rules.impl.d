lib/deletion/rules.ml: Dct_graph Dct_txn Format Graph_state List Printf
