lib/deletion/tightness.ml: Dct_graph Graph_state
