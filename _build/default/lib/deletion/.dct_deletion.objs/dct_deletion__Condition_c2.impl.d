lib/deletion/condition_c2.ml: Condition_c1 Dct_graph Dct_txn Graph_state Hashtbl List Option Tightness
