lib/deletion/condition_c1.mli: Dct_graph Dct_txn Graph_state
