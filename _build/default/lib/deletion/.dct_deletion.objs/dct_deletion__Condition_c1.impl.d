lib/deletion/condition_c1.ml: Dct_graph Dct_txn Graph_state List Printf Tightness
