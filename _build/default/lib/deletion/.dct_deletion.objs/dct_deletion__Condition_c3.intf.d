lib/deletion/condition_c3.mli: Dct_graph Graph_state
