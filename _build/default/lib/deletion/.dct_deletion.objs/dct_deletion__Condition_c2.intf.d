lib/deletion/condition_c2.mli: Dct_graph Graph_state
