lib/deletion/witness.mli: Graph_state
