lib/deletion/condition_c3.ml: Array Condition_c1 Dct_graph Dct_txn Graph_state List Printf Sys Tightness
