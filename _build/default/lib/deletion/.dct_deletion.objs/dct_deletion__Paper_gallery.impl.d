lib/deletion/paper_gallery.ml: Dct_txn Graph_state List Rules
