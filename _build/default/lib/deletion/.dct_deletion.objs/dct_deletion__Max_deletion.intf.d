lib/deletion/max_deletion.mli: Dct_graph Graph_state
