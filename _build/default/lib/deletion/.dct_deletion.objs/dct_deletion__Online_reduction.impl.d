lib/deletion/online_reduction.ml: List
