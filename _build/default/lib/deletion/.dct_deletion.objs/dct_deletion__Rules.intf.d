lib/deletion/rules.mli: Dct_txn Format Graph_state
