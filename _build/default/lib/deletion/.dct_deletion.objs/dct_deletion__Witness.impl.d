lib/deletion/witness.ml: Condition_c1 Dct_graph Graph_state Hashtbl List
