lib/deletion/paper_gallery.mli: Dct_txn Graph_state
