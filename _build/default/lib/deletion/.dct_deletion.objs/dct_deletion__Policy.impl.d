lib/deletion/policy.ml: Condition_c1 Dct_graph Dct_txn Graph_state Max_deletion Printf Reduced_graph String
