lib/deletion/condition_c4.mli: Dct_graph Graph_state
