lib/deletion/condition_c4.ml: Condition_c1 Dct_graph Dct_txn Graph_state List Printf Tightness
