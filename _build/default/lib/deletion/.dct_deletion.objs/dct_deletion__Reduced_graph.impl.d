lib/deletion/reduced_graph.ml: Dct_graph Dct_txn Graph_state Printf
