lib/deletion/max_deletion.ml: Array Condition_c1 Condition_c2 Dct_graph Graph_state List Option Reduced_graph
