(** The paper's closing generalisation (§6), executable: "the same
    techniques may be applicable in other similar situations, where we
    have an algorithm which operates continuously taking decisions
    depending on the past history, and we want to remove information as
    it becomes redundant."

    Theorem 2's proof "does not depend on the particular rules (1–3) for
    adding edges" — only on the shape of the problem: a deterministic
    online algorithm, a reduction of its state, and the definition of a
    safe reduction ("the reduced run never disagrees with the original
    on any continuation").  This functor packages that shape for {e any}
    system: instantiate it with a state type and a step function and you
    get the divergence oracle — the same machinery {!Safety} hard-codes
    for the basic conflict scheduler.

    Instantiations in this repository: the basic Rules (recovering
    {!Safety.replay} — property-tested equal), and the certification
    scheduler (mechanising the finding that C1-deletion is unsound
    there). *)

module type SYSTEM = sig
  type state
  type input

  val copy : state -> state

  val apply : state -> input -> bool
  (** One online decision; [true] = accepted.  Must be deterministic. *)

  val candidate_inputs : state -> input list
  (** The inputs worth trying next from a state (for bounded search).
      Completeness of the oracle is relative to this enumeration. *)
end

module Make (S : SYSTEM) : sig
  type divergence = {
    inputs : S.input list;  (** the continuation that separates the runs *)
    index : int;            (** first position where decisions differ *)
  }

  val replay : original:S.state -> reduced:S.state -> S.input list -> divergence option
  (** Feed the same inputs to both copies; report the first
      disagreement.  Neither argument state is mutated. *)

  val search : depth:int -> original:S.state -> reduced:S.state -> divergence option
  (** Exhaustive DFS over {!S.candidate_inputs} sequences up to [depth]:
      the bounded version of the paper's "for all continuations".
      [None] certifies safety relative to the enumeration and depth. *)

  val reduction_safe : depth:int -> S.state -> reduce:(S.state -> unit) -> bool
  (** Convenience: copy the state, apply the reduction to the copy, and
      search.  [true] = no divergence found. *)
end
