(** The paper's worked examples, executable.

    {!example1} (§3, Figure 1) is the canonical schedule showing that a
    transaction with an active predecessor can still be deletable, and
    (§4) that two individually-deletable transactions need not be
    jointly deletable.

    {!example2} (§5, Figure 4) is the predeclared-model schedule showing
    clause (2) of C4 at work: transaction [C] is deletable even though
    clause (1) fails for it, because its active predecessor [A] can
    acquire no new immediate predecessors. *)

type example1 = {
  gs1 : Graph_state.t;
  t1 : int;  (** active; read [x] first *)
  t2 : int;  (** completed; read and wrote [x] — noncurrent, deletable *)
  t3 : int;  (** completed; read and wrote [x] last — current, deletable *)
  x : int;
}

val example1 : unit -> example1
(** Built by replaying the schedule through {!Rules}, so the conflict
    graph is the genuine [CG(p)]: arcs T1→T2→T3 and T1→T3. *)

val example1_schedule : unit -> Dct_txn.Schedule.t

type example2 = {
  gs2 : Graph_state.t;
  a : int;  (** active, declared [r:{u,z,y}]; has read [u,z], will read [y] *)
  b : int;  (** completed, declared [r:{y} w:{u}] — not deletable *)
  c : int;  (** completed, declared [w:{x,z}] — deletable by clause (2) *)
  u : int;
  z : int;
  y : int;
  x2 : int;
}

val example2 : unit -> example2
(** Built directly (predeclared rules add arcs at the first conflicting
    step): arcs A→B and A→C, declarations attached. *)
