(** The definition of safety, executable.

    §4: the deletion of [N] from [G] is {e safe} if for every
    continuation [r], [F(D(G,N), r)] acyclic implies [F(G, r)] acyclic —
    equivalently (Lemma 3) the reduced and unreduced schedulers behave
    identically on every continuation.

    Universally quantifying over continuations is impossible online, but
    for small instances we can enumerate them; this module is the
    ground-truth oracle the C1/C2 implementations are property-tested
    against, and the referee for the adversarial continuations of the
    Theorem 1 necessity construction. *)

type divergence = {
  continuation : Dct_txn.Schedule.t;
  step_index : int;  (** first step where the two schedulers disagree *)
}

val replay :
  Graph_state.t -> deleted:Dct_graph.Intset.t -> Dct_txn.Schedule.t -> divergence option
(** Replay one continuation through {!Rules.apply} on two copies of the
    state — one with [deleted] removed by {!Reduced_graph.delete_set},
    one untouched — and report the first disagreement, if any. *)

val search :
  ?max_new_txns:int ->
  ?entities:int list ->
  depth:int ->
  Graph_state.t ->
  deleted:Dct_graph.Intset.t ->
  divergence option
(** Exhaustive bounded search for a diverging continuation: all step
    sequences up to [depth] built from reads and single-entity or empty
    final writes of the currently active transactions plus up to
    [max_new_txns] (default 1) fresh transactions, over the given entity
    universe (default: every entity touched so far plus one fresh).
    [None] means no divergence within the bound — evidence of safety,
    proof only in the limit.  Exponential: keep [depth ≤ 4] and the
    universe small. *)
