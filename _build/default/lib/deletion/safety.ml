module Intset = Dct_graph.Intset
module Step = Dct_txn.Step

type divergence = { continuation : Dct_txn.Schedule.t; step_index : int }

let replay gs ~deleted continuation =
  let full = Graph_state.copy gs in
  let reduced = Graph_state.copy gs in
  Reduced_graph.delete_set reduced deleted;
  let rec go i prefix = function
    | [] -> None
    | step :: rest ->
        let of_full = Rules.apply full step in
        let of_reduced = Rules.apply reduced step in
        if of_full = of_reduced then go (i + 1) (step :: prefix) rest
        else Some { continuation; step_index = i }
  in
  go 0 [] continuation

let search ?(max_new_txns = 1) ?entities ~depth gs ~deleted =
  let universe =
    match entities with
    | Some es -> es
    | None ->
        let touched = Graph_state.entities gs in
        let fresh =
          if Intset.is_empty touched then 0 else Intset.max_elt touched + 1
        in
        Intset.to_sorted_list touched @ [ fresh ]
  in
  let fresh_txn_base =
    let all = Graph_state.all_txns gs in
    if Intset.is_empty all then 1000 else Intset.max_elt all + 1000
  in
  (* DFS over continuations.  State per branch: the two graph copies and
     how many fresh transactions have begun.  Copy-on-descend keeps the
     code simple; instances are tiny by construction. *)
  let exception Found of divergence in
  let rec go full reduced ~new_txns ~prefix ~remaining =
    if remaining > 0 then begin
      let candidates =
        (* Steps of currently active transactions... *)
        Intset.fold
          (fun t acc ->
            List.map (fun x -> Step.Read (t, x)) universe
            @ List.map (fun x -> Step.Write (t, [ x ])) universe
            @ [ Step.Write (t, []) ]
            @ acc)
          (Graph_state.active_txns full)
          []
        (* ... plus the BEGIN of one more fresh transaction. *)
        @
        if new_txns < max_new_txns then
          [ Step.Begin (fresh_txn_base + new_txns) ]
        else []
      in
      List.iter
        (fun step ->
          let full' = Graph_state.copy full in
          let reduced' = Graph_state.copy reduced in
          let of_full = Rules.apply full' step in
          let of_reduced = Rules.apply reduced' step in
          let prefix' = step :: prefix in
          if of_full <> of_reduced then
            raise
              (Found
                 {
                   continuation = List.rev prefix';
                   step_index = List.length prefix;
                 })
          else
            let new_txns' =
              match step with Step.Begin _ -> new_txns + 1 | _ -> new_txns
            in
            go full' reduced' ~new_txns:new_txns' ~prefix:prefix'
              ~remaining:(remaining - 1))
        candidates
    end
  in
  let full = Graph_state.copy gs in
  let reduced = Graph_state.copy gs in
  Reduced_graph.delete_set reduced deleted;
  match go full reduced ~new_txns:0 ~prefix:[] ~remaining:depth with
  | () -> None
  | exception Found d -> Some d
