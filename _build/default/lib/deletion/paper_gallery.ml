module Access = Dct_txn.Access
module Step = Dct_txn.Step
module Transaction = Dct_txn.Transaction

type example1 = {
  gs1 : Graph_state.t;
  t1 : int;
  t2 : int;
  t3 : int;
  x : int;
}

let example1_schedule () =
  let t1 = 1 and t2 = 2 and t3 = 3 and x = 0 in
  [
    Step.Begin t1;
    Step.Read (t1, x);
    Step.Begin t2;
    Step.Read (t2, x);
    Step.Write (t2, [ x ]);
    Step.Begin t3;
    Step.Read (t3, x);
    Step.Write (t3, [ x ]);
  ]

let example1 () =
  let gs = Graph_state.create () in
  List.iter
    (fun step ->
      match Rules.apply gs step with
      | Rules.Accepted -> ()
      | Rules.Rejected | Rules.Ignored -> assert false)
    (example1_schedule ());
  { gs1 = gs; t1 = 1; t2 = 2; t3 = 3; x = 0 }

type example2 = {
  gs2 : Graph_state.t;
  a : int;
  b : int;
  c : int;
  u : int;
  z : int;
  y : int;
  x2 : int;
}

let example2 () =
  let a = 1 and b = 2 and c = 3 in
  let u = 0 and z = 1 and y = 2 and x2 = 3 in
  let gs = Graph_state.create () in
  let declared_a =
    Access.of_list [ (u, Access.Read); (z, Access.Read); (y, Access.Read) ]
  in
  let declared_b = Access.of_list [ (y, Access.Read); (u, Access.Write) ] in
  let declared_c = Access.of_list [ (x2, Access.Write); (z, Access.Write) ] in
  Graph_state.begin_txn gs a ~declared:declared_a;
  Graph_state.record_access gs ~txn:a ~entity:u ~mode:Access.Read;
  Graph_state.record_access gs ~txn:a ~entity:z ~mode:Access.Read;
  Graph_state.begin_txn gs b ~declared:declared_b;
  Graph_state.record_access gs ~txn:b ~entity:y ~mode:Access.Read;
  Graph_state.record_access gs ~txn:b ~entity:u ~mode:Access.Write;
  (* Predeclared Rule 1/2: A's read of u precedes B's declared write. *)
  Graph_state.add_arc gs ~src:a ~dst:b;
  Graph_state.set_state gs b Transaction.Committed;
  Graph_state.begin_txn gs c ~declared:declared_c;
  Graph_state.record_access gs ~txn:c ~entity:x2 ~mode:Access.Write;
  Graph_state.record_access gs ~txn:c ~entity:z ~mode:Access.Write;
  Graph_state.add_arc gs ~src:a ~dst:c;
  Graph_state.set_state gs c Transaction.Committed;
  { gs2 = gs; a; b; c; u; z; y; x2 }
