(** Condition C1 — Theorem 1 (and Theorem 3 for reduced graphs).

    A completed transaction [Ti] may be safely removed iff

    {e (C1) for every active tight predecessor [Tj] of [Ti] and every
    entity [x] accessed by [Ti], some completed tight successor
    [Tk ≠ Ti] of [Tj] accesses [x] at least as strongly as [Ti].}

    By Theorem 3 the very same test applies to any reduced graph, which
    is what makes repeated deletion possible. *)

val coverage : Graph_state.t -> Dct_graph.Intset.t -> Dct_txn.Access.t
(** Strongest access per entity over a set of transactions — the
    combined covering power of a discharger set. *)

val holds : Graph_state.t -> int -> bool
(** [holds gs ti] — C1 for [ti].  [false] when [ti] is absent or not
    completed (only completed transactions are ever deletable). *)

val witnesses : Graph_state.t -> int -> (int * int) list
(** The violating pairs [(tj, x)]: [tj] is an active tight predecessor
    with no completed tight successor covering entity [x] at [ti]'s
    strength.  Empty iff {!holds}.  These are the "witnesses" of the
    paper's a·e irreducibility argument. *)

val eligible : Graph_state.t -> Dct_graph.Intset.t
(** All completed transactions satisfying C1 — the paper's set [M]. *)

val noncurrent : Graph_state.t -> int -> bool
(** Corollary 1's sufficient condition: no access of the transaction
    touched a still-current value.  [noncurrent gs ti] implies
    [holds gs ti] on conflict graphs (property-tested). *)

val adversarial_continuation :
  Graph_state.t ->
  int ->
  fresh_txn:int ->
  fresh_entity:int ->
  Dct_txn.Schedule.t option
(** The necessity construction of Theorem 1: when C1 fails for [ti],
    build a continuation [r = s·t] such that after deleting [ti] the
    reduced scheduler accepts every step of [r] while the last step
    closes a cycle in the unreduced graph.  [fresh_txn] must be an
    unused transaction id and [fresh_entity] an entity never accessed.
    [None] when C1 holds. *)
