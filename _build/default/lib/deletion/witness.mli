(** Irreducible graphs and the a·e residency bound (§4, closing remark).

    A graph is {e irreducible} when no transaction satisfies C1.  The
    paper associates with every stuck completed transaction a witness
    pair (active tight predecessor, entity) and shows no two completed
    transactions can share a witness; hence an irreducible graph holds
    at most [a·e] completed transactions ([a] actives, [e] entities). *)

val irreducible : Graph_state.t -> bool
(** No completed transaction is eligible. *)

val witness_map : Graph_state.t -> (int * (int * int) list) list
(** For each stuck completed transaction, its C1-violating witness
    pairs.  Transactions satisfying C1 are omitted. *)

val no_common_witness : Graph_state.t -> bool
(** The paper's key fact: distinct stuck completed transactions never
    share a witness pair.  Always [true] — kept as a checkable
    invariant for the test-suite. *)

val residency_bound : actives:int -> entities:int -> int
(** [a·e]. *)

val within_bound : Graph_state.t -> bool
(** When the graph is irreducible, completed count ≤
    [residency_bound ~actives ~entities] over the currently present
    actives and the touched entities.  [true] vacuously on reducible
    graphs. *)
