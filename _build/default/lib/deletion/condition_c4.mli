(** Condition C4 — predeclared transactions (§5).

    When transactions predeclare their read and write sets, the
    scheduler (Rules 1'–3') adds arcs at the {e first} of two conflicting
    steps and {e delays} steps instead of aborting.  The safe-deletion
    condition for a completed [Ti] is then:

    {e (C4) for all active predecessors [Tj] of [Ti] and all entities
    [x] accessed by [Ti], either (1) [Tj] has another successor
    [Tk ≠ Ti, Tj] which has accessed [x] at least as strongly as [Ti],
    or (2) every entity [y] that [Tj] will access in the future has
    already been accessed at least as strongly by some successor
    [Tl ≠ Ti] of [Tj].}

    Clause (2) — absent from the PODS'86 version — says such a [Tj]
    behaves as completed: it can acquire no new immediate predecessors.
    Plain (not tight) predecessors/successors are used, and the test is
    polynomial (Theorem 7). *)

val holds : Graph_state.t -> int -> bool
(** [false] when absent or not completed.  Requires every active
    predecessor to carry a declaration ([Transaction.declared]);
    @raise Invalid_argument if one does not. *)

val violations : Graph_state.t -> int -> (int * int) list
(** Violating pairs [(tj, x)] — both clauses failed. *)

val behaves_as_completed : Graph_state.t -> int -> exclude:int -> bool
(** Clause (2) alone for an active [tj]: every declared-future access is
    already dominated by a successor other than [exclude]. *)

val eligible : Graph_state.t -> Dct_graph.Intset.t
