(** The reduction [D(G, T)] — how a transaction is removed.

    §3: "the reduced conflict graph of [p] by [Ti] ... is [CG(p)] with
    node [Ti] deleted and arcs to and from it replaced by arcs from all
    its immediate predecessors to all its immediate successors", so that
    paths currently through [Ti] are not lost.

    Deleting a {e set} applies the single deletion repeatedly; §4 notes
    the order is immaterial — tested in the suite. *)

val delete : Graph_state.t -> int -> unit
(** [delete gs ti] applies [D(G, Ti)] and forgets the transaction's
    payload.  @raise Invalid_argument if [ti] is absent or not
    completed (the paper only ever deletes completed transactions). *)

val delete_set : Graph_state.t -> Dct_graph.Intset.t -> unit
(** [D(G, N)], one node at a time (ascending id; the result does not
    depend on the order). *)

val would_be_graph : Graph_state.t -> int -> Dct_graph.Digraph.t
(** The graph of [D(G, Ti)] without mutating [gs] (for oracles). *)

val is_reduced_graph_of : Graph_state.t -> Dct_txn.Schedule.t -> (unit, string) result
(** Check the §4 definition of "a reduced graph of schedule [p]":
    (1) acyclic; (2) nodes ⊆ transactions of [p], including every
    non-aborted active one; (3) an arc between every pair of present
    transactions with conflicting steps, in execution order.  Extra arcs
    are allowed.  [gs] supplies the node set and arcs; [p] supplies the
    ground truth. *)
