(** An embedded key-value database with conflict-graph concurrency
    control — the façade a downstream user programs against.

    Under the hood: the preventive conflict-graph scheduler (Rules 1–3)
    with a deletion policy keeping the graph small (the paper's
    contribution), a versioned store supplying values, and an optional
    WAL whose truncation is driven by the same deletions.

    The transaction model is the paper's basic model: a transaction
    reads any number of entities and then atomically writes a set of
    them at commit.  Reads can abort the transaction (the scheduler
    refuses steps that would close a cycle); {!with_txn} hides that
    behind automatic retry.

    Entities and values are [int]s; layering richer keys/values on top
    is orthogonal to the concurrency machinery this library is about. *)

type t

type config = {
  policy : Dct_deletion.Policy.t;  (** graph GC policy *)
  durable : bool;                  (** journal to a WAL *)
  max_retries : int;               (** for {!with_txn} *)
  default_value : int;             (** initial value of every entity *)
}

val default_config : config
(** greedy-c1, durable, 8 retries, default value 0. *)

val open_ : ?config:config -> unit -> t

(** {1 Explicit transactions}

    Fine-grained control; the caller handles aborts. *)

type txn

type error =
  | Aborted    (** the scheduler refused a step; the transaction is dead *)
  | Txn_done   (** the handle was already committed or aborted *)

val pp_error : Format.formatter -> error -> unit

val begin_txn : t -> txn

val read : txn -> int -> (int, error) result
(** Read an entity's current value.  [Error Aborted] kills the whole
    transaction (cycle prevention). *)

val commit : txn -> writes:(int * int) list -> (unit, error) result
(** Atomically write the listed (entity, value) pairs and commit.
    [commit ~writes:[]] commits a read-only transaction.  After any
    result the handle is dead. *)

val abort : txn -> unit
(** Voluntarily abandon the transaction (drops it from the graph). *)

(** {1 Automatic retry} *)

val with_txn : t -> f:(read:(int -> int) -> (int * int) list) -> (unit, error) result
(** Run [f] with a read callback; commit its returned write set.  On
    abort (by a read or at commit) the transaction is retried from
    scratch, up to [config.max_retries] attempts.  [f] must be pure
    apart from its reads (it may run several times).
    @raise e if [f] raises — after the underlying transaction is
    aborted. *)

(** {1 Introspection} *)

type stats = {
  committed : int;
  aborted : int;            (** scheduler-initiated aborts *)
  graph_resident : int;     (** transactions the scheduler remembers *)
  graph_deleted : int;      (** forgotten by the deletion policy *)
  wal_retained : int;       (** 0 when not durable *)
  wal_truncated : int;
}

val stats : t -> stats

val peek : t -> int -> int
(** Current committed value, outside any transaction. *)

val recover : t -> checkpoint:Dct_kv.Store.t -> Dct_kv.Store.t
(** Crash-recovery: replay the retained WAL suffix onto a checkpoint
    image and return the rebuilt store.  @raise Invalid_argument when
    the database is not durable. *)

val check_invariants : t -> (unit, string) result
(** Structural self-check of the underlying graph state (used by the
    fuzz tests). *)

(**/**)

val wal : t -> Dct_kv.Wal.t option
val store : t -> Dct_kv.Store.t
