lib/db/db.mli: Dct_deletion Dct_kv Format
