lib/db/db.ml: Dct_deletion Dct_kv Dct_sched Dct_txn Format List
