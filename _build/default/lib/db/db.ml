module Step = Dct_txn.Step
module Si = Dct_sched.Scheduler_intf
module Cs = Dct_sched.Conflict_scheduler
module Gs = Dct_deletion.Graph_state
module Policy = Dct_deletion.Policy
module Store = Dct_kv.Store
module Wal = Dct_kv.Wal

type config = {
  policy : Policy.t;
  durable : bool;
  max_retries : int;
  default_value : int;
}

let default_config =
  { policy = Policy.Greedy_c1; durable = true; max_retries = 8; default_value = 0 }

(* The database owns the store and the WAL itself (rather than passing
   them to the scheduler) so that journalled values are the caller's
   actual values, not scheduler-internal placeholders. *)
type t = {
  config : config;
  sched : Cs.t;
  store_ : Store.t;
  wal_ : Wal.t option;
  mutable next_txn : int;
}

let open_ ?(config = default_config) () =
  {
    config;
    sched = Cs.create ~policy:config.policy ();
    store_ = Store.create ~default:config.default_value ();
    wal_ = (if config.durable then Some (Wal.create ()) else None);
    next_txn = 0;
  }

let journal db record =
  match db.wal_ with
  | None -> ()
  | Some w -> ignore (Wal.append w record)

(* The deletion policy runs inside the scheduler after accepted steps;
   chase it with the WAL low-water mark. *)
let truncate_wal db =
  match db.wal_ with
  | None -> ()
  | Some w ->
      ignore
        (Wal.truncate_to w ~resident:(fun txn ->
             Gs.mem_txn (Cs.graph_state db.sched) txn))

type status = Running | Done

type txn = { db : t; id : int; mutable status : status }

type error = Aborted | Txn_done

let pp_error ppf = function
  | Aborted -> Format.pp_print_string ppf "aborted"
  | Txn_done -> Format.pp_print_string ppf "transaction already finished"

let begin_txn db =
  db.next_txn <- db.next_txn + 1;
  let id = db.next_txn in
  (match Cs.step db.sched (Step.Begin id) with
  | Si.Accepted -> ()
  | Si.Rejected | Si.Ignored | Si.Delayed ->
      (* BEGIN is always accepted by the preventive scheduler. *)
      assert false);
  journal db (Wal.Begin { txn = id });
  { db; id; status = Running }

let read txn entity =
  match txn.status with
  | Done -> Error Txn_done
  | Running -> (
      match Cs.step txn.db.sched (Step.Read (txn.id, entity)) with
      | Si.Accepted ->
          Ok (Store.read txn.db.store_ ~entity ~reader:txn.id).Dct_kv.Version_log.value
      | Si.Rejected | Si.Ignored ->
          txn.status <- Done;
          journal txn.db (Wal.Abort { txn = txn.id });
          truncate_wal txn.db;
          Error Aborted
      | Si.Delayed -> assert false (* the preventive scheduler never delays *))

let commit txn ~writes =
  match txn.status with
  | Done -> Error Txn_done
  | Running -> (
      txn.status <- Done;
      let entities = List.map fst writes in
      match Cs.step txn.db.sched (Step.Write (txn.id, entities)) with
      | Si.Accepted ->
          List.iter
            (fun (entity, value) ->
              Store.write txn.db.store_ ~entity ~writer:txn.id ~value;
              journal txn.db (Wal.Write { txn = txn.id; entity; value }))
            writes;
          journal txn.db (Wal.Commit { txn = txn.id });
          truncate_wal txn.db;
          Ok ()
      | Si.Rejected | Si.Ignored ->
          journal txn.db (Wal.Abort { txn = txn.id });
          truncate_wal txn.db;
          Error Aborted
      | Si.Delayed -> assert false)

let abort txn =
  match txn.status with
  | Done -> ()
  | Running ->
      txn.status <- Done;
      Gs.abort_txn (Cs.graph_state txn.db.sched) txn.id;
      Store.undo_writes txn.db.store_ ~txn:txn.id;
      ignore (Cs.collect_garbage txn.db.sched);
      journal txn.db (Wal.Abort { txn = txn.id });
      truncate_wal txn.db

exception Retry_internal

let with_txn db ~f =
  let rec attempt n =
    let txn = begin_txn db in
    let read_cb entity =
      match read txn entity with
      | Ok v -> v
      | Error _ -> raise Retry_internal
    in
    match f ~read:read_cb with
    | exception Retry_internal ->
        if n < db.config.max_retries then attempt (n + 1) else Error Aborted
    | exception e ->
        abort txn;
        raise e
    | writes -> (
        match commit txn ~writes with
        | Ok () -> Ok ()
        | Error _ when n < db.config.max_retries -> attempt (n + 1)
        | Error _ -> Error Aborted)
  in
  attempt 1

type stats = {
  committed : int;
  aborted : int;
  graph_resident : int;
  graph_deleted : int;
  wal_retained : int;
  wal_truncated : int;
}

let stats db =
  let s = Cs.stats db.sched in
  {
    committed = s.Si.committed_total;
    aborted = s.Si.aborted_total;
    graph_resident = s.Si.resident_txns;
    graph_deleted = s.Si.deleted_total;
    wal_retained = (match db.wal_ with Some w -> Wal.length w | None -> 0);
    wal_truncated = (match db.wal_ with Some w -> Wal.truncated w | None -> 0);
  }

let peek db entity = Store.peek db.store_ ~entity

let recover db ~checkpoint =
  match db.wal_ with
  | None -> invalid_arg "Db.recover: database is not durable"
  | Some w ->
      Wal.replay w ~into:checkpoint;
      checkpoint

let check_invariants db = Gs.check_invariants (Cs.graph_state db.sched)

let wal db = db.wal_
let store db = db.store_
