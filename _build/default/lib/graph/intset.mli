(** Persistent sets of [int] node identifiers.

    This is [Set.Make (Int)] plus a few convenience functions; it is the
    set type used throughout the graph toolkit for adjacency and
    reachability results. *)

include Set.S with type elt = int

val to_sorted_list : t -> int list
(** [to_sorted_list s] is the elements of [s] in increasing order. *)

val pp : Format.formatter -> t -> unit
(** [pp ppf s] prints [s] as [{1,2,3}]. *)
