(* Persistent sets of int node ids, shared by all graph structures. *)
include Set.Make (Int)

let to_sorted_list s = elements s

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements s)))
