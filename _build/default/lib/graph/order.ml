type t = {
  g : Digraph.t;
  ord : (int, int) Hashtbl.t; (* node -> priority, unique *)
  mutable next : int;         (* next fresh priority *)
}

let create () = { g = Digraph.create (); ord = Hashtbl.create 64; next = 0 }

let graph t = t.g

let rank t v = Hashtbl.find t.ord v

let add_node t v =
  if not (Digraph.mem_node t.g v) then begin
    Digraph.add_node t.g v;
    Hashtbl.replace t.ord v t.next;
    t.next <- t.next + 1
  end

let remove_node t v =
  if Digraph.mem_node t.g v then begin
    Digraph.remove_node t.g v;
    Hashtbl.remove t.ord v
  end

exception Cycle_found

(* Forward DFS from [start] restricted to nodes with priority < [ub];
   encountering priority = [ub] (the arc source) means a cycle. *)
let dfs_forward t start ub =
  let visited = ref Intset.empty in
  let rec go v =
    visited := Intset.add v !visited;
    Intset.iter
      (fun w ->
        let ow = rank t w in
        if ow = ub then raise Cycle_found;
        if ow < ub && not (Intset.mem w !visited) then go w)
      (Digraph.succs t.g v)
  in
  go start;
  !visited

let dfs_backward t start lb =
  let visited = ref Intset.empty in
  let rec go v =
    visited := Intset.add v !visited;
    Intset.iter
      (fun w ->
        let ow = rank t w in
        if ow > lb && not (Intset.mem w !visited) then go w)
      (Digraph.preds t.g v)
  in
  go start;
  !visited

let reorder t delta_b delta_f =
  (* Allocate the union of the old priorities of both regions to the
     nodes of delta_b (kept in relative order) followed by delta_f. *)
  let by_rank vs =
    List.sort (fun a b -> compare (rank t a) (rank t b)) (Intset.elements vs)
  in
  let l = by_rank delta_b @ by_rank delta_f in
  let slots = List.sort compare (List.map (rank t) l) in
  List.iter2 (fun v p -> Hashtbl.replace t.ord v p) l slots

let add_arc t ~src ~dst =
  add_node t src;
  add_node t dst;
  if src = dst then `Cycle
  else if Digraph.mem_arc t.g ~src ~dst then `Ok
  else
    let ox = rank t src and oy = rank t dst in
    if oy > ox then begin
      Digraph.add_arc t.g ~src ~dst;
      `Ok
    end
    else
      match dfs_forward t dst ox with
      | exception Cycle_found -> `Cycle
      | delta_f ->
          let delta_b = dfs_backward t src oy in
          reorder t delta_b delta_f;
          Digraph.add_arc t.g ~src ~dst;
          `Ok

let would_cycle t ~src ~dst =
  if src = dst then true
  else if not (Digraph.mem_node t.g src) || not (Digraph.mem_node t.g dst) then false
  else Traversal.has_path t.g ~src:dst ~dst:src

let check_invariant t =
  Digraph.fold_arcs (fun ~src ~dst acc -> acc && rank t src < rank t dst) t.g true
