let neighbours g dir v =
  match dir with `Fwd -> Digraph.succs g v | `Bwd -> Digraph.preds g v

let reachable ?(through = fun _ -> true) g dir v =
  (* BFS; we may expand a node only if it can serve as an intermediate. *)
  let visited = ref Intset.empty in
  let queue = Queue.create () in
  Intset.iter
    (fun w ->
      if not (Intset.mem w !visited) then begin
        visited := Intset.add w !visited;
        Queue.push w queue
      end)
    (neighbours g dir v);
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    if through w then
      Intset.iter
        (fun u ->
          if not (Intset.mem u !visited) then begin
            visited := Intset.add u !visited;
            Queue.push u queue
          end)
        (neighbours g dir w)
  done;
  !visited

let has_path ?through g ~src ~dst = Intset.mem dst (reachable ?through g `Fwd src)

let find_path ?(through = fun _ -> true) g ~src ~dst =
  (* BFS with parent pointers; expansion through filtered intermediates
     only, as in [reachable]. *)
  let parent = Hashtbl.create 16 in
  let queue = Queue.create () in
  let enqueue v p =
    if not (Hashtbl.mem parent v) then begin
      Hashtbl.replace parent v p;
      Queue.push v queue
    end
  in
  Intset.iter (fun w -> enqueue w src) (Digraph.succs g src);
  let found = ref (Hashtbl.mem parent dst) in
  while (not !found) && not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    if w = dst then found := true
    else if through w then
      Intset.iter (fun u -> enqueue u w) (Digraph.succs g w)
  done;
  if not (Hashtbl.mem parent dst) then None
  else begin
    let rec build v acc =
      if v = src then src :: acc else build (Hashtbl.find parent v) (v :: acc)
    in
    Some (build dst [])
  end

let topological_sort g =
  let indeg = Hashtbl.create 64 in
  Digraph.iter_nodes (fun v -> Hashtbl.replace indeg v (Digraph.in_degree g v)) g;
  (* Min-id tie-break via a sorted module-level set used as a queue. *)
  let ready = ref Intset.empty in
  Hashtbl.iter (fun v d -> if d = 0 then ready := Intset.add v !ready) indeg;
  let out = ref [] in
  let count = ref 0 in
  while not (Intset.is_empty !ready) do
    let v = Intset.min_elt !ready in
    ready := Intset.remove v !ready;
    out := v :: !out;
    incr count;
    Intset.iter
      (fun w ->
        let d = Hashtbl.find indeg w - 1 in
        Hashtbl.replace indeg w d;
        if d = 0 then ready := Intset.add w !ready)
      (Digraph.succs g v)
  done;
  if !count = Digraph.node_count g then Some (List.rev !out) else None

let is_acyclic g = topological_sort g <> None

let scc g =
  (* Tarjan, iterative to be safe on deep graphs. *)
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next_index;
    Hashtbl.replace lowlink v !next_index;
    incr next_index;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    Intset.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Digraph.succs g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  Digraph.iter_nodes (fun v -> if not (Hashtbl.mem index v) then strongconnect v) g;
  !components

let find_cycle g =
  (* A non-trivial SCC, or a self-loop, yields a cycle; walk it. *)
  let self_loop =
    Digraph.fold_arcs
      (fun ~src ~dst acc -> if src = dst then Some src else acc)
      g None
  in
  match self_loop with
  | Some v -> Some [ v ]
  | None -> (
      let comp = List.find_opt (fun c -> List.length c > 1) (scc g) in
      match comp with
      | None -> None
      | Some c ->
          let members = Intset.of_list c in
          (* DFS inside the component from its first node back to itself. *)
          let start = List.hd c in
          let rec walk path v visited =
            let nexts = Intset.inter (Digraph.succs g v) members in
            if Intset.mem start nexts && path <> [] then Some (List.rev (v :: path))
            else
              Intset.fold
                (fun w acc ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                      if Intset.mem w visited then None
                      else walk (v :: path) w (Intset.add w visited))
                nexts None
          in
          walk [] start (Intset.singleton start))
