(** Imperative directed graphs over integer node identifiers.

    Node identifiers are chosen by the caller (transaction ids in the
    scheduler).  Arcs are unlabelled and at most one arc exists per
    ordered pair.  All mutating operations run in (amortised) logarithmic
    time in the degree of the touched nodes.

    The structure is deliberately small: reachability, ordering and
    closure maintenance live in {!Traversal}, {!Order} and {!Closure}. *)

type t

val create : unit -> t

val copy : t -> t
(** Independent deep copy. *)

(** {1 Nodes} *)

val add_node : t -> int -> unit
(** [add_node g v] adds isolated node [v]; a no-op if present. *)

val remove_node : t -> int -> unit
(** [remove_node g v] removes [v] and all incident arcs; a no-op if
    absent.  Note this is {e not} the paper's reduction [D(G, v)] — see
    {!Reduced_graph} in [dct_deletion] for the bypassing removal. *)

val mem_node : t -> int -> bool
val node_count : t -> int
val nodes : t -> Intset.t
val iter_nodes : (int -> unit) -> t -> unit

(** {1 Arcs} *)

val add_arc : t -> src:int -> dst:int -> unit
(** [add_arc g ~src ~dst] adds the arc; endpoints are created if missing.
    Idempotent.  Self-loops are allowed (the scheduler never creates
    them, but the graph does not forbid them). *)

val remove_arc : t -> src:int -> dst:int -> unit
val mem_arc : t -> src:int -> dst:int -> bool
val arc_count : t -> int

val succs : t -> int -> Intset.t
(** Immediate successors; empty set if the node is absent. *)

val preds : t -> int -> Intset.t
(** Immediate predecessors; empty set if the node is absent. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_arcs : (src:int -> dst:int -> unit) -> t -> unit
val fold_arcs : (src:int -> dst:int -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Same node set and same arc set. *)

val pp : Format.formatter -> t -> unit
