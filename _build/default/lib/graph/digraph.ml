type adj = { mutable succ : Intset.t; mutable pred : Intset.t }

type t = { tbl : (int, adj) Hashtbl.t; mutable arcs : int }

let create () = { tbl = Hashtbl.create 64; arcs = 0 }

let copy g =
  let tbl = Hashtbl.create (Hashtbl.length g.tbl) in
  Hashtbl.iter (fun v a -> Hashtbl.replace tbl v { succ = a.succ; pred = a.pred }) g.tbl;
  { tbl; arcs = g.arcs }

let find_opt g v = Hashtbl.find_opt g.tbl v

let ensure g v =
  match find_opt g v with
  | Some a -> a
  | None ->
      let a = { succ = Intset.empty; pred = Intset.empty } in
      Hashtbl.replace g.tbl v a;
      a

let add_node g v = ignore (ensure g v)

let mem_node g v = Hashtbl.mem g.tbl v

let node_count g = Hashtbl.length g.tbl

let nodes g = Hashtbl.fold (fun v _ acc -> Intset.add v acc) g.tbl Intset.empty

let iter_nodes f g = Hashtbl.iter (fun v _ -> f v) g.tbl

let succs g v = match find_opt g v with Some a -> a.succ | None -> Intset.empty
let preds g v = match find_opt g v with Some a -> a.pred | None -> Intset.empty

let out_degree g v = Intset.cardinal (succs g v)
let in_degree g v = Intset.cardinal (preds g v)

let mem_arc g ~src ~dst =
  match find_opt g src with Some a -> Intset.mem dst a.succ | None -> false

let add_arc g ~src ~dst =
  let a = ensure g src in
  if not (Intset.mem dst a.succ) then begin
    a.succ <- Intset.add dst a.succ;
    let b = ensure g dst in
    b.pred <- Intset.add src b.pred;
    g.arcs <- g.arcs + 1
  end

let remove_arc g ~src ~dst =
  match find_opt g src with
  | None -> ()
  | Some a ->
      if Intset.mem dst a.succ then begin
        a.succ <- Intset.remove dst a.succ;
        let b = ensure g dst in
        b.pred <- Intset.remove src b.pred;
        g.arcs <- g.arcs - 1
      end

let remove_node g v =
  match find_opt g v with
  | None -> ()
  | Some a ->
      Intset.iter (fun w -> remove_arc g ~src:v ~dst:w) a.succ;
      Intset.iter (fun w -> remove_arc g ~src:w ~dst:v) a.pred;
      Hashtbl.remove g.tbl v

let arc_count g = g.arcs

let iter_arcs f g =
  Hashtbl.iter (fun src a -> Intset.iter (fun dst -> f ~src ~dst) a.succ) g.tbl

let fold_arcs f g init =
  let acc = ref init in
  iter_arcs (fun ~src ~dst -> acc := f ~src ~dst !acc) g;
  !acc

let equal g1 g2 =
  node_count g1 = node_count g2
  && arc_count g1 = arc_count g2
  && Intset.equal (nodes g1) (nodes g2)
  && Hashtbl.fold
       (fun v a acc -> acc && Intset.equal a.succ (succs g2 v))
       g1.tbl true

let pp ppf g =
  let ns = Intset.to_sorted_list (nodes g) in
  Format.fprintf ppf "@[<v>nodes: %s@,"
    (String.concat " " (List.map string_of_int ns));
  List.iter
    (fun v ->
      let ss = Intset.to_sorted_list (succs g v) in
      if ss <> [] then
        Format.fprintf ppf "%d -> %s@," v
          (String.concat " " (List.map string_of_int ss)))
    ns;
  Format.fprintf ppf "@]"
